// smr_client: closed-loop workload driver for an smr_server cluster.
//
//   ./build/tools/smr_client --peers "$PEERS" --n 4 --f 1 --shards 2
//       --sessions 2 --ops 2000 --workload mixed  (one line)
//
// Hosts K client sessions (endpoint ids --first .. --first+K-1; servers
// must have been started with --clients covering them), submits --ops
// typed requests round-robin across sessions and keys, then waits for
// every future to complete. Exits 0 iff all ops completed without a
// deadline timeout; prints throughput and the socket stats dump either
// way. See docs/TRANSPORT.md.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "runtime/socket_smr.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --peers H:P,... [options]\n"
      "  --peers LIST       comma-separated host:port per replica (required)\n"
      "  --n/--f/--t        quorum shape (defaults 4/1/f)\n"
      "  --shards S         consensus groups (default 1; must match servers)\n"
      "  --clients C        total client endpoints (default 4; must match)\n"
      "  --first ID         first endpoint id hosted here (default n)\n"
      "  --sessions K       sessions in this process (default 1)\n"
      "  --window W         per-session in-flight window (default 8)\n"
      "  --ops N            total requests (default 1000)\n"
      "  --keys K           key-space size (default 64)\n"
      "  --value-bytes B    value payload size (default 16)\n"
      "  --workload W       mixed | put (default mixed: put/get/cas)\n"
      "  --link-delay US    emulated one-way link latency, µs (default 0;\n"
      "                     must match the servers)\n"
      "  --timeout US       per-request retry timeout, µs (default 100000)\n"
      "  --deadline US      per-request give-up budget, µs (default 0 = none)\n"
      "  --max-seconds S    overall wait bound (default 60)\n"
      "  --seed S           key-derivation seed (default 42)\n",
      argv0);
  std::exit(2);
}

std::vector<fastbft::net::SocketPeer> parse_peers(const std::string& list) {
  std::vector<fastbft::net::SocketPeer> peers;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string entry = list.substr(pos, comma - pos);
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bad peer entry: %s\n", entry.c_str());
      std::exit(2);
    }
    fastbft::net::SocketPeer peer;
    peer.host = entry.substr(0, colon);
    peer.port = static_cast<std::uint16_t>(
        std::strtoul(entry.c_str() + colon + 1, nullptr, 10));
    peers.push_back(std::move(peer));
    pos = comma + 1;
  }
  return peers;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastbft;

  unsigned n = 4, f = 1, t = 0, shards = 1, clients = 4, sessions = 1;
  unsigned window = 8, keyspace = 64, value_bytes = 16;
  long first = -1;
  unsigned long ops = 1000, timeout_us = 100'000, deadline_us = 0;
  unsigned long link_delay = 0;
  unsigned long max_seconds = 60;
  unsigned long long seed = 42;
  std::string peers_arg, workload = "mixed";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--peers") peers_arg = next();
    else if (arg == "--n") n = std::strtoul(next(), nullptr, 10);
    else if (arg == "--f") f = std::strtoul(next(), nullptr, 10);
    else if (arg == "--t") t = std::strtoul(next(), nullptr, 10);
    else if (arg == "--shards") shards = std::strtoul(next(), nullptr, 10);
    else if (arg == "--clients") clients = std::strtoul(next(), nullptr, 10);
    else if (arg == "--first") first = std::strtol(next(), nullptr, 10);
    else if (arg == "--sessions") sessions = std::strtoul(next(), nullptr, 10);
    else if (arg == "--window") window = std::strtoul(next(), nullptr, 10);
    else if (arg == "--ops") ops = std::strtoul(next(), nullptr, 10);
    else if (arg == "--keys") keyspace = std::strtoul(next(), nullptr, 10);
    else if (arg == "--value-bytes")
      value_bytes = std::strtoul(next(), nullptr, 10);
    else if (arg == "--workload") workload = next();
    else if (arg == "--link-delay")
      link_delay = std::strtoul(next(), nullptr, 10);
    else if (arg == "--timeout") timeout_us = std::strtoul(next(), nullptr, 10);
    else if (arg == "--deadline")
      deadline_us = std::strtoul(next(), nullptr, 10);
    else if (arg == "--max-seconds")
      max_seconds = std::strtoul(next(), nullptr, 10);
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else usage(argv[0]);
  }
  if (t == 0) t = f;
  if (peers_arg.empty()) usage(argv[0]);
  if (first < 0) first = n;

  runtime::SocketClusterConfig config;
  config.cfg = consensus::QuorumConfig::create(n, f, t);
  config.num_clients = clients;
  config.key_seed = seed;
  config.smr.num_groups = shards;
  config.tx_delay_us = static_cast<Duration>(link_delay);
  config.peers = parse_peers(peers_arg);
  if (config.peers.size() != n) {
    std::fprintf(stderr, "--peers must list exactly %u replicas (got %zu)\n",
                 n, config.peers.size());
    return 2;
  }
  config.peers.resize(n + clients);

  runtime::SocketClientOptions options;
  options.first_client_id = static_cast<ProcessId>(first);
  options.sessions = sessions;
  options.num_shards = shards;
  options.request_timeout_us = static_cast<Duration>(timeout_us);
  options.request_deadline_us = static_cast<Duration>(deadline_us);
  options.max_in_flight = window;

  runtime::SocketSmrClient client(std::move(config), options);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  client.start();

  const auto t0 = std::chrono::steady_clock::now();
  const std::string value(value_bytes, 'x');
  for (unsigned long i = 0; i < ops; ++i) {
    auto& session = client.session(i % sessions);
    const std::string key = "key-" + std::to_string(i % keyspace);
    if (workload == "put") {
      session.put(key, value + std::to_string(i));
    } else {
      switch (i % 3) {
        case 0: session.put(key, value + std::to_string(i)); break;
        case 1: session.get(key); break;
        default: session.cas(key, value + std::to_string(i - 2), value); break;
      }
    }
  }

  const auto give_up = t0 + std::chrono::seconds(max_seconds);
  while (client.completed() < ops && !g_stop &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();

  const std::uint64_t done = client.completed();
  const std::uint64_t timeouts = client.deadline_timeouts();
  std::printf(
      "smr_client: %llu/%lu ops completed in %.3f s (%.1f ops/s), "
      "%llu deadline timeouts\n",
      static_cast<unsigned long long>(done), ops, secs,
      secs > 0 ? static_cast<double>(done) / secs : 0.0,
      static_cast<unsigned long long>(timeouts));
  std::printf("--- smr_client socket stats ---\n%s",
              client.stats_summary().c_str());
  std::fflush(stdout);
  client.stop();
  return (done == ops && timeouts == 0) ? 0 : 1;
}
