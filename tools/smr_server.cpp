// smr_server: one SMR replica process over the TCP socket transport.
//
// A 4-replica cluster with 2 shards on loopback:
//
//   PEERS=127.0.0.1:7300,127.0.0.1:7301,127.0.0.1:7302,127.0.0.1:7303
//   for id in 0 1 2 3; do
//     ./build/tools/smr_server --id $id --n 4 --f 1 --shards 2 --peers "$PEERS" &
//   done
//
// then point tools/smr_client at the same --peers list. Every process
// derives identical keys from --seed, so no key exchange is needed.
// SIGTERM/SIGINT dumps per-link socket counters + engine gauges and
// exits cleanly. See docs/TRANSPORT.md.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "runtime/socket_smr.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --id I --peers H:P,H:P,... [options]\n"
      "  --id I             replica id (0-based, required)\n"
      "  --peers LIST       comma-separated host:port per replica (required;\n"
      "                     length defines nothing — must match --n)\n"
      "  --n N              replicas (default 4)\n"
      "  --f F              Byzantine faults tolerated (default 1)\n"
      "  --t T              fast-path threshold (default = f)\n"
      "  --shards S         consensus groups (default 1)\n"
      "  --depth D          pipeline depth (default 4)\n"
      "  --batch B          max commands per slot (default 8)\n"
      "  --clients C        client endpoint count (default 4)\n"
      "  --seed S           key-derivation seed (default 42)\n"
      "  --snapshot-interval K   snapshot every K slots (default 64)\n"
      "  --sync-timeout US  view-sync base timeout, µs (default 25000)\n"
      "  --link-delay US    emulated one-way link latency, µs (default 0;\n"
      "                     must match on every process)\n"
      "  --adaptive         enable the adaptive depth/batch controller\n"
      "  --verbose          protocol debug logging to stderr\n",
      argv0);
  std::exit(2);
}

std::vector<fastbft::net::SocketPeer> parse_peers(const std::string& list) {
  std::vector<fastbft::net::SocketPeer> peers;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string entry = list.substr(pos, comma - pos);
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bad peer entry: %s\n", entry.c_str());
      std::exit(2);
    }
    fastbft::net::SocketPeer peer;
    peer.host = entry.substr(0, colon);
    peer.port = static_cast<std::uint16_t>(
        std::strtoul(entry.c_str() + colon + 1, nullptr, 10));
    peers.push_back(std::move(peer));
    pos = comma + 1;
  }
  return peers;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastbft;

  long id = -1;
  unsigned n = 4, f = 1, t = 0, shards = 1, depth = 4, batch = 8, clients = 4;
  unsigned long long seed = 42;
  unsigned long snapshot_interval = 64, sync_timeout = 25'000, link_delay = 0;
  bool adaptive = false, verbose = false;
  std::string peers_arg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--id") id = std::strtol(next(), nullptr, 10);
    else if (arg == "--peers") peers_arg = next();
    else if (arg == "--n") n = std::strtoul(next(), nullptr, 10);
    else if (arg == "--f") f = std::strtoul(next(), nullptr, 10);
    else if (arg == "--t") t = std::strtoul(next(), nullptr, 10);
    else if (arg == "--shards") shards = std::strtoul(next(), nullptr, 10);
    else if (arg == "--depth") depth = std::strtoul(next(), nullptr, 10);
    else if (arg == "--batch") batch = std::strtoul(next(), nullptr, 10);
    else if (arg == "--clients") clients = std::strtoul(next(), nullptr, 10);
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--snapshot-interval")
      snapshot_interval = std::strtoul(next(), nullptr, 10);
    else if (arg == "--sync-timeout")
      sync_timeout = std::strtoul(next(), nullptr, 10);
    else if (arg == "--link-delay")
      link_delay = std::strtoul(next(), nullptr, 10);
    else if (arg == "--adaptive") adaptive = true;
    else if (arg == "--verbose") verbose = true;
    else usage(argv[0]);
  }
  if (t == 0) t = f;
  if (id < 0 || peers_arg.empty()) usage(argv[0]);

  runtime::SocketClusterConfig config;
  config.cfg = consensus::QuorumConfig::create(n, f, t);
  config.num_clients = clients;
  config.key_seed = seed;
  config.sync_base_timeout_us = static_cast<Duration>(sync_timeout);
  config.tx_delay_us = static_cast<Duration>(link_delay);
  config.smr.num_groups = shards;
  config.smr.pipeline_depth = depth;
  config.smr.max_batch = batch;
  config.smr.snapshot_interval = snapshot_interval;
  config.smr.adaptive.enabled = adaptive;
  if (adaptive) config.smr.adaptive.latency_target = 20'000;  // 20 ms p99
  config.peers = parse_peers(peers_arg);
  if (config.peers.size() != n) {
    std::fprintf(stderr, "--peers must list exactly %u replicas (got %zu)\n",
                 n, config.peers.size());
    return 2;
  }
  // Client endpoints never listen; they dial us.
  config.peers.resize(n + clients);

  if (verbose) Log::level = LogLevel::Debug;

  runtime::SocketSmrServer server(std::move(config),
                                  static_cast<ProcessId>(id));

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  server.start();
  std::printf("smr_server: replica %ld up (n=%u f=%u t=%u shards=%u depth=%u)\n",
              id, n, f, t, shards, depth);
  std::fflush(stdout);

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("--- smr_server replica %ld stats ---\n%s", id,
              server.stats_summary().c_str());
  std::fflush(stdout);
  server.stop();
  return 0;
}
