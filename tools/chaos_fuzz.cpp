#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "chaos/harness.hpp"
#include "common/bytes.hpp"

/// chaos_fuzz — seeded chaos runner / replayer / minimizer.
///
///   chaos_fuzz --seed 7                      one seeded run, full report
///   chaos_fuzz --seeds 25 --base 1000        sweep seeds base..base+24
///   chaos_fuzz --seed 7 --shards 4 --adaptive
///   chaos_fuzz --seed 7 --inject-bug         unsafe reply quorum + liar:
///                                            the checker MUST fail
///   chaos_fuzz --replay sched.hex            re-run a schedule byte-for-byte
///   chaos_fuzz --seeds 25 --artifact-dir out write seed + minimized
///                                            schedule hex on any failure
///
/// Exit status: 0 = all runs passed, 1 = a run failed (checker violation
/// or divergent stores), 2 = usage error. A failing run is automatically
/// delta-debug minimized and both the original and minimized schedules
/// are printed (and dumped under --artifact-dir) as replayable hex.
///
/// Reproducibility: the printed history/envelope digests are
/// order-sensitive SHA-256 witnesses of the full run; equal seed =>
/// equal digests, bit for bit (see docs/CHAOS.md).

namespace {

using namespace fastbft;

struct Args {
  std::uint64_t seed = 1;
  std::uint32_t seeds = 1;
  std::uint64_t base = 0;
  bool base_set = false;
  std::uint32_t shards = 1;
  std::uint32_t sessions = 2;
  std::uint32_t ops = 30;
  bool adaptive = false;
  bool inject_bug = false;
  bool print_only = false;
  std::string replay_file;
  std::string artifact_dir;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: chaos_fuzz [--seed S] [--seeds N] [--base B] [--shards S]\n"
      "                  [--sessions K] [--ops N] [--adaptive]\n"
      "                  [--inject-bug] [--print] [--replay FILE]\n"
      "                  [--artifact-dir D]\n");
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seeds") {
      const char* v = next();
      if (!v) return false;
      args.seeds = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--base") {
      const char* v = next();
      if (!v) return false;
      args.base = std::strtoull(v, nullptr, 10);
      args.base_set = true;
    } else if (arg == "--shards") {
      const char* v = next();
      if (!v) return false;
      args.shards = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--sessions") {
      const char* v = next();
      if (!v) return false;
      args.sessions = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--ops") {
      const char* v = next();
      if (!v) return false;
      args.ops = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--adaptive") {
      args.adaptive = true;
    } else if (arg == "--inject-bug") {
      args.inject_bug = true;
    } else if (arg == "--print") {
      args.print_only = true;
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) return false;
      args.replay_file = v;
    } else if (arg == "--artifact-dir") {
      const char* v = next();
      if (!v) return false;
      args.artifact_dir = v;
    } else {
      return false;
    }
  }
  return true;
}

std::string hex8(const crypto::Digest& digest) {
  return to_hex_prefix(ByteView(digest.data(), digest.size()), 8);
}

void report(const chaos::Schedule& schedule, const chaos::RunResult& result) {
  std::printf(
      "seed %llu: %s  ops=%llu timeouts=%llu demotions=%llu "
      "envelopes=%llu(+%llu dropped)  states=%llu%s\n"
      "          history=%s envelopes=%s\n",
      static_cast<unsigned long long>(schedule.seed),
      result.failed() ? "FAIL" : "ok",
      static_cast<unsigned long long>(result.ops_completed),
      static_cast<unsigned long long>(result.ops_timed_out),
      static_cast<unsigned long long>(result.gateway_demotions),
      static_cast<unsigned long long>(result.envelopes),
      static_cast<unsigned long long>(result.envelopes_dropped),
      static_cast<unsigned long long>(result.check.states_explored),
      result.check.conclusive ? "" : " (INCONCLUSIVE)",
      hex8(result.history_digest).c_str(),
      hex8(result.envelope_digest).c_str());
}

void dump_artifact(const std::string& dir, const std::string& name,
                   const std::string& content) {
  if (dir.empty()) return;
  std::string path = dir + "/" + name;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write artifact %s\n", path.c_str());
    return;
  }
  out << content << "\n";
  std::printf("artifact: %s\n", path.c_str());
}

/// Runs one schedule; on failure, minimizes and dumps artifacts.
/// Returns true iff the run passed.
bool run_one(const chaos::Harness& harness, const chaos::Schedule& schedule,
             const std::string& artifact_dir) {
  chaos::RunResult result = harness.run(schedule);
  report(schedule, result);
  if (!result.failed()) return true;

  if (!result.check.linearizable) {
    std::printf("--- violation ---\n%s", result.check.violation.c_str());
  }
  if (!result.stores_converged) {
    std::printf("--- correct replicas failed to converge ---\n");
  }
  std::printf("--- schedule ---\n%s", schedule.to_string().c_str());
  std::printf("schedule-hex: %s\n", schedule.to_hex().c_str());

  std::printf("minimizing...\n");
  chaos::Harness::ShrinkResult shrunk = harness.shrink(schedule);
  std::printf("minimized after %u runs (%u events removed):\n%s",
              shrunk.runs, shrunk.removed_events,
              shrunk.schedule.to_string().c_str());
  std::printf("minimized-hex: %s\n", shrunk.schedule.to_hex().c_str());

  std::string tag = std::to_string(schedule.seed);
  dump_artifact(artifact_dir, "chaos-seed-" + tag + ".txt",
                "seed " + tag + "\n" + schedule.to_string() + "hex " +
                    schedule.to_hex());
  dump_artifact(artifact_dir, "chaos-seed-" + tag + "-min.hex",
                shrunk.schedule.to_hex());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage();
    return 2;
  }

  chaos::Harness harness;

  if (!args.replay_file.empty()) {
    std::ifstream in(args.replay_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", args.replay_file.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string hex = buffer.str();
    // Strip whitespace/newlines around the hex blob.
    std::string cleaned;
    for (char c : hex) {
      if (!std::isspace(static_cast<unsigned char>(c))) cleaned += c;
    }
    auto schedule = chaos::Schedule::from_hex(cleaned);
    if (!schedule) {
      std::fprintf(stderr, "malformed schedule hex in %s\n",
                   args.replay_file.c_str());
      return 2;
    }
    std::printf("replaying:\n%s", schedule->to_string().c_str());
    return run_one(harness, *schedule, args.artifact_dir) ? 0 : 1;
  }

  chaos::ScenarioOptions scenario;
  scenario.shards = args.shards;
  scenario.sessions = args.sessions;
  scenario.ops_per_session = args.ops;
  scenario.adaptive = args.adaptive;
  scenario.force_liar = args.inject_bug;

  std::uint64_t first = args.base_set ? args.base : args.seed;
  bool all_passed = true;
  for (std::uint32_t i = 0; i < args.seeds; ++i) {
    chaos::Schedule schedule =
        chaos::generate_schedule(first + i, scenario);
    schedule.unsafe_first_reply_quorum = args.inject_bug;
    if (args.print_only) {
      std::printf("%s", schedule.to_string().c_str());
      continue;
    }
    if (!run_one(harness, schedule, args.artifact_dir)) all_passed = false;
  }
  return all_passed ? 0 : 1;
}
