#include "consensus/selection.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/assert.hpp"

namespace fastbft::consensus {

SelectionResult run_selection(const QuorumConfig& cfg,
                              const std::vector<VoteRecord>& votes,
                              const LeaderFn& leader_of) {
  {
    std::set<ProcessId> voters;
    for (const auto& r : votes) voters.insert(r.voter);
    FASTBFT_ASSERT(voters.size() == votes.size(),
                   "selection requires distinct voters");
  }

  if (votes.size() < cfg.vote_quorum()) return SelectionResult::need_more();

  // Highest view among non-nil votes.
  View w = kNoView;
  for (const auto& r : votes) {
    if (!r.vote.is_nil) w = std::max(w, r.vote.u);
  }
  if (w == kNoView) return SelectionResult::free();  // all nil (Lemma 3.1)

  // Distinct values voted for at view w.
  std::set<Value> values_at_w;
  for (const auto& r : votes) {
    if (!r.vote.is_nil && r.vote.u == w) values_at_w.insert(r.vote.x);
  }
  FASTBFT_ASSERT(!values_at_w.empty(), "w must come from some vote");

  if (values_at_w.size() == 1) {
    SelectionResult r = SelectionResult::forced(*values_at_w.begin());
    r.w = w;
    return r;
  }

  // Two different values carry valid proposer signatures for view w:
  // leader(w) equivocated and is provably Byzantine. Its vote no longer
  // counts; we need n - f votes from the remaining processes.
  ProcessId q = leader_of(w);

  std::vector<const VoteRecord*> others;
  others.reserve(votes.size());
  for (const auto& r : votes) {
    if (r.voter != q) others.push_back(&r);
  }

  auto with_equivocation = [&](SelectionResult r) {
    r.equivocation_detected = true;
    r.equivocator = q;
    r.w = w;
    return r;
  };

  if (others.size() < cfg.vote_quorum()) {
    return with_equivocation(SelectionResult::need_more());
  }

  // Appendix A.2 case 1: a commit certificate for view w among the
  // non-equivocator votes forces its value. (In any state reachable with
  // valid artifacts at most one value can have a commit certificate per
  // view; we still pick deterministically for robustness.)
  std::set<Value> cc_values;
  for (const VoteRecord* r : others) {
    if (r->cc && r->cc->v == w) cc_values.insert(r->cc->x);
  }
  if (!cc_values.empty()) {
    return with_equivocation(SelectionResult::forced(*cc_values.begin()));
  }

  // Case 2: >= f + t votes for one value at view w from non-equivocator
  // processes (2f in the vanilla protocol). If several values qualify —
  // only possible when n exceeds the minimum and nothing was decided at w —
  // any of them is safe; take the smallest for determinism.
  std::map<Value, std::uint32_t> counts;
  for (const VoteRecord* r : others) {
    if (!r->vote.is_nil && r->vote.u == w) counts[r->vote.x] += 1;
  }
  for (const auto& [value, count] : counts) {
    if (count >= cfg.equivocation_vote_threshold()) {
      return with_equivocation(SelectionResult::forced(value));
    }
  }

  // Case 3 / Lemma 3.5: no value could have been decided in any view < v.
  return with_equivocation(SelectionResult::free());
}

bool selection_admits(const QuorumConfig& cfg,
                      const std::vector<VoteRecord>& votes,
                      const LeaderFn& leader_of, const Value& x) {
  SelectionResult result = run_selection(cfg, votes, leader_of);
  switch (result.kind) {
    case SelectionResult::Kind::Forced:
      return result.value == x;
    case SelectionResult::Kind::Free:
      return !x.empty();
    case SelectionResult::Kind::NeedMoreVotes:
      return false;
  }
  return false;
}

}  // namespace fastbft::consensus
