#include "consensus/replica.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace fastbft::consensus {

namespace {
std::string who(ProcessId id) { return "replica-" + std::to_string(id); }
}  // namespace

Replica::Replica(QuorumConfig cfg, ProcessId id, Value input,
                 net::Transport& transport, crypto::Signer signer,
                 crypto::Verifier verifier, LeaderFn leader_of,
                 DecideCallback on_decide, ReplicaOptions options)
    : cfg_(cfg),
      id_(id),
      input_(std::move(input)),
      transport_(transport),
      signer_(std::move(signer)),
      verifier_(std::move(verifier)),
      leader_of_(std::move(leader_of)),
      on_decide_(std::move(on_decide)),
      options_(options) {
  FASTBFT_ASSERT(!input_.empty(), "consensus inputs must be non-empty");
  FASTBFT_ASSERT(id_ < cfg_.n, "replica id out of range");
}

void Replica::start() {
  if (leader_of_(1) == id_) {
    log_debug(who(id_), "view 1 leader proposing input " + input_.to_string());
    send_proposal(input_, ProgressCert{});
  }
}

void Replica::on_message(ProcessId from, ByteView payload) {
  auto parsed = parse_message(payload);
  if (!parsed) {
    log_debug(who(id_), "dropping malformed payload");
    return;
  }
  if (buffer_if_future(from, *parsed, payload)) return;
  handle(from, *parsed);
}

bool Replica::buffer_if_future(ProcessId from, const Message& msg,
                               ByteView payload) {
  // Acks, signed acks and Commits are decision evidence: they remain
  // meaningful for views we already left or have not reached, so they are
  // never buffered. Everything else is view-scoped.
  if (std::holds_alternative<AckMsg>(msg) ||
      std::holds_alternative<AckSigMsg>(msg) ||
      std::holds_alternative<CommitMsg>(msg)) {
    return false;
  }
  View v = message_view(msg);
  if (v <= view_) return false;
  while (future_buffered_total_ >= options_.max_future_buffered) {
    // Full. Evict from the farthest-future view — the synchronizer reaches
    // nearer views first, so their messages are the ones worth keeping. A
    // message farther than everything buffered is dropped outright.
    auto farthest = future_buffer_.rbegin();
    if (farthest == future_buffer_.rend() || farthest->first <= v) {
      return true;  // drop the incoming message
    }
    farthest->second.pop_back();
    --future_buffered_total_;
    if (farthest->second.empty()) {
      future_buffer_.erase(std::prev(future_buffer_.end()));
    }
  }
  future_buffer_[v].emplace_back(from, payload.to_bytes());
  ++future_buffered_total_;
  return true;
}

void Replica::replay_buffered() {
  // Drop buffers for views we skipped past.
  while (!future_buffer_.empty() && future_buffer_.begin()->first < view_) {
    future_buffered_total_ -= future_buffer_.begin()->second.size();
    future_buffer_.erase(future_buffer_.begin());
  }
  auto it = future_buffer_.find(view_);
  if (it == future_buffer_.end()) return;
  std::vector<std::pair<ProcessId, Bytes>> pending = std::move(it->second);
  future_buffered_total_ -= pending.size();
  future_buffer_.erase(it);
  for (auto& [from, payload] : pending) {
    auto parsed = parse_message(payload);
    if (parsed) handle(from, *parsed);
  }
}

void Replica::handle(ProcessId from, const Message& msg) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ProposeMsg>) {
          handle_propose(from, m);
        } else if constexpr (std::is_same_v<T, AckMsg>) {
          handle_ack(from, m);
        } else if constexpr (std::is_same_v<T, AckSigMsg>) {
          handle_ack_sig(from, m);
        } else if constexpr (std::is_same_v<T, CommitMsg>) {
          handle_commit(from, m);
        } else if constexpr (std::is_same_v<T, VoteMsg>) {
          handle_vote(from, m);
        } else if constexpr (std::is_same_v<T, CertReqMsg>) {
          handle_cert_req(from, m);
        } else if constexpr (std::is_same_v<T, CertAckMsg>) {
          handle_cert_ack(from, m);
        }
      },
      msg);
}

void Replica::enter_view(View v) {
  if (v <= view_) return;
  log_debug(who(id_), "entering view " + std::to_string(v));
  view_ = v;
  leader_state_.reset();

  ProcessId leader = leader_of_(v);
  if (leader == id_) {
    leader_state_.emplace();
    leader_state_->v = v;
  }
  send_vote_to(leader, v);
  replay_buffered();
}

void Replica::send_vote_to(ProcessId leader, View v) {
  VoteMsg msg;
  msg.v = v;
  msg.record.voter = id_;
  msg.record.vote = vote_.value_or(Vote::nil());
  if (options_.slow_path && latest_cc_) msg.record.cc = latest_cc_;
  Encoder preimage = Encoder::scratch();
  vote_preimage(preimage, msg.record.vote, msg.record.cc, v);
  msg.record.phi = signer_.sign(kDomVote, preimage.view());
  transport_.send(leader, msg.serialize());
}

// --- Fast path --------------------------------------------------------------

const crypto::Digest& Replica::xv_digest(View v, const Value& x) {
  if (!xv_digest_memo_ || xv_digest_memo_->first.first != v ||
      xv_digest_memo_->first.second != x.bytes()) {
    xv_digest_memo_.emplace(key_of(v, x), xv_preimage_digest(x, v));
  }
  return xv_digest_memo_->second;
}

void Replica::send_proposal(const Value& x, ProgressCert sigma) {
  ProposeMsg msg;
  msg.v = view_;
  msg.x = x;
  msg.sigma = std::move(sigma);
  msg.tau = signer_.sign_digest(kDomPropose, xv_digest(view_, x));
  sent_proposal_ = msg;
  transport_.broadcast(msg.serialize());
}

void Replica::handle_propose(ProcessId from, const ProposeMsg& msg) {
  if (msg.v != view_) return;  // future views buffered, stale ones stale
  if (from != leader_of_(msg.v)) return;
  if (proposal_accepted_.contains(msg.v)) return;
  if (msg.x.empty()) return;
  // Our own broadcast looping back needs no re-verification — but only if
  // it is bit-identical to what we actually sent (a memcmp, not an HMAC);
  // anything else on the self channel takes the full verification path.
  bool own_loopback = from == id_ && sent_proposal_ && msg == *sent_proposal_;
  if (!own_loopback) {
    if (!verifier_.verify_digest(from, kDomPropose, xv_digest(msg.v, msg.x),
                                 msg.tau)) {
      return;
    }
    if (!verify_progress_cert(verifier_, cfg_, msg.x, msg.v, msg.sigma)) {
      return;
    }
  }

  proposal_accepted_.insert(msg.v);
  max_cert_bytes_seen_ = std::max(max_cert_bytes_seen_, msg.sigma.size_bytes());

  // Adopt the vote before acknowledging (Section 3.2: the vote is the last
  // proposal this process acknowledged).
  vote_ = Vote::of(msg.x, msg.v, msg.sigma, msg.tau);

  AckMsg ack;
  ack.v = msg.v;
  ack.x = msg.x;
  transport_.broadcast(ack.serialize());

  if (options_.slow_path) {
    AckSigMsg sig;
    sig.v = msg.v;
    sig.x = msg.x;
    sig.phi_ack = signer_.sign_digest(kDomAck, xv_digest(msg.v, msg.x));
    // Our own signature goes straight into the collection — the loopback
    // copy is ignored in handle_ack_sig, so a forged self acksig can
    // never displace the genuine one. Ours may be the signature that
    // completes the commit quorum (peers' acksigs can arrive before a
    // delayed proposal does), so check for assembly here too.
    auto key = key_of(msg.v, msg.x);
    ack_sigs_[key].emplace(id_, sig.phi_ack);
    transport_.broadcast(sig.serialize());
    maybe_assemble_commit_cert(key);
  }
}

void Replica::handle_ack(ProcessId from, const AckMsg& msg) {
  if (decision_) return;  // quorum bookkeeping is over
  if (msg.x.empty() || msg.v == kNoView) return;
  auto key = key_of(msg.v, msg.x);
  auto& ackers = acks_[key];
  ackers.insert(from);
  if (ackers.size() >= cfg_.fast_quorum()) {
    decide(msg.x, msg.v, /*slow=*/false);
  }
}

// --- Slow path (Appendix A) -------------------------------------------------

void Replica::handle_ack_sig(ProcessId from, const AckSigMsg& msg) {
  if (!options_.slow_path) return;
  // Our own signature was recorded at signing time (handle_propose); the
  // loopback — or anything forged onto the self channel — is ignored.
  // (Checked before building the value-sized map key: this exit is free.)
  if (from == id_) return;
  if (msg.x.empty() || msg.v == kNoView) return;
  auto key = key_of(msg.v, msg.x);
  // Collection continues even after a fast-path decision — the commit
  // certificate this assembles is broadcast exactly once and doubles as
  // the catch-up stream that keeps lagging replicas at the live frontier
  // (see SlotMux). But once OUR Commit went out, further signed acks for
  // this (view, value) buy nothing: skip their HMACs. Peers' signatures
  // check against the shared (x, v) digest, hashed once per proposal
  // instead of once per message.
  if (commit_sent_.contains(key)) return;
  if (!verifier_.verify_digest(from, kDomAck, xv_digest(msg.v, msg.x),
                               msg.phi_ack)) {
    return;
  }
  ack_sigs_[key].emplace(from, msg.phi_ack);
  maybe_assemble_commit_cert(key);
}

void Replica::maybe_assemble_commit_cert(const ValueKey& key) {
  const auto& sigs = ack_sigs_[key];
  if (sigs.size() < cfg_.commit_quorum()) return;
  if (commit_sent_.contains(key)) return;
  commit_sent_.insert(key);

  CommitCert cc;
  cc.v = key.first;
  cc.x = Value(key.second);
  for (const auto& [signer, sig] : sigs) {
    cc.sigs.push_back(SignatureEntry{signer, sig});
    if (cc.sigs.size() == cfg_.commit_quorum()) break;
  }
  adopt_cc(cc);

  CommitMsg msg;
  msg.v = cc.v;
  msg.x = cc.x;
  msg.cc = std::move(cc);
  transport_.broadcast(msg.serialize());
}

void Replica::adopt_cc(const CommitCert& cc) {
  if (!latest_cc_ || cc.v > latest_cc_->v) latest_cc_ = cc;
}

void Replica::handle_commit(ProcessId from, const CommitMsg& msg) {
  if (!options_.slow_path) return;
  if (decision_) return;  // see handle_ack_sig
  if (msg.cc.x != msg.x || msg.cc.v != msg.v) return;
  if (!verify_commit_cert(verifier_, cfg_, msg.cc)) return;
  adopt_cc(msg.cc);
  auto key = key_of(msg.v, msg.x);
  auto& senders = commit_senders_[key];
  senders.insert(from);
  if (senders.size() >= cfg_.commit_quorum()) {
    decide(msg.x, msg.v, /*slow=*/true);
  }
}

// --- View change ------------------------------------------------------------

void Replica::handle_vote(ProcessId from, const VoteMsg& msg) {
  if (msg.v != view_ || !leader_state_) return;
  FASTBFT_ASSERT(leader_of_(msg.v) == id_, "leader state in a foreign view");
  if (leader_state_->proposed || leader_state_->cert_requested) return;
  if (msg.record.voter != from) return;
  if (!options_.slow_path && msg.record.cc) return;
  if (!validate_vote_record(verifier_, cfg_, leader_of_, msg.record, msg.v)) {
    log_debug(who(id_), "rejecting invalid vote from " + std::to_string(from));
    return;
  }
  leader_state_->votes.insert({from, msg.record});
  try_select();
}

void Replica::try_select() {
  FASTBFT_ASSERT(leader_state_.has_value(), "try_select without leadership");
  LeaderState& st = *leader_state_;
  if (st.cert_requested) return;

  std::vector<VoteRecord> records;
  records.reserve(st.votes.size());
  for (const auto& [voter, record] : st.votes) records.push_back(record);

  SelectionResult result = run_selection(cfg_, records, leader_of_);
  switch (result.kind) {
    case SelectionResult::Kind::NeedMoreVotes:
      return;
    case SelectionResult::Kind::Forced:
      st.selected = result.value;
      break;
    case SelectionResult::Kind::Free:
      st.selected = input_;
      break;
  }
  st.cert_requested = true;

  log_debug(who(id_), "view " + std::to_string(view_) + " selected " +
                          st.selected.to_string() +
                          (result.equivocation_detected
                               ? " (equivocation by " +
                                     std::to_string(result.equivocator) + ")"
                               : ""));

  CertReqMsg req;
  req.v = view_;
  req.x = st.selected;
  req.votes = std::move(records);
  Bytes payload = req.serialize();
  if (options_.cert_req_broadcast) {
    transport_.broadcast(payload);
    return;
  }
  // At least 2f+1 distinct targets guarantee f+1 correct CertAck
  // responders. Spread from our own id so repeated leaders do not always
  // load the same prefix of the cluster.
  for (std::uint32_t k = 0; k < cfg_.cert_req_targets(); ++k) {
    transport_.send((id_ + k) % cfg_.n, payload);
  }
}

void Replica::handle_cert_req(ProcessId from, const CertReqMsg& msg) {
  if (msg.v != view_) return;
  if (from != leader_of_(msg.v)) return;
  if (msg.x.empty()) return;

  std::set<ProcessId> voters;
  for (const auto& record : msg.votes) {
    if (!voters.insert(record.voter).second) return;  // duplicate voter
    if (!validate_vote_record(verifier_, cfg_, leader_of_, record, msg.v)) {
      return;
    }
  }
  if (!selection_admits(cfg_, msg.votes, leader_of_, msg.x)) {
    log_debug(who(id_), "CertReq from " + std::to_string(from) +
                            " does not justify " + msg.x.to_string());
    return;
  }

  CertAckMsg ack;
  ack.v = msg.v;
  ack.x = msg.x;
  ack.phi_ca = signer_.sign_digest(kDomCertAck, xv_digest(msg.v, msg.x));
  transport_.send(from, ack.serialize());
}

void Replica::handle_cert_ack(ProcessId from, const CertAckMsg& msg) {
  if (msg.v != view_ || !leader_state_) return;
  LeaderState& st = *leader_state_;
  if (!st.cert_requested || st.proposed) return;
  if (msg.x != st.selected) return;
  if (!verifier_.verify_digest(from, kDomCertAck, xv_digest(msg.v, msg.x),
                               msg.phi_ca)) {
    return;
  }
  st.cert_acks.emplace(from, msg.phi_ca);
  if (st.cert_acks.size() < cfg_.cert_quorum()) return;

  ProgressCert sigma;
  for (const auto& [signer, sig] : st.cert_acks) {
    sigma.acks.push_back(SignatureEntry{signer, sig});
    if (sigma.acks.size() == cfg_.cert_quorum()) break;
  }
  st.proposed = true;
  send_proposal(st.selected, std::move(sigma));
}

// --- Decision ---------------------------------------------------------------

void Replica::decide(const Value& x, View v, bool slow) {
  if (decision_) return;
  decision_ = DecisionRecord{x, v, slow};
  log_info(who(id_), "decided " + x.to_string() + " in view " +
                         std::to_string(v) + (slow ? " (slow path)" : ""));
  if (on_decide_) on_decide_(*decision_);
}

}  // namespace fastbft::consensus
