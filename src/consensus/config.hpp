#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

/// \file config.hpp
/// Quorum arithmetic for the generalized protocol of the paper
/// (Appendix A): n processes, up to f Byzantine, fast (2-step) as long as
/// the actual number of faults is <= t, requiring n >= 3f + 2t - 1.
/// The vanilla Section-3 protocol is the special case t = f
/// (n >= 5f - 1, slow path unused).

namespace fastbft::consensus {

struct QuorumConfig {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  std::uint32_t t = 0;

  /// Validated constructor: enforces 1 <= t <= f and n >= 3f + 2t - 1.
  static QuorumConfig create(std::uint32_t n, std::uint32_t f, std::uint32_t t);

  /// Vanilla protocol of Section 3: t = f, n >= 5f - 1.
  static QuorumConfig vanilla(std::uint32_t n, std::uint32_t f) {
    return create(n, f, f);
  }

  /// Smallest legal cluster for (f, t).
  static std::uint32_t min_processes(std::uint32_t f, std::uint32_t t) {
    return 3 * f + 2 * t - 1;
  }

  /// DELIBERATELY-unsafe constructor used by the lower-bound experiment
  /// (E7): builds a config with n below the 3f+2t-1 bound so the
  /// Theorem 4.5 adversary can be demonstrated. Never use outside tests.
  static QuorumConfig unsafe_for_lower_bound_demo(std::uint32_t n,
                                                  std::uint32_t f,
                                                  std::uint32_t t);

  bool satisfies_bound() const {
    return f >= 1 && t >= 1 && t <= f && n >= min_processes(f, t);
  }

  /// Votes the view-change leader collects (n - f).
  std::uint32_t vote_quorum() const { return n - f; }

  /// Acks required to decide on the fast path (n - t; equals n - f in the
  /// vanilla protocol).
  std::uint32_t fast_quorum() const { return n - t; }

  /// CertAck signatures forming a progress certificate (f + 1).
  std::uint32_t cert_quorum() const { return f + 1; }

  /// Processes the leader sends CertReq to (at least 2f + 1, so that f + 1
  /// correct ones respond even with f faults among them).
  std::uint32_t cert_req_targets() const { return 2 * f + 1; }

  /// Signed acks / Commit messages forming the slow path quorum
  /// ceil((n + f + 1) / 2).
  std::uint32_t commit_quorum() const { return (n + f + 2) / 2; }

  /// Votes for a single value (from processes other than the equivocator)
  /// that force its selection: f + t (2f in the vanilla protocol).
  std::uint32_t equivocation_vote_threshold() const { return f + t; }

  std::string to_string() const;

  friend bool operator==(const QuorumConfig&, const QuorumConfig&) = default;
};

}  // namespace fastbft::consensus
