#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/codec.hpp"
#include "common/types.hpp"
#include "common/value.hpp"
#include "consensus/config.hpp"
#include "crypto/signer.hpp"

/// \file types.hpp
/// Protocol artifacts of the paper's algorithm: votes, progress
/// certificates (Section 3.2) and commit certificates (Appendix A.1),
/// together with the canonical signing preimages and verification helpers.

namespace fastbft::consensus {

/// Deterministic view -> leader map ("agreed upon map leader(v)").
using LeaderFn = std::function<ProcessId(View)>;

/// Round-robin leader assignment: leader(v) = (v - 1) mod n, i.e. process 0
/// leads view 1. Equivalent (up to relabeling) to the paper's
/// p_((v mod n)+1).
LeaderFn round_robin_leader(std::uint32_t n);

/// Signature of one process over some protocol statement.
struct SignatureEntry {
  ProcessId signer = kNoProcess;
  crypto::Signature sig;

  void encode(Encoder& enc) const;
  static std::optional<SignatureEntry> decode(Decoder& dec);
  friend bool operator==(const SignatureEntry&, const SignatureEntry&) = default;
};

/// Progress certificate sigma: f + 1 CertAck signatures proving that at
/// least one correct process checked that the certified value is safe in
/// the certified view. For view 1 the certificate is empty by convention
/// (any value is safe in view 1). The (value, view) pair it certifies is
/// carried by the surrounding message/vote, not duplicated here.
struct ProgressCert {
  std::vector<SignatureEntry> acks;

  bool empty() const { return acks.empty(); }
  std::size_t size_bytes() const;

  void encode(Encoder& enc) const;
  static std::optional<ProgressCert> decode(Decoder& dec);
  friend bool operator==(const ProgressCert&, const ProgressCert&) = default;
};

/// Commit certificate (slow path): ceil((n+f+1)/2) signed acks for the same
/// (value, view). Self-contained because it travels in votes and Commit
/// messages detached from its view context.
struct CommitCert {
  Value x;
  View v = kNoView;
  std::vector<SignatureEntry> sigs;

  void encode(Encoder& enc) const;
  static std::optional<CommitCert> decode(Decoder& dec);

  /// Compact forms used by CommitMsg, whose surrounding message already
  /// carries (x, v): only the signature entries go on the wire and the
  /// decoder reinstates the context. Votes keep the self-contained form.
  void encode_sigs_only(Encoder& enc) const;
  static std::optional<CommitCert> decode_sigs_only(Decoder& dec, Value x,
                                                    View v);

  friend bool operator==(const CommitCert&, const CommitCert&) = default;
};

/// A process's vote: the last proposal it acknowledged. `nil` (is_nil) if it
/// never acknowledged anything. tau is the proposing leader's signature,
/// sigma the progress certificate that accompanied the proposal.
struct Vote {
  bool is_nil = true;
  Value x;
  View u = kNoView;
  ProgressCert sigma;
  crypto::Signature tau;

  static Vote nil() { return Vote{}; }
  static Vote of(Value x, View u, ProgressCert sigma, crypto::Signature tau) {
    return Vote{false, std::move(x), u, std::move(sigma), std::move(tau)};
  }

  void encode(Encoder& enc) const;
  static std::optional<Vote> decode(Decoder& dec);
  friend bool operator==(const Vote&, const Vote&) = default;
};

/// Vote as collected/validated by a leader (and as embedded in CertReq).
struct VoteRecord {
  ProcessId voter = kNoProcess;
  Vote vote;
  std::optional<CommitCert> cc;
  crypto::Signature phi;  // voter's signature binding (vote, cc) to the view

  void encode(Encoder& enc) const;
  static std::optional<VoteRecord> decode(Decoder& dec);
  friend bool operator==(const VoteRecord&, const VoteRecord&) = default;
};

// --- Signing preimages (domain-separated canonical encodings) -------------

inline constexpr const char* kDomPropose = "propose";
inline constexpr const char* kDomAck = "ack";
inline constexpr const char* kDomCertAck = "certack";
inline constexpr const char* kDomVote = "vote";

/// Preimage of tau = sign_leader((propose, x, v)).
Bytes propose_preimage(const Value& x, View v);

/// Preimage of phi_ack = sign_q((ack, x, v)); also what commit-certificate
/// signatures cover.
Bytes ack_preimage(const Value& x, View v);

/// Preimage of phi_ca = sign_q((CertAck, x, v)); what progress-certificate
/// signatures cover.
Bytes certack_preimage(const Value& x, View v);

/// Preimage of phi_vote = sign_q((vote, vote, cc, v)) — binds the vote to
/// the destination view v so votes cannot be replayed across view changes.
Bytes vote_preimage(const Vote& vote, const std::optional<CommitCert>& cc,
                    View v);

/// In-place variant: appends the same canonical vote preimage to `enc`
/// (usually a pooled Encoder::scratch()) instead of materializing a fresh
/// buffer per sign/verify. The Bytes-returning form stays for callers
/// that store the preimage.
void vote_preimage(Encoder& enc, const Vote& vote,
                   const std::optional<CommitCert>& cc, View v);

/// Digest of the shared (x, v) preimage — propose, ack and certack
/// statements all canonicalize to the same bytes (the domain string keeps
/// their signatures apart), so ONE hash of the batch-sized value serves
/// the proposal check, every signed ack and every certificate entry for
/// that (x, v). The hot-path crypto lever; see crypto/signer.hpp.
crypto::Digest xv_preimage_digest(const Value& x, View v);

// --- Verification ----------------------------------------------------------

/// Checks sigma certifies (x, v): empty iff v == 1, otherwise >= f+1
/// signatures from distinct processes over certack_preimage(x, v).
bool verify_progress_cert(const crypto::Verifier& verifier,
                          const QuorumConfig& cfg, const Value& x, View v,
                          const ProgressCert& sigma);

/// Checks a commit certificate: >= commit_quorum signatures from distinct
/// processes over ack_preimage(cc.x, cc.v).
bool verify_commit_cert(const crypto::Verifier& verifier,
                        const QuorumConfig& cfg, const CommitCert& cc);

/// Full vote-record validation as performed by a view-v leader (and by
/// CertAck verifiers re-checking a CertReq):
///  * phi binds (vote, cc) to view v under the voter's key;
///  * a non-nil vote has u in [1, v), a valid tau from leader(u) and a valid
///    progress certificate for (x, u);
///  * an attached commit certificate verifies and has cc.v < v.
bool validate_vote_record(const crypto::Verifier& verifier,
                          const QuorumConfig& cfg, const LeaderFn& leader_of,
                          const VoteRecord& record, View v);

}  // namespace fastbft::consensus
