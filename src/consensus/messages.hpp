#pragma once

#include <optional>
#include <variant>
#include <vector>

#include "consensus/types.hpp"
#include "net/tags.hpp"

/// \file messages.hpp
/// Wire messages of the protocol (Figures 1a, 1b and 5 of the paper), each
/// serialized as tag byte + body. Parsing is total: malformed payloads
/// decode to nullopt and are dropped by the replica, never trusted.

namespace fastbft::consensus {

/// propose(x, v, sigma, tau) — leader's proposal (Section 3.1).
struct ProposeMsg {
  View v = kNoView;
  Value x;
  ProgressCert sigma;
  crypto::Signature tau;

  Bytes serialize() const;
  static std::optional<ProposeMsg> decode(Decoder& dec);
  friend bool operator==(const ProposeMsg&, const ProposeMsg&) = default;
};

/// ack(x, v) — unsigned acknowledgment broadcast on accepting a proposal.
struct AckMsg {
  View v = kNoView;
  Value x;

  Bytes serialize() const;
  static std::optional<AckMsg> decode(Decoder& dec);
};

/// sig(phi_ack) — slow path (Appendix A.1): the signed counterpart of an
/// ack, sent separately so signing latency never delays the fast path.
struct AckSigMsg {
  View v = kNoView;
  Value x;
  crypto::Signature phi_ack;

  Bytes serialize() const;
  static std::optional<AckSigMsg> decode(Decoder& dec);
};

/// Commit(x, v, cc) — slow path: broadcast once a commit certificate is
/// assembled.
struct CommitMsg {
  View v = kNoView;
  Value x;
  CommitCert cc;

  Bytes serialize() const;
  static std::optional<CommitMsg> decode(Decoder& dec);
};

/// vote(vote_q, phi_vote) — sent to the leader of a newly entered view.
struct VoteMsg {
  View v = kNoView;  // destination view
  VoteRecord record;

  Bytes serialize() const;
  static std::optional<VoteMsg> decode(Decoder& dec);
};

/// CertReq(x, votes) — leader asks for confirmation that x was selected
/// correctly from `votes` (Section 3.2, "creating the progress
/// certificate").
struct CertReqMsg {
  View v = kNoView;
  Value x;
  std::vector<VoteRecord> votes;

  Bytes serialize() const;
  static std::optional<CertReqMsg> decode(Decoder& dec);
};

/// CertAck(phi_ca) — signed confirmation returned to the leader.
struct CertAckMsg {
  View v = kNoView;
  Value x;
  crypto::Signature phi_ca;

  Bytes serialize() const;
  static std::optional<CertAckMsg> decode(Decoder& dec);
};

using Message = std::variant<ProposeMsg, AckMsg, AckSigMsg, CommitMsg, VoteMsg,
                             CertReqMsg, CertAckMsg>;

/// Parses a full payload (tag + body). Returns nullopt for unknown tags,
/// truncated or trailing bytes. Takes a view so wrapped/nested payloads
/// parse without being copied out first; the result owns its fields.
std::optional<Message> parse_message(ByteView payload);

/// View number of any protocol message (used for buffering).
View message_view(const Message& msg);

}  // namespace fastbft::consensus
