#include "consensus/config.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace fastbft::consensus {

QuorumConfig QuorumConfig::create(std::uint32_t n, std::uint32_t f,
                                  std::uint32_t t) {
  QuorumConfig cfg{n, f, t};
  FASTBFT_ASSERT(cfg.satisfies_bound(),
                 "QuorumConfig requires 1 <= t <= f and n >= 3f + 2t - 1");
  return cfg;
}

QuorumConfig QuorumConfig::unsafe_for_lower_bound_demo(std::uint32_t n,
                                                       std::uint32_t f,
                                                       std::uint32_t t) {
  FASTBFT_ASSERT(f >= 1 && t >= 1 && t <= f && n >= 2 * f + t,
                 "even the unsafe config needs enough processes to run");
  return QuorumConfig{n, f, t};
}

std::string QuorumConfig::to_string() const {
  std::ostringstream out;
  out << "n=" << n << " f=" << f << " t=" << t
      << " (fast=" << fast_quorum() << ", votes=" << vote_quorum()
      << ", commit=" << commit_quorum() << ")";
  return out.str();
}

}  // namespace fastbft::consensus
