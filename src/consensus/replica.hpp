#pragma once

#include <map>
#include <optional>
#include <set>

#include "consensus/messages.hpp"
#include "consensus/selection.hpp"
#include "net/transport.hpp"

/// \file replica.hpp
/// Single-shot consensus engine implementing the paper's protocol: the
/// fast path (propose/ack, Section 3.1), the optional slow path (signed
/// acks + commit certificates, Appendix A) and the view-change protocol
/// (vote collection, selection, CertReq/CertAck, Section 3.2).
///
/// The replica is transport- and scheduler-agnostic: it reacts to
/// `on_message` and to `enter_view` notifications from an external view
/// synchronizer (see viewsync::Synchronizer), and emits messages through a
/// net::Transport. This keeps the protocol logic deterministic and
/// independently testable.

namespace fastbft::consensus {

struct ReplicaOptions {
  /// Enables the Appendix-A slow path (signed acks, commit certificates,
  /// Commit messages). The vanilla Section-3 protocol runs with this off.
  bool slow_path = true;

  /// Ablation knob (bench_ablation): send CertReq to all n processes
  /// instead of the paper's minimal 2f + 1. Same liveness (f + 1 correct
  /// responders either way), more traffic, marginally faster certificate
  /// assembly under faults.
  bool cert_req_broadcast = false;

  /// Cap on messages buffered for views not yet entered. A Byzantine
  /// flooder spraying far-future views would otherwise grow the buffer
  /// without bound; at the cap, entries for the farthest-future view are
  /// evicted in favour of nearer ones (which the synchronizer will reach
  /// first), and messages farther than everything buffered are dropped.
  std::size_t max_future_buffered = 4096;
};

/// Everything a replica observed about one decision; surfaced to the
/// runtime layer for latency/metrics accounting.
struct DecisionRecord {
  Value value;
  View view = kNoView;
  bool via_slow_path = false;
};

class Replica {
 public:
  using DecideCallback = std::function<void(const DecisionRecord&)>;

  Replica(QuorumConfig cfg, ProcessId id, Value input,
          net::Transport& transport, crypto::Signer signer,
          crypto::Verifier verifier, LeaderFn leader_of,
          DecideCallback on_decide, ReplicaOptions options = {});

  /// Kicks off view 1: the first leader proposes its input immediately.
  void start();

  /// Handles one wire message. `from` is the authenticated channel
  /// identity (the simulated network guarantees it, matching the model).
  /// The payload is only viewed; it is copied iff it must be buffered for
  /// a future view (the cold path).
  void on_message(ProcessId from, ByteView payload);

  /// View-synchronizer notification. Views are monotone; stale calls are
  /// ignored.
  void enter_view(View v);

  // --- Introspection (tests, metrics) ---------------------------------------

  View view() const { return view_; }
  const std::optional<DecisionRecord>& decision() const { return decision_; }
  const std::optional<Vote>& current_vote() const { return vote_; }
  const std::optional<CommitCert>& latest_cc() const { return latest_cc_; }
  const QuorumConfig& config() const { return cfg_; }
  ProcessId id() const { return id_; }
  const Value& input() const { return input_; }

  /// Size in bytes of the largest progress certificate this replica has
  /// ever accepted in a proposal (experiment E4).
  std::size_t max_cert_bytes_seen() const { return max_cert_bytes_seen_; }

  /// Messages currently buffered for future views (bounded by
  /// ReplicaOptions::max_future_buffered).
  std::size_t future_buffered_total() const { return future_buffered_total_; }

 private:
  struct LeaderState {
    View v = kNoView;
    std::map<ProcessId, VoteRecord> votes;
    bool cert_requested = false;
    Value selected;
    std::map<ProcessId, crypto::Signature> cert_acks;
    bool proposed = false;
  };

  using ValueKey = std::pair<View, Bytes>;

  void handle(ProcessId from, const Message& msg);
  void handle_propose(ProcessId from, const ProposeMsg& msg);
  void handle_ack(ProcessId from, const AckMsg& msg);
  void handle_ack_sig(ProcessId from, const AckSigMsg& msg);
  void handle_commit(ProcessId from, const CommitMsg& msg);
  void handle_vote(ProcessId from, const VoteMsg& msg);
  void handle_cert_req(ProcessId from, const CertReqMsg& msg);
  void handle_cert_ack(ProcessId from, const CertAckMsg& msg);

  /// Leader: re-runs selection on the collected votes and, once it
  /// resolves, starts the certification round (or proposes directly when
  /// bounded certificates are disabled).
  void try_select();

  /// Leader: broadcasts propose(x, v, sigma, tau).
  void send_proposal(const Value& x, ProgressCert sigma);

  void send_vote_to(ProcessId leader, View v);
  void decide(const Value& x, View v, bool slow);
  void maybe_assemble_commit_cert(const ValueKey& key);
  void adopt_cc(const CommitCert& cc);

  bool buffer_if_future(ProcessId from, const Message& msg, ByteView payload);
  void replay_buffered();

  /// One-slot memo of the shared (x, v) preimage digest: the proposal
  /// check, our signed ack, every peer's signed ack and the certificate
  /// entries for the accepted proposal all hash the same batch-sized
  /// preimage — compute it once per (view, value) instead of per message.
  const crypto::Digest& xv_digest(View v, const Value& x);

  static ValueKey key_of(View v, const Value& x) {
    return {v, x.bytes()};
  }

  QuorumConfig cfg_;
  ProcessId id_;
  Value input_;
  net::Transport& transport_;
  crypto::Signer signer_;
  crypto::Verifier verifier_;
  LeaderFn leader_of_;
  DecideCallback on_decide_;
  ReplicaOptions options_;

  View view_ = 1;
  std::optional<Vote> vote_;
  std::optional<CommitCert> latest_cc_;
  std::optional<DecisionRecord> decision_;

  /// Views in which a proposal was already accepted (first one wins).
  std::set<View> proposal_accepted_;

  /// Fast-path ack bookkeeping: (view, value) -> ackers.
  std::map<ValueKey, std::set<ProcessId>> acks_;

  /// Slow-path signed acks: (view, value) -> signer -> signature.
  std::map<ValueKey, std::map<ProcessId, crypto::Signature>> ack_sigs_;

  /// Slow-path Commit senders: (view, value) -> senders with a valid cc.
  std::map<ValueKey, std::set<ProcessId>> commit_senders_;

  /// (view, value) pairs for which we already broadcast Commit.
  std::set<ValueKey> commit_sent_;

  std::optional<LeaderState> leader_state_;

  /// Backing store of xv_digest().
  std::optional<std::pair<ValueKey, crypto::Digest>> xv_digest_memo_;

  /// The proposal we last broadcast as leader; its loopback is accepted by
  /// bitwise equality instead of re-verification.
  std::optional<ProposeMsg> sent_proposal_;

  /// Messages for views we have not entered yet, replayed on enter_view.
  std::map<View, std::vector<std::pair<ProcessId, Bytes>>> future_buffer_;
  std::size_t future_buffered_total_ = 0;

  std::size_t max_cert_bytes_seen_ = 0;
};

}  // namespace fastbft::consensus
