#pragma once

#include <vector>

#include "consensus/types.hpp"

/// \file selection.hpp
/// The selection algorithm of Section 3.2 / Appendix A.2 as a pure
/// deterministic function over a set of validated votes. Both the
/// view-change leader and every CertAck verifier run the same function, so
/// a progress certificate exists iff at least one correct process confirmed
/// the selection — exactly the paper's soundness argument.
///
/// The paper's "restart the selection if w changed" step is subsumed by
/// re-running the function whenever a new vote arrives: w is recomputed
/// from scratch each time and can only grow.

namespace fastbft::consensus {

struct SelectionResult {
  enum class Kind {
    /// Exactly this value is safe to propose.
    Forced,
    /// Any value is safe in the new view (leader proposes its own input).
    Free,
    /// Not enough (non-equivocator) votes yet; keep collecting.
    NeedMoreVotes,
  };

  Kind kind = Kind::NeedMoreVotes;
  Value value;  // meaningful iff kind == Forced

  /// Filled when two valid votes expose conflicting proposals signed by the
  /// same past leader — undeniable evidence that `equivocator` is Byzantine.
  bool equivocation_detected = false;
  ProcessId equivocator = kNoProcess;

  /// Highest view among the non-nil votes (kNoView if all nil).
  View w = kNoView;

  static SelectionResult forced(Value v) {
    SelectionResult r;
    r.kind = Kind::Forced;
    r.value = std::move(v);
    return r;
  }
  static SelectionResult free() {
    SelectionResult r;
    r.kind = Kind::Free;
    return r;
  }
  static SelectionResult need_more() { return SelectionResult{}; }
};

/// Runs the selection algorithm over `votes`.
///
/// Preconditions (enforced by callers, asserted here):
///  * all records passed `validate_vote_record` for the same target view;
///  * voters are pairwise distinct.
///
/// Branches implemented (paper references):
///  1. fewer than n-f votes                          -> NeedMoreVotes
///  2. all votes nil (Lemma 3.1)                     -> Free
///  3. unique value at the highest view w (L. 3.3)   -> Forced(x)
///  4. equivocation by q = leader(w):
///     a. fewer than n-f votes from others           -> NeedMoreVotes
///     b. commit certificate for (x, w) among them
///        (Appendix A.2 case 1)                      -> Forced(x)
///     c. >= f+t votes for x at w from others
///        (case 2; 2f in the vanilla t = f protocol,
///        Lemma 3.4)                                 -> Forced(x)
///     d. otherwise (case 3, Lemma 3.5)              -> Free
///
/// When more than one candidate satisfies 4c (possible only if n exceeds
/// the 3f+2t-1 minimum AND no value was actually decided at w — see the
/// counting argument in tests/test_selection.cpp), the lexicographically
/// smallest value is chosen so that leader and verifiers agree.
SelectionResult run_selection(const QuorumConfig& cfg,
                              const std::vector<VoteRecord>& votes,
                              const LeaderFn& leader_of);

/// Verifier side of CertReq: does the leader-supplied vote set justify
/// proposing `x`? True iff selection yields Forced(x), or Free (any value
/// is safe, including the leader's own input).
bool selection_admits(const QuorumConfig& cfg,
                      const std::vector<VoteRecord>& votes,
                      const LeaderFn& leader_of, const Value& x);

}  // namespace fastbft::consensus
