#include "consensus/types.hpp"

#include <set>

namespace fastbft::consensus {

LeaderFn round_robin_leader(std::uint32_t n) {
  return [n](View v) -> ProcessId {
    return static_cast<ProcessId>((v - 1) % n);
  };
}

// --- SignatureEntry ---------------------------------------------------------

void SignatureEntry::encode(Encoder& enc) const {
  enc.u32(signer);
  sig.encode(enc);
}

std::optional<SignatureEntry> SignatureEntry::decode(Decoder& dec) {
  SignatureEntry e;
  e.signer = dec.u32();
  auto sig = crypto::Signature::decode(dec);
  if (!sig) return std::nullopt;
  e.sig = std::move(*sig);
  return e;
}

namespace {

void encode_entries(Encoder& enc, const std::vector<SignatureEntry>& entries) {
  enc.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) e.encode(enc);
}

std::optional<std::vector<SignatureEntry>> decode_entries(Decoder& dec) {
  std::uint32_t count = dec.u32();
  if (!dec.ok() || count > 4096) return std::nullopt;
  std::vector<SignatureEntry> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto e = SignatureEntry::decode(dec);
    if (!e) return std::nullopt;
    out.push_back(std::move(*e));
  }
  return out;
}

/// Counts entries with distinct signers whose signature over the statement
/// digested as `preimage_digest` verifies under `domain`. The preimage is
/// hashed once by the caller and shared across every entry; verdicts are
/// memoized because the same (signer, preimage, sig) entries recur across
/// certificates (commit certs embed previously seen acksigs; CertReq
/// replays the same vote records to 2f+1 validators).
std::uint32_t count_valid_distinct(const crypto::Verifier& verifier,
                                   const std::vector<SignatureEntry>& entries,
                                   const char* domain,
                                   const crypto::Digest& preimage_digest) {
  std::set<ProcessId> seen;
  for (const auto& e : entries) {
    if (seen.contains(e.signer)) continue;
    if (verifier.verify_digest_memo(e.signer, domain, preimage_digest,
                                    e.sig)) {
      seen.insert(e.signer);
    }
  }
  return static_cast<std::uint32_t>(seen.size());
}

}  // namespace

// --- ProgressCert -----------------------------------------------------------

std::size_t ProgressCert::size_bytes() const {
  Encoder enc = Encoder::scratch();
  encode(enc);
  return enc.size();
}

void ProgressCert::encode(Encoder& enc) const { encode_entries(enc, acks); }

std::optional<ProgressCert> ProgressCert::decode(Decoder& dec) {
  auto entries = decode_entries(dec);
  if (!entries) return std::nullopt;
  return ProgressCert{std::move(*entries)};
}

// --- CommitCert -------------------------------------------------------------

void CommitCert::encode(Encoder& enc) const {
  x.encode(enc);
  enc.u64(v);
  encode_entries(enc, sigs);
}

std::optional<CommitCert> CommitCert::decode(Decoder& dec) {
  CommitCert cc;
  auto x = Value::decode(dec);
  if (!x) return std::nullopt;
  cc.x = std::move(*x);
  cc.v = dec.u64();
  auto entries = decode_entries(dec);
  if (!entries) return std::nullopt;
  cc.sigs = std::move(*entries);
  return cc;
}

void CommitCert::encode_sigs_only(Encoder& enc) const {
  encode_entries(enc, sigs);
}

std::optional<CommitCert> CommitCert::decode_sigs_only(Decoder& dec, Value x,
                                                       View v) {
  auto entries = decode_entries(dec);
  if (!entries) return std::nullopt;
  CommitCert cc;
  cc.x = std::move(x);
  cc.v = v;
  cc.sigs = std::move(*entries);
  return cc;
}

// --- Vote -------------------------------------------------------------------

void Vote::encode(Encoder& enc) const {
  enc.boolean(is_nil);
  if (is_nil) return;
  x.encode(enc);
  enc.u64(u);
  sigma.encode(enc);
  tau.encode(enc);
}

std::optional<Vote> Vote::decode(Decoder& dec) {
  Vote vote;
  vote.is_nil = dec.boolean();
  if (!dec.ok()) return std::nullopt;
  if (vote.is_nil) return vote;
  auto x = Value::decode(dec);
  if (!x) return std::nullopt;
  vote.x = std::move(*x);
  vote.u = dec.u64();
  auto sigma = ProgressCert::decode(dec);
  if (!sigma) return std::nullopt;
  vote.sigma = std::move(*sigma);
  auto tau = crypto::Signature::decode(dec);
  if (!tau) return std::nullopt;
  vote.tau = std::move(*tau);
  return vote;
}

// --- VoteRecord -------------------------------------------------------------

void VoteRecord::encode(Encoder& enc) const {
  enc.u32(voter);
  vote.encode(enc);
  enc.boolean(cc.has_value());
  if (cc) cc->encode(enc);
  phi.encode(enc);
}

std::optional<VoteRecord> VoteRecord::decode(Decoder& dec) {
  VoteRecord r;
  r.voter = dec.u32();
  auto vote = Vote::decode(dec);
  if (!vote) return std::nullopt;
  r.vote = std::move(*vote);
  bool has_cc = dec.boolean();
  if (!dec.ok()) return std::nullopt;
  if (has_cc) {
    auto cc = CommitCert::decode(dec);
    if (!cc) return std::nullopt;
    r.cc = std::move(*cc);
  }
  auto phi = crypto::Signature::decode(dec);
  if (!phi) return std::nullopt;
  r.phi = std::move(*phi);
  return r;
}

// --- Preimages --------------------------------------------------------------

namespace {
void xv_preimage(Encoder& enc, const Value& x, View v) {
  x.encode(enc);
  enc.u64(v);
}

Bytes xv_preimage(const Value& x, View v) {
  Encoder enc(x.size() + 12);
  xv_preimage(enc, x, v);
  return std::move(enc).take();
}
}  // namespace

Bytes propose_preimage(const Value& x, View v) { return xv_preimage(x, v); }
Bytes ack_preimage(const Value& x, View v) { return xv_preimage(x, v); }
Bytes certack_preimage(const Value& x, View v) { return xv_preimage(x, v); }

void vote_preimage(Encoder& enc, const Vote& vote,
                   const std::optional<CommitCert>& cc, View v) {
  vote.encode(enc);
  enc.boolean(cc.has_value());
  if (cc) cc->encode(enc);
  enc.u64(v);
}

Bytes vote_preimage(const Vote& vote, const std::optional<CommitCert>& cc,
                    View v) {
  Encoder enc;
  vote_preimage(enc, vote, cc, v);
  return std::move(enc).take();
}

crypto::Digest xv_preimage_digest(const Value& x, View v) {
  Encoder preimage = Encoder::scratch();
  xv_preimage(preimage, x, v);
  return crypto::message_digest(preimage.view());
}

// --- Verification -----------------------------------------------------------

bool verify_progress_cert(const crypto::Verifier& verifier,
                          const QuorumConfig& cfg, const Value& x, View v,
                          const ProgressCert& sigma) {
  if (v == 1) return sigma.empty();
  return count_valid_distinct(verifier, sigma.acks, kDomCertAck,
                              xv_preimage_digest(x, v)) >= cfg.cert_quorum();
}

bool verify_commit_cert(const crypto::Verifier& verifier,
                        const QuorumConfig& cfg, const CommitCert& cc) {
  if (cc.v == kNoView || cc.x.empty()) return false;
  return count_valid_distinct(verifier, cc.sigs, kDomAck,
                              xv_preimage_digest(cc.x, cc.v)) >=
         cfg.commit_quorum();
}

bool validate_vote_record(const crypto::Verifier& verifier,
                          const QuorumConfig& cfg, const LeaderFn& leader_of,
                          const VoteRecord& record, View v) {
  if (record.voter >= cfg.n) return false;
  {
    // Memoized: the leader validates each vote on arrival and every
    // CertReq receiver re-validates the same records.
    Encoder preimage = Encoder::scratch();
    vote_preimage(preimage, record.vote, record.cc, v);
    if (!verifier.verify_digest_memo(record.voter, kDomVote,
                                     crypto::message_digest(preimage.view()),
                                     record.phi)) {
      return false;
    }
  }
  const Vote& vote = record.vote;
  if (!vote.is_nil) {
    if (vote.u < 1 || vote.u >= v) return false;
    if (vote.x.empty()) return false;
    if (!verifier.verify_digest_memo(leader_of(vote.u), kDomPropose,
                                     xv_preimage_digest(vote.x, vote.u),
                                     vote.tau)) {
      return false;
    }
    if (!verify_progress_cert(verifier, cfg, vote.x, vote.u, vote.sigma)) {
      return false;
    }
  }
  if (record.cc) {
    if (record.cc->v >= v) return false;
    if (!verify_commit_cert(verifier, cfg, *record.cc)) return false;
  }
  return true;
}

}  // namespace fastbft::consensus
