#include "consensus/messages.hpp"

namespace fastbft::consensus {

namespace {

template <typename Body>
Bytes with_tag(std::uint8_t tag, const Body& body) {
  Encoder enc;
  enc.u8(tag);
  body(enc);
  return std::move(enc).take();
}

}  // namespace

// --- ProposeMsg -------------------------------------------------------------

Bytes ProposeMsg::serialize() const {
  return with_tag(net::tags::kPropose, [&](Encoder& enc) {
    enc.u64(v);
    x.encode(enc);
    sigma.encode(enc);
    tau.encode(enc);
  });
}

std::optional<ProposeMsg> ProposeMsg::decode(Decoder& dec) {
  ProposeMsg m;
  m.v = dec.u64();
  auto x = Value::decode(dec);
  if (!x) return std::nullopt;
  m.x = std::move(*x);
  auto sigma = ProgressCert::decode(dec);
  if (!sigma) return std::nullopt;
  m.sigma = std::move(*sigma);
  auto tau = crypto::Signature::decode(dec);
  if (!tau) return std::nullopt;
  m.tau = std::move(*tau);
  return m;
}

// --- AckMsg -----------------------------------------------------------------

Bytes AckMsg::serialize() const {
  return with_tag(net::tags::kAck, [&](Encoder& enc) {
    enc.u64(v);
    x.encode(enc);
  });
}

std::optional<AckMsg> AckMsg::decode(Decoder& dec) {
  AckMsg m;
  m.v = dec.u64();
  auto x = Value::decode(dec);
  if (!x) return std::nullopt;
  m.x = std::move(*x);
  return m;
}

// --- AckSigMsg --------------------------------------------------------------

Bytes AckSigMsg::serialize() const {
  return with_tag(net::tags::kAckSig, [&](Encoder& enc) {
    enc.u64(v);
    x.encode(enc);
    phi_ack.encode(enc);
  });
}

std::optional<AckSigMsg> AckSigMsg::decode(Decoder& dec) {
  AckSigMsg m;
  m.v = dec.u64();
  auto x = Value::decode(dec);
  if (!x) return std::nullopt;
  m.x = std::move(*x);
  auto sig = crypto::Signature::decode(dec);
  if (!sig) return std::nullopt;
  m.phi_ack = std::move(*sig);
  return m;
}

// --- CommitMsg --------------------------------------------------------------

Bytes CommitMsg::serialize() const {
  // Wire compaction: a Commit is only meaningful when cc certifies exactly
  // (x, v) — the receiver rejects mismatches — so the certificate's own
  // (x, v) copy is elided on the wire and reconstructed on decode. This
  // halves the largest steady-state message (the value dominates).
  return with_tag(net::tags::kCommit, [&](Encoder& enc) {
    enc.u64(v);
    x.encode(enc);
    cc.encode_sigs_only(enc);
  });
}

std::optional<CommitMsg> CommitMsg::decode(Decoder& dec) {
  CommitMsg m;
  m.v = dec.u64();
  auto x = Value::decode(dec);
  if (!x) return std::nullopt;
  m.x = std::move(*x);
  auto cc = CommitCert::decode_sigs_only(dec, m.x, m.v);
  if (!cc) return std::nullopt;
  m.cc = std::move(*cc);
  return m;
}

// --- VoteMsg ----------------------------------------------------------------

Bytes VoteMsg::serialize() const {
  return with_tag(net::tags::kVote, [&](Encoder& enc) {
    enc.u64(v);
    record.encode(enc);
  });
}

std::optional<VoteMsg> VoteMsg::decode(Decoder& dec) {
  VoteMsg m;
  m.v = dec.u64();
  auto record = VoteRecord::decode(dec);
  if (!record) return std::nullopt;
  m.record = std::move(*record);
  return m;
}

// --- CertReqMsg -------------------------------------------------------------

Bytes CertReqMsg::serialize() const {
  return with_tag(net::tags::kCertReq, [&](Encoder& enc) {
    enc.u64(v);
    x.encode(enc);
    enc.u32(static_cast<std::uint32_t>(votes.size()));
    for (const auto& r : votes) r.encode(enc);
  });
}

std::optional<CertReqMsg> CertReqMsg::decode(Decoder& dec) {
  CertReqMsg m;
  m.v = dec.u64();
  auto x = Value::decode(dec);
  if (!x) return std::nullopt;
  m.x = std::move(*x);
  std::uint32_t count = dec.u32();
  if (!dec.ok() || count > 4096) return std::nullopt;
  m.votes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto r = VoteRecord::decode(dec);
    if (!r) return std::nullopt;
    m.votes.push_back(std::move(*r));
  }
  return m;
}

// --- CertAckMsg -------------------------------------------------------------

Bytes CertAckMsg::serialize() const {
  return with_tag(net::tags::kCertAck, [&](Encoder& enc) {
    enc.u64(v);
    x.encode(enc);
    phi_ca.encode(enc);
  });
}

std::optional<CertAckMsg> CertAckMsg::decode(Decoder& dec) {
  CertAckMsg m;
  m.v = dec.u64();
  auto x = Value::decode(dec);
  if (!x) return std::nullopt;
  m.x = std::move(*x);
  auto sig = crypto::Signature::decode(dec);
  if (!sig) return std::nullopt;
  m.phi_ca = std::move(*sig);
  return m;
}

// --- parse ------------------------------------------------------------------

namespace {
template <typename T>
std::optional<Message> finish(Decoder& dec) {
  auto m = T::decode(dec);
  if (!m || !dec.ok() || !dec.at_end()) return std::nullopt;
  return Message(std::move(*m));
}
}  // namespace

std::optional<Message> parse_message(ByteView payload) {
  if (payload.empty()) return std::nullopt;
  Decoder dec(payload);
  std::uint8_t tag = dec.u8();
  switch (tag) {
    case net::tags::kPropose: return finish<ProposeMsg>(dec);
    case net::tags::kAck: return finish<AckMsg>(dec);
    case net::tags::kAckSig: return finish<AckSigMsg>(dec);
    case net::tags::kCommit: return finish<CommitMsg>(dec);
    case net::tags::kVote: return finish<VoteMsg>(dec);
    case net::tags::kCertReq: return finish<CertReqMsg>(dec);
    case net::tags::kCertAck: return finish<CertAckMsg>(dec);
    default: return std::nullopt;
  }
}

View message_view(const Message& msg) {
  return std::visit([](const auto& m) { return m.v; }, msg);
}

}  // namespace fastbft::consensus
