#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "common/codec.hpp"

/// \file value.hpp
/// The opaque value processes agree on. Consensus never inspects the
/// contents; equality and a canonical encoding are all the protocol needs.
/// The SMR layer stores serialized commands in here.

namespace fastbft {

class Value {
 public:
  Value() = default;
  explicit Value(Bytes bytes) : bytes_(std::move(bytes)) {}

  static Value of_string(std::string_view s) { return Value(to_bytes(s)); }
  static Value of_u64(std::uint64_t v);

  const Bytes& bytes() const { return bytes_; }
  bool empty() const { return bytes_.empty(); }
  std::size_t size() const { return bytes_.size(); }

  /// Human-readable rendering for logs: printable ASCII shown verbatim,
  /// otherwise hex prefix.
  std::string to_string() const;

  void encode(Encoder& enc) const { enc.bytes(bytes_); }
  static std::optional<Value> decode(Decoder& dec);

  friend bool operator==(const Value& a, const Value& b) = default;
  friend auto operator<=>(const Value& a, const Value& b) = default;

 private:
  Bytes bytes_;
};

}  // namespace fastbft
