#pragma once

#include <compare>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "common/codec.hpp"

/// \file value.hpp
/// The opaque value processes agree on. Consensus never inspects the
/// contents; equality and a canonical encoding are all the protocol needs.
/// The SMR layer stores serialized command batches in here.
///
/// Values are refcount-shared: the byte buffer is materialized once (at
/// parse or construction) and every subsequent copy — into the engine's
/// reorder buffer, the catch-up policy's decided-value retention, claim
/// sets, decision records — aliases it instead of duplicating a whole
/// command batch per hop. Buffers are immutable, so sharing is safe across
/// all single-threaded consumers of one node; Values never cross node
/// boundaries except through the (also refcounted) network payloads.

namespace fastbft {

class Value {
 public:
  Value() : buf_(empty_buffer()) {}
  explicit Value(Bytes bytes)
      : buf_(bytes.empty()
                 ? empty_buffer()
                 : std::make_shared<const Bytes>(std::move(bytes))) {}

  static Value of_string(std::string_view s) { return Value(to_bytes(s)); }
  static Value of_u64(std::uint64_t v);

  const Bytes& bytes() const { return *buf_; }
  bool empty() const { return buf_->empty(); }
  std::size_t size() const { return buf_->size(); }

  /// Human-readable rendering for logs: printable ASCII shown verbatim,
  /// otherwise hex prefix.
  std::string to_string() const;

  void encode(Encoder& enc) const { enc.bytes(*buf_); }
  static std::optional<Value> decode(Decoder& dec);

  friend bool operator==(const Value& a, const Value& b) {
    return a.buf_ == b.buf_ || *a.buf_ == *b.buf_;
  }
  friend auto operator<=>(const Value& a, const Value& b) {
    return *a.buf_ <=> *b.buf_;
  }

  /// Buffer owners (diagnostics/tests): how many Values share this buffer.
  long use_count() const { return buf_.use_count(); }

 private:
  static const std::shared_ptr<const Bytes>& empty_buffer();

  /// Never null (empty values point at the shared empty buffer).
  std::shared_ptr<const Bytes> buf_;
};

}  // namespace fastbft
