#include "common/bytes.hpp"

#include <algorithm>

namespace fastbft {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(const Bytes& data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

std::string to_hex_prefix(const Bytes& data, std::size_t max_bytes) {
  if (data.size() <= max_bytes) return to_hex(data);
  Bytes prefix(data.begin(), data.begin() + static_cast<long>(max_bytes));
  return to_hex(prefix) + "..";
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return {};
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    int hi = hex_value(hex[i]);
    int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool bytes_equal(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

std::vector<Bytes> split_chunks(const Bytes& data, std::size_t chunk_size) {
  if (chunk_size == 0) chunk_size = 1;
  std::vector<Bytes> chunks;
  if (data.empty()) {
    chunks.emplace_back();
    return chunks;
  }
  chunks.reserve((data.size() + chunk_size - 1) / chunk_size);
  for (std::size_t offset = 0; offset < data.size(); offset += chunk_size) {
    std::size_t end = std::min(offset + chunk_size, data.size());
    chunks.emplace_back(data.begin() + static_cast<long>(offset),
                        data.begin() + static_cast<long>(end));
  }
  return chunks;
}

}  // namespace fastbft
