#include "common/bytes.hpp"

#include <algorithm>
#include <atomic>

namespace fastbft {

namespace {
std::atomic<std::uint64_t> g_payload_allocs{0};
std::atomic<std::uint64_t> g_payload_alloc_bytes{0};
std::atomic<std::uint64_t> g_envelope_allocs{0};
std::atomic<std::uint64_t> g_envelope_reuses{0};
std::atomic<std::uint64_t>
    g_group_broadcasts[PayloadStats::kMaxTrackedGroups]{};

std::uint32_t clamp_group(std::uint32_t group) {
  return std::min(group, PayloadStats::kMaxTrackedGroups - 1);
}

thread_local std::uint64_t t_payload_allocs = 0;
}  // namespace

void PayloadStats::record_alloc(std::size_t bytes) {
  g_payload_allocs.fetch_add(1, std::memory_order_relaxed);
  g_payload_alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
  ++t_payload_allocs;
}

std::uint64_t PayloadStats::thread_allocs() { return t_payload_allocs; }

std::uint64_t PayloadStats::allocs() {
  return g_payload_allocs.load(std::memory_order_relaxed);
}

std::uint64_t PayloadStats::alloc_bytes() {
  return g_payload_alloc_bytes.load(std::memory_order_relaxed);
}

void PayloadStats::record_envelope_alloc() {
  g_envelope_allocs.fetch_add(1, std::memory_order_relaxed);
}

void PayloadStats::record_envelope_reuse() {
  g_envelope_reuses.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t PayloadStats::envelope_allocs() {
  return g_envelope_allocs.load(std::memory_order_relaxed);
}

std::uint64_t PayloadStats::envelope_reuses() {
  return g_envelope_reuses.load(std::memory_order_relaxed);
}

void PayloadStats::record_group_broadcast(std::uint32_t group) {
  g_group_broadcasts[clamp_group(group)].fetch_add(1,
                                                   std::memory_order_relaxed);
}

std::uint64_t PayloadStats::group_broadcasts(std::uint32_t group) {
  return g_group_broadcasts[clamp_group(group)].load(
      std::memory_order_relaxed);
}

void PayloadStats::reset() {
  g_payload_allocs.store(0, std::memory_order_relaxed);
  g_payload_alloc_bytes.store(0, std::memory_order_relaxed);
  g_envelope_allocs.store(0, std::memory_order_relaxed);
  g_envelope_reuses.store(0, std::memory_order_relaxed);
  for (auto& counter : g_group_broadcasts) {
    counter.store(0, std::memory_order_relaxed);
  }
}

SharedBytes::SharedBytes(Bytes bytes)
    : ptr_(std::make_shared<const Bytes>(std::move(bytes))) {
  PayloadStats::record_alloc(ptr_->size());
}

const std::shared_ptr<const Bytes>& SharedBytes::empty_buffer() {
  static const std::shared_ptr<const Bytes> empty =
      std::make_shared<const Bytes>();
  return empty;
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(ByteView data) {
  std::string out(data.size() * 2, '\0');
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i * 2] = kHexDigits[data[i] >> 4];
    out[i * 2 + 1] = kHexDigits[data[i] & 0x0f];
  }
  return out;
}

std::string to_hex_prefix(ByteView data, std::size_t max_bytes) {
  if (data.size() <= max_bytes) return to_hex(data);
  return to_hex(data.sub(0, max_bytes)) + "..";
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return {};
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    int hi = hex_value(hex[i]);
    int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool bytes_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

std::vector<Bytes> split_chunks(const Bytes& data, std::size_t chunk_size) {
  std::vector<ByteView> views = split_chunk_views(data, chunk_size);
  std::vector<Bytes> chunks;
  chunks.reserve(views.size());
  for (ByteView v : views) chunks.push_back(v.to_bytes());
  return chunks;
}

std::vector<ByteView> split_chunk_views(ByteView data,
                                        std::size_t chunk_size) {
  if (chunk_size == 0) chunk_size = 1;
  std::vector<ByteView> chunks;
  if (data.empty()) {
    chunks.emplace_back();
    return chunks;
  }
  chunks.reserve((data.size() + chunk_size - 1) / chunk_size);
  for (std::size_t offset = 0; offset < data.size(); offset += chunk_size) {
    chunks.push_back(data.sub(offset, chunk_size));
  }
  return chunks;
}

}  // namespace fastbft
