#pragma once

#include <cstdio>
#include <cstdlib>

/// \file assert.hpp
/// Always-on assertion macro. The protocols in this library maintain
/// cryptographic and quorum invariants that must hold even in release
/// builds; violating one indicates a bug, so we abort loudly instead of
/// continuing with corrupted state.

#define FASTBFT_ASSERT(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FASTBFT_ASSERT failed at %s:%d: %s — %s\n",    \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (false)
