#pragma once

#include <cstdio>
#include <cstdlib>

/// \file assert.hpp
/// Always-on assertion macro plus the compiled-out invariant tier. The
/// protocols in this library maintain cryptographic and quorum invariants
/// that must hold even in release builds; violating one indicates a bug,
/// so we abort loudly instead of continuing with corrupted state.
///
/// Two tiers (docs/ANALYSIS.md):
///  * FASTBFT_ASSERT  — always compiled, every build type. Safety
///    invariants (quorum math, codec bounds) whose cost is negligible.
///  * FASTBFT_DASSERT — compiled only when FASTBFT_ENFORCE_INVARIANTS is
///    1. Contract checks on hot paths (thread affinity, single-writer
///    stats, one-alloc-per-broadcast) that sanitizer/dev builds enforce as
///    hard failures and Release builds compile to nothing.
///
/// FASTBFT_ENFORCE_INVARIANTS is normally injected by CMake (ON for every
/// build type except Release, and forced ON under any sanitizer); when it
/// is absent the header defaults it from NDEBUG so out-of-tree users get
/// the classic assert semantics.

#if !defined(FASTBFT_ENFORCE_INVARIANTS)
#if defined(NDEBUG)
#define FASTBFT_ENFORCE_INVARIANTS 0
#else
#define FASTBFT_ENFORCE_INVARIANTS 1
#endif
#endif

#define FASTBFT_ASSERT(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FASTBFT_ASSERT failed at %s:%d: %s — %s\n",    \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#if FASTBFT_ENFORCE_INVARIANTS
#define FASTBFT_DASSERT(cond, msg) FASTBFT_ASSERT(cond, msg)
#else
/// Disabled: the condition is parsed (so it cannot rot) but never
/// evaluated, and its operands count as used for -Werror purposes.
#define FASTBFT_DASSERT(cond, msg)                                         \
  do {                                                                     \
    if (false) {                                                           \
      (void)(cond);                                                        \
      (void)(msg);                                                         \
    }                                                                      \
  } while (false)
#endif
