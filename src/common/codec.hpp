#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

/// \file codec.hpp
/// Minimal deterministic binary codec. All protocol messages, signing
/// preimages and certificates are serialized through Encoder/Decoder so that
/// (a) byte sizes reported by the benchmarks are honest and (b) signatures
/// cover a canonical encoding.
///
/// Wire format: fixed-width little-endian integers; byte strings and lists
/// are length-prefixed with u32. There is no versioning — the codec is
/// internal to the library.

namespace fastbft {

class Encoder {
 public:
  Encoder() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed byte string.
  void bytes(const Bytes& b);

  /// Length-prefixed UTF-8 string.
  void str(std::string_view s);

  /// Raw append without a length prefix (used for domain-separation tags).
  void raw(const Bytes& b);

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Pull-based decoder. Every accessor checks bounds; after the first
/// failure `ok()` turns false and all further reads return zero values.
/// Callers must check `ok()` (and typically `at_end()`) after decoding.
class Decoder {
 public:
  explicit Decoder(const Bytes& data) : data_(data) {}

  /// The decoder only borrows its input; binding it to a temporary would
  /// leave `data_` dangling after the full expression. Callers must keep
  /// the buffer alive for the decoder's lifetime.
  explicit Decoder(Bytes&&) = delete;

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  bool boolean() { return u8() != 0; }
  Bytes bytes();
  std::string str();

  bool ok() const { return ok_; }
  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  /// Marks the decode as failed; used by message parsers when a semantic
  /// check (e.g. enum range) fails.
  void fail() { ok_ = false; }

 private:
  bool ensure(std::size_t count);

  const Bytes& data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Convenience: encode a single object that provides
/// `void encode(Encoder&) const`.
template <typename T>
Bytes encode_to_bytes(const T& value) {
  Encoder enc;
  value.encode(enc);
  return std::move(enc).take();
}

/// Convenience: decode an object with a static
/// `static std::optional<T> decode(Decoder&)`, requiring full consumption.
template <typename T>
std::optional<T> decode_from_bytes(const Bytes& data) {
  Decoder dec(data);
  auto v = T::decode(dec);
  if (!v.has_value() || !dec.ok() || !dec.at_end()) return std::nullopt;
  return v;
}

/// Deleted: see Decoder(Bytes&&). Passing a temporary buffer is safe for
/// the duration of this call, but deleting it keeps call sites uniform and
/// makes the borrow rule impossible to get wrong when refactoring.
template <typename T>
std::optional<T> decode_from_bytes(Bytes&&) = delete;

}  // namespace fastbft
