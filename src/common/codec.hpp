#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

/// \file codec.hpp
/// Minimal deterministic binary codec. All protocol messages, signing
/// preimages and certificates are serialized through Encoder/Decoder so that
/// (a) byte sizes reported by the benchmarks are honest and (b) signatures
/// cover a canonical encoding.
///
/// Wire format: fixed-width little-endian integers; byte strings and lists
/// are length-prefixed with u32. There is no versioning — the codec is
/// internal to the library.
///
/// Hot-path notes: the Decoder reads over a non-owning ByteView, and
/// `bytes_view()` returns length-prefixed fields without copying, so nested
/// decodes (envelope -> wrapped SMR message -> command batch) alias one
/// buffer. The Encoder supports `reserve()` and a thread-local scratch pool
/// (`Encoder::scratch()`) for short-lived encodes — signing preimages,
/// digest computations — whose buffer capacity is recycled instead of
/// reallocated per call.

namespace fastbft {

class Encoder {
 public:
  Encoder() = default;

  /// Preallocates the backing buffer (on top of whatever capacity a pooled
  /// buffer already carries).
  explicit Encoder(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  /// An encoder backed by a thread-local pooled buffer: the buffer's
  /// capacity returns to the pool on destruction unless `take()`n. Use for
  /// scratch encodes that are hashed/measured and dropped.
  static Encoder scratch();

  ~Encoder();

  Encoder(Encoder&& other) noexcept
      : buf_(std::move(other.buf_)), pooled_(other.pooled_) {
    other.pooled_ = false;
  }
  Encoder(const Encoder&) = delete;
  Encoder& operator=(const Encoder&) = delete;
  Encoder& operator=(Encoder&&) = delete;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed byte string.
  void bytes(ByteView b);
  void bytes(const Bytes& b) { bytes(ByteView(b)); }

  /// Length-prefixed UTF-8 string.
  void str(std::string_view s);

  /// Raw append without a length prefix (used for domain-separation tags).
  void raw(ByteView b);
  void raw(const Bytes& b) { raw(ByteView(b)); }

  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

  /// Drops the contents but keeps the capacity — lets one (scratch)
  /// encoder be reused across loop iterations without reallocating.
  void clear() { buf_.clear(); }

  const Bytes& data() const& { return buf_; }
  ByteView view() const { return ByteView(buf_); }
  Bytes take() && {
    pooled_ = false;  // the capacity leaves with the caller
    return std::move(buf_);
  }
  std::size_t size() const { return buf_.size(); }

 private:
  struct ScratchTag {};
  explicit Encoder(ScratchTag);

  Bytes buf_;
  bool pooled_ = false;
};

/// Pull-based decoder over a non-owning view. Every accessor checks bounds;
/// after the first failure `ok()` turns false and all further reads return
/// zero values. Callers must check `ok()` (and typically `at_end()`) after
/// decoding, and must keep the viewed buffer alive for the decoder's
/// lifetime (plus the lifetime of any `bytes_view()` result).
class Decoder {
 public:
  explicit Decoder(ByteView data) : data_(data) {}

  /// The decoder only borrows its input; binding it to a temporary would
  /// leave the view dangling after the full expression. Callers must keep
  /// the buffer alive for the decoder's lifetime. (Viewing a temporary is
  /// legal in a single call expression — hash it, compare it — so
  /// ByteView itself accepts temporaries; it is RETAINING consumers like
  /// this one that must delete their rvalue overloads.)
  explicit Decoder(Bytes&&) = delete;

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  bool boolean() { return u8() != 0; }

  /// Length-prefixed byte string, zero-copy: the view aliases the decoder's
  /// input buffer.
  ByteView bytes_view();

  /// Length-prefixed byte string, copied out (for fields that are stored).
  Bytes bytes() { return bytes_view().to_bytes(); }

  std::string str();

  bool ok() const { return ok_; }
  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  /// Marks the decode as failed; used by message parsers when a semantic
  /// check (e.g. enum range) fails.
  void fail() { ok_ = false; }

 private:
  bool ensure(std::size_t count);

  ByteView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Convenience: encode a single object that provides
/// `void encode(Encoder&) const`.
template <typename T>
Bytes encode_to_bytes(const T& value) {
  Encoder enc;
  value.encode(enc);
  return std::move(enc).take();
}

/// Convenience: decode an object with a static
/// `static std::optional<T> decode(Decoder&)`, requiring full consumption.
/// Accepts any live buffer via ByteView (Bytes converts implicitly).
template <typename T>
std::optional<T> decode_from_bytes(ByteView data) {
  Decoder dec(data);
  auto v = T::decode(dec);
  if (!v.has_value() || !dec.ok() || !dec.at_end()) return std::nullopt;
  return v;
}

/// Deleted: see Decoder(Bytes&&). Passing a temporary buffer is safe for
/// the duration of this call, but deleting it keeps call sites uniform and
/// makes the borrow rule impossible to get wrong when refactoring.
template <typename T>
std::optional<T> decode_from_bytes(Bytes&&) = delete;

}  // namespace fastbft
