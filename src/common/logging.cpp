#include "common/logging.hpp"

namespace fastbft {

LogLevel Log::level = LogLevel::Off;
TimePoint Log::now_hint = 0;

void Log::write(LogLevel lvl, const std::string& component,
                const std::string& msg) {
  const char* tag = "?";
  switch (lvl) {
    case LogLevel::Error: tag = "E"; break;
    case LogLevel::Info: tag = "I"; break;
    case LogLevel::Debug: tag = "D"; break;
    case LogLevel::Off: return;
  }
  std::fprintf(stderr, "[%s t=%lld %s] %s\n", tag,
               static_cast<long long>(now_hint), component.c_str(),
               msg.c_str());
}

}  // namespace fastbft
