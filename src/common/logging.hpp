#pragma once

#include <cstdio>
#include <string>

#include "common/types.hpp"

/// \file logging.hpp
/// Tiny leveled logger. Deterministic simulations produce identical logs for
/// identical seeds, which makes `Debug` level genuinely useful for protocol
/// forensics. Logging is globally off by default so tests and benchmarks
/// stay quiet.

namespace fastbft {

enum class LogLevel : int { Off = 0, Error = 1, Info = 2, Debug = 3 };

class Log {
 public:
  static LogLevel level;

  /// Current simulated time for log prefixes; the scheduler keeps it fresh.
  static TimePoint now_hint;

  static void write(LogLevel lvl, const std::string& component,
                    const std::string& msg);
};

inline void log_error(const std::string& component, const std::string& msg) {
  if (Log::level >= LogLevel::Error) Log::write(LogLevel::Error, component, msg);
}
inline void log_info(const std::string& component, const std::string& msg) {
  if (Log::level >= LogLevel::Info) Log::write(LogLevel::Info, component, msg);
}
inline void log_debug(const std::string& component, const std::string& msg) {
  if (Log::level >= LogLevel::Debug) Log::write(LogLevel::Debug, component, msg);
}

}  // namespace fastbft
