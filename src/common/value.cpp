#include "common/value.hpp"

#include <cctype>

namespace fastbft {

Value Value::of_u64(std::uint64_t v) {
  Encoder enc;
  enc.u64(v);
  return Value(std::move(enc).take());
}

std::string Value::to_string() const {
  bool printable = !bytes_.empty();
  for (std::uint8_t b : bytes_) {
    if (!std::isprint(b)) {
      printable = false;
      break;
    }
  }
  if (printable) return std::string(bytes_.begin(), bytes_.end());
  return "0x" + to_hex_prefix(bytes_, 8);
}

std::optional<Value> Value::decode(Decoder& dec) {
  Bytes b = dec.bytes();
  if (!dec.ok()) return std::nullopt;
  return Value(std::move(b));
}

}  // namespace fastbft
