#include "common/value.hpp"

#include <cctype>

namespace fastbft {

const std::shared_ptr<const Bytes>& Value::empty_buffer() {
  static const std::shared_ptr<const Bytes> empty =
      std::make_shared<const Bytes>();
  return empty;
}

Value Value::of_u64(std::uint64_t v) {
  Encoder enc;
  enc.u64(v);
  return Value(std::move(enc).take());
}

std::string Value::to_string() const {
  const Bytes& b = bytes();
  bool printable = !b.empty();
  for (std::uint8_t c : b) {
    if (!std::isprint(c)) {
      printable = false;
      break;
    }
  }
  if (printable) return std::string(b.begin(), b.end());
  return "0x" + to_hex_prefix(b, 8);
}

std::optional<Value> Value::decode(Decoder& dec) {
  Bytes b = dec.bytes();
  if (!dec.ok()) return std::nullopt;
  return Value(std::move(b));
}

}  // namespace fastbft
