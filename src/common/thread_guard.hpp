#pragma once

#include "common/assert.hpp"

#if FASTBFT_ENFORCE_INVARIANTS
#include <atomic>
#include <thread>
#endif

/// \file thread_guard.hpp
/// Mechanically enforced thread-affinity contracts (docs/ANALYSIS.md).
///
/// Large parts of this codebase rely on a single-threaded-replica
/// discipline: every protocol object, timer queue and stats writer is
/// touched by exactly one thread (the simulator's main thread, a
/// ThreadedNetwork delivery thread, or a SocketNetwork epoll loop). Until
/// PR 10 that discipline was documented and spot-asserted; ThreadGuard
/// turns it into a checked contract wherever a struct embeds one.
///
/// Semantics (enabled builds):
///  * bind()            — the calling thread becomes the owner.
///  * unbind()          — clears ownership (teardown / ownership handoff).
///  * check(what)       — asserts the guard is unbound OR held by the
///                        calling thread. "Unbound" passes so setup-phase
///                        calls (before the owning thread exists) stay
///                        legal, mirroring the pre-start()/post-stop()
///                        carve-out the timer contracts always had.
///  * check_or_bind(what) — like check(), but a first use claims
///                        ownership: for objects whose owning thread is
///                        "whichever loop thread first runs me" (SlotMux
///                        stats, TimerWheel firing).
///  * held()/bound()    — queries for callers that branch on ownership.
///
/// Disabled builds (FASTBFT_ENFORCE_INVARIANTS == 0, i.e. Release):
/// ThreadGuard is an empty type and every member is a constexpr no-op —
/// provably zero state and zero code (tests/test_guard.cpp pins
/// std::is_empty and the [[no_unique_address]] layout). Embed guards with
/// FASTBFT_GUARD_MEMBER so the empty-base-like optimization applies.

namespace fastbft::common {

#if FASTBFT_ENFORCE_INVARIANTS

class ThreadGuard {
 public:
  void bind() {
    owner_.store(std::this_thread::get_id(), std::memory_order_release);
  }

  void unbind() {
    owner_.store(std::thread::id{}, std::memory_order_release);
  }

  bool bound() const {
    return owner_.load(std::memory_order_acquire) != std::thread::id{};
  }

  /// True iff the calling thread currently owns the guard.
  bool held() const {
    return owner_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

  void check(const char* what) const {
    const std::thread::id owner = owner_.load(std::memory_order_acquire);
    FASTBFT_ASSERT(
        owner == std::thread::id{} || owner == std::this_thread::get_id(),
        what);
  }

  void check_or_bind(const char* what) {
    const std::thread::id owner = owner_.load(std::memory_order_acquire);
    if (owner == std::thread::id{}) {
      bind();
      return;
    }
    FASTBFT_ASSERT(owner == std::this_thread::get_id(), what);
  }

 private:
  /// Atomic only so the check itself is race-free; the guard adds no
  /// ordering beyond its own loads/stores.
  std::atomic<std::thread::id> owner_{};
};

#else  // !FASTBFT_ENFORCE_INVARIANTS

/// Release stub: empty, trivially copyable, every call a constexpr no-op.
class ThreadGuard {
 public:
  constexpr void bind() {}
  constexpr void unbind() {}
  constexpr bool bound() const { return false; }
  constexpr bool held() const { return false; }
  constexpr void check(const char*) const {}
  constexpr void check_or_bind(const char*) {}
};

static_assert(sizeof(ThreadGuard) == 1, "release ThreadGuard carries state");

#endif  // FASTBFT_ENFORCE_INVARIANTS

}  // namespace fastbft::common

/// Declares a ThreadGuard member that occupies no storage when the release
/// stub is in effect (an empty member still costs a byte without this).
#define FASTBFT_GUARD_MEMBER(name) \
  [[no_unique_address]] ::fastbft::common::ThreadGuard name
