#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

/// \file bytes.hpp
/// Raw byte-buffer helpers used by the codec and the crypto layer.

namespace fastbft {

using Bytes = std::vector<std::uint8_t>;

/// Converts an arbitrary string to bytes (no encoding applied).
Bytes to_bytes(std::string_view s);

/// Renders `data` as lowercase hex.
std::string to_hex(const Bytes& data);

/// Renders the first `max_bytes` of `data` as hex, appending ".." when
/// truncated. Useful for log lines.
std::string to_hex_prefix(const Bytes& data, std::size_t max_bytes);

/// Parses lowercase/uppercase hex. Returns an empty buffer on malformed
/// input of odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Constant-time-ish equality (length leak only); signatures and digests are
/// compared with this to keep the idiom explicit even in simulation.
bool bytes_equal(const Bytes& a, const Bytes& b);

/// Splits `data` into consecutive chunks of at most `chunk_size` bytes
/// (the last may be shorter). Empty input yields one empty chunk so every
/// payload, including a zero-length one, has a well-defined chunk count.
/// Used by the snapshot state-transfer codec.
std::vector<Bytes> split_chunks(const Bytes& data, std::size_t chunk_size);

}  // namespace fastbft
