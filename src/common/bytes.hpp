#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

/// \file bytes.hpp
/// Raw byte-buffer helpers used by the codec and the crypto layer, plus the
/// two non-owning/shared-ownership views the zero-copy hot path is built on:
///
///  * ByteView — a non-owning span of immutable bytes. Decoders, preimage
///    hashing and chunk slicing operate on views so nested decodes
///    (envelope -> wrapped SMR message -> command batch) stop copying.
///  * SharedBytes — shared ownership of one immutable buffer. Network
///    envelopes carry SharedBytes so broadcasting an m-byte payload to n
///    peers allocates the payload once instead of n times.

namespace fastbft {

using Bytes = std::vector<std::uint8_t>;

/// Non-owning view over immutable bytes (a minimal std::span<const
/// uint8_t>). The caller must keep the underlying buffer alive for the
/// view's lifetime. Viewing a temporary is fine for the duration of a call
/// expression (hash it, compare it, encode it); consumers that RETAIN the
/// view across statements guard against temporaries themselves — see the
/// deleted Decoder(Bytes&&).
class ByteView {
 public:
  constexpr ByteView() = default;
  constexpr ByteView(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  ByteView(const Bytes& b) : data_(b.data()), size_(b.size()) {}

  constexpr const std::uint8_t* data() const { return data_; }
  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const std::uint8_t* begin() const { return data_; }
  constexpr const std::uint8_t* end() const { return data_ + size_; }
  constexpr std::uint8_t operator[](std::size_t i) const { return data_[i]; }

  /// Subview [offset, offset + count); clamped to the view's bounds.
  constexpr ByteView sub(std::size_t offset, std::size_t count) const {
    if (offset > size_) offset = size_;
    if (count > size_ - offset) count = size_ - offset;
    return ByteView(data_ + offset, count);
  }

  /// Owning copy, for the (cold) paths that must retain the data.
  Bytes to_bytes() const { return Bytes(begin(), end()); }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Process-wide payload materialization counters (relaxed atomics, safe
/// from any thread). One "alloc" is recorded every time a fresh buffer is
/// materialized into a SharedBytes — so a broadcast of an m-byte payload
/// to n peers costs exactly ONE alloc of m bytes while the logical
/// send/byte counts grow by n; alloc_bytes() is the bytes actually copied
/// into payload buffers, and the gap to the network's total_bytes() is
/// the copying that sharing avoided. (Also visible as net::PayloadStats,
/// next to the per-message NetworkStats.)
class PayloadStats {
 public:
  static void record_alloc(std::size_t bytes);
  static std::uint64_t allocs();
  static std::uint64_t alloc_bytes();

  /// Payload materializations by the CALLING thread only. Unlike allocs()
  /// this is race-free to delta across a code region even while other
  /// threads materialize concurrently, which is what lets the
  /// one-alloc-per-broadcast contract be a checked invariant
  /// (FASTBFT_DASSERT in Transport::broadcast*) instead of a test-only
  /// property. Maintained in every build; a thread-local increment next
  /// to two relaxed fetch_adds is noise.
  static std::uint64_t thread_allocs();

  /// Envelope-container accounting (net::ThreadedNetwork): one
  /// envelope_alloc per freshly heap-allocated inbox queue node, one
  /// envelope_reuse per node recycled from the per-inbox pool. In steady
  /// state reuses dominate and allocs plateau at the pool warm-up.
  static void record_envelope_alloc();
  static void record_envelope_reuse();
  static std::uint64_t envelope_allocs();
  static std::uint64_t envelope_reuses();

  /// Per-consensus-group wrapped-broadcast accounting (sharded SMR): one
  /// group_broadcast is recorded per SMR_WRAPPED broadcast a group frames.
  /// Together with allocs() this makes the amortization claim testable —
  /// a node hosting G groups must still pay exactly one payload
  /// materialization per broadcast, for every group (tests/test_hotpath).
  /// Groups >= kMaxTrackedGroups share the last bucket.
  static constexpr std::uint32_t kMaxTrackedGroups = 16;
  static void record_group_broadcast(std::uint32_t group);
  static std::uint64_t group_broadcasts(std::uint32_t group);

  static void reset();
};

/// Immutable byte buffer with shared ownership. Cheap to copy (refcount
/// bump), so one buffer can sit in n inboxes at once. Converts implicitly
/// to `const Bytes&` and mimics the read-only vector surface, which keeps
/// payload-inspection call sites source-compatible with plain Bytes.
///
/// Materializing a fresh buffer (the Bytes constructor) is counted in
/// PayloadStats so benchmarks can observe allocations avoided by sharing;
/// copying a SharedBytes never allocates payload memory.
class SharedBytes {
 public:
  SharedBytes() : ptr_(empty_buffer()) {}
  SharedBytes(Bytes bytes);  // NOLINT(google-explicit-constructor)
  SharedBytes(std::initializer_list<std::uint8_t> il)
      : SharedBytes(Bytes(il)) {}
  explicit SharedBytes(std::shared_ptr<const Bytes> ptr)
      : ptr_(ptr ? std::move(ptr) : empty_buffer()) {}

  const Bytes& get() const { return *ptr_; }
  operator const Bytes&() const { return *ptr_; }  // NOLINT
  operator ByteView() const { return ByteView(*ptr_); }  // NOLINT

  bool empty() const { return ptr_->empty(); }
  std::size_t size() const { return ptr_->size(); }
  std::uint8_t operator[](std::size_t i) const { return (*ptr_)[i]; }
  Bytes::const_iterator begin() const { return ptr_->begin(); }
  Bytes::const_iterator end() const { return ptr_->end(); }

  /// Number of owners (diagnostics/tests).
  long use_count() const { return ptr_.use_count(); }

 private:
  static const std::shared_ptr<const Bytes>& empty_buffer();

  std::shared_ptr<const Bytes> ptr_;
};

/// Converts an arbitrary string to bytes (no encoding applied).
Bytes to_bytes(std::string_view s);

/// Renders `data` as lowercase hex.
std::string to_hex(ByteView data);

/// Renders the first `max_bytes` of `data` as hex, appending ".." when
/// truncated. Useful for log lines.
std::string to_hex_prefix(ByteView data, std::size_t max_bytes);

/// Parses lowercase/uppercase hex. Returns an empty buffer on malformed
/// input of odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Constant-time-ish equality (length leak only); signatures and digests are
/// compared with this to keep the idiom explicit even in simulation.
bool bytes_equal(ByteView a, ByteView b);
inline bool bytes_equal(const Bytes& a, const Bytes& b) {
  return bytes_equal(ByteView(a), ByteView(b));
}

/// Splits `data` into consecutive chunks of at most `chunk_size` bytes
/// (the last may be shorter). Empty input yields one empty chunk so every
/// payload, including a zero-length one, has a well-defined chunk count.
std::vector<Bytes> split_chunks(const Bytes& data, std::size_t chunk_size);

/// View-based sibling of split_chunks: the chunks alias `data` instead of
/// copying it. Used by the snapshot state-transfer codec to serve chunks
/// straight out of the one retained snapshot body.
std::vector<ByteView> split_chunk_views(ByteView data, std::size_t chunk_size);

}  // namespace fastbft
