#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file histogram.hpp
/// Log-bucketed value histogram for latency accounting (HdrHistogram
/// style, pared down). Values are non-negative integers in any unit the
/// caller picks — the engine records decision latencies in host ticks,
/// the open-loop benchmark records per-op completion latencies in
/// nanoseconds.
///
/// Bucketing: values below 2^kSubBucketBits are exact; above that, each
/// power-of-two octave is split into 2^kSubBucketBits linear sub-buckets,
/// so any recorded value is off by at most 1/2^kSubBucketBits of itself
/// (~3% at the default 5 bits). That makes record() O(1) with a fixed
/// ~2K-entry footprint across the full 64-bit range — cheap enough to sit
/// on the engine's decide path — while quantiles stay accurate enough to
/// steer an AIMD controller or publish p999s.
///
/// Quantiles are reported as the midpoint of the bucket holding the
/// requested rank, clamped into [min(), max()] so quantile(0) and
/// quantile(1) return the exact extremes.
///
/// Not thread-safe: one writer (merge from other threads' instances
/// instead of sharing one).

namespace fastbft {

class Histogram {
 public:
  /// Linear sub-buckets per octave (2^5 = 32 -> <= ~3.1% relative error).
  static constexpr unsigned kSubBucketBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;

  /// Worst-case relative error of a reported quantile.
  static constexpr double relative_error() {
    return 1.0 / static_cast<double>(kSubBuckets);
  }

  void record(std::uint64_t value) { record_n(value, 1); }
  void record_n(std::uint64_t value, std::uint64_t count);

  /// Adds every recorded value of `other` into this histogram.
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }

  /// Exact extremes of everything recorded (0 when empty).
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }

  /// Exact arithmetic mean of recorded values (0 when empty).
  double mean() const;

  /// Value at quantile q in [0, 1]: the smallest bucket such that at
  /// least ceil(q * count) recorded values are <= its upper bound,
  /// reported as the bucket midpoint clamped into [min(), max()].
  /// Returns 0 when empty.
  std::uint64_t quantile(double q) const;

  void reset();

 private:
  /// Bucket index of `value`; contiguous, exact below kSubBuckets.
  static std::size_t index_of(std::uint64_t value);

  /// Inclusive value range covered by bucket `index`.
  static std::uint64_t lower_of(std::size_t index);
  static std::uint64_t width_of(std::size_t index);

  std::vector<std::uint64_t> buckets_;  // grown lazily to the max index
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace fastbft
