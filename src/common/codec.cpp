#include "common/codec.hpp"

#include <vector>

namespace fastbft {

namespace {

/// Thread-local free list of scratch buffers. Buffers come back cleared but
/// with their capacity intact, so steady-state scratch encodes never touch
/// the allocator. Bounded so a one-off giant encode cannot pin memory.
constexpr std::size_t kMaxPooledBuffers = 8;
constexpr std::size_t kMaxPooledCapacity = 64 * 1024;

thread_local std::vector<Bytes> scratch_pool;

Bytes pool_acquire() {
  if (scratch_pool.empty()) return Bytes();
  Bytes buf = std::move(scratch_pool.back());
  scratch_pool.pop_back();
  buf.clear();
  return buf;
}

void pool_release(Bytes buf) {
  if (buf.capacity() == 0 || buf.capacity() > kMaxPooledCapacity) return;
  if (scratch_pool.size() >= kMaxPooledBuffers) return;
  scratch_pool.push_back(std::move(buf));
}

}  // namespace

Encoder::Encoder(ScratchTag) : buf_(pool_acquire()), pooled_(true) {}

Encoder Encoder::scratch() { return Encoder(ScratchTag{}); }

Encoder::~Encoder() {
  if (pooled_) pool_release(std::move(buf_));
}

void Encoder::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Encoder::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

void Encoder::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

void Encoder::bytes(ByteView b) {
  u32(static_cast<std::uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Encoder::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Encoder::raw(ByteView b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

bool Decoder::ensure(std::size_t count) {
  if (!ok_) return false;
  if (data_.size() - pos_ < count) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Decoder::u8() {
  if (!ensure(1)) return 0;
  return data_[pos_++];
}

std::uint16_t Decoder::u16() {
  if (!ensure(2)) return 0;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Decoder::u32() {
  if (!ensure(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint64_t Decoder::u64() {
  if (!ensure(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

ByteView Decoder::bytes_view() {
  std::uint32_t len = u32();
  if (!ensure(len)) return {};
  ByteView out = data_.sub(pos_, len);
  pos_ += len;
  return out;
}

std::string Decoder::str() {
  ByteView b = bytes_view();
  return std::string(b.begin(), b.end());
}

}  // namespace fastbft
