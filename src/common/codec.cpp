#include "common/codec.hpp"

namespace fastbft {

void Encoder::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Encoder::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

void Encoder::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

void Encoder::bytes(const Bytes& b) {
  u32(static_cast<std::uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Encoder::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Encoder::raw(const Bytes& b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

bool Decoder::ensure(std::size_t count) {
  if (!ok_) return false;
  if (data_.size() - pos_ < count) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Decoder::u8() {
  if (!ensure(1)) return 0;
  return data_[pos_++];
}

std::uint16_t Decoder::u16() {
  if (!ensure(2)) return 0;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Decoder::u32() {
  if (!ensure(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint64_t Decoder::u64() {
  if (!ensure(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

Bytes Decoder::bytes() {
  std::uint32_t len = u32();
  if (!ensure(len)) return {};
  Bytes out(data_.begin() + static_cast<long>(pos_),
            data_.begin() + static_cast<long>(pos_ + len));
  pos_ += len;
  return out;
}

std::string Decoder::str() {
  Bytes b = bytes();
  return std::string(b.begin(), b.end());
}

}  // namespace fastbft
