#pragma once

#include <cstdint>
#include <limits>

/// \file types.hpp
/// Strong scalar aliases shared by every module. Process identifiers are
/// 0-based indices into the cluster membership; views, slots and simulated
/// time are 64-bit to make overflow a non-issue for any run we perform.

namespace fastbft {

/// 0-based index of a process within the cluster membership.
using ProcessId = std::uint32_t;

/// View (a.k.a. round / ballot) number. Views start at 1; 0 means "none".
using View = std::uint64_t;

/// Slot index in the replicated log (SMR layer).
using Slot = std::uint64_t;

/// 0-based index of a consensus group in a sharded multi-group SMR node.
/// Every replica hosts the same set of groups; group g owns the keyspace
/// partition { key : shard_of(key, num_groups) == g } (see smr/shard.hpp).
using GroupId = std::uint32_t;

/// Simulated time in abstract "ticks". The network delay bound Delta is
/// expressed in the same unit, so latencies divide cleanly into message
/// delays.
using TimePoint = std::int64_t;

/// Difference of two TimePoints.
using Duration = std::int64_t;

inline constexpr View kNoView = 0;
inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();
inline constexpr TimePoint kTimeInfinity =
    std::numeric_limits<TimePoint>::max() / 4;

}  // namespace fastbft
