#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace fastbft {

std::size_t Histogram::index_of(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  // Octave = position of the highest set bit beyond the sub-bucket
  // resolution; the top kSubBucketBits+1 bits select the sub-bucket.
  unsigned exp = std::bit_width(value) - kSubBucketBits - 1;
  std::uint64_t sub = value >> exp;  // in [kSubBuckets, 2 * kSubBuckets)
  return static_cast<std::size_t>(exp * kSubBuckets + sub);
}

std::uint64_t Histogram::lower_of(std::size_t index) {
  if (index < 2 * kSubBuckets) return index;
  unsigned exp = static_cast<unsigned>(index / kSubBuckets) - 1;
  std::uint64_t sub = index % kSubBuckets + kSubBuckets;
  return sub << exp;
}

std::uint64_t Histogram::width_of(std::size_t index) {
  if (index < 2 * kSubBuckets) return 1;
  return 1ull << (index / kSubBuckets - 1);
}

void Histogram::record_n(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  std::size_t index = index_of(value);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  buckets_[index] += count;
  if (count_ == 0 || value < min_) min_ = value;
  max_ = std::max(max_, value);
  count_ += count;
  sum_ += value * count;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  if (rank == count_) return max_;  // the top rank is tracked exactly
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      std::uint64_t mid = lower_of(i) + width_of(i) / 2;
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;  // unreachable: counts always sum to count_
}

void Histogram::reset() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

}  // namespace fastbft
