#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/codec.hpp"
#include "common/types.hpp"
#include "crypto/sha256.hpp"

/// \file snapshot.hpp
/// Deterministic state snapshots for the replicated KV machine. A snapshot
/// freezes everything a replica needs to resume applying from a slot
/// boundary without replaying the log below it:
///
///  * `applied_below` — the snapshot covers every slot < applied_below; the
///    installer resumes applying at exactly this slot;
///  * the serialized KV state (KvStore::serialize());
///  * the applied command count (the engine's commands-applied meter, which
///    target_commands and the cluster accounting consume);
///  * the at-most-once dedup set — the (client_id, sequence) ids applied
///    recently (within the engine's dedup horizon), each tagged with the
///    slot that applied it. Without it, an installing replica would
///    re-apply a command that a later slot duplicates while everyone else
///    skips it, and the state digests would diverge. The set is bounded:
///    the engine prunes ids applied more than a horizon of slots before
///    the snapshot boundary (deterministically, so every replica's set is
///    identical) — see engine::SlotMux::maybe_take_snapshot.
///
/// All four fields are a deterministic function of the decided log prefix,
/// so every correct replica snapshotting at the same boundary produces
/// byte-identical encodings — which is what makes the digest comparable
/// across replicas: a joining replica installs a body only when f + 1
/// distinct peers vouch for the same (applied_below, digest) and the body
/// hashes to that digest (see engine::CatchUpPolicy).

namespace fastbft::smr {

struct Snapshot {
  /// (client_id, sequence) — mirrors engine::PendingQueue::CommandId.
  using CommandId = std::pair<std::uint64_t, std::uint64_t>;

  /// A dedup entry: the command id and the slot that applied it (the slot
  /// tag is what lets later snapshots prune the entry deterministically).
  using AppliedEntry = std::pair<CommandId, Slot>;

  /// Every slot < applied_below is reflected in the state.
  Slot applied_below = 1;

  /// Commands applied into the state (noops excluded).
  std::uint64_t applied_commands = 0;

  /// KvStore::serialize() output.
  Bytes kv_state;

  /// Sorted ids of the commands applied within the dedup horizon below
  /// applied_below, tagged with their applying slot.
  std::vector<AppliedEntry> applied_ids;

  /// Canonical encoding; equal snapshots encode byte-identically.
  Bytes encode() const;
  static std::optional<Snapshot> decode(const Bytes& data);

  /// SHA-256 of encode(): the transfer integrity/identity check.
  crypto::Digest digest() const;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

}  // namespace fastbft::smr
