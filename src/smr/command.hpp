#pragma once

#include <optional>
#include <string>

#include "common/codec.hpp"
#include "common/value.hpp"

/// \file command.hpp
/// Commands replicated by the SMR layer. A command is what clients submit
/// and what each consensus slot decides on; the KV store interprets them.
///
/// Reads (`Get`) travel through the log like writes: a read is decided in
/// a slot and executed at its log position by every replica, which is what
/// makes the result linearizable (and lets f + 1 replicas vouch for it in
/// their REPLY messages — see smr/reply.hpp).

namespace fastbft::smr {

enum class OpKind : std::uint8_t {
  Put = 1,
  Del = 2,
  Noop = 3,
  Get = 4,
  Cas = 5,
};

struct Command {
  OpKind kind = OpKind::Noop;
  std::string key;
  std::string value;
  /// Client-assigned id for deduplication / reply matching.
  std::uint64_t client_id = 0;
  std::uint64_t sequence = 0;
  /// Cas only: the value the key must currently hold for `value` to be
  /// installed. (Kept last so the older positional initializers stay
  /// valid; encoded after `sequence` on the wire.)
  std::string expected;

  static Command put(std::string key, std::string value,
                     std::uint64_t client_id = 0, std::uint64_t sequence = 0) {
    return Command{OpKind::Put, std::move(key), std::move(value), client_id,
                   sequence,    {}};
  }
  static Command del(std::string key, std::uint64_t client_id = 0,
                     std::uint64_t sequence = 0) {
    return Command{OpKind::Del, std::move(key), {}, client_id, sequence, {}};
  }
  static Command get(std::string key, std::uint64_t client_id = 0,
                     std::uint64_t sequence = 0) {
    return Command{OpKind::Get, std::move(key), {}, client_id, sequence, {}};
  }
  static Command cas(std::string key, std::string expected, std::string value,
                     std::uint64_t client_id = 0, std::uint64_t sequence = 0) {
    return Command{OpKind::Cas,  std::move(key), std::move(value),
                   client_id,    sequence,       std::move(expected)};
  }
  static Command noop() { return Command{}; }

  /// Commands travel inside consensus Values.
  Value to_value() const;
  static std::optional<Command> from_value(const Value& value);

  /// In-place wire forms (same encoding as to_value/from_value, minus the
  /// Value temporaries): batch encode/decode stream commands through these.
  void encode(Encoder& enc) const;
  static std::optional<Command> from_wire(ByteView data);

  std::string to_string() const;

  friend bool operator==(const Command&, const Command&) = default;
};

}  // namespace fastbft::smr
