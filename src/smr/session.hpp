#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "engine/host.hpp"
#include "net/transport.hpp"
#include "smr/future.hpp"
#include "smr/reply.hpp"
#include "smr/shard.hpp"

/// \file session.hpp
/// Client session for the replicated KV service: the host-agnostic half of
/// the smr::Service facade. One session = one client identity (its network
/// endpoint id doubles as the Command::client_id), a bounded window of
/// in-flight requests, and the full request lifecycle:
///
///  * submit — a typed op (put/get/del/cas) becomes a Command with the
///    session's next sequence number and is sent as SMR_REQUEST to ONE
///    replica, the session's current gateway, which forwards it to the
///    cluster. The caller gets a Future<Reply>.
///  * complete — replicas answer with signed SMR_REPLYs carrying the
///    execution result; the session counts distinct, signature-verified
///    replicas agreeing on the same (slot, result) and completes the
///    future at f + 1 (at least one of them is correct — the PBFT client
///    rule), making every result, reads included, Byzantine-verified.
///  * retry/failover — a per-request timer resubmits through the NEXT
///    gateway if the quorum does not arrive in time (crashed or slow
///    gateway, lost request). Replicas dedup by (client_id, sequence) at
///    apply time, so retries are at-most-once by construction; the reply
///    quorum of whichever copy executed completes the request.
///  * backpressure — at most `max_in_flight` requests are outstanding;
///    further submissions queue inside the session and dispatch as
///    completions free the window.
///
/// Threading: the session lives on its Host's logical thread (the cluster
/// scheduler on the simulator, the client endpoint's delivery thread on
/// the threaded runtime). The typed ops are callable from any thread —
/// they post to the host — and the returned futures are thread-safe; all
/// other methods run on the host thread (on_message is invoked by the
/// network, stats reads are atomic).

namespace fastbft::smr {

struct SessionConfig {
  /// Reply quorum is f + 1; gateways rotate over the n replicas.
  std::uint32_t n = 0;
  std::uint32_t f = 0;

  /// First gateway tried by a fresh session (wraps modulo n).
  ProcessId first_gateway = 0;

  /// Consensus groups the cluster hosts (must equal the replicas'
  /// SmrOptions::num_groups). The session routes each request to its
  /// key's owning shard (smr/shard.hpp) and keeps an independent
  /// preferred gateway per shard, so one crashed shard gateway never
  /// drags the other shards' requests through its failover rotation.
  std::uint32_t num_shards = 1;

  /// Per-request completion timeout in host ticks (simulator ticks / µs
  /// on the threaded host); on expiry the request fails over to the next
  /// gateway and the timer re-arms. Retries continue until completion —
  /// the driver bounds the wait, the protocol guarantees at-most-once.
  Duration request_timeout = 4000;

  /// Total per-request budget in host ticks (0 = unlimited). A request
  /// still unresolved when the budget expires completes its future with
  /// Reply::Status::Timeout instead of rotating through gateways forever
  /// — the clean failure mode when a whole shard's quorum is down. The
  /// command may still execute later; at-most-once dedup still holds.
  Duration request_deadline = 0;

  /// Submission window: requests outstanding at once before the session
  /// queues internally. >= 1.
  std::uint32_t max_in_flight = 8;

  /// Gateway blacklisting: a gateway accumulates one strike per request
  /// that times out on its watch and per malformed/bad-signature reply it
  /// sends; at `gateway_strike_limit` strikes it is demoted for the rest
  /// of the session — rotation and dispatch skip it. 0 disables (legacy
  /// rotate-on-timeout-only behavior). If EVERY gateway ends up
  /// blacklisted the table resets: an all-faulty verdict is
  /// indistinguishable from a mis-calibrated blacklist (e.g. a long
  /// partition striking everyone), and resetting restores liveness.
  std::uint32_t gateway_strike_limit = 3;

  /// TEST HOOK — breaks Byzantine fault tolerance on purpose. Completes a
  /// request on the FIRST signature-valid reply instead of f + 1 matching
  /// ones, so a single lying replica can forge results. Exists so the
  /// chaos harness can prove its linearizability checker catches real
  /// safety violations (see docs/CHAOS.md). Never enable outside tests.
  bool unsafe_first_reply_quorum = false;

  /// Cluster key material for verifying reply signatures.
  std::shared_ptr<const crypto::KeyStore> keys;
};

class ClientSession {
 public:
  /// `endpoint` is the session's own client endpoint (its self() id is
  /// the client identity); `host` must outlive the session and run the
  /// endpoint's deliveries.
  ClientSession(engine::Host& host, std::unique_ptr<net::Transport> endpoint,
                SessionConfig config);
  ~ClientSession();

  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  /// The client identity: endpoint id == Command::client_id.
  ProcessId id() const { return endpoint_->self(); }

  // --- Typed operations (thread-safe, complete via Future) ------------------

  Future<Reply> put(std::string key, std::string value);
  Future<Reply> get(std::string key);
  Future<Reply> del(std::string key);

  /// Compare-and-swap: installs `value` iff the key currently holds
  /// `expected`; Reply::result.ok reports the outcome.
  Future<Reply> cas(std::string key, std::string expected, std::string value);

  /// Multi-key read: fans out one get() per key (each routed to its own
  /// shard) and completes when ALL have. Replies arrive in `keys` order.
  /// Each read is individually linearizable within its shard; the batch
  /// as a whole is NOT a cross-shard snapshot (docs/SHARDING.md).
  Future<std::vector<Reply>> mget(std::vector<std::string> keys);

  /// Network entry point; attach as the client endpoint's receive handler.
  void on_message(ProcessId from, const Bytes& payload);

  // --- Stats (thread-safe) ---------------------------------------------------

  std::uint64_t completed() const { return completed_.load(); }

  /// Timeouts fired: every one rotated the gateway and resubmitted.
  std::uint64_t failovers() const { return failovers_.load(); }

  /// Requests that exhausted their deadline budget and completed with
  /// Reply::Status::Timeout.
  std::uint64_t deadline_timeouts() const {
    return deadline_timeouts_.load();
  }

  /// Replies dropped for bad signatures / malformed payloads / unknown
  /// sequences (late duplicates land here too).
  std::uint64_t rejected_replies() const { return rejected_.load(); }

  /// Gateways demoted (blacklisted) for the session so far.
  std::uint64_t gateway_demotions() const { return demotions_.load(); }

  /// Whether `gateway` is currently blacklisted (host thread only).
  bool is_gateway_blacklisted(ProcessId gateway) const {
    return gateway_blacklisted(gateway);
  }

  std::uint64_t in_flight() const { return in_flight_gauge_.load(); }
  std::uint64_t queued() const { return queued_gauge_.load(); }

 private:
  struct Request {
    Command cmd;
    Promise<Reply> promise;
    sim::TimerHandle timer;
    ProcessId gateway = 0;
    /// Owning shard of cmd.key; indexes the per-shard gateway table.
    GroupId shard = 0;
    /// Absolute host-clock give-up point (0 = no deadline).
    TimePoint deadline = 0;
    /// (slot, result digest) -> distinct signed voters, plus the reply
    /// that will resolve the future when its key crosses f + 1. Each
    /// replica funds at most ONE live vote (a later, different reply
    /// replaces its earlier one), so this state is bounded by n no
    /// matter how many fabricated results a Byzantine replica streams.
    std::map<std::pair<Slot, crypto::Digest>, std::set<ProcessId>> votes;
    std::map<std::pair<Slot, crypto::Digest>, Reply> candidates;
    std::map<ProcessId, std::pair<Slot, crypto::Digest>> voted;
  };

  Future<Reply> submit(Command cmd);
  void admit(std::uint64_t sequence);    // dispatch or queue (host thread)
  void dispatch(Request& request);       // send + arm timer (host thread)
  void on_timeout(std::uint64_t sequence);
  void fail_with_timeout(std::uint64_t sequence);  // deadline exhausted
  void handle_reply(ProcessId from, const Reply& reply);
  void refill_window();

  bool gateway_blacklisted(ProcessId gateway) const;
  void record_strike(ProcessId gateway);
  /// First non-blacklisted gateway strictly after `gateway` (wrapping);
  /// resets the blacklist if every replica has been demoted.
  ProcessId next_gateway_after(ProcessId gateway);

  engine::Host& host_;
  std::unique_ptr<net::Transport> endpoint_;
  SessionConfig config_;
  crypto::Verifier verifier_;

  std::uint64_t next_sequence_ = 1;
  /// Preferred gateway per shard (index = GroupId): a timeout rotates
  /// only its own shard's entry, so failover on a dead shard never
  /// perturbs healthy shards' routing.
  std::vector<ProcessId> preferred_gateways_;
  /// Strikes per gateway; >= gateway_strike_limit means blacklisted.
  std::vector<std::uint32_t> gateway_strikes_;
  std::map<std::uint64_t, Request> requests_;  // sequence -> state
  std::deque<std::uint64_t> waiting_;          // beyond-window queue
  std::set<std::uint64_t> in_flight_;          // dispatched sequences

  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> deadline_timeouts_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> demotions_{0};
  std::atomic<std::uint64_t> in_flight_gauge_{0};
  std::atomic<std::uint64_t> queued_gauge_{0};

  /// Guards timer closures that outlive the session.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace fastbft::smr
