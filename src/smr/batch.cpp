#include "smr/batch.hpp"

#include "common/assert.hpp"

namespace fastbft::smr {

Value encode_batch(const std::vector<Command>& commands) {
  FASTBFT_ASSERT(!commands.empty(), "batches must be non-empty");
  Encoder enc;
  enc.u32(static_cast<std::uint32_t>(commands.size()));
  // One pooled scratch buffer serves every command's wire form; its
  // capacity survives the loop (and, via the pool, later batches).
  Encoder item = Encoder::scratch();
  for (const auto& cmd : commands) {
    item.clear();
    cmd.encode(item);
    enc.bytes(item.view());
  }
  return Value(std::move(enc).take());
}

std::optional<std::vector<Command>> decode_batch(const Value& value) {
  Decoder dec(value.bytes());
  std::uint32_t count = dec.u32();
  if (!dec.ok() || count == 0 || count > 65536) return std::nullopt;
  std::vector<Command> commands;
  commands.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ByteView raw = dec.bytes_view();  // aliases the batch; no copy
    if (!dec.ok()) return std::nullopt;
    auto cmd = Command::from_wire(raw);
    if (!cmd) return std::nullopt;
    commands.push_back(std::move(*cmd));
  }
  if (!dec.at_end()) return std::nullopt;
  return commands;
}

}  // namespace fastbft::smr
