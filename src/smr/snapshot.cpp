#include "smr/snapshot.hpp"

namespace fastbft::smr {

Bytes Snapshot::encode() const {
  Encoder enc(8 + 8 + 4 + kv_state.size() + 4 + applied_ids.size() * 24);
  enc.u64(applied_below);
  enc.u64(applied_commands);
  enc.bytes(kv_state);
  enc.u32(static_cast<std::uint32_t>(applied_ids.size()));
  for (const auto& [id, slot] : applied_ids) {
    enc.u64(id.first);
    enc.u64(id.second);
    enc.u64(slot);
  }
  return std::move(enc).take();
}

std::optional<Snapshot> Snapshot::decode(const Bytes& data) {
  Decoder dec(data);
  Snapshot snap;
  snap.applied_below = dec.u64();
  snap.applied_commands = dec.u64();
  snap.kv_state = dec.bytes();
  std::uint32_t count = dec.u32();
  if (!dec.ok() || snap.applied_below == 0) return std::nullopt;
  snap.applied_ids.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t client = dec.u64();
    std::uint64_t sequence = dec.u64();
    Slot slot = dec.u64();
    if (!dec.ok()) return std::nullopt;
    snap.applied_ids.emplace_back(CommandId{client, sequence}, slot);
  }
  if (!dec.ok() || !dec.at_end()) return std::nullopt;
  return snap;
}

crypto::Digest Snapshot::digest() const { return crypto::sha256(encode()); }

}  // namespace fastbft::smr
