#include "smr/client.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace fastbft::smr {

Client::Client(std::uint64_t client_id, std::uint32_t f,
               sim::Scheduler& scheduler)
    : client_id_(client_id), f_(f), scheduler_(scheduler) {
  FASTBFT_ASSERT(client_id != 0, "client id 0 is reserved for noops");
}

SmrNode::CommitCallback Client::subscription() {
  return [this](ProcessId pid, GroupId /*group*/, Slot slot,
                const std::vector<Command>& commands) {
    for (const Command& cmd : commands) {
      if (cmd.client_id != client_id_) continue;
      auto it = in_flight_.find(cmd.sequence);
      if (it == in_flight_.end()) continue;  // already complete
      InFlight& entry = it->second;
      entry.reporters.insert(pid);
      entry.slot = slot;
      if (entry.reporters.size() >= f_ + 1) {
        completions_.push_back(Completion{entry.command, entry.slot,
                                          entry.submitted_at,
                                          scheduler_.now()});
        in_flight_.erase(it);
      }
    }
  };
}

std::uint64_t Client::submit(SmrNode& gateway, Command cmd) {
  cmd.client_id = client_id_;
  cmd.sequence = next_sequence_++;
  InFlight entry;
  entry.command = cmd;
  entry.submitted_at = scheduler_.now();
  in_flight_.emplace(cmd.sequence, std::move(entry));
  gateway.submit(cmd);
  return cmd.sequence;
}

std::optional<Client::LatencyStats> Client::latency_stats() const {
  if (completions_.empty()) return std::nullopt;
  std::vector<Duration> latencies;
  latencies.reserve(completions_.size());
  for (const auto& c : completions_) {
    latencies.push_back(c.completed_at - c.submitted_at);
  }
  std::sort(latencies.begin(), latencies.end());
  return LatencyStats{latencies.front(), latencies[latencies.size() / 2],
                      latencies.back()};
}

}  // namespace fastbft::smr
