#include "smr/reply.hpp"

#include "net/tags.hpp"

namespace fastbft::smr {

void Reply::encode(Encoder& enc) const {
  enc.u64(client_id);
  enc.u64(sequence);
  enc.u64(slot);
  enc.u8(static_cast<std::uint8_t>(op));
  enc.boolean(result.ok);
  enc.boolean(result.found);
  enc.str(result.value);
}

std::optional<Reply> Reply::decode(Decoder& dec) {
  Reply reply;
  reply.client_id = dec.u64();
  reply.sequence = dec.u64();
  reply.slot = dec.u64();
  std::uint8_t op = dec.u8();
  if (op < 1 || op > 5) return std::nullopt;
  reply.op = static_cast<OpKind>(op);
  reply.result.ok = dec.boolean();
  reply.result.found = dec.boolean();
  reply.result.value = dec.str();
  if (!dec.ok()) return std::nullopt;
  return reply;
}

Bytes Reply::preimage() const {
  Encoder enc = Encoder::scratch();
  encode(enc);
  return std::move(enc).take();
}

crypto::Digest Reply::match_digest() const {
  // The digest covers the slot and the full result (op echoed for
  // domain hygiene), NOT the client identity — that part is matched
  // structurally by the session before digests are compared.
  Encoder enc = Encoder::scratch();
  enc.u64(slot);
  enc.u8(static_cast<std::uint8_t>(op));
  enc.boolean(result.ok);
  enc.boolean(result.found);
  enc.str(result.value);
  return crypto::sha256(enc.view());
}

Bytes encode_reply_payload(const Reply& reply, const crypto::Signer& signer) {
  crypto::Signature sig = signer.sign(kReplyDomain, reply.preimage());
  Encoder enc(1 + 8 * 3 + 4 + reply.result.value.size() + 8 +
              sig.bytes.size());
  enc.u8(net::tags::kSmrReply);
  reply.encode(enc);
  sig.encode(enc);
  return std::move(enc).take();
}

std::optional<Reply> decode_reply_payload(ByteView payload, ProcessId from,
                                          const crypto::Verifier& verifier) {
  Decoder dec(payload);
  dec.u8();
  auto reply = Reply::decode(dec);
  auto sig = crypto::Signature::decode(dec);
  if (!reply || !sig || !dec.ok() || !dec.at_end()) return std::nullopt;
  if (!verifier.verify(from, kReplyDomain, reply->preimage(), *sig)) {
    return std::nullopt;
  }
  return reply;
}

}  // namespace fastbft::smr
