#pragma once

#include <chrono>
#include <functional>
#include <memory>

#include "net/sim_network.hpp"
#include "smr/session.hpp"
#include "smr/smr_node.hpp"

/// \file service.hpp
/// The unified client API of the replicated KV service: one facade,
/// smr::Service, that stands up a whole cluster (replicas, network, key
/// material, client endpoints) behind a fluent ServiceConfig and exposes
/// it exclusively through smr::ClientSession — typed put/get/del/cas
/// operations completing per-request Futures on an f + 1 quorum of
/// signed, matching replica replies.
///
/// The same session code runs on both runtimes; the factory picks the
/// substrate:
///  * make_sim_service — the deterministic simulator (runtime::Cluster).
///    Drive progress with run_until; simulated time, reproducible runs.
///  * make_threaded_service — real OS threads and wall-clock time
///    (runtime::ThreadedSmrCluster). Futures are blockable; run_until
///    polls.
///
/// Lifecycle: configure -> construct (sessions exist immediately) ->
/// start() -> submit through sessions / crash() / restart() -> stop().
/// See docs/CLIENT_API.md for the full contract (reply quorum rule,
/// failover, at-most-once dedup).

namespace fastbft::smr {

struct ServiceConfig {
  consensus::QuorumConfig cluster = consensus::QuorumConfig{4, 1, 1};
  std::uint32_t num_sessions = 1;

  /// Replication tuning (batching, pipelining, snapshots, leader
  /// rotation, per-slot consensus knobs). target_commands and num_clients
  /// are managed by the service itself.
  SmrOptions smr;

  /// Per-request completion timeout in host ticks (simulator ticks / µs
  /// wall-clock); 0 picks a runtime-appropriate default. On expiry the
  /// session fails over to the next gateway and resubmits.
  Duration request_timeout = 0;

  /// Total per-request budget in host ticks (0 = unlimited): a request
  /// still unresolved after this long completes with
  /// Reply::Status::Timeout instead of failing over forever
  /// (SessionConfig::request_deadline).
  Duration request_deadline = 0;

  /// Per-session submission window (bounded in-flight backpressure).
  std::uint32_t max_in_flight = 8;

  /// Session-side gateway blacklisting threshold
  /// (SessionConfig::gateway_strike_limit; 0 disables).
  std::uint32_t gateway_strike_limit = 3;

  /// TEST HOOK: complete requests on the first valid reply instead of the
  /// f + 1 quorum (SessionConfig::unsafe_first_reply_quorum). Breaks BFT
  /// on purpose so the chaos checker has a real bug to catch.
  bool unsafe_first_reply_quorum = false;

  /// Simulator runtime only: per-replica SmrOptions override, called once
  /// per replica at construction. The chaos harness uses this to flip
  /// SmrOptions::byzantine hooks on selected replicas.
  std::function<void(ProcessId, SmrOptions&)> tune_replica;

  /// Gateway of session k is (first_gateway + k) % n — sessions spread
  /// their request load across replicas by default.
  ProcessId first_gateway = 0;

  std::uint64_t key_seed = 42;

  /// Simulator runtime only: network model (Delta, jitter, seed).
  net::SimNetworkConfig sim_net;

  /// Threaded runtime only: LAN model + wall-clock view-change timeout.
  std::chrono::microseconds link_delay{0};
  Duration sync_base_timeout_us = 25'000;

  // --- Fluent builder --------------------------------------------------------

  ServiceConfig& with_cluster(std::uint32_t n, std::uint32_t f,
                              std::uint32_t t) {
    cluster = consensus::QuorumConfig::create(n, f, t);
    return *this;
  }
  ServiceConfig& with_sessions(std::uint32_t count) {
    num_sessions = count;
    return *this;
  }
  ServiceConfig& with_pipeline_depth(std::uint32_t depth) {
    smr.pipeline_depth = depth;
    return *this;
  }
  ServiceConfig& with_batch(std::uint32_t max_batch) {
    smr.max_batch = max_batch;
    return *this;
  }
  ServiceConfig& with_snapshots(std::uint64_t interval) {
    smr.snapshot_interval = interval;
    return *this;
  }
  ServiceConfig& with_rotating_leaders(bool rotate = true) {
    smr.rotate_leaders = rotate;
    return *this;
  }
  /// Hash-partition the keyspace over `shards` consensus groups (sharded
  /// SMR; sessions route per key, replicas host one engine per group).
  ServiceConfig& with_shards(std::uint32_t shards) {
    smr.num_groups = shards;
    return *this;
  }
  ServiceConfig& with_request_timeout(Duration ticks) {
    request_timeout = ticks;
    return *this;
  }
  ServiceConfig& with_deadline(Duration ticks) {
    request_deadline = ticks;
    return *this;
  }
  ServiceConfig& with_window(std::uint32_t in_flight) {
    max_in_flight = in_flight;
    return *this;
  }
  ServiceConfig& with_first_gateway(ProcessId gateway) {
    first_gateway = gateway;
    return *this;
  }
  ServiceConfig& with_link_delay(std::chrono::microseconds delay) {
    link_delay = delay;
    return *this;
  }
  /// Adaptive pipeline-depth/batch control (engine/adaptive.hpp,
  /// docs/ADAPTIVE.md): AIMD-size the effective depth in
  /// [min_depth, max_depth] to keep per-window p99 decision latency under
  /// `latency_target` host ticks. Overrides the static
  /// with_pipeline_depth value while enabled.
  ServiceConfig& with_adaptive(Duration latency_target,
                               std::uint32_t min_depth = 1,
                               std::uint32_t max_depth = 8) {
    smr.adaptive.enabled = true;
    smr.adaptive.latency_target = latency_target;
    smr.adaptive.min_depth = min_depth;
    smr.adaptive.max_depth = max_depth;
    return *this;
  }
  ServiceConfig& with_seed(std::uint64_t seed) {
    key_seed = seed;
    sim_net.seed = seed;
    return *this;
  }
  ServiceConfig& with_gateway_strike_limit(std::uint32_t strikes) {
    gateway_strike_limit = strikes;
    return *this;
  }
  ServiceConfig& with_unsafe_first_reply_quorum(bool unsafe = true) {
    unsafe_first_reply_quorum = unsafe;
    return *this;
  }
  ServiceConfig& with_tune_replica(
      std::function<void(ProcessId, SmrOptions&)> tune) {
    tune_replica = std::move(tune);
    return *this;
  }
};

class Service {
 public:
  virtual ~Service() = default;

  /// Boots the cluster. Sessions exist (and may queue submissions) from
  /// construction; nothing executes until start().
  virtual void start() = 0;

  /// Shuts the cluster down (joins threads on the threaded runtime).
  /// Store introspection (stores_agree) is safe after this.
  virtual void stop() = 0;

  virtual ClientSession& session(std::uint32_t index) = 0;
  virtual std::uint32_t num_sessions() const = 0;

  /// Fail-stop / crash-recover a replica mid-run (fault injection; the
  /// sessions' failover machinery is how clients survive it).
  virtual void crash(ProcessId replica) = 0;
  virtual void restart(ProcessId replica) = 0;

  /// Drives the service until done() returns true or ~`budget` elapses;
  /// returns done()'s final verdict. On the simulator this steps the
  /// scheduler (1 ms of budget = 1000 simulated ticks); on the threaded
  /// runtime it polls wall-clock. done() must be safe to call from the
  /// driving thread.
  virtual bool run_until(std::function<bool()> done,
                         std::chrono::milliseconds budget) = 0;

  /// Convenience: drive until `future` completes.
  bool await(const Future<Reply>& future, std::chrono::milliseconds budget) {
    return run_until([&future] { return future.ready(); }, budget);
  }

  virtual const consensus::QuorumConfig& quorum() const = 0;

  // --- Introspection (tests, benchmarks) -------------------------------------

  /// Commands replica `id` applied so far (thread-safe on both runtimes).
  virtual std::uint64_t applied_commands(ProcessId replica) const = 0;

  /// Live engine observability for one replica — the effective pipeline
  /// depth/batch currently honoured (the adaptive controller's values
  /// when with_adaptive is on, the static knobs otherwise), adaptive
  /// backoff events, and the reorder-backlog high-water / clamp-stall
  /// counters. Thread-safe on both runtimes while the service runs.
  virtual SmrNode::EngineStats engine_stats(ProcessId replica) const = 0;

  /// True iff `replica` crashed (and, on the sim runtime, was not yet
  /// counted back in) — the replicas stores_agree() skips.
  virtual bool is_faulty(ProcessId replica) const = 0;

  /// Convenience: drive until every correct replica applied at least
  /// `commands` distinct commands — the convergence barrier to cross
  /// before store-agreement checks (request completion only proves f + 1
  /// replicas executed).
  bool await_applied(std::uint64_t commands, std::chrono::milliseconds budget) {
    return run_until(
        [this, commands] {
          for (ProcessId id = 0; id < quorum().n; ++id) {
            if (is_faulty(id)) continue;
            if (applied_commands(id) < commands) return false;
          }
          return true;
        },
        budget);
  }

  /// True iff every correct replica's KV store digest matches. Threaded
  /// runtime: only valid after stop().
  virtual bool stores_agree() const = 0;

  /// Simulator runtime only: the underlying SimNetwork (fault hooks,
  /// observers, scheduler). nullptr on the threaded runtime — the chaos
  /// harness (src/chaos) requires a sim service and checks this.
  virtual net::SimNetwork* sim_network() { return nullptr; }
};

/// Deterministic-simulator service.
std::unique_ptr<Service> make_sim_service(const ServiceConfig& config);

/// Real-threads, wall-clock service.
std::unique_ptr<Service> make_threaded_service(const ServiceConfig& config);

}  // namespace fastbft::smr
