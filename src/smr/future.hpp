#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

/// \file future.hpp
/// Minimal per-request future for the client API. A ClientSession hands
/// one Future<Reply> per request; the session completes it (exactly once)
/// when f + 1 replicas agreed on the execution result.
///
/// Two consumption styles, matching the two runtimes:
///  * callback — on_ready(fn) runs fn when the value lands (immediately if
///    it already has). Works identically on both hosts; fn runs on the
///    completing thread (the session's host thread).
///  * blocking — wait_for()/value() block the calling thread. Only
///    meaningful on the threaded runtime; on the single-threaded simulator
///    nothing can complete a future while the driver blocks, so drive the
///    scheduler instead (Service::run_until) and then read value().

namespace fastbft::smr {

template <typename T>
class Promise;

template <typename T>
class Future {
 public:
  Future() = default;

  bool valid() const { return state_ != nullptr; }

  bool ready() const {
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->value.has_value();
  }

  /// Blocks until ready or `timeout` elapsed; true iff ready.
  bool wait_for(std::chrono::milliseconds timeout) const {
    std::unique_lock<std::mutex> lock(state_->mutex);
    return state_->cv.wait_for(lock, timeout,
                               [&] { return state_->value.has_value(); });
  }

  /// The completed value. Asserts readiness via the standard library's
  /// optional access; call only after ready()/wait_for succeeded.
  const T& value() const {
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->value.value();
  }

  /// Runs `fn` once the value lands — immediately (on this thread) if it
  /// already has, otherwise on the thread that completes the promise.
  void on_ready(std::function<void(const T&)> fn) {
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (!state_->value.has_value()) {
        state_->callbacks.push_back(std::move(fn));
        return;
      }
    }
    fn(*state_->value);
  }

 private:
  friend class Promise<T>;

  struct State {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::optional<T> value;
    std::vector<std::function<void(const T&)>> callbacks;
  };

  explicit Future(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<typename Future<T>::State>()) {}

  Future<T> future() const { return Future<T>(state_); }

  /// Completes the future; every subsequent set() is ignored (the first
  /// quorum wins — late reply quorums for the same request are identical
  /// by agreement anyway).
  void set(T value) {
    std::vector<std::function<void(const T&)>> callbacks;
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (state_->value.has_value()) return;
      state_->value = std::move(value);
      callbacks = std::move(state_->callbacks);
      state_->cv.notify_all();
    }
    for (auto& fn : callbacks) fn(*state_->value);
  }

  bool completed() const {
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->value.has_value();
  }

 private:
  std::shared_ptr<typename Future<T>::State> state_;
};

}  // namespace fastbft::smr
