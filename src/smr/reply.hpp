#pragma once

#include <optional>
#include <string>

#include "common/codec.hpp"
#include "crypto/signer.hpp"
#include "smr/command.hpp"
#include "smr/kvstore.hpp"

/// \file reply.hpp
/// SMR_REPLY: after executing a command at its log position, a replica
/// sends the issuing client a signed reply carrying the execution result.
/// A Byzantine replica may lie about the result (or about having executed
/// at all), so a client session treats a request as complete only once
/// f + 1 distinct replicas sent replies agreeing on the same
/// (slot, result) — at least one of them is correct, and correct replicas
/// only execute decided commands, in log order. That rule is what makes
/// results (including reads, which travel through the log) Byzantine-
/// verified end to end. See smr/session.hpp and docs/CLIENT_API.md.

namespace fastbft::smr {

struct Reply {
  /// How the request concluded at the SESSION. Local-only — never on the
  /// wire: replicas always report executions (Ok); Timeout is synthesized
  /// by the session itself when a request's deadline budget expires before
  /// an f + 1 reply quorum arrives (SessionConfig::request_deadline). A
  /// Timeout reply carries slot 0 and a default result; the command may
  /// still execute later (at-most-once, not exactly-never).
  enum class Status : std::uint8_t { Ok = 0, Timeout = 1 };

  /// Echo of the request identity (the client's at-most-once id).
  std::uint64_t client_id = 0;
  std::uint64_t sequence = 0;

  /// The log position that executed the command.
  Slot slot = 0;

  /// Echo of the operation, plus its execution result.
  OpKind op = OpKind::Noop;
  ExecResult result;

  /// See Status above. Last field so replica-side aggregate inits (which
  /// never set it) keep their positional form; defaults to Ok.
  Status status = Status::Ok;

  bool ok() const { return status == Status::Ok && result.ok; }
  bool timed_out() const { return status == Status::Timeout; }

  /// Identity of the matching rule: replies agreeing on this digest agree
  /// on the execution — the slot and the full result.
  crypto::Digest match_digest() const;

  /// Signing preimage (everything but the signature), domain-separated by
  /// kReplyDomain at the signature layer.
  Bytes preimage() const;

  void encode(Encoder& enc) const;
  static std::optional<Reply> decode(Decoder& dec);

  friend bool operator==(const Reply&, const Reply&) = default;
};

/// Domain-separation string for reply signatures.
inline const std::string kReplyDomain = "smr-reply";

/// Full SMR_REPLY wire payload: tag, reply fields, signature.
Bytes encode_reply_payload(const Reply& reply, const crypto::Signer& signer);

/// Parses and signature-checks an SMR_REPLY payload from replica `from`.
/// nullopt on malformed payloads or bad signatures.
std::optional<Reply> decode_reply_payload(ByteView payload, ProcessId from,
                                          const crypto::Verifier& verifier);

}  // namespace fastbft::smr
