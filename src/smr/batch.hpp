#pragma once

#include <vector>

#include "smr/command.hpp"

/// \file batch.hpp
/// Batch encoding: one consensus slot decides on a batch of client
/// commands. Batching is the standard throughput lever; bench_smr sweeps
/// the batch size.

namespace fastbft::smr {

/// Encodes a non-empty batch into a consensus Value.
Value encode_batch(const std::vector<Command>& commands);

/// Decodes a batch; nullopt on malformed input.
std::optional<std::vector<Command>> decode_batch(const Value& value);

}  // namespace fastbft::smr
