#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>

#include "runtime/cluster.hpp"
#include "smr/batch.hpp"
#include "smr/kvstore.hpp"
#include "viewsync/synchronizer.hpp"

/// \file smr_node.hpp
/// State machine replication on top of the consensus core: a sequence of
/// slots, each an independent single-shot instance of the paper's protocol,
/// applied in order to a deterministic KV store.
///
/// Design notes:
///  * Clients broadcast requests to every replica (SMR_REQUEST); each
///    replica keeps a pending queue, so whichever process leads the next
///    slot can propose. Commands are deduplicated by (client_id, sequence)
///    at apply time, making duplicate proposals harmless.
///  * A slot's consensus traffic is wrapped in SMR_WRAPPED{slot, inner};
///    each slot gets a fresh replica, view synchronizer and wrapping
///    transport. Slots are processed sequentially.
///  * Catch-up: a replica receiving slot-s traffic after deciding s replies
///    with SMR_DECIDED{s, value}. f + 1 matching claims let a laggard adopt
///    the decision (at least one is from a correct process) — classic state
///    transfer, needed because fast-path acks are not transferable proof.

namespace fastbft::smr {

struct SmrOptions {
  /// Maximum commands bundled into one slot proposal.
  std::uint32_t max_batch = 8;

  /// Stop starting new slots once this many commands were applied
  /// (0 = never stop; the driver bounds the run instead).
  std::uint64_t target_commands = 0;

  /// Per-slot consensus/synchronizer tuning.
  runtime::NodeOptions node;
};

class SmrNode final : public runtime::IProcess {
 public:
  /// Called after each slot is applied on this replica.
  using CommitCallback = std::function<void(
      ProcessId pid, Slot slot, const std::vector<Command>& commands)>;

  SmrNode(const runtime::ProcessContext& ctx, SmrOptions options,
          CommitCallback on_commit);

  void start() override;
  void on_message(ProcessId from, const Bytes& payload) override;

  /// Local client entry point: broadcasts the request to all replicas
  /// (including this one).
  void submit(const Command& cmd);

  const KvStore& store() const { return store_; }
  Slot current_slot() const { return current_slot_; }
  std::uint64_t applied_commands() const { return applied_commands_; }
  std::uint64_t noop_slots() const { return noop_slots_; }

 private:
  /// Transport wrapper scoping one slot's traffic.
  class SlotTransport final : public net::Transport {
   public:
    SlotTransport(net::Transport& inner, Slot slot)
        : inner_(inner), slot_(slot) {}
    void send(ProcessId to, Bytes payload) override;
    std::uint32_t cluster_size() const override {
      return inner_.cluster_size();
    }
    ProcessId self() const override { return inner_.self(); }

   private:
    net::Transport& inner_;
    Slot slot_;
  };

  struct SlotState {
    std::unique_ptr<SlotTransport> transport;
    std::unique_ptr<consensus::Replica> replica;
    std::unique_ptr<viewsync::Synchronizer> sync;
    bool decided = false;
  };

  void start_slot(Slot slot);
  Value make_input() const;
  void on_slot_decided(Slot slot, const Value& value);
  void apply_batch(Slot slot, const Value& value);
  void handle_request(const Bytes& payload);
  void handle_wrapped(ProcessId from, const Bytes& payload);
  void handle_decided_claim(ProcessId from, const Bytes& payload);
  void send_decided_reply(Slot slot, ProcessId to);
  bool done() const {
    return options_.target_commands > 0 &&
           applied_commands_ >= options_.target_commands;
  }

  runtime::ProcessContext ctx_;
  SmrOptions options_;
  CommitCallback on_commit_;
  std::unique_ptr<net::SimEndpoint> endpoint_;

  Slot current_slot_ = 0;  // 0 = not started
  std::map<Slot, SlotState> slots_;
  std::map<Slot, Value> decided_values_;

  std::deque<Command> pending_;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen_requests_;
  std::set<std::pair<std::uint64_t, std::uint64_t>> applied_ids_;

  /// Catch-up bookkeeping: slot -> claimed value bytes -> claimants.
  std::map<Slot, std::map<Bytes, std::set<ProcessId>>> decided_claims_;
  std::set<std::pair<Slot, ProcessId>> decided_reply_sent_;

  KvStore store_;
  std::uint64_t applied_commands_ = 0;
  std::uint64_t noop_slots_ = 0;
  bool advancing_ = false;
};

}  // namespace fastbft::smr
