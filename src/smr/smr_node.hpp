#pragma once

#include <memory>

#include "engine/slot_mux.hpp"
#include "runtime/cluster.hpp"
#include "smr/kvstore.hpp"

/// \file smr_node.hpp
/// State machine replication on top of the slot-multiplexed consensus
/// engine (src/engine): a sequence of slots, each an independent
/// single-shot instance of the paper's protocol, applied in slot order to
/// a deterministic KV store.
///
/// SmrNode is deliberately thin: it owns the network endpoint, the KV
/// state machine and the client-facing API (submit/commit callback), and
/// delegates everything slot-shaped — window management, dispatch,
/// pending-queue/dedup policy, reorder buffering, SMR_DECIDED catch-up —
/// to engine::SlotMux.
///
/// The shell is host-agnostic like the engine underneath it: the
/// ProcessContext constructor runs it on the deterministic simulator
/// (owning a SimHost), while the Host constructor runs the identical code
/// over any execution context — runtime::ThreadedSmrCluster uses it with
/// a wall-clock ThreadedHost per delivery thread.
///
/// Wire protocol:
///  * Requests reach every replica as SMR_REQUEST; whichever process leads
///    a slot can propose them. A driver-submitted request is broadcast
///    directly (submit()); a client-session request is sent to ONE replica
///    — its gateway — which forwards it to the whole cluster. Commands are
///    deduplicated by (client_id, sequence) at apply time, which is what
///    makes a session's retry through a different gateway at-most-once.
///  * With SmrOptions::num_clients set, every applied command addressed
///    from a client endpoint is answered with SMR_REPLY{command id, slot,
///    signed execution result}; f + 1 matching replies complete a request
///    at the session (smr/reply.hpp, smr/session.hpp).
///  * A slot's consensus traffic is wrapped in SMR_WRAPPED{slot, applied
///    watermark, snapshot floor, inner}; the watermark gossip lets peers
///    prune decided values everyone has applied, and the snapshot-floor
///    gossip tells laggards when those slots are gone for good.
///  * A replica receiving slot-s traffic after deciding s replies with
///    SMR_DECIDED{s, value}; f + 1 matching claims let a laggard adopt the
///    decision.
///  * A replica whose apply cursor sits below a peer's gossiped snapshot
///    floor sends SNAPSHOT_REQUEST; the peer answers with its latest
///    snapshot chunked into SNAPSHOT_RESPONSE messages. f + 1 matching
///    (slot, digest) vouchers plus a digest-verified body install the
///    state and resume applying from the snapshot boundary (docs/CATCHUP.md).

namespace fastbft::smr {

struct SmrOptions {
  /// Maximum commands bundled into one slot proposal.
  std::uint32_t max_batch = 8;

  /// Stop starting new slots once this many commands were applied
  /// (0 = never stop; the driver bounds the run instead).
  std::uint64_t target_commands = 0;

  /// Consensus slots run concurrently (1 = strictly sequential slots,
  /// the pre-engine behaviour). See engine::SlotMuxOptions.
  std::uint32_t pipeline_depth = 1;

  /// Rotate the view-1 leader by slot index (see engine::SlotMuxOptions).
  bool rotate_leaders = false;

  /// Reorder-backlog congestion clamp (see engine::SlotMuxOptions;
  /// 0 = disabled).
  std::size_t max_reorder_backlog = 0;

  /// Freeze a KV snapshot every this many applied slots (0 = never).
  /// Snapshots unpin decided-value retention from crashed replicas and
  /// let a rejoining replica recover by state transfer instead of replay
  /// (see engine::SlotMuxOptions and docs/CATCHUP.md).
  std::uint64_t snapshot_interval = 0;

  /// Largest snapshot-transfer chunk payload (see engine::SlotMuxOptions).
  std::uint32_t snapshot_chunk_bytes = 1024;

  /// Client endpoints attached to the network beyond the n replicas
  /// (ids n .. n + num_clients - 1; see net::SimNetwork /
  /// net::ThreadedNetwork extra_endpoints). When nonzero, the node acts
  /// as a client-facing service replica: SMR_REQUESTs arriving FROM a
  /// client endpoint are forwarded to the whole cluster (the gateway
  /// role), and every applied command whose client_id names a client
  /// endpoint is answered with a signed SMR_REPLY carrying the execution
  /// result (smr/reply.hpp). 0 preserves the bare replication surface
  /// (drivers submit through SmrNode::submit and read stores directly).
  std::uint32_t num_clients = 0;

  /// Per-slot consensus/synchronizer tuning.
  runtime::NodeOptions node;
};

class SmrNode final : public runtime::IProcess {
 public:
  /// Called after each slot is applied on this replica.
  using CommitCallback = std::function<void(
      ProcessId pid, Slot slot, const std::vector<Command>& commands)>;

  /// Called after a transferred snapshot is installed (the store already
  /// restored). Lets harnesses account for the slots the replica skipped.
  using InstallCallback =
      std::function<void(ProcessId pid, const Snapshot& snapshot)>;

  /// Simulator shell: builds a SimHost over the cluster scheduler and a
  /// SimNetwork endpoint from the process context.
  SmrNode(const runtime::ProcessContext& ctx, SmrOptions options,
          CommitCallback on_commit);

  /// Host-agnostic shell: runs over any Host + Transport pair. `host` must
  /// outlive the node; all callbacks (messages, timers) must run on the
  /// host's single logical thread.
  SmrNode(engine::Host& host, engine::EngineContext ectx,
          std::unique_ptr<net::Transport> endpoint, SmrOptions options,
          CommitCallback on_commit);
  ~SmrNode() override;

  /// Optional snapshot-install notification; set before start().
  void set_install_callback(InstallCallback on_install) {
    on_install_ = std::move(on_install);
  }

  void start() override;
  void on_message(ProcessId from, const Bytes& payload) override;

  /// Local client entry point: broadcasts the request to all replicas
  /// (including this one).
  void submit(const Command& cmd);

  /// The SMR_REQUEST wire encoding of `cmd` — the single source of truth
  /// for the request framing (used by submit() and by drivers that inject
  /// requests without a wire hop, e.g. pre-start seeding).
  static Bytes encode_request(const Command& cmd);

  const KvStore& store() const { return store_; }
  Slot current_slot() const { return mux_->highest_started(); }
  std::uint64_t applied_commands() const { return mux_->applied_commands(); }
  std::uint64_t noop_slots() const { return mux_->noop_slots(); }

  /// The underlying consensus engine (tests, benchmarks).
  const engine::SlotMux& engine() const { return *mux_; }

 private:
  void init_mux(engine::Host& host);
  void handle_request(ProcessId from, const Bytes& payload);
  void send_reply(Slot slot, const Command& cmd, ExecResult result);

  engine::EngineContext ectx_;
  SmrOptions options_;
  CommitCallback on_commit_;
  InstallCallback on_install_;
  std::unique_ptr<engine::SimHost> owned_host_;  // sim shell only
  std::unique_ptr<net::Transport> endpoint_;
  std::unique_ptr<engine::SlotMux> mux_;
  KvStore store_;
};

}  // namespace fastbft::smr
