#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "engine/slot_mux.hpp"
#include "runtime/cluster.hpp"
#include "smr/kvstore.hpp"
#include "smr/shard.hpp"

/// \file smr_node.hpp
/// State machine replication on top of the slot-multiplexed consensus
/// engine (src/engine): a sequence of slots, each an independent
/// single-shot instance of the paper's protocol, applied in slot order to
/// a deterministic KV store.
///
/// SmrNode is deliberately thin: it owns the network endpoint, the
/// per-group KV state machines and the client-facing API (submit/commit
/// callback), and delegates everything slot-shaped — window management,
/// dispatch, pending-queue/dedup policy, reorder buffering, SMR_DECIDED
/// catch-up — to engine::SlotMux.
///
/// Sharding (num_groups > 1): the node hosts one independent SlotMux +
/// KvStore per consensus group over the SAME endpoint, keys and leader
/// function. The keyspace is hash-partitioned (smr/shard.hpp): an
/// SMR_REQUEST is admitted only into the group that owns its command's
/// key, and group-scoped replication traffic carries a GroupId right
/// after the tag byte so on_message can route it without a full decode.
/// Per-node resources stay shared across groups — one VerificationCache
/// (EngineContext::verify_cache is created once here and handed to every
/// engine), one endpoint, one delivery thread — so crypto and allocation
/// costs amortize instead of multiplying by S (docs/SHARDING.md).
///
/// The shell is host-agnostic like the engine underneath it: the
/// ProcessContext constructor runs it on the deterministic simulator
/// (owning a SimHost), while the Host constructor runs the identical code
/// over any execution context — runtime::ThreadedSmrCluster uses it with
/// a wall-clock ThreadedHost per delivery thread.
///
/// Wire protocol:
///  * Requests reach every replica as SMR_REQUEST; whichever process leads
///    a slot can propose them. A driver-submitted request is broadcast
///    directly (submit()); a client-session request is sent to ONE replica
///    — its gateway — which forwards it to the whole cluster. Commands are
///    deduplicated by (client_id, sequence) at apply time, which is what
///    makes a session's retry through a different gateway at-most-once.
///  * With SmrOptions::num_clients set, every applied command addressed
///    from a client endpoint is answered with SMR_REPLY{command id, slot,
///    signed execution result}; f + 1 matching replies complete a request
///    at the session (smr/reply.hpp, smr/session.hpp).
///  * A slot's consensus traffic is wrapped in SMR_WRAPPED{group, slot,
///    applied watermark, snapshot floor, inner}; the watermark gossip lets
///    peers prune decided values everyone has applied, and the
///    snapshot-floor gossip tells laggards when those slots are gone for
///    good.
///  * A replica receiving slot-s traffic after deciding s replies with
///    SMR_DECIDED{group, s, value}; f + 1 matching claims let a laggard
///    adopt the decision.
///  * A replica whose apply cursor sits below a peer's gossiped snapshot
///    floor sends SNAPSHOT_REQUEST; the peer answers with its latest
///    snapshot chunked into SNAPSHOT_RESPONSE messages. f + 1 matching
///    (slot, digest) vouchers plus a digest-verified body install the
///    state and resume applying from the snapshot boundary (docs/CATCHUP.md).

namespace fastbft::smr {

struct SmrOptions {
  /// Maximum commands bundled into one slot proposal.
  std::uint32_t max_batch = 8;

  /// Stop starting new slots once this many commands were applied
  /// (0 = never stop; the driver bounds the run instead). With multiple
  /// groups this is each group's individual target unless group_targets
  /// overrides it.
  std::uint64_t target_commands = 0;

  /// Consensus groups hosted by this node (hash-partitioned keyspace;
  /// see smr/shard.hpp). 1 = the unsharded single-log behaviour. Must be
  /// identical on every replica.
  std::uint32_t num_groups = 1;

  /// Per-group target_commands override (index = GroupId). Needed by
  /// bounded drivers: keys hash unevenly, so each group must stop at ITS
  /// share of the workload, not at a uniform count. Empty = every group
  /// uses target_commands.
  std::vector<std::uint64_t> group_targets;

  /// Consensus slots run concurrently (1 = strictly sequential slots,
  /// the pre-engine behaviour). See engine::SlotMuxOptions.
  std::uint32_t pipeline_depth = 1;

  /// Rotate the view-1 leader by slot index (see engine::SlotMuxOptions).
  /// Unset = automatic: rotation is ON for multi-group runs (S groups x
  /// depth slots all led by the same process would concentrate proposal
  /// load exactly where sharding should spread it) and OFF for single
  /// groups (the paper's single-shot experiments assume a slot-independent
  /// leader function). Tests that pin a fixed leader set this explicitly.
  std::optional<bool> rotate_leaders;

  /// Open slots eagerly to the full window even when idle (see
  /// engine::SlotMuxOptions). The simulator default; the socket runtime
  /// turns it off so idle replicas do not spin noop slots against real
  /// CPUs.
  bool eager_windows = true;

  /// Reorder-backlog congestion clamp (see engine::SlotMuxOptions;
  /// 0 = disabled).
  std::size_t max_reorder_backlog = 0;

  /// Freeze a KV snapshot every this many applied slots (0 = never).
  /// Snapshots unpin decided-value retention from crashed replicas and
  /// let a rejoining replica recover by state transfer instead of replay
  /// (see engine::SlotMuxOptions and docs/CATCHUP.md).
  std::uint64_t snapshot_interval = 0;

  /// Largest snapshot-transfer chunk payload (see engine::SlotMuxOptions).
  std::uint32_t snapshot_chunk_bytes = 1024;

  /// Adaptive sizing of the effective pipeline depth and batch per group
  /// (engine/adaptive.hpp, docs/ADAPTIVE.md). Off by default: the static
  /// pipeline_depth/max_batch stay authoritative. When enabled,
  /// pipeline_depth is the starting point only if it falls inside
  /// [adaptive.min_depth, adaptive.max_depth]; the controller owns the
  /// knob from the first scored window on.
  engine::AdaptiveOptions adaptive;

  /// Client endpoints attached to the network beyond the n replicas
  /// (ids n .. n + num_clients - 1; see net::SimNetwork /
  /// net::ThreadedNetwork extra_endpoints). When nonzero, the node acts
  /// as a client-facing service replica: SMR_REQUESTs arriving FROM a
  /// client endpoint are forwarded to the whole cluster (the gateway
  /// role), and every applied command whose client_id names a client
  /// endpoint is answered with a signed SMR_REPLY carrying the execution
  /// result (smr/reply.hpp). 0 preserves the bare replication surface
  /// (drivers submit through SmrNode::submit and read stores directly).
  std::uint32_t num_clients = 0;

  /// TEST HOOKS — Byzantine behaviours for the chaos harness
  /// (src/chaos, docs/CHAOS.md). All off by default. They corrupt only
  /// the client-facing surface, never the consensus messages: the node
  /// still participates honestly in replication (so cluster liveness is
  /// unaffected) but lies to clients or sabotages its gateway role.
  struct ByzantineHooks {
    /// Sign and send fabricated execution results in SMR_REPLY. A correct
    /// session outvotes up to f such replicas via its f + 1 matching-reply
    /// quorum; with SessionConfig::unsafe_first_reply_quorum set, ONE liar
    /// breaks safety — which the linearizability checker must detect.
    bool lie_in_replies = false;

    /// Gateway role: silently drop client SMR_REQUESTs instead of
    /// forwarding (the request is not admitted locally either).
    bool drop_forwards = false;

    /// Gateway role: forward a truncated copy of the client request so
    /// peers fail to decode it (framing corruption; indistinguishable
    /// from a drop at the client). Semantic corruption of the command is
    /// deliberately NOT modelled: requests are unsigned today, so it
    /// would be undetectable — see docs/CHAOS.md "Known gaps".
    bool corrupt_forwards = false;
  };
  ByzantineHooks byzantine;

  /// Per-slot consensus/synchronizer tuning.
  runtime::NodeOptions node;
};

class SmrNode final : public runtime::IProcess {
 public:
  /// Called after each slot is applied on this replica. `group` is the
  /// consensus group that applied it (0 in unsharded nodes); slots are
  /// per-group sequences, so (group, slot) is the log position.
  using CommitCallback =
      std::function<void(ProcessId pid, GroupId group, Slot slot,
                         const std::vector<Command>& commands)>;

  /// Called after a transferred snapshot is installed in `group` (the
  /// group's store already restored). Lets harnesses account for the
  /// slots the replica skipped.
  using InstallCallback = std::function<void(ProcessId pid, GroupId group,
                                             const Snapshot& snapshot)>;

  /// Simulator shell: builds a SimHost over the cluster scheduler and a
  /// SimNetwork endpoint from the process context.
  SmrNode(const runtime::ProcessContext& ctx, SmrOptions options,
          CommitCallback on_commit);

  /// Host-agnostic shell: runs over any Host + Transport pair. `host` must
  /// outlive the node; all callbacks (messages, timers) must run on the
  /// host's single logical thread.
  SmrNode(engine::Host& host, engine::EngineContext ectx,
          std::unique_ptr<net::Transport> endpoint, SmrOptions options,
          CommitCallback on_commit);
  ~SmrNode() override;

  /// Optional snapshot-install notification; set before start().
  void set_install_callback(InstallCallback on_install) {
    on_install_ = std::move(on_install);
  }

  void start() override;
  void on_message(ProcessId from, const Bytes& payload) override;

  /// Local client entry point: broadcasts the request to all replicas
  /// (including this one).
  void submit(const Command& cmd);

  /// The SMR_REQUEST wire encoding of `cmd` — the single source of truth
  /// for the request framing (used by submit() and by drivers that inject
  /// requests without a wire hop, e.g. pre-start seeding).
  static Bytes encode_request(const Command& cmd);

  /// Groups hosted by this node (>= 1; identical cluster-wide).
  std::uint32_t num_groups() const {
    return static_cast<std::uint32_t>(groups_.size());
  }

  /// Owning group of `key` on this node.
  GroupId group_of(std::string_view key) const {
    return shard_of(key, num_groups());
  }

  /// Group g's state machine (g = 0 is the whole store when unsharded).
  const KvStore& store(GroupId group = 0) const {
    return groups_[group]->store;
  }

  /// SHA-256 over every group's state digest, in group order: equal
  /// digests mean equal replica states across ALL shards.
  crypto::Digest state_digest() const;

  Slot current_slot(GroupId group = 0) const {
    return groups_[group]->mux->highest_started();
  }

  /// Applied commands summed over every group.
  std::uint64_t applied_commands() const;

  /// No-op slots summed over every group.
  std::uint64_t noop_slots() const;

  /// The underlying consensus engine of one group (tests, benchmarks).
  const engine::SlotMux& engine(GroupId group = 0) const {
    return *groups_[group]->mux;
  }

  /// Live engine observability, aggregated over this node's groups:
  /// knob values are the max across groups (they move together under
  /// uniform load), event counters are summed. Thread-safe — every field
  /// reads relaxed atomics — so stats threads can sample a running node.
  struct EngineStats {
    std::uint32_t effective_depth = 0;   ///< max over groups
    std::uint32_t effective_batch = 0;   ///< max over groups
    std::uint64_t adaptive_backoffs = 0; ///< summed
    std::size_t reorder_high_water = 0;  ///< max over groups
    std::size_t parked_high_water = 0;   ///< max over groups
    std::uint64_t clamp_stalls = 0;      ///< summed
  };
  EngineStats engine_stats() const;

 private:
  struct Group {
    KvStore store;
    std::unique_ptr<engine::SlotMux> mux;
  };

  void init_groups(engine::Host& host);
  void handle_request(ProcessId from, const Bytes& payload);
  void send_reply(Slot slot, const Command& cmd, ExecResult result);

  engine::EngineContext ectx_;
  SmrOptions options_;
  CommitCallback on_commit_;
  InstallCallback on_install_;
  std::unique_ptr<engine::SimHost> owned_host_;  // sim shell only
  std::unique_ptr<net::Transport> endpoint_;
  /// One engine + store per consensus group; stable addresses (the engine
  /// apply callbacks capture their group), hence unique_ptr elements.
  std::vector<std::unique_ptr<Group>> groups_;
};

}  // namespace fastbft::smr
