#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.hpp"

/// \file shard.hpp
/// Deterministic key → consensus-group shard map for the sharded SMR layer.
///
/// Every replica and every client computes the owning group of a command
/// locally from the command's key — the shard map is pure code, never
/// negotiated or carried on the wire for requests. SMR_REQUEST / SMR_REPLY
/// therefore keep their PR-5 format; only the group-scoped replication
/// traffic (SMR_WRAPPED, SMR_DECIDED, SMR_SNAP_*) carries an explicit
/// GroupId (see docs/SHARDING.md).

namespace fastbft::smr {

/// 64-bit FNV-1a over the key bytes. Chosen over std::hash because its
/// output must be identical across every process (clients and replicas
/// route by it) and across standard-library implementations.
std::uint64_t shard_hash(std::string_view key);

/// Owning group of `key` in a node hosting `num_shards` groups.
/// num_shards == 0 is treated as 1 so a default-constructed config can
/// never divide by zero.
GroupId shard_of(std::string_view key, std::uint32_t num_shards);

}  // namespace fastbft::smr
