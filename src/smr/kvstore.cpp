#include "smr/kvstore.hpp"

namespace fastbft::smr {

void KvStore::apply(const Command& cmd) {
  switch (cmd.kind) {
    case OpKind::Put:
      data_[cmd.key] = cmd.value;
      break;
    case OpKind::Del:
      data_.erase(cmd.key);
      break;
    case OpKind::Noop:
      break;
  }
  ++applied_;
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

crypto::Digest KvStore::state_digest() const {
  Encoder enc;
  enc.u64(applied_);
  enc.u64(data_.size());
  for (const auto& [key, value] : data_) {
    enc.str(key);
    enc.str(value);
  }
  return crypto::sha256(std::move(enc).take());
}

}  // namespace fastbft::smr
