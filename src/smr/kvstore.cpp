#include "smr/kvstore.hpp"

namespace fastbft::smr {

ExecResult KvStore::apply(const Command& cmd) {
  ExecResult result;
  auto it = data_.find(cmd.key);
  result.found = it != data_.end();
  switch (cmd.kind) {
    case OpKind::Put:
      data_[cmd.key] = cmd.value;
      break;
    case OpKind::Del:
      if (result.found) data_.erase(it);
      break;
    case OpKind::Noop:
      result.found = false;
      break;
    case OpKind::Get:
      if (result.found) result.value = it->second;
      break;
    case OpKind::Cas:
      // Succeeds only when the key exists and holds exactly `expected`;
      // a failed CAS leaves the store untouched (but still consumes its
      // log position — the result is what tells the client).
      result.ok = result.found && it->second == cmd.expected;
      if (result.ok) it->second = cmd.value;
      break;
  }
  ++applied_;
  return result;
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

crypto::Digest KvStore::state_digest() const {
  return crypto::sha256(serialize());
}

Bytes KvStore::serialize() const {
  Encoder enc;
  enc.u64(applied_);
  enc.u64(data_.size());
  for (const auto& [key, value] : data_) {
    enc.str(key);
    enc.str(value);
  }
  return std::move(enc).take();
}

bool KvStore::restore(const Bytes& image) {
  Decoder dec(image);
  std::uint64_t applied = dec.u64();
  std::uint64_t count = dec.u64();
  if (!dec.ok()) return false;
  std::map<std::string, std::string> data;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string key = dec.str();
    std::string value = dec.str();
    if (!dec.ok()) return false;
    data.emplace(std::move(key), std::move(value));
  }
  if (!dec.at_end() || data.size() != count) return false;
  data_ = std::move(data);
  applied_ = applied;
  return true;
}

}  // namespace fastbft::smr
