#include "smr/smr_node.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "net/tags.hpp"

namespace fastbft::smr {

namespace {

Bytes wrap(Slot slot, const Bytes& inner) {
  Encoder enc;
  enc.u8(net::tags::kSmrWrapped);
  enc.u64(slot);
  enc.bytes(inner);
  return std::move(enc).take();
}

}  // namespace

void SmrNode::SlotTransport::send(ProcessId to, Bytes payload) {
  inner_.send(to, wrap(slot_, payload));
}

SmrNode::SmrNode(const runtime::ProcessContext& ctx, SmrOptions options,
                 CommitCallback on_commit)
    : ctx_(ctx),
      options_(options),
      on_commit_(std::move(on_commit)),
      endpoint_(ctx.network->endpoint(ctx.id)) {}

void SmrNode::start() { start_slot(1); }

Value SmrNode::make_input() const {
  std::vector<Command> batch;
  for (const auto& cmd : pending_) {
    if (applied_ids_.contains({cmd.client_id, cmd.sequence})) continue;
    batch.push_back(cmd);
    if (batch.size() >= options_.max_batch) break;
  }
  if (batch.empty()) batch.push_back(Command::noop());
  return encode_batch(batch);
}

void SmrNode::start_slot(Slot slot) {
  FASTBFT_ASSERT(slot == current_slot_ + 1, "slots start sequentially");
  current_slot_ = slot;

  SlotState state;
  state.transport = std::make_unique<SlotTransport>(*endpoint_, slot);

  viewsync::SynchronizerConfig sync_cfg = options_.node.sync;
  sync_cfg.f = ctx_.cfg.f;

  auto on_decide = [this, slot](const consensus::DecisionRecord& record) {
    // Deciding happens inside the replica's message handler; defer the
    // slot transition so we never tear down an executing replica.
    ctx_.scheduler->schedule_after(0, [this, slot, value = record.value] {
      on_slot_decided(slot, value);
    });
  };

  state.replica = std::make_unique<consensus::Replica>(
      ctx_.cfg, ctx_.id, make_input(), *state.transport,
      crypto::Signer(ctx_.keys, ctx_.id), crypto::Verifier(ctx_.keys),
      ctx_.leader_of, on_decide, options_.node.replica);
  auto* replica = state.replica.get();
  state.sync = std::make_unique<viewsync::Synchronizer>(
      sync_cfg, ctx_.id, *state.transport, *ctx_.scheduler,
      [replica](View v) { replica->enter_view(v); });

  auto [it, inserted] = slots_.emplace(slot, std::move(state));
  FASTBFT_ASSERT(inserted, "slot already exists");
  it->second.sync->start();
  it->second.replica->start();

  // A laggard may already hold f+1 decided claims for this slot.
  auto claims = decided_claims_.find(slot);
  if (claims != decided_claims_.end()) {
    for (const auto& [value_bytes, claimants] : claims->second) {
      if (claimants.size() >= ctx_.cfg.f + 1) {
        Value value{Bytes(value_bytes)};
        ctx_.scheduler->schedule_after(0, [this, slot, value] {
          on_slot_decided(slot, value);
        });
        break;
      }
    }
  }
}

void SmrNode::on_slot_decided(Slot slot, const Value& value) {
  auto it = slots_.find(slot);
  if (it == slots_.end() || it->second.decided) return;
  it->second.decided = true;
  it->second.sync->stop();
  decided_values_.emplace(slot, value);

  apply_batch(slot, value);

  if (slot == current_slot_ && !done()) {
    start_slot(slot + 1);
  }
}

void SmrNode::apply_batch(Slot slot, const Value& value) {
  auto batch = decode_batch(value);
  if (!batch) {
    // A decided value that is not a valid batch is treated as a no-op (can
    // only happen if a Byzantine leader proposed garbage — agreement still
    // holds, the state machine just skips it deterministically).
    ++noop_slots_;
    return;
  }
  std::vector<Command> applied;
  for (const auto& cmd : *batch) {
    if (cmd.kind == OpKind::Noop) continue;
    auto id = std::make_pair(cmd.client_id, cmd.sequence);
    if (!applied_ids_.insert(id).second) continue;  // duplicate
    store_.apply(cmd);
    ++applied_commands_;
    applied.push_back(cmd);
  }
  if (applied.empty()) ++noop_slots_;

  // Drop executed commands from the pending queue.
  while (!pending_.empty() &&
         applied_ids_.contains(
             {pending_.front().client_id, pending_.front().sequence})) {
    pending_.pop_front();
  }

  if (on_commit_) on_commit_(ctx_.id, slot, applied);
}

void SmrNode::submit(const Command& cmd) {
  Encoder enc;
  enc.u8(net::tags::kSmrRequest);
  enc.bytes(cmd.to_value().bytes());
  endpoint_->broadcast(std::move(enc).take());
}

void SmrNode::on_message(ProcessId from, const Bytes& payload) {
  if (payload.empty()) return;
  switch (payload[0]) {
    case net::tags::kSmrRequest:
      handle_request(payload);
      return;
    case net::tags::kSmrWrapped:
      handle_wrapped(from, payload);
      return;
    case net::tags::kSmrDecided:
      handle_decided_claim(from, payload);
      return;
    default:
      return;
  }
}

void SmrNode::handle_request(const Bytes& payload) {
  Decoder dec(payload);
  dec.u8();
  Bytes raw = dec.bytes();
  if (!dec.ok() || !dec.at_end()) return;
  auto cmd = Command::from_value(Value(std::move(raw)));
  if (!cmd || cmd->kind == OpKind::Noop) return;
  auto id = std::make_pair(cmd->client_id, cmd->sequence);
  if (applied_ids_.contains(id)) return;
  if (!seen_requests_.insert(id).second) return;
  pending_.push_back(std::move(*cmd));
}

void SmrNode::handle_wrapped(ProcessId from, const Bytes& payload) {
  Decoder dec(payload);
  dec.u8();
  Slot slot = dec.u64();
  Bytes inner = dec.bytes();
  if (!dec.ok() || !dec.at_end() || slot == 0) return;

  if (decided_values_.contains(slot)) {
    send_decided_reply(slot, from);
    return;
  }
  if (current_slot_ != 0 && slot > current_slot_) {
    // Someone is ahead of us; their slot traffic is useless to us until we
    // catch up, but it does tell us they advanced past our slot. Nothing
    // to buffer: catch-up runs on SMR_DECIDED claims.
    return;
  }
  auto it = slots_.find(slot);
  if (it == slots_.end()) return;
  if (!inner.empty() && inner[0] == net::tags::kWish) {
    it->second.sync->on_message(from, inner);
  } else {
    it->second.replica->on_message(from, inner);
  }
}

void SmrNode::send_decided_reply(Slot slot, ProcessId to) {
  if (!decided_reply_sent_.insert({slot, to}).second) return;
  Encoder enc;
  enc.u8(net::tags::kSmrDecided);
  enc.u64(slot);
  decided_values_.at(slot).encode(enc);
  endpoint_->send(to, std::move(enc).take());
}

void SmrNode::handle_decided_claim(ProcessId from, const Bytes& payload) {
  Decoder dec(payload);
  dec.u8();
  Slot slot = dec.u64();
  auto value = Value::decode(dec);
  if (!value || !dec.ok() || !dec.at_end() || slot == 0) return;
  if (decided_values_.contains(slot)) return;

  auto& claimants = decided_claims_[slot][value->bytes()];
  claimants.insert(from);
  if (slot == current_slot_ && claimants.size() >= ctx_.cfg.f + 1) {
    on_slot_decided(slot, *value);
  }
}

}  // namespace fastbft::smr
