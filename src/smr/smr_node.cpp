#include "smr/smr_node.hpp"

#include "common/assert.hpp"
#include "net/tags.hpp"
#include "smr/reply.hpp"

namespace fastbft::smr {

SmrNode::SmrNode(const runtime::ProcessContext& ctx, SmrOptions options,
                 CommitCallback on_commit)
    : ectx_{ctx.cfg, ctx.id, ctx.keys, ctx.leader_of,
            ctx.network != nullptr ? &ctx.network->stats() : nullptr},
      options_(std::move(options)),
      on_commit_(std::move(on_commit)),
      owned_host_(std::make_unique<engine::SimHost>(*ctx.scheduler)),
      endpoint_(ctx.network->endpoint(ctx.id)) {
  init_mux(*owned_host_);
}

SmrNode::SmrNode(engine::Host& host, engine::EngineContext ectx,
                 std::unique_ptr<net::Transport> endpoint, SmrOptions options,
                 CommitCallback on_commit)
    : ectx_(std::move(ectx)),
      options_(std::move(options)),
      on_commit_(std::move(on_commit)),
      endpoint_(std::move(endpoint)) {
  init_mux(host);
}

void SmrNode::init_mux(engine::Host& host) {
  engine::SlotMuxOptions mux_options;
  mux_options.pipeline_depth = options_.pipeline_depth;
  mux_options.max_batch = options_.max_batch;
  mux_options.target_commands = options_.target_commands;
  mux_options.rotate_leaders = options_.rotate_leaders;
  mux_options.max_reorder_backlog = options_.max_reorder_backlog;
  mux_options.snapshot_interval = options_.snapshot_interval;
  mux_options.snapshot_chunk_bytes = options_.snapshot_chunk_bytes;
  mux_options.replica = options_.node.replica;
  mux_options.sync = options_.node.sync;
  engine::SnapshotHooks hooks;
  hooks.state = [this] { return store_.serialize(); };
  hooks.install = [this](const Snapshot& snap) {
    bool restored = store_.restore(snap.kv_state);
    // The body already passed digest verification against f + 1 vouchers;
    // a malformed KV image here would mean a broken snapshot encoder.
    FASTBFT_ASSERT(restored, "verified snapshot failed to restore");
    if (on_install_) on_install_(ectx_.id, snap);
  };
  mux_ = std::make_unique<engine::SlotMux>(
      host, ectx_, *endpoint_, mux_options,
      [this](Slot slot, const std::vector<Command>& applied) {
        for (const auto& cmd : applied) {
          ExecResult result = store_.apply(cmd);
          send_reply(slot, cmd, std::move(result));
        }
        if (on_commit_) on_commit_(ectx_.id, slot, applied);
      },
      std::move(hooks));
}

SmrNode::~SmrNode() = default;

void SmrNode::start() { mux_->start(); }

Bytes SmrNode::encode_request(const Command& cmd) {
  Encoder enc;
  enc.u8(net::tags::kSmrRequest);
  enc.bytes(cmd.to_value().bytes());
  return std::move(enc).take();
}

void SmrNode::submit(const Command& cmd) {
  endpoint_->broadcast(encode_request(cmd));
}

void SmrNode::on_message(ProcessId from, const Bytes& payload) {
  if (payload.empty()) return;
  switch (payload[0]) {
    case net::tags::kSmrRequest:
      handle_request(from, payload);
      return;
    case net::tags::kSmrWrapped:
      mux_->on_wrapped(from, payload);
      return;
    case net::tags::kSmrDecided:
      mux_->on_decided_claim(from, payload);
      return;
    case net::tags::kSmrSnapRequest:
      mux_->on_snapshot_request(from, payload);
      return;
    case net::tags::kSmrSnapResponse:
      mux_->on_snapshot_response(from, payload);
      return;
    default:
      return;
  }
}

void SmrNode::handle_request(ProcessId from, const Bytes& payload) {
  Decoder dec(payload);
  dec.u8();
  Bytes raw = dec.bytes();
  if (!dec.ok() || !dec.at_end()) return;
  auto cmd = Command::from_value(Value(std::move(raw)));
  if (!cmd) return;
  if (from >= ectx_.cfg.n) {
    // The request came straight from a client endpoint: this replica is
    // its gateway. Forward the identical payload to the rest of the
    // cluster so any slot leader can propose it (peers see a replica
    // sender and do not forward again), then admit it locally.
    endpoint_->broadcast_others(payload);
  }
  mux_->submit(*cmd);
}

void SmrNode::send_reply(Slot slot, const Command& cmd, ExecResult result) {
  if (options_.num_clients == 0) return;
  if (cmd.client_id < ectx_.cfg.n ||
      cmd.client_id >= static_cast<std::uint64_t>(ectx_.cfg.n) +
                           options_.num_clients) {
    return;  // not addressed from an attached client endpoint
  }
  Reply reply{cmd.client_id, cmd.sequence, slot, cmd.kind,
              std::move(result)};
  endpoint_->send(
      static_cast<ProcessId>(cmd.client_id),
      encode_reply_payload(reply, crypto::Signer(ectx_.keys, ectx_.id)));
}

}  // namespace fastbft::smr
