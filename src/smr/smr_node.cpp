#include "smr/smr_node.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "net/tags.hpp"
#include "smr/reply.hpp"

namespace fastbft::smr {

SmrNode::SmrNode(const runtime::ProcessContext& ctx, SmrOptions options,
                 CommitCallback on_commit)
    : ectx_{ctx.cfg, ctx.id, ctx.keys, ctx.leader_of, /*group=*/0,
            ctx.network != nullptr ? &ctx.network->stats() : nullptr,
            /*verify_cache=*/nullptr},
      options_(std::move(options)),
      on_commit_(std::move(on_commit)),
      owned_host_(std::make_unique<engine::SimHost>(*ctx.scheduler)),
      endpoint_(ctx.network->endpoint(ctx.id)) {
  init_groups(*owned_host_);
}

SmrNode::SmrNode(engine::Host& host, engine::EngineContext ectx,
                 std::unique_ptr<net::Transport> endpoint, SmrOptions options,
                 CommitCallback on_commit)
    : ectx_(std::move(ectx)),
      options_(std::move(options)),
      on_commit_(std::move(on_commit)),
      endpoint_(std::move(endpoint)) {
  init_groups(host);
}

void SmrNode::init_groups(engine::Host& host) {
  FASTBFT_ASSERT(options_.num_groups >= 1, "num_groups must be >= 1");

  // ONE verification memo for the whole node, shared by every group's
  // engine: a multi-group node must amortize signature verification
  // across groups, not duplicate the cache per group.
  if (!ectx_.verify_cache) {
    ectx_.verify_cache = std::make_shared<crypto::VerificationCache>();
  }

  engine::SlotMuxOptions mux_options;
  mux_options.pipeline_depth = options_.pipeline_depth;
  mux_options.max_batch = options_.max_batch;
  mux_options.rotate_leaders =
      options_.rotate_leaders.value_or(options_.num_groups > 1);
  mux_options.eager_windows = options_.eager_windows;
  mux_options.max_reorder_backlog = options_.max_reorder_backlog;
  mux_options.snapshot_interval = options_.snapshot_interval;
  mux_options.snapshot_chunk_bytes = options_.snapshot_chunk_bytes;
  mux_options.replica = options_.node.replica;
  mux_options.sync = options_.node.sync;
  mux_options.adaptive = options_.adaptive;
  if (options_.adaptive.enabled) {
    // The static depth seeds nothing: the controller starts at min_depth
    // and earns depth from observations. The static knob only caps the
    // first fill_window() before the controller's first step, so clamp it
    // into the adaptive range for a consistent starting window.
    mux_options.pipeline_depth =
        std::clamp(options_.pipeline_depth, options_.adaptive.min_depth,
                   options_.adaptive.max_depth);
  }

  groups_.reserve(options_.num_groups);
  for (GroupId g = 0; g < options_.num_groups; ++g) {
    auto group = std::make_unique<Group>();
    Group* grp = group.get();

    engine::EngineContext gctx = ectx_;
    gctx.group = g;

    engine::SlotMuxOptions gopts = mux_options;
    gopts.target_commands = g < options_.group_targets.size()
                                ? options_.group_targets[g]
                                : options_.target_commands;

    engine::SnapshotHooks hooks;
    hooks.state = [grp] { return grp->store.serialize(); };
    hooks.install = [this, grp, g](const Snapshot& snap) {
      bool restored = grp->store.restore(snap.kv_state);
      // The body already passed digest verification against f + 1
      // vouchers; a malformed KV image here would mean a broken snapshot
      // encoder.
      FASTBFT_ASSERT(restored, "verified snapshot failed to restore");
      if (on_install_) on_install_(ectx_.id, g, snap);
    };

    group->mux = std::make_unique<engine::SlotMux>(
        host, std::move(gctx), *endpoint_, std::move(gopts),
        [this, grp, g](Slot slot, const std::vector<Command>& applied) {
          for (const auto& cmd : applied) {
            ExecResult result = grp->store.apply(cmd);
            send_reply(slot, cmd, std::move(result));
          }
          if (on_commit_) on_commit_(ectx_.id, g, slot, applied);
        },
        std::move(hooks));
    groups_.push_back(std::move(group));
  }
}

SmrNode::~SmrNode() = default;

void SmrNode::start() {
  for (auto& group : groups_) group->mux->start();
}

Bytes SmrNode::encode_request(const Command& cmd) {
  Encoder enc;
  enc.u8(net::tags::kSmrRequest);
  enc.bytes(cmd.to_value().bytes());
  return std::move(enc).take();
}

void SmrNode::submit(const Command& cmd) {
  endpoint_->broadcast(encode_request(cmd));
}

void SmrNode::on_message(ProcessId from, const Bytes& payload) {
  if (payload.empty()) return;
  std::uint8_t tag = payload[0];
  if (tag == net::tags::kSmrRequest) {
    handle_request(from, payload);
    return;
  }

  // Every group-scoped tag carries the GroupId right after the tag byte;
  // peek it here and route the full payload to the owning engine (which
  // re-checks it during its own decode).
  if (payload.size() < 5) return;
  Decoder peek(payload);
  peek.u8();
  GroupId group = peek.u32();
  if (!peek.ok() || group >= groups_.size()) return;
  engine::SlotMux& mux = *groups_[group]->mux;

  switch (tag) {
    case net::tags::kSmrWrapped:
      mux.on_wrapped(from, payload);
      return;
    case net::tags::kSmrDecided:
      mux.on_decided_claim(from, payload);
      return;
    case net::tags::kSmrSnapRequest:
      mux.on_snapshot_request(from, payload);
      return;
    case net::tags::kSmrSnapResponse:
      mux.on_snapshot_response(from, payload);
      return;
    default:
      return;
  }
}

void SmrNode::handle_request(ProcessId from, const Bytes& payload) {
  Decoder dec(payload);
  dec.u8();
  Bytes raw = dec.bytes();
  if (!dec.ok() || !dec.at_end()) return;
  auto cmd = Command::from_value(Value(std::move(raw)));
  if (!cmd) return;
  if (from >= ectx_.cfg.n) {
    // The request came straight from a client endpoint: this replica is
    // its gateway. Forward the identical payload to the rest of the
    // cluster so any slot leader can propose it (peers see a replica
    // sender and do not forward again), then admit it locally.
    if (options_.byzantine.drop_forwards) return;
    if (options_.byzantine.corrupt_forwards) {
      // Byzantine gateway: forward a truncated frame. Peers fail the
      // decode and ignore it, and this replica does not admit the
      // command either — from the client's side the request vanished.
      Bytes truncated(payload.begin(),
                      payload.begin() + payload.size() / 2);
      endpoint_->broadcast_others(truncated);
      return;
    }
    endpoint_->broadcast_others(payload);
  }
  // Admit into the group that owns the command's key — every replica
  // computes the same shard locally, so a command is only ever proposed
  // in its owning group's log.
  groups_[group_of(cmd->key)]->mux->submit(*cmd);
}

crypto::Digest SmrNode::state_digest() const {
  if (groups_.size() == 1) return groups_[0]->store.state_digest();
  crypto::Sha256 hasher;
  for (const auto& group : groups_) {
    crypto::Digest d = group->store.state_digest();
    hasher.update(d.data(), d.size());
  }
  return hasher.finalize();
}

std::uint64_t SmrNode::applied_commands() const {
  std::uint64_t total = 0;
  for (const auto& group : groups_) total += group->mux->applied_commands();
  return total;
}

std::uint64_t SmrNode::noop_slots() const {
  std::uint64_t total = 0;
  for (const auto& group : groups_) total += group->mux->noop_slots();
  return total;
}

SmrNode::EngineStats SmrNode::engine_stats() const {
  EngineStats stats;
  for (const auto& group : groups_) {
    const auto& mux = *group->mux;
    stats.effective_depth = std::max(stats.effective_depth,
                                     mux.effective_depth());
    stats.effective_batch = std::max(stats.effective_batch,
                                     mux.effective_batch());
    stats.adaptive_backoffs += mux.adaptive_backoffs();
    stats.reorder_high_water = std::max(stats.reorder_high_water,
                                        mux.reorder_high_water());
    stats.parked_high_water = std::max(stats.parked_high_water,
                                       mux.parked_high_water());
    stats.clamp_stalls += mux.clamp_stalls();
  }
  return stats;
}

void SmrNode::send_reply(Slot slot, const Command& cmd, ExecResult result) {
  if (options_.num_clients == 0) return;
  if (cmd.client_id < ectx_.cfg.n ||
      cmd.client_id >= static_cast<std::uint64_t>(ectx_.cfg.n) +
                           options_.num_clients) {
    return;  // not addressed from an attached client endpoint
  }
  if (options_.byzantine.lie_in_replies) {
    // Lying replica: the command DID execute honestly (consensus is
    // untouched), but the client is told a fabricated result — correctly
    // signed, so only the f + 1 matching-reply quorum defends against it.
    result.ok = !result.ok;
    result.found = true;
    result.value = "byzantine";
  }
  Reply reply{cmd.client_id, cmd.sequence, slot, cmd.kind,
              std::move(result)};
  endpoint_->send(
      static_cast<ProcessId>(cmd.client_id),
      encode_reply_payload(reply, crypto::Signer(ectx_.keys, ectx_.id)));
}

}  // namespace fastbft::smr
