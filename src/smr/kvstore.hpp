#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "crypto/sha256.hpp"
#include "smr/command.hpp"

/// \file kvstore.hpp
/// Deterministic key-value state machine replicated by the SMR layer.
/// Identical command sequences produce identical `state_digest()`s, which
/// the tests use to check replica convergence.

namespace fastbft::smr {

/// The outcome of executing one command at its log position — what a
/// replica reports back to the client in its REPLY (smr/reply.hpp). A
/// deterministic function of (state, command), so every correct replica
/// produces the identical result for the same slot.
struct ExecResult {
  /// Put/Del/Get/Noop: always true. Cas: the key held `expected` and
  /// `value` was installed.
  bool ok = true;
  /// Get/Del/Cas: the key existed before execution.
  bool found = false;
  /// Get: the value read (empty when !found).
  std::string value;

  friend bool operator==(const ExecResult&, const ExecResult&) = default;
};

class KvStore {
 public:
  /// Applies one decided command and returns its execution result.
  ExecResult apply(const Command& cmd);

  std::optional<std::string> get(const std::string& key) const;
  std::size_t size() const { return data_.size(); }
  std::uint64_t applied_count() const { return applied_; }

  /// SHA-256 over the sorted (key, value) pairs plus the applied-command
  /// count: equal digests mean equal replica states.
  crypto::Digest state_digest() const;

  /// Canonical serialization of the full state (applied count + sorted
  /// pairs). Two stores with equal state_digest() serialize identically,
  /// which is what makes snapshots comparable across replicas.
  Bytes serialize() const;

  /// Replaces the entire state with a serialize() image. Returns false and
  /// leaves the store untouched on malformed input.
  bool restore(const Bytes& image);

 private:
  std::map<std::string, std::string> data_;
  std::uint64_t applied_ = 0;
};

}  // namespace fastbft::smr
