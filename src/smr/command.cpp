#include "smr/command.hpp"

namespace fastbft::smr {

Value Command::to_value() const {
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(kind));
  enc.str(key);
  enc.str(value);
  enc.u64(client_id);
  enc.u64(sequence);
  return Value(std::move(enc).take());
}

std::optional<Command> Command::from_value(const Value& value) {
  Decoder dec(value.bytes());
  Command cmd;
  std::uint8_t kind = dec.u8();
  if (kind < 1 || kind > 3) return std::nullopt;
  cmd.kind = static_cast<OpKind>(kind);
  cmd.key = dec.str();
  cmd.value = dec.str();
  cmd.client_id = dec.u64();
  cmd.sequence = dec.u64();
  if (!dec.ok() || !dec.at_end()) return std::nullopt;
  return cmd;
}

std::string Command::to_string() const {
  switch (kind) {
    case OpKind::Put: return "PUT " + key + "=" + value;
    case OpKind::Del: return "DEL " + key;
    case OpKind::Noop: return "NOOP";
  }
  return "?";
}

}  // namespace fastbft::smr
