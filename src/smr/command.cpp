#include "smr/command.hpp"

namespace fastbft::smr {

void Command::encode(Encoder& enc) const {
  enc.u8(static_cast<std::uint8_t>(kind));
  enc.str(key);
  enc.str(value);
  enc.u64(client_id);
  enc.u64(sequence);
  enc.str(expected);
}

Value Command::to_value() const {
  Encoder enc(1 + 4 + key.size() + 4 + value.size() + 16 + 4 +
              expected.size());
  encode(enc);
  return Value(std::move(enc).take());
}

std::optional<Command> Command::from_wire(ByteView data) {
  Decoder dec(data);
  Command cmd;
  std::uint8_t kind = dec.u8();
  if (kind < 1 || kind > 5) return std::nullopt;
  cmd.kind = static_cast<OpKind>(kind);
  cmd.key = dec.str();
  cmd.value = dec.str();
  cmd.client_id = dec.u64();
  cmd.sequence = dec.u64();
  cmd.expected = dec.str();
  if (!dec.ok() || !dec.at_end()) return std::nullopt;
  return cmd;
}

std::optional<Command> Command::from_value(const Value& value) {
  return from_wire(ByteView(value.bytes()));
}

std::string Command::to_string() const {
  switch (kind) {
    case OpKind::Put: return "PUT " + key + "=" + value;
    case OpKind::Del: return "DEL " + key;
    case OpKind::Noop: return "NOOP";
    case OpKind::Get: return "GET " + key;
    case OpKind::Cas: return "CAS " + key + ": " + expected + "->" + value;
  }
  return "?";
}

}  // namespace fastbft::smr
