#include "smr/service.hpp"

#include <algorithm>
#include <thread>

#include "common/assert.hpp"
#include "engine/threaded_host.hpp"
#include "runtime/cluster.hpp"
#include "runtime/threaded_smr_cluster.hpp"

namespace fastbft::smr {

namespace {

/// Runtime-appropriate request timeouts when the config leaves 0: a
/// healthy request completes in a handful of message delays; the timeout
/// must also ride out one view change of a stalled slot before failing
/// over (simulator base_timeout 1200 ticks / threaded 25 ms).
constexpr Duration kSimDefaultRequestTimeout = 6'000;        // ticks
constexpr Duration kThreadedDefaultRequestTimeout = 100'000; // µs

SessionConfig make_session_config(const ServiceConfig& config,
                                  std::uint32_t index, Duration timeout,
                                  std::shared_ptr<const crypto::KeyStore> keys) {
  SessionConfig scfg;
  scfg.n = config.cluster.n;
  scfg.f = config.cluster.f;
  scfg.first_gateway = (config.first_gateway + index) % config.cluster.n;
  scfg.num_shards = std::max(1u, config.smr.num_groups);
  scfg.request_timeout = timeout;
  scfg.request_deadline = config.request_deadline;
  scfg.max_in_flight = config.max_in_flight;
  scfg.gateway_strike_limit = config.gateway_strike_limit;
  scfg.unsafe_first_reply_quorum = config.unsafe_first_reply_quorum;
  scfg.keys = std::move(keys);
  return scfg;
}

SmrOptions make_smr_options(const ServiceConfig& config) {
  SmrOptions smr = config.smr;
  // The service runs open-ended (sessions decide when to stop asking) and
  // owns the client-endpoint range.
  smr.target_commands = 0;
  smr.num_clients = config.num_sessions;
  return smr;
}

// --- Simulator backend -------------------------------------------------------

class SimService final : public Service {
 public:
  explicit SimService(ServiceConfig config) : config_(std::move(config)) {
    const auto& cfg = config_.cluster;
    FASTBFT_ASSERT(cfg.satisfies_bound(), "invalid quorum config");
    FASTBFT_ASSERT(config_.num_sessions >= 1, "a service needs sessions");

    runtime::ClusterOptions options;
    options.cfg = cfg;
    options.net = config_.sim_net;
    options.key_seed = config_.key_seed;
    options.extra_endpoints = config_.num_sessions;
    SmrOptions smr = make_smr_options(config_);
    nodes_.resize(cfg.n, nullptr);
    options.node_factory = [this, smr](const runtime::ProcessContext& ctx,
                                       const runtime::NodeOptions&,
                                       runtime::Node::DecideCallback) {
      SmrOptions tuned = smr;
      if (config_.tune_replica) config_.tune_replica(ctx.id, tuned);
      auto node = std::make_unique<SmrNode>(ctx, tuned, nullptr);
      nodes_[ctx.id] = node.get();
      return node;
    };
    cluster_ = std::make_unique<runtime::Cluster>(
        options, std::vector<Value>(cfg.n, Value::of_string("service")));
    host_ = std::make_unique<engine::SimHost>(cluster_->scheduler());

    Duration timeout = config_.request_timeout != 0
                           ? config_.request_timeout
                           : kSimDefaultRequestTimeout;
    for (std::uint32_t k = 0; k < config_.num_sessions; ++k) {
      ProcessId pid = cfg.n + k;
      auto session = std::make_unique<ClientSession>(
          *host_, cluster_->network().endpoint(pid),
          make_session_config(config_, k, timeout, cluster_->keys()));
      cluster_->network().attach(
          pid, [s = session.get()](ProcessId from, const Bytes& payload) {
            s->on_message(from, payload);
          });
      sessions_.push_back(std::move(session));
    }
  }

  void start() override { cluster_->start(); }
  void stop() override {}

  ClientSession& session(std::uint32_t index) override {
    return *sessions_.at(index);
  }
  std::uint32_t num_sessions() const override {
    return static_cast<std::uint32_t>(sessions_.size());
  }

  void crash(ProcessId replica) override { cluster_->crash_now(replica); }
  void restart(ProcessId replica) override {
    cluster_->restart_now(replica);
  }

  bool run_until(std::function<bool()> done,
                 std::chrono::milliseconds budget) override {
    auto& sched = cluster_->scheduler();
    TimePoint limit = sched.now() + budget.count() * 1000;
    while (!done() && sched.now() <= limit) {
      if (!sched.step()) break;  // event queue drained
    }
    return done();
  }

  const consensus::QuorumConfig& quorum() const override {
    return cluster_->config();
  }

  std::uint64_t applied_commands(ProcessId replica) const override {
    return nodes_.at(replica)->applied_commands();
  }

  SmrNode::EngineStats engine_stats(ProcessId replica) const override {
    return nodes_.at(replica)->engine_stats();
  }

  bool is_faulty(ProcessId replica) const override {
    return cluster_->is_faulty(replica);
  }

  net::SimNetwork* sim_network() override { return &cluster_->network(); }

  bool stores_agree() const override {
    const SmrNode* first = nullptr;
    for (ProcessId id = 0; id < config_.cluster.n; ++id) {
      if (cluster_->is_faulty(id)) continue;
      if (first == nullptr) {
        first = nodes_[id];
      } else if (nodes_[id]->state_digest() != first->state_digest()) {
        return false;
      }
    }
    return true;
  }

 private:
  ServiceConfig config_;
  std::vector<SmrNode*> nodes_;
  std::unique_ptr<runtime::Cluster> cluster_;
  std::unique_ptr<engine::SimHost> host_;
  std::vector<std::unique_ptr<ClientSession>> sessions_;
};

// --- Threaded backend --------------------------------------------------------

class ThreadedService final : public Service {
 public:
  explicit ThreadedService(ServiceConfig config)
      : config_(std::move(config)) {
    const auto& cfg = config_.cluster;
    FASTBFT_ASSERT(cfg.satisfies_bound(), "invalid quorum config");
    FASTBFT_ASSERT(config_.num_sessions >= 1, "a service needs sessions");
    FASTBFT_ASSERT(!config_.tune_replica,
                   "tune_replica is simulator-only (chaos harness)");

    runtime::ThreadedSmrClusterOptions options;
    options.smr = make_smr_options(config_);
    options.link_delay = config_.link_delay;
    options.sync_base_timeout_us = config_.sync_base_timeout_us;
    options.num_clients = config_.num_sessions;
    options.key_seed = config_.key_seed;
    cluster_ = std::make_unique<runtime::ThreadedSmrCluster>(cfg, options);

    Duration timeout = config_.request_timeout != 0
                           ? config_.request_timeout
                           : kThreadedDefaultRequestTimeout;
    for (std::uint32_t k = 0; k < config_.num_sessions; ++k) {
      ProcessId pid = cfg.n + k;
      hosts_.push_back(
          std::make_unique<engine::ThreadedHost>(cluster_->net(), pid));
      auto session = std::make_unique<ClientSession>(
          *hosts_.back(), cluster_->net().endpoint(pid),
          make_session_config(config_, k, timeout, cluster_->keys()));
      cluster_->net().attach(
          pid, [s = session.get()](ProcessId from, const Bytes& payload) {
            s->on_message(from, payload);
          });
      sessions_.push_back(std::move(session));
    }
  }

  ~ThreadedService() override { stop(); }

  void start() override { cluster_->start(); }
  void stop() override { cluster_->stop(); }

  ClientSession& session(std::uint32_t index) override {
    return *sessions_.at(index);
  }
  std::uint32_t num_sessions() const override {
    return static_cast<std::uint32_t>(sessions_.size());
  }

  void crash(ProcessId replica) override { cluster_->crash(replica); }
  void restart(ProcessId replica) override { cluster_->restart(replica); }

  bool run_until(std::function<bool()> done,
                 std::chrono::milliseconds budget) override {
    auto deadline = std::chrono::steady_clock::now() + budget;
    while (!done()) {
      if (std::chrono::steady_clock::now() >= deadline) return done();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }

  const consensus::QuorumConfig& quorum() const override {
    return cluster_->config();
  }

  std::uint64_t applied_commands(ProcessId replica) const override {
    return cluster_->applied_commands(replica);
  }

  SmrNode::EngineStats engine_stats(ProcessId replica) const override {
    return cluster_->engine_stats(replica);
  }

  bool is_faulty(ProcessId replica) const override {
    return cluster_->is_faulty(replica);
  }

  bool stores_agree() const override {
    return cluster_->correct_stores_agree();
  }

 private:
  ServiceConfig config_;
  std::unique_ptr<runtime::ThreadedSmrCluster> cluster_;
  std::vector<std::unique_ptr<engine::ThreadedHost>> hosts_;
  std::vector<std::unique_ptr<ClientSession>> sessions_;
};

}  // namespace

std::unique_ptr<Service> make_sim_service(const ServiceConfig& config) {
  return std::make_unique<SimService>(config);
}

std::unique_ptr<Service> make_threaded_service(const ServiceConfig& config) {
  return std::make_unique<ThreadedService>(config);
}

}  // namespace fastbft::smr
