#include "smr/session.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "net/tags.hpp"
#include "smr/smr_node.hpp"

namespace fastbft::smr {

ClientSession::ClientSession(engine::Host& host,
                             std::unique_ptr<net::Transport> endpoint,
                             SessionConfig config)
    : host_(host),
      endpoint_(std::move(endpoint)),
      config_(std::move(config)),
      verifier_(config_.keys) {
  FASTBFT_ASSERT(config_.n > 0, "session needs the cluster size");
  FASTBFT_ASSERT(config_.max_in_flight >= 1, "window must admit a request");
  FASTBFT_ASSERT(endpoint_->self() >= config_.n,
                 "sessions live on client endpoints, not replica ids");
  if (config_.num_shards == 0) config_.num_shards = 1;
  // Stagger the initial per-shard gateways so a multi-shard session
  // spreads its forwarding load instead of funnelling every shard through
  // one replica.
  preferred_gateways_.resize(config_.num_shards);
  for (std::uint32_t shard = 0; shard < config_.num_shards; ++shard) {
    preferred_gateways_[shard] =
        (config_.first_gateway + shard) % config_.n;
  }
  gateway_strikes_.assign(config_.n, 0);
}

ClientSession::~ClientSession() { *alive_ = false; }

Future<Reply> ClientSession::put(std::string key, std::string value) {
  return submit(Command::put(std::move(key), std::move(value)));
}

Future<Reply> ClientSession::get(std::string key) {
  return submit(Command::get(std::move(key)));
}

Future<Reply> ClientSession::del(std::string key) {
  return submit(Command::del(std::move(key)));
}

Future<Reply> ClientSession::cas(std::string key, std::string expected,
                                 std::string value) {
  return submit(Command::cas(std::move(key), std::move(expected),
                             std::move(value)));
}

Future<std::vector<Reply>> ClientSession::mget(
    std::vector<std::string> keys) {
  // Client-side fan-out: one independent single-key read per key, each
  // routed to its own shard; the aggregate completes when the last one
  // does. Per-read linearizability only — no cross-shard snapshot.
  struct FanOut {
    std::mutex mutex;
    std::vector<Reply> replies;
    std::size_t remaining = 0;
    Promise<std::vector<Reply>> promise;
  };
  auto fan = std::make_shared<FanOut>();
  fan->replies.resize(keys.size());
  fan->remaining = keys.size();
  Future<std::vector<Reply>> future = fan->promise.future();
  if (keys.empty()) {
    fan->promise.set({});
    return future;
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    get(keys[i]).on_ready([fan, i](const Reply& reply) {
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(fan->mutex);
        fan->replies[i] = reply;
        last = (--fan->remaining == 0);
      }
      if (last) fan->promise.set(std::move(fan->replies));
    });
  }
  return future;
}

Future<Reply> ClientSession::submit(Command cmd) {
  Promise<Reply> promise;
  Future<Reply> future = promise.future();
  cmd.client_id = id();
  // Sequence assignment, windowing and sending all happen on the host
  // thread: ops are safe to call from any thread, and the session state
  // stays single-threaded.
  host_.post([this, alive = alive_, cmd = std::move(cmd),
              promise = std::move(promise)]() mutable {
    if (!*alive) return;
    std::uint64_t sequence = next_sequence_++;
    cmd.sequence = sequence;
    Request& request = requests_[sequence];
    request.shard = shard_of(cmd.key, config_.num_shards);
    request.cmd = std::move(cmd);
    request.promise = std::move(promise);
    // The deadline budget starts at submission, not first dispatch: time
    // spent queued behind the window counts against the request too.
    if (config_.request_deadline > 0) {
      request.deadline = host_.now() + config_.request_deadline;
    }
    admit(sequence);
  });
  return future;
}

void ClientSession::admit(std::uint64_t sequence) {
  if (in_flight_.size() >= config_.max_in_flight) {
    waiting_.push_back(sequence);
    queued_gauge_.store(waiting_.size());
    return;
  }
  in_flight_.insert(sequence);
  in_flight_gauge_.store(in_flight_.size());
  dispatch(requests_.at(sequence));
}

void ClientSession::dispatch(Request& request) {
  // Gateway is chosen at dispatch time, not frozen at submit: a request
  // drained from the window queue after a failover must target the
  // gateway its SHARD currently trusts, not one it already learned is
  // dead. A blacklisted preferred gateway (demoted by ANOTHER shard's
  // strikes since this shard last routed) is skipped here too.
  if (gateway_blacklisted(preferred_gateways_[request.shard])) {
    preferred_gateways_[request.shard] =
        next_gateway_after(preferred_gateways_[request.shard]);
  }
  request.gateway = preferred_gateways_[request.shard];
  endpoint_->send(request.gateway,
                  SmrNode::encode_request(request.cmd));
  std::uint64_t sequence = request.cmd.sequence;
  // The retry timer never overshoots the deadline: the final arm fires
  // exactly when the budget runs out, so a Timeout verdict is never late
  // by up to a full retry period.
  Duration wait = config_.request_timeout;
  if (request.deadline != 0) {
    wait = std::min(wait, std::max<Duration>(1, request.deadline -
                                                    host_.now()));
  }
  request.timer =
      host_.schedule_after(wait, [this, alive = alive_, sequence] {
        if (*alive) on_timeout(sequence);
      });
}

void ClientSession::on_timeout(std::uint64_t sequence) {
  auto it = requests_.find(sequence);
  if (it == requests_.end()) return;  // completed; stale timer
  Request& request = it->second;
  if (request.deadline != 0 && host_.now() >= request.deadline) {
    // Budget exhausted — likely a whole shard quorum down, which no
    // amount of gateway rotation cures. Fail cleanly instead of retrying
    // forever; the command may still execute later (at-most-once holds).
    fail_with_timeout(sequence);
    return;
  }
  // The quorum did not arrive in time: the gateway may have crashed
  // before forwarding, or the request/replies are just slow. Fail over to
  // the shard's next gateway and resubmit the IDENTICAL command —
  // (client_id, sequence) dedup at apply time makes the retry
  // at-most-once, and any reply quorum (from either copy) completes the
  // request. Future requests for this shard start at the new gateway too.
  // The timeout is also a strike against the gateway it happened on: a
  // Byzantine gateway that silently drops forwards times out every
  // request routed through it and gets demoted for the session, instead
  // of being retried once per full rotation forever.
  failovers_.fetch_add(1);
  record_strike(request.gateway);
  preferred_gateways_[request.shard] = next_gateway_after(request.gateway);
  dispatch(request);
}

void ClientSession::fail_with_timeout(std::uint64_t sequence) {
  auto it = requests_.find(sequence);
  if (it == requests_.end()) return;
  Request& request = it->second;
  Reply verdict;
  verdict.client_id = id();
  verdict.sequence = sequence;
  verdict.op = request.cmd.kind;
  verdict.result.ok = false;
  verdict.status = Reply::Status::Timeout;
  Promise<Reply> promise = std::move(request.promise);
  request.timer.cancel();
  requests_.erase(it);
  in_flight_.erase(sequence);
  in_flight_gauge_.store(in_flight_.size());
  deadline_timeouts_.fetch_add(1);
  refill_window();
  // Complete LAST, like handle_reply: the future callback may re-enter.
  promise.set(std::move(verdict));
}

void ClientSession::on_message(ProcessId from, const Bytes& payload) {
  if (payload.empty() || payload[0] != net::tags::kSmrReply) return;
  if (from >= config_.n) return;  // replies come from replicas only
  auto reply = decode_reply_payload(payload, from, verifier_);
  if (!reply || reply->client_id != id()) {
    // A malformed, forged or misaddressed reply is provably not from a
    // correct replica — strike it. (Unknown-sequence late duplicates in
    // handle_reply are NOT strikes: those are normal retry echoes.)
    rejected_.fetch_add(1);
    record_strike(from);
    return;
  }
  handle_reply(from, *reply);
}

void ClientSession::handle_reply(ProcessId from, const Reply& reply) {
  auto it = requests_.find(reply.sequence);
  if (it == requests_.end()) {
    rejected_.fetch_add(1);  // unknown or already-completed sequence
    return;
  }
  Request& request = it->second;
  if (reply.op != request.cmd.kind) {
    rejected_.fetch_add(1);  // a lying replica echoed the wrong op
    return;
  }
  auto key = std::make_pair(reply.slot, reply.match_digest());
  // One live vote per replica: a correct replica sends exactly one reply
  // per request, so a SECOND, different reply from the same sender is
  // Byzantine by construction — replace its earlier vote instead of
  // accumulating, which bounds per-request reply state by n even against
  // a replica streaming fabricated results.
  auto voted = request.voted.find(from);
  if (voted != request.voted.end()) {
    if (voted->second == key) return;  // duplicate of its recorded vote
    auto old_votes = request.votes.find(voted->second);
    old_votes->second.erase(from);
    if (old_votes->second.empty()) {
      request.votes.erase(old_votes);
      request.candidates.erase(voted->second);
    }
  }
  request.voted[from] = key;
  request.candidates.emplace(key, reply);
  auto& voters = request.votes[key];
  voters.insert(from);
  std::uint32_t quorum =
      config_.unsafe_first_reply_quorum ? 1 : config_.f + 1;
  if (voters.size() < quorum) return;

  // f + 1 distinct replicas vouch for this (slot, result): at least one
  // is correct, so the command was decided at that slot and executed with
  // exactly this result. Complete and free the window slot.
  Reply verdict = request.candidates.at(key);
  Promise<Reply> promise = std::move(request.promise);
  request.timer.cancel();
  std::uint64_t sequence = reply.sequence;
  requests_.erase(it);
  in_flight_.erase(sequence);
  in_flight_gauge_.store(in_flight_.size());
  completed_.fetch_add(1);
  refill_window();
  // Complete LAST: future callbacks run caller code that may re-enter the
  // session (a closed-loop client submitting its next request).
  promise.set(std::move(verdict));
}

bool ClientSession::gateway_blacklisted(ProcessId gateway) const {
  return config_.gateway_strike_limit > 0 && gateway < gateway_strikes_.size() &&
         gateway_strikes_[gateway] >= config_.gateway_strike_limit;
}

void ClientSession::record_strike(ProcessId gateway) {
  if (config_.gateway_strike_limit == 0) return;
  if (gateway >= gateway_strikes_.size()) return;
  if (gateway_blacklisted(gateway)) return;  // already demoted
  if (++gateway_strikes_[gateway] >= config_.gateway_strike_limit) {
    demotions_.fetch_add(1);
  }
}

ProcessId ClientSession::next_gateway_after(ProcessId gateway) {
  for (std::uint32_t step = 1; step <= config_.n; ++step) {
    ProcessId candidate = (gateway + step) % config_.n;
    if (!gateway_blacklisted(candidate)) return candidate;
  }
  // Everyone is blacklisted. That cannot be right (at most f < n replicas
  // are faulty), so the strikes were circumstantial — e.g. a partition
  // timing out every gateway in turn. Forgive and restart the rotation.
  gateway_strikes_.assign(config_.n, 0);
  return (gateway + 1) % config_.n;
}

void ClientSession::refill_window() {
  while (!waiting_.empty() && in_flight_.size() < config_.max_in_flight) {
    std::uint64_t sequence = waiting_.front();
    waiting_.pop_front();
    in_flight_.insert(sequence);
    dispatch(requests_.at(sequence));
  }
  queued_gauge_.store(waiting_.size());
  in_flight_gauge_.store(in_flight_.size());
}

}  // namespace fastbft::smr
