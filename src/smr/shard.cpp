#include "smr/shard.hpp"

namespace fastbft::smr {

std::uint64_t shard_hash(std::string_view key) {
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

GroupId shard_of(std::string_view key, std::uint32_t num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<GroupId>(shard_hash(key) % num_shards);
}

}  // namespace fastbft::smr
