#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "smr/smr_node.hpp"

/// \file client.hpp
/// BFT client session for the replicated state machine. A Byzantine
/// replica may lie about having executed a command, so a client only
/// considers a command *complete* once f + 1 distinct replicas report it
/// applied (at least one of them is correct, and correct replicas only
/// apply decided commands).
///
/// The reply channel is modelled as an in-process subscription to each
/// replica's commit callback — the simulation analogue of replicas sending
/// REPLY messages back to the client (the paper's model has no clients;
/// this mirrors PBFT's client protocol, which every deployment needs).

namespace fastbft::smr {

class Client {
 public:
  struct Completion {
    Command command;
    Slot slot = 0;
    TimePoint submitted_at = 0;
    TimePoint completed_at = 0;
  };

  /// `client_id` must be unique per client; `f` is the cluster's fault
  /// bound (completion needs f + 1 matching reports).
  Client(std::uint64_t client_id, std::uint32_t f, sim::Scheduler& scheduler);

  /// Subscribes to a replica's applied-commands stream. Call once per
  /// replica before submitting. Returns the callback to install as the
  /// node's CommitCallback (or to chain from an existing one).
  SmrNode::CommitCallback subscription();

  /// Sends the next command through `gateway` (any replica; requests are
  /// broadcast). Returns the assigned sequence number.
  std::uint64_t submit(SmrNode& gateway, Command cmd);

  /// Completed commands, in completion order.
  const std::vector<Completion>& completions() const { return completions_; }

  /// Commands submitted but not yet acknowledged by f + 1 replicas.
  std::size_t pending() const { return in_flight_.size(); }

  bool all_complete() const { return in_flight_.empty(); }

  /// Completion latency statistics in ticks: (min, median, max).
  struct LatencyStats {
    Duration min = 0;
    Duration median = 0;
    Duration max = 0;
  };
  std::optional<LatencyStats> latency_stats() const;

 private:
  struct InFlight {
    Command command;
    TimePoint submitted_at = 0;
    std::set<ProcessId> reporters;
    Slot slot = 0;
  };

  std::uint64_t client_id_;
  std::uint32_t f_;
  sim::Scheduler& scheduler_;
  std::uint64_t next_sequence_ = 1;
  std::map<std::uint64_t, InFlight> in_flight_;  // keyed by sequence
  std::vector<Completion> completions_;
};

}  // namespace fastbft::smr
