#include "trace/trace.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "net/stats.hpp"

namespace fastbft::trace {

TraceRecorder::TraceRecorder(net::SimNetwork& network) {
  network.set_observer(
      [this](const net::Envelope& env, TimePoint sent, TimePoint delivered) {
        messages_.push_back(TracedMessage{
            env.from, env.to, env.payload.empty() ? std::uint8_t{0xff}
                                                  : env.payload[0],
            env.payload.size(), sent, delivered});
      });
}

std::vector<TracedMessage> TraceRecorder::of_tag(std::uint8_t tag) const {
  std::vector<TracedMessage> out;
  for (const auto& m : messages_) {
    if (m.tag == tag) out.push_back(m);
  }
  return out;
}

namespace {

/// Broadcast grouping key: one rendered line per (send time, sender, tag,
/// delivery time).
struct GroupKey {
  TimePoint sent;
  ProcessId from;
  std::uint8_t tag;
  TimePoint delivered;

  auto operator<=>(const GroupKey&) const = default;
};

std::string receiver_list(const std::set<ProcessId>& receivers,
                          std::uint32_t n, ProcessId sender) {
  if (receivers.size() >= n - 1) return "*";
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (ProcessId p : receivers) {
    if (!first) out << ",";
    out << "p" << p;
    first = false;
  }
  out << "}";
  (void)sender;
  return out.str();
}

}  // namespace

std::string render_sequence(const TraceRecorder& recorder, std::uint32_t n,
                            const RenderOptions& options) {
  std::map<GroupKey, std::set<ProcessId>> groups;
  for (const auto& m : recorder.messages()) {
    if (options.hide_self_sends && m.from == m.to) continue;
    if (m.sent > options.until) continue;
    if (!options.tags.empty() &&
        std::find(options.tags.begin(), options.tags.end(), m.tag) ==
            options.tags.end()) {
      continue;
    }
    groups[GroupKey{m.sent, m.from, m.tag, m.delivered}].insert(m.to);
  }

  std::ostringstream out;
  for (const auto& [key, receivers] : groups) {
    if (!options.collapse_broadcasts && receivers.size() > 1) {
      for (ProcessId p : receivers) {
        out << "t=" << key.sent << "\tp" << key.from << " -> p" << p << "\t"
            << net::tag_name(key.tag);
        if (key.delivered >= kTimeInfinity) {
          out << "\t(delayed indefinitely)";
        } else {
          out << "\t(delivered t=" << key.delivered << ")";
        }
        out << "\n";
      }
      continue;
    }
    out << "t=" << key.sent << "\tp" << key.from << " -> "
        << receiver_list(receivers, n, key.from) << "\t"
        << net::tag_name(key.tag);
    if (key.delivered >= kTimeInfinity) {
      out << "\t(delayed indefinitely)";
    } else {
      out << "\t(delivered t=" << key.delivered << ")";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace fastbft::trace
