#pragma once

#include <string>
#include <vector>

#include "net/sim_network.hpp"

/// \file trace.hpp
/// Message-flow tracing: records every message crossing the simulated
/// network and renders a sequence diagram, reproducing the paper's
/// protocol figures (Fig. 1a — fast path, Fig. 1b — view change,
/// Fig. 5 — slow path) from *actual executions* rather than by drawing
/// them. See examples/message_flow.cpp.

namespace fastbft::trace {

struct TracedMessage {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  std::uint8_t tag = 0;
  std::size_t bytes = 0;
  TimePoint sent = 0;
  TimePoint delivered = 0;
};

/// Attaches to a SimNetwork (as its observer) and accumulates messages.
class TraceRecorder {
 public:
  explicit TraceRecorder(net::SimNetwork& network);

  const std::vector<TracedMessage>& messages() const { return messages_; }
  void clear() { messages_.clear(); }

  /// Messages of one tag, in send order.
  std::vector<TracedMessage> of_tag(std::uint8_t tag) const;

 private:
  std::vector<TracedMessage> messages_;
};

struct RenderOptions {
  /// Only render these tags (empty = all).
  std::vector<std::uint8_t> tags;
  /// Hide self-sends (local hand-offs), which the paper's figures omit.
  bool hide_self_sends = true;
  /// Stop rendering after this time (default: everything).
  TimePoint until = kTimeInfinity;
  /// Collapse a broadcast (same sender/tag/time, >= 3 receivers) into one
  /// line with a receiver list.
  bool collapse_broadcasts = true;
};

/// Renders the trace as a time-ordered sequence diagram:
///
///   t=0     p0 -> {p1,p2,p3}      PROPOSE    (delivered t=100)
///   t=100   p1 -> *               ACK        (delivered t=200)
///
/// '*' means all other processes.
std::string render_sequence(const TraceRecorder& recorder, std::uint32_t n,
                            const RenderOptions& options = {});

}  // namespace fastbft::trace
