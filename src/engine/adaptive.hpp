#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "common/histogram.hpp"
#include "common/types.hpp"

/// \file adaptive.hpp
/// Closed-loop sizing of the engine's two throughput knobs — pipeline
/// depth and proposal batch size — from observed behaviour, instead of the
/// static `SlotMuxOptions::pipeline_depth` / `max_batch` chosen per
/// benchmark.
///
/// The controller is a per-group AIMD loop over observation windows:
///
///  * observe — every slot decision reports its decision latency (slot
///    opened -> decided, in host ticks) and the reorder-buffer backlog at
///    the moment the decision parked. Latencies accumulate into a
///    log-bucketed histogram (common/histogram.hpp).
///  * evaluate — once a window has lasted `window` ticks AND collected at
///    least `min_samples` decisions, it is scored: a *breach* is window
///    p99 decision latency above `latency_target`, or backlog high-water
///    above the backlog target (the `max_reorder_backlog` clamp when one
///    is configured — the controller backs off *before* the engine
///    hard-stalls on the clamp).
///  * step — additive growth while healthy (depth + 1, batch + step, up
///    to the configured maxima), multiplicative backoff on breach (both
///    halved, down to the minima). The sawtooth converges on the deepest
///    window the latency target admits.
///
/// Why this closes the right loop: on an uncontended host, decision
/// latency is depth-independent (consensus steps overlap perfectly), so
/// the controller grows to max_depth and stays — all latency headroom
/// spent. Under contention — CPU-bound delivery threads, deep windows
/// flooding the transport, a stalled slot parking decisions — decision
/// p99 and backlog rise with depth, and the controller trades pipeline
/// depth back for tail latency. See docs/ADAPTIVE.md.
///
/// Determinism: the controller has no clock and no timers of its own —
/// every observation carries the host's `now`, so on SimHost the whole
/// trajectory is a pure function of the schedule. Single-writer (the
/// engine's host thread); the effective knobs and counters are relaxed
/// atomics so benchmarks and cross-thread stats readers can sample them
/// live.

namespace fastbft::engine {

struct AdaptiveOptions {
  /// Master switch; off preserves the static-knob behaviour exactly.
  bool enabled = false;

  /// Window p99 decision-latency budget in host ticks (simulator ticks /
  /// microseconds on the wall-clock host). Required when enabled.
  Duration latency_target = 0;

  /// Effective pipeline depth bounds. The engine never runs outside
  /// [min_depth, max_depth], no matter what the observations say.
  std::uint32_t min_depth = 1;
  std::uint32_t max_depth = 8;

  /// Effective batch floor (the ceiling is SlotMuxOptions::max_batch).
  std::uint32_t min_batch = 1;

  /// Observation window length in host ticks (0 = 4 * latency_target).
  Duration window = 0;

  /// A window is only scored after this many decisions: one slow slot in
  /// an otherwise idle window is a spike to ride out, not a trend.
  std::uint32_t min_samples = 4;

  /// Backlog high-water that counts as a breach (0 = derive: the engine's
  /// max_reorder_backlog clamp when set, else 2 * max_depth).
  std::size_t backlog_target = 0;

  /// Consecutive breached windows required before a multiplicative
  /// backoff. One breached window HOLDS the knobs (no growth, no
  /// backoff): a lone scheduling hiccup or view-change stall lands its
  /// outliers in a single window, and halving the pipeline for every such
  /// blip makes the controller flap instead of adapt. Real overload
  /// breaches every window and still backs off within breach_windows
  /// windows.
  std::uint32_t breach_windows = 2;

  /// Consecutive healthy windows at the post-backoff ceiling before the
  /// controller probes one step deeper. A backoff halves the depth AND
  /// caps growth at the halved value (TCP ssthresh); without the memory,
  /// plain AIMD re-climbs to the known-bad depth every few windows and
  /// each re-entry risks the very stall it just backed away from.
  /// Probing slowly still re-reaches max_depth when the contention
  /// clears; raise this where a failed probe is expensive (a convoy of
  /// parked decisions) relative to the throughput a deeper window buys.
  std::uint32_t probe_windows = 8;
};

class AdaptiveController {
 public:
  /// `batch_ceiling` is the static max_batch (the adaptive ceiling);
  /// `reorder_clamp` is the engine's max_reorder_backlog (0 = none),
  /// which seeds the default backlog target.
  AdaptiveController(const AdaptiveOptions& options,
                     std::uint32_t batch_ceiling, std::size_t reorder_clamp);

  AdaptiveController(const AdaptiveController&) = delete;
  AdaptiveController& operator=(const AdaptiveController&) = delete;

  // --- Observation (engine host thread only) ---------------------------------

  /// One slot decided: `latency` is open -> decided in host ticks,
  /// `reorder_backlog` the decisions parked for in-order apply right
  /// after this one joined them, `now` the host clock.
  void on_decision(Duration latency, std::size_t reorder_backlog,
                   TimePoint now);

  // --- Effective knobs & counters (any thread) -------------------------------

  std::uint32_t depth() const {
    return depth_.load(std::memory_order_relaxed);
  }
  std::uint32_t batch() const {
    return batch_.load(std::memory_order_relaxed);
  }

  /// Windows that breached and multiplicatively backed off.
  std::uint64_t backoff_events() const {
    return backoffs_.load(std::memory_order_relaxed);
  }

  /// Windows scored so far (growth + backoff).
  std::uint64_t windows_evaluated() const {
    return windows_.load(std::memory_order_relaxed);
  }

  /// Deepest effective depth the controller ever ran.
  std::uint32_t max_depth_reached() const {
    return max_depth_reached_.load(std::memory_order_relaxed);
  }

  /// Largest reorder backlog ever observed at a decision.
  std::size_t backlog_high_water() const {
    return backlog_high_water_.load(std::memory_order_relaxed);
  }

  // --- Host-thread introspection ---------------------------------------------

  /// Every decision latency ever recorded (host ticks).
  const Histogram& latency_histogram() const { return cumulative_; }

  /// Resolved configuration (defaults filled in).
  const AdaptiveOptions& options() const { return options_; }

 private:
  void evaluate(TimePoint now);

  AdaptiveOptions options_;  // resolved: window/backlog defaults applied
  std::uint32_t batch_ceiling_;
  std::uint32_t batch_step_;

  std::atomic<std::uint32_t> depth_;
  std::atomic<std::uint32_t> batch_;
  std::atomic<std::uint64_t> backoffs_{0};
  std::atomic<std::uint64_t> windows_{0};
  std::atomic<std::uint32_t> max_depth_reached_;
  std::atomic<std::size_t> backlog_high_water_{0};

  Histogram cumulative_;
  Histogram window_hist_;
  std::size_t window_backlog_hw_ = 0;
  TimePoint window_start_ = -1;  // -1: opens at the first observation
  std::uint32_t consecutive_breaches_ = 0;
  std::uint32_t depth_ceiling_;          // ssthresh: re-capped on backoff
  std::uint32_t healthy_at_ceiling_ = 0;  // probe countdown at the ceiling
};

}  // namespace fastbft::engine
