#pragma once

#include "engine/threaded_host.hpp"
#include "net/socket_network.hpp"

/// \file socket_host.hpp
/// engine::Host over the TCP socket transport: the exact ThreadedHost
/// adapter instantiated over net::SocketNetwork (which exposes the same
/// now_ticks/arm_timer/cancel_timer/post surface, same µs tick unit,
/// same same-thread timer contract). SmrNode and smr::ClientSession run
/// over this unchanged — see runtime/socket_smr.hpp.

namespace fastbft::engine {

using SocketHost = BasicThreadedHost<net::SocketNetwork>;

}  // namespace fastbft::engine
