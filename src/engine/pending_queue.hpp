#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "common/types.hpp"
#include "smr/command.hpp"

/// \file pending_queue.hpp
/// Client-command intake policy for the slot-multiplexed engine: request
/// dedup, at-most-once apply bookkeeping, and *claims* — when several
/// consensus slots are in flight concurrently, each slot's proposal claims
/// a disjoint prefix of the pending queue so a leader pipelines distinct
/// batches instead of proposing the same commands `depth` times. Claims are
/// released when their slot retires (dedup at apply time keeps duplicate
/// proposals harmless either way; claims are purely a throughput measure).

namespace fastbft::engine {

class PendingQueue {
 public:
  /// (client_id, sequence) — the at-most-once identity of a command.
  using CommandId = std::pair<std::uint64_t, std::uint64_t>;

  /// A dedup record: the id plus the slot that applied it, which is what
  /// makes horizon pruning (and its snapshot export) deterministic.
  using AppliedEntry = std::pair<CommandId, Slot>;

  /// Accepts a client request into the queue. Returns false for noops,
  /// duplicates of anything already seen, and already-applied commands.
  bool admit(const smr::Command& cmd);

  /// Claims up to `max_batch` unclaimed, unapplied commands for `slot`.
  /// May return fewer (or none) if the queue is drained or claimed.
  std::vector<smr::Command> claim(Slot slot, std::uint32_t max_batch);

  /// Releases `slot`'s claims (call when the slot's decision was applied).
  void release(Slot slot);

  /// Records a decided command as applied by `slot`. Returns true on the
  /// first application, false for duplicates (which the caller must skip).
  bool applied(const smr::Command& cmd, Slot slot);

  /// The applied-command dedup records in sorted id order — the
  /// deterministic state a snapshot must carry so an installing replica
  /// skips exactly the duplicates everyone else skipped.
  std::vector<AppliedEntry> applied_ids() const {
    return {applied_.begin(), applied_.end()};
  }

  /// REPLACES the dedup state with a snapshot's (queued copies of its ids
  /// are dropped; nothing counts as a fresh application). A wholesale
  /// replacement, not a merge: the snapshot set is the canonical
  /// post-horizon state at its boundary, and an installer that kept ids
  /// the snapshotters already pruned would skip a replayed command that
  /// every other replica re-applies — divergence. The installer only ever
  /// applied slots below the boundary, so nothing of local value is lost.
  void restore_applied(const std::vector<AppliedEntry>& entries);

  /// Drops dedup records applied in slots < `floor`. Called by the engine
  /// at snapshot boundaries with a horizon below the boundary, so the
  /// dedup set stays bounded by the horizon's command volume instead of
  /// growing with the cluster's lifetime. Deterministic: every replica
  /// prunes the same records at the same boundary.
  void prune_applied_before(Slot floor);

  /// Releases the claims of every slot below `floor` (snapshot install
  /// supersedes those slots wholesale).
  void release_below(Slot floor);

  std::size_t pending_count() const { return pending_.size(); }
  std::size_t claimed_count() const { return claimed_.size(); }

  /// True when claim() would return at least one command — the signal
  /// on-demand windows (SlotMuxOptions::eager_windows = false) open
  /// slots by. O(pending), which stays window-sized in practice.
  bool has_unclaimed() const {
    for (const auto& cmd : pending_) {
      CommandId id = id_of(cmd);
      if (!applied_.contains(id) && !claimed_.contains(id)) return true;
    }
    return false;
  }

 private:
  static CommandId id_of(const smr::Command& cmd) {
    return {cmd.client_id, cmd.sequence};
  }
  void trim_applied_prefix();

  std::deque<smr::Command> pending_;
  std::set<CommandId> seen_;
  /// id -> slot that applied it (the horizon-pruning tag).
  std::map<CommandId, Slot> applied_;
  std::set<CommandId> claimed_;
  std::map<Slot, std::vector<CommandId>> claims_by_slot_;
};

}  // namespace fastbft::engine
