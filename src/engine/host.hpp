#pragma once

#include <functional>

#include "sim/scheduler.hpp"

/// \file host.hpp
/// Execution-context seam between the SMR engine and whatever runs it.
/// A Host is one logical thread of execution with a clock and one-shot
/// timers: the engine (SlotMux, TimerWheel, per-slot synchronizers) talks
/// only to this interface, so the identical engine code runs on the
/// deterministic simulator (SimHost, ticks = scheduler ticks) and on real
/// OS threads over wall-clock time (ThreadedHost, ticks = microseconds of
/// a steady clock).
///
/// Single-threaded-executor guarantee: every callback a Host runs — timer
/// callbacks, deferred closures, and (by construction of the surrounding
/// runtime) message handlers — executes on the same logical thread, one at
/// a time. Engine code therefore needs no locks, on either host. The
/// flip side is the same-thread contract on sim::TimerHandle: handles
/// minted through a Host must be cancelled on that host's thread only.

namespace fastbft::engine {

class Host : public sim::TimerService {
 public:
  /// Current time in this host's ticks (simulated ticks or microseconds).
  /// Only meaningful relative to other now() values from the same host.
  virtual TimePoint now() const = 0;

  /// Runs `fn` after the currently-executing handler returns, on the host
  /// thread. Used to defer teardown out of a protocol object's own
  /// callback (e.g. destroying a replica from its decide handler).
  void defer(std::function<void()> fn) { schedule_after(0, std::move(fn)); }

  /// Cross-thread submission: runs `fn` on the host thread, interleaved
  /// with its handlers and timers. Unlike defer()/schedule_after (which
  /// inherit the same-thread timer contract), post() MAY be called from
  /// any thread — it is how a driver thread reaches protocol or session
  /// objects living on a delivery thread. On the single-threaded
  /// simulator it degenerates to defer().
  virtual void post(std::function<void()> fn) = 0;

  /// True when the calling thread may legally act as this host's logical
  /// thread right now: the host thread itself, or the setup/teardown
  /// phases when no host thread is live. Engine code checks it (via
  /// FASTBFT_DASSERT, so only in invariant builds) before mutating state
  /// the single-threaded-executor guarantee protects — TimerWheel entries
  /// on schedule/cancel, SlotMux/AdaptiveController single-writer stats —
  /// extending the transport's arm/cancel affinity asserts to mutations
  /// that never reach the transport. Single-threaded hosts are always ok;
  /// threaded hosts delegate to the network's common::ThreadGuard, which
  /// reports permissively when invariant checking is compiled out.
  virtual bool affinity_ok() const { return true; }
};

/// Thin adapter over the deterministic simulator: the scheduler already is
/// a single-threaded timer service with a clock.
class SimHost final : public Host {
 public:
  explicit SimHost(sim::Scheduler& sched) : sched_(sched) {}

  TimePoint now() const override { return sched_.now(); }
  sim::TimerHandle schedule_after(Duration delay,
                                  std::function<void()> fn) override {
    return sched_.schedule_after(delay, std::move(fn));
  }
  void post(std::function<void()> fn) override {
    sched_.schedule_after(0, std::move(fn));
  }

 private:
  sim::Scheduler& sched_;
};

}  // namespace fastbft::engine
