#include "engine/adaptive.hpp"

#include "common/assert.hpp"

namespace fastbft::engine {

AdaptiveController::AdaptiveController(const AdaptiveOptions& options,
                                       std::uint32_t batch_ceiling,
                                       std::size_t reorder_clamp)
    : options_(options),
      batch_ceiling_(std::max(batch_ceiling, options.min_batch)),
      // Recover from a batch backoff in ~4 healthy windows.
      batch_step_(std::max<std::uint32_t>(1, batch_ceiling_ / 4)),
      depth_(options.min_depth),
      batch_(batch_ceiling_),
      max_depth_reached_(options.min_depth) {
  FASTBFT_ASSERT(options_.latency_target > 0,
                 "adaptive control needs a latency target");
  FASTBFT_ASSERT(options_.min_depth >= 1 &&
                     options_.min_depth <= options_.max_depth,
                 "adaptive depth bounds must satisfy 1 <= min <= max");
  FASTBFT_ASSERT(options_.min_batch >= 1, "adaptive batch floor must be >= 1");
  if (options_.window <= 0) options_.window = 4 * options_.latency_target;
  if (options_.backlog_target == 0) {
    // Back off at the clamp so the engine adapts instead of hard-stalling
    // on it; without a clamp, tolerate a backlog of one extra window.
    options_.backlog_target =
        reorder_clamp > 0 ? reorder_clamp : 2 * options_.max_depth;
  }
  if (options_.min_samples == 0) options_.min_samples = 1;
  if (options_.breach_windows == 0) options_.breach_windows = 1;
  if (options_.probe_windows == 0) options_.probe_windows = 1;
  depth_ceiling_ = options_.max_depth;
}

void AdaptiveController::on_decision(Duration latency,
                                     std::size_t reorder_backlog,
                                     TimePoint now) {
  if (latency < 0) latency = 0;
  cumulative_.record(static_cast<std::uint64_t>(latency));
  window_hist_.record(static_cast<std::uint64_t>(latency));
  window_backlog_hw_ = std::max(window_backlog_hw_, reorder_backlog);
  if (reorder_backlog > backlog_high_water_.load(std::memory_order_relaxed)) {
    backlog_high_water_.store(reorder_backlog, std::memory_order_relaxed);
  }
  if (window_start_ < 0) window_start_ = now;
  if (now - window_start_ >= options_.window &&
      window_hist_.count() >= options_.min_samples) {
    evaluate(now);
  }
}

void AdaptiveController::evaluate(TimePoint now) {
  bool breach =
      window_hist_.quantile(0.99) >
          static_cast<std::uint64_t>(options_.latency_target) ||
      window_backlog_hw_ > options_.backlog_target;

  std::uint32_t depth = depth_.load(std::memory_order_relaxed);
  std::uint32_t batch = batch_.load(std::memory_order_relaxed);
  if (breach) {
    // Hold on the first breached window(s); only a PERSISTENT breach —
    // breach_windows in a row — earns the multiplicative backoff. A lone
    // view-change stall or scheduler hiccup concentrates its outliers in
    // one window and must not halve a healthy pipeline.
    healthy_at_ceiling_ = 0;
    if (++consecutive_breaches_ >= options_.breach_windows) {
      consecutive_breaches_ = 0;
      if (depth > options_.min_depth) {
        // TCP-ssthresh: halve the depth, and remember the halved depth
        // as the growth ceiling. Plain AIMD re-climbs to the depth that
        // breached within depth/2 windows and re-enters the very convoy
        // it just escaped; with the cap, anything deeper is reached only
        // through deliberate probes — one step per probe_windows
        // consecutive healthy windows. Batch is left alone: the reorder
        // convoy behind a stalled slot scales with the number of younger
        // slots, not with the ops inside each one, and shrinking the
        // batch cuts capacity exactly when a transient has a queue to
        // drain.
        depth = std::max(options_.min_depth, depth / 2);
        depth_ceiling_ = depth;
      } else {
        // Already at the shallowest window and still breaching: the
        // per-decision work itself is too big, so the batch is the only
        // knob left.
        batch = std::max(options_.min_batch, batch / 2);
      }
      backoffs_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    // Additive growth: one more slot in flight, a few more commands per
    // proposal, up to the configured ceilings — the depth ceiling being
    // the last breach depth minus one until enough consecutive healthy
    // windows at it justify probing one step deeper.
    consecutive_breaches_ = 0;
    if (depth < depth_ceiling_) {
      ++depth;
      healthy_at_ceiling_ = 0;
    } else if (depth_ceiling_ < options_.max_depth &&
               ++healthy_at_ceiling_ >= options_.probe_windows) {
      healthy_at_ceiling_ = 0;
      ++depth_ceiling_;
      depth = depth_ceiling_;
    }
    batch = std::min(batch_ceiling_, batch + batch_step_);
  }
  depth_.store(depth, std::memory_order_relaxed);
  batch_.store(batch, std::memory_order_relaxed);
  if (depth > max_depth_reached_.load(std::memory_order_relaxed)) {
    max_depth_reached_.store(depth, std::memory_order_relaxed);
  }
  windows_.fetch_add(1, std::memory_order_relaxed);

  window_hist_.reset();
  window_backlog_hw_ = 0;
  window_start_ = now;
}

}  // namespace fastbft::engine
