#include "engine/timer_wheel.hpp"

namespace fastbft::engine {

TimerWheel::~TimerWheel() {
  *alive_ = false;
  scheduler_event_.cancel();
}

sim::TimerHandle TimerWheel::schedule_after(Duration delay,
                                            std::function<void()> fn) {
  auto cancelled = std::make_shared<bool>(false);
  heap_.push(Entry{sched_.now() + delay, next_seq_++, std::move(fn),
                   cancelled});
  if (!firing_) arm();
  return make_handle(std::move(cancelled));
}

void TimerWheel::arm() {
  if (heap_.empty()) {
    scheduler_event_.cancel();
    armed_at_ = kTimeInfinity;
    return;
  }
  TimePoint next = heap_.top().at;
  if (scheduler_event_.active() && armed_at_ <= next) return;
  scheduler_event_.cancel();
  armed_at_ = next;
  scheduler_event_ = sched_.schedule_at(next, [this, alive = alive_] {
    if (*alive) fire();
  });
}

void TimerWheel::fire() {
  firing_ = true;
  TimePoint now = sched_.now();
  while (!heap_.empty() && heap_.top().at <= now) {
    Entry entry = heap_.top();
    heap_.pop();
    if (!*entry.cancelled) entry.fn();
  }
  firing_ = false;
  armed_at_ = kTimeInfinity;
  arm();
}

}  // namespace fastbft::engine
