#include "engine/timer_wheel.hpp"

namespace fastbft::engine {

TimerWheel::~TimerWheel() {
  *alive_ = false;
  host_event_.cancel();
}

sim::TimerHandle TimerWheel::schedule_after(Duration delay,
                                            std::function<void()> fn) {
  FASTBFT_DASSERT(host_.affinity_ok(),
                  "TimerWheel::schedule_after off the host thread");
  Key key{host_.now() + delay, next_seq_++};
  entries_.emplace(key, std::move(fn));
  if (!firing_) arm();
  auto cancelled = std::make_shared<bool>(false);
  // Eager drop: cancelling erases the entry now instead of letting it ride
  // to its deadline. `alive_` guards against handles outliving the wheel.
  return make_handle(cancelled, [this, key, alive = alive_] {
    if (!*alive) return;
    FASTBFT_DASSERT(host_.affinity_ok(),
                    "TimerHandle cancelled off the host thread");
    if (entries_.erase(key) > 0) ++cancelled_dropped_;
  });
}

void TimerWheel::arm() {
  if (entries_.empty()) {
    host_event_.cancel();
    armed_at_ = kTimeInfinity;
    return;
  }
  TimePoint next = entries_.begin()->first.first;
  if (host_event_.active() && armed_at_ <= next) return;
  host_event_.cancel();
  armed_at_ = next;
  Duration delay = std::max<Duration>(0, next - host_.now());
  host_event_ = host_.schedule_after(delay, [this, alive = alive_] {
    if (*alive) fire();
  });
}

void TimerWheel::fire() {
  firing_ = true;
  TimePoint now = host_.now();
  while (!entries_.empty() && entries_.begin()->first.first <= now) {
    auto fn = std::move(entries_.begin()->second);
    entries_.erase(entries_.begin());
    fn();
  }
  firing_ = false;
  armed_at_ = kTimeInfinity;
  arm();
}

}  // namespace fastbft::engine
