#pragma once

#include <algorithm>
#include <memory>

#include "engine/host.hpp"
#include "net/threaded_network.hpp"

/// \file threaded_host.hpp
/// Wall-clock engine host: adapts a per-delivery-thread steady-clock
/// timer queue to the engine::Host seam. One host per process; ticks are
/// microseconds since the network's epoch. Timer callbacks and message
/// handlers both run on the process's single delivery thread, so the
/// engine keeps its lock-free single-threaded discipline on real
/// concurrency. The sim::TimerHandle same-thread contract is asserted by
/// the network at arm/cancel time.
///
/// The adapter is a template over the network type: any transport
/// exposing the ThreadedNetwork timer/post surface (now_ticks, arm_timer,
/// cancel_timer, post) plugs in. ThreadedHost is the in-process
/// instantiation; engine/socket_host.hpp instantiates the same adapter
/// over net::SocketNetwork, which is what lets the whole SMR stack run
/// multi-process without touching engine code.

namespace fastbft::engine {

template <typename Net>
class BasicThreadedHost final : public Host {
 public:
  BasicThreadedHost(Net& net, ProcessId id) : net_(net), id_(id) {}

  BasicThreadedHost(const BasicThreadedHost&) = delete;
  BasicThreadedHost& operator=(const BasicThreadedHost&) = delete;
  ~BasicThreadedHost() override { *alive_ = false; }

  TimePoint now() const override { return net_.now_ticks(); }

  sim::TimerHandle schedule_after(Duration delay,
                                  std::function<void()> fn) override {
    auto cancelled = std::make_shared<bool>(false);
    TimePoint at = net_.now_ticks() + std::max<Duration>(delay, 0);
    // The flag guard makes correctness independent of the eager erase; the
    // erase (below) is what keeps cancelled timers from pinning the
    // inbox's timer queue until their deadline.
    auto key = net_.arm_timer(id_, at, [cancelled, fn = std::move(fn)] {
      if (!*cancelled) fn();
    });
    return make_handle(cancelled,
                       [&net = net_, id = id_, key, alive = alive_] {
                         if (*alive) net.cancel_timer(id, key);
                       });
  }

  void post(std::function<void()> fn) override {
    net_.post(id_, std::move(fn));
  }

  bool affinity_ok() const override { return net_.affinity_ok(id_); }

 private:
  Net& net_;
  ProcessId id_;
  /// Handles may outlive the host during cluster teardown; the flag keeps
  /// their eager-cancel hook from touching a dead network reference.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

using ThreadedHost = BasicThreadedHost<net::ThreadedNetwork>;

}  // namespace fastbft::engine
