#include "engine/slot_mux.hpp"

#include "common/assert.hpp"
#include "net/tags.hpp"

namespace fastbft::engine {

namespace {

/// SMR_WRAPPED{slot, watermark, inner}: `watermark` gossips the sender's
/// applied watermark (lowest unapplied slot) on every wrapped message, so
/// peers can trim decided-value retention below the cluster-wide minimum.
Bytes wrap(Slot slot, Slot watermark, const Bytes& inner) {
  Encoder enc;
  enc.u8(net::tags::kSmrWrapped);
  enc.u64(slot);
  enc.u64(watermark);
  enc.bytes(inner);
  return std::move(enc).take();
}

}  // namespace

void SlotMux::SlotChannel::send(ProcessId to, Bytes payload) {
  mux_.send_wrapped(slot_, to, std::move(payload));
}

std::uint32_t SlotMux::SlotChannel::cluster_size() const {
  return mux_.transport_.cluster_size();
}

ProcessId SlotMux::SlotChannel::self() const {
  return mux_.transport_.self();
}

SlotMux::SlotMux(Host& host, EngineContext ctx, net::Transport& transport,
                 SlotMuxOptions options, ApplyFn apply)
    : host_(host),
      ctx_(std::move(ctx)),
      transport_(transport),
      options_(std::move(options)),
      apply_(std::move(apply)),
      timers_(host_),
      catchup_(ctx_.cfg.f + 1, ctx_.cfg.n) {
  FASTBFT_ASSERT(options_.pipeline_depth >= 1, "pipeline depth must be >= 1");
}

SlotMux::~SlotMux() = default;

void SlotMux::start() { fill_window(); }

bool SlotMux::submit(const smr::Command& cmd) { return pending_.admit(cmd); }

void SlotMux::send_wrapped(Slot slot, ProcessId to, Bytes payload) {
  transport_.send(to, wrap(slot, next_apply_, payload));
}

void SlotMux::fill_window() {
  while (!done() && next_start_ < next_apply_ + options_.pipeline_depth) {
    if (options_.max_reorder_backlog > 0 &&
        reorder_.size() > options_.max_reorder_backlog) {
      // Congestion clamp: decisions are piling up behind a stalled slot;
      // opening more slots would only deepen the backlog. The window
      // refills when the stall resolves (drain_apply + fill_window).
      ++clamp_stalls_;
      break;
    }
    start_slot(next_start_++);
  }
}

Value SlotMux::make_input(Slot slot) {
  std::vector<smr::Command> batch = pending_.claim(slot, options_.max_batch);
  if (batch.empty()) batch.push_back(smr::Command::noop());
  return smr::encode_batch(batch);
}

consensus::LeaderFn SlotMux::leader_for(Slot slot) const {
  if (!options_.rotate_leaders || slot == 1) return ctx_.leader_of;
  return [base = ctx_.leader_of, shift = slot - 1](View v) {
    return base(v + shift);
  };
}

void SlotMux::start_slot(Slot slot) {
  Instance inst;
  inst.channel = std::make_unique<SlotChannel>(*this, slot);

  viewsync::SynchronizerConfig sync_cfg = options_.sync;
  sync_cfg.f = ctx_.cfg.f;

  auto on_decide = [this, slot](const consensus::DecisionRecord& record) {
    // Deciding happens inside the replica's message handler; defer the
    // teardown so we never destroy an executing replica.
    host_.defer([this, slot, value = record.value] {
      on_slot_decided(slot, value);
    });
  };

  inst.replica = std::make_unique<consensus::Replica>(
      ctx_.cfg, ctx_.id, make_input(slot), *inst.channel,
      crypto::Signer(ctx_.keys, ctx_.id), crypto::Verifier(ctx_.keys),
      leader_for(slot), on_decide, options_.replica);
  inst.sync = std::make_unique<viewsync::Synchronizer>(
      sync_cfg, ctx_.id, *inst.channel, timers_,
      [replica = inst.replica.get()](View v) { replica->enter_view(v); });

  auto [it, inserted] = active_.emplace(slot, std::move(inst));
  FASTBFT_ASSERT(inserted, "slot already active");
  it->second.sync->start();
  it->second.replica->start();
  note_inflight();

  // A laggard may already hold f + 1 matching decided claims for this slot.
  if (auto claim = catchup_.ready_claim(slot)) {
    host_.defer([this, slot, value = *claim] {
      on_slot_decided(slot, value);
    });
  }
}

void SlotMux::on_slot_decided(Slot slot, const Value& value) {
  auto it = active_.find(slot);
  if (it == active_.end()) return;  // decision already processed
  it->second.sync->stop();
  active_.erase(it);

  catchup_.record_decided(slot, value);
  reorder_.emplace(slot, value);
  reorder_high_water_ = std::max(reorder_high_water_, reorder_.size());

  drain_apply();
  fill_window();
  note_inflight();
}

void SlotMux::drain_apply() {
  for (auto it = reorder_.find(next_apply_); it != reorder_.end();
       it = reorder_.find(next_apply_)) {
    apply_value(next_apply_, it->second);
    reorder_.erase(it);
    ++next_apply_;
  }
  // Our own watermark advanced; it participates in the prune floor exactly
  // like gossiped peer watermarks.
  catchup_.note_watermark(ctx_.id, next_apply_);
}

void SlotMux::apply_value(Slot slot, const Value& value) {
  auto batch = smr::decode_batch(value);
  std::vector<smr::Command> applied;
  if (batch) {
    for (const auto& cmd : *batch) {
      if (cmd.kind == smr::OpKind::Noop) continue;
      if (!pending_.applied(cmd)) continue;  // duplicate
      applied.push_back(cmd);
    }
  }
  // A decided value that is not a valid batch is treated as a no-op (can
  // only happen if a Byzantine leader proposed garbage — agreement still
  // holds, the state machine just skips it deterministically).
  if (applied.empty()) ++noop_slots_;
  applied_commands_ += applied.size();
  pending_.release(slot);
  if (apply_) apply_(slot, applied);
}

void SlotMux::on_wrapped(ProcessId from, const Bytes& payload) {
  Decoder dec(payload);
  dec.u8();
  Slot slot = dec.u64();
  Slot watermark = dec.u64();
  Bytes inner = dec.bytes();
  if (!dec.ok() || !dec.at_end() || slot == 0) return;

  catchup_.note_watermark(from, watermark);

  if (catchup_.decided(slot) != nullptr) {
    // Traffic for a slot we already decided marks the sender as a laggard:
    // answer with the decided value (classic state transfer; fast-path
    // acks are not transferable proof). Slots pruned below the watermark
    // floor no longer reach this branch — by the floor's definition the
    // sender already applied them, so honest peers never ask.
    if (auto reply = catchup_.reply_for(slot, from)) {
      transport_.send(from, std::move(*reply));
    }
    return;
  }
  if (slot >= next_start_) {
    // Someone is ahead of us; their slot traffic is useless until we catch
    // up. Nothing to buffer: catch-up runs on SMR_DECIDED claims.
    return;
  }
  auto it = active_.find(slot);
  if (it == active_.end()) return;
  if (!inner.empty() && inner[0] == net::tags::kWish) {
    it->second.sync->on_message(from, inner);
  } else {
    it->second.replica->on_message(from, inner);
  }
}

void SlotMux::on_decided_claim(ProcessId from, const Bytes& payload) {
  Decoder dec(payload);
  dec.u8();
  Slot slot = dec.u64();
  auto value = Value::decode(dec);
  if (!value || !dec.ok() || !dec.at_end() || slot == 0) return;

  // Honest claims are solicited by our own slot traffic, which never goes
  // beyond the window; claims past it can only be Byzantine flooding, and
  // rejecting them keeps parked claim state bounded by the window size.
  if (slot >= next_start_ + options_.pipeline_depth) return;

  auto adopted = catchup_.add_claim(slot, from, *value);
  if (adopted && active_.contains(slot)) {
    on_slot_decided(slot, *adopted);
  }
  // Claims for slots we have not opened yet stay parked in the policy;
  // start_slot() checks ready_claim() when the window reaches them.
}

void SlotMux::note_inflight() {
  if (ctx_.stats != nullptr) {
    ctx_.stats->note_inflight_slots(ctx_.id, inflight_slots());
  }
}

}  // namespace fastbft::engine
