#include "engine/slot_mux.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "net/tags.hpp"

namespace fastbft::engine {

namespace {

/// SMR_WRAPPED{group, slot, watermark, snapshot floor, inner}: `group`
/// sits right after the tag at a fixed offset so a sharded node can route
/// the payload to the owning engine without decoding the rest; `watermark`
/// gossips the sender's applied watermark (lowest unapplied slot) on every
/// wrapped message, so peers can trim decided-value retention below the
/// cluster-wide minimum; `snap_floor` gossips the sender's latest snapshot
/// boundary, so a peer whose apply cursor sits below it knows its missing
/// slots may be pruned and full-state transfer is the way back.
Bytes wrap(GroupId group, Slot slot, Slot watermark, Slot snap_floor,
           ByteView inner) {
  // Exact wire size: tag + group + three u64 headers + length-prefixed
  // inner.
  Encoder enc(1 + 4 + 8 * 3 + 4 + inner.size());
  enc.u8(net::tags::kSmrWrapped);
  enc.u32(group);
  enc.u64(slot);
  enc.u64(watermark);
  enc.u64(snap_floor);
  enc.bytes(inner);
  return std::move(enc).take();
}

}  // namespace

void SlotMux::SlotChannel::send(ProcessId to, SharedBytes payload) {
  mux_.send_wrapped(slot_, to, payload);
}

void SlotMux::SlotChannel::broadcast(SharedBytes payload) {
  mux_.broadcast_wrapped(slot_, payload, /*include_self=*/true);
}

void SlotMux::SlotChannel::broadcast_others(SharedBytes payload) {
  mux_.broadcast_wrapped(slot_, payload, /*include_self=*/false);
}

std::uint32_t SlotMux::SlotChannel::cluster_size() const {
  return mux_.transport_.cluster_size();
}

ProcessId SlotMux::SlotChannel::self() const {
  return mux_.transport_.self();
}

SlotMux::SlotMux(Host& host, EngineContext ctx, net::Transport& transport,
                 SlotMuxOptions options, ApplyFn apply, SnapshotHooks hooks)
    : host_(host),
      ctx_(std::move(ctx)),
      transport_(transport),
      options_(std::move(options)),
      apply_(std::move(apply)),
      hooks_(std::move(hooks)),
      timers_(host_),
      catchup_(ctx_.cfg.f + 1, ctx_.cfg.n, options_.snapshot_chunk_bytes,
               ctx_.group) {
  FASTBFT_ASSERT(options_.pipeline_depth >= 1, "pipeline depth must be >= 1");
  if (!ctx_.verify_cache) {
    ctx_.verify_cache = std::make_shared<crypto::VerificationCache>();
  }
  if (options_.adaptive.enabled) {
    adaptive_ = std::make_unique<AdaptiveController>(
        options_.adaptive, options_.max_batch, options_.max_reorder_backlog);
  }
}

SlotMux::~SlotMux() { *alive_ = false; }

void SlotMux::defer_guarded(std::function<void()> fn) {
  host_.defer([alive = alive_, fn = std::move(fn)] {
    if (*alive) fn();
  });
}

void SlotMux::start() { fill_window(); }

bool SlotMux::submit(const smr::Command& cmd) {
  if (!pending_.admit(cmd)) return false;
  if (!options_.eager_windows) {
    // On-demand windows: arrival is what opens the slot (eager mode's
    // noop churn does this implicitly by keeping the window full).
    fill_window();
    note_inflight();
  }
  return true;
}

void SlotMux::send_wrapped(Slot slot, ProcessId to, ByteView payload) {
  transport_.send(to, wrap(ctx_.group, slot, next_apply_,
                           catchup_.snapshot_floor(), payload));
}

void SlotMux::broadcast_wrapped(Slot slot, ByteView payload,
                                bool include_self) {
  // One wrap per broadcast: the framed buffer is shared by every
  // recipient's envelope instead of re-encoded n times.
  SharedBytes wrapped =
      wrap(ctx_.group, slot, next_apply_, catchup_.snapshot_floor(), payload);
  PayloadStats::record_group_broadcast(ctx_.group);
  if (include_self) {
    transport_.broadcast(std::move(wrapped));
  } else {
    transport_.broadcast_others(std::move(wrapped));
  }
}

void SlotMux::fill_window() {
  // The window honours the *effective* depth — the controller's when
  // adaptive control is on. A backoff does not cancel already-open slots;
  // the window shrinks as they decide and refills at the smaller depth.
  while (!done() && next_start_ < next_apply_ + effective_depth()) {
    if (!options_.eager_windows && !pending_.has_unclaimed()) break;
    if (options_.max_reorder_backlog > 0 &&
        reorder_.size() > options_.max_reorder_backlog) {
      // Congestion clamp: decisions are piling up behind a stalled slot;
      // opening more slots would only deepen the backlog. The window
      // refills when the stall resolves (drain_apply + fill_window).
      FASTBFT_DASSERT(host_.affinity_ok(),
                      "engine stats are single-writer (host thread)");
      clamp_stalls_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    start_slot(next_start_++);
  }
}

void SlotMux::park_wrapped(Slot slot, ProcessId from, ByteView payload) {
  // Anything past twice the maximum window cannot be honest skew — a
  // correct peer's frontier is at most one window past ours once its
  // watermark (our floor gossip) catches up — so treat it as flooding.
  if (slot >= next_apply_ + 2 * static_cast<Slot>(max_window_depth())) return;
  auto& entries = parked_[slot];
  // A correct peer contributes a handful of messages per slot (propose,
  // ack, signed ack, commit, wishes); 6n entries cover every peer with
  // margin, and the cap keeps a Byzantine sender from ballooning the
  // park. Together with the horizon above this bounds parked memory at
  // max_window_depth slots of 6n frames each.
  if (entries.size() >= static_cast<std::size_t>(6) * ctx_.cfg.n) return;
  entries.emplace_back(from, Bytes(payload.begin(), payload.end()));
  std::size_t total = 0;
  for (const auto& [s, msgs] : parked_) total += msgs.size();
  if (total > parked_high_water_.load(std::memory_order_relaxed)) {
    FASTBFT_DASSERT(host_.affinity_ok(),
                    "engine stats are single-writer (host thread)");
    parked_high_water_.store(total, std::memory_order_relaxed);
  }
}

void SlotMux::replay_parked() {
  if (replaying_parked_) return;  // a replayed decision re-enters via
                                  // on_slot_decided; the outer loop
                                  // re-checks the frontier itself
  replaying_parked_ = true;
  while (!parked_.empty() &&
         parked_.begin()->first < next_apply_ + max_window_depth()) {
    auto node = parked_.extract(parked_.begin());
    for (auto& [from, payload] : node.mapped()) {
      if (done()) break;
      on_wrapped(from, payload);
    }
  }
  replaying_parked_ = false;
}

Value SlotMux::make_input(Slot slot) {
  std::vector<smr::Command> batch = pending_.claim(slot, effective_batch());
  if (batch.empty()) batch.push_back(smr::Command::noop());
  return smr::encode_batch(batch);
}

consensus::LeaderFn SlotMux::leader_for(Slot slot) const {
  if (!options_.rotate_leaders || slot == 1) return ctx_.leader_of;
  return [base = ctx_.leader_of, shift = slot - 1](View v) {
    return base(v + shift);
  };
}

void SlotMux::start_slot(Slot slot) {
  Instance inst;
  inst.channel = std::make_unique<SlotChannel>(*this, slot);
  inst.started_at = host_.now();

  viewsync::SynchronizerConfig sync_cfg = options_.sync;
  sync_cfg.f = ctx_.cfg.f;

  auto on_decide = [this, slot](const consensus::DecisionRecord& record) {
    // Deciding happens inside the replica's message handler; defer the
    // teardown so we never destroy an executing replica.
    defer_guarded([this, slot, value = record.value] {
      on_slot_decided(slot, value);
    });
  };

  inst.replica = std::make_unique<consensus::Replica>(
      ctx_.cfg, ctx_.id, make_input(slot), *inst.channel,
      crypto::Signer(ctx_.keys, ctx_.id),
      crypto::Verifier(ctx_.keys, ctx_.verify_cache), leader_for(slot),
      on_decide, options_.replica);
  inst.sync = std::make_unique<viewsync::Synchronizer>(
      sync_cfg, ctx_.id, *inst.channel, timers_,
      [replica = inst.replica.get()](View v) { replica->enter_view(v); });

  auto [it, inserted] = active_.emplace(slot, std::move(inst));
  FASTBFT_ASSERT(inserted, "slot already active");
  it->second.sync->start();
  it->second.replica->start();
  note_inflight();

  // A laggard may already hold f + 1 matching decided claims for this slot.
  if (auto claim = catchup_.ready_claim(slot)) {
    defer_guarded([this, slot, value = *claim] {
      on_slot_decided(slot, value);
    });
  }
}

void SlotMux::on_slot_decided(Slot slot, const Value& value) {
  auto it = active_.find(slot);
  if (it == active_.end()) return;  // decision already processed
  TimePoint started_at = it->second.started_at;
  it->second.sync->stop();
  active_.erase(it);

  catchup_.record_decided(slot, value);
  reorder_.emplace(slot, value);
  if (reorder_.size() > reorder_high_water_.load(std::memory_order_relaxed)) {
    FASTBFT_DASSERT(host_.affinity_ok(),
                    "engine stats are single-writer (host thread)");
    reorder_high_water_.store(reorder_.size(), std::memory_order_relaxed);
  }
  if (adaptive_) {
    // The controller's knob/stat atomics share the single-writer
    // discipline: readers sample from anywhere, only this thread writes.
    FASTBFT_DASSERT(host_.affinity_ok(),
                    "AdaptiveController is single-writer (host thread)");
    TimePoint now = host_.now();
    adaptive_->on_decision(now - started_at, reorder_.size(), now);
  }

  drain_apply();
  fill_window();
  note_inflight();
  replay_parked();
}

void SlotMux::drain_apply() {
  for (auto it = reorder_.find(next_apply_); it != reorder_.end();
       it = reorder_.find(next_apply_)) {
    apply_value(next_apply_, it->second);
    reorder_.erase(it);
    ++next_apply_;
    maybe_take_snapshot(next_apply_ - 1);
  }
  // Our own watermark advanced; it participates in the prune floor exactly
  // like gossiped peer watermarks.
  catchup_.note_watermark(ctx_.id, next_apply_);
}

void SlotMux::maybe_take_snapshot(Slot just_applied) {
  if (options_.snapshot_interval == 0 || !hooks_.state) return;
  if (just_applied % options_.snapshot_interval != 0) return;

  // Bound the dedup set before exporting it. Honest duplicates of one
  // command land within the live window of each other (a second leader
  // can only claim a command it has not applied yet), so records older
  // than interval + window + backlog can only matter against deliberate
  // replay of ancient commands — and pruning is a deterministic function
  // of the slot boundary, so every replica re-applies such a replay
  // identically and replicas never diverge. This keeps snapshot size
  // proportional to the horizon's command volume, not cluster lifetime.
  Slot horizon = options_.snapshot_interval + max_window_depth() +
                 options_.max_reorder_backlog;
  Slot boundary = just_applied + 1;
  pending_.prune_applied_before(boundary > horizon ? boundary - horizon : 1);

  smr::Snapshot snap;
  snap.applied_below = boundary;
  snap.applied_commands = applied_commands_;
  snap.kv_state = hooks_.state();
  snap.applied_ids = pending_.applied_ids();
  catchup_.note_snapshot(snap.applied_below, snap.encode());
  ++snapshots_taken_;
}

void SlotMux::apply_value(Slot slot, const Value& value) {
  auto batch = smr::decode_batch(value);
  std::vector<smr::Command> applied;
  if (batch) {
    for (const auto& cmd : *batch) {
      if (cmd.kind == smr::OpKind::Noop) continue;
      if (!pending_.applied(cmd, slot)) continue;  // duplicate
      applied.push_back(cmd);
    }
  }
  // A decided value that is not a valid batch is treated as a no-op (can
  // only happen if a Byzantine leader proposed garbage — agreement still
  // holds, the state machine just skips it deterministically).
  if (applied.empty()) ++noop_slots_;
  applied_commands_ += applied.size();
  pending_.release(slot);
  if (apply_) apply_(slot, applied);
}

void SlotMux::on_wrapped(ProcessId from, ByteView payload) {
  Decoder dec(payload);
  dec.u8();
  GroupId group = dec.u32();
  Slot slot = dec.u64();
  Slot watermark = dec.u64();
  Slot snap_floor = dec.u64();
  ByteView inner = dec.bytes_view();  // aliases payload; no copy
  if (!dec.ok() || !dec.at_end() || slot == 0 || group != ctx_.group) return;

  catchup_.note_watermark(from, watermark);

  // A sender whose snapshot floor passed our apply cursor may have pruned
  // slots we still need. Request full state immediately only when the
  // floor is beyond our whole live window — a smaller gap is usually
  // ordinary pipelining skew (we are about to decide those slots
  // ourselves), and requesting eagerly would ship the entire state n^2
  // times per interval in a healthy cluster. But "usually" is not
  // "always": a stalled laggard inside the window is just as stuck if the
  // cluster stops opening slots and no later boundary ever widens the
  // gap. So small gaps arm a one-shot probe instead; it fires after a
  // couple of view-change timeouts and requests only if the gap is still
  // there.
  catchup_.note_peer_snapshot_floor(from, snap_floor);
  if (snap_floor > next_apply_) {
    if (snap_floor > next_apply_ + max_window_depth()) {
      request_snapshots();
    } else {
      snap_probe_floor_ = std::max(snap_probe_floor_, snap_floor);
      if (!snap_probe_armed_) {
        snap_probe_armed_ = true;
        timers_.schedule_after(2 * options_.sync.base_timeout, [this] {
          snap_probe_armed_ = false;
          if (snap_probe_floor_ > next_apply_) request_snapshots();
        });
      }
    }
  }

  if (catchup_.decided(slot) != nullptr) {
    // Traffic for a slot we already decided MAY mark the sender as a
    // laggard: answer with the decided value (classic state transfer;
    // fast-path acks are not transferable proof). But only view-change
    // traffic — WISH or VOTE, both sent strictly after a timeout — proves
    // the sender is stuck. Acks/acksigs/commits for a freshly decided slot
    // are just the tail of a healthy race (the sender decides on its own
    // microseconds later), and replying to those used to ship the decided
    // value n x n times per slot in a perfectly healthy cluster (~15% of
    // all traffic in the depth-8 benchmark). Slots pruned below the
    // watermark floor no longer reach this branch — by the floor's
    // definition the sender already applied them.
    bool sender_stuck = !inner.empty() && (inner[0] == net::tags::kWish ||
                                           inner[0] == net::tags::kVote);
    if (sender_stuck) {
      // A wish names the view the sender is escalating to; passing it as
      // the reply epoch lets catch-up re-answer a peer whose earlier
      // SMR_DECIDED was lost on a lossy link (it keeps wishing higher).
      View epoch = 0;
      if (auto wish = viewsync::parse_wish(inner)) epoch = wish->w;
      if (auto reply = catchup_.reply_for(slot, from, epoch)) {
        transport_.send(from, std::move(*reply));
      }
    }
    return;
  }
  if (slot >= next_start_) {
    // A peer is already running this slot. Under static knobs every
    // replica's window reaches a slot within a link delay of the others,
    // so traffic from ahead is a harmless race; with adaptive control the
    // windows diverge structurally (each replica's controller steps on its
    // own observations), and dropping the first proposal here stalls the
    // slot until its view-change timeout — precisely the convoy the
    // controller exists to avoid. Join any slot the cluster shows live
    // protocol evidence for within the MAXIMUM window (the bound every
    // window-sized invariant already assumes); the effective depth keeps
    // gating how far WE advance the frontier unprompted (fill_window).
    if (slot >= next_apply_ + max_window_depth()) {
      park_wrapped(slot, from, payload);
      return;
    }
    while (!done() && next_start_ <= slot) start_slot(next_start_++);
    note_inflight();
  }
  auto it = active_.find(slot);
  if (it == active_.end()) return;
  if (!inner.empty() && inner[0] == net::tags::kWish) {
    it->second.sync->on_message(from, inner);
  } else {
    it->second.replica->on_message(from, inner);
  }
}

void SlotMux::on_decided_claim(ProcessId from, ByteView payload) {
  Decoder dec(payload);
  dec.u8();
  GroupId group = dec.u32();
  Slot slot = dec.u64();
  auto value = Value::decode(dec);
  if (!value || !dec.ok() || !dec.at_end() || slot == 0 ||
      group != ctx_.group) {
    return;
  }

  // Honest claims are solicited by our own slot traffic, which never goes
  // beyond the window; claims past it can only be Byzantine flooding, and
  // rejecting them keeps parked claim state bounded by the window size.
  if (slot >= next_start_ + max_window_depth()) return;

  auto adopted = catchup_.add_claim(slot, from, *value);
  if (adopted && active_.contains(slot)) {
    on_slot_decided(slot, *adopted);
  }
  // Claims for slots we have not opened yet stay parked in the policy;
  // start_slot() checks ready_claim() when the window reaches them.
}

void SlotMux::request_snapshots() {
  // Ask EVERY peer that advertised a useful snapshot floor, not just the
  // message that tipped us off: installing needs f + 1 distinct senders'
  // chunks, and in an idle cluster there may never be another gossip
  // round to solicit the rest. Per-peer dedup keeps this to one request
  // per advertised floor; asking only advertisers keeps the dedup honest
  // (a peer is never marked requested for a snapshot it was not yet known
  // to hold).
  for (ProcessId peer = 0; peer < ctx_.cfg.n; ++peer) {
    if (peer == ctx_.id) continue;
    Slot floor = catchup_.peer_snapshot_floor(peer);
    if (floor <= next_apply_) continue;
    if (!catchup_.should_request_snapshot(peer, floor, next_apply_)) {
      continue;
    }
    Encoder req;
    req.u8(net::tags::kSmrSnapRequest);
    req.u32(ctx_.group);
    req.u64(next_apply_);
    transport_.send(peer, std::move(req).take());
  }
}

void SlotMux::on_snapshot_request(ProcessId from, ByteView payload) {
  Decoder dec(payload);
  dec.u8();
  GroupId group = dec.u32();
  Slot their_next_apply = dec.u64();
  if (!dec.ok() || !dec.at_end() || group != ctx_.group) return;
  // Serve only when our snapshot actually covers slots the requester is
  // missing; otherwise per-slot catch-up (or nothing) is the answer.
  if (catchup_.snapshot_floor() <= their_next_apply) return;
  for (auto& chunk : catchup_.snapshot_chunks()) {
    transport_.send(from, std::move(chunk));
  }
}

void SlotMux::on_snapshot_response(ProcessId from, ByteView payload) {
  Decoder dec(payload);
  dec.u8();
  GroupId group = dec.u32();
  Slot applied_below = dec.u64();
  ByteView digest_bytes = dec.bytes_view();
  std::uint32_t index = dec.u32();
  std::uint32_t count = dec.u32();
  Bytes chunk = dec.bytes();  // retained by the reassembly buffer
  if (!dec.ok() || !dec.at_end() || applied_below == 0 ||
      group != ctx_.group || digest_bytes.size() != crypto::kDigestSize) {
    return;
  }
  crypto::Digest digest;
  std::copy(digest_bytes.begin(), digest_bytes.end(), digest.begin());

  auto verified = catchup_.add_snapshot_chunk(from, applied_below, digest,
                                              index, count, std::move(chunk),
                                              next_apply_);
  if (verified) {
    install_snapshot(verified->snapshot, std::move(verified->body),
                     verified->digest);
  }
}

void SlotMux::install_snapshot(const smr::Snapshot& snap, Bytes body,
                               const crypto::Digest& digest) {
  if (snap.applied_below <= next_apply_) return;  // raced past it already

  // Every slot below the snapshot boundary is superseded wholesale: tear
  // down its live consensus instance, parked decision and claimed
  // commands. The snapshot IS those slots' outcome.
  for (auto it = active_.begin();
       it != active_.end() && it->first < snap.applied_below;) {
    it->second.sync->stop();
    it = active_.erase(it);
  }
  reorder_.erase(reorder_.begin(), reorder_.lower_bound(snap.applied_below));
  pending_.release_below(snap.applied_below);

  // Adopt the dedup state so duplicates of snapshotted commands in later
  // slots are skipped exactly as every other replica skipped them — a
  // replacement, so ids the snapshotters already horizon-pruned are
  // forgotten here too (see PendingQueue::restore_applied).
  pending_.restore_applied(snap.applied_ids);
  applied_commands_ = std::max(applied_commands_, snap.applied_commands);
  next_apply_ = snap.applied_below;
  next_start_ = std::max(next_start_, next_apply_);

  // Adopt the snapshot itself: we can serve it onward, and our retention
  // floor rises with it (the transferred body is already the canonical
  // encoding, digest-verified — no re-encode/re-hash). Our watermark
  // jumped too.
  catchup_.note_snapshot(snap.applied_below, std::move(body), digest);
  catchup_.note_watermark(ctx_.id, next_apply_);
  ++snapshots_installed_;

  // Restore the state machine before any post-snapshot slot applies.
  if (hooks_.install) hooks_.install(snap);

  // Decisions parked above the boundary may be applicable now, and the
  // window reopens from the new cursor.
  drain_apply();
  fill_window();
  note_inflight();
  replay_parked();
}

void SlotMux::note_inflight() {
  if (ctx_.stats != nullptr) {
    ctx_.stats->note_inflight_slots(ctx_.id, inflight_slots());
  }
}

}  // namespace fastbft::engine
