#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "consensus/replica.hpp"
#include "engine/adaptive.hpp"
#include "engine/catchup.hpp"
#include "engine/host.hpp"
#include "engine/pending_queue.hpp"
#include "engine/timer_wheel.hpp"
#include "net/stats.hpp"
#include "smr/batch.hpp"
#include "viewsync/synchronizer.hpp"

/// \file slot_mux.hpp
/// Slot-multiplexed consensus engine: a sliding window of up to
/// `pipeline_depth` concurrent single-shot consensus instances (one
/// paper-protocol Replica + view synchronizer per slot), multiplexed over
/// one transport endpoint and one timer wheel.
///
/// The engine is host-agnostic: it runs against the engine::Host seam
/// (clock + timers + single-threaded executor), so the identical code
/// drives the deterministic simulator (SimHost) and real OS threads over
/// wall-clock time (ThreadedHost + runtime::ThreadedSmrCluster).
///
/// Responsibilities:
///  * window management — slot s starts as soon as s < next_apply +
///    pipeline_depth, so up to `depth` slots run their 2-step fast paths
///    concurrently instead of strictly one after another; a congestion
///    clamp (`max_reorder_backlog`) additionally stops opening slots while
///    too many decisions sit blocked behind a stalled predecessor;
///  * dispatch — all SMR_WRAPPED{slot, watermark, inner} traffic is routed
///    through a single slot -> instance table (no per-slot transport shims
///    on the receive path);
///  * in-order apply — decisions may land out of slot order (a faulty
///    leader stalls slot k while k+1 decides); a reorder buffer holds them
///    until every predecessor applied, so the state machine sees the log
///    strictly in slot order;
///  * garbage collection — a slot's replica, synchronizer and timers are
///    torn down the moment it decides; claim/claim-reply bookkeeping is
///    dropped as slots retire; retained decided values are pruned below
///    the cluster-wide applied watermark gossiped in SMR traffic;
///  * snapshots — every `snapshot_interval` applied slots the engine
///    freezes the state machine (via the SnapshotHooks::state callback)
///    into an smr::Snapshot, which unpins decided-value retention from
///    crashed peers' frozen watermarks and serves full-state transfer
///    (SNAPSHOT_REQUEST/SNAPSHOT_RESPONSE) to replicas whose needed slots
///    were pruned; installing a verified snapshot jumps next-apply to the
///    snapshot boundary and restores the state machine through
///    SnapshotHooks::install;
///  * policy objects — client-command intake/dedup/claims (PendingQueue)
///    and decided-value/snapshot state transfer (CatchUpPolicy) live
///    behind the engine rather than in the client-facing SMR shell;
///  * adaptive control — with SlotMuxOptions::adaptive enabled, an AIMD
///    AdaptiveController sizes the *effective* pipeline depth and batch
///    from observed decision latency and reorder backlog, and the window/
///    claim logic consults it instead of the static knobs (adaptive.hpp,
///    docs/ADAPTIVE.md).

namespace fastbft::engine {

/// Cluster identity and key material the engine needs; host-independent.
/// (The simulator fills this from runtime::ProcessContext; the threaded
/// runtime builds it directly.)
struct EngineContext {
  consensus::QuorumConfig cfg;
  ProcessId id = kNoProcess;
  std::shared_ptr<const crypto::KeyStore> keys;
  consensus::LeaderFn leader_of;

  /// Consensus group this engine instance runs (sharded SMR: a node hosts
  /// one SlotMux per group). Stamped into every group-scoped wire message
  /// (SMR_WRAPPED / SMR_DECIDED / SMR_SNAP_*) right after the tag byte so
  /// the hosting node can route inbound traffic to the owning engine at a
  /// fixed offset; inbound payloads for a different group are dropped.
  GroupId group = 0;

  /// Optional in-flight-window gauge sink. Sim-only: NetworkStats is not
  /// thread-safe, so threaded hosts leave it null.
  net::NetworkStats* stats = nullptr;

  /// Signature-verification memo shared by every slot's Verifier on this
  /// node, so votes/certificate entries replayed across certs and
  /// pipelined slots skip redundant HMACs. Created by the SlotMux when
  /// null. Per-node, single-threaded — never share across nodes on the
  /// threaded runtime.
  std::shared_ptr<crypto::VerificationCache> verify_cache;
};

struct SlotMuxOptions {
  /// Consensus slots allowed in flight concurrently. 1 reproduces the
  /// strictly sequential pre-engine behaviour.
  std::uint32_t pipeline_depth = 1;

  /// Maximum commands claimed into one slot proposal.
  std::uint32_t max_batch = 8;

  /// Stop opening new slots once this many commands were applied
  /// (0 = never stop; the driver bounds the run instead).
  std::uint64_t target_commands = 0;

  /// Rotate the view-1 leader by slot index (slot s view v is led by the
  /// base round-robin leader of view v + s - 1). Spreads proposal load
  /// across the cluster and keeps a single faulty process from being the
  /// initial leader of every in-flight slot. Off by default: the paper's
  /// single-shot experiments assume the slot-independent leader function.
  bool rotate_leaders = false;

  /// Open slots eagerly to the full window even with nothing to propose
  /// (idle slots decide noop batches, keeping the log live — the
  /// machinery's own liveness check and the behaviour every simulator
  /// experiment assumes). Off: a slot opens only when the pending queue
  /// holds a claimable command (or a peer's traffic joins it), so an
  /// idle replica is quiescent instead of spinning noop slots — on a
  /// wall-clock transport the spin competes with real work for the CPU
  /// and can more than halve useful slot capacity.
  bool eager_windows = true;

  /// Congestion-style depth clamp: while more than this many decisions are
  /// parked in the reorder buffer (blocked behind a stalled slot), no new
  /// slots are opened — deciding even further ahead only grows the buffer.
  /// 0 disables the clamp (window-only limiting, the PR-1 behaviour).
  std::size_t max_reorder_backlog = 0;

  /// Take a state snapshot every this many applied slots (0 disables).
  /// Snapshots unpin decided-value retention from crashed peers and enable
  /// full-state transfer for replicas that fell below the prune floor.
  std::uint64_t snapshot_interval = 0;

  /// Largest SNAPSHOT_RESPONSE chunk payload.
  std::uint32_t snapshot_chunk_bytes = 1024;

  /// Closed-loop sizing of the effective pipeline depth and batch from
  /// observed decision latency and reorder backlog (engine/adaptive.hpp).
  /// Disabled by default: pipeline_depth/max_batch stay authoritative,
  /// which keeps single-group benchmark baselines comparable.
  AdaptiveOptions adaptive;

  /// Per-slot consensus tuning.
  consensus::ReplicaOptions replica;

  /// Per-slot view-synchronizer tuning (f is overwritten from the quorum
  /// config; base_timeout is in host ticks — simulator ticks or
  /// microseconds on the wall-clock host).
  viewsync::SynchronizerConfig sync;
};

/// The engine's two touch points with the state machine it replicates but
/// does not own: `state` serializes it for a snapshot (KvStore::serialize
/// in the SMR shell), `install` restores it from a verified transferred
/// snapshot. Both optional — without `state` no snapshots are taken,
/// without `install` none can be adopted.
struct SnapshotHooks {
  std::function<Bytes()> state;
  std::function<void(const smr::Snapshot&)> install;
};

class SlotMux {
 public:
  /// Invoked exactly once per slot, in strict slot order, with the deduped
  /// commands the decision contributed (empty for noop/duplicate slots).
  using ApplyFn =
      std::function<void(Slot slot, const std::vector<smr::Command>&)>;

  SlotMux(Host& host, EngineContext ctx, net::Transport& transport,
          SlotMuxOptions options, ApplyFn apply, SnapshotHooks hooks = {});
  ~SlotMux();

  SlotMux(const SlotMux&) = delete;
  SlotMux& operator=(const SlotMux&) = delete;

  /// Opens the initial window of slots.
  void start();

  /// Admits a client command into the pending queue (dedup inside).
  bool submit(const smr::Command& cmd);

  /// Full SMR_WRAPPED payload: routed by slot through the dispatch table.
  /// The inner message is dispatched as a view into `payload` — no copy.
  /// Payloads stamped with a different GroupId are dropped (the hosting
  /// node routes by group before calling, so a mismatch here means a
  /// malformed or misrouted message).
  void on_wrapped(ProcessId from, ByteView payload);

  /// Full SMR_DECIDED payload: catch-up claim bookkeeping and adoption.
  void on_decided_claim(ProcessId from, ByteView payload);

  /// Full SNAPSHOT_REQUEST payload: serve the latest snapshot, chunked,
  /// if it actually covers slots the requester is missing.
  void on_snapshot_request(ProcessId from, ByteView payload);

  /// Full SNAPSHOT_RESPONSE payload: chunk reassembly; once a verified
  /// snapshot emerges, install it and jump the apply cursor.
  void on_snapshot_response(ProcessId from, ByteView payload);

  // --- Introspection (shell, tests, benchmarks) -----------------------------

  /// Highest slot ever opened (0 before start()).
  Slot highest_started() const { return next_start_ - 1; }

  /// Next slot the state machine will apply (everything below is applied).
  Slot next_to_apply() const { return next_apply_; }

  /// Consensus instances currently live.
  std::uint32_t inflight_slots() const {
    return static_cast<std::uint32_t>(active_.size());
  }

  /// Decisions currently parked for in-order apply.
  std::size_t reorder_pending() const { return reorder_.size(); }

  /// High-water mark of decisions parked for in-order apply — nonzero iff
  /// slots decided out of order at some point. (Relaxed atomic: readable
  /// from stats threads while the engine runs.)
  std::size_t reorder_high_water() const {
    return reorder_high_water_.load(std::memory_order_relaxed);
  }

  /// Peak count of messages parked for beyond-window slots (see
  /// parked_). Zero under in-process transports; nonzero over a real
  /// network whenever a proposal overtook a window-advancing ack.
  /// Thread-safe.
  std::size_t parked_high_water() const {
    return parked_high_water_.load(std::memory_order_relaxed);
  }

  /// Times fill_window() stopped early because the reorder backlog
  /// exceeded max_reorder_backlog.
  std::uint64_t clamp_stalls() const {
    return clamp_stalls_.load(std::memory_order_relaxed);
  }

  /// Pipeline depth the window logic currently honours: the controller's
  /// when adaptive control is on, the static option otherwise.
  /// Thread-safe (relaxed atomic under the controller).
  std::uint32_t effective_depth() const {
    return adaptive_ ? adaptive_->depth() : options_.pipeline_depth;
  }

  /// Batch size proposals currently claim up to.
  std::uint32_t effective_batch() const {
    return adaptive_ ? adaptive_->batch() : options_.max_batch;
  }

  /// Worst-case window the engine may ever run — the bound for
  /// window-sized invariants (claim flood rejection, dedup horizon,
  /// catch-up gap heuristics), which must hold at any effective depth.
  std::uint32_t max_window_depth() const {
    return adaptive_ ? std::max(options_.pipeline_depth,
                                adaptive_->options().max_depth)
                     : options_.pipeline_depth;
  }

  /// Adaptive windows that breached and backed off (0 when adaptive
  /// control is off). Thread-safe.
  std::uint64_t adaptive_backoffs() const {
    return adaptive_ ? adaptive_->backoff_events() : 0;
  }

  /// The adaptive controller, when enabled (tests, benchmarks).
  const AdaptiveController* adaptive() const { return adaptive_.get(); }

  std::uint64_t applied_commands() const { return applied_commands_; }
  std::uint64_t noop_slots() const { return noop_slots_; }

  /// Snapshots this engine froze locally at interval boundaries.
  std::uint64_t snapshots_taken() const { return snapshots_taken_; }

  /// Verified snapshots adopted via state transfer (each jumped the apply
  /// cursor past pruned slots).
  std::uint64_t snapshots_installed() const { return snapshots_installed_; }

  const PendingQueue& pending() const { return pending_; }
  const CatchUpPolicy& catchup() const { return catchup_; }
  const TimerWheel& timers() const { return timers_; }

  /// Group this engine serves (0 in unsharded nodes).
  GroupId group() const { return ctx_.group; }

  /// The verification memo every slot's Verifier shares. Exposed so tests
  /// can assert a multi-group node shares ONE cache across its engines.
  const std::shared_ptr<crypto::VerificationCache>& verify_cache() const {
    return ctx_.verify_cache;
  }

 private:
  /// Outbound half of a slot's scope: tags every send with the slot so the
  /// peer's dispatch table can route it. Broadcasts frame the inner payload
  /// once and share the wrapped buffer across all n recipients (the wrap
  /// header — slot, watermark, snapshot floor — is recipient-independent).
  class SlotChannel final : public net::Transport {
   public:
    SlotChannel(SlotMux& mux, Slot slot) : mux_(mux), slot_(slot) {}
    void send(ProcessId to, SharedBytes payload) override;
    void broadcast(SharedBytes payload) override;
    void broadcast_others(SharedBytes payload) override;
    std::uint32_t cluster_size() const override;
    ProcessId self() const override;

   private:
    SlotMux& mux_;
    Slot slot_;
  };

  struct Instance {
    std::unique_ptr<SlotChannel> channel;
    std::unique_ptr<consensus::Replica> replica;
    std::unique_ptr<viewsync::Synchronizer> sync;
    /// Host clock at start_slot; decided - started is the decision
    /// latency the adaptive controller steers by.
    TimePoint started_at = 0;
  };

  bool done() const {
    return options_.target_commands > 0 &&
           applied_commands_ >= options_.target_commands;
  }

  void fill_window();
  void park_wrapped(Slot slot, ProcessId from, ByteView payload);
  void replay_parked();
  void start_slot(Slot slot);
  Value make_input(Slot slot);
  consensus::LeaderFn leader_for(Slot slot) const;
  void on_slot_decided(Slot slot, const Value& value);
  void drain_apply();
  void apply_value(Slot slot, const Value& value);
  void maybe_take_snapshot(Slot just_applied);
  void install_snapshot(const smr::Snapshot& snap, Bytes body,
                        const crypto::Digest& digest);
  void request_snapshots();
  void send_wrapped(Slot slot, ProcessId to, ByteView payload);
  void broadcast_wrapped(Slot slot, ByteView payload, bool include_self);
  void note_inflight();

  /// Defers `fn` to the host, guarded so a closure outliving this engine
  /// (e.g. across a crash-restart node swap) becomes a no-op instead of a
  /// dangling call.
  void defer_guarded(std::function<void()> fn);

  Host& host_;
  EngineContext ctx_;
  net::Transport& transport_;
  SlotMuxOptions options_;
  ApplyFn apply_;
  SnapshotHooks hooks_;

  TimerWheel timers_;
  PendingQueue pending_;
  CatchUpPolicy catchup_;

  /// AIMD depth/batch sizing; null unless options_.adaptive.enabled.
  std::unique_ptr<AdaptiveController> adaptive_;

  /// The dispatch table: slot -> live consensus instance.
  std::map<Slot, Instance> active_;

  /// Decided out of order, waiting for predecessors: slot -> value.
  std::map<Slot, Value> reorder_;
  /// Traffic for slots past the live window, parked until the window
  /// reaches them instead of dropped (see on_wrapped). In-process
  /// transports deliver in global send order, so a peer's window-opening
  /// acks always precede the leader's next proposal and this stays empty;
  /// a real network only guarantees per-link FIFO, and dropping the first
  /// proposal that overtakes a window-advancing ack stalls the slot until
  /// its view-change timeout. Bounded: a max-window horizon of slots,
  /// each capped at a handful of messages per peer.
  std::map<Slot, std::vector<std::pair<ProcessId, Bytes>>> parked_;
  bool replaying_parked_ = false;
  /// Single-writer (host thread); atomic so stats readers on other
  /// threads can sample them live without racing.
  std::atomic<std::size_t> reorder_high_water_{0};
  std::atomic<std::size_t> parked_high_water_{0};
  std::atomic<std::uint64_t> clamp_stalls_{0};

  Slot next_start_ = 1;
  Slot next_apply_ = 1;
  std::uint64_t applied_commands_ = 0;
  std::uint64_t noop_slots_ = 0;
  std::uint64_t snapshots_taken_ = 0;
  std::uint64_t snapshots_installed_ = 0;

  /// Deferred snapshot-request probe for small floor gaps (at most the
  /// pipeline window): ordinary skew resolves itself before the probe
  /// fires, but a genuinely stuck laggard must still request even if
  /// traffic stops and no new boundary ever widens the gap.
  bool snap_probe_armed_ = false;
  Slot snap_probe_floor_ = 0;

  /// Liveness flag captured by deferred closures (see defer_guarded).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace fastbft::engine
