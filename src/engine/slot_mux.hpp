#pragma once

#include <map>
#include <memory>
#include <vector>

#include "consensus/replica.hpp"
#include "engine/catchup.hpp"
#include "engine/host.hpp"
#include "engine/pending_queue.hpp"
#include "engine/timer_wheel.hpp"
#include "net/stats.hpp"
#include "smr/batch.hpp"
#include "viewsync/synchronizer.hpp"

/// \file slot_mux.hpp
/// Slot-multiplexed consensus engine: a sliding window of up to
/// `pipeline_depth` concurrent single-shot consensus instances (one
/// paper-protocol Replica + view synchronizer per slot), multiplexed over
/// one transport endpoint and one timer wheel.
///
/// The engine is host-agnostic: it runs against the engine::Host seam
/// (clock + timers + single-threaded executor), so the identical code
/// drives the deterministic simulator (SimHost) and real OS threads over
/// wall-clock time (ThreadedHost + runtime::ThreadedSmrCluster).
///
/// Responsibilities:
///  * window management — slot s starts as soon as s < next_apply +
///    pipeline_depth, so up to `depth` slots run their 2-step fast paths
///    concurrently instead of strictly one after another; a congestion
///    clamp (`max_reorder_backlog`) additionally stops opening slots while
///    too many decisions sit blocked behind a stalled predecessor;
///  * dispatch — all SMR_WRAPPED{slot, watermark, inner} traffic is routed
///    through a single slot -> instance table (no per-slot transport shims
///    on the receive path);
///  * in-order apply — decisions may land out of slot order (a faulty
///    leader stalls slot k while k+1 decides); a reorder buffer holds them
///    until every predecessor applied, so the state machine sees the log
///    strictly in slot order;
///  * garbage collection — a slot's replica, synchronizer and timers are
///    torn down the moment it decides; claim/claim-reply bookkeeping is
///    dropped as slots retire; retained decided values are pruned below
///    the cluster-wide applied watermark gossiped in SMR traffic;
///  * policy objects — client-command intake/dedup/claims (PendingQueue)
///    and decided-value state transfer (CatchUpPolicy) live behind the
///    engine rather than in the client-facing SMR shell.

namespace fastbft::engine {

/// Cluster identity and key material the engine needs; host-independent.
/// (The simulator fills this from runtime::ProcessContext; the threaded
/// runtime builds it directly.)
struct EngineContext {
  consensus::QuorumConfig cfg;
  ProcessId id = kNoProcess;
  std::shared_ptr<const crypto::KeyStore> keys;
  consensus::LeaderFn leader_of;

  /// Optional in-flight-window gauge sink. Sim-only: NetworkStats is not
  /// thread-safe, so threaded hosts leave it null.
  net::NetworkStats* stats = nullptr;
};

struct SlotMuxOptions {
  /// Consensus slots allowed in flight concurrently. 1 reproduces the
  /// strictly sequential pre-engine behaviour.
  std::uint32_t pipeline_depth = 1;

  /// Maximum commands claimed into one slot proposal.
  std::uint32_t max_batch = 8;

  /// Stop opening new slots once this many commands were applied
  /// (0 = never stop; the driver bounds the run instead).
  std::uint64_t target_commands = 0;

  /// Rotate the view-1 leader by slot index (slot s view v is led by the
  /// base round-robin leader of view v + s - 1). Spreads proposal load
  /// across the cluster and keeps a single faulty process from being the
  /// initial leader of every in-flight slot. Off by default: the paper's
  /// single-shot experiments assume the slot-independent leader function.
  bool rotate_leaders = false;

  /// Congestion-style depth clamp: while more than this many decisions are
  /// parked in the reorder buffer (blocked behind a stalled slot), no new
  /// slots are opened — deciding even further ahead only grows the buffer.
  /// 0 disables the clamp (window-only limiting, the PR-1 behaviour).
  std::size_t max_reorder_backlog = 0;

  /// Per-slot consensus tuning.
  consensus::ReplicaOptions replica;

  /// Per-slot view-synchronizer tuning (f is overwritten from the quorum
  /// config; base_timeout is in host ticks — simulator ticks or
  /// microseconds on the wall-clock host).
  viewsync::SynchronizerConfig sync;
};

class SlotMux {
 public:
  /// Invoked exactly once per slot, in strict slot order, with the deduped
  /// commands the decision contributed (empty for noop/duplicate slots).
  using ApplyFn =
      std::function<void(Slot slot, const std::vector<smr::Command>&)>;

  SlotMux(Host& host, EngineContext ctx, net::Transport& transport,
          SlotMuxOptions options, ApplyFn apply);
  ~SlotMux();

  SlotMux(const SlotMux&) = delete;
  SlotMux& operator=(const SlotMux&) = delete;

  /// Opens the initial window of slots.
  void start();

  /// Admits a client command into the pending queue (dedup inside).
  bool submit(const smr::Command& cmd);

  /// Full SMR_WRAPPED payload: routed by slot through the dispatch table.
  void on_wrapped(ProcessId from, const Bytes& payload);

  /// Full SMR_DECIDED payload: catch-up claim bookkeeping and adoption.
  void on_decided_claim(ProcessId from, const Bytes& payload);

  // --- Introspection (shell, tests, benchmarks) -----------------------------

  /// Highest slot ever opened (0 before start()).
  Slot highest_started() const { return next_start_ - 1; }

  /// Next slot the state machine will apply (everything below is applied).
  Slot next_to_apply() const { return next_apply_; }

  /// Consensus instances currently live.
  std::uint32_t inflight_slots() const {
    return static_cast<std::uint32_t>(active_.size());
  }

  /// Decisions currently parked for in-order apply.
  std::size_t reorder_pending() const { return reorder_.size(); }

  /// High-water mark of decisions parked for in-order apply — nonzero iff
  /// slots decided out of order at some point.
  std::size_t reorder_high_water() const { return reorder_high_water_; }

  /// Times fill_window() stopped early because the reorder backlog
  /// exceeded max_reorder_backlog.
  std::uint64_t clamp_stalls() const { return clamp_stalls_; }

  std::uint64_t applied_commands() const { return applied_commands_; }
  std::uint64_t noop_slots() const { return noop_slots_; }

  const PendingQueue& pending() const { return pending_; }
  const CatchUpPolicy& catchup() const { return catchup_; }
  const TimerWheel& timers() const { return timers_; }

 private:
  /// Outbound half of a slot's scope: tags every send with the slot so the
  /// peer's dispatch table can route it.
  class SlotChannel final : public net::Transport {
   public:
    SlotChannel(SlotMux& mux, Slot slot) : mux_(mux), slot_(slot) {}
    void send(ProcessId to, Bytes payload) override;
    std::uint32_t cluster_size() const override;
    ProcessId self() const override;

   private:
    SlotMux& mux_;
    Slot slot_;
  };

  struct Instance {
    std::unique_ptr<SlotChannel> channel;
    std::unique_ptr<consensus::Replica> replica;
    std::unique_ptr<viewsync::Synchronizer> sync;
  };

  bool done() const {
    return options_.target_commands > 0 &&
           applied_commands_ >= options_.target_commands;
  }

  void fill_window();
  void start_slot(Slot slot);
  Value make_input(Slot slot);
  consensus::LeaderFn leader_for(Slot slot) const;
  void on_slot_decided(Slot slot, const Value& value);
  void drain_apply();
  void apply_value(Slot slot, const Value& value);
  void send_wrapped(Slot slot, ProcessId to, Bytes payload);
  void note_inflight();

  Host& host_;
  EngineContext ctx_;
  net::Transport& transport_;
  SlotMuxOptions options_;
  ApplyFn apply_;

  TimerWheel timers_;
  PendingQueue pending_;
  CatchUpPolicy catchup_;

  /// The dispatch table: slot -> live consensus instance.
  std::map<Slot, Instance> active_;

  /// Decided out of order, waiting for predecessors: slot -> value.
  std::map<Slot, Value> reorder_;
  std::size_t reorder_high_water_ = 0;
  std::uint64_t clamp_stalls_ = 0;

  Slot next_start_ = 1;
  Slot next_apply_ = 1;
  std::uint64_t applied_commands_ = 0;
  std::uint64_t noop_slots_ = 0;
};

}  // namespace fastbft::engine
