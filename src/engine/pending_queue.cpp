#include "engine/pending_queue.hpp"

#include <iterator>

namespace fastbft::engine {

bool PendingQueue::admit(const smr::Command& cmd) {
  if (cmd.kind == smr::OpKind::Noop) return false;
  CommandId id = id_of(cmd);
  if (applied_.contains(id)) return false;
  if (!seen_.insert(id).second) return false;
  pending_.push_back(cmd);
  return true;
}

std::vector<smr::Command> PendingQueue::claim(Slot slot,
                                              std::uint32_t max_batch) {
  std::vector<smr::Command> batch;
  for (const auto& cmd : pending_) {
    CommandId id = id_of(cmd);
    if (applied_.contains(id) || claimed_.contains(id)) continue;
    batch.push_back(cmd);
    claimed_.insert(id);
    claims_by_slot_[slot].push_back(id);
    if (batch.size() >= max_batch) break;
  }
  return batch;
}

void PendingQueue::release(Slot slot) {
  auto it = claims_by_slot_.find(slot);
  if (it == claims_by_slot_.end()) return;
  for (const CommandId& id : it->second) claimed_.erase(id);
  claims_by_slot_.erase(it);
}

bool PendingQueue::applied(const smr::Command& cmd, Slot slot) {
  if (!applied_.emplace(id_of(cmd), slot).second) return false;
  trim_applied_prefix();
  return true;
}

void PendingQueue::restore_applied(const std::vector<AppliedEntry>& entries) {
  applied_ = std::map<CommandId, Slot>(entries.begin(), entries.end());
  trim_applied_prefix();
}

void PendingQueue::prune_applied_before(Slot floor) {
  for (auto it = applied_.begin(); it != applied_.end();) {
    it = it->second < floor ? applied_.erase(it) : std::next(it);
  }
}

void PendingQueue::release_below(Slot floor) {
  for (auto it = claims_by_slot_.begin();
       it != claims_by_slot_.end() && it->first < floor;
       it = claims_by_slot_.erase(it)) {
    for (const CommandId& id : it->second) claimed_.erase(id);
  }
}

void PendingQueue::trim_applied_prefix() {
  while (!pending_.empty() && applied_.contains(id_of(pending_.front()))) {
    pending_.pop_front();
  }
}

}  // namespace fastbft::engine
