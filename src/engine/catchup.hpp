#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/types.hpp"
#include "common/value.hpp"
#include "crypto/sha256.hpp"
#include "smr/snapshot.hpp"

/// \file catchup.hpp
/// Decided-slot state-transfer policy. Fast-path acks are not transferable
/// proof of a decision, so a laggard adopts slot s's value only after f + 1
/// distinct processes claim the same decided value (at least one of them is
/// correct). This object tracks incoming claims per slot, retains decided
/// values for serving laggards, and dedups outgoing replies per (slot,
/// peer). Claim state is garbage-collected the moment a slot's decision is
/// known locally.
///
/// Retention is bounded two ways:
///
///  * Watermark trimming: every SMR_WRAPPED message gossips the sender's
///    applied watermark (the lowest slot it has NOT yet applied), and
///    decided values strictly below the minimum watermark over the whole
///    cluster are pruned — nobody can still need them, because everyone
///    already applied them.
///  * Snapshot floors: a crashed (or Byzantine, lying-low) peer freezes its
///    watermark and would pin retention from its crash point on. Once the
///    engine hands this policy a state snapshot covering every slot <
///    applied_below (note_snapshot), the prune floor rises to applied_below
///    regardless of stale watermarks: anyone who still needs those slots
///    recovers through full-state transfer instead of per-slot replay.
///
/// Snapshot transfer protocol (SNAPSHOT_REQUEST / SNAPSHOT_RESPONSE):
/// peers gossip their snapshot floor alongside the watermark; a replica
/// whose next-apply slot sits below a peer's snapshot floor knows its
/// needed slots may be pruned there and requests the peer's snapshot
/// (once per (peer, floor) — should_request_snapshot dedups). The holder
/// answers every well-formed request with the serialized smr::Snapshot
/// split into chunks: holder-side dedup would strand a requester that
/// crashed mid-transfer and must re-fetch after rejoining. The requester
/// reassembles per sender and installs only when f + 1 distinct senders
/// vouch for the same (applied_below, digest) AND a fully reassembled body
/// hashes to that digest: the digest check defeats corrupted bodies, the
/// f + 1 rule defeats a fabricated-but-self-consistent snapshot (at least
/// one voucher is correct). Each sender funds at most one in-flight
/// (applied_below, digest) reassembly, so fetch memory is bounded by the
/// cluster size times the snapshot size.
///
/// Flood resistance: only a sender's first claim per slot counts (honest
/// replicas send exactly one reply per (slot, peer), so later ones are
/// Byzantine by construction), which bounds claim state per slot by the
/// cluster size; the engine additionally rejects claims beyond its
/// pipeline window, bounding the number of slots with live claim state.

namespace fastbft::engine {

class CatchUpPolicy {
 public:
  /// `threshold` is f + 1: the claim/voucher count that proves a decision
  /// or a snapshot. `cluster_size` is n: watermarks are tracked for every
  /// process. `snapshot_chunk_bytes` bounds one SNAPSHOT_RESPONSE payload.
  /// `group` is stamped into every outgoing SMR_DECIDED / SNAPSHOT_RESPONSE
  /// so the peer's node routes it to the matching engine (sharded SMR).
  CatchUpPolicy(std::uint32_t threshold, std::uint32_t cluster_size,
                std::uint32_t snapshot_chunk_bytes = 1024, GroupId group = 0)
      : threshold_(threshold),
        chunk_bytes_(snapshot_chunk_bytes),
        group_(group),
        watermarks_(cluster_size, 1),
        peer_snap_floors_(cluster_size, 1) {}

  /// Records a locally-known decision and drops the slot's claim state.
  void record_decided(Slot slot, Value value);

  /// The decided value for `slot`, or nullptr if unknown (never decided
  /// locally, or already pruned below the watermark floor).
  const Value* decided(Slot slot) const;

  /// Feeds one SMR_DECIDED claim. Returns the claimed value once f + 1
  /// distinct claimants agree on it (nullopt before that, and always for
  /// slots whose decision is already known).
  std::optional<Value> add_claim(Slot slot, ProcessId from,
                                 const Value& value);

  /// A claim set for `slot` that already crossed the threshold, if any.
  std::optional<Value> ready_claim(Slot slot) const;

  /// Builds the serialized SMR_DECIDED reply for `to`; nullopt if the
  /// slot is undecided or the reply would be redundant. `epoch` is the
  /// view the peer's stuck-evidence message (its WISH) named: the reply
  /// is sent once per (slot, peer) at epoch 0 — sufficient on reliable
  /// channels — and re-sent whenever the peer re-wishes at a HIGHER view,
  /// because a rising wish proves the earlier reply never landed (lossy
  /// links, chaos runs). Resends stay flood-bounded: views only escalate
  /// after the peer's own timeout, so a Byzantine peer buys at most one
  /// reply per view it can name, same as a correct-but-stuck one.
  std::optional<Bytes> reply_for(Slot slot, ProcessId to, View epoch = 0);

  /// Records `peer`'s applied watermark (everything below `applied_below`
  /// is applied there; gossiped in SMR_WRAPPED traffic, and fed for self
  /// after each local apply). Watermarks only advance — a reordered old
  /// message can never regress the floor. When the cluster-wide minimum
  /// advances, decided values, claim state and reply dedup entries below
  /// it are pruned.
  void note_watermark(ProcessId peer, Slot applied_below);

  /// Lowest slot whose decided value may still be retained: the maximum of
  /// the cluster-wide watermark minimum and the local snapshot floor.
  /// Slots below it have been pruned.
  Slot prune_floor() const { return floor_; }

  std::size_t decided_count() const { return decided_.size(); }
  std::uint64_t pruned_count() const { return pruned_; }

  // --- Snapshots (full-state transfer) ---------------------------------------

  /// Adopts `body` — the canonical smr::Snapshot encoding covering every
  /// slot < applied_below — as the latest local snapshot, whether freshly
  /// taken or just installed. Unpins retention: the prune floor rises to
  /// applied_below even while crashed peers' watermarks lag behind. The
  /// digest overload skips re-hashing when the caller already verified it.
  void note_snapshot(Slot applied_below, Bytes body);
  void note_snapshot(Slot applied_below, Bytes body,
                     const crypto::Digest& digest);

  /// applied_below of the latest snapshot (1 = none yet). Gossiped in
  /// SMR_WRAPPED so laggards know when per-slot catch-up cannot work.
  Slot snapshot_floor() const { return snap_below_; }

  /// Records the snapshot floor `peer` advertised in wrapped gossip
  /// (monotonic, like watermarks). Requests are sent only to peers that
  /// actually advertised a useful floor, so the request dedup can never
  /// suppress a peer for a snapshot it was not yet known to hold.
  void note_peer_snapshot_floor(ProcessId peer, Slot floor);
  Slot peer_snapshot_floor(ProcessId peer) const {
    return peer < peer_snap_floors_.size() ? peer_snap_floors_[peer] : 1;
  }

  /// True once per (peer, advertised floor): the caller should send
  /// SNAPSHOT_REQUEST to `peer`, whose advertised snapshot floor exceeds
  /// our applied watermark `next_apply` (our needed slots may be pruned
  /// there). A higher advertisement from the same peer re-opens the
  /// request.
  bool should_request_snapshot(ProcessId peer, Slot peer_floor,
                               Slot next_apply);

  /// The full SNAPSHOT_RESPONSE chunk sequence of the latest snapshot;
  /// empty if none exists (or it exceeds the transfer budget). The
  /// sequence is recipient-independent and every well-formed request is
  /// served — holder-side dedup would strand a requester that crashed
  /// mid-transfer and must re-fetch the same snapshot (honest requesters
  /// already self-dedup via should_request_snapshot).
  std::vector<Bytes> snapshot_chunks();

  /// A transfer that crossed the install bar: the decoded snapshot plus
  /// its already-verified canonical body and digest, so the installer can
  /// adopt it without re-encoding or re-hashing.
  struct VerifiedSnapshot {
    smr::Snapshot snapshot;
    Bytes body;
    crypto::Digest digest;
  };

  /// Feeds one SNAPSHOT_RESPONSE chunk. Returns a decoded, digest-verified
  /// snapshot ready to install once f + 1 distinct senders vouch for the
  /// same (applied_below, digest) and a full body reassembled; the caller
  /// installs it and (via note_snapshot) adopts it for serving others.
  std::optional<VerifiedSnapshot> add_snapshot_chunk(
      ProcessId from, Slot applied_below, const crypto::Digest& digest,
      std::uint32_t index, std::uint32_t count, Bytes chunk,
      Slot next_apply);

  std::uint64_t snapshots_served() const { return snapshots_served_; }

 private:
  /// Prunes decided values, claim state and reply dedup below `candidate`
  /// (monotonic; no-op unless the floor actually rises).
  void raise_floor(Slot candidate);

  std::uint32_t threshold_;
  std::uint32_t chunk_bytes_;
  GroupId group_;
  std::map<Slot, Value> decided_;
  /// slot -> claimed value bytes -> claimants.
  std::map<Slot, std::map<Bytes, std::set<ProcessId>>> claims_;
  /// slot -> senders whose (single counted) claim was recorded.
  std::map<Slot, std::set<ProcessId>> claim_senders_;
  /// (slot, peer) -> highest wish epoch already answered (see reply_for).
  std::map<std::pair<Slot, ProcessId>, View> reply_sent_;
  /// Per-process applied watermark; index = ProcessId, start = 1.
  std::vector<Slot> watermarks_;
  Slot floor_ = 1;
  std::uint64_t pruned_ = 0;

  // Latest local snapshot (holder side).
  Slot snap_below_ = 1;
  Bytes snap_body_;
  crypto::Digest snap_digest_{};
  std::uint64_t snapshots_served_ = 0;

  // In-flight fetch (requester side).
  /// Per-peer advertised snapshot floor; index = ProcessId, start = 1.
  std::vector<Slot> peer_snap_floors_;
  /// peer -> snapshot floor we last requested from it.
  std::map<ProcessId, Slot> snap_requested_;
  struct SnapFetch {
    std::uint32_t count = 0;
    std::map<std::uint32_t, Bytes> chunks;
    /// Delivered a complete body that failed verification: still counts
    /// as an announcer, but is never reassembled (or hashed) again.
    bool failed = false;
  };
  /// (applied_below, digest) -> per-sender partial bodies. The sender set
  /// of a key doubles as its voucher set.
  std::map<std::pair<Slot, crypto::Digest>, std::map<ProcessId, SnapFetch>>
      snap_fetch_;
};

}  // namespace fastbft::engine
