#pragma once

#include <map>
#include <optional>
#include <set>

#include "common/types.hpp"
#include "common/value.hpp"

/// \file catchup.hpp
/// Decided-slot state-transfer policy. Fast-path acks are not transferable
/// proof of a decision, so a laggard adopts slot s's value only after f + 1
/// distinct processes claim the same decided value (at least one of them is
/// correct). This object tracks incoming claims per slot, retains decided
/// values for serving laggards, and dedups outgoing replies per (slot,
/// peer). Claim state is garbage-collected the moment a slot's decision is
/// known locally; decided values are retained indefinitely — any replica
/// may lag arbitrarily far behind (bounding retention requires snapshot
/// transfer, a ROADMAP item).
///
/// Flood resistance: only a sender's first claim per slot counts (honest
/// replicas send exactly one reply per (slot, peer), so later ones are
/// Byzantine by construction), which bounds claim state per slot by the
/// cluster size; the engine additionally rejects claims beyond its
/// pipeline window, bounding the number of slots with live claim state.

namespace fastbft::engine {

class CatchUpPolicy {
 public:
  /// `threshold` is f + 1: the claim count that proves a decision.
  explicit CatchUpPolicy(std::uint32_t threshold) : threshold_(threshold) {}

  /// Records a locally-known decision and drops the slot's claim state.
  void record_decided(Slot slot, Value value);

  /// The decided value for `slot`, or nullptr if unknown.
  const Value* decided(Slot slot) const;

  /// Feeds one SMR_DECIDED claim. Returns the claimed value once f + 1
  /// distinct claimants agree on it (nullopt before that, and always for
  /// slots whose decision is already known).
  std::optional<Value> add_claim(Slot slot, ProcessId from,
                                 const Value& value);

  /// A claim set for `slot` that already crossed the threshold, if any.
  std::optional<Value> ready_claim(Slot slot) const;

  /// Builds the serialized SMR_DECIDED reply for `to`, once per (slot,
  /// peer); nullopt if already sent or the slot is undecided.
  std::optional<Bytes> reply_for(Slot slot, ProcessId to);

  std::size_t decided_count() const { return decided_.size(); }

 private:
  std::uint32_t threshold_;
  std::map<Slot, Value> decided_;
  /// slot -> claimed value bytes -> claimants.
  std::map<Slot, std::map<Bytes, std::set<ProcessId>>> claims_;
  /// slot -> senders whose (single counted) claim was recorded.
  std::map<Slot, std::set<ProcessId>> claim_senders_;
  std::set<std::pair<Slot, ProcessId>> reply_sent_;
};

}  // namespace fastbft::engine
