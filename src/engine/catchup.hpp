#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/types.hpp"
#include "common/value.hpp"

/// \file catchup.hpp
/// Decided-slot state-transfer policy. Fast-path acks are not transferable
/// proof of a decision, so a laggard adopts slot s's value only after f + 1
/// distinct processes claim the same decided value (at least one of them is
/// correct). This object tracks incoming claims per slot, retains decided
/// values for serving laggards, and dedups outgoing replies per (slot,
/// peer). Claim state is garbage-collected the moment a slot's decision is
/// known locally.
///
/// Retention is bounded by watermark trimming: every SMR_WRAPPED message
/// gossips the sender's applied watermark (the lowest slot it has NOT yet
/// applied), and decided values strictly below the minimum watermark over
/// the whole cluster are pruned — nobody can still need them, because
/// everyone already applied them. A crashed (or Byzantine, lying-low) peer
/// freezes its watermark and therefore pins retention from its crash point
/// on; unpinning that needs full KV snapshot transfer, which stays future
/// work (ROADMAP).
///
/// Flood resistance: only a sender's first claim per slot counts (honest
/// replicas send exactly one reply per (slot, peer), so later ones are
/// Byzantine by construction), which bounds claim state per slot by the
/// cluster size; the engine additionally rejects claims beyond its
/// pipeline window, bounding the number of slots with live claim state.

namespace fastbft::engine {

class CatchUpPolicy {
 public:
  /// `threshold` is f + 1: the claim count that proves a decision.
  /// `cluster_size` is n: watermarks are tracked for every process.
  CatchUpPolicy(std::uint32_t threshold, std::uint32_t cluster_size)
      : threshold_(threshold), watermarks_(cluster_size, 1) {}

  /// Records a locally-known decision and drops the slot's claim state.
  void record_decided(Slot slot, Value value);

  /// The decided value for `slot`, or nullptr if unknown (never decided
  /// locally, or already pruned below the watermark floor).
  const Value* decided(Slot slot) const;

  /// Feeds one SMR_DECIDED claim. Returns the claimed value once f + 1
  /// distinct claimants agree on it (nullopt before that, and always for
  /// slots whose decision is already known).
  std::optional<Value> add_claim(Slot slot, ProcessId from,
                                 const Value& value);

  /// A claim set for `slot` that already crossed the threshold, if any.
  std::optional<Value> ready_claim(Slot slot) const;

  /// Builds the serialized SMR_DECIDED reply for `to`, once per (slot,
  /// peer); nullopt if already sent or the slot is undecided.
  std::optional<Bytes> reply_for(Slot slot, ProcessId to);

  /// Records `peer`'s applied watermark (everything below `applied_below`
  /// is applied there; gossiped in SMR_WRAPPED traffic, and fed for self
  /// after each local apply). Watermarks only advance — a reordered old
  /// message can never regress the floor. When the cluster-wide minimum
  /// advances, decided values, claim state and reply dedup entries below
  /// it are pruned.
  void note_watermark(ProcessId peer, Slot applied_below);

  /// Lowest watermark over the whole cluster: slots below this are applied
  /// everywhere and have been pruned.
  Slot prune_floor() const { return floor_; }

  std::size_t decided_count() const { return decided_.size(); }
  std::uint64_t pruned_count() const { return pruned_; }

 private:
  std::uint32_t threshold_;
  std::map<Slot, Value> decided_;
  /// slot -> claimed value bytes -> claimants.
  std::map<Slot, std::map<Bytes, std::set<ProcessId>>> claims_;
  /// slot -> senders whose (single counted) claim was recorded.
  std::map<Slot, std::set<ProcessId>> claim_senders_;
  std::set<std::pair<Slot, ProcessId>> reply_sent_;
  /// Per-process applied watermark; index = ProcessId, start = 1.
  std::vector<Slot> watermarks_;
  Slot floor_ = 1;
  std::uint64_t pruned_ = 0;
};

}  // namespace fastbft::engine
