#include "engine/catchup.hpp"

#include "common/codec.hpp"
#include "net/tags.hpp"

namespace fastbft::engine {

void CatchUpPolicy::record_decided(Slot slot, Value value) {
  decided_.emplace(slot, std::move(value));
  // The local decision supersedes any claim set.
  claims_.erase(slot);
  claim_senders_.erase(slot);
}

const Value* CatchUpPolicy::decided(Slot slot) const {
  auto it = decided_.find(slot);
  return it == decided_.end() ? nullptr : &it->second;
}

std::optional<Value> CatchUpPolicy::add_claim(Slot slot, ProcessId from,
                                              const Value& value) {
  if (decided_.contains(slot)) return std::nullopt;
  // One counted claim per (slot, sender): honest replicas reply at most
  // once per peer, so repeats are Byzantine; ignoring them bounds the
  // per-slot claim state by the cluster size.
  if (!claim_senders_[slot].insert(from).second) return std::nullopt;
  auto& claimants = claims_[slot][value.bytes()];
  claimants.insert(from);
  if (claimants.size() >= threshold_) return Value(value);
  return std::nullopt;
}

std::optional<Value> CatchUpPolicy::ready_claim(Slot slot) const {
  auto it = claims_.find(slot);
  if (it == claims_.end()) return std::nullopt;
  for (const auto& [value_bytes, claimants] : it->second) {
    if (claimants.size() >= threshold_) return Value(Bytes(value_bytes));
  }
  return std::nullopt;
}

std::optional<Bytes> CatchUpPolicy::reply_for(Slot slot, ProcessId to) {
  const Value* value = decided(slot);
  if (!value) return std::nullopt;
  if (!reply_sent_.insert({slot, to}).second) return std::nullopt;
  Encoder enc;
  enc.u8(net::tags::kSmrDecided);
  enc.u64(slot);
  value->encode(enc);
  return std::move(enc).take();
}

}  // namespace fastbft::engine
