#include "engine/catchup.hpp"

#include <algorithm>
#include <iterator>
#include <string>

#include "common/codec.hpp"
#include "common/logging.hpp"
#include "net/tags.hpp"

namespace fastbft::engine {

namespace {

/// Byte budget for one transferred snapshot: the requester rejects chunk
/// geometries claiming more, bounding what a Byzantine flooder can pin;
/// the holder refuses (loudly) to serve a snapshot that exceeds it, so an
/// over-budget state surfaces as a logged config error instead of
/// responses every requester silently drops. Both sides derive their
/// chunk counts from the same cluster-uniform snapshot_chunk_bytes.
constexpr std::uint64_t kMaxSnapshotBytes = 64ull << 20;

}  // namespace

void CatchUpPolicy::record_decided(Slot slot, Value value) {
  decided_.emplace(slot, std::move(value));
  // The local decision supersedes any claim set.
  claims_.erase(slot);
  claim_senders_.erase(slot);
}

const Value* CatchUpPolicy::decided(Slot slot) const {
  auto it = decided_.find(slot);
  return it == decided_.end() ? nullptr : &it->second;
}

std::optional<Value> CatchUpPolicy::add_claim(Slot slot, ProcessId from,
                                              const Value& value) {
  // Slots below the floor are applied everywhere (our own watermark is
  // part of the minimum, so that includes us) or superseded by a snapshot:
  // claims for them can only be Byzantine flooding, and parking them would
  // re-grow exactly the state the floor freed.
  if (slot < floor_) return std::nullopt;
  if (decided_.contains(slot)) return std::nullopt;
  // One counted claim per (slot, sender): honest replicas reply at most
  // once per peer, so repeats are Byzantine; ignoring them bounds the
  // per-slot claim state by the cluster size.
  if (!claim_senders_[slot].insert(from).second) return std::nullopt;
  auto& claimants = claims_[slot][value.bytes()];
  claimants.insert(from);
  if (claimants.size() >= threshold_) return Value(value);
  return std::nullopt;
}

std::optional<Value> CatchUpPolicy::ready_claim(Slot slot) const {
  auto it = claims_.find(slot);
  if (it == claims_.end()) return std::nullopt;
  for (const auto& [value_bytes, claimants] : it->second) {
    if (claimants.size() >= threshold_) return Value(Bytes(value_bytes));
  }
  return std::nullopt;
}

void CatchUpPolicy::note_watermark(ProcessId peer, Slot applied_below) {
  if (peer >= watermarks_.size()) return;
  if (applied_below <= watermarks_[peer]) return;  // stale gossip
  watermarks_[peer] = applied_below;

  Slot min = watermarks_[0];
  for (Slot w : watermarks_) min = std::min(min, w);
  // Everything strictly below the minimum is applied on every process (a
  // Byzantine peer over-reporting only removes itself from the minimum;
  // honest watermarks keep the floor safe).
  raise_floor(min);
}

void CatchUpPolicy::raise_floor(Slot candidate) {
  if (candidate <= floor_) return;
  floor_ = candidate;

  // Prune retained values, any parked claim state and the per-peer reply
  // dedup entries strictly below the new floor.
  auto end = decided_.lower_bound(floor_);
  pruned_ += static_cast<std::uint64_t>(std::distance(decided_.begin(), end));
  decided_.erase(decided_.begin(), end);
  claims_.erase(claims_.begin(), claims_.lower_bound(floor_));
  claim_senders_.erase(claim_senders_.begin(),
                       claim_senders_.lower_bound(floor_));
  reply_sent_.erase(reply_sent_.begin(),
                    reply_sent_.lower_bound({floor_, 0}));
}

std::optional<Bytes> CatchUpPolicy::reply_for(Slot slot, ProcessId to,
                                              View epoch) {
  const Value* value = decided(slot);
  if (!value) return std::nullopt;
  auto [it, inserted] = reply_sent_.try_emplace({slot, to}, epoch);
  if (!inserted) {
    if (epoch <= it->second) return std::nullopt;
    it->second = epoch;
  }
  Encoder enc;
  enc.u8(net::tags::kSmrDecided);
  enc.u32(group_);
  enc.u64(slot);
  value->encode(enc);
  return std::move(enc).take();
}

// --- Snapshots ---------------------------------------------------------------

void CatchUpPolicy::note_snapshot(Slot applied_below, Bytes body) {
  crypto::Digest digest = crypto::sha256(body);
  note_snapshot(applied_below, std::move(body), digest);
}

void CatchUpPolicy::note_snapshot(Slot applied_below, Bytes body,
                                  const crypto::Digest& digest) {
  if (!snap_body_.empty() && applied_below <= snap_below_) return;  // stale
  snap_below_ = applied_below;
  snap_body_ = std::move(body);
  snap_digest_ = digest;
  // Anything we were fetching at or below this coverage is now pointless.
  for (auto it = snap_fetch_.begin();
       it != snap_fetch_.end() && it->first.first <= snap_below_;) {
    it = snap_fetch_.erase(it);
  }
  // The snapshot supersedes per-slot retention below its coverage even
  // while a crashed peer's watermark is frozen lower: that is exactly the
  // retention unpinning this subsystem exists for.
  raise_floor(applied_below);
}

void CatchUpPolicy::note_peer_snapshot_floor(ProcessId peer, Slot floor) {
  if (peer >= peer_snap_floors_.size()) return;
  peer_snap_floors_[peer] = std::max(peer_snap_floors_[peer], floor);
}

bool CatchUpPolicy::should_request_snapshot(ProcessId peer, Slot peer_floor,
                                            Slot next_apply) {
  if (peer_floor <= next_apply) return false;  // per-slot catch-up suffices
  auto [it, inserted] = snap_requested_.emplace(peer, peer_floor);
  if (!inserted) {
    if (it->second >= peer_floor) return false;  // already asked for this one
    it->second = peer_floor;
  }
  return true;
}

std::vector<Bytes> CatchUpPolicy::snapshot_chunks() {
  if (snap_body_.empty()) return {};
  if (snap_body_.size() > kMaxSnapshotBytes) {
    // Requesters reject anything over the transfer budget, so serving it
    // would only produce silently-dropped responses. Surface the config
    // error instead (state too large for snapshot_chunk_bytes transfers).
    log_error("catchup",
              "snapshot at slot " + std::to_string(snap_below_) +
                  " exceeds the transfer budget (" +
                  std::to_string(snap_body_.size()) + " bytes); not served");
    return {};
  }
  // Every well-formed request earns one full chunk sequence. Holder-side
  // dedup would be unsound: a requester that crashes mid-transfer loses
  // its reassembly buffers and must be able to ask the SAME holder for
  // the SAME snapshot again, or it could never recover while no newer
  // snapshot forms. Honest requesters self-dedup (should_request_snapshot
  // asks once per peer + floor per incarnation); a Byzantine spammer buys
  // one bounded transfer per request message and no holder-side memory.
  ++snapshots_served_;

  // Chunks are views over the one retained body: each response message is
  // encoded straight from its slice, so a served snapshot is copied exactly
  // once (into the wire messages) instead of once into a chunk vector and
  // again into each message.
  std::vector<ByteView> chunks =
      split_chunk_views(ByteView(snap_body_), chunk_bytes_);
  std::vector<Bytes> messages;
  messages.reserve(chunks.size());
  for (std::uint32_t index = 0; index < chunks.size(); ++index) {
    Encoder enc(1 + 4 + 8 + 4 + crypto::kDigestSize + 4 + 4 + 4 +
                chunks[index].size());
    enc.u8(net::tags::kSmrSnapResponse);
    enc.u32(group_);
    enc.u64(snap_below_);
    enc.bytes(ByteView(snap_digest_.data(), snap_digest_.size()));
    enc.u32(index);
    enc.u32(static_cast<std::uint32_t>(chunks.size()));
    enc.bytes(chunks[index]);
    messages.push_back(std::move(enc).take());
  }
  return messages;
}

std::optional<CatchUpPolicy::VerifiedSnapshot>
CatchUpPolicy::add_snapshot_chunk(ProcessId from, Slot applied_below,
                                  const crypto::Digest& digest,
                                  std::uint32_t index, std::uint32_t count,
                                  Bytes chunk, Slot next_apply) {
  if (applied_below <= next_apply) return std::nullopt;  // nothing to gain
  // Budget the claimed geometry with one chunk of ceil-rounding slack: an
  // honest holder of a body of up to kMaxSnapshotBytes produces
  // count = ceil(size / chunk_bytes), whose (count - 1) full chunks are
  // strictly within budget even when chunk_bytes does not divide it.
  if (count == 0 || index >= count ||
      static_cast<std::uint64_t>(count - 1) * chunk_bytes_ >=
          kMaxSnapshotBytes) {
    return std::nullopt;
  }
  // Oversized chunks would let a flooder pin far more than count x
  // chunk_bytes despite the count budget; honest holders never exceed the
  // (cluster-uniform) configured chunk size.
  if (chunk.size() > chunk_bytes_) return std::nullopt;

  // One in-flight reassembly per sender: a sender switching to a different
  // (applied_below, digest) abandons its previous one, so fetch memory is
  // bounded by cluster size x snapshot size no matter what Byzantine
  // senders announce.
  std::pair<Slot, crypto::Digest> key{applied_below, digest};
  for (auto it = snap_fetch_.begin(); it != snap_fetch_.end();) {
    if (it->first != key && it->second.erase(from) > 0 &&
        it->second.empty()) {
      it = snap_fetch_.erase(it);
    } else {
      ++it;
    }
  }

  SnapFetch& fetch = snap_fetch_[key][from];
  if (fetch.failed) return std::nullopt;  // already delivered a bad body
  if (fetch.chunks.empty()) {
    fetch.count = count;
  } else if (fetch.count != count) {
    return std::nullopt;  // sender contradicts itself: Byzantine, ignore
  }
  fetch.chunks[index] = std::move(chunk);

  // Install requires f + 1 distinct senders vouching for this
  // (applied_below, digest): at least one of them is correct, so the body
  // is a legitimate snapshot — the digest alone cannot prove that. (A
  // voucher that later delivers garbage still counts: a fake digest can
  // never attract an honest voucher, so f Byzantine announcers alone
  // stay below the threshold.)
  auto& senders = snap_fetch_[key];
  if (senders.size() < threshold_) return std::nullopt;

  for (auto& [sender, partial] : senders) {
    if (partial.failed || partial.chunks.size() != partial.count) continue;
    Bytes body;
    std::size_t total = 0;
    for (const auto& [i, piece] : partial.chunks) {
      (void)i;
      total += piece.size();
    }
    body.reserve(total);
    for (const auto& [i, piece] : partial.chunks) {
      (void)i;
      body.insert(body.end(), piece.begin(), piece.end());
    }
    std::optional<smr::Snapshot> snap;
    if (crypto::sha256(body) == digest) {
      snap = smr::Snapshot::decode(body);
      if (snap && snap->applied_below != applied_below) snap.reset();
    }
    if (!snap) {
      // Each complete body is hashed at most once: flag the sender and
      // free its chunks, or a flooder could make us re-hash its corrupt
      // body on every later chunk arrival.
      partial.failed = true;
      partial.chunks.clear();
      continue;
    }
    snap_fetch_.clear();
    snap_requested_.clear();
    return VerifiedSnapshot{std::move(*snap), std::move(body), digest};
  }
  return std::nullopt;
}

}  // namespace fastbft::engine
