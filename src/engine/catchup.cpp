#include "engine/catchup.hpp"

#include <algorithm>
#include <iterator>

#include "common/codec.hpp"
#include "net/tags.hpp"

namespace fastbft::engine {

void CatchUpPolicy::record_decided(Slot slot, Value value) {
  decided_.emplace(slot, std::move(value));
  // The local decision supersedes any claim set.
  claims_.erase(slot);
  claim_senders_.erase(slot);
}

const Value* CatchUpPolicy::decided(Slot slot) const {
  auto it = decided_.find(slot);
  return it == decided_.end() ? nullptr : &it->second;
}

std::optional<Value> CatchUpPolicy::add_claim(Slot slot, ProcessId from,
                                              const Value& value) {
  // Slots below the floor are applied everywhere (our own watermark is
  // part of the minimum, so that includes us): claims for them can only
  // be Byzantine flooding, and parking them would re-grow exactly the
  // state the watermark trim freed.
  if (slot < floor_) return std::nullopt;
  if (decided_.contains(slot)) return std::nullopt;
  // One counted claim per (slot, sender): honest replicas reply at most
  // once per peer, so repeats are Byzantine; ignoring them bounds the
  // per-slot claim state by the cluster size.
  if (!claim_senders_[slot].insert(from).second) return std::nullopt;
  auto& claimants = claims_[slot][value.bytes()];
  claimants.insert(from);
  if (claimants.size() >= threshold_) return Value(value);
  return std::nullopt;
}

std::optional<Value> CatchUpPolicy::ready_claim(Slot slot) const {
  auto it = claims_.find(slot);
  if (it == claims_.end()) return std::nullopt;
  for (const auto& [value_bytes, claimants] : it->second) {
    if (claimants.size() >= threshold_) return Value(Bytes(value_bytes));
  }
  return std::nullopt;
}

void CatchUpPolicy::note_watermark(ProcessId peer, Slot applied_below) {
  if (peer >= watermarks_.size()) return;
  if (applied_below <= watermarks_[peer]) return;  // stale gossip
  watermarks_[peer] = applied_below;

  Slot min = watermarks_[0];
  for (Slot w : watermarks_) min = std::min(min, w);
  if (min <= floor_) return;
  floor_ = min;

  // Everything strictly below the floor is applied on every process (a
  // Byzantine peer over-reporting only removes itself from the minimum;
  // honest watermarks keep the floor safe). Prune retained values, any
  // parked claim state and the per-peer reply dedup entries.
  auto end = decided_.lower_bound(floor_);
  pruned_ += static_cast<std::uint64_t>(std::distance(decided_.begin(), end));
  decided_.erase(decided_.begin(), end);
  claims_.erase(claims_.begin(), claims_.lower_bound(floor_));
  claim_senders_.erase(claim_senders_.begin(),
                       claim_senders_.lower_bound(floor_));
  reply_sent_.erase(reply_sent_.begin(),
                    reply_sent_.lower_bound({floor_, 0}));
}

std::optional<Bytes> CatchUpPolicy::reply_for(Slot slot, ProcessId to) {
  const Value* value = decided(slot);
  if (!value) return std::nullopt;
  if (!reply_sent_.insert({slot, to}).second) return std::nullopt;
  Encoder enc;
  enc.u8(net::tags::kSmrDecided);
  enc.u64(slot);
  value->encode(enc);
  return std::move(enc).take();
}

}  // namespace fastbft::engine
