#pragma once

#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "common/assert.hpp"
#include "engine/host.hpp"

/// \file timer_wheel.hpp
/// Engine-scoped timer multiplexer. A pipelined SMR engine runs up to
/// `pipeline_depth` view synchronizers concurrently, each of which arms and
/// re-arms timeouts; routing every logical timer through one wheel keeps
/// exactly one event outstanding in the host per engine (the earliest
/// deadline) instead of one per slot, and gives the engine a single place
/// to introspect and tear down all slot-scoped timers.
///
/// Cancellation is eager: cancelling a handle erases its wheel entry
/// immediately (TimerHandle's on_cancel hook), so dead timers never pin
/// wheel slots until their deadline. The wheel inherits the host's
/// same-thread contract — schedule and cancel only on the host thread —
/// and enforces it in invariant builds via Host::affinity_ok(): an entry
/// erase bypasses the transport's own arm/cancel asserts, so the wheel
/// re-checks before mutating its map (docs/ANALYSIS.md).

namespace fastbft::engine {

class TimerWheel final : public sim::TimerService {
 public:
  explicit TimerWheel(Host& host) : host_(host) {}

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;
  ~TimerWheel() override;

  sim::TimerHandle schedule_after(Duration delay,
                                  std::function<void()> fn) override;

  /// Live logical timers currently queued (cancelled entries are dropped
  /// eagerly, so they never count).
  std::size_t pending() const { return entries_.size(); }

  /// Entries erased by eager cancellation so far.
  std::uint64_t cancelled_dropped() const { return cancelled_dropped_; }

 private:
  /// (deadline, sequence) — unique forever, so a stale cancel of an entry
  /// that already fired erases nothing.
  using Key = std::pair<TimePoint, std::uint64_t>;

  void arm();
  void fire();

  Host& host_;
  std::map<Key, std::function<void()>> entries_;
  sim::TimerHandle host_event_;
  TimePoint armed_at_ = kTimeInfinity;
  std::uint64_t next_seq_ = 0;
  std::uint64_t cancelled_dropped_ = 0;
  bool firing_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace fastbft::engine
