#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/scheduler.hpp"

/// \file timer_wheel.hpp
/// Engine-scoped timer multiplexer. A pipelined SMR engine runs up to
/// `pipeline_depth` view synchronizers concurrently, each of which arms and
/// re-arms timeouts; routing every logical timer through one wheel keeps
/// exactly one event outstanding in the scheduler per engine (the earliest
/// deadline) instead of one per slot, and gives the engine a single place
/// to introspect and tear down all slot-scoped timers.

namespace fastbft::engine {

class TimerWheel final : public sim::TimerService {
 public:
  explicit TimerWheel(sim::Scheduler& sched) : sched_(sched) {}

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;
  ~TimerWheel() override;

  sim::TimerHandle schedule_after(Duration delay,
                                  std::function<void()> fn) override;

  /// Logical timers currently queued (cancelled entries included until
  /// their deadline pops them).
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    TimePoint at = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void arm();
  void fire();

  sim::Scheduler& sched_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  sim::TimerHandle scheduler_event_;
  TimePoint armed_at_ = kTimeInfinity;
  std::uint64_t next_seq_ = 0;
  bool firing_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace fastbft::engine
