#include "runtime/threaded_cluster.hpp"

#include "common/assert.hpp"

namespace fastbft::runtime {

ThreadedCluster::ThreadedCluster(consensus::QuorumConfig cfg,
                                 std::vector<Value> inputs,
                                 consensus::ReplicaOptions options,
                                 std::uint64_t key_seed)
    : cfg_(cfg),
      net_(cfg.n),
      keys_(std::make_shared<const crypto::KeyStore>(key_seed, cfg.n)),
      faulty_(cfg.n, false) {
  FASTBFT_ASSERT(inputs.size() == cfg.n, "one input per process");
  auto leader_of = consensus::round_robin_leader(cfg.n);
  for (ProcessId id = 0; id < cfg.n; ++id) {
    endpoints_.push_back(net_.endpoint(id));
    replicas_.push_back(std::make_unique<consensus::Replica>(
        cfg, id, std::move(inputs[id]), *endpoints_.back(),
        crypto::Signer(keys_, id), crypto::Verifier(keys_), leader_of,
        [this, id](const consensus::DecisionRecord& record) {
          std::lock_guard<std::mutex> lock(mutex_);
          decisions_.emplace(id, record);
          decided_cv_.notify_all();
        },
        options));
    net_.attach(id, [this, id](ProcessId from, const Bytes& payload) {
      replicas_[id]->on_message(from, payload);
    });
  }
}

ThreadedCluster::~ThreadedCluster() { net_.stop(); }

void ThreadedCluster::crash(ProcessId id) {
  FASTBFT_ASSERT(id < cfg_.n, "crash: id out of range");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    faulty_[id] = true;
  }
  net_.disconnect(id);
}

void ThreadedCluster::start() {
  FASTBFT_ASSERT(!started_, "already started");
  started_ = true;
  // Seed initial sends while no delivery thread is running: replicas are
  // only ever touched by one thread at a time.
  for (auto& replica : replicas_) {
    replica->start();
  }
  net_.start();
}

bool ThreadedCluster::wait_all_correct_decided(
    std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  return decided_cv_.wait_for(lock, timeout, [&] {
    std::uint32_t correct = 0, decided = 0;
    for (ProcessId id = 0; id < cfg_.n; ++id) {
      if (faulty_[id]) continue;
      ++correct;
      if (decisions_.contains(id)) ++decided;
    }
    return decided == correct;
  });
}

std::map<ProcessId, consensus::DecisionRecord> ThreadedCluster::decisions()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decisions_;
}

bool ThreadedCluster::agreement() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Value* first = nullptr;
  for (const auto& [pid, record] : decisions_) {
    if (faulty_[pid]) continue;
    if (!first) {
      first = &record.value;
    } else if (!(*first == record.value)) {
      return false;
    }
  }
  return true;
}

}  // namespace fastbft::runtime
