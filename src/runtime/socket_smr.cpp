#include "runtime/socket_smr.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "consensus/selection.hpp"

namespace fastbft::runtime {

net::SocketNetworkConfig make_socket_net_config(
    const SocketClusterConfig& config) {
  FASTBFT_ASSERT(
      config.peers.size() == config.cfg.n + config.num_clients,
      "peers table must cover every replica and client endpoint");
  net::SocketNetworkConfig ncfg;
  ncfg.cluster_size = config.cfg.n;
  ncfg.peers = config.peers;
  ncfg.link = config.link;
  ncfg.tx_delay_us = config.tx_delay_us;
  return ncfg;
}

// --- SocketSmrServer ---------------------------------------------------------

SocketSmrServer::SocketSmrServer(SocketClusterConfig config, ProcessId id)
    : config_(std::move(config)),
      id_(id),
      net_(make_socket_net_config(config_)),
      keys_(std::make_shared<const crypto::KeyStore>(config_.key_seed,
                                                     config_.cfg.n)),
      leader_of_(consensus::round_robin_leader(config_.cfg.n)) {
  FASTBFT_ASSERT(id_ < config_.cfg.n, "server id out of range");
  smr::SmrOptions smr_options = config_.smr;
  smr_options.node.sync.base_timeout = config_.sync_base_timeout_us;
  smr_options.num_clients = config_.num_clients;
  // On-demand windows: over a wall-clock transport, eager noop slots are
  // not free — they compete with command slots for real CPU (and more
  // than halved command throughput on a loaded loopback cluster).
  smr_options.eager_windows = false;

  host_ = std::make_unique<engine::SocketHost>(net_, id_);
  engine::EngineContext ectx{config_.cfg, id_,        keys_,
                             leader_of_,  /*group=*/0, /*stats=*/nullptr,
                             /*verify_cache=*/nullptr};
  node_ = std::make_unique<smr::SmrNode>(
      *host_, std::move(ectx), net_.endpoint(id_), smr_options,
      [this](ProcessId, GroupId, Slot,
             const std::vector<smr::Command>& commands) {
        applied_.fetch_add(commands.size(), std::memory_order_relaxed);
      });
  node_->set_install_callback(
      [this](ProcessId, GroupId, const smr::Snapshot& snap) {
        // Installed state subsumes the commands below the boundary; keep
        // the monotone max so applied_commands() stays comparable with
        // peers that executed every command themselves.
        std::uint64_t seen = applied_.load(std::memory_order_relaxed);
        while (seen < snap.applied_commands &&
               !applied_.compare_exchange_weak(seen, snap.applied_commands,
                                               std::memory_order_relaxed)) {
        }
        snapshot_installs_.fetch_add(1, std::memory_order_relaxed);
      });
  net_.attach(id_, [this](ProcessId from, const Bytes& payload) {
    node_->on_message(from, payload);
  });
}

SocketSmrServer::~SocketSmrServer() { stop(); }

void SocketSmrServer::start() {
  FASTBFT_ASSERT(!started_, "already started");
  started_ = true;
  // Seed before the loop thread exists: slot windows open and view-1
  // timers arm single-threaded, exactly like ThreadedSmrCluster.
  node_->start();
  net_.start();
}

void SocketSmrServer::stop() { net_.stop(); }

std::string SocketSmrServer::stats_summary() const {
  std::ostringstream out;
  out << "replica " << id_ << " applied " << applied_commands()
      << " commands (" << node_->noop_slots() << " noop slots), "
      << snapshots_installed() << " snapshot installs\n";
  const auto engine = engine_stats();
  out << "engine: depth " << engine.effective_depth << ", batch "
      << engine.effective_batch << ", parked high-water "
      << engine.parked_high_water << "; net delivered "
      << net_.delivered_count() << ", timers fired " << net_.timers_fired()
      << "\n";
  out << net_.stats_summary();
  return out.str();
}

// --- SocketSmrClient ---------------------------------------------------------

SocketSmrClient::SocketSmrClient(SocketClusterConfig config,
                                 SocketClientOptions options)
    : config_(std::move(config)),
      options_(options),
      net_(make_socket_net_config(config_)),
      keys_(std::make_shared<const crypto::KeyStore>(config_.key_seed,
                                                     config_.cfg.n)) {
  FASTBFT_ASSERT(options_.first_client_id >= config_.cfg.n,
                 "client ids start after the replicas");
  FASTBFT_ASSERT(options_.first_client_id + options_.sessions <=
                     config_.cfg.n + config_.num_clients,
                 "client ids exceed the cluster's endpoint table");
  for (std::uint32_t k = 0; k < options_.sessions; ++k) {
    const ProcessId pid = options_.first_client_id + k;
    hosts_.push_back(std::make_unique<engine::SocketHost>(net_, pid));
    smr::SessionConfig scfg;
    scfg.n = config_.cfg.n;
    scfg.f = config_.cfg.f;
    scfg.first_gateway = pid % config_.cfg.n;
    scfg.num_shards = options_.num_shards;
    scfg.request_timeout = options_.request_timeout_us;
    scfg.request_deadline = options_.request_deadline_us;
    scfg.max_in_flight = options_.max_in_flight;
    scfg.keys = keys_;
    sessions_.push_back(std::make_unique<smr::ClientSession>(
        *hosts_[k], net_.endpoint(pid), scfg));
    net_.attach(pid, [this, k](ProcessId from, const Bytes& payload) {
      sessions_[k]->on_message(from, payload);
    });
  }
}

SocketSmrClient::~SocketSmrClient() { stop(); }

void SocketSmrClient::start() {
  FASTBFT_ASSERT(!started_, "already started");
  started_ = true;
  net_.start();
}

void SocketSmrClient::stop() { net_.stop(); }

std::uint64_t SocketSmrClient::completed() const {
  std::uint64_t sum = 0;
  for (const auto& s : sessions_) sum += s->completed();
  return sum;
}

std::uint64_t SocketSmrClient::deadline_timeouts() const {
  std::uint64_t sum = 0;
  for (const auto& s : sessions_) sum += s->deadline_timeouts();
  return sum;
}

}  // namespace fastbft::runtime
