#include "runtime/cluster.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace fastbft::runtime {

Cluster::Cluster(ClusterOptions options, std::vector<Value> inputs)
    : options_(options), inputs_(std::move(inputs)) {
  const auto n = options_.cfg.n;
  FASTBFT_ASSERT(inputs_.size() == n, "need one input per process");
  network_ = std::make_unique<net::SimNetwork>(sched_, n, options_.net,
                                               options_.extra_endpoints);
  keys_ = std::make_shared<const crypto::KeyStore>(options_.key_seed, n);
  leader_of_ = consensus::round_robin_leader(n);
  factories_.resize(n);
  processes_.resize(n);
  nodes_.resize(n, nullptr);
  faulty_.resize(n, false);
}

Cluster::~Cluster() = default;

void Cluster::replace_process(ProcessId id, ProcessFactory factory) {
  FASTBFT_ASSERT(!started_, "configure the cluster before start()");
  FASTBFT_ASSERT(id < options_.cfg.n, "process id out of range");
  factories_[id] = std::move(factory);
  faulty_[id] = true;
}

void Cluster::crash_at(ProcessId id, TimePoint at) {
  FASTBFT_ASSERT(!started_, "configure the cluster before start()");
  FASTBFT_ASSERT(id < options_.cfg.n, "process id out of range");
  scheduled_crashes_.emplace_back(id, at);
  faulty_[id] = true;
}

void Cluster::restart_at(ProcessId id, TimePoint at) {
  FASTBFT_ASSERT(!started_, "configure the cluster before start()");
  FASTBFT_ASSERT(id < options_.cfg.n, "process id out of range");
  scheduled_restarts_.emplace_back(id, at);
}

void Cluster::mark_faulty(ProcessId id) {
  FASTBFT_ASSERT(id < options_.cfg.n, "process id out of range");
  faulty_[id] = true;
}

void Cluster::crash_now(ProcessId id) {
  FASTBFT_ASSERT(started_, "crash_now: start() the cluster first");
  FASTBFT_ASSERT(id < options_.cfg.n, "process id out of range");
  faulty_[id] = true;
  FASTBFT_ASSERT(num_faulty() <= options_.cfg.f,
                 "crash_now exceeds the configured fault bound");
  network_->disconnect(id);
}

void Cluster::restart_now(ProcessId id) {
  FASTBFT_ASSERT(started_, "restart_now: start() the cluster first");
  FASTBFT_ASSERT(id < options_.cfg.n, "process id out of range");
  FASTBFT_ASSERT(network_->is_disconnected(id),
                 "restart_now: process never crashed");
  // Same recovery contract as restart_at: a factory-fresh instance, a
  // clean network slate, and everything it knew recovered through the
  // protocol (catch-up / snapshot transfer).
  network_->reconnect(id);
  build_process(id);
  processes_[id]->start();
}

void Cluster::set_network_script(net::SimNetwork::DeliveryScript script) {
  network_->set_script(std::move(script));
}

void Cluster::start() {
  FASTBFT_ASSERT(!started_, "cluster already started");
  started_ = true;

  FASTBFT_ASSERT(num_faulty() <= options_.cfg.f,
                 "more faulty processes than the config tolerates — fix the "
                 "scenario (use mark_faulty-free scripts for network-only "
                 "adversaries)");

  const auto n = options_.cfg.n;
  for (ProcessId id = 0; id < n; ++id) {
    build_process(id);
    network_->attach(id, [this, id](ProcessId from, const Bytes& payload) {
      if (processes_[id]) processes_[id]->on_message(from, payload);
    });
  }

  for (const auto& [id, at] : scheduled_crashes_) {
    sched_.schedule_at(at, [this, id = id] { network_->disconnect(id); });
  }

  for (const auto& [id, at] : scheduled_restarts_) {
    sched_.schedule_at(at, [this, id = id] {
      FASTBFT_ASSERT(network_->is_disconnected(id),
                     "restart_at: process never crashed");
      // Crash-recovery loses volatile state: the old instance is replaced
      // by a factory-fresh one (the in-flight network handler reads
      // processes_[id] at delivery time, so no re-attach is needed), the
      // network re-admits it, and it start()s from scratch. Everything it
      // knew must come back through catch-up or snapshot transfer.
      network_->reconnect(id);
      build_process(id);
      processes_[id]->start();
    });
  }

  for (ProcessId id = 0; id < n; ++id) {
    if (processes_[id]) {
      sched_.schedule_at(0, [this, id] { processes_[id]->start(); });
    }
  }
}

void Cluster::build_process(ProcessId id) {
  auto record_decision = [this](ProcessId pid,
                                const consensus::DecisionRecord& record) {
    decisions_.push_back(Decision{pid, record.value, record.view, sched_.now(),
                                  record.via_slow_path});
  };
  ProcessContext ctx{options_.cfg, id,        inputs_[id], network_.get(),
                     keys_,        leader_of_, &sched_};
  nodes_[id] = nullptr;
  if (factories_[id]) {
    processes_[id] = factories_[id](ctx);
  } else if (options_.node_factory) {
    processes_[id] = options_.node_factory(ctx, options_.node, record_decision);
  } else {
    auto node = std::make_unique<Node>(options_.cfg, id, inputs_[id],
                                       *network_, keys_, leader_of_,
                                       options_.node, record_decision);
    nodes_[id] = node.get();
    processes_[id] = std::move(node);
  }
}

bool Cluster::run_until_all_correct_decided(TimePoint limit) {
  FASTBFT_ASSERT(started_, "start() the cluster first");
  while (sched_.now() <= limit) {
    if (all_correct_decided()) return true;
    if (!sched_.step()) break;
  }
  return all_correct_decided();
}

void Cluster::run_until(TimePoint limit) {
  FASTBFT_ASSERT(started_, "start() the cluster first");
  sched_.run_until(limit);
}

std::optional<Decision> Cluster::decision_of(ProcessId id) const {
  for (const auto& d : decisions_) {
    if (d.pid == id) return d;
  }
  return std::nullopt;
}

bool Cluster::agreement() const {
  const Value* first = nullptr;
  for (const auto& d : decisions_) {
    if (faulty_[d.pid]) continue;
    if (!first) {
      first = &d.value;
    } else if (*first != d.value) {
      return false;
    }
  }
  return true;
}

bool Cluster::all_correct_decided() const {
  std::uint32_t correct_total = 0;
  for (ProcessId id = 0; id < options_.cfg.n; ++id) {
    if (!faulty_[id]) ++correct_total;
  }
  std::uint32_t decided = 0;
  for (const auto& d : decisions_) {
    if (!faulty_[d.pid]) ++decided;
  }
  return decided == correct_total;
}

bool Cluster::decided_value_is_some_input() const {
  for (const auto& d : decisions_) {
    if (faulty_[d.pid]) continue;
    bool found = false;
    for (const auto& input : inputs_) {
      if (input == d.value) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

double Cluster::max_decision_delays() const {
  TimePoint latest = 0;
  for (const auto& d : decisions_) {
    if (!faulty_[d.pid]) latest = std::max(latest, d.time);
  }
  return static_cast<double>(latest) /
         static_cast<double>(options_.net.delta);
}

std::uint32_t Cluster::num_faulty() const {
  std::uint32_t count = 0;
  for (bool b : faulty_) {
    if (b) ++count;
  }
  return count;
}

Node* Cluster::node(ProcessId id) {
  FASTBFT_ASSERT(id < options_.cfg.n, "process id out of range");
  return nodes_[id];
}

}  // namespace fastbft::runtime
