#pragma once

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>

#include "consensus/replica.hpp"
#include "net/threaded_network.hpp"

/// \file threaded_cluster.hpp
/// Runs the unmodified consensus::Replica over real OS threads and
/// wall-clock time (net::ThreadedNetwork). Used by the threaded tests,
/// the realtime example and the wall-clock latency benchmark.
///
/// Each replica's messages are processed exclusively on its own delivery
/// thread; the only cross-thread state is the decision ledger, guarded by
/// a mutex. This cluster deliberately runs WITHOUT a view synchronizer,
/// so it exercises the fast and slow paths in isolation: a dead leader
/// means no decision, which the tests assert via timeout. For wall-clock
/// runs with timers, view changes and a replicated log, see
/// runtime::ThreadedSmrCluster (the full engine over the same transport).

namespace fastbft::runtime {

class ThreadedCluster {
 public:
  ThreadedCluster(consensus::QuorumConfig cfg, std::vector<Value> inputs,
                  consensus::ReplicaOptions options = {},
                  std::uint64_t key_seed = 42);
  ~ThreadedCluster();

  ThreadedCluster(const ThreadedCluster&) = delete;
  ThreadedCluster& operator=(const ThreadedCluster&) = delete;

  /// Fail-stop a process (before or after start). Marks it faulty for the
  /// wait/agreement accounting.
  void crash(ProcessId id);

  /// Seeds the leader's proposal into the inboxes, then spawns the
  /// delivery threads.
  void start();

  /// Blocks until every non-crashed process decided, or the timeout
  /// elapses. Returns true on success.
  bool wait_all_correct_decided(std::chrono::milliseconds timeout);

  /// Thread-safe snapshot of (pid -> decision).
  std::map<ProcessId, consensus::DecisionRecord> decisions() const;

  /// True iff all recorded decisions (of correct processes) agree.
  bool agreement() const;

  std::uint64_t delivered_messages() const { return net_.delivered_count(); }

 private:
  consensus::QuorumConfig cfg_;
  net::ThreadedNetwork net_;
  std::shared_ptr<const crypto::KeyStore> keys_;
  std::vector<std::unique_ptr<net::ThreadedEndpoint>> endpoints_;
  std::vector<std::unique_ptr<consensus::Replica>> replicas_;
  std::vector<bool> faulty_;

  mutable std::mutex mutex_;
  std::condition_variable decided_cv_;
  std::map<ProcessId, consensus::DecisionRecord> decisions_;
  bool started_ = false;
};

}  // namespace fastbft::runtime
