#pragma once

#include "common/bytes.hpp"
#include "common/types.hpp"

/// \file process.hpp
/// Minimal interface every simulated process implements — honest nodes and
/// Byzantine behaviours alike. The cluster runner only knows this surface.

namespace fastbft::runtime {

class IProcess {
 public:
  virtual ~IProcess() = default;

  /// Called once at simulation time 0.
  virtual void start() = 0;

  /// Called for every delivered message. `from` is the authenticated
  /// channel identity.
  virtual void on_message(ProcessId from, const Bytes& payload) = 0;
};

}  // namespace fastbft::runtime
