#pragma once

#include <memory>

#include "consensus/replica.hpp"
#include "net/sim_network.hpp"
#include "runtime/process.hpp"
#include "viewsync/synchronizer.hpp"

/// \file node.hpp
/// An honest process: the consensus replica plus the view synchronizer,
/// sharing one network endpoint. Messages are dispatched by tag byte; a
/// replica decision stops the synchronizer (single-shot consensus has
/// nothing further to synchronize).
///
/// The synchronizer's timers go through the sim::TimerService interface:
/// a standalone node arms them on the scheduler directly, while the
/// pipelined SMR engine (src/engine) runs many per-slot synchronizers off
/// one engine-scoped engine::TimerWheel instead of one timer object per
/// slot.

namespace fastbft::runtime {

struct NodeOptions {
  consensus::ReplicaOptions replica;
  viewsync::SynchronizerConfig sync;
};

class Node final : public IProcess {
 public:
  using DecideCallback =
      std::function<void(ProcessId, const consensus::DecisionRecord&)>;

  Node(consensus::QuorumConfig cfg, ProcessId id, Value input,
       net::SimNetwork& network,
       std::shared_ptr<const crypto::KeyStore> keys,
       consensus::LeaderFn leader_of, NodeOptions options,
       DecideCallback on_decide);

  void start() override;
  void on_message(ProcessId from, const Bytes& payload) override;

  consensus::Replica& replica() { return replica_; }
  const consensus::Replica& replica() const { return replica_; }
  viewsync::Synchronizer& synchronizer() { return sync_; }

 private:
  std::unique_ptr<net::SimEndpoint> endpoint_;
  consensus::Replica replica_;
  viewsync::Synchronizer sync_;
};

}  // namespace fastbft::runtime
