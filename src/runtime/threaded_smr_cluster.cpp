#include "runtime/threaded_smr_cluster.hpp"

#include "common/assert.hpp"

namespace fastbft::runtime {

ThreadedSmrCluster::ThreadedSmrCluster(consensus::QuorumConfig cfg,
                                       ThreadedSmrClusterOptions options)
    : cfg_(cfg),
      options_(std::move(options)),
      net_(cfg.n, net::ThreadedNetworkConfig{options_.link_delay}),
      keys_(std::make_shared<const crypto::KeyStore>(options_.key_seed,
                                                     cfg.n)),
      applied_count_(cfg.n, 0),
      applied_slots_(cfg.n),
      faulty_(cfg.n, false) {
  auto leader_of = consensus::round_robin_leader(cfg.n);
  smr::SmrOptions smr_options = options_.smr;
  smr_options.node.sync.base_timeout = options_.sync_base_timeout_us;

  for (ProcessId id = 0; id < cfg.n; ++id) {
    hosts_.push_back(std::make_unique<engine::ThreadedHost>(net_, id));
    engine::EngineContext ectx{cfg, id, keys_, leader_of,
                               /*stats=*/nullptr};
    nodes_.push_back(std::make_unique<smr::SmrNode>(
        *hosts_.back(), std::move(ectx), net_.endpoint(id), smr_options,
        [this](ProcessId pid, Slot slot, const std::vector<smr::Command>&
                                             commands) {
          std::lock_guard<std::mutex> lock(mutex_);
          applied_count_[pid] += commands.size();
          applied_slots_[pid].push_back(slot);
          applied_cv_.notify_all();
        }));
    net_.attach(id, [this, id](ProcessId from, const Bytes& payload) {
      nodes_[id]->on_message(from, payload);
    });
  }
}

ThreadedSmrCluster::~ThreadedSmrCluster() { stop(); }

void ThreadedSmrCluster::crash(ProcessId id) {
  FASTBFT_ASSERT(id < cfg_.n, "crash: id out of range");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    faulty_[id] = true;
    applied_cv_.notify_all();
  }
  net_.disconnect(id);
}

void ThreadedSmrCluster::start() {
  FASTBFT_ASSERT(!started_, "already started");
  started_ = true;
  // Seed while no delivery thread runs: the initial slot windows open,
  // proposals queue into the inboxes and view-1 timers arm, all
  // single-threaded. Crashed-before-start processes are seeded too; their
  // traffic and timers are simply never serviced.
  for (auto& node : nodes_) {
    node->start();
  }
  net_.start();
}

void ThreadedSmrCluster::stop() {
  net_.stop();
  stopped_ = true;
}

void ThreadedSmrCluster::submit(const smr::Command& cmd, ProcessId gateway) {
  FASTBFT_ASSERT(gateway < cfg_.n, "submit: gateway out of range");
  if (!started_) {
    // Synchronous pre-start injection into every pending queue, so the
    // first window's proposals already carry real batches instead of
    // noops (exactly what SMR_REQUEST broadcast would deliver, minus the
    // wire hop).
    Bytes payload = smr::SmrNode::encode_request(cmd);
    for (auto& node : nodes_) {
      node->on_message(gateway, payload);
    }
    return;
  }
  nodes_[gateway]->submit(cmd);
}

bool ThreadedSmrCluster::wait_applied(std::uint64_t commands,
                                      std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  return applied_cv_.wait_for(lock, timeout, [&] {
    for (ProcessId id = 0; id < cfg_.n; ++id) {
      if (faulty_[id]) continue;
      if (applied_count_[id] < commands) return false;
    }
    return true;
  });
}

std::uint64_t ThreadedSmrCluster::applied_commands(ProcessId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return applied_count_[id];
}

std::vector<Slot> ThreadedSmrCluster::applied_slots(ProcessId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return applied_slots_[id];
}

bool ThreadedSmrCluster::is_faulty(ProcessId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faulty_[id];
}

bool ThreadedSmrCluster::correct_stores_agree() const {
  FASTBFT_ASSERT(stopped_, "store introspection only after stop()");
  const smr::KvStore* first = nullptr;
  for (ProcessId id = 0; id < cfg_.n; ++id) {
    if (faulty_[id]) continue;
    if (first == nullptr) {
      first = &nodes_[id]->store();
    } else if (nodes_[id]->store().state_digest() !=
               first->state_digest()) {
      return false;
    }
  }
  return true;
}

}  // namespace fastbft::runtime
