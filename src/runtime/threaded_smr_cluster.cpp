#include "runtime/threaded_smr_cluster.hpp"

#include <algorithm>
#include <optional>

#include "common/assert.hpp"

namespace fastbft::runtime {

ThreadedSmrCluster::ThreadedSmrCluster(consensus::QuorumConfig cfg,
                                       ThreadedSmrClusterOptions options)
    : cfg_(cfg),
      options_(std::move(options)),
      net_(cfg.n, net::ThreadedNetworkConfig{options_.link_delay},
           options_.num_clients),
      keys_(std::make_shared<const crypto::KeyStore>(options_.key_seed,
                                                     cfg.n)),
      leader_of_(consensus::round_robin_leader(cfg.n)),
      smr_options_(options_.smr),
      applied_count_(cfg.n, std::vector<std::uint64_t>(
                                std::max(1u, options_.smr.num_groups), 0)),
      applied_slots_(cfg.n,
                     std::vector<std::vector<Slot>>(
                         std::max(1u, options_.smr.num_groups))),
      snapshot_installs_(cfg.n, 0),
      faulty_(cfg.n, false) {
  smr_options_.node.sync.base_timeout = options_.sync_base_timeout_us;
  smr_options_.num_clients = options_.num_clients;

  for (ProcessId id = 0; id < cfg.n; ++id) {
    hosts_.push_back(std::make_unique<engine::ThreadedHost>(net_, id));
    nodes_.push_back(make_node(id));
    stats_nodes_.push_back(nodes_.back().get());
    // The handler reads nodes_[id] at delivery time, so restart() can swap
    // in a fresh node (on this same delivery thread) without re-attaching.
    net_.attach(id, [this, id](ProcessId from, const Bytes& payload) {
      nodes_[id]->on_message(from, payload);
    });
  }
}

std::unique_ptr<smr::SmrNode> ThreadedSmrCluster::make_node(ProcessId id) {
  engine::EngineContext ectx{cfg_, id, keys_, leader_of_, /*group=*/0,
                             /*stats=*/nullptr, /*verify_cache=*/nullptr};
  auto node = std::make_unique<smr::SmrNode>(
      *hosts_[id], std::move(ectx), net_.endpoint(id), smr_options_,
      [this](ProcessId pid, GroupId group, Slot slot,
             const std::vector<smr::Command>& commands) {
        std::lock_guard<std::mutex> lock(mutex_);
        applied_count_[pid][group] += commands.size();
        applied_slots_[pid][group].push_back(slot);
        applied_cv_.notify_all();
      });
  node->set_install_callback(
      [this](ProcessId pid, GroupId group, const smr::Snapshot& snap) {
        std::lock_guard<std::mutex> lock(mutex_);
        // The snapshot subsumes every command below its boundary in this
        // group; the commit callback keeps adding the slots applied after
        // it.
        applied_count_[pid][group] =
            std::max(applied_count_[pid][group], snap.applied_commands);
        ++snapshot_installs_[pid];
        applied_cv_.notify_all();
      });
  return node;
}

ThreadedSmrCluster::~ThreadedSmrCluster() { stop(); }

void ThreadedSmrCluster::crash(ProcessId id) {
  FASTBFT_ASSERT(id < cfg_.n, "crash: id out of range");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    faulty_[id] = true;
    applied_cv_.notify_all();
  }
  net_.disconnect(id);
}

void ThreadedSmrCluster::restart(ProcessId id) {
  FASTBFT_ASSERT(id < cfg_.n, "restart: id out of range");
  FASTBFT_ASSERT(started_ && !stopped_, "restart: only mid-run");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FASTBFT_ASSERT(faulty_[id], "restart: process never crashed");
    // The fresh incarnation's log starts empty; it re-earns its applied
    // count through snapshot install + catch-up, and from here on the
    // wait/agreement accounting holds it to the correct-replica bar.
    for (auto& count : applied_count_[id]) count = 0;
    for (auto& slots : applied_slots_[id]) slots.clear();
    faulty_[id] = false;
  }
  // The swap, the reconnect and start() all run on `id`'s own delivery
  // thread: the old node is destroyed where its timers live (same-thread
  // contract), and no message can reach the fresh node before it exists.
  // While still disconnected the worker only runs posted tasks, so the
  // reconnect-inside-the-task ordering is race-free.
  net_.post(id, [this, id] {
    auto fresh = make_node(id);
    {
      // Republish the stats pointer BEFORE destroying the old node:
      // engine_stats() dereferences stats_nodes_[id] under this mutex, so
      // once the lock is released no reader can still hold the old node.
      std::lock_guard<std::mutex> lock(mutex_);
      stats_nodes_[id] = fresh.get();
    }
    nodes_[id] = std::move(fresh);
    net_.reconnect(id);
    nodes_[id]->start();
  });
}

void ThreadedSmrCluster::start() {
  FASTBFT_ASSERT(!started_, "already started");
  started_ = true;
  // Seed while no delivery thread runs: the initial slot windows open,
  // proposals queue into the inboxes and view-1 timers arm, all
  // single-threaded. Crashed-before-start processes are seeded too; their
  // traffic and timers are simply never serviced.
  for (auto& node : nodes_) {
    node->start();
  }
  net_.start();
}

void ThreadedSmrCluster::stop() {
  net_.stop();
  stopped_ = true;
}

void ThreadedSmrCluster::submit(const smr::Command& cmd, ProcessId gateway) {
  FASTBFT_ASSERT(gateway < cfg_.n, "submit: gateway out of range");
  if (!started_) {
    // Synchronous pre-start injection into every pending queue, so the
    // first window's proposals already carry real batches instead of
    // noops (exactly what SMR_REQUEST broadcast would deliver, minus the
    // wire hop).
    Bytes payload = smr::SmrNode::encode_request(cmd);
    for (auto& node : nodes_) {
      node->on_message(gateway, payload);
    }
    return;
  }
  nodes_[gateway]->submit(cmd);
}

bool ThreadedSmrCluster::wait_applied(std::uint64_t commands,
                                      std::chrono::milliseconds timeout) {
  auto total = [&](ProcessId id) {
    std::uint64_t sum = 0;
    for (std::uint64_t count : applied_count_[id]) sum += count;
    return sum;
  };
  std::unique_lock<std::mutex> lock(mutex_);
  return applied_cv_.wait_for(lock, timeout, [&] {
    for (ProcessId id = 0; id < cfg_.n; ++id) {
      if (faulty_[id]) continue;
      if (total(id) < commands) return false;
    }
    return true;
  });
}

std::uint64_t ThreadedSmrCluster::applied_commands(ProcessId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t sum = 0;
  for (std::uint64_t count : applied_count_[id]) sum += count;
  return sum;
}

std::vector<Slot> ThreadedSmrCluster::applied_slots(ProcessId id,
                                                    GroupId group) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return applied_slots_[id][group];
}

bool ThreadedSmrCluster::is_faulty(ProcessId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faulty_[id];
}

std::uint64_t ThreadedSmrCluster::snapshots_installed(ProcessId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_installs_[id];
}

smr::SmrNode::EngineStats ThreadedSmrCluster::engine_stats(
    ProcessId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_nodes_[id]->engine_stats();
}

bool ThreadedSmrCluster::correct_stores_agree() const {
  FASTBFT_ASSERT(stopped_, "store introspection only after stop()");
  std::optional<crypto::Digest> first;
  for (ProcessId id = 0; id < cfg_.n; ++id) {
    if (faulty_[id]) continue;
    crypto::Digest digest = nodes_[id]->state_digest();
    if (!first) {
      first = digest;
    } else if (digest != *first) {
      return false;
    }
  }
  return true;
}

}  // namespace fastbft::runtime
