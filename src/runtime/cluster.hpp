#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "runtime/node.hpp"

/// \file cluster.hpp
/// Scenario runner: builds a full simulated cluster (scheduler, network,
/// key material, processes), runs it and checks the consensus properties.
/// All tests, benchmarks and examples drive the system through this class.

namespace fastbft::runtime {

/// Context handed to custom (usually Byzantine) process factories.
struct ProcessContext {
  consensus::QuorumConfig cfg;
  ProcessId id = kNoProcess;
  Value input;
  net::SimNetwork* network = nullptr;
  std::shared_ptr<const crypto::KeyStore> keys;
  consensus::LeaderFn leader_of;
  sim::Scheduler* scheduler = nullptr;
};

using ProcessFactory =
    std::function<std::unique_ptr<IProcess>(const ProcessContext&)>;

/// Factory for the *default* (honest) process type; overriding it runs a
/// different protocol (PBFT / FaB baselines) under the identical harness.
using NodeFactory = std::function<std::unique_ptr<IProcess>(
    const ProcessContext&, const NodeOptions&, Node::DecideCallback)>;

struct ClusterOptions {
  consensus::QuorumConfig cfg;
  net::SimNetworkConfig net;
  NodeOptions node;
  std::uint64_t key_seed = 42;

  /// Client endpoints attached to the network beyond the cfg.n replicas
  /// (ids cfg.n .. cfg.n + extra - 1). The cluster itself never touches
  /// them; the service facade (smr::Service) hangs client sessions off
  /// them. See net::SimNetwork.
  std::uint32_t extra_endpoints = 0;

  /// Defaults to this paper's protocol (runtime::Node).
  NodeFactory node_factory;
};

struct Decision {
  ProcessId pid = kNoProcess;
  Value value;
  View view = kNoView;
  TimePoint time = 0;
  bool via_slow_path = false;
};

class Cluster {
 public:
  /// `inputs` must have exactly cfg.n entries (the initial configuration I
  /// of the paper's model).
  Cluster(ClusterOptions options, std::vector<Value> inputs);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- Pre-start configuration ----------------------------------------------

  /// Replaces process `id` with a custom (Byzantine) behaviour. Marks it
  /// faulty for the purposes of the correctness checks.
  void replace_process(ProcessId id, ProcessFactory factory);

  /// Fail-stop fault: process `id` is cut from the network at `at`
  /// (messages already in flight still arrive — the paper's crash-at-Delta
  /// executions). Marks it faulty.
  void crash_at(ProcessId id, TimePoint at);

  /// Crash-recovery: at `at`, process `id` rejoins the network as a FRESH
  /// instance (rebuilt through the same factory path, with none of its
  /// pre-crash volatile state) and start()s again. Pair with an earlier
  /// crash_at for the same id. Recovering the lost state is the protocol's
  /// job — the SMR stack does it via decided-value catch-up and KV
  /// snapshot state transfer (docs/CATCHUP.md). The process stays counted
  /// as faulty: it did crash in this execution, and the paper's resilience
  /// accounting (and this harness's correctness checks) treat
  /// crash-recovery as a fault.
  void restart_at(ProcessId id, TimePoint at);

  /// Marks a process faulty without altering it (e.g. when the test drives
  /// misbehaviour through a network script).
  void mark_faulty(ProcessId id);

  // --- Mid-run fault injection (after start(), between scheduler steps) ------

  /// Fail-stop `id` immediately: cut from the network and marked faulty.
  /// The driver-side sibling of crash_at for scenarios decided while the
  /// run is already in flight (e.g. a service crashing a gateway).
  void crash_now(ProcessId id);

  /// Crash-recovery, immediately: `id` (previously crashed) rejoins as a
  /// factory-fresh instance and start()s — the mid-run sibling of
  /// restart_at, with the same semantics (state recovery is the
  /// protocol's job; the process stays counted as faulty).
  void restart_now(ProcessId id);

  /// Installs an exact delivery schedule (see net::SimNetwork).
  void set_network_script(net::SimNetwork::DeliveryScript script);

  // --- Execution -------------------------------------------------------------

  /// Instantiates processes and calls start() on each at time 0.
  void start();

  /// Runs until every correct process decided, or simulated time exceeds
  /// `limit`. Returns true on success.
  bool run_until_all_correct_decided(TimePoint limit);

  /// Runs the scheduler until `limit` regardless of decisions.
  void run_until(TimePoint limit);

  // --- Results ----------------------------------------------------------------

  const std::vector<Decision>& decisions() const { return decisions_; }
  std::optional<Decision> decision_of(ProcessId id) const;

  /// Consistency: no two correct processes decided different values.
  bool agreement() const;

  /// All correct processes decided.
  bool all_correct_decided() const;

  /// Extended validity precondition helper: the decided value is one of the
  /// inputs (meaningful when all processes are correct).
  bool decided_value_is_some_input() const;

  /// Latest decision time among correct processes, in Delta units
  /// (rounded up). The headline "two message delays" metric.
  double max_decision_delays() const;

  bool is_faulty(ProcessId id) const { return faulty_[id]; }
  std::uint32_t num_faulty() const;

  sim::Scheduler& scheduler() { return sched_; }
  net::SimNetwork& network() { return *network_; }
  const consensus::QuorumConfig& config() const { return options_.cfg; }
  std::shared_ptr<const crypto::KeyStore> keys() const { return keys_; }
  const consensus::LeaderFn& leader_fn() const { return leader_of_; }

  /// The honest node at `id`; null if the process was replaced.
  Node* node(ProcessId id);

 private:
  /// (Re)builds process `id` through its configured factory path and
  /// installs it in processes_/nodes_. Used at start() and by restart_at.
  void build_process(ProcessId id);

  ClusterOptions options_;
  std::vector<Value> inputs_;

  sim::Scheduler sched_;
  std::unique_ptr<net::SimNetwork> network_;
  std::shared_ptr<const crypto::KeyStore> keys_;
  consensus::LeaderFn leader_of_;

  std::vector<ProcessFactory> factories_;
  std::vector<std::unique_ptr<IProcess>> processes_;
  std::vector<Node*> nodes_;  // non-null only for honest default nodes
  std::vector<bool> faulty_;
  std::vector<std::pair<ProcessId, TimePoint>> scheduled_crashes_;
  std::vector<std::pair<ProcessId, TimePoint>> scheduled_restarts_;

  std::vector<Decision> decisions_;
  bool started_ = false;
};

}  // namespace fastbft::runtime
