#pragma once

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <vector>

#include "engine/threaded_host.hpp"
#include "smr/smr_node.hpp"

/// \file threaded_smr_cluster.hpp
/// Pipelined, leader-rotating, view-changing state machine replication
/// over real OS threads and wall-clock time: the host-agnostic SMR engine
/// (engine::SlotMux and friends) running on one engine::ThreadedHost per
/// process. Each process's consensus instances, view synchronizers and
/// timers all execute on its single ThreadedNetwork delivery thread, so
/// protocol code is identical to the simulator runs — only the Host
/// changes.
///
/// Unlike runtime::ThreadedCluster (single-shot, no clock source, fast
/// path only), this cluster has wall-clock timers, so a crashed leader is
/// survived by view change exactly as on the simulator — just with real
/// microseconds instead of scripted Delta.
///
/// Threading model: delivery threads run the nodes; the driver thread
/// (tests/benchmarks) only touches the thread-safe surface — submit(),
/// crash(), wait_*(), and the snapshot accessors. Per-node engine/KV
/// introspection (node(), digests) is safe only before start() or after
/// stop(), when no delivery thread is running.

namespace fastbft::runtime {

struct ThreadedSmrClusterOptions {
  smr::SmrOptions smr;

  /// Fixed one-way delivery delay between distinct processes — models a
  /// LAN link so wall-clock pipelining numbers measure protocol overlap,
  /// not mutex turnaround.
  std::chrono::microseconds link_delay{0};

  /// View-synchronizer base timeout in wall-clock microseconds (overrides
  /// smr.node.sync.base_timeout, whose simulator-tick default of 1200 is
  /// meaningless on this host). Must comfortably exceed a few slot
  /// round-trips, including sanitizer slowdowns.
  Duration sync_base_timeout_us = 25'000;

  /// Client endpoints beyond the n replicas (ids n .. n + clients - 1),
  /// each with its own delivery thread. Overrides smr.num_clients (the
  /// two must agree — replicas address replies by endpoint id). The
  /// service facade attaches smr::ClientSessions to them before start().
  std::uint32_t num_clients = 0;

  std::uint64_t key_seed = 42;
};

class ThreadedSmrCluster {
 public:
  ThreadedSmrCluster(consensus::QuorumConfig cfg,
                     ThreadedSmrClusterOptions options);
  ~ThreadedSmrCluster();

  ThreadedSmrCluster(const ThreadedSmrCluster&) = delete;
  ThreadedSmrCluster& operator=(const ThreadedSmrCluster&) = delete;

  /// Fail-stop a process, before or mid-run. Marks it faulty for the
  /// wait/agreement accounting. Thread-safe.
  void crash(ProcessId id);

  /// Crash-recovery, mid-run: a previously crash()ed process rejoins as a
  /// FRESH SmrNode with empty volatile state — recovering it is the
  /// protocol's job (decided-value catch-up, and KV snapshot state
  /// transfer once snapshot_interval is set; docs/CATCHUP.md). Clears the
  /// faulty mark, so wait_applied() and correct_stores_agree() hold the
  /// rejoined replica to the same bar as everyone else. The node swap and
  /// start() run on the process's own delivery thread (via
  /// ThreadedNetwork::post) to honour the same-thread timer contract.
  /// Thread-safe.
  void restart(ProcessId id);

  /// Opens every node's initial slot window (single-threaded seeding),
  /// then spawns the delivery threads.
  void start();

  /// Joins all delivery threads. Called by the destructor; after it the
  /// per-node accessors are safe again.
  void stop();

  /// Client entry point. Before start(): injected synchronously into every
  /// node's pending queue (single-threaded). After: broadcast as an
  /// SMR_REQUEST from `gateway`'s endpoint (thread-safe; a crashed gateway
  /// drops the request).
  void submit(const smr::Command& cmd, ProcessId gateway = 0);

  /// Blocks until every non-crashed process applied >= `commands`
  /// commands, or the timeout elapses. Returns true on success.
  bool wait_applied(std::uint64_t commands,
                    std::chrono::milliseconds timeout);

  // --- Thread-safe snapshots -------------------------------------------------

  /// Applied commands summed over every group this process hosts.
  std::uint64_t applied_commands(ProcessId id) const;

  /// Slots in the order this process applied them in `group` (the
  /// in-order-apply property holds iff this is 1, 2, 3, ... per group).
  std::vector<Slot> applied_slots(ProcessId id, GroupId group = 0) const;

  bool is_faulty(ProcessId id) const;
  std::uint64_t delivered_messages() const { return net_.delivered_count(); }
  std::uint64_t timers_fired() const { return net_.timers_fired(); }

  /// Snapshots this process installed via state transfer (counted across
  /// restarts).
  std::uint64_t snapshots_installed(ProcessId id) const;

  /// Live engine observability (effective depth/batch, adaptive backoffs,
  /// reorder high-water) for a running process. Reads relaxed atomics
  /// through a mutex_-guarded node pointer, so it is safe concurrently
  /// with delivery threads AND with restart() (which republishes the
  /// pointer under the same mutex). A crashed process reports its last
  /// incarnation's values.
  smr::SmrNode::EngineStats engine_stats(ProcessId id) const;

  // --- Pre-start / post-stop introspection ----------------------------------

  /// The node itself (engine window, catch-up policy, KV store). Only
  /// while no delivery thread runs.
  smr::SmrNode& node(ProcessId id) { return *nodes_[id]; }
  const smr::SmrNode& node(ProcessId id) const { return *nodes_[id]; }

  /// True iff every correct process's cross-group state digest is
  /// identical. Meaningful after a successful wait_applied (all correct
  /// processes applied the same command set); only valid after stop().
  bool correct_stores_agree() const;

  const consensus::QuorumConfig& config() const { return cfg_; }

  /// The transport (client endpoint attachment, introspection). Client
  /// handlers must be attached before start().
  net::ThreadedNetwork& net() { return net_; }

  /// Cluster key material (client sessions verify reply signatures).
  std::shared_ptr<const crypto::KeyStore> keys() const { return keys_; }

 private:
  /// Builds a fresh SmrNode for `id` (constructor only — no timers armed,
  /// so it is safe on the setup thread and on the delivery thread alike).
  std::unique_ptr<smr::SmrNode> make_node(ProcessId id);

  consensus::QuorumConfig cfg_;
  ThreadedSmrClusterOptions options_;
  net::ThreadedNetwork net_;
  std::shared_ptr<const crypto::KeyStore> keys_;
  consensus::LeaderFn leader_of_;
  smr::SmrOptions smr_options_;  // resolved (wall-clock sync timeout applied)
  std::vector<std::unique_ptr<engine::ThreadedHost>> hosts_;
  std::vector<std::unique_ptr<smr::SmrNode>> nodes_;

  mutable std::mutex mutex_;
  std::condition_variable applied_cv_;
  /// Per-process, per-group applied-command counts ([id][group]); totals
  /// are summed on read so multi-group snapshot installs (which reset one
  /// group's count, not the node's) stay correct.
  std::vector<std::vector<std::uint64_t>> applied_count_;
  /// Per-process, per-group applied slot order ([id][group]).
  std::vector<std::vector<std::vector<Slot>>> applied_slots_;
  std::vector<std::uint64_t> snapshot_installs_;
  std::vector<bool> faulty_;
  /// nodes_[id] raw pointers republished under mutex_: nodes_ itself is
  /// only touched on delivery threads mid-run (restart swap), so the
  /// stats reader needs its own synchronized view of the live node.
  std::vector<smr::SmrNode*> stats_nodes_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace fastbft::runtime
