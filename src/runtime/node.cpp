#include "runtime/node.hpp"

#include "net/tags.hpp"

namespace fastbft::runtime {

namespace {
viewsync::SynchronizerConfig with_f(viewsync::SynchronizerConfig sync,
                                    std::uint32_t f) {
  sync.f = f;
  return sync;
}
}  // namespace

Node::Node(consensus::QuorumConfig cfg, ProcessId id, Value input,
           net::SimNetwork& network,
           std::shared_ptr<const crypto::KeyStore> keys,
           consensus::LeaderFn leader_of, NodeOptions options,
           DecideCallback on_decide)
    : endpoint_(network.endpoint(id)),
      replica_(
          cfg, id, std::move(input), *endpoint_, crypto::Signer(keys, id),
          crypto::Verifier(keys), leader_of,
          [this, id, cb = std::move(on_decide)](
              const consensus::DecisionRecord& record) {
            sync_.stop();
            if (cb) cb(id, record);
          },
          options.replica),
      sync_(with_f(options.sync, cfg.f), id, *endpoint_, network.scheduler(),
            [this](View v) { replica_.enter_view(v); }) {}

void Node::start() {
  sync_.start();
  replica_.start();
}

void Node::on_message(ProcessId from, const Bytes& payload) {
  if (!payload.empty() && payload[0] == net::tags::kWish) {
    sync_.on_message(from, payload);
    return;
  }
  replica_.on_message(from, payload);
}

}  // namespace fastbft::runtime
