#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "consensus/config.hpp"
#include "consensus/types.hpp"
#include "crypto/signer.hpp"
#include "engine/socket_host.hpp"
#include "net/socket_network.hpp"
#include "smr/session.hpp"
#include "smr/smr_node.hpp"

/// \file socket_smr.hpp
/// Multi-process SMR runtime over net::SocketNetwork: one SocketSmrServer
/// hosts ONE replica in the calling process; one SocketSmrClient hosts K
/// client sessions. Every process derives identical key material from the
/// shared `key_seed` (crypto::KeyStore is deterministic), so signatures
/// verify across process boundaries without any key exchange.
///
/// This mirrors runtime::ThreadedSmrCluster's wiring exactly — same
/// EngineContext, same seeding order (node->start() before net.start(),
/// while no loop thread runs), same commit-callback accounting — the only
/// difference is that the transport's other endpoints live in other
/// OS processes. Used by tools/smr_server, tools/smr_client and bench E15.

namespace fastbft::runtime {

/// Shared cluster topology: every server and client process must be
/// constructed from an identical copy of this (flags or fork).
struct SocketClusterConfig {
  consensus::QuorumConfig cfg;
  /// Client endpoint ids are cfg.n .. cfg.n + num_clients - 1, across
  /// ALL client processes combined.
  std::uint32_t num_clients = 0;
  std::uint64_t key_seed = 42;
  Duration sync_base_timeout_us = 25'000;
  smr::SmrOptions smr;
  /// Address table for every id (replicas then clients); clients have no
  /// listen address. Size must be cfg.n + num_clients.
  std::vector<net::SocketPeer> peers;
  net::LinkPolicyOptions link;
  /// Emulated one-way link latency (net::SocketNetworkConfig::tx_delay_us);
  /// 0 = raw loopback. Must match across every process in the cluster.
  Duration tx_delay_us = 0;
};

/// One replica process.
class SocketSmrServer {
 public:
  SocketSmrServer(SocketClusterConfig config, ProcessId id);
  ~SocketSmrServer();

  SocketSmrServer(const SocketSmrServer&) = delete;
  SocketSmrServer& operator=(const SocketSmrServer&) = delete;

  void start();
  void stop();

  ProcessId id() const { return id_; }

  /// Commands applied by this replica (all groups; thread-safe).
  std::uint64_t applied_commands() const { return applied_.load(); }
  std::uint64_t snapshots_installed() const {
    return snapshot_installs_.load();
  }

  /// Engine gauges (relaxed atomics inside SmrNode; thread-safe).
  smr::SmrNode::EngineStats engine_stats() const {
    return node_->engine_stats();
  }

  net::SocketCounters socket_stats() const { return net_.stats(); }

  /// The SIGTERM dump: per-link socket counters plus engine gauges.
  std::string stats_summary() const;

 private:
  SocketClusterConfig config_;
  ProcessId id_;
  net::SocketNetwork net_;
  std::shared_ptr<const crypto::KeyStore> keys_;
  consensus::LeaderFn leader_of_;
  std::unique_ptr<engine::SocketHost> host_;
  std::unique_ptr<smr::SmrNode> node_;
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> snapshot_installs_{0};
  bool started_ = false;
};

/// Per-process client options on top of the shared cluster config.
struct SocketClientOptions {
  /// First endpoint id hosted by this process (>= cfg.n).
  ProcessId first_client_id = 0;
  /// Sessions hosted by this process (ids first_client_id .. +sessions-1).
  std::uint32_t sessions = 1;
  std::uint32_t num_shards = 1;
  Duration request_timeout_us = 100'000;
  Duration request_deadline_us = 0;
  std::uint32_t max_in_flight = 8;
};

/// One client process hosting K sessions, each with its own endpoint id,
/// socket loop thread and engine host (same shape as smr::Service's
/// threaded mode). Typed ops on session(k) are thread-safe.
class SocketSmrClient {
 public:
  SocketSmrClient(SocketClusterConfig config, SocketClientOptions options);
  ~SocketSmrClient();

  SocketSmrClient(const SocketSmrClient&) = delete;
  SocketSmrClient& operator=(const SocketSmrClient&) = delete;

  void start();
  void stop();

  std::uint32_t sessions() const {
    return static_cast<std::uint32_t>(sessions_.size());
  }
  smr::ClientSession& session(std::uint32_t k) { return *sessions_[k]; }

  /// Sum of completed requests across sessions (thread-safe).
  std::uint64_t completed() const;
  std::uint64_t deadline_timeouts() const;

  net::SocketCounters socket_stats() const { return net_.stats(); }
  std::string stats_summary() const { return net_.stats_summary(); }

 private:
  SocketClusterConfig config_;
  SocketClientOptions options_;
  net::SocketNetwork net_;
  std::shared_ptr<const crypto::KeyStore> keys_;
  std::vector<std::unique_ptr<engine::SocketHost>> hosts_;
  std::vector<std::unique_ptr<smr::ClientSession>> sessions_;
  bool started_ = false;
};

/// Builds the SocketNetworkConfig shared by both runtimes.
net::SocketNetworkConfig make_socket_net_config(
    const SocketClusterConfig& config);

}  // namespace fastbft::runtime
