#pragma once

#include <memory>
#include <vector>

#include "consensus/messages.hpp"
#include "runtime/cluster.hpp"
#include "runtime/process.hpp"

/// \file behaviors.hpp
/// Reusable Byzantine process behaviours for fault-injection tests and
/// benchmarks. Each factory plugs into runtime::Cluster::replace_process.
///
/// None of these behaviours forge other processes' signatures — consistent
/// with the paper's computationally bounded adversary (and with the
/// simulation-signature substitution described in crypto/signer.hpp).

namespace fastbft::adversary {

/// A process that never sends anything (receives and discards). Weakest
/// Byzantine behaviour; distinct from a crash because it keeps its network
/// links alive.
runtime::ProcessFactory silent();

/// A leader that equivocates in view 1: proposes `value_a` to processes
/// with even ids and `value_b` to processes with odd ids (both correctly
/// signed — the paper's undeniable evidence of misbehaviour), acks both
/// values itself, then participates no further. Exercises the
/// equivocation branch of the selection algorithm in the ensuing view
/// change.
runtime::ProcessFactory equivocating_leader(Value value_a, Value value_b);

/// A process that acknowledges every proposal it sees, valid or not, in
/// every view, and sends votes for whatever it last saw. Amplifies
/// equivocation; never helps liveness.
runtime::ProcessFactory promiscuous_acker();

/// A process that runs the honest protocol but delays its own sending by
/// `lag` ticks (stale but correctly signed messages). Stresses the
/// buffering and view-scoping logic.
runtime::ProcessFactory laggard(Duration lag);

}  // namespace fastbft::adversary
