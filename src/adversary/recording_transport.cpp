#include "adversary/recording_transport.hpp"

#include <cinttypes>
#include <cstdio>

#include "net/tags.hpp"

namespace fastbft::adversary {

WireKind classify_payload(ByteView payload) {
  WireKind kind;
  if (payload.empty()) return kind;
  kind.tag = payload[0];
  if (kind.tag >= net::tags::kSmrWrapped &&
      kind.tag <= net::tags::kSmrSnapResponse && payload.size() >= 5) {
    kind.grouped = true;
    kind.group = static_cast<GroupId>(payload[1]) |
                 (static_cast<GroupId>(payload[2]) << 8) |
                 (static_cast<GroupId>(payload[3]) << 16) |
                 (static_cast<GroupId>(payload[4]) << 24);
  }
  return kind;
}

std::string tag_name(std::uint8_t tag) {
  using namespace net::tags;
  switch (tag) {
    case kPropose: return "PROPOSE";
    case kAck: return "ACK";
    case kAckSig: return "ACK_SIG";
    case kCommit: return "COMMIT";
    case kVote: return "VOTE";
    case kCertReq: return "CERT_REQ";
    case kCertAck: return "CERT_ACK";
    case kWish: return "WISH";
    case kSmrRequest: return "SMR_REQUEST";
    case kSmrWrapped: return "SMR_WRAPPED";
    case kSmrDecided: return "SMR_DECIDED";
    case kSmrSnapRequest: return "SMR_SNAP_REQ";
    case kSmrSnapResponse: return "SMR_SNAP_RESP";
    case kSmrReply: return "SMR_REPLY";
    default: {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "TAG_%02X", tag);
      return buf;
    }
  }
}

void EnvelopeLog::record(const net::Envelope& env, TimePoint sent,
                         TimePoint delivered) {
  ByteView payload = env.payload;
  RecordedEnvelope rec;
  rec.sent = sent;
  rec.delivered = delivered;
  rec.from = env.from;
  rec.to = env.to;
  rec.kind = classify_payload(payload);
  rec.bytes = static_cast<std::uint32_t>(payload.size());
  records_.push_back(rec);
  payloads_.push_back(env.payload);

  // Fold the envelope into the running digest: header fields as
  // little-endian u32 words, then the raw payload. Order-sensitive by
  // construction — equal digests mean equal byte streams in equal order.
  hasher_.update_u32(static_cast<std::uint32_t>(sent));
  hasher_.update_u32(static_cast<std::uint32_t>(sent >> 32));
  hasher_.update_u32(static_cast<std::uint32_t>(delivered));
  hasher_.update_u32(static_cast<std::uint32_t>(delivered >> 32));
  hasher_.update_u32(env.from);
  hasher_.update_u32(env.to);
  hasher_.update_u32(rec.bytes);
  hasher_.update(payload);

  ++count_;
  total_bytes_ += payload.size();
}

crypto::Digest EnvelopeLog::digest() const {
  // Sha256::finalize is destructive; snapshot the streaming state so the
  // log can keep recording after a mid-run digest query.
  crypto::Sha256 snapshot = hasher_;
  return snapshot.finalize();
}

std::string EnvelopeLog::dump(std::size_t max_lines) const {
  std::string out;
  std::size_t start =
      records_.size() > max_lines ? records_.size() - max_lines : 0;
  if (start > 0) {
    out += "... (" + std::to_string(start) + " earlier envelopes)\n";
  }
  char line[160];
  for (std::size_t i = start; i < records_.size(); ++i) {
    const RecordedEnvelope& r = records_[i];
    if (r.kind.grouped) {
      std::snprintf(line, sizeof(line),
                    "[%8" PRId64 " -> %8" PRId64 "] %3u -> %3u  %-13s g%-3u %u B\n",
                    r.sent, r.delivered, r.from, r.to,
                    tag_name(r.kind.tag).c_str(), r.kind.group, r.bytes);
    } else {
      std::snprintf(line, sizeof(line),
                    "[%8" PRId64 " -> %8" PRId64 "] %3u -> %3u  %-13s      %u B\n",
                    r.sent, r.delivered, r.from, r.to,
                    tag_name(r.kind.tag).c_str(), r.bytes);
    }
    out += line;
  }
  return out;
}

void EnvelopeLog::replay_into(
    const std::function<void(ProcessId from, ProcessId to,
                             const Bytes& payload)>& sink) const {
  for (std::size_t i = 0; i < records_.size(); ++i) {
    sink(records_[i].from, records_[i].to, payloads_[i].get());
  }
}

}  // namespace fastbft::adversary
