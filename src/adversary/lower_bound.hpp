#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "common/value.hpp"

/// \file lower_bound.hpp
/// Executable rendition of the Theorem 4.5 lower bound (experiment E7).
///
/// The theorem proves that no f-resilient t-two-step consensus protocol
/// exists on 3f + 2t - 2 processes, via a five-execution indistinguishability
/// argument (Figures 2-4). This module distills that argument into a single
/// concrete adversarial schedule against *this paper's own protocol*
/// instantiated one process below its bound:
///
///   * the view-1 leader p0 equivocates (x to one group, y to another) and a
///     colluding process backs both stories;
///   * one group plus the two Byzantine processes assemble a fast quorum of
///     acks at a single "early decider", which decides x in two steps;
///   * every other message is delayed (the pre-GST network is asynchronous);
///   * the view-2 leader then runs a perfectly honest view change, but the
///     adversary delays one x-voter so the n - f votes it collects contain
///     only f + t - 1 votes for x — below the selection threshold — and the
///     selection algorithm concludes "any value is safe";
///   * the leader proposes its own input y, honest verifiers certify it
///     (the presented vote set genuinely justifies it), and the remaining
///     correct processes decide y. Disagreement.
///
/// Run with n = 3f + 2t - 1 (the paper's bound) the *same schedule fails*:
/// the vote quorum is large enough that at least f + t votes for x survive
/// the exclusion of the equivocator and the delayed voter, the selection is
/// Forced(x), and everyone decides x. Both outcomes are asserted in
/// tests/test_lower_bound.cpp; bench/bench_lower_bound.cpp prints the table.

namespace fastbft::adversary {

struct LowerBoundOutcome {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  std::uint32_t t = 0;

  /// Decisions of correct processes, in pid order.
  struct ProcessDecision {
    ProcessId pid;
    Value value;
    View view;
  };
  std::vector<ProcessDecision> decisions;

  /// True if two correct processes decided different values (consistency
  /// violated).
  bool disagreement = false;

  /// Value the early decider committed to in view 1.
  Value early_value;

  /// Value selected by the view-2 leader.
  Value view2_value;

  std::string describe() const;
};

/// Runs the scripted attack with f = t = 2 against a cluster of `n`
/// processes running this paper's protocol (vanilla mode). Meaningful for
/// n = 8 (= 3f + 2t - 2, attack succeeds) and n = 9 (= 3f + 2t - 1, attack
/// fails). Other n >= 8 also run: the attack keeps failing, showing the
/// protocol's margin.
LowerBoundOutcome run_lower_bound_attack(std::uint32_t n);

}  // namespace fastbft::adversary
