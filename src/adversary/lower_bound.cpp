#include "adversary/lower_bound.hpp"

#include <map>
#include <memory>
#include <optional>
#include <sstream>

#include "adversary/recording_transport.hpp"
#include "common/assert.hpp"
#include "consensus/replica.hpp"
#include "net/tags.hpp"

namespace fastbft::adversary {

namespace {

/// Harness that owns correct replicas behind recording transports and lets
/// the attack deliver messages selectively ("crank by hand"). Byzantine
/// processes have no replica — the attack crafts their messages directly
/// with their (legitimately owned) signing keys.
struct HandCrankedCluster {
  consensus::QuorumConfig cfg;
  std::shared_ptr<const crypto::KeyStore> keys;
  crypto::Verifier verifier;
  consensus::LeaderFn leader_of;

  std::map<ProcessId, std::unique_ptr<RecordingTransport>> transports;
  std::map<ProcessId, std::unique_ptr<consensus::Replica>> replicas;
  std::map<ProcessId, consensus::DecisionRecord> decisions;

  HandCrankedCluster(consensus::QuorumConfig config, std::uint64_t key_seed)
      : cfg(config),
        keys(std::make_shared<const crypto::KeyStore>(key_seed, config.n)),
        verifier(keys),
        leader_of(consensus::round_robin_leader(config.n)) {}

  void add_correct(ProcessId id, Value input) {
    auto transport = std::make_unique<RecordingTransport>(id, cfg.n);
    auto replica = std::make_unique<consensus::Replica>(
        cfg, id, std::move(input), *transport, crypto::Signer(keys, id),
        verifier, leader_of,
        [this, id](const consensus::DecisionRecord& record) {
          decisions.emplace(id, record);
        },
        consensus::ReplicaOptions{.slow_path = false});
    transports.emplace(id, std::move(transport));
    replicas.emplace(id, std::move(replica));
  }

  bool is_correct(ProcessId id) const { return replicas.contains(id); }

  void deliver(ProcessId from, ProcessId to, const Bytes& payload) {
    auto it = replicas.find(to);
    FASTBFT_ASSERT(it != replicas.end(), "delivering to a Byzantine process");
    it->second->on_message(from, payload);
  }

  /// Drains `from`'s outbox, returning only messages matching `tag`
  /// (everything else is implicitly delayed by the adversary).
  std::vector<net::Envelope> drain(ProcessId from, std::uint8_t tag) {
    std::vector<net::Envelope> matching;
    for (auto& env : transports.at(from)->take_outbox()) {
      if (!env.payload.empty() && env.payload[0] == tag) {
        matching.push_back(std::move(env));
      }
    }
    return matching;
  }
};

}  // namespace

LowerBoundOutcome run_lower_bound_attack(std::uint32_t n) {
  constexpr std::uint32_t f = 2;
  constexpr std::uint32_t t = 2;
  FASTBFT_ASSERT(n >= 3 * f + 2 * t - 2, "attack is scripted for n >= 8");

  LowerBoundOutcome outcome;
  outcome.n = n;
  outcome.f = f;
  outcome.t = t;

  auto cfg = consensus::QuorumConfig::unsafe_for_lower_bound_demo(n, f, t);
  HandCrankedCluster cluster(cfg, /*key_seed=*/7);

  const Value x = Value::of_string("x-fast");
  const Value y = Value::of_string("y-alt");
  outcome.early_value = x;

  // Cast: p0 = equivocating view-1 leader (Byzantine), p_{n-1} = colluding
  // acker (Byzantine). Everyone else is correct. leader(2) = p1.
  const ProcessId leader1 = 0;
  const ProcessId accomplice = n - 1;
  const ProcessId leader2 = 1;
  const ProcessId early_decider = 3;
  FASTBFT_ASSERT(cluster.leader_of(1) == leader1 &&
                     cluster.leader_of(2) == leader2,
                 "attack script assumes round-robin leaders");

  // Group B = {p1, p2} is shown y; group A = {p3, ..., p_{n-2}} is shown x.
  for (ProcessId id = 1; id <= n - 2; ++id) {
    cluster.add_correct(id, id == leader2 ? y : x);
  }

  crypto::Signer sig_leader1(cluster.keys, leader1);
  crypto::Signer sig_accomplice(cluster.keys, accomplice);

  // --- Round 1: the equivocation -------------------------------------------
  consensus::ProposeMsg propose_x;
  propose_x.v = 1;
  propose_x.x = x;
  propose_x.tau = sig_leader1.sign(consensus::kDomPropose,
                                   consensus::propose_preimage(x, 1));
  consensus::ProposeMsg propose_y;
  propose_y.v = 1;
  propose_y.x = y;
  propose_y.tau = sig_leader1.sign(consensus::kDomPropose,
                                   consensus::propose_preimage(y, 1));

  Bytes wire_x = propose_x.serialize();
  Bytes wire_y = propose_y.serialize();
  for (ProcessId id = 1; id <= n - 2; ++id) {
    cluster.deliver(leader1, id, id <= 2 ? wire_y : wire_x);
  }

  // Collect the acks each correct process broadcast; the adversary delays
  // all of them except the ones aimed at the early decider.
  std::map<ProcessId, Bytes> ack_of;  // acker -> its ack payload
  for (ProcessId id = 1; id <= n - 2; ++id) {
    auto acks = cluster.drain(id, net::tags::kAck);
    FASTBFT_ASSERT(!acks.empty(), "every correct process acks in round 1");
    ack_of[id] = acks.front().payload;
  }

  // --- Round 2: the early decider assembles a fast quorum for x -------------
  // Ackers of x: the A-group (p3..p_{n-2}) plus both Byzantine processes.
  consensus::AckMsg byz_ack{1, x};
  Bytes byz_ack_wire = byz_ack.serialize();
  cluster.deliver(leader1, early_decider, byz_ack_wire);
  cluster.deliver(accomplice, early_decider, byz_ack_wire);
  for (ProcessId id = 3; id <= n - 2; ++id) {
    cluster.deliver(id, early_decider, ack_of[id]);
  }
  FASTBFT_ASSERT(cluster.decisions.contains(early_decider),
                 "fast quorum must make the early decider decide x");
  FASTBFT_ASSERT(cluster.decisions.at(early_decider).value == x,
                 "early decider must decide the fast value");

  // --- View change to view 2 -------------------------------------------------
  for (ProcessId id = 1; id <= n - 2; ++id) {
    cluster.replicas.at(id)->enter_view(2);
  }

  // Each correct process emitted a vote addressed to leader2. The adversary
  // delays the early decider's (x-carrying) vote; everything else arrives.
  std::map<ProcessId, Bytes> vote_of;
  for (ProcessId id = 1; id <= n - 2; ++id) {
    auto votes = cluster.drain(id, net::tags::kVote);
    FASTBFT_ASSERT(votes.size() == 1, "one vote per view change");
    vote_of[id] = votes.front().payload;
  }
  for (ProcessId id = 1; id <= n - 2; ++id) {
    if (id == early_decider) continue;
    cluster.deliver(id, leader2, vote_of[id]);
  }

  // The accomplice submits a (valid, signed) nil vote — it simply claims it
  // never acknowledged anything.
  {
    consensus::VoteMsg nil_vote;
    nil_vote.v = 2;
    nil_vote.record.voter = accomplice;
    nil_vote.record.vote = consensus::Vote::nil();
    nil_vote.record.phi = sig_accomplice.sign(
        consensus::kDomVote,
        consensus::vote_preimage(nil_vote.record.vote, std::nullopt, 2));
    cluster.deliver(accomplice, leader2, nil_vote.serialize());
  }

  // --- Leader 2 runs the (honest) view change to completion ------------------
  // Deliver its CertReq to every correct target, route the CertAcks back,
  // then deliver its proposal and all resulting acks among correct
  // processes.
  auto cert_reqs = cluster.drain(leader2, net::tags::kCertReq);
  FASTBFT_ASSERT(!cert_reqs.empty(),
                 "leader2 must resolve selection with n - f votes");
  for (const auto& env : cert_reqs) {
    if (cluster.is_correct(env.to)) {
      cluster.deliver(leader2, env.to, env.payload);
    }
  }
  for (ProcessId id = 1; id <= n - 2; ++id) {
    for (const auto& env : cluster.drain(id, net::tags::kCertAck)) {
      if (cluster.is_correct(env.to)) {
        cluster.deliver(id, env.to, env.payload);
      }
    }
  }

  auto proposals = cluster.drain(leader2, net::tags::kPropose);
  FASTBFT_ASSERT(!proposals.empty(), "leader2 must propose after f+1 CertAcks");
  {
    auto parsed = consensus::parse_message(proposals.front().payload);
    outcome.view2_value = std::get<consensus::ProposeMsg>(*parsed).x;
  }
  for (ProcessId id = 1; id <= n - 2; ++id) {
    cluster.deliver(leader2, id, proposals.front().payload);
  }
  for (ProcessId id = 1; id <= n - 2; ++id) {
    for (const auto& env : cluster.drain(id, net::tags::kAck)) {
      if (cluster.is_correct(env.to)) {
        cluster.deliver(id, env.to, env.payload);
      }
    }
  }

  // --- Verdict ----------------------------------------------------------------
  for (ProcessId id = 1; id <= n - 2; ++id) {
    auto it = cluster.decisions.find(id);
    if (it != cluster.decisions.end()) {
      outcome.decisions.push_back(
          {id, it->second.value, it->second.view});
    }
  }
  for (std::size_t i = 1; i < outcome.decisions.size(); ++i) {
    if (outcome.decisions[i].value != outcome.decisions[0].value) {
      outcome.disagreement = true;
    }
  }
  return outcome;
}

std::string LowerBoundOutcome::describe() const {
  std::ostringstream out;
  out << "n=" << n << " f=" << f << " t=" << t
      << " (bound 3f+2t-1 = " << (3 * f + 2 * t - 1) << ")\n";
  out << "  view-2 selection yielded: " << view2_value.to_string() << "\n";
  for (const auto& d : decisions) {
    out << "  p" << d.pid << " decided " << d.value.to_string() << " in view "
        << d.view << "\n";
  }
  out << (disagreement ? "  => DISAGREEMENT (safety violated)\n"
                       : "  => agreement preserved\n");
  return out.str();
}

}  // namespace fastbft::adversary
