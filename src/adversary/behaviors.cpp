#include "adversary/behaviors.hpp"

#include "common/assert.hpp"

namespace fastbft::adversary {

namespace {

class SilentProcess final : public runtime::IProcess {
 public:
  void start() override {}
  void on_message(ProcessId, const Bytes&) override {}
};

class EquivocatingLeader final : public runtime::IProcess {
 public:
  EquivocatingLeader(const runtime::ProcessContext& ctx, Value a, Value b)
      : ctx_(ctx),
        endpoint_(ctx.network->endpoint(ctx.id)),
        signer_(ctx.keys, ctx.id),
        value_a_(std::move(a)),
        value_b_(std::move(b)) {}

  void start() override {
    if (ctx_.leader_of(1) != ctx_.id) return;

    consensus::ProposeMsg pa;
    pa.v = 1;
    pa.x = value_a_;
    pa.tau = signer_.sign(consensus::kDomPropose,
                          consensus::propose_preimage(value_a_, 1));
    consensus::ProposeMsg pb;
    pb.v = 1;
    pb.x = value_b_;
    pb.tau = signer_.sign(consensus::kDomPropose,
                          consensus::propose_preimage(value_b_, 1));

    Bytes payload_a = pa.serialize();
    Bytes payload_b = pb.serialize();
    for (ProcessId p = 0; p < ctx_.cfg.n; ++p) {
      endpoint_->send(p, p % 2 == 0 ? payload_a : payload_b);
    }

    // Back both of its own stories with acknowledgments.
    consensus::AckMsg ack_a{1, value_a_};
    consensus::AckMsg ack_b{1, value_b_};
    endpoint_->broadcast(ack_a.serialize());
    endpoint_->broadcast(ack_b.serialize());
  }

  void on_message(ProcessId, const Bytes&) override {
    // Fails by omission after the initial equivocation.
  }

 private:
  runtime::ProcessContext ctx_;
  std::unique_ptr<net::SimEndpoint> endpoint_;
  crypto::Signer signer_;
  Value value_a_;
  Value value_b_;
};

class PromiscuousAcker final : public runtime::IProcess {
 public:
  explicit PromiscuousAcker(const runtime::ProcessContext& ctx)
      : endpoint_(ctx.network->endpoint(ctx.id)) {}

  void start() override {}

  void on_message(ProcessId, const Bytes& payload) override {
    auto parsed = consensus::parse_message(payload);
    if (!parsed) return;
    if (const auto* propose = std::get_if<consensus::ProposeMsg>(&*parsed)) {
      consensus::AckMsg ack{propose->v, propose->x};
      endpoint_->broadcast(ack.serialize());
    }
  }

 private:
  std::unique_ptr<net::SimEndpoint> endpoint_;
};

class Laggard final : public runtime::IProcess {
 public:
  Laggard(const runtime::ProcessContext& ctx, Duration lag)
      : scheduler_(ctx.scheduler),
        lag_(lag),
        node_(std::make_unique<runtime::Node>(
            ctx.cfg, ctx.id, ctx.input, *ctx.network, ctx.keys, ctx.leader_of,
            runtime::NodeOptions{}, nullptr)) {}

  void start() override { node_->start(); }

  void on_message(ProcessId from, const Bytes& payload) override {
    scheduler_->schedule_after(lag_, [this, from, payload] {
      node_->on_message(from, payload);
    });
  }

 private:
  sim::Scheduler* scheduler_;
  Duration lag_;
  std::unique_ptr<runtime::Node> node_;
};

}  // namespace

runtime::ProcessFactory silent() {
  return [](const runtime::ProcessContext&) {
    return std::make_unique<SilentProcess>();
  };
}

runtime::ProcessFactory equivocating_leader(Value value_a, Value value_b) {
  return [value_a = std::move(value_a),
          value_b = std::move(value_b)](const runtime::ProcessContext& ctx) {
    return std::make_unique<EquivocatingLeader>(ctx, value_a, value_b);
  };
}

runtime::ProcessFactory promiscuous_acker() {
  return [](const runtime::ProcessContext& ctx) {
    return std::make_unique<PromiscuousAcker>(ctx);
  };
}

runtime::ProcessFactory laggard(Duration lag) {
  return [lag](const runtime::ProcessContext& ctx) {
    return std::make_unique<Laggard>(ctx, lag);
  };
}

}  // namespace fastbft::adversary
