#pragma once

#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "net/transport.hpp"

/// \file recording_transport.hpp
/// Recording instruments for adversarial schedules.
///
/// RecordingTransport records outgoing messages instead of delivering
/// them. Scripted experiments (notably the Theorem 4.5 lower-bound attack)
/// crank replicas by hand: they inspect each process's outbox and deliver
/// exactly the messages the adversarial schedule allows, in the order it
/// dictates.
///
/// EnvelopeLog is the delivery-side sibling used by the chaos harness
/// (src/chaos): attached as a net::SimNetwork observer it records every
/// message the network schedules — sender, receiver, send/delivery times,
/// the wire tag and (for group-scoped SMR traffic) the GroupId — and folds
/// every payload byte into a running SHA-256. Two runs with equal digests
/// delivered byte-identical message streams in the identical order, which
/// is how `chaos_fuzz --seed` proves a replay is bit-for-bit faithful.

namespace fastbft::adversary {

class RecordingTransport final : public net::Transport {
 public:
  RecordingTransport(ProcessId self, std::uint32_t n) : self_(self), n_(n) {}

  void send(ProcessId to, SharedBytes payload) override {
    outbox_.push_back(net::Envelope{self_, to, std::move(payload)});
  }

  std::uint32_t cluster_size() const override { return n_; }
  ProcessId self() const override { return self_; }

  /// Returns and clears everything sent since the last take.
  std::vector<net::Envelope> take_outbox() {
    std::vector<net::Envelope> out = std::move(outbox_);
    outbox_.clear();
    return out;
  }

  const std::vector<net::Envelope>& peek_outbox() const { return outbox_; }

 private:
  ProcessId self_;
  std::uint32_t n_;
  std::vector<net::Envelope> outbox_;
};

/// Wire identity of one payload: the tag byte plus, for the group-scoped
/// SMR tags (0x41-0x44, which carry a u32 GroupId right after the tag —
/// see net/tags.hpp and docs/SHARDING.md), the group it belongs to.
struct WireKind {
  std::uint8_t tag = 0;
  bool grouped = false;
  GroupId group = 0;
};

/// Classifies a raw payload without a full decode (same fixed-offset peek
/// the sharded SmrNode uses for routing).
WireKind classify_payload(ByteView payload);

/// Human-readable name for a wire tag ("SMR_WRAPPED", "PROPOSE", ...).
std::string tag_name(std::uint8_t tag);

/// One delivered (or scheduled-for-delivery) message, as observed at send
/// time. `delivered == kTimeInfinity` marks a message a DeliveryScript
/// parked.
struct RecordedEnvelope {
  TimePoint sent = 0;
  TimePoint delivered = 0;
  ProcessId from = 0;
  ProcessId to = 0;
  WireKind kind;
  std::uint32_t bytes = 0;
};

/// Append-only log of every envelope a run scheduled, with a running
/// digest over the full byte stream. Attach via
/// `net.set_observer([&log](auto&... a) { log.record(a...); })` — the
/// chaos harness does exactly this.
class EnvelopeLog {
 public:
  void record(const net::Envelope& env, TimePoint sent, TimePoint delivered);

  const std::vector<RecordedEnvelope>& records() const { return records_; }
  std::uint64_t count() const { return count_; }
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Order-sensitive SHA-256 over (sent, delivered, from, to, payload) of
  /// every recorded envelope so far.
  crypto::Digest digest() const;

  /// At most `max_lines` formatted entries from the tail of the log
  /// (where a failure's final messages live).
  std::string dump(std::size_t max_lines = 40) const;

  /// Re-injects the recorded payload stream into `sink` in recorded
  /// order, as (from, to, payload) — the morphling-style replay primitive
  /// for driving a node with a captured message vector.
  void replay_into(
      const std::function<void(ProcessId from, ProcessId to,
                               const Bytes& payload)>& sink) const;

 private:
  std::vector<RecordedEnvelope> records_;
  /// Payloads retained for replay_into; aliases the recorded SharedBytes.
  std::vector<SharedBytes> payloads_;
  crypto::Sha256 hasher_;
  std::uint64_t count_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace fastbft::adversary
