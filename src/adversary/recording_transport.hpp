#pragma once

#include <vector>

#include "net/transport.hpp"

/// \file recording_transport.hpp
/// Transport that records outgoing messages instead of delivering them.
/// Scripted experiments (notably the Theorem 4.5 lower-bound attack) crank
/// replicas by hand: they inspect each process's outbox and deliver exactly
/// the messages the adversarial schedule allows, in the order it dictates.

namespace fastbft::adversary {

class RecordingTransport final : public net::Transport {
 public:
  RecordingTransport(ProcessId self, std::uint32_t n) : self_(self), n_(n) {}

  void send(ProcessId to, SharedBytes payload) override {
    outbox_.push_back(net::Envelope{self_, to, std::move(payload)});
  }

  std::uint32_t cluster_size() const override { return n_; }
  ProcessId self() const override { return self_; }

  /// Returns and clears everything sent since the last take.
  std::vector<net::Envelope> take_outbox() {
    std::vector<net::Envelope> out = std::move(outbox_);
    outbox_.clear();
    return out;
  }

  const std::vector<net::Envelope>& peek_outbox() const { return outbox_; }

 private:
  ProcessId self_;
  std::uint32_t n_;
  std::vector<net::Envelope> outbox_;
};

}  // namespace fastbft::adversary
