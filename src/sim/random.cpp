#include "sim/random.hpp"

#include "common/assert.hpp"

namespace fastbft::sim {

std::uint64_t Rng::next_u64() {
  // SplitMix64 (Steele, Lea, Flood 2014).
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  FASTBFT_ASSERT(bound > 0, "next_below(0)");
  // Modulo bias is irrelevant for simulation workloads.
  return next_u64() % bound;
}

std::int64_t Rng::next_in_range(std::int64_t lo, std::int64_t hi) {
  FASTBFT_ASSERT(lo <= hi, "inverted range");
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) {
  FASTBFT_ASSERT(den > 0, "chance with zero denominator");
  return next_below(den) < num;
}

Rng Rng::fork(std::uint64_t salt) {
  return Rng(next_u64() ^ (salt * 0xd1342543de82ef95ULL));
}

}  // namespace fastbft::sim
