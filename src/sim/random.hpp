#pragma once

#include <cstdint>
#include <vector>

/// \file random.hpp
/// Seeded deterministic RNG (SplitMix64). Every randomized component of the
/// simulation draws from an explicitly seeded instance so runs are exactly
/// reproducible; tests sweep seeds to get property-style coverage.

namespace fastbft::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ^ 0x9e3779b97f4a7c15ULL) {}

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi);

  /// True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child RNG (for per-component streams).
  Rng fork(std::uint64_t salt);

 private:
  std::uint64_t state_;
};

}  // namespace fastbft::sim
