#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.hpp"

/// \file scheduler.hpp
/// Deterministic discrete-event scheduler: the heart of the simulation
/// substrate. Events fire in (time, insertion-sequence) order, so two runs
/// with identical inputs replay identically. All protocol latencies reported
/// by the benchmarks are differences of `now()` values.

namespace fastbft::sim {

/// Cancellation handle for a scheduled event. Destroying the handle does
/// NOT cancel the event; call `cancel()` explicitly.
///
/// Same-thread contract: a handle carries no synchronization. It must only
/// be used (cancel() / active()) on the thread that owns the TimerService
/// that minted it — the simulator thread for sim runs, the process's
/// delivery thread for wall-clock hosts. Cross-thread cancellation is a
/// data race by construction; hosts assert the contract at their service
/// boundary (see net::ThreadedNetwork::arm_timer).
class TimerHandle {
 public:
  TimerHandle() = default;

  void cancel() {
    if (cancelled_ && !*cancelled_) {
      *cancelled_ = true;
      // Eager-drop hook: lets the minting service free the timer's slot
      // immediately instead of waiting for the dead entry to reach its
      // deadline (engine::TimerWheel, threaded inbox timer queues).
      if (on_cancel_) on_cancel_();
    }
    on_cancel_ = nullptr;
  }
  bool active() const { return cancelled_ && !*cancelled_; }

 private:
  friend class Scheduler;
  friend class TimerService;
  explicit TimerHandle(std::shared_ptr<bool> flag,
                       std::function<void()> on_cancel = nullptr)
      : cancelled_(std::move(flag)), on_cancel_(std::move(on_cancel)) {}
  std::shared_ptr<bool> cancelled_;
  std::function<void()> on_cancel_;
};

/// Anything that can arm one-shot timers. The scheduler itself is the
/// canonical implementation (one scheduler event per timer); the engine
/// layer provides a multiplexing implementation (engine::TimerWheel) that
/// funds many logical timers from a single outstanding scheduler event, so
/// per-slot protocol objects never own scheduler state directly.
class TimerService {
 public:
  virtual ~TimerService() = default;

  /// Arms `fn` to fire after `delay` ticks. The returned handle cancels.
  virtual TimerHandle schedule_after(Duration delay,
                                     std::function<void()> fn) = 0;

 protected:
  /// Lets implementations mint handles around their own cancellation flags.
  /// `on_cancel` (optional) runs on the first cancel() — on the service's
  /// owning thread, per the TimerHandle contract — so the service can drop
  /// the dead entry eagerly. It must tolerate the entry already having
  /// fired, and must not touch the service after its destruction (guard
  /// with a shared liveness flag).
  static TimerHandle make_handle(std::shared_ptr<bool> flag,
                                 std::function<void()> on_cancel = nullptr) {
    return TimerHandle(std::move(flag), std::move(on_cancel));
  }
};

class Scheduler final : public TimerService {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now).
  TimerHandle schedule_at(TimePoint at, std::function<void()> fn);

  /// Schedules `fn` after `delay` ticks.
  TimerHandle schedule_after(Duration delay, std::function<void()> fn) override;

  /// Runs the earliest pending event. Returns false if none are pending.
  bool step();

  /// Runs events until the queue drains or `limit` is passed; time stops at
  /// the last executed event (or `limit` if it was reached).
  void run_until(TimePoint limit);

  /// Runs until the queue is fully drained. Guarded by a large step budget
  /// to turn accidental infinite loops into loud failures.
  void run_to_completion(std::uint64_t max_events = 50'000'000);

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace fastbft::sim
