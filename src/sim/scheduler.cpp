#include "sim/scheduler.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace fastbft::sim {

TimerHandle Scheduler::schedule_at(TimePoint at, std::function<void()> fn) {
  FASTBFT_ASSERT(at >= now_, "scheduling into the past");
  auto flag = std::make_shared<bool>(false);
  queue_.push(Event{at, next_seq_++, std::move(fn), flag});
  return TimerHandle(std::move(flag));
}

TimerHandle Scheduler::schedule_after(Duration delay, std::function<void()> fn) {
  FASTBFT_ASSERT(delay >= 0, "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) continue;
    now_ = ev.at;
    Log::now_hint = now_;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(TimePoint limit) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (*top.cancelled) {
      queue_.pop();
      continue;
    }
    if (top.at > limit) break;
    step();
  }
  if (now_ < limit) {
    now_ = limit;
    Log::now_hint = now_;
  }
}

void Scheduler::run_to_completion(std::uint64_t max_events) {
  std::uint64_t steps = 0;
  while (step()) {
    FASTBFT_ASSERT(++steps <= max_events,
                   "scheduler exceeded event budget — likely a livelock");
  }
}

}  // namespace fastbft::sim
