#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "consensus/replica.hpp"  // DecisionRecord, SignatureEntry, LeaderFn
#include "net/transport.hpp"
#include "runtime/cluster.hpp"

/// \file pbft.hpp
/// PBFT-style baseline (Castro & Liskov, OSDI'99), single-shot, simplified:
/// the classic three-phase common case (pre-prepare / prepare / commit,
/// quorum 2f + 1 of n = 3f + 1) and a prepared-certificate view change.
/// This is the "three message delays with optimal resilience" comparison
/// point of the paper's introduction (experiments E2 and E8).
///
/// Simplifications relative to deployed PBFT (documented per DESIGN.md):
///  * single-shot consensus (no sequence-number windows, no checkpoints);
///  * the new-view message is folded into a justified pre-prepare that
///    carries the 2f + 1 view-change records (same idea, fewer message
///    kinds);
///  * MACs are replaced by the library's simulation signatures everywhere.
/// None of these affect the measured common-case shape: 3 message delays
/// and O(n^2) traffic.

namespace fastbft::pbft {

using consensus::SignatureEntry;

/// 2f + 1 prepare signatures for (x, u): the value was *prepared* in u.
struct PreparedCert {
  Value x;
  View u = kNoView;
  std::vector<SignatureEntry> prepares;

  void encode(Encoder& enc) const;
  static std::optional<PreparedCert> decode(Decoder& dec);
  friend bool operator==(const PreparedCert&, const PreparedCert&) = default;
};

/// One process's view-change report: its latest prepared certificate (if
/// any), signed and bound to the destination view.
struct ViewChangeRecord {
  ProcessId voter = kNoProcess;
  std::optional<PreparedCert> prepared;
  crypto::Signature phi;

  void encode(Encoder& enc) const;
  static std::optional<ViewChangeRecord> decode(Decoder& dec);
  friend bool operator==(const ViewChangeRecord&,
                         const ViewChangeRecord&) = default;
};

struct PrePrepareMsg {
  View v = kNoView;
  Value x;
  crypto::Signature tau;  // leader's signature over (x, v)
  std::vector<ViewChangeRecord> justification;  // empty in view 1

  Bytes serialize() const;
  static std::optional<PrePrepareMsg> decode(Decoder& dec);
};

struct PrepareMsg {
  View v = kNoView;
  Value x;
  crypto::Signature phi;  // signed so prepares can form PreparedCerts

  Bytes serialize() const;
  static std::optional<PrepareMsg> decode(Decoder& dec);
};

struct PbftCommitMsg {
  View v = kNoView;
  Value x;

  Bytes serialize() const;
  static std::optional<PbftCommitMsg> decode(Decoder& dec);
};

struct ViewChangeMsg {
  View v = kNoView;
  ViewChangeRecord record;

  Bytes serialize() const;
  static std::optional<ViewChangeMsg> decode(Decoder& dec);
};

// --- Signing preimages -------------------------------------------------------

Bytes preprepare_preimage(const Value& x, View v);
Bytes prepare_preimage(const Value& x, View v);
Bytes viewchange_preimage(const std::optional<PreparedCert>& prepared, View v);

/// Validity of a prepared certificate: >= 2f+1 distinct signers over
/// prepare_preimage(x, u).
bool verify_prepared_cert(const crypto::Verifier& verifier, std::uint32_t n,
                          std::uint32_t f, const PreparedCert& cert);

/// The view-change selection rule: the value of the highest-view valid
/// prepared certificate among the records, or nullopt (leader free).
std::optional<Value> select_from_view_changes(
    const std::vector<ViewChangeRecord>& records);

/// Single-shot PBFT replica. Mirrors consensus::Replica's surface so the
/// same runtime::Cluster harness drives both protocols.
class PbftReplica {
 public:
  using DecideCallback = std::function<void(const consensus::DecisionRecord&)>;

  PbftReplica(std::uint32_t n, std::uint32_t f, ProcessId id, Value input,
              net::Transport& transport, crypto::Signer signer,
              crypto::Verifier verifier, consensus::LeaderFn leader_of,
              DecideCallback on_decide);

  void start();
  void on_message(ProcessId from, const Bytes& payload);
  void enter_view(View v);

  View view() const { return view_; }
  const std::optional<consensus::DecisionRecord>& decision() const {
    return decision_;
  }

 private:
  using ValueKey = std::pair<View, Bytes>;

  void handle_preprepare(ProcessId from, const PrePrepareMsg& msg);
  void handle_prepare(ProcessId from, const PrepareMsg& msg);
  void handle_commit(ProcessId from, const PbftCommitMsg& msg);
  void handle_viewchange(ProcessId from, const ViewChangeMsg& msg);
  void try_new_view();
  void send_preprepare(const Value& x,
                       std::vector<ViewChangeRecord> justification);
  void accept_and_prepare(const Value& x, View v);
  void maybe_prepared(const ValueKey& key);
  bool buffer_if_future(ProcessId from, const Bytes& payload, View v,
                        std::uint8_t tag);
  void replay_buffered();

  std::uint32_t quorum() const { return 2 * f_ + 1; }

  std::uint32_t n_;
  std::uint32_t f_;
  ProcessId id_;
  Value input_;
  net::Transport& transport_;
  crypto::Signer signer_;
  crypto::Verifier verifier_;
  consensus::LeaderFn leader_of_;
  DecideCallback on_decide_;

  View view_ = 1;
  std::set<View> preprepared_;  // views where a pre-prepare was accepted
  std::optional<PreparedCert> prepared_;  // latest prepared certificate
  std::optional<consensus::DecisionRecord> decision_;

  std::map<ValueKey, std::map<ProcessId, crypto::Signature>> prepares_;
  std::map<ValueKey, std::set<ProcessId>> commits_;
  std::set<ValueKey> commit_sent_;

  struct LeaderState {
    std::map<ProcessId, ViewChangeRecord> records;
    bool proposed = false;
  };
  std::optional<LeaderState> leader_state_;

  std::map<View, std::vector<std::pair<ProcessId, Bytes>>> future_buffer_;
};

/// Cluster integration: runs PBFT under runtime::Cluster. ctx.cfg supplies
/// n and f (t is ignored — PBFT has no fast path).
runtime::NodeFactory node_factory();

}  // namespace fastbft::pbft
