#include "pbft/pbft.hpp"

#include "common/assert.hpp"
#include "net/tags.hpp"
#include "viewsync/synchronizer.hpp"

namespace fastbft::pbft {

namespace {
constexpr const char* kDomPrePrepare = "pbft-preprepare";
constexpr const char* kDomPrepare = "pbft-prepare";
constexpr const char* kDomViewChange = "pbft-viewchange";
}  // namespace

// --- Codecs -------------------------------------------------------------------

void PreparedCert::encode(Encoder& enc) const {
  x.encode(enc);
  enc.u64(u);
  enc.u32(static_cast<std::uint32_t>(prepares.size()));
  for (const auto& e : prepares) e.encode(enc);
}

std::optional<PreparedCert> PreparedCert::decode(Decoder& dec) {
  PreparedCert cert;
  auto x = Value::decode(dec);
  if (!x) return std::nullopt;
  cert.x = std::move(*x);
  cert.u = dec.u64();
  std::uint32_t count = dec.u32();
  if (!dec.ok() || count > 4096) return std::nullopt;
  for (std::uint32_t i = 0; i < count; ++i) {
    auto e = SignatureEntry::decode(dec);
    if (!e) return std::nullopt;
    cert.prepares.push_back(std::move(*e));
  }
  return cert;
}

void ViewChangeRecord::encode(Encoder& enc) const {
  enc.u32(voter);
  enc.boolean(prepared.has_value());
  if (prepared) prepared->encode(enc);
  phi.encode(enc);
}

std::optional<ViewChangeRecord> ViewChangeRecord::decode(Decoder& dec) {
  ViewChangeRecord r;
  r.voter = dec.u32();
  bool has = dec.boolean();
  if (!dec.ok()) return std::nullopt;
  if (has) {
    auto cert = PreparedCert::decode(dec);
    if (!cert) return std::nullopt;
    r.prepared = std::move(*cert);
  }
  auto phi = crypto::Signature::decode(dec);
  if (!phi) return std::nullopt;
  r.phi = std::move(*phi);
  return r;
}

Bytes PrePrepareMsg::serialize() const {
  Encoder enc;
  enc.u8(net::tags::kPbftPrePrepare);
  enc.u64(v);
  x.encode(enc);
  tau.encode(enc);
  enc.u32(static_cast<std::uint32_t>(justification.size()));
  for (const auto& r : justification) r.encode(enc);
  return std::move(enc).take();
}

std::optional<PrePrepareMsg> PrePrepareMsg::decode(Decoder& dec) {
  PrePrepareMsg m;
  m.v = dec.u64();
  auto x = Value::decode(dec);
  if (!x) return std::nullopt;
  m.x = std::move(*x);
  auto tau = crypto::Signature::decode(dec);
  if (!tau) return std::nullopt;
  m.tau = std::move(*tau);
  std::uint32_t count = dec.u32();
  if (!dec.ok() || count > 4096) return std::nullopt;
  for (std::uint32_t i = 0; i < count; ++i) {
    auto r = ViewChangeRecord::decode(dec);
    if (!r) return std::nullopt;
    m.justification.push_back(std::move(*r));
  }
  return m;
}

Bytes PrepareMsg::serialize() const {
  Encoder enc;
  enc.u8(net::tags::kPbftPrepare);
  enc.u64(v);
  x.encode(enc);
  phi.encode(enc);
  return std::move(enc).take();
}

std::optional<PrepareMsg> PrepareMsg::decode(Decoder& dec) {
  PrepareMsg m;
  m.v = dec.u64();
  auto x = Value::decode(dec);
  if (!x) return std::nullopt;
  m.x = std::move(*x);
  auto phi = crypto::Signature::decode(dec);
  if (!phi) return std::nullopt;
  m.phi = std::move(*phi);
  return m;
}

Bytes PbftCommitMsg::serialize() const {
  Encoder enc;
  enc.u8(net::tags::kPbftCommit);
  enc.u64(v);
  x.encode(enc);
  return std::move(enc).take();
}

std::optional<PbftCommitMsg> PbftCommitMsg::decode(Decoder& dec) {
  PbftCommitMsg m;
  m.v = dec.u64();
  auto x = Value::decode(dec);
  if (!x) return std::nullopt;
  m.x = std::move(*x);
  return m;
}

Bytes ViewChangeMsg::serialize() const {
  Encoder enc;
  enc.u8(net::tags::kPbftViewChange);
  enc.u64(v);
  record.encode(enc);
  return std::move(enc).take();
}

std::optional<ViewChangeMsg> ViewChangeMsg::decode(Decoder& dec) {
  ViewChangeMsg m;
  m.v = dec.u64();
  auto r = ViewChangeRecord::decode(dec);
  if (!r) return std::nullopt;
  m.record = std::move(*r);
  return m;
}

// --- Preimages & verification ----------------------------------------------------

namespace {
Bytes xv(const Value& x, View v) {
  Encoder enc;
  x.encode(enc);
  enc.u64(v);
  return std::move(enc).take();
}
}  // namespace

Bytes preprepare_preimage(const Value& x, View v) { return xv(x, v); }
Bytes prepare_preimage(const Value& x, View v) { return xv(x, v); }

Bytes viewchange_preimage(const std::optional<PreparedCert>& prepared, View v) {
  Encoder enc;
  enc.boolean(prepared.has_value());
  if (prepared) prepared->encode(enc);
  enc.u64(v);
  return std::move(enc).take();
}

bool verify_prepared_cert(const crypto::Verifier& verifier, std::uint32_t n,
                          std::uint32_t f, const PreparedCert& cert) {
  if (cert.u == kNoView || cert.x.empty()) return false;
  std::set<ProcessId> seen;
  Bytes preimage = prepare_preimage(cert.x, cert.u);
  for (const auto& e : cert.prepares) {
    if (e.signer >= n || seen.contains(e.signer)) continue;
    if (verifier.verify(e.signer, kDomPrepare, preimage, e.sig)) {
      seen.insert(e.signer);
    }
  }
  return seen.size() >= 2 * f + 1;
}

std::optional<Value> select_from_view_changes(
    const std::vector<ViewChangeRecord>& records) {
  const PreparedCert* best = nullptr;
  for (const auto& r : records) {
    if (r.prepared && (!best || r.prepared->u > best->u)) {
      best = &*r.prepared;
    }
  }
  if (!best) return std::nullopt;
  return best->x;
}

// --- Replica ------------------------------------------------------------------------

PbftReplica::PbftReplica(std::uint32_t n, std::uint32_t f, ProcessId id,
                         Value input, net::Transport& transport,
                         crypto::Signer signer, crypto::Verifier verifier,
                         consensus::LeaderFn leader_of,
                         DecideCallback on_decide)
    : n_(n),
      f_(f),
      id_(id),
      input_(std::move(input)),
      transport_(transport),
      signer_(std::move(signer)),
      verifier_(std::move(verifier)),
      leader_of_(std::move(leader_of)),
      on_decide_(std::move(on_decide)) {
  FASTBFT_ASSERT(n_ >= 3 * f_ + 1, "PBFT requires n >= 3f + 1");
}

void PbftReplica::start() {
  if (leader_of_(1) == id_) {
    send_preprepare(input_, {});
  }
}

void PbftReplica::send_preprepare(const Value& x,
                                  std::vector<ViewChangeRecord> justification) {
  PrePrepareMsg msg;
  msg.v = view_;
  msg.x = x;
  msg.tau = signer_.sign(kDomPrePrepare, preprepare_preimage(x, view_));
  msg.justification = std::move(justification);
  transport_.broadcast(msg.serialize());
}

void PbftReplica::on_message(ProcessId from, const Bytes& payload) {
  if (payload.empty()) return;
  std::uint8_t tag = payload[0];
  Decoder dec(payload);
  dec.u8();
  switch (tag) {
    case net::tags::kPbftPrePrepare: {
      auto m = PrePrepareMsg::decode(dec);
      if (!m || !dec.ok() || !dec.at_end()) return;
      if (buffer_if_future(from, payload, m->v, tag)) return;
      handle_preprepare(from, *m);
      return;
    }
    case net::tags::kPbftPrepare: {
      auto m = PrepareMsg::decode(dec);
      if (!m || !dec.ok() || !dec.at_end()) return;
      handle_prepare(from, *m);
      return;
    }
    case net::tags::kPbftCommit: {
      auto m = PbftCommitMsg::decode(dec);
      if (!m || !dec.ok() || !dec.at_end()) return;
      handle_commit(from, *m);
      return;
    }
    case net::tags::kPbftViewChange: {
      auto m = ViewChangeMsg::decode(dec);
      if (!m || !dec.ok() || !dec.at_end()) return;
      if (buffer_if_future(from, payload, m->v, tag)) return;
      handle_viewchange(from, *m);
      return;
    }
    default:
      return;
  }
}

bool PbftReplica::buffer_if_future(ProcessId from, const Bytes& payload, View v,
                                   std::uint8_t) {
  if (v <= view_) return false;
  if (future_buffer_.size() > 10'000) return true;
  future_buffer_[v].emplace_back(from, payload);
  return true;
}

void PbftReplica::replay_buffered() {
  while (!future_buffer_.empty() && future_buffer_.begin()->first < view_) {
    future_buffer_.erase(future_buffer_.begin());
  }
  auto it = future_buffer_.find(view_);
  if (it == future_buffer_.end()) return;
  auto pending = std::move(it->second);
  future_buffer_.erase(it);
  for (auto& [from, payload] : pending) on_message(from, payload);
}

void PbftReplica::handle_preprepare(ProcessId from, const PrePrepareMsg& msg) {
  if (msg.v != view_) return;
  if (from != leader_of_(msg.v)) return;
  if (preprepared_.contains(msg.v)) return;
  if (msg.x.empty()) return;
  if (!verifier_.verify(from, kDomPrePrepare, preprepare_preimage(msg.x, msg.v),
                        msg.tau)) {
    return;
  }
  if (msg.v > 1) {
    // Justified pre-prepare (our folded new-view): 2f+1 valid view-change
    // records whose selection admits x.
    std::set<ProcessId> voters;
    for (const auto& r : msg.justification) {
      if (!voters.insert(r.voter).second) return;
      if (r.voter >= n_) return;
      if (!verifier_.verify(r.voter, kDomViewChange,
                            viewchange_preimage(r.prepared, msg.v), r.phi)) {
        return;
      }
      if (r.prepared) {
        if (r.prepared->u >= msg.v) return;
        if (!verify_prepared_cert(verifier_, n_, f_, *r.prepared)) return;
      }
    }
    if (voters.size() < quorum()) return;
    auto selected = select_from_view_changes(msg.justification);
    if (selected.has_value() && !(*selected == msg.x)) return;
  } else if (!msg.justification.empty()) {
    return;
  }

  preprepared_.insert(msg.v);
  accept_and_prepare(msg.x, msg.v);
}

void PbftReplica::accept_and_prepare(const Value& x, View v) {
  PrepareMsg m;
  m.v = v;
  m.x = x;
  m.phi = signer_.sign(kDomPrepare, prepare_preimage(x, v));
  transport_.broadcast(m.serialize());
}

void PbftReplica::handle_prepare(ProcessId from, const PrepareMsg& msg) {
  if (msg.x.empty() || msg.v == kNoView) return;
  if (!verifier_.verify(from, kDomPrepare, prepare_preimage(msg.x, msg.v),
                        msg.phi)) {
    return;
  }
  ValueKey key{msg.v, msg.x.bytes()};
  prepares_[key].emplace(from, msg.phi);
  maybe_prepared(key);
}

void PbftReplica::maybe_prepared(const ValueKey& key) {
  const auto& sigs = prepares_[key];
  if (sigs.size() < quorum()) return;
  if (commit_sent_.contains(key)) return;
  commit_sent_.insert(key);

  PreparedCert cert;
  cert.x = Value(key.second);
  cert.u = key.first;
  for (const auto& [signer, sig] : sigs) {
    cert.prepares.push_back(SignatureEntry{signer, sig});
    if (cert.prepares.size() == quorum()) break;
  }
  if (!prepared_ || cert.u > prepared_->u) prepared_ = cert;

  PbftCommitMsg m;
  m.v = key.first;
  m.x = cert.x;
  transport_.broadcast(m.serialize());
}

void PbftReplica::handle_commit(ProcessId from, const PbftCommitMsg& msg) {
  if (msg.x.empty() || msg.v == kNoView) return;
  ValueKey key{msg.v, msg.x.bytes()};
  auto& senders = commits_[key];
  senders.insert(from);
  if (senders.size() >= quorum() && !decision_) {
    decision_ = consensus::DecisionRecord{msg.x, msg.v, false};
    if (on_decide_) on_decide_(*decision_);
  }
}

void PbftReplica::enter_view(View v) {
  if (v <= view_) return;
  view_ = v;
  leader_state_.reset();
  ProcessId leader = leader_of_(v);
  if (leader == id_) leader_state_.emplace();

  ViewChangeMsg m;
  m.v = v;
  m.record.voter = id_;
  m.record.prepared = prepared_;
  m.record.phi =
      signer_.sign(kDomViewChange, viewchange_preimage(prepared_, v));
  transport_.send(leader, m.serialize());
  replay_buffered();
}

void PbftReplica::handle_viewchange(ProcessId from, const ViewChangeMsg& msg) {
  if (msg.v != view_ || !leader_state_ || leader_state_->proposed) return;
  if (msg.record.voter != from) return;
  if (!verifier_.verify(from, kDomViewChange,
                        viewchange_preimage(msg.record.prepared, msg.v),
                        msg.record.phi)) {
    return;
  }
  if (msg.record.prepared) {
    if (msg.record.prepared->u >= msg.v) return;
    if (!verify_prepared_cert(verifier_, n_, f_, *msg.record.prepared)) return;
  }
  leader_state_->records.emplace(from, msg.record);
  try_new_view();
}

void PbftReplica::try_new_view() {
  LeaderState& st = *leader_state_;
  if (st.proposed || st.records.size() < quorum()) return;
  st.proposed = true;
  std::vector<ViewChangeRecord> records;
  for (const auto& [voter, r] : st.records) records.push_back(r);
  Value x = select_from_view_changes(records).value_or(input_);
  send_preprepare(x, std::move(records));
}

// --- Cluster integration -------------------------------------------------------------

namespace {

class PbftNode final : public runtime::IProcess {
 public:
  PbftNode(const runtime::ProcessContext& ctx,
           const runtime::NodeOptions& options,
           runtime::Node::DecideCallback on_decide)
      : endpoint_(ctx.network->endpoint(ctx.id)),
        replica_(
            ctx.cfg.n, ctx.cfg.f, ctx.id, ctx.input, *endpoint_,
            crypto::Signer(ctx.keys, ctx.id), crypto::Verifier(ctx.keys),
            ctx.leader_of,
            [this, id = ctx.id, cb = std::move(on_decide)](
                const consensus::DecisionRecord& record) {
              sync_.stop();
              if (cb) cb(id, record);
            }),
        sync_(sync_config(options, ctx.cfg.f), ctx.id, *endpoint_,
              *ctx.scheduler, [this](View v) { replica_.enter_view(v); }) {}

  void start() override {
    sync_.start();
    replica_.start();
  }

  void on_message(ProcessId from, const Bytes& payload) override {
    if (!payload.empty() && payload[0] == net::tags::kWish) {
      sync_.on_message(from, payload);
      return;
    }
    replica_.on_message(from, payload);
  }

 private:
  static viewsync::SynchronizerConfig sync_config(
      const runtime::NodeOptions& options, std::uint32_t f) {
    viewsync::SynchronizerConfig cfg = options.sync;
    cfg.f = f;
    return cfg;
  }

  std::unique_ptr<net::SimEndpoint> endpoint_;
  PbftReplica replica_;
  viewsync::Synchronizer sync_;
};

}  // namespace

runtime::NodeFactory node_factory() {
  return [](const runtime::ProcessContext& ctx,
            const runtime::NodeOptions& options,
            runtime::Node::DecideCallback on_decide) {
    return std::make_unique<PbftNode>(ctx, options, std::move(on_decide));
  };
}

}  // namespace fastbft::pbft
