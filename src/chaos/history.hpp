#pragma once

#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "smr/reply.hpp"

/// \file history.hpp
/// The observed client history a chaos run produces and the
/// linearizability checker consumes: one OpRecord per client operation,
/// carrying the operation itself, its real-time invocation/response
/// interval in simulated ticks, and the Reply the session delivered.
///
/// Ambiguity. An operation is AMBIGUOUS when the run cannot know whether
/// it took effect: it never completed, or it completed with
/// Reply::Status::Timeout (the deadline budget ran out — the command may
/// still execute later; at-most-once, not exactly-never). The checker must
/// accept histories in which an ambiguous write either happened (at any
/// point after its invocation) or never happened at all.

namespace fastbft::chaos {

struct OpRecord {
  std::uint64_t client_id = 0;
  std::uint64_t sequence = 0;
  smr::OpKind kind = smr::OpKind::Noop;
  std::string key;
  std::string value;     ///< Put/Cas: the value written.
  std::string expected;  ///< Cas only.

  /// Invocation/response interval in simulated ticks. `returned` is
  /// meaningful only when `completed`; an op that never completed has no
  /// response event.
  TimePoint invoked = 0;
  TimePoint returned = 0;
  bool completed = false;

  /// The session's verdict (valid only when `completed`).
  smr::Reply reply;

  /// True when the run cannot know whether the op took effect.
  bool ambiguous() const { return !completed || reply.timed_out(); }
};

/// Canonical order-insensitive digest of a history: SHA-256 over the
/// records sorted by (client_id, sequence, key). Two runs with equal
/// digests observed the identical set of operations, intervals and
/// results — the reproducibility witness `chaos_fuzz --seed` prints.
crypto::Digest history_digest(const std::vector<OpRecord>& history);

/// One-line rendering for violation reports and artifacts.
std::string describe(const OpRecord& op);

}  // namespace fastbft::chaos
