#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/checker.hpp"
#include "chaos/schedule.hpp"

/// \file harness.hpp
/// The chaos scenario runner: executes one Schedule against a full
/// smr::Service cluster on the deterministic simulator — randomized
/// crash/rejoin, partitions, lossy and slow links, Byzantine replicas and
/// gateways, concurrent multi-session put/get/del/cas/mget workloads
/// across S shards — while recording the complete client history and
/// every delivered envelope, then audits the history with the
/// linearizability checker.
///
/// Determinism contract: a Schedule fully determines the run. Identical
/// schedules produce identical histories, identical envelope streams
/// (checked via digests) and identical verdicts, which is what makes
/// `chaos_fuzz --seed` a bit-for-bit reproduction and lets the shrinker
/// minimize by editing the schedule alone. See docs/CHAOS.md.

namespace fastbft::chaos {

struct RunResult {
  CheckResult check;

  /// Correct replicas' store digests agreed after the post-workload heal
  /// and convergence grace. Independent of the client-side audit.
  bool stores_converged = false;

  std::uint64_t ops_completed = 0;
  std::uint64_t ops_timed_out = 0;
  std::uint64_t gateway_demotions = 0;
  std::uint64_t envelopes = 0;
  std::uint64_t envelopes_dropped = 0;

  /// Reproducibility witnesses (see history_digest / EnvelopeLog::digest).
  crypto::Digest history_digest{};
  crypto::Digest envelope_digest{};

  std::vector<OpRecord> history;

  /// A run fails when the checker conclusively rejects the history or the
  /// correct replicas never converged.
  bool failed() const {
    return (!check.linearizable && check.conclusive) || !stores_converged;
  }
};

class Harness {
 public:
  explicit Harness(CheckerOptions checker_options = {})
      : checker_options_(checker_options) {}

  /// Executes `schedule` to completion and audits the observed history.
  RunResult run(const Schedule& schedule) const;

  struct ShrinkResult {
    Schedule schedule;       ///< Minimized schedule (still failing).
    std::uint32_t runs = 0;  ///< Re-executions the minimization spent.
    /// Events/knobs removed relative to the input schedule.
    std::uint32_t removed_events = 0;
  };

  /// Greedy delta-debugging: repeatedly re-runs edited copies of
  /// `failing`, keeping every edit after which the run still fails —
  /// fault events first (ddmin over the timeline), then Byzantine roles
  /// and workload-shape knobs. `failing` must itself fail.
  ShrinkResult shrink(const Schedule& failing,
                      std::uint32_t max_runs = 80) const;

 private:
  CheckerOptions checker_options_;
};

}  // namespace fastbft::chaos
