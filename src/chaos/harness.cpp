#include "chaos/harness.hpp"

#ifdef CHAOS_DEBUG_TRACE
#include <cstdio>
#endif

#include <algorithm>
#include <deque>
#include <map>
#include <memory>

#include "adversary/recording_transport.hpp"
#include "common/assert.hpp"
#include "sim/random.hpp"
#include "smr/service.hpp"

namespace fastbft::chaos {

namespace {

/// Total per-request budget: rides out several failovers (timeout 6000)
/// plus a partition's worth of delay, yet guarantees every future
/// resolves — the workload's closed loops never wedge.
constexpr Duration kRequestDeadline = 14'000;

/// Closed-loop workload state shared between lane callbacks. Lives in a
/// shared_ptr because the last on_ready callbacks can fire while the
/// convergence phase is already driving the scheduler.
struct Workload {
  std::deque<OpRecord> records;
  /// Values previously PUT per key — cas `expected` draws from here so
  /// some casses genuinely race for the same expected value.
  std::map<std::string, std::vector<std::string>> written;
  std::uint32_t lanes_done = 0;
};

struct Lane {
  std::uint32_t session = 0;
  std::uint32_t remaining = 0;
  std::uint32_t value_counter = 0;
  sim::Rng rng;

  Lane(std::uint32_t session, std::uint32_t ops, sim::Rng rng)
      : session(session), remaining(ops), rng(rng) {}
};

class Driver {
 public:
  Driver(smr::Service& service, const Schedule& schedule,
         std::shared_ptr<Workload> work)
      : service_(service), schedule_(schedule), work_(std::move(work)) {
    sim::Rng root(schedule_.seed ^ 0x776f726bULL);
    for (std::uint32_t k = 0; k < schedule_.sessions; ++k) {
      lanes_.push_back(std::make_shared<Lane>(
          k, schedule_.ops_per_session, root.fork(k + 1)));
    }
  }

  void start() {
    for (auto& lane : lanes_) step(lane);
  }

 private:
  TimePoint now() const {
    return service_.sim_network()->scheduler().now();
  }

  std::string pick_key(Lane& lane) {
    return "k" + std::to_string(lane.rng.next_below(schedule_.key_space));
  }

  OpRecord& new_record(Lane& lane, smr::OpKind kind, std::string key) {
    work_->records.emplace_back();
    OpRecord& rec = work_->records.back();
    rec.client_id = schedule_.n + lane.session;
    rec.kind = kind;
    rec.key = std::move(key);
    rec.invoked = now();
    return rec;
  }

  /// One closed-loop step: draw an op, submit it, chain the next step
  /// onto its completion. Futures always resolve (kRequestDeadline), so
  /// every lane runs to exactly `ops_per_session` recorded ops.
  void step(std::shared_ptr<Lane> lane) {
    if (lane->remaining == 0) {
      ++work_->lanes_done;
      return;
    }
    --lane->remaining;
    smr::ClientSession& session = service_.session(lane->session);
    std::uint64_t draw = lane->rng.next_below(100);
    if (draw < 40) {
      std::string key = pick_key(*lane);
      std::string value = "s" + std::to_string(lane->session) + "n" +
                          std::to_string(lane->value_counter++);
      OpRecord& rec = new_record(*lane, smr::OpKind::Put, key);
      rec.value = value;
      std::size_t index = work_->records.size() - 1;
      work_->written[key].push_back(value);
      finish_one(session.put(key, value), lane, index);
    } else if (draw < 65) {
      std::string key = pick_key(*lane);
      std::size_t index = work_->records.size();
      new_record(*lane, smr::OpKind::Get, key);
      finish_one(session.get(key), lane, index);
    } else if (draw < 77) {
      std::string key = pick_key(*lane);
      std::size_t index = work_->records.size();
      new_record(*lane, smr::OpKind::Del, key);
      finish_one(session.del(key), lane, index);
    } else if (draw < 90) {
      std::string key = pick_key(*lane);
      const auto& pool = work_->written[key];
      std::string expected =
          !pool.empty() && lane->rng.chance(3, 4)
              ? pool[lane->rng.next_below(pool.size())]
              : "absent" + std::to_string(lane->rng.next_below(4));
      std::string value = "s" + std::to_string(lane->session) + "n" +
                          std::to_string(lane->value_counter++);
      OpRecord& rec = new_record(*lane, smr::OpKind::Cas, key);
      rec.value = value;
      rec.expected = expected;
      std::size_t index = work_->records.size() - 1;
      work_->written[key].push_back(value);
      finish_one(session.cas(key, expected, value), lane, index);
    } else {
      // mget over 2-3 distinct keys: recorded as independent per-key
      // reads sharing the batch's interval (each sub-read's true interval
      // is contained in it — a sound widening; the batch is documented as
      // per-key reads, not a snapshot). Clamped to the key space: a
      // shrunk schedule can have fewer distinct keys than the draw asks
      // for, and the distinct-key loop below must stay satisfiable.
      std::size_t fan = 2 + lane->rng.next_below(2);
      fan = std::min<std::size_t>(fan, schedule_.key_space);
      std::vector<std::string> keys;
      std::vector<std::size_t> indices;
      while (keys.size() < fan) {
        std::string key = pick_key(*lane);
        if (std::find(keys.begin(), keys.end(), key) != keys.end()) continue;
        indices.push_back(work_->records.size());
        new_record(*lane, smr::OpKind::Get, key);
        keys.push_back(std::move(key));
      }
      auto work = work_;
      auto self = this;
      session.mget(keys).on_ready(
          [self, work, lane, indices](const std::vector<smr::Reply>& replies) {
            TimePoint at = self->now();
            for (std::size_t i = 0; i < indices.size(); ++i) {
              OpRecord& rec = work->records[indices[i]];
              rec.returned = at;
              rec.completed = true;
              rec.reply = replies[i];
              rec.sequence = replies[i].sequence;
            }
            self->step(lane);
          });
    }
  }

  void finish_one(smr::Future<smr::Reply> future, std::shared_ptr<Lane> lane,
                  std::size_t index) {
    auto work = work_;
    auto self = this;
    std::move(future).on_ready([self, work, lane, index](const smr::Reply& reply) {
      OpRecord& rec = work->records[index];
      rec.returned = self->now();
      rec.completed = true;
      rec.reply = reply;
      rec.sequence = reply.sequence;
      self->step(lane);
    });
  }

  smr::Service& service_;
  const Schedule& schedule_;
  std::shared_ptr<Workload> work_;
  std::vector<std::shared_ptr<Lane>> lanes_;
};

}  // namespace

RunResult Harness::run(const Schedule& schedule) const {
  FASTBFT_ASSERT(schedule.n >= 1 && schedule.sessions >= 1 &&
                     schedule.key_space >= 1,
                 "degenerate schedule");

  smr::ServiceConfig config;
  config.with_cluster(schedule.n, schedule.f, schedule.t)
      .with_sessions(schedule.sessions)
      .with_shards(std::max(1u, schedule.shards))
      .with_pipeline_depth(std::max(1u, schedule.pipeline_depth))
      .with_rotating_leaders(schedule.rotate_leaders)
      .with_deadline(kRequestDeadline)
      .with_seed(schedule.seed);
  if (schedule.adaptive) config.with_adaptive(2'500, 1, 8);
  config.unsafe_first_reply_quorum = schedule.unsafe_first_reply_quorum;
  {
    std::uint32_t lying = schedule.lying_mask;
    std::uint32_t byz_gateway = schedule.byz_gateway_mask;
    bool corrupt = schedule.corrupt_forwards;
    config.with_tune_replica(
        [lying, byz_gateway, corrupt](ProcessId id, smr::SmrOptions& smr) {
          // Cap view-timeout doubling: under chaos-grade loss a stalled
          // slot can escalate views for the whole fault window, and an
          // uncapped backoff (default 2^20 * base) would push the next
          // retry — the laggard's only catch-up trigger — far beyond the
          // post-heal convergence phase. 2^7 * base = ~154k ticks keeps
          // retries live within the budget while still backing off.
          smr.node.sync.max_doublings =
              std::min<std::uint32_t>(smr.node.sync.max_doublings, 7);
          if ((lying >> id) & 1) smr.byzantine.lie_in_replies = true;
          if ((byz_gateway >> id) & 1) {
            if (corrupt) {
              smr.byzantine.corrupt_forwards = true;
            } else {
              smr.byzantine.drop_forwards = true;
            }
          }
        });
  }

  auto service = smr::make_sim_service(config);
  net::SimNetwork* net = service->sim_network();
  FASTBFT_ASSERT(net != nullptr, "chaos harness requires the sim runtime");
  sim::Scheduler& sched = net->scheduler();

  adversary::EnvelopeLog log;
  net->set_observer([&log](const net::Envelope& env, TimePoint sent,
                           TimePoint delivered) {
    log.record(env, sent, delivered);
  });

  // Arm the fault timeline. The guards make every event idempotent-ish —
  // a crash of a crashed replica or a restart of a live one is skipped —
  // so any SUBSET of a valid timeline is valid, which is exactly what the
  // shrinker needs when it deletes events.
  auto down = std::make_shared<std::vector<bool>>(schedule.n, false);
  smr::Service* svc = service.get();
  for (const FaultEvent& ev : schedule.faults) {
    sched.schedule_at(ev.at, [ev, svc, net, down] {
      switch (ev.kind) {
        case FaultEvent::Kind::Crash:
          if (!(*down)[ev.a]) {
            (*down)[ev.a] = true;
            svc->crash(ev.a);
          }
          break;
        case FaultEvent::Kind::Restart:
          if ((*down)[ev.a]) {
            (*down)[ev.a] = false;
            svc->restart(ev.a);
          }
          break;
        case FaultEvent::Kind::PartitionStart: {
          std::vector<std::uint8_t> side(net->size());
          for (std::uint32_t i = 0; i < net->size(); ++i) {
            side[i] = (ev.side_mask >> i) & 1;
          }
          net->set_partition(std::move(side));
          break;
        }
        case FaultEvent::Kind::PartitionHeal:
          net->clear_partition();
          break;
        case FaultEvent::Kind::LinkFault:
          net->set_link_fault(ev.a, ev.b, ev.fault);
          break;
        case FaultEvent::Kind::LinkHeal:
          net->clear_link_fault(ev.a, ev.b);
          break;
      }
    });
  }

  auto work = std::make_shared<Workload>();
  Driver driver(*service, schedule, work);

  service->start();
  driver.start();

  // Phase 1: drive the workload to completion. Every op resolves within
  // kRequestDeadline, so the bound below is generous, not hopeful.
  std::uint64_t total_ops =
      static_cast<std::uint64_t>(schedule.sessions) * schedule.ops_per_session;
  std::chrono::milliseconds workload_budget(
      (total_ops * (kRequestDeadline + 2'000)) / 1'000 + 200);
  bool workload_done = service->run_until(
      [&work, &schedule] { return work->lanes_done == schedule.sessions; },
      workload_budget);

  // Phase 2: heal everything and drive the correct replicas to
  // convergence (retried duplicates drain into dedup no-ops, laggards
  // catch up via SMR_DECIDED). The budget looks extravagant — 2M ticks —
  // but a laggard's catch-up trigger is its own capped view-change
  // retry (up to ~154k ticks apart after a long fault window, see the
  // max_doublings cap above), and the event-driven scheduler skips idle
  // time, so a converging run pays only for the events it actually runs.
  net->clear_partition();
  net->clear_link_faults();
  service->run_until([] { return false; }, std::chrono::milliseconds(30));
  bool converged = service->run_until(
      [&svc = *service] { return svc.stores_agree(); },
      std::chrono::milliseconds(2000));

  RunResult result;
  result.stores_converged = workload_done && converged;
#ifdef CHAOS_DEBUG_TRACE
  std::fprintf(stderr, "[dbg] workload_done=%d converged=%d now=%llu\n",
               (int)workload_done, (int)converged,
               (unsigned long long)sched.now());
  for (ProcessId id = 0; id < schedule.n; ++id) {
    std::fprintf(stderr, "[dbg] replica %u faulty=%d applied=%llu\n", id,
                 (int)service->is_faulty(id),
                 (unsigned long long)service->applied_commands(id));
  }
  std::fprintf(stderr, "%s\n", log.dump(80).c_str());
#endif
  result.history.assign(work->records.begin(), work->records.end());
  for (const OpRecord& op : result.history) {
    if (!op.completed) continue;
    if (op.reply.timed_out()) {
      ++result.ops_timed_out;
    } else {
      ++result.ops_completed;
    }
  }
  for (std::uint32_t k = 0; k < schedule.sessions; ++k) {
    result.gateway_demotions += service->session(k).gateway_demotions();
  }
  result.envelopes = log.count();
  result.envelopes_dropped = net->dropped_count();
  result.history_digest = history_digest(result.history);
  result.envelope_digest = log.digest();

  LinearizabilityChecker checker(checker_options_);
  result.check = checker.check(result.history);

  // Drop the observer before the log dies (the service outlives `log`'s
  // scope only until return, but being explicit costs nothing).
  net->set_observer(nullptr);
  return result;
}

Harness::ShrinkResult Harness::shrink(const Schedule& failing,
                                      std::uint32_t max_runs) const {
  ShrinkResult out;
  out.schedule = failing;
  auto still_fails = [this, &out, max_runs](const Schedule& candidate) {
    if (out.runs >= max_runs) return false;
    ++out.runs;
    return run(candidate).failed();
  };

  // The input must fail, or there is nothing to minimize.
  if (!still_fails(failing)) return out;

  Schedule& best = out.schedule;

  // 1. ddmin over the fault timeline: delete chunks, halving the chunk
  // size until single events.
  std::size_t chunk = std::max<std::size_t>(1, best.faults.size());
  while (chunk >= 1) {
    std::size_t start = 0;
    while (start < best.faults.size()) {
      Schedule candidate = best;
      std::size_t end = std::min(start + chunk, candidate.faults.size());
      candidate.faults.erase(candidate.faults.begin() + start,
                             candidate.faults.begin() + end);
      if (still_fails(candidate)) {
        out.removed_events += static_cast<std::uint32_t>(end - start);
        best = candidate;
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) break;
    chunk /= 2;
  }

  // 2. Byzantine roles and workload knobs, cheapest-to-drop first. Each
  // edit is kept only while the run still fails.
  auto try_edit = [&](auto edit) {
    Schedule candidate = best;
    edit(candidate);
    if (candidate == best) return;
    if (still_fails(candidate)) best = candidate;
  };
  try_edit([](Schedule& s) { s.byz_gateway_mask = 0; });
  try_edit([](Schedule& s) { s.lying_mask = 0; });
  try_edit([](Schedule& s) { s.adaptive = false; });
  try_edit([](Schedule& s) { s.pipeline_depth = 1; });
  try_edit([](Schedule& s) { s.shards = 1; });
  try_edit([](Schedule& s) { s.sessions = std::max(1u, s.sessions / 2); });
  for (int i = 0; i < 3; ++i) {
    try_edit([](Schedule& s) {
      s.ops_per_session = std::max(4u, s.ops_per_session / 2);
    });
  }
  try_edit([](Schedule& s) { s.key_space = std::max(2u, s.key_space / 2); });
  return out;
}

}  // namespace fastbft::chaos
