#include "chaos/schedule.hpp"

#include <algorithm>

#include "common/bytes.hpp"
#include "sim/random.hpp"

namespace fastbft::chaos {

namespace {

constexpr std::uint8_t kScheduleVersion = 2;

const char* event_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::Crash: return "crash";
    case FaultEvent::Kind::Restart: return "restart";
    case FaultEvent::Kind::PartitionStart: return "partition";
    case FaultEvent::Kind::PartitionHeal: return "heal-partition";
    case FaultEvent::Kind::LinkFault: return "link-fault";
    case FaultEvent::Kind::LinkHeal: return "link-heal";
  }
  return "?";
}

}  // namespace

void Schedule::encode(Encoder& enc) const {
  enc.u8(kScheduleVersion);
  enc.u64(seed);
  enc.u32(n);
  enc.u32(f);
  enc.u32(t);
  enc.u32(shards);
  enc.u32(sessions);
  enc.u32(ops_per_session);
  enc.u32(key_space);
  enc.u32(pipeline_depth);
  enc.boolean(adaptive);
  enc.boolean(rotate_leaders);
  enc.u32(lying_mask);
  enc.u32(byz_gateway_mask);
  enc.boolean(corrupt_forwards);
  enc.boolean(unsafe_first_reply_quorum);
  enc.u64(static_cast<std::uint64_t>(horizon));
  enc.u32(static_cast<std::uint32_t>(faults.size()));
  for (const FaultEvent& ev : faults) {
    enc.u8(static_cast<std::uint8_t>(ev.kind));
    enc.u64(static_cast<std::uint64_t>(ev.at));
    enc.u32(ev.a);
    enc.u32(ev.b);
    enc.u32(ev.side_mask);
    enc.u64(static_cast<std::uint64_t>(ev.fault.extra_min));
    enc.u64(static_cast<std::uint64_t>(ev.fault.extra_max));
    enc.u32(ev.fault.drop_permille);
  }
}

std::optional<Schedule> Schedule::decode(Decoder& dec) {
  if (dec.u8() != kScheduleVersion) return std::nullopt;
  Schedule s;
  s.seed = dec.u64();
  s.n = dec.u32();
  s.f = dec.u32();
  s.t = dec.u32();
  s.shards = dec.u32();
  s.sessions = dec.u32();
  s.ops_per_session = dec.u32();
  s.key_space = dec.u32();
  s.pipeline_depth = dec.u32();
  s.adaptive = dec.boolean();
  s.rotate_leaders = dec.boolean();
  s.lying_mask = dec.u32();
  s.byz_gateway_mask = dec.u32();
  s.corrupt_forwards = dec.boolean();
  s.unsafe_first_reply_quorum = dec.boolean();
  s.horizon = static_cast<TimePoint>(dec.u64());
  std::uint32_t count = dec.u32();
  if (!dec.ok() || count > 10'000) return std::nullopt;
  s.faults.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    FaultEvent ev;
    std::uint8_t kind = dec.u8();
    if (kind < 1 || kind > 6) return std::nullopt;
    ev.kind = static_cast<FaultEvent::Kind>(kind);
    ev.at = static_cast<TimePoint>(dec.u64());
    ev.a = dec.u32();
    ev.b = dec.u32();
    ev.side_mask = dec.u32();
    ev.fault.extra_min = static_cast<Duration>(dec.u64());
    ev.fault.extra_max = static_cast<Duration>(dec.u64());
    ev.fault.drop_permille = dec.u32();
    s.faults.push_back(ev);
  }
  if (!dec.ok()) return std::nullopt;
  return s;
}

std::string Schedule::to_hex() const {
  Encoder enc;
  encode(enc);
  Bytes encoded = std::move(enc).take();
  return fastbft::to_hex(encoded);
}

std::optional<Schedule> Schedule::from_hex(std::string_view hex) {
  Bytes raw = fastbft::from_hex(hex);
  if (raw.empty()) return std::nullopt;
  Decoder dec{ByteView(raw)};
  auto s = decode(dec);
  if (!s || !dec.at_end()) return std::nullopt;
  return s;
}

std::string Schedule::to_string() const {
  std::string out = "schedule seed=" + std::to_string(seed) + " n=" +
                    std::to_string(n) + " f=" + std::to_string(f) +
                    " shards=" + std::to_string(shards) + " sessions=" +
                    std::to_string(sessions) + " ops=" +
                    std::to_string(ops_per_session) + " keys=" +
                    std::to_string(key_space) + " depth=" +
                    std::to_string(pipeline_depth);
  if (adaptive) out += " adaptive";
  if (rotate_leaders) out += " rotate";
  if (lying_mask) out += " liars=0x" + std::to_string(lying_mask);
  if (byz_gateway_mask) {
    out += corrupt_forwards ? " corrupt-gateways=0x" : " drop-gateways=0x";
    out += std::to_string(byz_gateway_mask);
  }
  if (unsafe_first_reply_quorum) out += " UNSAFE-QUORUM";
  out += " horizon=" + std::to_string(horizon) + "\n";
  for (const FaultEvent& ev : faults) {
    out += "  @" + std::to_string(ev.at) + " " + event_name(ev.kind);
    switch (ev.kind) {
      case FaultEvent::Kind::Crash:
      case FaultEvent::Kind::Restart:
        out += " replica " + std::to_string(ev.a);
        break;
      case FaultEvent::Kind::PartitionStart:
        out += " sides=0b";
        for (std::uint32_t i = n; i-- > 0;) {
          out += (ev.side_mask >> i) & 1 ? '1' : '0';
        }
        break;
      case FaultEvent::Kind::PartitionHeal:
        break;
      case FaultEvent::Kind::LinkFault:
        out += " " + std::to_string(ev.a) + "->" + std::to_string(ev.b) +
               " delay=[" + std::to_string(ev.fault.extra_min) + "," +
               std::to_string(ev.fault.extra_max) + "] drop=" +
               std::to_string(ev.fault.drop_permille) + "/1000";
        break;
      case FaultEvent::Kind::LinkHeal:
        out += " " + std::to_string(ev.a) + "->" + std::to_string(ev.b);
        break;
    }
    out += "\n";
  }
  return out;
}

Schedule generate_schedule(std::uint64_t seed,
                           const ScenarioOptions& options) {
  sim::Rng rng(seed ^ 0x73636564756cULL);
  Schedule s;
  s.seed = seed;
  s.shards = options.shards;
  s.sessions = options.sessions;
  s.ops_per_session = options.ops_per_session;
  s.adaptive = options.adaptive;
  s.key_space = 4 + static_cast<std::uint32_t>(rng.next_below(8));
  s.pipeline_depth = 1 + static_cast<std::uint32_t>(rng.next_below(4));
  s.rotate_leaders = rng.chance(1, 2);

  // Byzantine casting. The crash/restart victim and the lying replica
  // must be DIFFERENT replicas: the cluster's fault accounting admits at
  // most f crashed replicas, and the reply-quorum argument admits at most
  // f liars — with f = 1, one each, and a replica that both lies and
  // crashes would double-spend the budget the moment the other role is
  // also cast.
  ProcessId victim = static_cast<ProcessId>(rng.next_below(s.n));
  bool cast_liar = options.force_liar || rng.chance(1, 3);
  if (cast_liar) {
    ProcessId liar = victim;
    while (liar == victim) {
      liar = static_cast<ProcessId>(rng.next_below(s.n));
    }
    s.lying_mask = 1u << liar;
  }
  if (rng.chance(1, 3)) {
    // Byzantine gateways cost no budget; any replica qualifies, even the
    // liar — sessions blacklist their way around it.
    s.byz_gateway_mask = 1u << rng.next_below(s.n);
    s.corrupt_forwards = rng.chance(1, 2);
  }

  // Fault timeline: crash/restart cycles only ever target `victim`
  // (budget above), partitions and link faults are free-form. Events land
  // in the first ~2/3 of the horizon so the tail is quiet enough for the
  // post-workload convergence drive.
  std::uint32_t num_events =
      1 + static_cast<std::uint32_t>(rng.next_below(options.max_fault_events));
  TimePoint window = s.horizon * 2 / 3;
  // Draw the event times first and sort them, THEN assign kinds in time
  // order: the crash/restart and partition state machines below reason in
  // time order, so pairings stay consistent without any post-hoc sort.
  std::vector<TimePoint> times;
  times.reserve(num_events);
  for (std::uint32_t i = 0; i < num_events; ++i) {
    times.push_back(1'000 + rng.next_in_range(0, window));
  }
  std::sort(times.begin(), times.end());
  bool victim_down = false;
  bool partitioned = false;
  for (std::uint32_t i = 0; i < num_events; ++i) {
    FaultEvent ev;
    ev.at = times[i];
    switch (rng.next_below(4)) {
      case 0:
        if (victim_down) {
          ev.kind = FaultEvent::Kind::Restart;
          ev.a = victim;
          victim_down = false;
        } else {
          ev.kind = FaultEvent::Kind::Crash;
          ev.a = victim;
          victim_down = true;
        }
        break;
      case 1:
        if (partitioned) {
          ev.kind = FaultEvent::Kind::PartitionHeal;
          partitioned = false;
        } else {
          ev.kind = FaultEvent::Kind::PartitionStart;
          // A nonempty proper subset of the replicas on side 1.
          ev.side_mask = 1 + static_cast<std::uint32_t>(
                                 rng.next_below((1u << s.n) - 2));
          partitioned = true;
        }
        break;
      case 2: {
        ev.kind = FaultEvent::Kind::LinkFault;
        ev.a = static_cast<ProcessId>(rng.next_below(s.n));
        ev.b = static_cast<ProcessId>(rng.next_below(s.n));
        if (ev.a == ev.b) ev.b = (ev.b + 1) % s.n;
        ev.fault.extra_min = rng.next_in_range(50, 400);
        ev.fault.extra_max =
            ev.fault.extra_min + rng.next_in_range(0, 1'500);
        ev.fault.drop_permille =
            static_cast<std::uint32_t>(rng.next_below(301));
        break;
      }
      default: {
        ev.kind = FaultEvent::Kind::LinkHeal;
        ev.a = static_cast<ProcessId>(rng.next_below(s.n));
        ev.b = static_cast<ProcessId>(rng.next_below(s.n));
        if (ev.a == ev.b) ev.b = (ev.b + 1) % s.n;
        break;
      }
    }
    s.faults.push_back(ev);
  }
  return s;
}

}  // namespace fastbft::chaos
