#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/history.hpp"

/// \file checker.hpp
/// Linearizability checker for observed KV histories (Wing & Gong style
/// search, per-key partitioning).
///
/// What "linearizable" means here: every completed, non-timeout operation
/// must appear to take effect atomically at some point between its
/// invocation and its response, against the sequential KvStore semantics
/// (smr/kvstore.hpp) — Put always succeeds, Del/Get/Cas report whether the
/// key existed BEFORE execution, Cas installs only when the current value
/// equals `expected`. Ambiguous operations (OpRecord::ambiguous: never
/// completed, or completed as Timeout) may take effect at any single point
/// after their invocation or never at all; both branches are explored.
///
/// Per-key partitioning: KV operations on different keys commute, so a
/// history is linearizable iff each key's sub-history is (the standard
/// locality decomposition). That turns one search over N ops into many
/// small searches, which is what keeps the DFS tractable; it also means
/// cross-key claims (e.g. mget atomicity) are deliberately NOT checked —
/// mget is documented as per-key reads only (docs/SHARDING.md).
///
/// The search memoizes (handled-set, key state) pairs and gives up past
/// `max_states_per_key`, reporting conclusive = false rather than a
/// verdict it did not earn.

namespace fastbft::chaos {

struct CheckerOptions {
  /// DFS state budget per key before the checker declares the key
  /// inconclusive (explored states = memoized (handled-set, state) pairs).
  /// Real chaos histories decide in well under 1k states per key — the
  /// budget only gets eaten by pathological mostly-ambiguous histories
  /// (every op timed out), where the search would end inconclusive anyway
  /// and a larger budget just burns shrinker wall time.
  std::size_t max_states_per_key = 100'000;
};

struct CheckResult {
  /// No violation found. Trustworthy as "linearizable" only when
  /// `conclusive` is also true.
  bool linearizable = true;

  /// False when some key's search exhausted its state budget without
  /// finding either a witness or a violation.
  bool conclusive = true;

  /// Human-readable account of the first violating key: the sub-history
  /// that admits no valid linearization. Empty when linearizable.
  std::string violation;

  /// The key the violation was found on.
  std::string violating_key;

  std::uint64_t states_explored = 0;
  std::uint32_t keys_checked = 0;
};

class LinearizabilityChecker {
 public:
  explicit LinearizabilityChecker(CheckerOptions options = {})
      : options_(options) {}

  /// Checks the full history (all keys). Stops at the first violating key.
  CheckResult check(const std::vector<OpRecord>& history) const;

 private:
  CheckerOptions options_;
};

}  // namespace fastbft::chaos
