#include "chaos/checker.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_set>

namespace fastbft::chaos {

namespace {

/// One operation in a single key's sub-history. `limit` is the real-time
/// upper bound other ops must respect: the response time for definite
/// ops, kTimeInfinity for ambiguous ones (a timed-out command may still
/// execute arbitrarily late, so it never constrains anyone's order).
struct KeyOp {
  const OpRecord* op = nullptr;
  TimePoint invoked = 0;
  TimePoint limit = 0;
  bool ambiguous = false;
};

using State = std::optional<std::string>;

/// Does the recorded result match executing `op` against pre-state `s`?
/// Mirrors KvStore::apply exactly: `found` reports existence BEFORE
/// execution for every kind; Put/Del/Get are always ok; Cas is ok iff the
/// pre-value equals `expected`.
bool result_matches(const OpRecord& op, const State& s) {
  const smr::ExecResult& r = op.reply.result;
  bool found = s.has_value();
  switch (op.kind) {
    case smr::OpKind::Put:
    case smr::OpKind::Del:
      return r.ok && r.found == found;
    case smr::OpKind::Get:
      if (!r.ok || r.found != found) return false;
      return found ? r.value == *s : r.value.empty();
    case smr::OpKind::Cas:
      return r.found == found && r.ok == (found && *s == op.expected);
    case smr::OpKind::Noop:
      return true;
  }
  return false;
}

State apply_effect(const OpRecord& op, const State& s) {
  switch (op.kind) {
    case smr::OpKind::Put:
      return op.value;
    case smr::OpKind::Del:
      return std::nullopt;
    case smr::OpKind::Cas:
      if (s.has_value() && *s == op.expected) return op.value;
      return s;
    case smr::OpKind::Get:
    case smr::OpKind::Noop:
      return s;
  }
  return s;
}

/// Wing-Gong DFS over one key's sub-history.
class KeySearch {
 public:
  KeySearch(std::vector<KeyOp> ops, std::size_t budget)
      : ops_(std::move(ops)), budget_(budget) {
    words_ = (ops_.size() + 63) / 64;
    mask_.assign(words_, 0);
    for (const KeyOp& op : ops_) {
      if (!op.ambiguous) ++total_definite_;
    }
  }

  /// True iff a valid linearization exists. Check `inconclusive()` —
  /// a false return with the budget blown proves nothing.
  bool run() { return dfs(std::nullopt, 0); }

  bool inconclusive() const { return inconclusive_; }
  std::uint64_t explored() const { return explored_; }

 private:
  bool handled(std::size_t i) const {
    return (mask_[i / 64] >> (i % 64)) & 1;
  }
  void set_handled(std::size_t i) { mask_[i / 64] |= 1ULL << (i % 64); }
  void clear_handled(std::size_t i) { mask_[i / 64] &= ~(1ULL << (i % 64)); }

  std::string memo_key(const State& s) const {
    std::string key(reinterpret_cast<const char*>(mask_.data()),
                    words_ * sizeof(std::uint64_t));
    key.push_back(s.has_value() ? '\1' : '\0');
    if (s.has_value()) key += *s;
    return key;
  }

  bool dfs(const State& state, std::size_t handled_definite) {
    // Every definite op linearized and the model never contradicted: the
    // remaining (ambiguous) ops all take the never-applied branch.
    if (handled_definite == total_definite_) return true;
    if (inconclusive_) return false;
    if (!memo_.insert(memo_key(state)).second) return false;
    if (++explored_ > budget_) {
      inconclusive_ = true;
      return false;
    }

    // An op is eligible next iff no unhandled op's response precedes its
    // invocation (Wing & Gong's minimality rule). Ambiguous ops carry an
    // infinite limit, so only unhandled definite ops constrain.
    TimePoint min_limit = kTimeInfinity;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (!handled(i) && !ops_[i].ambiguous) {
        min_limit = std::min(min_limit, ops_[i].limit);
      }
    }

    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (handled(i) || ops_[i].invoked > min_limit) continue;
      const OpRecord& op = *ops_[i].op;
      set_handled(i);
      if (!ops_[i].ambiguous) {
        if (result_matches(op, state) &&
            dfs(apply_effect(op, state), handled_definite + 1)) {
          clear_handled(i);
          return true;
        }
      } else {
        // Applied branch first (only when it changes anything — a no-op
        // apply is identical to the skip branch below).
        State next = apply_effect(op, state);
        if (next != state && dfs(next, handled_definite)) {
          clear_handled(i);
          return true;
        }
        // Never-applied branch.
        if (dfs(state, handled_definite)) {
          clear_handled(i);
          return true;
        }
      }
      clear_handled(i);
    }
    return false;
  }

  std::vector<KeyOp> ops_;
  std::size_t budget_;
  std::size_t words_ = 0;
  std::size_t total_definite_ = 0;
  std::vector<std::uint64_t> mask_;
  std::unordered_set<std::string> memo_;
  std::uint64_t explored_ = 0;
  bool inconclusive_ = false;
};

}  // namespace

CheckResult LinearizabilityChecker::check(
    const std::vector<OpRecord>& history) const {
  CheckResult result;

  // Locality: partition by key (map: deterministic key order).
  std::map<std::string, std::vector<KeyOp>> by_key;
  for (const OpRecord& op : history) {
    if (op.kind == smr::OpKind::Noop) continue;
    bool ambiguous = op.ambiguous();
    // An ambiguous read neither constrains the order (infinite limit) nor
    // changes state in its applied branch: dropping it is exact, not an
    // approximation.
    if (ambiguous && op.kind == smr::OpKind::Get) continue;
    KeyOp key_op;
    key_op.op = &op;
    key_op.invoked = op.invoked;
    key_op.limit = ambiguous ? kTimeInfinity : op.returned;
    key_op.ambiguous = ambiguous;
    by_key[op.key].push_back(key_op);
  }

  for (auto& [key, ops] : by_key) {
    std::sort(ops.begin(), ops.end(), [](const KeyOp& a, const KeyOp& b) {
      if (a.invoked != b.invoked) return a.invoked < b.invoked;
      if (a.limit != b.limit) return a.limit < b.limit;
      return a.op->sequence < b.op->sequence;
    });
    ++result.keys_checked;
    KeySearch search(ops, options_.max_states_per_key);
    bool ok = search.run();
    result.states_explored += search.explored();
    if (ok) continue;
    if (search.inconclusive()) {
      result.conclusive = false;
      continue;  // another key may still hold a conclusive violation
    }
    result.linearizable = false;
    result.violating_key = key;
    result.violation =
        "no valid linearization for key \"" + key + "\" (" +
        std::to_string(ops.size()) + " ops):\n";
    for (const KeyOp& op : ops) {
      result.violation += "  " + describe(*op.op) + "\n";
    }
    return result;
  }
  return result;
}

}  // namespace fastbft::chaos
