#include "chaos/history.hpp"

#include <algorithm>

#include "common/codec.hpp"

namespace fastbft::chaos {

namespace {

const char* kind_name(smr::OpKind kind) {
  switch (kind) {
    case smr::OpKind::Put: return "put";
    case smr::OpKind::Del: return "del";
    case smr::OpKind::Get: return "get";
    case smr::OpKind::Cas: return "cas";
    case smr::OpKind::Noop: return "noop";
  }
  return "?";
}

}  // namespace

crypto::Digest history_digest(const std::vector<OpRecord>& history) {
  std::vector<const OpRecord*> sorted;
  sorted.reserve(history.size());
  for (const OpRecord& op : history) sorted.push_back(&op);
  std::sort(sorted.begin(), sorted.end(),
            [](const OpRecord* a, const OpRecord* b) {
              if (a->client_id != b->client_id)
                return a->client_id < b->client_id;
              if (a->sequence != b->sequence) return a->sequence < b->sequence;
              return a->key < b->key;
            });
  Encoder enc;
  for (const OpRecord* op : sorted) {
    enc.u64(op->client_id);
    enc.u64(op->sequence);
    enc.u8(static_cast<std::uint8_t>(op->kind));
    enc.str(op->key);
    enc.str(op->value);
    enc.str(op->expected);
    enc.u64(static_cast<std::uint64_t>(op->invoked));
    enc.u64(op->completed ? static_cast<std::uint64_t>(op->returned) : 0);
    enc.boolean(op->completed);
    if (op->completed) {
      enc.u8(static_cast<std::uint8_t>(op->reply.status));
      enc.boolean(op->reply.result.ok);
      enc.boolean(op->reply.result.found);
      enc.str(op->reply.result.value);
      enc.u64(op->reply.slot);
    }
  }
  Bytes encoded = std::move(enc).take();
  return crypto::sha256(encoded);
}

std::string describe(const OpRecord& op) {
  std::string out = "c" + std::to_string(op.client_id) + "#" +
                    std::to_string(op.sequence) + " " + kind_name(op.kind) +
                    "(" + op.key;
  if (op.kind == smr::OpKind::Cas) {
    out += ", " + op.expected + " -> " + op.value;
  } else if (op.kind == smr::OpKind::Put) {
    out += ", " + op.value;
  }
  out += ") [" + std::to_string(op.invoked) + ", ";
  out += op.completed ? std::to_string(op.returned) : std::string("pending");
  out += "]";
  if (!op.completed) return out + " -> ?";
  if (op.reply.timed_out()) return out + " -> TIMEOUT";
  out += " -> ok=" + std::to_string(op.reply.result.ok) +
         " found=" + std::to_string(op.reply.result.found);
  if (op.kind == smr::OpKind::Get && op.reply.result.found) {
    out += " value=" + op.reply.result.value;
  }
  return out;
}

}  // namespace fastbft::chaos
