#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/codec.hpp"
#include "net/sim_network.hpp"

/// \file schedule.hpp
/// The chaos scenario grammar: a Schedule is a fully self-contained,
/// serializable description of one chaos run — cluster shape, workload
/// shape, Byzantine role assignment, and a timeline of fault events. The
/// harness (chaos/harness.hpp) executes a Schedule deterministically, so
///
///   schedule == schedule'  =>  identical history, identical verdict,
///
/// which is what makes shrinking meaningful: the delta-debugging minimizer
/// edits the Schedule (never the run) and re-executes, and a minimized
/// failing Schedule committed as hex (to_hex/from_hex) is a permanent
/// regression test. `generate_schedule(seed)` derives the whole scenario
/// from one u64, so a seed alone also names a run (docs/CHAOS.md).

namespace fastbft::chaos {

/// One timed fault action. Events are executed at absolute simulated time
/// `at`; the harness guards impossible transitions (crashing a crashed
/// replica, restarting a live one) by skipping them, so ANY subset of a
/// valid event list is itself valid — the property the shrinker relies on.
struct FaultEvent {
  enum class Kind : std::uint8_t {
    Crash = 1,           ///< fail-stop replica `a`
    Restart = 2,         ///< recover replica `a`
    PartitionStart = 3,  ///< split replicas by `side_mask` (bit i = side)
    PartitionHeal = 4,
    LinkFault = 5,       ///< install `fault` on directed link a -> b
    LinkHeal = 6,
  };

  Kind kind = Kind::Crash;
  TimePoint at = 0;
  ProcessId a = 0;
  ProcessId b = 0;
  std::uint32_t side_mask = 0;
  net::LinkFault fault;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

struct Schedule {
  /// Seed this schedule was generated from (also seeds the network model,
  /// the workload RNGs and the key material — see ServiceConfig::with_seed).
  std::uint64_t seed = 1;

  // Cluster shape.
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  std::uint32_t t = 1;

  // Workload shape.
  std::uint32_t shards = 1;
  std::uint32_t sessions = 2;
  std::uint32_t ops_per_session = 30;
  std::uint32_t key_space = 8;
  std::uint32_t pipeline_depth = 2;
  bool adaptive = false;
  /// Rotate slot leadership round-robin (the post-PR-1 engine path the
  /// legacy adversary suite never exercised; generated schedules draw it).
  bool rotate_leaders = false;

  // Byzantine roles (bit i = replica i).
  /// Replicas that execute honestly but sign fabricated results into
  /// their SMR_REPLYs. Keep popcount <= f or the f+1 reply quorum is
  /// unsound and the checker will (correctly!) flag the run.
  std::uint32_t lying_mask = 0;
  /// Replicas that sabotage their gateway role (drop or corrupt client
  /// forwards). Costs no fault budget: sessions route around them.
  std::uint32_t byz_gateway_mask = 0;
  /// Byzantine gateways corrupt the forwarded frame instead of dropping it.
  bool corrupt_forwards = false;

  /// TEST HOOK: run sessions with unsafe_first_reply_quorum (see
  /// SessionConfig) — the deliberately injected bug the checker catches.
  bool unsafe_first_reply_quorum = false;

  /// Workload/fault window in simulated ticks; the harness heals all
  /// faults after the window and drives the cluster to convergence.
  TimePoint horizon = 60'000;

  /// Fault timeline, sorted by `at`.
  std::vector<FaultEvent> faults;

  void encode(Encoder& enc) const;
  static std::optional<Schedule> decode(Decoder& dec);

  /// Hex round-trip for artifacts and committed regression schedules.
  std::string to_hex() const;
  static std::optional<Schedule> from_hex(std::string_view hex);

  /// Multi-line human-readable rendering.
  std::string to_string() const;

  friend bool operator==(const Schedule&, const Schedule&) = default;
};

/// Bounds for the schedule generator.
struct ScenarioOptions {
  std::uint32_t shards = 1;
  std::uint32_t sessions = 2;
  std::uint32_t ops_per_session = 30;
  bool adaptive = false;
  /// Force at least one lying replica (used with the injected bug so the
  /// checker has something to catch).
  bool force_liar = false;
  std::uint32_t max_fault_events = 6;
};

/// Derives a complete scenario from `seed`: crash/restart cycles on one
/// victim (respecting the f budget), partitions that always heal, lossy /
/// slow links, and randomized Byzantine role assignment.
Schedule generate_schedule(std::uint64_t seed,
                           const ScenarioOptions& options = {});

}  // namespace fastbft::chaos
