#pragma once

#include <functional>

#include "common/bytes.hpp"
#include "common/types.hpp"

/// \file transport.hpp
/// Abstract point-to-point transport. Protocol engines talk only to this
/// interface, so the same replica code runs over the deterministic simulated
/// network (net::SimNetwork) or any future real transport.

namespace fastbft::net {

/// A message in flight. `payload` begins with a one-byte type tag (see
/// consensus/messages.hpp) which the statistics collector also uses.
struct Envelope {
  ProcessId from;
  ProcessId to;
  Bytes payload;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends `payload` from the bound process to `to`. Sending to self is
  /// allowed and is delivered like any other message (with delay zero in the
  /// simulated network).
  virtual void send(ProcessId to, Bytes payload) = 0;

  /// Number of processes in the cluster (membership is static).
  virtual std::uint32_t cluster_size() const = 0;

  /// Sends to every process, including self.
  void broadcast(const Bytes& payload);

  /// Sends to every process except self.
  virtual ProcessId self() const = 0;
  void broadcast_others(const Bytes& payload);
};

using ReceiveHandler = std::function<void(ProcessId from, const Bytes& payload)>;

}  // namespace fastbft::net
