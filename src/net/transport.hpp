#pragma once

#include <functional>

#include "common/bytes.hpp"
#include "common/types.hpp"

/// \file transport.hpp
/// Abstract point-to-point transport. Protocol engines talk only to this
/// interface, so the same replica code runs over the deterministic simulated
/// network (net::SimNetwork) or any future real transport.
///
/// Payloads travel as SharedBytes: one immutable buffer with shared
/// ownership. A broadcast therefore materializes the payload once and every
/// recipient's envelope aliases it — the zero-copy fan-out the throughput
/// benchmarks measure (see net::PayloadStats). Plain Bytes convert
/// implicitly at the call site, so `send(to, msg.serialize())` still reads
/// naturally and costs exactly one materialization.

namespace fastbft::net {

/// A message in flight. `payload` begins with a one-byte type tag (see
/// consensus/messages.hpp) which the statistics collector also uses; it is
/// immutable and may be shared with the envelopes of every other recipient
/// of a broadcast.
struct Envelope {
  ProcessId from;
  ProcessId to;
  SharedBytes payload;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends `payload` from the bound process to `to`. Sending to self is
  /// allowed and is delivered like any other message (with delay zero in the
  /// simulated network).
  virtual void send(ProcessId to, SharedBytes payload) = 0;

  /// Number of processes in the cluster (membership is static).
  virtual std::uint32_t cluster_size() const = 0;

  virtual ProcessId self() const = 0;

  /// Sends to every process, including self, sharing one payload buffer
  /// across all recipients. Virtual so wrapping transports (e.g. the SMR
  /// engine's per-slot channel) can frame the payload once per broadcast
  /// instead of once per recipient.
  virtual void broadcast(SharedBytes payload);

  /// Sends to every process except self.
  virtual void broadcast_others(SharedBytes payload);
};

using ReceiveHandler = std::function<void(ProcessId from, const Bytes& payload)>;

}  // namespace fastbft::net
