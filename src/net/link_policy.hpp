#pragma once

#include <cstdint>

#include "common/types.hpp"

/// \file link_policy.hpp
/// Pure connection-lifecycle policy for one outbound/established socket
/// link: capped exponential backoff with bounded deterministic jitter for
/// connect retries, and heartbeat tx/rx deadlines for liveness. No
/// sockets, no wall clock — callers feed TimePoints (µs ticks), so the
/// whole policy is unit-testable against a fake clock
/// (tests/test_frame.cpp) and SocketNetwork just asks it "when next?".

namespace fastbft::net {

struct BackoffOptions {
  Duration initial_us = 20'000;    // first retry delay
  Duration max_us = 1'000'000;     // cap
  double multiplier = 2.0;
  double jitter = 0.25;            // delay drawn from [base, base*(1+jitter)]
};

/// Capped exponential backoff. Jitter comes from an internal xorshift64*
/// stream seeded per link, so two replicas restarting together do not
/// retry in lockstep, yet a given seed replays deterministically.
class Backoff {
 public:
  explicit Backoff(BackoffOptions opts = {}, std::uint64_t seed = 1);

  /// Delay before the next attempt; advances the exponential base.
  Duration next_delay();

  /// Base the NEXT next_delay() call will jitter from (tests).
  Duration current_base() const { return base_; }

  void reset() { base_ = opts_.initial_us; }

 private:
  std::uint64_t next_rand();

  BackoffOptions opts_;
  Duration base_;
  std::uint64_t rng_state_;
};

struct LinkPolicyOptions {
  BackoffOptions backoff;
  /// Send an empty heartbeat frame after this much tx silence.
  Duration heartbeat_interval_us = 500'000;
  /// Declare the peer down after this much rx silence (must comfortably
  /// exceed the interval so a busy-but-alive peer is never cut).
  Duration heartbeat_timeout_us = 2'000'000;
};

/// Retry + liveness bookkeeping for one link. All methods are O(1) and
/// side-effect only internal state; the owner drives I/O.
class LinkPolicy {
 public:
  explicit LinkPolicy(LinkPolicyOptions opts = {}, std::uint64_t seed = 1);

  const LinkPolicyOptions& options() const { return opts_; }

  /// Connect attempt failed (or an established link broke) at `now`.
  /// Returns the time at which to retry.
  TimePoint on_connect_failed(TimePoint now);

  /// Connection is up: resets backoff and stamps both liveness clocks.
  void on_established(TimePoint now);

  void on_rx(TimePoint now) { last_rx_ = now; }
  void on_tx(TimePoint now) { last_tx_ = now; }

  TimePoint retry_at() const { return retry_at_; }
  bool retry_due(TimePoint now) const { return now >= retry_at_; }

  /// True when tx silence calls for a heartbeat frame.
  bool heartbeat_due(TimePoint now) const {
    return now - last_tx_ >= opts_.heartbeat_interval_us;
  }

  /// True when rx silence exceeds the timeout: mark the peer down.
  bool rx_expired(TimePoint now) const {
    return now - last_rx_ >= opts_.heartbeat_timeout_us;
  }

  /// Earliest future instant at which an established link needs service
  /// (heartbeat tx due or rx expiry) — feeds the epoll_wait timeout.
  TimePoint next_established_deadline() const;

  TimePoint last_rx() const { return last_rx_; }
  TimePoint last_tx() const { return last_tx_; }
  Duration current_backoff_base() const { return backoff_.current_base(); }

 private:
  LinkPolicyOptions opts_;
  Backoff backoff_;
  TimePoint retry_at_ = 0;
  TimePoint last_rx_ = 0;
  TimePoint last_tx_ = 0;
};

}  // namespace fastbft::net
