#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_guard.hpp"
#include "net/frame.hpp"
#include "net/link_policy.hpp"
#include "net/stats.hpp"
#include "net/transport.hpp"

/// \file socket_network.hpp
/// Real TCP transport: the multi-process sibling of ThreadedNetwork.
/// Each locally attached endpoint gets one epoll readiness-loop thread
/// that owns its sockets, timers, tasks and receive handler — the same
/// single-threaded-replica discipline and the same surface
/// (attach/endpoint/post/arm_timer/cancel_timer/now_ticks), so
/// engine::BasicThreadedHost, SmrNode, smr::ClientSession, sharding,
/// snapshots and the adaptive controller run over sockets unchanged.
///
/// Wire protocol: length-prefixed frames (net/frame.hpp) with a
/// magic+version+ProcessId handshake opening each direction; empty frames
/// are idle heartbeats. Connection topology: every peer with a listen
/// address accepts; a replica dials listeners with LOWER ids (so exactly
/// one TCP connection exists per replica pair, used in both directions);
/// endpoints without a listen address (clients) dial every listener.
/// Dials retry with capped exponential backoff + jitter (LinkPolicy);
/// rx silence past the heartbeat timeout marks the peer down and the
/// dialer reconnects.
///
/// Zero-copy discipline (PR 4): outbound SharedBytes payloads are never
/// staged — the send queue keeps {4-byte header, SharedBytes} entries and
/// the loop scatter-gathers pending frames into one writev per wakeup
/// (write coalescing: syscalls amortize across pipelined slots). Inbound
/// bytes are recv'd straight into the connection's recycled FrameReader
/// buffer and handed to the receive handler through one recycled delivery
/// buffer per connection (ReceiveHandler takes `const Bytes&`, so exactly
/// one copy per frame, alloc-free in steady state — counted by
/// SocketStats delivery_allocs/delivery_reuses).
///
/// Unit tests never touch this file (morphling idiom): framing, backoff
/// and heartbeat policy are tested in memory (tests/test_frame.cpp);
/// sockets enter only via the integration test (tests/test_socket_transport),
/// the smr_server/smr_client tools and bench E15.

namespace fastbft::net {

class SocketNetwork;

class SocketEndpoint final : public Transport {
 public:
  SocketEndpoint(SocketNetwork& net, ProcessId self)
      : net_(net), self_(self) {}

  void send(ProcessId to, SharedBytes payload) override;
  std::uint32_t cluster_size() const override;
  ProcessId self() const override { return self_; }

 private:
  SocketNetwork& net_;
  ProcessId self_;
};

/// One peer's address in the cluster map. A peer with no listen address
/// (port 0 and no adopted fd) is dial-only — the client role.
struct SocketPeer {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  /// An already-bound, already-listening fd to adopt instead of binding
  /// host:port (meaningful only for ids local to this process). This is
  /// how the fork-based bench hands children port-0 listeners the parent
  /// pre-bound, so nobody races on port numbers.
  int adopted_listen_fd = -1;

  bool listens() const { return port != 0 || adopted_listen_fd >= 0; }
};

struct SocketNetworkConfig {
  /// Replica cluster size (broadcast scope); ids [0, cluster_size) are
  /// replicas, ids beyond are client endpoints.
  std::uint32_t cluster_size = 0;

  /// Address table for ALL ids (replicas first, then clients). Size of
  /// this vector is total_size().
  std::vector<SocketPeer> peers;

  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// recv() chunk per readiness wakeup.
  std::size_t read_chunk_bytes = 64 * 1024;

  /// Max frames folded into one writev call (IOV_MAX/2 bound applies too).
  std::size_t writev_batch_frames = 64;

  /// Cap on frames queued per connection while the peer is unreachable;
  /// overflow drops the newest frame (BFT protocols tolerate loss —
  /// retransmission is the protocol's job, not the transport's).
  std::size_t max_queued_frames = 65536;

  /// Emulated one-way link latency: frames sit in the send queue until
  /// they are this old (microseconds). 0 = send immediately. This is the
  /// socket counterpart of the threaded bench's artificial link delay —
  /// loopback RTTs are so far below real network RTTs that pipelining
  /// effects vanish into scheduler noise without it. Delay costs no CPU:
  /// held frames just extend the epoll timeout, and a whole RTT's worth
  /// still leaves in one writev.
  Duration tx_delay_us = 0;

  LinkPolicyOptions link;
};

/// Multi-process TCP transport. Construct with the full cluster address
/// map, attach() the locally hosted ids, start(). Each attached id runs
/// its own epoll loop thread; cross-thread entry points (send from
/// another local endpoint, post) funnel through a task queue woken by an
/// eventfd.
class SocketNetwork {
 public:
  using Clock = std::chrono::steady_clock;
  using TimerKey = std::pair<TimePoint, std::uint64_t>;

  explicit SocketNetwork(SocketNetworkConfig config);
  ~SocketNetwork();

  SocketNetwork(const SocketNetwork&) = delete;
  SocketNetwork& operator=(const SocketNetwork&) = delete;

  /// Declares `id` locally hosted and registers its receive handler.
  /// Must be called before start().
  void attach(ProcessId id, ReceiveHandler handler);

  std::unique_ptr<SocketEndpoint> endpoint(ProcessId id);

  /// Binds/adopts listen sockets and spawns one loop thread per attached
  /// id. Dials start immediately (with backoff until peers appear).
  void start();

  /// Joins loop threads and closes every socket. Safe to call twice.
  void stop();

  void send(ProcessId from, ProcessId to, SharedBytes payload);

  /// Runs `fn` on `id`'s loop thread, interleaved with its handlers and
  /// timers. Thread-safe; tasks run in post order.
  void post(ProcessId id, std::function<void()> fn);

  /// Microseconds since construction (same tick unit as ThreadedNetwork).
  TimePoint now_ticks() const;

  /// Same-thread timer contract as ThreadedNetwork::arm_timer (asserted).
  TimerKey arm_timer(ProcessId id, TimePoint at_ticks,
                     std::function<void()> fn);
  void cancel_timer(ProcessId id, TimerKey key);

  /// Same contract query as ThreadedNetwork::affinity_ok — what
  /// engine::SocketHost reports to the engine's affinity checks.
  bool affinity_ok(ProcessId id) const {
    const auto& guard = loop_of(id)->guard;
    return !guard.bound() || guard.held();
  }

  std::uint32_t size() const { return config_.cluster_size; }
  std::uint32_t total_size() const {
    return static_cast<std::uint32_t>(config_.peers.size());
  }

  std::uint64_t delivered_count() const { return delivered_.load(); }
  std::uint64_t timers_fired() const { return timers_fired_.load(); }

  /// Actual listening port of a local id (after start()); 0 if `id` does
  /// not listen. Lets callers bind port 0 and publish the real port.
  std::uint16_t listen_port(ProcessId id) const;

  /// Counters for the link local `id` keeps toward `peer` (zeroes if no
  /// such link). Thread-safe.
  SocketCounters link_stats(ProcessId id, ProcessId peer) const;

  /// Aggregate across all local links plus loop-level events.
  SocketCounters stats() const;

  /// Human-readable per-link dump (the smr_server SIGTERM report).
  std::string stats_summary() const;

 private:
  enum class LinkState : std::uint8_t { Idle, Connecting, Ready };

  struct SendEntry {
    FrameHeader header;
    SharedBytes payload;
    std::size_t offset = 0;  // bytes of (header+payload) already written
    TimePoint ready_at = 0;  // tx_delay emulation: hold until this tick
  };

  /// Loop-thread-owned state for one peer connection (dialed or
  /// accepted). Only `stats` may be touched from other threads.
  struct Link {
    LinkState state = LinkState::Idle;
    int fd = -1;
    bool dialer = false;          // this side initiates connects
    bool peer_identified = false; // inbound handshake validated
    bool want_writable = false;   // EPOLLOUT armed
    bool ever_established = false;
    /// Bumped at every register/close so stale epoll events for a
    /// recycled fd number cannot be misattributed within one round.
    std::uint16_t gen = 0;
    TimePoint connect_started = 0;
    FrameReader reader;
    std::deque<SendEntry> sendq;
    Bytes delivery_buf;           // recycled const Bytes& for the handler
    LinkPolicy policy;
    SocketStats stats;

    explicit Link(std::size_t max_frame) : reader(max_frame) {}
  };

  /// A freshly accepted connection whose opening handshake has not
  /// arrived yet — not bound to a Link until the peer identifies itself.
  struct PendingAccept {
    int fd = -1;
    std::uint16_t gen = 0;
    FrameReader reader;
    TimePoint accepted_at = 0;
    explicit PendingAccept(std::size_t max_frame) : reader(max_frame) {}
  };

  /// Everything one attached endpoint's loop thread owns.
  struct Loop {
    ProcessId id = kNoProcess;
    int epoll_fd = -1;
    int wake_fd = -1;    // eventfd
    int listen_fd = -1;
    std::vector<std::unique_ptr<Link>> links;  // indexed by peer id
    std::vector<std::unique_ptr<PendingAccept>> pendings;  // slot vector

    std::mutex task_mutex;
    std::deque<std::function<void()>> tasks;
    /// True whenever `tasks` may be non-empty. drain_tasks runs after
    /// every delivery and timer (the FIFO contract), so the common "no
    /// tasks" case must cost one relaxed load, not a mutex round trip.
    std::atomic<bool> has_tasks{false};

    std::map<TimerKey, std::function<void()>> timers;
    std::uint64_t next_timer_seq = 0;

    /// Functional owner id: send() branches on it to run inline on the
    /// loop thread instead of paying an eventfd round trip, so it exists
    /// in every build type.
    std::atomic<std::thread::id> owner{};
    /// Contract enforcement (invariant builds only): loop-owned state —
    /// links, timers, send queues — is touched exclusively by the loop
    /// thread; a misrouted direct call is a hard failure instead of a
    /// silent data race. Bound by run_loop, unbound by stop() after join.
    FASTBFT_GUARD_MEMBER(guard);
    SocketStats stats;  // loop-level events (rejected accepts, ...)
  };

  Loop* loop_of(ProcessId id) const;
  void run_loop(Loop& loop);
  void loop_round(Loop& loop);
  void drain_tasks(Loop& loop);
  void service_links(Loop& loop, TimePoint now);
  TimePoint next_deadline(Loop& loop, TimePoint now) const;

  void start_connect(Loop& loop, Link& link, ProcessId peer, TimePoint now);
  void on_connect_writable(Loop& loop, Link& link, ProcessId peer);
  void established(Loop& loop, Link& link, ProcessId peer);
  void link_down(Loop& loop, Link& link, ProcessId peer, bool was_ready);
  void accept_ready(Loop& loop);
  void pending_readable(Loop& loop, std::size_t slot);
  void adopt_pending(Loop& loop, std::size_t slot, const Handshake& hs);
  void drop_pending(Loop& loop, std::size_t slot);
  void link_readable(Loop& loop, Link& link, ProcessId peer);
  bool parse_frames(Loop& loop, Link& link, ProcessId peer);
  void enqueue_frame(Loop& loop, Link& link, ProcessId peer,
                     SharedBytes payload, bool heartbeat);
  void flush_link(Loop& loop, Link& link, ProcessId peer);
  void deliver(Loop& loop, Link& link, ProcessId from, ByteView frame);
  void send_on_loop(Loop& loop, ProcessId to, SharedBytes payload);
  void wake(Loop& loop);
  void update_epoll(Loop& loop, Link& link, ProcessId peer);
  void assert_timer_owner(const Loop& loop) const;

  SocketNetworkConfig config_;
  Clock::time_point epoch_ = Clock::now();
  std::vector<ReceiveHandler> handlers_;      // indexed by id, empty if remote
  std::vector<std::unique_ptr<Loop>> loops_;  // indexed by id, null if remote
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  bool started_ = false;
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> timers_fired_{0};
  std::vector<std::uint16_t> listen_ports_;
};

}  // namespace fastbft::net
