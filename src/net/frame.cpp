#include "net/frame.hpp"

#include <cstring>

#include "common/codec.hpp"

namespace fastbft::net {

void encode_frame_header(std::uint32_t payload_len, FrameHeader& out) {
  out[0] = static_cast<std::uint8_t>(payload_len);
  out[1] = static_cast<std::uint8_t>(payload_len >> 8);
  out[2] = static_cast<std::uint8_t>(payload_len >> 16);
  out[3] = static_cast<std::uint8_t>(payload_len >> 24);
}

std::uint32_t decode_frame_header(const FrameHeader& in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

Bytes Handshake::encode() const {
  Encoder enc(16);
  enc.u32(kFrameMagic);
  enc.u16(kFrameVersion);
  enc.u32(sender);
  enc.u32(cluster_size);
  return std::move(enc).take();
}

Handshake::Result Handshake::decode(ByteView payload, Handshake& out) {
  Decoder dec(payload);
  const std::uint32_t magic = dec.u32();
  if (!dec.ok() || magic != kFrameMagic) return Result::BadMagic;
  const std::uint16_t version = dec.u16();
  if (!dec.ok()) return Result::Malformed;
  if (version != kFrameVersion) return Result::VersionMismatch;
  out.sender = dec.u32();
  out.cluster_size = dec.u32();
  if (!dec.ok() || !dec.at_end()) return Result::Malformed;
  return Result::Ok;
}

bool FrameWriter::header_for(std::size_t size, FrameHeader& out) const {
  if (size > max_) return false;
  encode_frame_header(static_cast<std::uint32_t>(size), out);
  return true;
}

std::optional<Bytes> FrameWriter::frame(ByteView payload) const {
  FrameHeader hdr;
  if (!header_for(payload.size(), hdr)) return std::nullopt;
  Bytes out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.insert(out.end(), hdr.begin(), hdr.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::uint8_t* FrameReader::prepare(std::size_t hint) {
  // Compact: slide the unconsumed tail (at most one partial frame plus
  // unparsed bytes) to the front so the buffer recycles instead of
  // creeping forward forever. Invalidates views handed out by next().
  if (read_pos_ > 0) {
    const std::size_t tail = write_pos_ - read_pos_;
    if (tail > 0) std::memmove(buf_.data(), buf_.data() + read_pos_, tail);
    write_pos_ = tail;
    read_pos_ = 0;
  }
  // Grow-only: the vector's SIZE is the storage high-water mark and
  // [read_pos_, write_pos_) the live window. Shrinking and regrowing per
  // call instead would value-initialize `hint` bytes on every recv — a
  // hidden memset that dwarfs the actual frame handling at high rates.
  if (buf_.size() < write_pos_ + hint) buf_.resize(write_pos_ + hint);
  return buf_.data() + write_pos_;
}

void FrameReader::commit(std::size_t n) { write_pos_ += n; }

bool FrameReader::feed(ByteView chunk) {
  if (error_) return false;
  if (!chunk.empty()) {
    std::uint8_t* dst = prepare(chunk.size());
    std::memcpy(dst, chunk.data(), chunk.size());
    commit(chunk.size());
  }
  return !error_;
}

std::optional<ByteView> FrameReader::next() {
  if (error_) return std::nullopt;
  const std::size_t avail = write_pos_ - read_pos_;
  if (avail < kFrameHeaderBytes) return std::nullopt;
  FrameHeader hdr;
  std::memcpy(hdr.data(), buf_.data() + read_pos_, kFrameHeaderBytes);
  const std::uint32_t len = decode_frame_header(hdr);
  if (len > max_) {
    // A garbage or hostile header: there is no way to resynchronize a
    // byte stream after a bad length, so the connection must be dropped.
    error_ = true;
    reason_ = "oversized frame";
    return std::nullopt;
  }
  if (avail < kFrameHeaderBytes + len) return std::nullopt;
  ByteView view(buf_.data() + read_pos_ + kFrameHeaderBytes, len);
  read_pos_ += kFrameHeaderBytes + len;
  ++frames_;
  return view;
}

}  // namespace fastbft::net
