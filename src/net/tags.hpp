#pragma once

#include <cstdint>

/// \file tags.hpp
/// Central registry of wire-message type tags (first payload byte). Keeping
/// all protocols' tags in one table guarantees uniqueness and lets the
/// traffic statistics name every message kind.

namespace fastbft::net::tags {

// Core fast-BFT protocol (src/consensus).
inline constexpr std::uint8_t kPropose = 0x01;
inline constexpr std::uint8_t kAck = 0x02;
inline constexpr std::uint8_t kAckSig = 0x03;   // slow path: signed ack
inline constexpr std::uint8_t kCommit = 0x04;   // slow path: commit certificate
inline constexpr std::uint8_t kVote = 0x05;     // view change: vote
inline constexpr std::uint8_t kCertReq = 0x06;  // view change: certification request
inline constexpr std::uint8_t kCertAck = 0x07;  // view change: certification ack

// View synchronizer (src/viewsync).
inline constexpr std::uint8_t kWish = 0x10;

// PBFT baseline (src/pbft).
inline constexpr std::uint8_t kPbftPrePrepare = 0x20;
inline constexpr std::uint8_t kPbftPrepare = 0x21;
inline constexpr std::uint8_t kPbftCommit = 0x22;
inline constexpr std::uint8_t kPbftViewChange = 0x23;
inline constexpr std::uint8_t kPbftNewView = 0x24;

// FaB Paxos baseline (src/fab).
inline constexpr std::uint8_t kFabPropose = 0x30;
inline constexpr std::uint8_t kFabAccept = 0x31;
inline constexpr std::uint8_t kFabRecoveryVote = 0x32;

// SMR layer (src/smr).
inline constexpr std::uint8_t kSmrRequest = 0x40;
// The four group-scoped tags (0x41-0x44) all carry a u32 GroupId right
// after the tag byte, so a sharded node can route them to the owning
// consensus group at a fixed offset (see docs/SHARDING.md).
inline constexpr std::uint8_t kSmrWrapped = 0x41;  // slot-scoped consensus payload
inline constexpr std::uint8_t kSmrDecided = 0x42;  // state transfer for laggards
inline constexpr std::uint8_t kSmrSnapRequest = 0x43;   // full-state transfer: ask
inline constexpr std::uint8_t kSmrSnapResponse = 0x44;  // full-state transfer: chunk
inline constexpr std::uint8_t kSmrReply = 0x45;  // signed execution result -> client

}  // namespace fastbft::net::tags
