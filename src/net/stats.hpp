#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.hpp"
#include "common/types.hpp"

/// \file stats.hpp
/// Per-message-type traffic accounting. The first payload byte is the type
/// tag; the pretty-printer maps known tags to names so benchmark output is
/// readable. SMR_WRAPPED payloads additionally carry a slot index right
/// after the tag, which is broken out per slot so pipelined-SMR benchmarks
/// can attribute traffic to individual consensus slots; the SMR engine
/// also reports how many slots it has in flight (note_inflight_slots) so
/// the pipeline window is visible in the same place.

namespace fastbft::net {

/// Payload materialization counters (allocations avoided by SharedBytes
/// sharing). Defined next to SharedBytes in common/bytes.hpp — the common
/// layer cannot depend on net — and re-exported here so benchmark/test
/// code finds all traffic accounting in net::stats.
using PayloadStats = fastbft::PayloadStats;

struct TypeStats {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

class NetworkStats {
 public:
  void record_send(const Bytes& payload);

  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  const std::map<std::uint8_t, TypeStats>& by_type() const { return by_type_; }

  /// Messages of one tag (0 if none seen).
  std::uint64_t messages_of(std::uint8_t tag) const;

  // --- Per-slot accounting (SMR_WRAPPED traffic) ----------------------------

  /// Wrapped consensus traffic broken out by slot index.
  const std::map<Slot, TypeStats>& by_slot() const { return by_slot_; }

  /// Wrapped messages attributed to one slot (0 if none seen).
  std::uint64_t messages_for_slot(Slot slot) const;

  /// Called by the SMR engine whenever its window changes: `inflight` is
  /// the number of consensus slots currently live on reporting node
  /// `node` (the stats object is shared by the whole simulated cluster,
  /// so the gauge is tracked per node).
  void note_inflight_slots(ProcessId node, std::uint32_t inflight);

  /// Most recent in-flight count reported by `node` (0 if never reported).
  std::uint32_t inflight_slots(ProcessId node) const;

  /// High-water in-flight count across all nodes and all time.
  std::uint32_t max_inflight_slots() const { return max_inflight_slots_; }

  void reset();

  /// Multi-line human-readable summary.
  std::string summary() const;

 private:
  std::map<std::uint8_t, TypeStats> by_type_;
  std::map<Slot, TypeStats> by_slot_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::map<ProcessId, std::uint32_t> inflight_by_node_;
  std::uint32_t max_inflight_slots_ = 0;
};

/// Maps a payload tag to a short name ("PROPOSE", "ACK", ...). Unknown tags
/// render as hex.
std::string tag_name(std::uint8_t tag);

// --- Socket-transport counters ----------------------------------------------

/// Plain snapshot of one connection's (or one aggregate's) counters.
/// Copyable, mergeable; what the smr_server stats dump and the socket
/// tests consume.
struct SocketCounters {
  std::uint64_t connects_attempted = 0;
  std::uint64_t connects_established = 0;
  std::uint64_t reconnects = 0;        // established after a prior establish
  std::uint64_t handshake_rejects = 0; // bad magic/version/identity
  std::uint64_t peer_downs = 0;        // rx-silence heartbeat timeouts
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t heartbeats_in = 0;
  std::uint64_t heartbeats_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t writev_calls = 0;      // frames_out / writev_calls = batching
  std::uint64_t writev_frames = 0;     // frames completed by those calls
  std::uint64_t frames_dropped = 0;    // send-queue cap overflow
  std::uint64_t decode_errors = 0;     // oversized/garbage inbound framing
  /// Zero-copy invariant pair (mirrors PayloadStats envelope accounting):
  /// one delivery_alloc when the per-connection delivery buffer had to
  /// grow, one delivery_reuse when an inbound frame was handed to the
  /// receive handler out of recycled capacity. Steady state: reuses
  /// dominate, allocs plateau.
  std::uint64_t delivery_allocs = 0;
  std::uint64_t delivery_reuses = 0;
  std::uint64_t send_queue_high_water = 0;  // max frames ever queued

  SocketCounters& merge(const SocketCounters& o);

  /// Multi-line human-readable dump (indent prefixes every line).
  std::string summary(const std::string& indent = "") const;
};

/// Thread-safe (relaxed atomic) counter holder — one per socket link plus
/// one per network for link-independent events. Written by the readiness
/// loop, snapshot()-able from any thread (the SIGTERM stats dump, tests).
class SocketStats {
 public:
  std::atomic<std::uint64_t> connects_attempted{0};
  std::atomic<std::uint64_t> connects_established{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<std::uint64_t> handshake_rejects{0};
  std::atomic<std::uint64_t> peer_downs{0};
  std::atomic<std::uint64_t> frames_in{0};
  std::atomic<std::uint64_t> frames_out{0};
  std::atomic<std::uint64_t> heartbeats_in{0};
  std::atomic<std::uint64_t> heartbeats_out{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> writev_calls{0};
  std::atomic<std::uint64_t> writev_frames{0};
  std::atomic<std::uint64_t> frames_dropped{0};
  std::atomic<std::uint64_t> decode_errors{0};
  std::atomic<std::uint64_t> delivery_allocs{0};
  std::atomic<std::uint64_t> delivery_reuses{0};
  std::atomic<std::uint64_t> send_queue_high_water{0};

  void bump(std::atomic<std::uint64_t>& c, std::uint64_t n = 1) {
    c.fetch_add(n, std::memory_order_relaxed);
  }
  void high_water(std::uint64_t depth) {
    std::uint64_t cur = send_queue_high_water.load(std::memory_order_relaxed);
    while (depth > cur && !send_queue_high_water.compare_exchange_weak(
                              cur, depth, std::memory_order_relaxed)) {
    }
  }

  SocketCounters snapshot() const;
};

}  // namespace fastbft::net
