#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.hpp"
#include "common/types.hpp"

/// \file stats.hpp
/// Per-message-type traffic accounting. The first payload byte is the type
/// tag; the pretty-printer maps known tags to names so benchmark output is
/// readable. SMR_WRAPPED payloads additionally carry a slot index right
/// after the tag, which is broken out per slot so pipelined-SMR benchmarks
/// can attribute traffic to individual consensus slots; the SMR engine
/// also reports how many slots it has in flight (note_inflight_slots) so
/// the pipeline window is visible in the same place.

namespace fastbft::net {

/// Payload materialization counters (allocations avoided by SharedBytes
/// sharing). Defined next to SharedBytes in common/bytes.hpp — the common
/// layer cannot depend on net — and re-exported here so benchmark/test
/// code finds all traffic accounting in net::stats.
using PayloadStats = fastbft::PayloadStats;

struct TypeStats {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

class NetworkStats {
 public:
  void record_send(const Bytes& payload);

  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  const std::map<std::uint8_t, TypeStats>& by_type() const { return by_type_; }

  /// Messages of one tag (0 if none seen).
  std::uint64_t messages_of(std::uint8_t tag) const;

  // --- Per-slot accounting (SMR_WRAPPED traffic) ----------------------------

  /// Wrapped consensus traffic broken out by slot index.
  const std::map<Slot, TypeStats>& by_slot() const { return by_slot_; }

  /// Wrapped messages attributed to one slot (0 if none seen).
  std::uint64_t messages_for_slot(Slot slot) const;

  /// Called by the SMR engine whenever its window changes: `inflight` is
  /// the number of consensus slots currently live on reporting node
  /// `node` (the stats object is shared by the whole simulated cluster,
  /// so the gauge is tracked per node).
  void note_inflight_slots(ProcessId node, std::uint32_t inflight);

  /// Most recent in-flight count reported by `node` (0 if never reported).
  std::uint32_t inflight_slots(ProcessId node) const;

  /// High-water in-flight count across all nodes and all time.
  std::uint32_t max_inflight_slots() const { return max_inflight_slots_; }

  void reset();

  /// Multi-line human-readable summary.
  std::string summary() const;

 private:
  std::map<std::uint8_t, TypeStats> by_type_;
  std::map<Slot, TypeStats> by_slot_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::map<ProcessId, std::uint32_t> inflight_by_node_;
  std::uint32_t max_inflight_slots_ = 0;
};

/// Maps a payload tag to a short name ("PROPOSE", "ACK", ...). Unknown tags
/// render as hex.
std::string tag_name(std::uint8_t tag);

}  // namespace fastbft::net
