#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.hpp"

/// \file stats.hpp
/// Per-message-type traffic accounting. The first payload byte is the type
/// tag; the pretty-printer maps known tags to names so benchmark output is
/// readable.

namespace fastbft::net {

struct TypeStats {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

class NetworkStats {
 public:
  void record_send(const Bytes& payload);

  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  const std::map<std::uint8_t, TypeStats>& by_type() const { return by_type_; }

  /// Messages of one tag (0 if none seen).
  std::uint64_t messages_of(std::uint8_t tag) const;

  void reset();

  /// Multi-line human-readable summary.
  std::string summary() const;

 private:
  std::map<std::uint8_t, TypeStats> by_type_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// Maps a payload tag to a short name ("PROPOSE", "ACK", ...). Unknown tags
/// render as hex.
std::string tag_name(std::uint8_t tag);

}  // namespace fastbft::net
