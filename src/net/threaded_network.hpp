#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/transport.hpp"

/// \file threaded_network.hpp
/// Real-concurrency transport: one OS thread per process, lock-protected
/// inboxes, actual wall-clock time. This is the "networking boilerplate"
/// path that demonstrates the protocol engines are not simulation-bound:
/// the same consensus::Replica runs unmodified over this transport
/// (tests/test_threaded.cpp, examples/realtime_quickstart.cpp,
/// bench_codec's threaded benchmark).
///
/// Scope: in-process message passing modelling a low-latency LAN. Each
/// process's handler runs exclusively on that process's thread, so replica
/// code stays single-threaded (the same discipline a production
/// event-loop-per-peer deployment would use). There are no timers here —
/// view synchronization needs a clock source, so threaded runs exercise
/// the fast path and crash tolerance within it; partial synchrony
/// experiments live in the deterministic simulator.

namespace fastbft::net {

class ThreadedNetwork;

class ThreadedEndpoint final : public Transport {
 public:
  ThreadedEndpoint(ThreadedNetwork& net, ProcessId self)
      : net_(net), self_(self) {}

  void send(ProcessId to, Bytes payload) override;
  std::uint32_t cluster_size() const override;
  ProcessId self() const override { return self_; }

 private:
  ThreadedNetwork& net_;
  ProcessId self_;
};

class ThreadedNetwork {
 public:
  explicit ThreadedNetwork(std::uint32_t n);
  ~ThreadedNetwork();

  ThreadedNetwork(const ThreadedNetwork&) = delete;
  ThreadedNetwork& operator=(const ThreadedNetwork&) = delete;

  /// Must be called for every process before start().
  void attach(ProcessId id, ReceiveHandler handler);

  std::unique_ptr<ThreadedEndpoint> endpoint(ProcessId id);

  /// Spawns one delivery thread per process.
  void start();

  /// Drains and joins all threads. Safe to call twice; called by the
  /// destructor.
  void stop();

  /// Simulates a crash: the process stops receiving and its sends are
  /// dropped. Thread-safe.
  void disconnect(ProcessId id);

  void send(ProcessId from, ProcessId to, Bytes payload);

  std::uint32_t size() const { return n_; }
  std::uint64_t delivered_count() const { return delivered_.load(); }

 private:
  struct Inbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Envelope> queue;
  };

  void run_worker(ProcessId id);

  std::uint32_t n_;
  std::vector<ReceiveHandler> handlers_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  std::vector<std::thread> workers_;
  std::vector<std::atomic<bool>> disconnected_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> delivered_{0};
  bool started_ = false;
};

}  // namespace fastbft::net
