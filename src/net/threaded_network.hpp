#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_guard.hpp"
#include "net/transport.hpp"

/// \file threaded_network.hpp
/// Real-concurrency transport: one OS thread per process, lock-protected
/// inboxes, actual wall-clock time. This is the "networking boilerplate"
/// path that demonstrates the protocol engines are not simulation-bound:
/// the same consensus::Replica runs unmodified over this transport
/// (tests/test_threaded.cpp, examples/realtime_quickstart.cpp), and the
/// pipelined SMR engine runs over it through the engine::Host seam
/// (runtime::ThreadedSmrCluster).
///
/// Scope: in-process message passing modelling a low-latency LAN (an
/// optional fixed `link_delay` models the LAN round-trip explicitly). Each
/// process's handler runs exclusively on that process's delivery thread,
/// so replica code stays single-threaded (the same discipline a production
/// event-loop-per-peer deployment would use).
///
/// Timers: each delivery thread owns a steady-clock timer queue; timer
/// callbacks fire interleaved with message handlers ON THAT SAME THREAD,
/// preserving the single-threaded-replica discipline. This is the clock
/// source the wall-clock engine host (engine::ThreadedHost) adapts to
/// sim::TimerService, which is what lets view synchronizers — and with
/// them leader-rotating, view-changing SMR — run over real threads.
/// Arm/cancel are same-thread-only by contract (asserted): only the
/// owning delivery thread (or the setup thread before start() / after
/// stop()) may touch a process's timers.

namespace fastbft::net {

class ThreadedNetwork;

class ThreadedEndpoint final : public Transport {
 public:
  ThreadedEndpoint(ThreadedNetwork& net, ProcessId self)
      : net_(net), self_(self) {}

  void send(ProcessId to, SharedBytes payload) override;
  std::uint32_t cluster_size() const override;
  ProcessId self() const override { return self_; }

 private:
  ThreadedNetwork& net_;
  ProcessId self_;
};

struct ThreadedNetworkConfig {
  /// Fixed delivery delay for remote messages (self-sends stay immediate,
  /// matching the simulator's convention). Zero delivers as soon as the
  /// destination thread is free. Inboxes are ordered by (delivery time,
  /// arrival sequence), so an immediate self-send is never head-of-line
  /// blocked behind a delayed remote message.
  std::chrono::microseconds link_delay{0};
};

class ThreadedNetwork {
 public:
  using Clock = std::chrono::steady_clock;

  /// `n` is the replica cluster size (what endpoints report as
  /// cluster_size(), i.e. what broadcasts cover); `extra_endpoints` adds
  /// client endpoints with ids n .. n + extra - 1. A client endpoint gets
  /// its own delivery thread, inbox and timer queue exactly like a
  /// replica — engine::ThreadedHost works for it unchanged — but it is
  /// never a broadcast target and is invisible to consensus membership.
  explicit ThreadedNetwork(std::uint32_t n, ThreadedNetworkConfig config = {},
                           std::uint32_t extra_endpoints = 0);
  ~ThreadedNetwork();

  ThreadedNetwork(const ThreadedNetwork&) = delete;
  ThreadedNetwork& operator=(const ThreadedNetwork&) = delete;

  /// Must be called for every process before start().
  void attach(ProcessId id, ReceiveHandler handler);

  std::unique_ptr<ThreadedEndpoint> endpoint(ProcessId id);

  /// Spawns one delivery thread per process.
  void start();

  /// Drains and joins all threads. Safe to call twice; called by the
  /// destructor. Pending timers are dropped.
  void stop();

  /// Simulates a crash: the process stops receiving, its sends are
  /// dropped and its pending timers are discarded. Thread-safe.
  void disconnect(ProcessId id);

  /// Reverses disconnect(): the process receives and sends again (its old
  /// inbox and timers stayed dropped — a rejoining process starts from a
  /// clean network slate). Thread-safe; a no-op if not disconnected.
  ///
  /// A rejoin that also replaces the process object must sequence the
  /// swap with this call on the delivery thread via post() — see
  /// runtime::ThreadedSmrCluster::restart.
  void reconnect(ProcessId id);

  /// Runs `fn` on process `id`'s delivery thread, interleaved with its
  /// message handlers and timers — even while the process is
  /// disconnected. This is the only safe way to touch a process's
  /// protocol objects (or its timers, per the same-thread contract) from
  /// outside mid-run. Thread-safe; tasks run in post order.
  void post(ProcessId id, std::function<void()> fn);

  void send(ProcessId from, ProcessId to, SharedBytes payload);

  // --- Wall-clock timers (same-thread contract) -----------------------------

  /// Microseconds since this network's construction; the tick unit of every
  /// timer deadline below and of engine::ThreadedHost clocks.
  TimePoint now_ticks() const;

  /// Arms `fn` to fire at `at_ticks` on process `id`'s delivery thread.
  /// Returns the key needed to cancel. MUST be called on that same
  /// delivery thread (or before start() / after stop()) — asserted.
  std::pair<TimePoint, std::uint64_t> arm_timer(ProcessId id,
                                                TimePoint at_ticks,
                                                std::function<void()> fn);

  /// Eagerly drops a timer armed with arm_timer. No-op if it already fired
  /// or was cancelled. Same-thread contract as arm_timer.
  void cancel_timer(ProcessId id, std::pair<TimePoint, std::uint64_t> key);

  /// True when the calling thread may act as `id`'s delivery thread under
  /// the same-thread contract: the delivery thread itself, or the
  /// setup/teardown phases while no delivery thread owns the inbox. What
  /// engine::BasicThreadedHost reports to the engine's affinity checks
  /// (Host::affinity_ok); permissive (always true) when invariant
  /// checking is compiled out.
  bool affinity_ok(ProcessId id) const {
    const auto& guard = inboxes_[id]->guard;
    return !guard.bound() || guard.held();
  }

  /// Replica cluster size (broadcast scope). Client endpoints not counted.
  std::uint32_t size() const { return n_; }

  /// Replicas plus client endpoints — the valid ProcessId range.
  std::uint32_t total_size() const {
    return static_cast<std::uint32_t>(inboxes_.size());
  }

  std::uint64_t delivered_count() const { return delivered_.load(); }
  std::uint64_t timers_fired() const { return timers_fired_.load(); }

 private:
  using QueueMap = std::map<std::pair<TimePoint, std::uint64_t>, Envelope>;

  /// Envelope-map nodes an inbox keeps around for reuse: a steady-state
  /// message exchange recycles node allocations instead of paying one
  /// heap round-trip per delivered envelope (observable via
  /// PayloadStats::envelope_allocs/envelope_reuses).
  static constexpr std::size_t kSpareNodeCap = 64;

  struct Inbox {
    std::mutex mutex;
    std::condition_variable cv;
    /// (delivery time, arrival sequence) -> message: delivery-time order
    /// with FIFO tie-break, so zero-delay self-sends overtake delayed
    /// remote traffic exactly as they do on the simulator.
    QueueMap queue;
    std::uint64_t next_env_seq = 0;

    /// Recycled queue nodes (payload refs dropped), guarded by `mutex`.
    std::vector<QueueMap::node_type> spare_nodes;

    /// Owned by the delivery thread (plus pre-start/post-stop setup, which
    /// is ordered by thread creation/join): no lock needed for the
    /// contract-abiding caller, but the worker reads it under `mutex`
    /// while computing its wait deadline, which is harmless same-thread.
    std::map<std::pair<TimePoint, std::uint64_t>, std::function<void()>>
        timers;
    std::uint64_t next_timer_seq = 0;

    /// Closures posted via post(): drained ahead of timers and messages,
    /// and the only work a disconnected worker still performs.
    std::deque<std::function<void()>> tasks;

    /// Affinity contract: the delivery thread binds this as it starts and
    /// stop() unbinds after joining, so timer arm/cancel and handler
    /// execution are checked against the owning thread in invariant builds
    /// (common::ThreadGuard; zero state and zero code in Release).
    FASTBFT_GUARD_MEMBER(guard);
  };

  void run_worker(ProcessId id);
  void assert_timer_owner(ProcessId id) const;

  std::uint32_t n_;
  ThreadedNetworkConfig config_;
  Clock::time_point epoch_ = Clock::now();
  std::vector<ReceiveHandler> handlers_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  std::vector<std::thread> workers_;
  std::vector<std::atomic<bool>> disconnected_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> timers_fired_{0};
  bool started_ = false;
};

}  // namespace fastbft::net
