#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/stats.hpp"
#include "net/transport.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

/// \file sim_network.hpp
/// Deterministic simulated network implementing the paper's partially
/// synchronous model: reliable authenticated point-to-point channels whose
/// delays are adversary-controlled before GST and bounded by Delta after
/// GST. Self-sends are delivered with zero delay (local computation is
/// treated as instantaneous, matching the paper's convention).
///
/// Two levels of control are exposed:
///  * a stochastic model (min/max delay post-GST, larger pre-GST delays,
///    seeded jitter) used by the property tests and benchmarks, and
///  * a per-message `DeliveryScript` hook with which a test can dictate the
///    exact delivery time of any message — this is how the Theorem 4.5
///    lower-bound attack stages its five-group schedule.

namespace fastbft::net {

struct SimNetworkConfig {
  /// The synchrony bound Delta (ticks). After GST every message sent at s is
  /// delivered at some point in (s, s + delta].
  Duration delta = 100;

  /// Global stabilization time. Before GST delays are drawn from
  /// [delta, pre_gst_max_delay] (still reliable — nothing is lost).
  TimePoint gst = 0;
  Duration pre_gst_max_delay = 2000;

  /// Post-GST jitter: delays uniform in [min_delay, delta]. min_delay = delta
  /// gives the "lock-step" executions used for latency measurements.
  Duration min_delay = 100;

  std::uint64_t seed = 1;
};

/// Chaos-mode fault on one DIRECTED link: extra delivery delay drawn
/// uniformly from [extra_min, extra_max] on top of the stochastic model,
/// plus a per-message drop probability in permille. Dropping relaxes the
/// reliable-channel assumption deliberately — safety of the protocol never
/// depends on delivery, only liveness does, which is exactly what the
/// chaos harness (src/chaos) probes. Faults are consulted by send() for
/// remote messages only (self-sends stay instantaneous and lossless).
struct LinkFault {
  Duration extra_min = 0;
  Duration extra_max = 0;
  std::uint32_t drop_permille = 0;  ///< 0..1000

  friend bool operator==(const LinkFault&, const LinkFault&) = default;
};

class SimNetwork;

/// Per-process transport endpoint handed to protocol engines.
class SimEndpoint final : public Transport {
 public:
  SimEndpoint(SimNetwork& net, ProcessId self) : net_(net), self_(self) {}

  void send(ProcessId to, SharedBytes payload) override;
  std::uint32_t cluster_size() const override;
  ProcessId self() const override { return self_; }

 private:
  SimNetwork& net_;
  ProcessId self_;
};

class SimNetwork {
 public:
  /// `n` is the replica cluster size (what endpoints report as
  /// cluster_size(), i.e. what broadcasts cover); `extra_endpoints` adds
  /// client endpoints with ids n .. n + extra - 1 that can attach
  /// handlers, send point-to-point and receive, but are never broadcast
  /// targets and are invisible to the consensus membership.
  /// Returning nullopt defers to the stochastic model; returning a time
  /// schedules delivery exactly then (must be > now for remote, >= now for
  /// self sends). Returning `kTimeInfinity` parks the message until
  /// `flush_parked` (used to model "delayed until after T" schedules; the
  /// channel stays reliable because the test eventually flushes).
  using DeliveryScript =
      std::function<std::optional<TimePoint>(const Envelope&, TimePoint now)>;

  /// Passive observer invoked for every message at send time with its
  /// scheduled delivery time (kTimeInfinity for parked messages). Used by
  /// the trace recorder (src/trace) to render message-flow diagrams.
  using Observer = std::function<void(const Envelope&, TimePoint sent,
                                      TimePoint delivered)>;

  SimNetwork(sim::Scheduler& sched, std::uint32_t n, SimNetworkConfig config,
             std::uint32_t extra_endpoints = 0);

  /// Registers the receive handler for process `id`. Must be set before any
  /// message addressed to `id` is delivered.
  void attach(ProcessId id, ReceiveHandler handler);

  /// Creates the transport endpoint for process `id`.
  std::unique_ptr<SimEndpoint> endpoint(ProcessId id);

  void send(ProcessId from, ProcessId to, SharedBytes payload);

  /// Cuts delivery of everything sent *to or from* `id` (process crash at
  /// the network level: messages already in flight still arrive, nothing
  /// new is accepted). Used to model fail-stop behaviours.
  void disconnect(ProcessId id);

  /// Reverses disconnect(): `id` sends and receives again. Messages
  /// addressed to it while disconnected stay dropped (a crash loses
  /// volatile state; rejoin recovery is the protocol's job — see
  /// runtime::Cluster::restart_at).
  void reconnect(ProcessId id);

  bool is_disconnected(ProcessId id) const { return disconnected_[id]; }

  void set_script(DeliveryScript script) { script_ = std::move(script); }
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  // --- Schedule-driven fault hooks (chaos harness; see docs/CHAOS.md) --------

  /// Splits the network into two sides: a message whose endpoints sit on
  /// DIFFERENT sides is dropped at send time. `side[id]` is 0 or 1; ids
  /// beyond the vector (or with any other value) straddle the partition
  /// and keep talking to everyone — pass a vector covering only the
  /// replicas to leave client endpoints reachable from both sides.
  /// Replaces any active partition.
  void set_partition(std::vector<std::uint8_t> side);
  void clear_partition() { partition_.clear(); }
  bool partition_active() const { return !partition_.empty(); }

  /// Installs (or replaces) a fault on the directed link from -> to.
  void set_link_fault(ProcessId from, ProcessId to, LinkFault fault);
  void clear_link_fault(ProcessId from, ProcessId to);
  void clear_link_faults() { link_faults_.clear(); }

  /// Messages dropped by partitions and link faults (NOT disconnects).
  std::uint64_t dropped_count() const { return dropped_; }

  /// Releases all messages parked by a script at `kTimeInfinity`; they are
  /// delivered `delta` after the call.
  void flush_parked();

  /// Replica cluster size (broadcast scope). Client endpoints not counted.
  std::uint32_t size() const { return n_; }

  /// Replicas plus client endpoints — the valid ProcessId range.
  std::uint32_t total_size() const {
    return static_cast<std::uint32_t>(handlers_.size());
  }
  const NetworkStats& stats() const { return stats_; }
  NetworkStats& stats() { return stats_; }
  sim::Scheduler& scheduler() { return sched_; }
  const SimNetworkConfig& config() const { return config_; }

  std::uint64_t delivered_count() const { return delivered_; }

 private:
  void deliver_at(TimePoint at, Envelope env);

  sim::Scheduler& sched_;
  std::uint32_t n_;
  SimNetworkConfig config_;
  sim::Rng rng_;
  /// Fault decisions draw from their own stream so enabling chaos hooks
  /// never perturbs the baseline delay sequence of a given seed.
  sim::Rng fault_rng_;
  std::vector<ReceiveHandler> handlers_;
  std::vector<bool> disconnected_;
  std::vector<Envelope> parked_;
  DeliveryScript script_;
  Observer observer_;
  NetworkStats stats_;
  std::uint64_t delivered_ = 0;
  std::vector<std::uint8_t> partition_;
  std::map<std::pair<ProcessId, ProcessId>, LinkFault> link_faults_;
  std::uint64_t dropped_ = 0;
};

}  // namespace fastbft::net
