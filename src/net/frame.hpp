#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/types.hpp"

/// \file frame.hpp
/// Wire framing for the TCP socket transport (net::SocketNetwork), kept
/// free of any socket code so the codec is unit-testable in memory
/// (tests/test_frame.cpp) — the morphling idiom: message-level tests,
/// sockets only at the edge.
///
/// Wire format (docs/TRANSPORT.md):
///
///   frame     := header payload
///   header    := u32 LE payload length
///   payload   := 0 bytes                -> heartbeat (liveness only)
///              | message bytes          -> delivered to the endpoint
///
/// The FIRST frame in each direction of a fresh connection must be a
/// handshake: magic "FBFT", codec version, the sender's ProcessId and its
/// view of the replica cluster size. Everything after it is raw message
/// payloads exactly as net::Transport::send produced them (first byte =
/// type tag, see net/tags.hpp).
///
/// FrameReader is the inbound half: a recycled contiguous buffer the
/// readiness loop recvs straight into (prepare()/commit()), yielding
/// complete frames as ByteViews over that buffer — no per-frame heap
/// allocation, torn reads across frame boundaries handled by buffering
/// the partial tail. FrameWriter is the outbound half: it only ever
/// produces the 4-byte header, because payload bytes are scatter-gathered
/// out of their SharedBytes buffers by writev (zero staging copies).

namespace fastbft::net {

inline constexpr std::uint32_t kFrameMagic = 0x46424654;  // "FBFT"
inline constexpr std::uint16_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Default ceiling on one frame's payload. Generous for batched SMR
/// traffic and snapshot chunks; anything larger on the wire is treated as
/// a protocol violation and closes the connection (a garbage or hostile
/// header would otherwise make the reader buffer up to 4 GiB).
inline constexpr std::size_t kDefaultMaxFrameBytes = 4u << 20;

using FrameHeader = std::array<std::uint8_t, kFrameHeaderBytes>;

void encode_frame_header(std::uint32_t payload_len, FrameHeader& out);
std::uint32_t decode_frame_header(const FrameHeader& in);

/// Connection-opening identification frame (both directions send one).
struct Handshake {
  ProcessId sender = kNoProcess;
  std::uint32_t cluster_size = 0;

  Bytes encode() const;

  enum class Result { Ok, BadMagic, VersionMismatch, Malformed };
  static Result decode(ByteView payload, Handshake& out);
};

/// Outbound framing: header production plus the oversize guard. The
/// payload itself is never copied here — the send path writev()s it out
/// of its SharedBytes buffer.
class FrameWriter {
 public:
  explicit FrameWriter(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_(max_frame_bytes) {}

  std::size_t max_frame_bytes() const { return max_; }

  /// Header for a payload of `size` bytes (0 = heartbeat). False when the
  /// payload exceeds the frame ceiling — the caller must drop, not send.
  bool header_for(std::size_t size, FrameHeader& out) const;

  /// Whole frame as one buffer (header + payload copy). Test/convenience
  /// path only; the socket send path never materializes this.
  std::optional<Bytes> frame(ByteView payload) const;

 private:
  std::size_t max_;
};

/// Inbound framing over one recycled contiguous buffer.
///
/// Usage by a readiness loop:
///   auto* p = reader.prepare(chunk);        // writable tail
///   ssize_t r = recv(fd, p, chunk, 0);      // kernel writes in place
///   reader.commit(r);
///   while (auto f = reader.next()) deliver(*f);
///   if (reader.error()) close_connection();
///
/// Views returned by next() alias the internal buffer and stay valid
/// until the next prepare()/feed() call (which may compact), so a loop
/// may drain several frames before refilling. feed() is the in-memory
/// equivalent of prepare+memcpy+commit for tests and non-socket callers.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_(max_frame_bytes) {}

  FrameReader(FrameReader&&) = default;
  FrameReader& operator=(FrameReader&&) = default;

  /// Contiguous writable tail of at least `hint` bytes. Compacts the
  /// consumed prefix first, so steady-state reads recycle one buffer.
  std::uint8_t* prepare(std::size_t hint);

  /// `n` bytes were written at the last prepare() pointer.
  void commit(std::size_t n);

  /// Appends a chunk (tests / in-memory use). Returns !error().
  bool feed(ByteView chunk);

  /// Next complete frame payload (empty view = heartbeat), or nullopt if
  /// more bytes are needed. Flips error() on an oversized length header;
  /// after that every call returns nullopt.
  std::optional<ByteView> next();

  bool error() const { return error_; }
  const char* error_reason() const { return error_ ? reason_ : ""; }

  std::uint64_t frames_seen() const { return frames_; }

  /// Unconsumed bytes buffered (partial frame tail).
  std::size_t buffered() const { return write_pos_ - read_pos_; }

  /// Backing-buffer capacity — exposed so tests can assert recycling
  /// (capacity plateaus while frames keep flowing).
  std::size_t capacity() const { return buf_.capacity(); }

 private:
  Bytes buf_;                  // storage; size() = grow-only high-water
  std::size_t read_pos_ = 0;   // parse cursor
  std::size_t write_pos_ = 0;  // end of buffered bytes
  std::size_t max_;
  bool error_ = false;
  const char* reason_ = "";
  std::uint64_t frames_ = 0;
};

}  // namespace fastbft::net
