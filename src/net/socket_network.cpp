#include "net/socket_network.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/assert.hpp"

namespace fastbft::net {

namespace {

// epoll_event.data.u64 layout: kind(high 16) | gen(16) | index(32).
enum : std::uint64_t { kTagWake = 0, kTagListen = 1, kTagLink = 2,
                       kTagPending = 3 };

std::uint64_t make_tag(std::uint64_t kind, std::uint16_t gen,
                       std::uint32_t index) {
  return (kind << 48) | (static_cast<std::uint64_t>(gen) << 32) | index;
}

int make_tcp_socket() {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd >= 0) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

bool make_addr(const std::string& host, std::uint16_t port,
               sockaddr_in& out) {
  std::memset(&out, 0, sizeof(out));
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &out.sin_addr) == 1;
}

}  // namespace

void SocketEndpoint::send(ProcessId to, SharedBytes payload) {
  net_.send(self_, to, std::move(payload));
}

std::uint32_t SocketEndpoint::cluster_size() const { return net_.size(); }

SocketNetwork::SocketNetwork(SocketNetworkConfig config)
    : config_(std::move(config)),
      handlers_(config_.peers.size()),
      loops_(config_.peers.size()),
      listen_ports_(config_.peers.size(), 0) {
  FASTBFT_ASSERT(config_.cluster_size <= config_.peers.size(),
                 "peers table must cover the replica cluster");
}

SocketNetwork::~SocketNetwork() { stop(); }

/// True when local id `self` initiates the connection to `peer`: exactly
/// one side of each pair dials (higher replica id dials lower, so the
/// pair shares one TCP connection), and listen-less endpoints (clients)
/// dial every listener.
static bool is_dialer(const SocketNetworkConfig& cfg, ProcessId self,
                      ProcessId peer) {
  if (peer == self) return false;
  if (!cfg.peers[peer].listens()) return false;
  if (!cfg.peers[self].listens()) return true;
  return peer < self;
}

void SocketNetwork::attach(ProcessId id, ReceiveHandler handler) {
  FASTBFT_ASSERT(id < total_size(), "attach: id out of range");
  FASTBFT_ASSERT(!started_, "attach before start()");
  handlers_[id] = std::move(handler);
  if (!loops_[id]) {
    auto loop = std::make_unique<Loop>();
    loop->id = id;
    loop->links.reserve(total_size());
    for (ProcessId peer = 0; peer < total_size(); ++peer) {
      auto link = std::make_unique<Link>(config_.max_frame_bytes);
      link->dialer = is_dialer(config_, id, peer);
      link->policy = LinkPolicy(
          config_.link,
          (static_cast<std::uint64_t>(id) << 32) | (peer + 1));
      loop->links.push_back(std::move(link));
    }
    loops_[id] = std::move(loop);
  }
}

std::unique_ptr<SocketEndpoint> SocketNetwork::endpoint(ProcessId id) {
  FASTBFT_ASSERT(id < total_size(), "endpoint: id out of range");
  return std::make_unique<SocketEndpoint>(*this, id);
}

SocketNetwork::Loop* SocketNetwork::loop_of(ProcessId id) const {
  FASTBFT_ASSERT(id < loops_.size() && loops_[id],
                 "id is not a local endpoint");
  return loops_[id].get();
}

void SocketNetwork::start() {
  FASTBFT_ASSERT(!started_, "already started");
  started_ = true;
  for (auto& loop_ptr : loops_) {
    if (!loop_ptr) continue;
    Loop& loop = *loop_ptr;
    loop.epoll_fd = ::epoll_create1(0);
    FASTBFT_ASSERT(loop.epoll_fd >= 0, "epoll_create1 failed");
    loop.wake_fd = ::eventfd(0, EFD_NONBLOCK);
    FASTBFT_ASSERT(loop.wake_fd >= 0, "eventfd failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = make_tag(kTagWake, 0, 0);
    ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, loop.wake_fd, &ev);

    const SocketPeer& self_addr = config_.peers[loop.id];
    if (self_addr.listens()) {
      if (self_addr.adopted_listen_fd >= 0) {
        loop.listen_fd = self_addr.adopted_listen_fd;
      } else {
        loop.listen_fd = make_tcp_socket();
        FASTBFT_ASSERT(loop.listen_fd >= 0, "listen socket failed");
        int one = 1;
        ::setsockopt(loop.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr;
        FASTBFT_ASSERT(make_addr(self_addr.host, self_addr.port, addr),
                       "bad listen address");
        FASTBFT_ASSERT(::bind(loop.listen_fd,
                              reinterpret_cast<sockaddr*>(&addr),
                              sizeof(addr)) == 0,
                       "bind failed");
        FASTBFT_ASSERT(::listen(loop.listen_fd, 128) == 0, "listen failed");
      }
      sockaddr_in bound;
      socklen_t len = sizeof(bound);
      if (::getsockname(loop.listen_fd,
                        reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
        listen_ports_[loop.id] = ntohs(bound.sin_port);
      }
      epoll_event lev{};
      lev.events = EPOLLIN;
      lev.data.u64 = make_tag(kTagListen, 0, 0);
      ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, loop.listen_fd, &lev);
    }
  }
  for (auto& loop_ptr : loops_) {
    if (!loop_ptr) continue;
    threads_.emplace_back([this, loop = loop_ptr.get()] { run_loop(*loop); });
  }
}

void SocketNetwork::stop() {
  if (!started_ || stopped_.load()) {
    stopped_.store(true);
    return;
  }
  stopping_.store(true);
  for (auto& loop_ptr : loops_) {
    if (loop_ptr) wake(*loop_ptr);
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  for (auto& loop_ptr : loops_) {
    if (!loop_ptr) continue;
    Loop& loop = *loop_ptr;
    // The loop thread is joined: ownership of loop state returns to the
    // thread tearing the network down.
    loop.guard.unbind();
    for (auto& link : loop.links) {
      if (link->fd >= 0) ::close(link->fd);
      link->fd = -1;
    }
    for (auto& p : loop.pendings) {
      if (p && p->fd >= 0) ::close(p->fd);
    }
    loop.pendings.clear();
    if (loop.listen_fd >= 0) ::close(loop.listen_fd);
    loop.listen_fd = -1;
    if (loop.wake_fd >= 0) ::close(loop.wake_fd);
    loop.wake_fd = -1;
    if (loop.epoll_fd >= 0) ::close(loop.epoll_fd);
    loop.epoll_fd = -1;
    loop.timers.clear();
  }
  stopped_.store(true);
}

TimePoint SocketNetwork::now_ticks() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch_)
      .count();
}

std::uint16_t SocketNetwork::listen_port(ProcessId id) const {
  FASTBFT_ASSERT(id < total_size(), "listen_port: id out of range");
  return listen_ports_[id];
}

void SocketNetwork::wake(Loop& loop) {
  if (loop.wake_fd < 0) return;
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t r = ::write(loop.wake_fd, &one, sizeof(one));
}

void SocketNetwork::post(ProcessId id, std::function<void()> fn) {
  Loop* loop = loop_of(id);
  {
    std::lock_guard<std::mutex> lk(loop->task_mutex);
    loop->tasks.push_back(std::move(fn));
    loop->has_tasks.store(true, std::memory_order_release);
  }
  wake(*loop);
}

void SocketNetwork::send(ProcessId from, ProcessId to, SharedBytes payload) {
  FASTBFT_ASSERT(from < total_size() && to < total_size(),
                 "send: id out of range");
  if (to < loops_.size() && loops_[to]) {
    // Both endpoints live in this process: deliver through the target
    // loop's task queue — no socket, no copy, and the same deferred
    // (non-reentrant) semantics as a ThreadedNetwork self-send.
    post(to, [this, from, to, payload = std::move(payload)] {
      if (!handlers_[to]) return;
      delivered_.fetch_add(1, std::memory_order_relaxed);
      handlers_[to](from, payload);
    });
    return;
  }
  Loop* loop = loop_of(from);
  if (std::this_thread::get_id() == loop->owner.load()) {
    send_on_loop(*loop, to, std::move(payload));
  } else {
    post(from, [this, loop, to, payload = std::move(payload)]() mutable {
      send_on_loop(*loop, to, std::move(payload));
    });
  }
}

void SocketNetwork::send_on_loop(Loop& loop, ProcessId to,
                                 SharedBytes payload) {
  loop.guard.check("send_on_loop: loop state is loop-thread-only");
  Link& link = *loop.links[to];
  enqueue_frame(loop, link, to, std::move(payload), /*heartbeat=*/false);
}

void SocketNetwork::enqueue_frame(Loop& loop, Link& link, ProcessId peer,
                                  SharedBytes payload, bool heartbeat) {
  (void)loop;
  (void)peer;
  if (payload.size() > config_.max_frame_bytes ||
      link.sendq.size() >= config_.max_queued_frames) {
    link.stats.bump(link.stats.frames_dropped);
    return;
  }
  SendEntry entry;
  encode_frame_header(static_cast<std::uint32_t>(payload.size()),
                      entry.header);
  entry.payload = std::move(payload);
  if (config_.tx_delay_us > 0) {
    entry.ready_at = now_ticks() + config_.tx_delay_us;
  }
  link.sendq.push_back(std::move(entry));
  link.stats.high_water(link.sendq.size());
  if (heartbeat) link.stats.bump(link.stats.heartbeats_out);
}

// --- Timers (same-thread contract, mirrors ThreadedNetwork) -----------------

void SocketNetwork::assert_timer_owner(const Loop& loop) const {
  // Guard is unbound before run_loop starts and after stop() joins, so
  // setup/teardown-thread arms stay legal, exactly as on ThreadedNetwork.
  loop.guard.check(
      "timers must be armed/cancelled on the owning loop thread");
}

SocketNetwork::TimerKey SocketNetwork::arm_timer(ProcessId id,
                                                 TimePoint at_ticks,
                                                 std::function<void()> fn) {
  Loop* loop = loop_of(id);
  assert_timer_owner(*loop);
  TimerKey key{at_ticks, loop->next_timer_seq++};
  loop->timers.emplace(key, std::move(fn));
  return key;
}

void SocketNetwork::cancel_timer(ProcessId id, TimerKey key) {
  Loop* loop = loop_of(id);
  assert_timer_owner(*loop);
  loop->timers.erase(key);
}

// --- Readiness loop ----------------------------------------------------------

void SocketNetwork::run_loop(Loop& loop) {
  loop.owner.store(std::this_thread::get_id());
  loop.guard.bind();
  while (!stopping_.load(std::memory_order_acquire)) {
    loop_round(loop);
  }
}

TimePoint SocketNetwork::next_deadline(Loop& loop, TimePoint now) const {
  TimePoint dl = now + 100'000;  // 100 ms cap: nothing sleeps longer
  if (!loop.timers.empty()) {
    dl = std::min(dl, loop.timers.begin()->first.first);
  }
  const Duration hs_timeout = config_.link.heartbeat_timeout_us;
  for (ProcessId peer = 0; peer < loop.links.size(); ++peer) {
    const Link& link = *loop.links[peer];
    switch (link.state) {
      case LinkState::Idle:
        if (link.dialer) dl = std::min(dl, link.policy.retry_at());
        break;
      case LinkState::Connecting:
        dl = std::min(dl, link.connect_started + hs_timeout);
        break;
      case LinkState::Ready:
        dl = std::min(dl, link.policy.next_established_deadline());
        // Held tx_delay frames must wake the loop when they come due —
        // the end-of-round flush won't run again until epoll returns.
        if (config_.tx_delay_us > 0 && !link.sendq.empty() &&
            !link.want_writable) {
          dl = std::min(dl, link.sendq.front().ready_at);
        }
        break;
    }
  }
  for (const auto& p : loop.pendings) {
    if (p && p->fd >= 0) dl = std::min(dl, p->accepted_at + hs_timeout);
  }
  return std::max(dl, now);
}

void SocketNetwork::drain_tasks(Loop& loop) {
  if (!loop.has_tasks.load(std::memory_order_acquire)) return;
  std::deque<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lk(loop.task_mutex);
    tasks.swap(loop.tasks);
    loop.has_tasks.store(false, std::memory_order_relaxed);
  }
  for (auto& fn : tasks) fn();
}

void SocketNetwork::loop_round(Loop& loop) {
  TimePoint now = now_ticks();
  const TimePoint deadline = next_deadline(loop, now);
  const int timeout_ms = static_cast<int>(
      std::clamp<TimePoint>((deadline - now + 999) / 1000, 0, 100));

  epoll_event events[64];
  const int nev = ::epoll_wait(loop.epoll_fd, events, 64, timeout_ms);

  drain_tasks(loop);

  for (int i = 0; i < nev; ++i) {
    const std::uint64_t tag = events[i].data.u64;
    const std::uint64_t kind = tag >> 48;
    const std::uint16_t gen = static_cast<std::uint16_t>(tag >> 32);
    const std::uint32_t index = static_cast<std::uint32_t>(tag);
    switch (kind) {
      case kTagWake: {
        std::uint64_t count;
        while (::read(loop.wake_fd, &count, sizeof(count)) > 0) {
        }
        // Tasks posted since the last drain run at the next drain point
        // (after the next delivery, timer, or round start); the eventfd
        // stays signalled until then, so nothing is lost.
        break;
      }
      case kTagListen:
        accept_ready(loop);
        break;
      case kTagLink: {
        Link& link = *loop.links[index];
        if (link.gen != gen || link.fd < 0) break;  // stale event
        if (link.state == LinkState::Connecting) {
          // Any readiness on a connecting fd resolves the attempt.
          on_connect_writable(loop, link, index);
          break;
        }
        // Drain readable bytes BEFORE acting on ERR/HUP so a peer's last
        // frames ahead of a close are still delivered.
        if ((events[i].events & EPOLLIN) != 0) {
          link_readable(loop, link, index);
        }
        if (link.gen != gen || link.fd < 0) break;  // went down while reading
        if ((events[i].events & EPOLLOUT) != 0) {
          link.want_writable = false;
          update_epoll(loop, link, index);
          flush_link(loop, link, index);
        }
        if (link.gen != gen || link.fd < 0) break;
        if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
          link_down(loop, link, index, link.state == LinkState::Ready);
        }
        break;
      }
      case kTagPending: {
        if (index >= loop.pendings.size() || !loop.pendings[index] ||
            loop.pendings[index]->fd < 0 ||
            loop.pendings[index]->gen != gen) {
          break;  // stale event
        }
        if (events[i].events & (EPOLLERR | EPOLLHUP)) {
          drop_pending(loop, index);
        } else {
          pending_readable(loop, index);
        }
        break;
      }
    }
  }

  now = now_ticks();
  while (!loop.timers.empty() && loop.timers.begin()->first.first <= now) {
    auto node = loop.timers.extract(loop.timers.begin());
    timers_fired_.fetch_add(1, std::memory_order_relaxed);
    node.mapped()();
    drain_tasks(loop);  // same FIFO contract as parse_frames
  }

  service_links(loop, now);

  // Write coalescing: everything the tasks, deliveries and timers above
  // queued this round goes out in as few writev calls as possible.
  for (ProcessId peer = 0; peer < loop.links.size(); ++peer) {
    Link& link = *loop.links[peer];
    if (link.state == LinkState::Ready && !link.sendq.empty() &&
        !link.want_writable) {
      flush_link(loop, link, peer);
    }
  }
}

void SocketNetwork::service_links(Loop& loop, TimePoint now) {
  const Duration hs_timeout = config_.link.heartbeat_timeout_us;
  for (ProcessId peer = 0; peer < loop.links.size(); ++peer) {
    Link& link = *loop.links[peer];
    switch (link.state) {
      case LinkState::Idle:
        if (link.dialer && !stopping_.load() && link.policy.retry_due(now)) {
          start_connect(loop, link, peer, now);
        }
        break;
      case LinkState::Connecting:
        if (now - link.connect_started >= hs_timeout) {
          link_down(loop, link, peer, /*was_ready=*/false);
        }
        break;
      case LinkState::Ready:
        if (link.policy.rx_expired(now)) {
          link.stats.bump(link.stats.peer_downs);
          link_down(loop, link, peer, /*was_ready=*/true);
        } else if (link.policy.heartbeat_due(now)) {
          enqueue_frame(loop, link, peer, SharedBytes(), /*heartbeat=*/true);
          link.policy.on_tx(now);
        }
        break;
    }
  }
  for (std::size_t slot = 0; slot < loop.pendings.size(); ++slot) {
    auto& p = loop.pendings[slot];
    if (p && p->fd >= 0 && now - p->accepted_at >= hs_timeout) {
      drop_pending(loop, slot);
    }
  }
}

// --- Outbound connections ----------------------------------------------------

void SocketNetwork::start_connect(Loop& loop, Link& link, ProcessId peer,
                                  TimePoint now) {
  const SocketPeer& addr = config_.peers[peer];
  sockaddr_in sa;
  if (!make_addr(addr.host, addr.port, sa)) {
    link.policy.on_connect_failed(now);
    return;
  }
  int fd = make_tcp_socket();
  if (fd < 0) {
    link.policy.on_connect_failed(now);
    return;
  }
  link.stats.bump(link.stats.connects_attempted);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (rc == 0) {
    link.fd = fd;
    ++link.gen;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = make_tag(kTagLink, link.gen, peer);
    ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    established(loop, link, peer);
    return;
  }
  if (errno == EINPROGRESS) {
    link.fd = fd;
    link.state = LinkState::Connecting;
    link.connect_started = now;
    ++link.gen;
    epoll_event ev{};
    ev.events = EPOLLOUT;
    ev.data.u64 = make_tag(kTagLink, link.gen, peer);
    ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    return;
  }
  ::close(fd);
  link.policy.on_connect_failed(now);
}

void SocketNetwork::on_connect_writable(Loop& loop, Link& link,
                                        ProcessId peer) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(link.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
      err != 0) {
    link_down(loop, link, peer, /*was_ready=*/false);
    return;
  }
  link.state = LinkState::Ready;  // established() fills in the rest
  established(loop, link, peer);
}

void SocketNetwork::established(Loop& loop, Link& link, ProcessId peer) {
  const TimePoint now = now_ticks();
  link.state = LinkState::Ready;
  link.want_writable = false;
  link.policy.on_established(now);
  if (link.ever_established) {
    link.stats.bump(link.stats.reconnects);
  }
  link.ever_established = true;
  link.stats.bump(link.stats.connects_established);
  if (link.dialer) {
    // First frame on the wire must identify us; the acceptor cannot bind
    // this connection to a link until it arrives.
    link.peer_identified = false;
    SendEntry hello;
    Handshake hs{loop.id, config_.cluster_size};
    Bytes encoded = hs.encode();
    encode_frame_header(static_cast<std::uint32_t>(encoded.size()),
                        hello.header);
    hello.payload = SharedBytes(std::move(encoded));
    link.sendq.push_front(std::move(hello));
  }
  update_epoll(loop, link, peer);
  flush_link(loop, link, peer);
}

void SocketNetwork::link_down(Loop& loop, Link& link, ProcessId peer,
                              bool was_ready) {
  (void)was_ready;
  if (link.fd >= 0) {
    ::close(link.fd);
    link.fd = -1;
  }
  ++link.gen;
  link.state = LinkState::Idle;
  link.peer_identified = false;
  link.want_writable = false;
  link.reader = FrameReader(config_.max_frame_bytes);
  // Queued frames are kept (bounded): they flush after reconnection.
  // Drop any partially written frame — the peer's reader lost sync
  // context anyway when the connection died.
  if (!link.sendq.empty() && link.sendq.front().offset > 0) {
    link.sendq.pop_front();
  }
  if (link.dialer) {
    link.policy.on_connect_failed(now_ticks());
  }
  (void)loop;
  (void)peer;
}

// --- Accept path -------------------------------------------------------------

void SocketNetwork::accept_ready(Loop& loop) {
  for (;;) {
    int fd = ::accept4(loop.listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN or transient error: epoll will re-arm
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    // Identify ourselves immediately; a fresh socket buffer always has
    // room for the 18-byte hello, so a short write means a broken peer.
    Handshake hs{loop.id, config_.cluster_size};
    const Bytes body = hs.encode();
    FrameHeader hdr;
    encode_frame_header(static_cast<std::uint32_t>(body.size()), hdr);
    Bytes wire(hdr.begin(), hdr.end());
    wire.insert(wire.end(), body.begin(), body.end());
    if (::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(wire.size())) {
      ::close(fd);
      continue;
    }

    std::size_t slot = 0;
    while (slot < loop.pendings.size() && loop.pendings[slot] &&
           loop.pendings[slot]->fd >= 0) {
      ++slot;
    }
    if (slot == loop.pendings.size()) {
      loop.pendings.push_back(
          std::make_unique<PendingAccept>(config_.max_frame_bytes));
    } else if (!loop.pendings[slot]) {
      loop.pendings[slot] =
          std::make_unique<PendingAccept>(config_.max_frame_bytes);
    }
    PendingAccept& p = *loop.pendings[slot];
    p.fd = fd;
    ++p.gen;
    p.reader = FrameReader(config_.max_frame_bytes);
    p.accepted_at = now_ticks();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 =
        make_tag(kTagPending, p.gen, static_cast<std::uint32_t>(slot));
    ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev);
  }
}

void SocketNetwork::drop_pending(Loop& loop, std::size_t slot) {
  PendingAccept& p = *loop.pendings[slot];
  if (p.fd >= 0) ::close(p.fd);
  p.fd = -1;
  ++p.gen;
}

void SocketNetwork::pending_readable(Loop& loop, std::size_t slot) {
  PendingAccept& p = *loop.pendings[slot];
  for (;;) {
    std::uint8_t* dst = p.reader.prepare(512);
    const ssize_t r = ::recv(p.fd, dst, 512, 0);
    if (r > 0) {
      p.reader.commit(r);
      if (static_cast<std::size_t>(r) < 512) break;
      continue;
    }
    p.reader.commit(0);
    if (r == 0 || errno != EAGAIN) {
      drop_pending(loop, slot);
      return;
    }
    break;
  }
  auto frame = p.reader.next();
  if (p.reader.error()) {
    loop.stats.bump(loop.stats.handshake_rejects);
    drop_pending(loop, slot);
    return;
  }
  if (!frame) return;  // handshake not complete yet
  Handshake hs;
  const auto result = Handshake::decode(*frame, hs);
  if (result != Handshake::Result::Ok || hs.sender >= total_size() ||
      hs.sender == loop.id) {
    loop.stats.bump(loop.stats.handshake_rejects);
    drop_pending(loop, slot);
    return;
  }
  adopt_pending(loop, slot, hs);
}

void SocketNetwork::adopt_pending(Loop& loop, std::size_t slot,
                                  const Handshake& hs) {
  PendingAccept& p = *loop.pendings[slot];
  Link& link = *loop.links[hs.sender];
  if (link.fd >= 0) {
    // The peer reconnected before we noticed the old connection die (or
    // a rule-breaking double dial): newest wins.
    ::close(link.fd);
    link.fd = -1;
  }
  link.fd = p.fd;
  ++link.gen;
  // Transplant the reader: data frames may already sit behind the
  // handshake in the buffer.
  link.reader = std::move(p.reader);
  p.fd = -1;
  ++p.gen;
  p.reader = FrameReader(config_.max_frame_bytes);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = make_tag(kTagLink, link.gen, hs.sender);
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, link.fd, &ev);

  established(loop, link, hs.sender);
  link.peer_identified = true;
  if (parse_frames(loop, link, hs.sender)) {
    if (link.state == LinkState::Ready && !link.sendq.empty() &&
        !link.want_writable) {
      flush_link(loop, link, hs.sender);
    }
  }
}

// --- Established I/O ---------------------------------------------------------

void SocketNetwork::link_readable(Loop& loop, Link& link, ProcessId peer) {
  const std::size_t chunk = config_.read_chunk_bytes;
  bool down = false;
  for (;;) {
    std::uint8_t* dst = link.reader.prepare(chunk);
    const ssize_t r = ::recv(link.fd, dst, chunk, 0);
    if (r > 0) {
      link.reader.commit(r);
      link.stats.bump(link.stats.bytes_in, static_cast<std::uint64_t>(r));
      if (static_cast<std::size_t>(r) < chunk) break;
      continue;
    }
    link.reader.commit(0);
    if (r == 0 || errno != EAGAIN) down = true;
    break;
  }
  if (!parse_frames(loop, link, peer)) return;  // link went down in parse
  if (down) link_down(loop, link, peer, /*was_ready=*/true);
}

bool SocketNetwork::parse_frames(Loop& loop, Link& link, ProcessId peer) {
  const TimePoint now = now_ticks();
  while (auto frame = link.reader.next()) {
    link.policy.on_rx(now);
    if (!link.peer_identified) {
      Handshake hs;
      const auto result = Handshake::decode(*frame, hs);
      if (result != Handshake::Result::Ok || hs.sender != peer) {
        link.stats.bump(link.stats.handshake_rejects);
        link_down(loop, link, peer, /*was_ready=*/true);
        return false;
      }
      link.peer_identified = true;
      continue;
    }
    if (frame->empty()) {
      link.stats.bump(link.stats.heartbeats_in);
      continue;
    }
    link.stats.bump(link.stats.frames_in);
    deliver(loop, link, peer, *frame);
    // FIFO contract with ThreadedNetwork: a task the handler just posted
    // (e.g. SlotMux's deferred apply) runs before the NEXT message is
    // handled. Sockets batch many frames per readiness round, so without
    // this drain a deferred window-advance systematically loses the race
    // against the next slot's proposal sitting right behind it in the
    // read buffer — and the engine drops that proposal as beyond-window,
    // stalling the slot until its view-change timeout.
    drain_tasks(loop);
    if (link.fd < 0) return false;  // handler-triggered teardown
  }
  if (link.reader.error()) {
    link.stats.bump(link.stats.decode_errors);
    link_down(loop, link, peer, /*was_ready=*/true);
    return false;
  }
  return true;
}

void SocketNetwork::deliver(Loop& loop, Link& link, ProcessId from,
                            ByteView frame) {
  loop.guard.check("deliver: handlers run on the owning loop thread only");
  if (!handlers_[loop.id]) return;
  // ReceiveHandler takes `const Bytes&`, so inbound frames cost exactly
  // one copy — into this connection's recycled delivery buffer, which is
  // alloc-free once its capacity has warmed up.
  if (frame.size() > link.delivery_buf.capacity()) {
    link.stats.bump(link.stats.delivery_allocs);
  } else {
    link.stats.bump(link.stats.delivery_reuses);
  }
  link.delivery_buf.assign(frame.begin(), frame.end());
  delivered_.fetch_add(1, std::memory_order_relaxed);
  handlers_[loop.id](from, link.delivery_buf);
}

void SocketNetwork::update_epoll(Loop& loop, Link& link, ProcessId peer) {
  if (link.fd < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (link.want_writable ? EPOLLOUT : 0u);
  ev.data.u64 = make_tag(kTagLink, link.gen, peer);
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, link.fd, &ev);
}

void SocketNetwork::flush_link(Loop& loop, Link& link, ProcessId peer) {
  // Under emulated link latency only frames past their ready_at may leave.
  // FIFO order is preserved: a not-yet-due frame blocks everything behind
  // it, and a partially written frame (offset > 0) is already on the wire
  // so it always completes.
  const TimePoint due_now = config_.tx_delay_us > 0 ? now_ticks() : 0;
  while (link.state == LinkState::Ready && link.fd >= 0 &&
         !link.sendq.empty()) {
    // Scatter-gather up to writev_batch_frames pending frames: one iovec
    // for each 4-byte header, one aliasing each SharedBytes payload — no
    // staging copies, syscalls amortized across everything queued.
    constexpr std::size_t kMaxIov = 128;
    iovec iov[kMaxIov];
    std::size_t niov = 0;
    std::size_t nframes = 0;
    for (const SendEntry& entry : link.sendq) {
      if (nframes >= config_.writev_batch_frames || niov + 2 > kMaxIov) break;
      if (entry.offset == 0 && entry.ready_at > due_now) break;
      std::size_t off = entry.offset;
      if (off < kFrameHeaderBytes) {
        iov[niov].iov_base =
            const_cast<std::uint8_t*>(entry.header.data()) + off;
        iov[niov].iov_len = kFrameHeaderBytes - off;
        ++niov;
        off = 0;
      } else {
        off -= kFrameHeaderBytes;
      }
      if (entry.payload.size() > off) {
        iov[niov].iov_base =
            const_cast<std::uint8_t*>(entry.payload.get().data()) + off;
        iov[niov].iov_len = entry.payload.size() - off;
        ++niov;
      }
      ++nframes;
    }
    if (niov == 0) {
      // Fully written entries would have been popped; nothing sendable.
      break;
    }
    const ssize_t written = ::writev(link.fd, iov, static_cast<int>(niov));
    if (written < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!link.want_writable) {
          link.want_writable = true;
          update_epoll(loop, link, peer);
        }
        return;
      }
      link_down(loop, link, peer, /*was_ready=*/true);
      return;
    }
    link.stats.bump(link.stats.writev_calls);
    link.stats.bump(link.stats.bytes_out,
                    static_cast<std::uint64_t>(written));
    link.policy.on_tx(now_ticks());
    std::size_t remaining = static_cast<std::size_t>(written);
    std::uint64_t completed = 0;
    while (remaining > 0 && !link.sendq.empty()) {
      SendEntry& entry = link.sendq.front();
      const std::size_t total =
          kFrameHeaderBytes + entry.payload.size() - entry.offset;
      if (remaining >= total) {
        remaining -= total;
        link.sendq.pop_front();
        ++completed;
      } else {
        entry.offset += remaining;
        remaining = 0;
      }
    }
    link.stats.bump(link.stats.frames_out, completed);
    link.stats.bump(link.stats.writev_frames, completed);
  }
}

// --- Stats -------------------------------------------------------------------

SocketCounters SocketNetwork::link_stats(ProcessId id, ProcessId peer) const {
  SocketCounters out;
  if (id < loops_.size() && loops_[id] && peer < loops_[id]->links.size()) {
    out = loops_[id]->links[peer]->stats.snapshot();
  }
  return out;
}

SocketCounters SocketNetwork::stats() const {
  SocketCounters out;
  for (const auto& loop : loops_) {
    if (!loop) continue;
    out.merge(loop->stats.snapshot());
    for (const auto& link : loop->links) {
      out.merge(link->stats.snapshot());
    }
  }
  return out;
}

std::string SocketNetwork::stats_summary() const {
  std::ostringstream out;
  for (const auto& loop : loops_) {
    if (!loop) continue;
    out << "endpoint " << loop->id << ":\n";
    for (ProcessId peer = 0; peer < loop->links.size(); ++peer) {
      const SocketCounters c = loop->links[peer]->stats.snapshot();
      if (c.connects_attempted == 0 && c.frames_in == 0 && c.frames_out == 0 &&
          c.connects_established == 0) {
        continue;
      }
      out << " link -> " << peer << ":\n" << c.summary("   ");
    }
    const SocketCounters lc = loop->stats.snapshot();
    if (lc.handshake_rejects > 0) {
      out << " loop: " << lc.handshake_rejects << " handshake rejects\n";
    }
  }
  out << "delivered: " << delivered_count()
      << " messages, timers fired: " << timers_fired() << "\n";
  return out.str();
}

}  // namespace fastbft::net
