#include "net/sim_network.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace fastbft::net {

void SimEndpoint::send(ProcessId to, SharedBytes payload) {
  net_.send(self_, to, std::move(payload));
}

std::uint32_t SimEndpoint::cluster_size() const { return net_.size(); }

SimNetwork::SimNetwork(sim::Scheduler& sched, std::uint32_t n,
                       SimNetworkConfig config,
                       std::uint32_t extra_endpoints)
    : sched_(sched),
      n_(n),
      config_(config),
      rng_(config.seed ^ 0x6e657477ULL),
      fault_rng_(config.seed ^ 0x6368616fULL),
      handlers_(n + extra_endpoints),
      disconnected_(n + extra_endpoints, false) {
  FASTBFT_ASSERT(config_.min_delay >= 1 && config_.min_delay <= config_.delta,
                 "min_delay must be in [1, delta]");
  FASTBFT_ASSERT(config_.pre_gst_max_delay >= config_.delta,
                 "pre-GST delays cannot undercut delta");
}

void SimNetwork::attach(ProcessId id, ReceiveHandler handler) {
  FASTBFT_ASSERT(id < total_size(), "attach: id out of range");
  handlers_[id] = std::move(handler);
}

std::unique_ptr<SimEndpoint> SimNetwork::endpoint(ProcessId id) {
  FASTBFT_ASSERT(id < total_size(), "endpoint: id out of range");
  return std::make_unique<SimEndpoint>(*this, id);
}

void SimNetwork::send(ProcessId from, ProcessId to, SharedBytes payload) {
  FASTBFT_ASSERT(from < total_size() && to < total_size(),
                 "send: id out of range");
  if (disconnected_[from] || disconnected_[to]) return;

  // Chaos fault hooks: partitions and per-link drops claim the message
  // before it reaches the stochastic model. Self-sends are local
  // computation and exempt.
  Duration extra_delay = 0;
  if (from != to) {
    if (!partition_.empty()) {
      std::uint8_t side_from =
          from < partition_.size() ? partition_[from] : 2;
      std::uint8_t side_to = to < partition_.size() ? partition_[to] : 2;
      if (side_from <= 1 && side_to <= 1 && side_from != side_to) {
        ++dropped_;
        return;
      }
    }
    if (!link_faults_.empty()) {
      auto it = link_faults_.find({from, to});
      if (it != link_faults_.end()) {
        const LinkFault& fault = it->second;
        if (fault.drop_permille > 0 &&
            fault_rng_.chance(fault.drop_permille, 1000)) {
          ++dropped_;
          return;
        }
        if (fault.extra_max > 0) {
          extra_delay =
              fault_rng_.next_in_range(fault.extra_min, fault.extra_max);
        }
      }
    }
  }

  stats_.record_send(payload);
  Envelope env{from, to, std::move(payload)};
  TimePoint now = sched_.now();

  if (script_) {
    if (auto scripted = script_(env, now)) {
      if (*scripted >= kTimeInfinity) {
        if (observer_) observer_(env, now, kTimeInfinity);
        parked_.push_back(std::move(env));
        return;
      }
      FASTBFT_ASSERT(*scripted >= now, "script scheduled into the past");
      if (observer_) observer_(env, now, *scripted);
      deliver_at(*scripted, std::move(env));
      return;
    }
  }

  if (from == to) {
    // Local hand-off: instantaneous, consistent with the paper's
    // "local computation takes no time".
    if (observer_) observer_(env, now, now);
    deliver_at(now, std::move(env));
    return;
  }

  Duration delay;
  if (now < config_.gst) {
    delay = rng_.next_in_range(config_.delta, config_.pre_gst_max_delay);
    // A message sent just before GST must still respect eventual synchrony:
    // it is delivered within delta after GST at the latest.
    TimePoint latest = config_.gst + config_.delta;
    if (now + delay > latest) delay = latest - now;
  } else {
    delay = rng_.next_in_range(config_.min_delay, config_.delta);
  }
  delay += extra_delay;
  if (observer_) observer_(env, now, now + delay);
  deliver_at(now + delay, std::move(env));
}

void SimNetwork::set_partition(std::vector<std::uint8_t> side) {
  partition_ = std::move(side);
}

void SimNetwork::set_link_fault(ProcessId from, ProcessId to,
                                LinkFault fault) {
  FASTBFT_ASSERT(from < total_size() && to < total_size(),
                 "set_link_fault: id out of range");
  FASTBFT_ASSERT(fault.extra_min >= 0 && fault.extra_min <= fault.extra_max,
                 "set_link_fault: bad delay range");
  FASTBFT_ASSERT(fault.drop_permille <= 1000,
                 "set_link_fault: drop_permille > 1000");
  link_faults_[{from, to}] = fault;
}

void SimNetwork::clear_link_fault(ProcessId from, ProcessId to) {
  link_faults_.erase({from, to});
}

void SimNetwork::deliver_at(TimePoint at, Envelope env) {
  sched_.schedule_at(at, [this, env = std::move(env)]() mutable {
    if (disconnected_[env.to]) return;
    ++delivered_;
    FASTBFT_ASSERT(static_cast<bool>(handlers_[env.to]),
                   "message delivered to a process with no handler");
    handlers_[env.to](env.from, env.payload);
  });
}

void SimNetwork::disconnect(ProcessId id) {
  FASTBFT_ASSERT(id < total_size(), "disconnect: id out of range");
  disconnected_[id] = true;
}

void SimNetwork::reconnect(ProcessId id) {
  FASTBFT_ASSERT(id < total_size(), "reconnect: id out of range");
  disconnected_[id] = false;
}

void SimNetwork::flush_parked() {
  std::vector<Envelope> parked = std::move(parked_);
  parked_.clear();
  TimePoint at = sched_.now() + config_.delta;
  for (Envelope& env : parked) {
    deliver_at(at, std::move(env));
  }
}

}  // namespace fastbft::net
