#include "net/threaded_network.hpp"

#include "common/assert.hpp"

namespace fastbft::net {

void ThreadedEndpoint::send(ProcessId to, Bytes payload) {
  net_.send(self_, to, std::move(payload));
}

std::uint32_t ThreadedEndpoint::cluster_size() const { return net_.size(); }

ThreadedNetwork::ThreadedNetwork(std::uint32_t n)
    : n_(n), handlers_(n), disconnected_(n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    inboxes_.push_back(std::make_unique<Inbox>());
    disconnected_[i].store(false);
  }
}

ThreadedNetwork::~ThreadedNetwork() { stop(); }

void ThreadedNetwork::attach(ProcessId id, ReceiveHandler handler) {
  FASTBFT_ASSERT(id < n_, "attach: id out of range");
  FASTBFT_ASSERT(!started_, "attach before start()");
  handlers_[id] = std::move(handler);
}

std::unique_ptr<ThreadedEndpoint> ThreadedNetwork::endpoint(ProcessId id) {
  FASTBFT_ASSERT(id < n_, "endpoint: id out of range");
  return std::make_unique<ThreadedEndpoint>(*this, id);
}

void ThreadedNetwork::start() {
  FASTBFT_ASSERT(!started_, "already started");
  for (ProcessId id = 0; id < n_; ++id) {
    FASTBFT_ASSERT(static_cast<bool>(handlers_[id]),
                   "every process needs a handler before start()");
  }
  started_ = true;
  workers_.reserve(n_);
  for (ProcessId id = 0; id < n_; ++id) {
    workers_.emplace_back([this, id] { run_worker(id); });
  }
}

void ThreadedNetwork::stop() {
  if (!started_ || stopping_.exchange(true)) {
    // Either never started or someone else is already stopping.
    for (auto& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    return;
  }
  for (auto& inbox : inboxes_) {
    std::lock_guard<std::mutex> lock(inbox->mutex);
    inbox->cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadedNetwork::disconnect(ProcessId id) {
  FASTBFT_ASSERT(id < n_, "disconnect: id out of range");
  disconnected_[id].store(true);
  inboxes_[id]->cv.notify_all();
}

void ThreadedNetwork::send(ProcessId from, ProcessId to, Bytes payload) {
  FASTBFT_ASSERT(from < n_ && to < n_, "send: id out of range");
  if (stopping_.load()) return;
  if (disconnected_[from].load() || disconnected_[to].load()) return;
  Inbox& inbox = *inboxes_[to];
  {
    std::lock_guard<std::mutex> lock(inbox.mutex);
    inbox.queue.push_back(Envelope{from, to, std::move(payload)});
  }
  inbox.cv.notify_one();
}

void ThreadedNetwork::run_worker(ProcessId id) {
  Inbox& inbox = *inboxes_[id];
  while (true) {
    Envelope env;
    {
      std::unique_lock<std::mutex> lock(inbox.mutex);
      inbox.cv.wait(lock, [&] {
        return stopping_.load() || disconnected_[id].load() ||
               !inbox.queue.empty();
      });
      if (stopping_.load()) return;
      if (disconnected_[id].load()) {
        inbox.queue.clear();
        // Stay parked until shutdown (a crashed process never recovers).
        inbox.cv.wait(lock, [&] { return stopping_.load(); });
        return;
      }
      env = std::move(inbox.queue.front());
      inbox.queue.pop_front();
    }
    delivered_.fetch_add(1);
    handlers_[id](env.from, env.payload);
  }
}

}  // namespace fastbft::net
