#include "net/threaded_network.hpp"

#include "common/assert.hpp"

namespace fastbft::net {

void ThreadedEndpoint::send(ProcessId to, SharedBytes payload) {
  net_.send(self_, to, std::move(payload));
}

std::uint32_t ThreadedEndpoint::cluster_size() const { return net_.size(); }

ThreadedNetwork::ThreadedNetwork(std::uint32_t n,
                                 ThreadedNetworkConfig config,
                                 std::uint32_t extra_endpoints)
    : n_(n),
      config_(config),
      handlers_(n + extra_endpoints),
      disconnected_(n + extra_endpoints) {
  for (std::uint32_t i = 0; i < n + extra_endpoints; ++i) {
    inboxes_.push_back(std::make_unique<Inbox>());
    disconnected_[i].store(false);
  }
}

ThreadedNetwork::~ThreadedNetwork() { stop(); }

void ThreadedNetwork::attach(ProcessId id, ReceiveHandler handler) {
  FASTBFT_ASSERT(id < total_size(), "attach: id out of range");
  FASTBFT_ASSERT(!started_, "attach before start()");
  handlers_[id] = std::move(handler);
}

std::unique_ptr<ThreadedEndpoint> ThreadedNetwork::endpoint(ProcessId id) {
  FASTBFT_ASSERT(id < total_size(), "endpoint: id out of range");
  return std::make_unique<ThreadedEndpoint>(*this, id);
}

void ThreadedNetwork::start() {
  FASTBFT_ASSERT(!started_, "already started");
  for (ProcessId id = 0; id < total_size(); ++id) {
    FASTBFT_ASSERT(static_cast<bool>(handlers_[id]),
                   "every process needs a handler before start()");
  }
  started_ = true;
  workers_.reserve(total_size());
  for (ProcessId id = 0; id < total_size(); ++id) {
    workers_.emplace_back([this, id] { run_worker(id); });
  }
}

void ThreadedNetwork::stop() {
  if (!started_ || stopping_.exchange(true)) {
    // Either never started or someone else is already stopping.
    for (auto& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    stopped_.store(true);
    return;
  }
  for (auto& inbox : inboxes_) {
    std::lock_guard<std::mutex> lock(inbox->mutex);
    inbox->cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Workers are joined: ownership of every inbox (timers included)
  // returns to whichever thread is tearing the network down.
  for (auto& inbox : inboxes_) inbox->guard.unbind();
  stopped_.store(true);
}

void ThreadedNetwork::disconnect(ProcessId id) {
  FASTBFT_ASSERT(id < total_size(), "disconnect: id out of range");
  disconnected_[id].store(true);
  Inbox& inbox = *inboxes_[id];
  {
    // Drop undelivered traffic NOW, not when the worker next parks: a
    // rejoin task posted right after this call outranks the disconnected
    // branch in the worker loop, and must not find pre-crash envelopes to
    // hand to the fresh incarnation. (Timers cannot be cleared here —
    // they are touched lock-free by the delivery thread — but stale timer
    // closures are liveness-guarded and swept when the worker parks.)
    std::lock_guard<std::mutex> lock(inbox.mutex);
    inbox.queue.clear();
  }
  inbox.cv.notify_all();
}

void ThreadedNetwork::reconnect(ProcessId id) {
  FASTBFT_ASSERT(id < total_size(), "reconnect: id out of range");
  disconnected_[id].store(false);
  inboxes_[id]->cv.notify_all();
}

void ThreadedNetwork::post(ProcessId id, std::function<void()> fn) {
  FASTBFT_ASSERT(id < total_size(), "post: id out of range");
  Inbox& inbox = *inboxes_[id];
  {
    std::lock_guard<std::mutex> lock(inbox.mutex);
    inbox.tasks.push_back(std::move(fn));
  }
  inbox.cv.notify_one();
}

TimePoint ThreadedNetwork::now_ticks() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch_)
      .count();
}

void ThreadedNetwork::send(ProcessId from, ProcessId to, SharedBytes payload) {
  FASTBFT_ASSERT(from < total_size() && to < total_size(),
                 "send: id out of range");
  if (stopping_.load()) return;
  if (disconnected_[from].load() || disconnected_[to].load()) return;
  TimePoint at = now_ticks();
  if (from != to) at += config_.link_delay.count();
  Inbox& inbox = *inboxes_[to];
  {
    std::lock_guard<std::mutex> lock(inbox.mutex);
    // Re-check under the inbox lock: disconnect() clears the queue under
    // this same lock, so without the re-check a send that passed the
    // unlocked test above could enqueue AFTER the clear and hand a
    // pre-crash envelope to a rejoined fresh incarnation.
    if (disconnected_[to].load()) return;
    auto key = std::make_pair(at, inbox.next_env_seq++);
    if (!inbox.spare_nodes.empty()) {
      // Recycle a retired queue node instead of allocating a fresh one.
      auto node = std::move(inbox.spare_nodes.back());
      inbox.spare_nodes.pop_back();
      node.key() = key;
      node.mapped() = Envelope{from, to, std::move(payload)};
      inbox.queue.insert(std::move(node));
      PayloadStats::record_envelope_reuse();
    } else {
      inbox.queue.emplace(key, Envelope{from, to, std::move(payload)});
      PayloadStats::record_envelope_alloc();
    }
  }
  inbox.cv.notify_one();
}

void ThreadedNetwork::assert_timer_owner(ProcessId id) const {
  // Before start() the setup thread owns everything (guard unbound);
  // after stop() the delivery threads are joined and stop() unbound the
  // guards; in between only the delivery thread itself may touch its
  // timers (TimerHandle carries no synchronization).
  inboxes_[id]->guard.check(
      "timers are same-thread only: arm/cancel on the owning delivery "
      "thread");
}

std::pair<TimePoint, std::uint64_t> ThreadedNetwork::arm_timer(
    ProcessId id, TimePoint at_ticks, std::function<void()> fn) {
  FASTBFT_ASSERT(id < total_size(), "arm_timer: id out of range");
  assert_timer_owner(id);
  Inbox& inbox = *inboxes_[id];
  auto key = std::make_pair(at_ticks, inbox.next_timer_seq++);
  inbox.timers.emplace(key, std::move(fn));
  return key;
}

void ThreadedNetwork::cancel_timer(ProcessId id,
                                   std::pair<TimePoint, std::uint64_t> key) {
  FASTBFT_ASSERT(id < total_size(), "cancel_timer: id out of range");
  assert_timer_owner(id);
  inboxes_[id]->timers.erase(key);
}

void ThreadedNetwork::run_worker(ProcessId id) {
  Inbox& inbox = *inboxes_[id];
  inbox.guard.bind();
  while (true) {
    std::function<void()> task_fn;
    std::function<void()> timer_fn;
    Envelope env;
    bool have_env = false;
    {
      std::unique_lock<std::mutex> lock(inbox.mutex);
      for (;;) {
        if (stopping_.load()) return;
        // Posted tasks outrank everything and run even while crashed:
        // they are harness control flow (e.g. a rejoin swapping in a
        // fresh process object), not network traffic.
        if (!inbox.tasks.empty()) {
          task_fn = std::move(inbox.tasks.front());
          inbox.tasks.pop_front();
          break;
        }
        if (disconnected_[id].load()) {
          // A crashed process goes silent: inbox and pending timers are
          // dropped, so even after a reconnect nothing of the crashed
          // incarnation ever fires. Park until shutdown, a rejoin task,
          // or a reconnect.
          inbox.queue.clear();
          inbox.timers.clear();
          inbox.cv.wait(lock, [&] {
            return stopping_.load() || !inbox.tasks.empty() ||
                   !disconnected_[id].load();
          });
          continue;
        }
        TimePoint now = now_ticks();
        // Due timers run before due messages: deadlines are promises to
        // the protocol layer, queue drain is best-effort anyway.
        if (!inbox.timers.empty() &&
            inbox.timers.begin()->first.first <= now) {
          timer_fn = std::move(inbox.timers.begin()->second);
          inbox.timers.erase(inbox.timers.begin());
          break;
        }
        if (!inbox.queue.empty() && inbox.queue.begin()->first.first <= now) {
          auto node = inbox.queue.extract(inbox.queue.begin());
          env = std::move(node.mapped());
          have_env = true;
          if (inbox.spare_nodes.size() < kSpareNodeCap) {
            // Pool the node for the next send; clear the moved-from
            // envelope so no payload reference lingers in the pool.
            node.mapped() = Envelope{};
            inbox.spare_nodes.push_back(std::move(node));
          }
          break;
        }
        TimePoint next = kTimeInfinity;
        if (!inbox.timers.empty()) {
          next = inbox.timers.begin()->first.first;
        }
        if (!inbox.queue.empty()) {
          next = std::min(next, inbox.queue.begin()->first.first);
        }
        if (next == kTimeInfinity) {
          inbox.cv.wait(lock);
        } else {
          inbox.cv.wait_until(lock,
                              epoch_ + std::chrono::microseconds(next));
        }
      }
    }
    if (task_fn) {
      task_fn();
    } else if (have_env) {
      delivered_.fetch_add(1);
      handlers_[id](env.from, env.payload);
    } else if (timer_fn) {
      timers_fired_.fetch_add(1);
      timer_fn();
    }
  }
}

}  // namespace fastbft::net
