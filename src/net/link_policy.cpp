#include "net/link_policy.hpp"

#include <algorithm>

namespace fastbft::net {

Backoff::Backoff(BackoffOptions opts, std::uint64_t seed)
    : opts_(opts), base_(opts.initial_us), rng_state_(seed ? seed : 1) {}

std::uint64_t Backoff::next_rand() {
  // xorshift64* — tiny, deterministic, good enough for retry jitter.
  std::uint64_t x = rng_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rng_state_ = x;
  return x * 0x2545F4914F6CDD1DULL;
}

Duration Backoff::next_delay() {
  const Duration base = base_;
  base_ = std::min<Duration>(
      opts_.max_us, static_cast<Duration>(static_cast<double>(base_) *
                                          opts_.multiplier));
  if (opts_.jitter <= 0.0) return base;
  const double span = static_cast<double>(base) * opts_.jitter;
  const double frac =
      static_cast<double>(next_rand() >> 11) / 9007199254740992.0;  // [0,1)
  return base + static_cast<Duration>(span * frac);
}

LinkPolicy::LinkPolicy(LinkPolicyOptions opts, std::uint64_t seed)
    : opts_(opts), backoff_(opts.backoff, seed) {}

TimePoint LinkPolicy::on_connect_failed(TimePoint now) {
  retry_at_ = now + backoff_.next_delay();
  return retry_at_;
}

void LinkPolicy::on_established(TimePoint now) {
  backoff_.reset();
  retry_at_ = 0;
  last_rx_ = now;
  last_tx_ = now;
}

TimePoint LinkPolicy::next_established_deadline() const {
  return std::min(last_tx_ + opts_.heartbeat_interval_us,
                  last_rx_ + opts_.heartbeat_timeout_us);
}

}  // namespace fastbft::net
