#include "net/stats.hpp"

#include <sstream>

#include "net/tags.hpp"

namespace fastbft::net {

void NetworkStats::record_send(const Bytes& payload) {
  std::uint8_t tag = payload.empty() ? 0xff : payload[0];
  TypeStats& ts = by_type_[tag];
  ts.count += 1;
  ts.bytes += payload.size();
  total_messages_ += 1;
  total_bytes_ += payload.size();
}

std::uint64_t NetworkStats::messages_of(std::uint8_t tag) const {
  auto it = by_type_.find(tag);
  return it == by_type_.end() ? 0 : it->second.count;
}

void NetworkStats::reset() {
  by_type_.clear();
  total_messages_ = 0;
  total_bytes_ = 0;
}

std::string NetworkStats::summary() const {
  std::ostringstream out;
  out << "total: " << total_messages_ << " msgs, " << total_bytes_ << " bytes\n";
  for (const auto& [tag, ts] : by_type_) {
    out << "  " << tag_name(tag) << ": " << ts.count << " msgs, " << ts.bytes
        << " bytes\n";
  }
  return out.str();
}

std::string tag_name(std::uint8_t tag) {
  switch (tag) {
    case tags::kPropose: return "PROPOSE";
    case tags::kAck: return "ACK";
    case tags::kAckSig: return "ACK_SIG";
    case tags::kCommit: return "COMMIT";
    case tags::kVote: return "VOTE";
    case tags::kCertReq: return "CERT_REQ";
    case tags::kCertAck: return "CERT_ACK";
    case tags::kWish: return "WISH";
    case tags::kPbftPrePrepare: return "PBFT_PRE_PREPARE";
    case tags::kPbftPrepare: return "PBFT_PREPARE";
    case tags::kPbftCommit: return "PBFT_COMMIT";
    case tags::kPbftViewChange: return "PBFT_VIEW_CHANGE";
    case tags::kPbftNewView: return "PBFT_NEW_VIEW";
    case tags::kFabPropose: return "FAB_PROPOSE";
    case tags::kFabAccept: return "FAB_ACCEPT";
    case tags::kFabRecoveryVote: return "FAB_RECOVERY_VOTE";
    case tags::kSmrRequest: return "SMR_REQUEST";
    case tags::kSmrWrapped: return "SMR_WRAPPED";
    default: {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "TAG_0x%02x", tag);
      return buf;
    }
  }
}

}  // namespace fastbft::net
