#include "net/stats.hpp"

#include <sstream>

#include "common/codec.hpp"
#include "net/tags.hpp"

namespace fastbft::net {

void NetworkStats::record_send(const Bytes& payload) {
  std::uint8_t tag = payload.empty() ? 0xff : payload[0];
  TypeStats& ts = by_type_[tag];
  ts.count += 1;
  ts.bytes += payload.size();
  total_messages_ += 1;
  total_bytes_ += payload.size();

  // SMR_WRAPPED carries the group id and slot index right after the tag
  // byte (the sender's applied watermark and the inner payload follow);
  // attribute the message to its slot.
  if (tag == tags::kSmrWrapped && payload.size() >= 13) {
    Decoder dec(payload);
    dec.u8();
    dec.u32();  // group
    Slot slot = dec.u64();
    if (dec.ok()) {
      TypeStats& ss = by_slot_[slot];
      ss.count += 1;
      ss.bytes += payload.size();
    }
  }
}

std::uint64_t NetworkStats::messages_for_slot(Slot slot) const {
  auto it = by_slot_.find(slot);
  return it == by_slot_.end() ? 0 : it->second.count;
}

void NetworkStats::note_inflight_slots(ProcessId node,
                                       std::uint32_t inflight) {
  inflight_by_node_[node] = inflight;
  if (inflight > max_inflight_slots_) max_inflight_slots_ = inflight;
}

std::uint32_t NetworkStats::inflight_slots(ProcessId node) const {
  auto it = inflight_by_node_.find(node);
  return it == inflight_by_node_.end() ? 0 : it->second;
}

std::uint64_t NetworkStats::messages_of(std::uint8_t tag) const {
  auto it = by_type_.find(tag);
  return it == by_type_.end() ? 0 : it->second.count;
}

void NetworkStats::reset() {
  by_type_.clear();
  by_slot_.clear();
  total_messages_ = 0;
  total_bytes_ = 0;
  inflight_by_node_.clear();
  max_inflight_slots_ = 0;
}

std::string NetworkStats::summary() const {
  std::ostringstream out;
  out << "total: " << total_messages_ << " msgs, " << total_bytes_ << " bytes\n";
  for (const auto& [tag, ts] : by_type_) {
    out << "  " << tag_name(tag) << ": " << ts.count << " msgs, " << ts.bytes
        << " bytes\n";
  }
  if (!by_slot_.empty()) {
    out << "  SMR slots touched: " << by_slot_.size()
        << ", max in flight per node: " << max_inflight_slots_ << "\n";
  }
  return out.str();
}

std::string tag_name(std::uint8_t tag) {
  switch (tag) {
    case tags::kPropose: return "PROPOSE";
    case tags::kAck: return "ACK";
    case tags::kAckSig: return "ACK_SIG";
    case tags::kCommit: return "COMMIT";
    case tags::kVote: return "VOTE";
    case tags::kCertReq: return "CERT_REQ";
    case tags::kCertAck: return "CERT_ACK";
    case tags::kWish: return "WISH";
    case tags::kPbftPrePrepare: return "PBFT_PRE_PREPARE";
    case tags::kPbftPrepare: return "PBFT_PREPARE";
    case tags::kPbftCommit: return "PBFT_COMMIT";
    case tags::kPbftViewChange: return "PBFT_VIEW_CHANGE";
    case tags::kPbftNewView: return "PBFT_NEW_VIEW";
    case tags::kFabPropose: return "FAB_PROPOSE";
    case tags::kFabAccept: return "FAB_ACCEPT";
    case tags::kFabRecoveryVote: return "FAB_RECOVERY_VOTE";
    case tags::kSmrRequest: return "SMR_REQUEST";
    case tags::kSmrWrapped: return "SMR_WRAPPED";
    case tags::kSmrDecided: return "SMR_DECIDED";
    case tags::kSmrSnapRequest: return "SNAPSHOT_REQUEST";
    case tags::kSmrSnapResponse: return "SNAPSHOT_RESPONSE";
    case tags::kSmrReply: return "SMR_REPLY";
    default: {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "TAG_0x%02x", tag);
      return buf;
    }
  }
}

SocketCounters& SocketCounters::merge(const SocketCounters& o) {
  connects_attempted += o.connects_attempted;
  connects_established += o.connects_established;
  reconnects += o.reconnects;
  handshake_rejects += o.handshake_rejects;
  peer_downs += o.peer_downs;
  frames_in += o.frames_in;
  frames_out += o.frames_out;
  heartbeats_in += o.heartbeats_in;
  heartbeats_out += o.heartbeats_out;
  bytes_in += o.bytes_in;
  bytes_out += o.bytes_out;
  writev_calls += o.writev_calls;
  writev_frames += o.writev_frames;
  frames_dropped += o.frames_dropped;
  decode_errors += o.decode_errors;
  delivery_allocs += o.delivery_allocs;
  delivery_reuses += o.delivery_reuses;
  if (o.send_queue_high_water > send_queue_high_water)
    send_queue_high_water = o.send_queue_high_water;
  return *this;
}

std::string SocketCounters::summary(const std::string& indent) const {
  std::ostringstream out;
  out << indent << "frames in/out: " << frames_in << "/" << frames_out
      << " (" << bytes_in << "/" << bytes_out << " bytes)\n";
  out << indent << "heartbeats in/out: " << heartbeats_in << "/"
      << heartbeats_out << "\n";
  out << indent << "writev: " << writev_calls << " calls, " << writev_frames
      << " frames";
  if (writev_calls > 0) {
    out << " (" << (static_cast<double>(writev_frames) /
                    static_cast<double>(writev_calls))
        << " frames/call)";
  }
  out << "\n";
  out << indent << "connects: " << connects_attempted << " attempted, "
      << connects_established << " established, " << reconnects
      << " reconnects\n";
  out << indent << "faults: " << peer_downs << " peer-downs, "
      << handshake_rejects << " handshake rejects, " << decode_errors
      << " decode errors, " << frames_dropped << " dropped\n";
  out << indent << "delivery buffer: " << delivery_allocs << " allocs, "
      << delivery_reuses << " reuses\n";
  out << indent << "send queue high-water: " << send_queue_high_water
      << " frames\n";
  return out.str();
}

SocketCounters SocketStats::snapshot() const {
  SocketCounters c;
  const auto get = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  c.connects_attempted = get(connects_attempted);
  c.connects_established = get(connects_established);
  c.reconnects = get(reconnects);
  c.handshake_rejects = get(handshake_rejects);
  c.peer_downs = get(peer_downs);
  c.frames_in = get(frames_in);
  c.frames_out = get(frames_out);
  c.heartbeats_in = get(heartbeats_in);
  c.heartbeats_out = get(heartbeats_out);
  c.bytes_in = get(bytes_in);
  c.bytes_out = get(bytes_out);
  c.writev_calls = get(writev_calls);
  c.writev_frames = get(writev_frames);
  c.frames_dropped = get(frames_dropped);
  c.decode_errors = get(decode_errors);
  c.delivery_allocs = get(delivery_allocs);
  c.delivery_reuses = get(delivery_reuses);
  c.send_queue_high_water = get(send_queue_high_water);
  return c;
}

}  // namespace fastbft::net
