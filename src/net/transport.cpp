#include "net/transport.hpp"

namespace fastbft::net {

void Transport::broadcast(SharedBytes payload) {
  for (ProcessId p = 0; p < cluster_size(); ++p) {
    send(p, payload);
  }
}

void Transport::broadcast_others(SharedBytes payload) {
  for (ProcessId p = 0; p < cluster_size(); ++p) {
    if (p != self()) send(p, payload);
  }
}

}  // namespace fastbft::net
