#include "net/transport.hpp"

#include "common/assert.hpp"

namespace fastbft::net {

// The zero-copy contract (PR 4): by the time broadcast runs, the payload
// is already materialized as ONE shared buffer, and fanning it out to n
// recipients must not materialize again — each send hands out a refcount
// bump. The per-thread materialization counter makes that a checked
// invariant: sends within the loop alias `payload` or copy nothing, so
// the calling thread's alloc count cannot move. (The process-global
// counter would race with other threads' traffic; the thread-local one
// cannot.)

void Transport::broadcast(SharedBytes payload) {
  [[maybe_unused]] const std::uint64_t allocs_before =
      PayloadStats::thread_allocs();
  for (ProcessId p = 0; p < cluster_size(); ++p) {
    send(p, payload);
  }
  FASTBFT_DASSERT(PayloadStats::thread_allocs() == allocs_before,
                  "broadcast re-materialized a shared payload");
}

void Transport::broadcast_others(SharedBytes payload) {
  [[maybe_unused]] const std::uint64_t allocs_before =
      PayloadStats::thread_allocs();
  for (ProcessId p = 0; p < cluster_size(); ++p) {
    if (p != self()) send(p, payload);
  }
  FASTBFT_DASSERT(PayloadStats::thread_allocs() == allocs_before,
                  "broadcast re-materialized a shared payload");
}

}  // namespace fastbft::net
