#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "consensus/replica.hpp"  // DecisionRecord, SignatureEntry, LeaderFn
#include "net/transport.hpp"
#include "runtime/cluster.hpp"

/// \file fab.hpp
/// FaB Paxos baseline (Martin & Alvisi, "Fast Byzantine Consensus", 2006),
/// parameterized: n >= 3f + 2t + 1 processes, tolerates f Byzantine
/// failures, decides in two message delays while the actual number of
/// faults is <= t. This is the protocol whose 3f + 2t + 1 resilience the
/// paper shows to be suboptimal (by two processes) when proposer and
/// acceptor roles are merged — experiments E2, E4 and E8 compare against it.
///
/// Structure implemented (merged proposer/acceptor roles, like the paper's
/// discussion in Section 4.4 assumes for the comparison):
///  * fast path: leader proposes, acceptors broadcast ACCEPT, decide on
///    ceil((n + 3f + 1)/2) accepts (= n - t at the minimal n);
///  * recovery: the new leader collects n - f signed reports of the last
///    accepted (value, view); a value with >= ceil((n+3f+1)/2) - 2f reports
///    at the highest reported view is forced (the "vouched for" rule),
///    otherwise the leader is free. The justification (the report set) is
///    shipped inside the proposal and re-verified by every acceptor —
///    FaB's progress certificates, which are O(n) per proposal (the
///    certificate-size contrast measured in E4 is against the *naive
///    recursive* variant discussed in Section 3.2 of the paper, not FaB).
///
/// Simplifications: single-shot (no state machine), no proof-of-misbehavior
/// optimizations; commit/recovery corner cases follow the same
/// highest-view-report discipline as the main library.

namespace fastbft::fab {

using consensus::SignatureEntry;

struct FabConfig {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  std::uint32_t t = 0;

  static FabConfig create(std::uint32_t n, std::uint32_t f, std::uint32_t t);
  static std::uint32_t min_processes(std::uint32_t f, std::uint32_t t) {
    return 3 * f + 2 * t + 1;
  }

  /// ceil((n + 3f + 1) / 2); equals n - t at the minimal n.
  std::uint32_t fast_quorum() const { return (n + 3 * f + 2) / 2; }
  std::uint32_t vote_quorum() const { return n - f; }
  /// Reports at the highest view that force a value during recovery.
  std::uint32_t forced_threshold() const { return fast_quorum() - 2 * f; }
};

/// A process's last accepted proposal, with the proposing leader's
/// signature (so reports cannot invent values).
struct AcceptedEntry {
  Value x;
  View u = kNoView;
  crypto::Signature tau;

  void encode(Encoder& enc) const;
  static std::optional<AcceptedEntry> decode(Decoder& dec);
  friend bool operator==(const AcceptedEntry&, const AcceptedEntry&) = default;
};

/// Signed recovery report ("REP" in the FaB paper).
struct FabVoteRecord {
  ProcessId voter = kNoProcess;
  std::optional<AcceptedEntry> accepted;
  crypto::Signature phi;

  void encode(Encoder& enc) const;
  static std::optional<FabVoteRecord> decode(Decoder& dec);
  friend bool operator==(const FabVoteRecord&, const FabVoteRecord&) = default;
};

struct FabProposeMsg {
  View v = kNoView;
  Value x;
  crypto::Signature tau;
  std::vector<FabVoteRecord> justification;  // empty in view 1

  Bytes serialize() const;
  static std::optional<FabProposeMsg> decode(Decoder& dec);
};

struct FabAcceptMsg {
  View v = kNoView;
  Value x;

  Bytes serialize() const;
  static std::optional<FabAcceptMsg> decode(Decoder& dec);
};

struct FabRecoveryVoteMsg {
  View v = kNoView;
  FabVoteRecord record;

  Bytes serialize() const;
  static std::optional<FabRecoveryVoteMsg> decode(Decoder& dec);
};

Bytes fab_propose_preimage(const Value& x, View v);
Bytes fab_vote_preimage(const std::optional<AcceptedEntry>& accepted, View v);

/// Recovery selection: the forced value at the highest reported view, if
/// any report count reaches forced_threshold(); nullopt = leader free.
std::optional<Value> fab_select(const FabConfig& cfg,
                                const std::vector<FabVoteRecord>& records);

class FabReplica {
 public:
  using DecideCallback = std::function<void(const consensus::DecisionRecord&)>;

  FabReplica(FabConfig cfg, ProcessId id, Value input,
             net::Transport& transport, crypto::Signer signer,
             crypto::Verifier verifier, consensus::LeaderFn leader_of,
             DecideCallback on_decide);

  void start();
  void on_message(ProcessId from, const Bytes& payload);
  void enter_view(View v);

  View view() const { return view_; }
  const std::optional<consensus::DecisionRecord>& decision() const {
    return decision_;
  }

 private:
  using ValueKey = std::pair<View, Bytes>;

  void handle_propose(ProcessId from, const FabProposeMsg& msg);
  void handle_accept(ProcessId from, const FabAcceptMsg& msg);
  void handle_recovery_vote(ProcessId from, const FabRecoveryVoteMsg& msg);
  bool validate_record(const FabVoteRecord& record, View v) const;
  void try_propose();
  bool buffer_if_future(ProcessId from, const Bytes& payload, View v);
  void replay_buffered();

  FabConfig cfg_;
  ProcessId id_;
  Value input_;
  net::Transport& transport_;
  crypto::Signer signer_;
  crypto::Verifier verifier_;
  consensus::LeaderFn leader_of_;
  DecideCallback on_decide_;

  View view_ = 1;
  std::set<View> accepted_in_;
  std::optional<AcceptedEntry> accepted_;
  std::optional<consensus::DecisionRecord> decision_;
  std::map<ValueKey, std::set<ProcessId>> accepts_;

  struct LeaderState {
    std::map<ProcessId, FabVoteRecord> records;
    bool proposed = false;
  };
  std::optional<LeaderState> leader_state_;
  std::map<View, std::vector<std::pair<ProcessId, Bytes>>> future_buffer_;
};

/// Cluster integration. ctx.cfg supplies (n, f, t); asserts
/// n >= 3f + 2t + 1 (FaB's own bound; note runtime::Cluster's QuorumConfig
/// check of 3f+2t-1 is implied).
runtime::NodeFactory node_factory();

}  // namespace fastbft::fab
