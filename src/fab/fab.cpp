#include "fab/fab.hpp"

#include "common/assert.hpp"
#include "net/tags.hpp"
#include "viewsync/synchronizer.hpp"

namespace fastbft::fab {

namespace {
constexpr const char* kDomFabPropose = "fab-propose";
constexpr const char* kDomFabVote = "fab-vote";
}  // namespace

FabConfig FabConfig::create(std::uint32_t n, std::uint32_t f, std::uint32_t t) {
  FASTBFT_ASSERT(f >= 1 && t >= 1 && t <= f && n >= min_processes(f, t),
                 "FaB Paxos requires n >= 3f + 2t + 1");
  return FabConfig{n, f, t};
}

// --- Codecs -------------------------------------------------------------------

void AcceptedEntry::encode(Encoder& enc) const {
  x.encode(enc);
  enc.u64(u);
  tau.encode(enc);
}

std::optional<AcceptedEntry> AcceptedEntry::decode(Decoder& dec) {
  AcceptedEntry e;
  auto x = Value::decode(dec);
  if (!x) return std::nullopt;
  e.x = std::move(*x);
  e.u = dec.u64();
  auto tau = crypto::Signature::decode(dec);
  if (!tau) return std::nullopt;
  e.tau = std::move(*tau);
  return e;
}

void FabVoteRecord::encode(Encoder& enc) const {
  enc.u32(voter);
  enc.boolean(accepted.has_value());
  if (accepted) accepted->encode(enc);
  phi.encode(enc);
}

std::optional<FabVoteRecord> FabVoteRecord::decode(Decoder& dec) {
  FabVoteRecord r;
  r.voter = dec.u32();
  bool has = dec.boolean();
  if (!dec.ok()) return std::nullopt;
  if (has) {
    auto e = AcceptedEntry::decode(dec);
    if (!e) return std::nullopt;
    r.accepted = std::move(*e);
  }
  auto phi = crypto::Signature::decode(dec);
  if (!phi) return std::nullopt;
  r.phi = std::move(*phi);
  return r;
}

Bytes FabProposeMsg::serialize() const {
  Encoder enc;
  enc.u8(net::tags::kFabPropose);
  enc.u64(v);
  x.encode(enc);
  tau.encode(enc);
  enc.u32(static_cast<std::uint32_t>(justification.size()));
  for (const auto& r : justification) r.encode(enc);
  return std::move(enc).take();
}

std::optional<FabProposeMsg> FabProposeMsg::decode(Decoder& dec) {
  FabProposeMsg m;
  m.v = dec.u64();
  auto x = Value::decode(dec);
  if (!x) return std::nullopt;
  m.x = std::move(*x);
  auto tau = crypto::Signature::decode(dec);
  if (!tau) return std::nullopt;
  m.tau = std::move(*tau);
  std::uint32_t count = dec.u32();
  if (!dec.ok() || count > 4096) return std::nullopt;
  for (std::uint32_t i = 0; i < count; ++i) {
    auto r = FabVoteRecord::decode(dec);
    if (!r) return std::nullopt;
    m.justification.push_back(std::move(*r));
  }
  return m;
}

Bytes FabAcceptMsg::serialize() const {
  Encoder enc;
  enc.u8(net::tags::kFabAccept);
  enc.u64(v);
  x.encode(enc);
  return std::move(enc).take();
}

std::optional<FabAcceptMsg> FabAcceptMsg::decode(Decoder& dec) {
  FabAcceptMsg m;
  m.v = dec.u64();
  auto x = Value::decode(dec);
  if (!x) return std::nullopt;
  m.x = std::move(*x);
  return m;
}

Bytes FabRecoveryVoteMsg::serialize() const {
  Encoder enc;
  enc.u8(net::tags::kFabRecoveryVote);
  enc.u64(v);
  record.encode(enc);
  return std::move(enc).take();
}

std::optional<FabRecoveryVoteMsg> FabRecoveryVoteMsg::decode(Decoder& dec) {
  FabRecoveryVoteMsg m;
  m.v = dec.u64();
  auto r = FabVoteRecord::decode(dec);
  if (!r) return std::nullopt;
  m.record = std::move(*r);
  return m;
}

// --- Preimages & selection -------------------------------------------------------

Bytes fab_propose_preimage(const Value& x, View v) {
  Encoder enc;
  x.encode(enc);
  enc.u64(v);
  return std::move(enc).take();
}

Bytes fab_vote_preimage(const std::optional<AcceptedEntry>& accepted, View v) {
  Encoder enc;
  enc.boolean(accepted.has_value());
  if (accepted) accepted->encode(enc);
  enc.u64(v);
  return std::move(enc).take();
}

std::optional<Value> fab_select(const FabConfig& cfg,
                                const std::vector<FabVoteRecord>& records) {
  View w = kNoView;
  for (const auto& r : records) {
    if (r.accepted) w = std::max(w, r.accepted->u);
  }
  if (w == kNoView) return std::nullopt;
  std::map<Value, std::uint32_t> counts;
  for (const auto& r : records) {
    if (r.accepted && r.accepted->u == w) counts[r.accepted->x] += 1;
  }
  for (const auto& [value, count] : counts) {
    if (count >= cfg.forced_threshold()) return value;
  }
  return std::nullopt;
}

// --- Replica ----------------------------------------------------------------------

FabReplica::FabReplica(FabConfig cfg, ProcessId id, Value input,
                       net::Transport& transport, crypto::Signer signer,
                       crypto::Verifier verifier, consensus::LeaderFn leader_of,
                       DecideCallback on_decide)
    : cfg_(cfg),
      id_(id),
      input_(std::move(input)),
      transport_(transport),
      signer_(std::move(signer)),
      verifier_(std::move(verifier)),
      leader_of_(std::move(leader_of)),
      on_decide_(std::move(on_decide)) {}

void FabReplica::start() {
  if (leader_of_(1) == id_) {
    FabProposeMsg msg;
    msg.v = 1;
    msg.x = input_;
    msg.tau = signer_.sign(kDomFabPropose, fab_propose_preimage(input_, 1));
    transport_.broadcast(msg.serialize());
  }
}

void FabReplica::on_message(ProcessId from, const Bytes& payload) {
  if (payload.empty()) return;
  std::uint8_t tag = payload[0];
  Decoder dec(payload);
  dec.u8();
  switch (tag) {
    case net::tags::kFabPropose: {
      auto m = FabProposeMsg::decode(dec);
      if (!m || !dec.ok() || !dec.at_end()) return;
      if (buffer_if_future(from, payload, m->v)) return;
      handle_propose(from, *m);
      return;
    }
    case net::tags::kFabAccept: {
      auto m = FabAcceptMsg::decode(dec);
      if (!m || !dec.ok() || !dec.at_end()) return;
      handle_accept(from, *m);
      return;
    }
    case net::tags::kFabRecoveryVote: {
      auto m = FabRecoveryVoteMsg::decode(dec);
      if (!m || !dec.ok() || !dec.at_end()) return;
      if (buffer_if_future(from, payload, m->v)) return;
      handle_recovery_vote(from, *m);
      return;
    }
    default:
      return;
  }
}

bool FabReplica::buffer_if_future(ProcessId from, const Bytes& payload,
                                  View v) {
  if (v <= view_) return false;
  if (future_buffer_.size() > 10'000) return true;
  future_buffer_[v].emplace_back(from, payload);
  return true;
}

void FabReplica::replay_buffered() {
  while (!future_buffer_.empty() && future_buffer_.begin()->first < view_) {
    future_buffer_.erase(future_buffer_.begin());
  }
  auto it = future_buffer_.find(view_);
  if (it == future_buffer_.end()) return;
  auto pending = std::move(it->second);
  future_buffer_.erase(it);
  for (auto& [from, payload] : pending) on_message(from, payload);
}

void FabReplica::handle_propose(ProcessId from, const FabProposeMsg& msg) {
  if (msg.v != view_) return;
  if (from != leader_of_(msg.v)) return;
  if (accepted_in_.contains(msg.v)) return;
  if (msg.x.empty()) return;
  if (!verifier_.verify(from, kDomFabPropose,
                        fab_propose_preimage(msg.x, msg.v), msg.tau)) {
    return;
  }
  if (msg.v > 1) {
    std::set<ProcessId> voters;
    for (const auto& r : msg.justification) {
      if (!voters.insert(r.voter).second) return;
      if (!validate_record(r, msg.v)) return;
    }
    if (voters.size() < cfg_.vote_quorum()) return;
    auto forced = fab_select(cfg_, msg.justification);
    if (forced.has_value() && !(*forced == msg.x)) return;
  } else if (!msg.justification.empty()) {
    return;
  }

  accepted_in_.insert(msg.v);
  accepted_ = AcceptedEntry{msg.x, msg.v, msg.tau};

  FabAcceptMsg accept;
  accept.v = msg.v;
  accept.x = msg.x;
  transport_.broadcast(accept.serialize());
}

void FabReplica::handle_accept(ProcessId from, const FabAcceptMsg& msg) {
  if (msg.x.empty() || msg.v == kNoView) return;
  ValueKey key{msg.v, msg.x.bytes()};
  auto& senders = accepts_[key];
  senders.insert(from);
  if (senders.size() >= cfg_.fast_quorum() && !decision_) {
    decision_ = consensus::DecisionRecord{msg.x, msg.v, false};
    if (on_decide_) on_decide_(*decision_);
  }
}

bool FabReplica::validate_record(const FabVoteRecord& record, View v) const {
  if (record.voter >= cfg_.n) return false;
  if (!verifier_.verify(record.voter, kDomFabVote,
                        fab_vote_preimage(record.accepted, v), record.phi)) {
    return false;
  }
  if (record.accepted) {
    if (record.accepted->u < 1 || record.accepted->u >= v) return false;
    if (record.accepted->x.empty()) return false;
    if (!verifier_.verify(leader_of_(record.accepted->u), kDomFabPropose,
                          fab_propose_preimage(record.accepted->x,
                                               record.accepted->u),
                          record.accepted->tau)) {
      return false;
    }
  }
  return true;
}

void FabReplica::enter_view(View v) {
  if (v <= view_) return;
  view_ = v;
  leader_state_.reset();
  ProcessId leader = leader_of_(v);
  if (leader == id_) leader_state_.emplace();

  FabRecoveryVoteMsg m;
  m.v = v;
  m.record.voter = id_;
  m.record.accepted = accepted_;
  m.record.phi = signer_.sign(kDomFabVote, fab_vote_preimage(accepted_, v));
  transport_.send(leader, m.serialize());
  replay_buffered();
}

void FabReplica::handle_recovery_vote(ProcessId from,
                                      const FabRecoveryVoteMsg& msg) {
  if (msg.v != view_ || !leader_state_ || leader_state_->proposed) return;
  if (msg.record.voter != from) return;
  if (!validate_record(msg.record, msg.v)) return;
  leader_state_->records.emplace(from, msg.record);
  try_propose();
}

void FabReplica::try_propose() {
  LeaderState& st = *leader_state_;
  if (st.proposed || st.records.size() < cfg_.vote_quorum()) return;
  st.proposed = true;
  std::vector<FabVoteRecord> records;
  for (const auto& [voter, r] : st.records) records.push_back(r);
  Value x = fab_select(cfg_, records).value_or(input_);

  FabProposeMsg msg;
  msg.v = view_;
  msg.x = x;
  msg.tau = signer_.sign(kDomFabPropose, fab_propose_preimage(x, view_));
  msg.justification = std::move(records);
  transport_.broadcast(msg.serialize());
}

// --- Cluster integration -------------------------------------------------------------

namespace {

class FabNode final : public runtime::IProcess {
 public:
  FabNode(const runtime::ProcessContext& ctx,
          const runtime::NodeOptions& options,
          runtime::Node::DecideCallback on_decide)
      : endpoint_(ctx.network->endpoint(ctx.id)),
        replica_(
            FabConfig::create(ctx.cfg.n, ctx.cfg.f, ctx.cfg.t), ctx.id,
            ctx.input, *endpoint_, crypto::Signer(ctx.keys, ctx.id),
            crypto::Verifier(ctx.keys), ctx.leader_of,
            [this, id = ctx.id, cb = std::move(on_decide)](
                const consensus::DecisionRecord& record) {
              sync_.stop();
              if (cb) cb(id, record);
            }),
        sync_(sync_config(options, ctx.cfg.f), ctx.id, *endpoint_,
              *ctx.scheduler, [this](View v) { replica_.enter_view(v); }) {}

  void start() override {
    sync_.start();
    replica_.start();
  }

  void on_message(ProcessId from, const Bytes& payload) override {
    if (!payload.empty() && payload[0] == net::tags::kWish) {
      sync_.on_message(from, payload);
      return;
    }
    replica_.on_message(from, payload);
  }

 private:
  static viewsync::SynchronizerConfig sync_config(
      const runtime::NodeOptions& options, std::uint32_t f) {
    viewsync::SynchronizerConfig cfg = options.sync;
    cfg.f = f;
    return cfg;
  }

  std::unique_ptr<net::SimEndpoint> endpoint_;
  FabReplica replica_;
  viewsync::Synchronizer sync_;
};

}  // namespace

runtime::NodeFactory node_factory() {
  return [](const runtime::ProcessContext& ctx,
            const runtime::NodeOptions& options,
            runtime::Node::DecideCallback on_decide) {
    return std::make_unique<FabNode>(ctx, options, std::move(on_decide));
  };
}

}  // namespace fastbft::fab
