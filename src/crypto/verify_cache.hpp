#pragma once

#include <cstdint>
#include <cstring>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "crypto/sha256.hpp"

/// \file verify_cache.hpp
/// Bounded LRU memo for signature verification verdicts.
///
/// Certificate-heavy paths re-verify the same signatures over and over: a
/// commit certificate embeds the very ack signatures the replica already
/// verified one by one, the same vote records appear in every CertReq a
/// view-change leader assembles, and pipelined slots replay identical votes
/// across certificates. Each such check is an HMAC; memoizing the verdict
/// reduces the repeat cost to one hash-table probe — the key is a plain
/// struct, no hashing of the message is needed because the signature scheme
/// is hash-then-MAC and the caller already holds the message digest.
///
/// Key-change safety: every key embeds the KeyStore fingerprint (a digest
/// of the full key material), so a verdict cached against one set of keys
/// is unreachable under any other — rotated keys mean new fingerprints,
/// and stale entries simply age out of the LRU. Both positive and negative
/// verdicts are cached (both are deterministic functions of the key).
///
/// NOT thread-safe: intended as one instance per node, used only from that
/// node's event/delivery thread (the same discipline as the rest of the
/// engine state).

namespace fastbft::crypto {

/// Identity of one verification: (key material, signer, domain, message
/// digest, signature). The domain is stored verbatim in a fixed inline
/// array — protocol domain strings are short compile-time constants
/// (asserted ≤ kMaxDomain), so no two distinct domains can ever alias a
/// cache slot and no std::string is allocated per entry.
struct VerifyKey {
  static constexpr std::size_t kMaxDomain = 16;

  std::uint64_t keystore_fp = 0;
  std::array<char, kMaxDomain> domain{};
  std::uint8_t domain_len = 0;
  ProcessId signer = kNoProcess;
  Digest message_digest{};
  std::array<std::uint8_t, kDigestSize> sig{};

  static VerifyKey make(std::uint64_t keystore_fp, ProcessId signer,
                        const std::string& domain, const Digest& digest,
                        const Bytes& sig_bytes) {
    VerifyKey k;
    k.keystore_fp = keystore_fp;
    // Memoized domains must fit inline; all protocol domains do. An
    // oversized domain would silently weaken domain separation, so it is
    // a hard error rather than a truncation.
    FASTBFT_ASSERT(domain.size() <= kMaxDomain,
                   "memoized verification domain too long for VerifyKey");
    std::memcpy(k.domain.data(), domain.data(), domain.size());
    k.domain_len = static_cast<std::uint8_t>(domain.size());
    k.signer = signer;
    k.message_digest = digest;
    std::memcpy(k.sig.data(), sig_bytes.data(),
                sig_bytes.size() < kDigestSize ? sig_bytes.size()
                                               : kDigestSize);
    return k;
  }

  friend bool operator==(const VerifyKey&, const VerifyKey&) = default;
};

class VerificationCache {
 public:
  explicit VerificationCache(std::size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// The memoized verdict for `key`, refreshing its LRU position; nullopt
  /// on miss.
  std::optional<bool> lookup(const VerifyKey& key);

  /// Memoizes `verdict`, evicting the least-recently-used entry at
  /// capacity. Inserting an existing key refreshes it.
  void insert(const VerifyKey& key, bool verdict);

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const VerifyKey& k) const {
      // The digest and signature are already uniform; mix their prefixes
      // with the scalar fields. No cryptographic hashing on the probe path.
      std::uint64_t d, s, dom;
      std::memcpy(&d, k.message_digest.data(), sizeof(d));
      std::memcpy(&s, k.sig.data(), sizeof(s));
      std::memcpy(&dom, k.domain.data(), sizeof(dom));
      std::uint64_t h = d ^ (s * 0x9e3779b97f4a7c15ULL) ^ k.keystore_fp ^
                        (dom + k.domain_len + k.signer);
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };

  using LruList = std::list<std::pair<VerifyKey, bool>>;

  std::size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<VerifyKey, LruList::iterator, KeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace fastbft::crypto
