#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

/// \file sha256.hpp
/// From-scratch SHA-256 (FIPS 180-4). Implemented locally because the build
/// environment is offline and the library must not depend on a system
/// OpenSSL. Verified against the NIST test vectors in tests/test_crypto.cpp.

namespace fastbft::crypto {

inline constexpr std::size_t kDigestSize = 32;
using Digest = std::array<std::uint8_t, kDigestSize>;

/// Incremental hasher; the usual init/update/final interface. The
/// streaming API is the zero-copy substrate: preimages are fed piecewise
/// (domain, lengths, message) instead of being concatenated into
/// temporaries first.
class Sha256 {
 public:
  Sha256();

  void update(const std::uint8_t* data, std::size_t len);
  void update(ByteView data) { update(data.data(), data.size()); }

  /// Little-endian u32, framed exactly like Encoder::u32 — lets streaming
  /// preimage hashing reproduce the canonical length-prefixed encoding.
  void update_u32(std::uint32_t v);

  /// Finalizes and returns the digest. The object must not be reused
  /// afterwards without `reset()`.
  Digest finalize();

  void reset();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t bit_len_ = 0;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
};

/// One-shot convenience.
Digest sha256(ByteView data);

/// Digest as a Bytes buffer (handy for codec embedding).
Bytes sha256_bytes(ByteView data);

}  // namespace fastbft::crypto
