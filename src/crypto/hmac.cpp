#include "crypto/hmac.hpp"

#include "common/codec.hpp"

namespace fastbft::crypto {

Digest hmac_sha256(const Bytes& key, const Bytes& message) {
  constexpr std::size_t kBlockSize = 64;

  Bytes k = key;
  if (k.size() > kBlockSize) {
    k = sha256_bytes(k);
  }
  k.resize(kBlockSize, 0);

  Bytes ipad(kBlockSize), opad(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finalize();
}

Bytes derive_key(const Bytes& key, const std::string& label,
                 std::uint64_t index) {
  Encoder enc;
  enc.str(label);
  enc.u64(index);
  Digest d = hmac_sha256(key, std::move(enc).take());
  return Bytes(d.begin(), d.end());
}

}  // namespace fastbft::crypto
