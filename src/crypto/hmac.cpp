#include "crypto/hmac.hpp"

#include "common/codec.hpp"

namespace fastbft::crypto {

HmacSha256::HmacSha256(ByteView key) {
  // Keys longer than one block are hashed down first (RFC 2104).
  std::array<std::uint8_t, kBlockSize> block{};
  if (key.size() > kBlockSize) {
    Digest hashed = sha256(key);
    std::copy(hashed.begin(), hashed.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }

  std::array<std::uint8_t, kBlockSize> ipad;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad_[i] = block[i] ^ 0x5c;
  }
  inner_.update(ipad.data(), ipad.size());
}

Digest HmacSha256::finalize() {
  Digest inner_digest = inner_.finalize();
  Sha256 outer;
  outer.update(opad_.data(), opad_.size());
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finalize();
}

Digest hmac_sha256(ByteView key, ByteView message) {
  HmacSha256 mac(key);
  mac.update(message);
  return mac.finalize();
}

Bytes derive_key(const Bytes& key, const std::string& label,
                 std::uint64_t index) {
  Encoder enc;
  enc.str(label);
  enc.u64(index);
  Digest d = hmac_sha256(key, enc.view());
  return Bytes(d.begin(), d.end());
}

}  // namespace fastbft::crypto
