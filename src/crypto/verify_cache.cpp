#include "crypto/verify_cache.hpp"

namespace fastbft::crypto {

std::optional<bool> VerificationCache::lookup(const VerifyKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void VerificationCache::insert(const VerifyKey& key, bool verdict) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = verdict;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front(key, verdict);
  map_.emplace(key, lru_.begin());
}

void VerificationCache::clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace fastbft::crypto
