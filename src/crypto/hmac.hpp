#pragma once

#include "crypto/sha256.hpp"

/// \file hmac.hpp
/// HMAC-SHA-256 (RFC 2104). Used both as the MAC underlying the simulation
/// signature scheme and as a keyed PRF for key derivation.

namespace fastbft::crypto {

/// Computes HMAC-SHA-256(key, message).
Digest hmac_sha256(const Bytes& key, const Bytes& message);

/// Derives a subkey: HMAC(key, label || u64(index)). Deterministic, so the
/// whole cluster key material is reproducible from one master seed.
Bytes derive_key(const Bytes& key, const std::string& label,
                 std::uint64_t index);

}  // namespace fastbft::crypto
