#pragma once

#include "crypto/sha256.hpp"

/// \file hmac.hpp
/// HMAC-SHA-256 (RFC 2104). Used both as the MAC underlying the simulation
/// signature scheme and as a keyed PRF for key derivation.

namespace fastbft::crypto {

/// Streaming HMAC-SHA-256: the message is fed incrementally, so callers can
/// MAC a multi-part preimage (domain tag, length prefixes, payload) without
/// concatenating it into a temporary buffer first. One instance is
/// single-use: construct, update*, finalize.
class HmacSha256 {
 public:
  explicit HmacSha256(ByteView key);

  void update(const std::uint8_t* data, std::size_t len) {
    inner_.update(data, len);
  }
  void update(ByteView data) { inner_.update(data); }
  void update_u32(std::uint32_t v) { inner_.update_u32(v); }

  Digest finalize();

 private:
  static constexpr std::size_t kBlockSize = 64;

  Sha256 inner_;
  std::array<std::uint8_t, kBlockSize> opad_;
};

/// Computes HMAC-SHA-256(key, message).
Digest hmac_sha256(ByteView key, ByteView message);

/// Derives a subkey: HMAC(key, label || u64(index)). Deterministic, so the
/// whole cluster key material is reproducible from one master seed.
Bytes derive_key(const Bytes& key, const std::string& label,
                 std::uint64_t index);

}  // namespace fastbft::crypto
