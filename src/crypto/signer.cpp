#include "crypto/signer.hpp"

#include "common/assert.hpp"

namespace fastbft::crypto {

std::optional<Signature> Signature::decode(Decoder& dec) {
  Bytes b = dec.bytes();
  if (!dec.ok()) return std::nullopt;
  return Signature{std::move(b)};
}

KeyStore::KeyStore(std::uint64_t master_seed, std::uint32_t num_processes) {
  Encoder enc;
  enc.str("fastbft-master-seed");
  enc.u64(master_seed);
  Bytes master = sha256_bytes(enc.view());
  keys_.reserve(num_processes);
  Sha256 fp;
  for (std::uint32_t i = 0; i < num_processes; ++i) {
    keys_.push_back(derive_key(master, "process-key", i));
    fp.update(keys_.back());
  }
  Digest fp_digest = fp.finalize();
  std::memcpy(&fingerprint_, fp_digest.data(), sizeof(fingerprint_));
}

const Bytes& KeyStore::secret_of(ProcessId id) const {
  FASTBFT_ASSERT(id < keys_.size(), "process id out of range in KeyStore");
  return keys_[id];
}

namespace {

inline ByteView domain_view(const std::string& domain) {
  return ByteView(reinterpret_cast<const std::uint8_t*>(domain.data()),
                  domain.size());
}

/// MACs the short signing frame: str(domain) ‖ digest. The digest is fixed
/// width, so the frame is injective without a second length prefix. Two
/// SHA-256 data blocks regardless of how large the original message was —
/// that is the whole point of hash-then-MAC.
Digest mac_frame(const Bytes& secret, const std::string& domain,
                 const Digest& digest) {
  HmacSha256 mac(secret);
  mac.update_u32(static_cast<std::uint32_t>(domain.size()));
  mac.update(domain_view(domain));
  mac.update(digest.data(), digest.size());
  return mac.finalize();
}

}  // namespace

Digest message_digest(ByteView message) { return sha256(message); }

Signature Signer::sign(const std::string& domain, ByteView message) const {
  return sign_digest(domain, message_digest(message));
}

Signature Signer::sign_digest(const std::string& domain,
                              const Digest& digest) const {
  Digest d = mac_frame(keys_->secret_of(id_), domain, digest);
  return Signature{Bytes(d.begin(), d.end())};
}

bool Verifier::verify_digest_uncached(const Bytes& secret,
                                      const std::string& domain,
                                      const Digest& digest,
                                      const Signature& sig) const {
  Digest d = mac_frame(secret, domain, digest);
  return bytes_equal(sig.bytes, ByteView(d.data(), d.size()));
}

bool Verifier::verify(ProcessId signer, const std::string& domain,
                      ByteView message, const Signature& sig) const {
  return verify_digest(signer, domain, message_digest(message), sig);
}

bool Verifier::verify_digest(ProcessId signer, const std::string& domain,
                             const Digest& digest,
                             const Signature& sig) const {
  if (signer >= keys_->size()) return false;
  if (sig.bytes.size() != kSignatureSize) return false;
  return verify_digest_uncached(keys_->secret_of(signer), domain, digest,
                                sig);
}

bool Verifier::verify_digest_memo(ProcessId signer, const std::string& domain,
                                  const Digest& digest,
                                  const Signature& sig) const {
  if (signer >= keys_->size()) return false;
  if (sig.bytes.size() != kSignatureSize) return false;
  if (!cache_) {
    return verify_digest_uncached(keys_->secret_of(signer), domain, digest,
                                  sig);
  }
  VerifyKey key = VerifyKey::make(keys_->fingerprint(), signer, domain,
                                  digest, sig.bytes);
  if (auto verdict = cache_->lookup(key)) return *verdict;
  bool ok = verify_digest_uncached(keys_->secret_of(signer), domain, digest,
                                   sig);
  cache_->insert(key, ok);
  return ok;
}

}  // namespace fastbft::crypto
