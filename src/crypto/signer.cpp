#include "crypto/signer.hpp"

#include "common/assert.hpp"

namespace fastbft::crypto {

std::optional<Signature> Signature::decode(Decoder& dec) {
  Bytes b = dec.bytes();
  if (!dec.ok()) return std::nullopt;
  return Signature{std::move(b)};
}

KeyStore::KeyStore(std::uint64_t master_seed, std::uint32_t num_processes) {
  Encoder enc;
  enc.str("fastbft-master-seed");
  enc.u64(master_seed);
  Bytes master = sha256_bytes(std::move(enc).take());
  keys_.reserve(num_processes);
  for (std::uint32_t i = 0; i < num_processes; ++i) {
    keys_.push_back(derive_key(master, "process-key", i));
  }
}

const Bytes& KeyStore::secret_of(ProcessId id) const {
  FASTBFT_ASSERT(id < keys_.size(), "process id out of range in KeyStore");
  return keys_[id];
}

namespace {
Bytes signing_preimage(const std::string& domain, const Bytes& message) {
  Encoder enc;
  enc.str(domain);
  enc.bytes(message);
  return std::move(enc).take();
}
}  // namespace

Signature Signer::sign(const std::string& domain, const Bytes& message) const {
  Digest d = hmac_sha256(keys_->secret_of(id_), signing_preimage(domain, message));
  return Signature{Bytes(d.begin(), d.end())};
}

bool Verifier::verify(ProcessId signer, const std::string& domain,
                      const Bytes& message, const Signature& sig) const {
  if (signer >= keys_->size()) return false;
  if (sig.bytes.size() != kSignatureSize) return false;
  Digest d =
      hmac_sha256(keys_->secret_of(signer), signing_preimage(domain, message));
  return bytes_equal(sig.bytes, Bytes(d.begin(), d.end()));
}

}  // namespace fastbft::crypto
