#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "common/types.hpp"
#include "crypto/hmac.hpp"
#include "crypto/verify_cache.hpp"

/// \file signer.hpp
/// Signature scheme used by the protocols.
///
/// Substitution note (see DESIGN.md §2): the paper assumes standard digital
/// signatures with a PKI. This library implements *simulation signatures*:
/// a cluster `KeyStore` derives one 32-byte secret per process from a master
/// seed, and a signature is HMAC-SHA-256(secret_i, domain ‖ SHA-256(message))
/// — hash-then-MAC, the same shape as real sign-the-digest schemes.
/// Verification re-derives the per-process secret. Within the simulated
/// adversary model signatures are unforgeable by construction — none of the
/// implemented Byzantine behaviours fabricate another process's signature,
/// mirroring the paper's computationally bounded adversary. Signature size
/// (32 bytes) and constant-time verification cost are realistic, so the
/// certificate-size experiment (E4) is meaningful.
///
/// Hash-then-MAC is also the zero-copy hot path's crypto lever: the large
/// preimage (a command batch plus view) is hashed ONCE and the 32-byte
/// digest is shared across every signer of the same statement — n signed
/// acks over one value cost one preimage hash plus n short MACs instead of
/// n full-length MACs, and certificate verification reuses the digest for
/// every entry (see Digest-level APIs below and the VerificationCache).
///
/// Swapping in a real scheme (e.g. Ed25519) only requires another
/// implementation of Signer/Verifier.

namespace fastbft::crypto {

inline constexpr std::size_t kSignatureSize = kDigestSize;

/// A detached signature. Wraps bytes so the codec and comparisons are
/// uniform with other protocol artifacts.
struct Signature {
  Bytes bytes;

  bool empty() const { return bytes.empty(); }

  void encode(Encoder& enc) const { enc.bytes(bytes); }
  static std::optional<Signature> decode(Decoder& dec);

  friend bool operator==(const Signature&, const Signature&) = default;
};

/// Holds the per-cluster key material. One instance is shared by all
/// simulated processes of a cluster (the "trusted setup").
class KeyStore {
 public:
  KeyStore(std::uint64_t master_seed, std::uint32_t num_processes);

  std::uint32_t size() const { return static_cast<std::uint32_t>(keys_.size()); }
  const Bytes& secret_of(ProcessId id) const;

  /// Cheap identity of this key material (digest of all secrets). Baked
  /// into every VerificationCache key, so cached verdicts are unreachable
  /// the moment a verifier runs against different keys.
  std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  std::vector<Bytes> keys_;
  std::uint64_t fingerprint_ = 0;
};

/// The hash half of hash-then-MAC: what sign/verify reduce a message to
/// before keying. Compute it once per message body and reuse it across
/// the Digest-level APIs when many signatures cover the same statement.
Digest message_digest(ByteView message);

/// Signing handle bound to one process identity.
class Signer {
 public:
  Signer(std::shared_ptr<const KeyStore> keys, ProcessId id)
      : keys_(std::move(keys)), id_(id) {}

  ProcessId id() const { return id_; }

  /// Signs `message` under a domain-separation string; the domain prevents
  /// cross-protocol replay of signatures (e.g. a VOTE signature being
  /// presented as a CERTACK). Equivalent to sign_digest(domain,
  /// message_digest(message)).
  Signature sign(const std::string& domain, ByteView message) const;

  /// Digest-level signing: the caller already hashed the message (and may
  /// share that digest across several signatures over the same statement).
  Signature sign_digest(const std::string& domain, const Digest& digest) const;

 private:
  std::shared_ptr<const KeyStore> keys_;
  ProcessId id_;
};

/// Verification handle; any process can verify any other process's
/// signatures. Optionally backed by a shared VerificationCache: verifiers
/// of all pipelined slots on one node share it, so a signature re-presented
/// in another certificate (or another slot) costs one SHA-256 key
/// derivation instead of a full HMAC. The cache key covers the signer's
/// secret, so verdicts can never survive a key change.
class Verifier {
 public:
  explicit Verifier(std::shared_ptr<const KeyStore> keys,
                    std::shared_ptr<VerificationCache> cache = nullptr)
      : keys_(std::move(keys)), cache_(std::move(cache)) {}

  /// Plain verification (hashes the message, then one short MAC).
  bool verify(ProcessId signer, const std::string& domain, ByteView message,
              const Signature& sig) const;

  /// Digest-level verification: the caller hashed the message once and
  /// shares the digest across all signatures covering the same statement.
  bool verify_digest(ProcessId signer, const std::string& domain,
                     const Digest& digest, const Signature& sig) const;

  /// Memoized digest-level verification: consults/updates the
  /// VerificationCache when one is attached (falls back to verify_digest
  /// otherwise). Use on certificate paths, where the same signatures are
  /// re-presented across certificates, CertReq replays and pipelined
  /// slots. The memo key embeds the KeyStore fingerprint, so a verdict
  /// can never outlive a key change.
  bool verify_digest_memo(ProcessId signer, const std::string& domain,
                          const Digest& digest, const Signature& sig) const;

  const std::shared_ptr<VerificationCache>& cache() const { return cache_; }

 private:
  bool verify_digest_uncached(const Bytes& secret, const std::string& domain,
                              const Digest& digest,
                              const Signature& sig) const;

  std::shared_ptr<const KeyStore> keys_;
  std::shared_ptr<VerificationCache> cache_;
};

}  // namespace fastbft::crypto
