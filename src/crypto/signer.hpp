#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "common/types.hpp"
#include "crypto/hmac.hpp"

/// \file signer.hpp
/// Signature scheme used by the protocols.
///
/// Substitution note (see DESIGN.md §2): the paper assumes standard digital
/// signatures with a PKI. This library implements *simulation signatures*:
/// a cluster `KeyStore` derives one 32-byte secret per process from a master
/// seed, and a signature is HMAC-SHA-256(secret_i, domain ‖ message).
/// Verification re-derives the per-process secret. Within the simulated
/// adversary model signatures are unforgeable by construction — none of the
/// implemented Byzantine behaviours fabricate another process's signature,
/// mirroring the paper's computationally bounded adversary. Signature size
/// (32 bytes) and constant-time verification cost are realistic, so the
/// certificate-size experiment (E4) is meaningful.
///
/// Swapping in a real scheme (e.g. Ed25519) only requires another
/// implementation of Signer/Verifier.

namespace fastbft::crypto {

inline constexpr std::size_t kSignatureSize = kDigestSize;

/// A detached signature. Wraps bytes so the codec and comparisons are
/// uniform with other protocol artifacts.
struct Signature {
  Bytes bytes;

  bool empty() const { return bytes.empty(); }

  void encode(Encoder& enc) const { enc.bytes(bytes); }
  static std::optional<Signature> decode(Decoder& dec);

  friend bool operator==(const Signature&, const Signature&) = default;
};

/// Holds the per-cluster key material. One instance is shared by all
/// simulated processes of a cluster (the "trusted setup").
class KeyStore {
 public:
  KeyStore(std::uint64_t master_seed, std::uint32_t num_processes);

  std::uint32_t size() const { return static_cast<std::uint32_t>(keys_.size()); }
  const Bytes& secret_of(ProcessId id) const;

 private:
  std::vector<Bytes> keys_;
};

/// Signing handle bound to one process identity.
class Signer {
 public:
  Signer(std::shared_ptr<const KeyStore> keys, ProcessId id)
      : keys_(std::move(keys)), id_(id) {}

  ProcessId id() const { return id_; }

  /// Signs `message` under a domain-separation string; the domain prevents
  /// cross-protocol replay of signatures (e.g. a VOTE signature being
  /// presented as a CERTACK).
  Signature sign(const std::string& domain, const Bytes& message) const;

 private:
  std::shared_ptr<const KeyStore> keys_;
  ProcessId id_;
};

/// Verification handle; any process can verify any other process's
/// signatures.
class Verifier {
 public:
  explicit Verifier(std::shared_ptr<const KeyStore> keys)
      : keys_(std::move(keys)) {}

  bool verify(ProcessId signer, const std::string& domain,
              const Bytes& message, const Signature& sig) const;

 private:
  std::shared_ptr<const KeyStore> keys_;
};

}  // namespace fastbft::crypto
