#pragma once

#include <functional>
#include <map>
#include <optional>

#include "common/codec.hpp"
#include "common/types.hpp"
#include "net/transport.hpp"
#include "sim/scheduler.hpp"

/// \file synchronizer.hpp
/// View synchronization protocol. The paper delegates this to the
/// literature ([8, 11, 24]) and requires three properties:
///   1. a correct process's view number never decreases;
///   2. in every infinite execution a correct leader is elected infinitely
///      often;
///   3. if a correct leader is elected after GST, no correct process
///      changes its view for at least 5 * Delta.
///
/// This implementation is a timeout-based WISH synchronizer with Bracha
/// amplification: a process whose timer expires broadcasts WISH(v+1);
/// seeing f+1 distinct processes wishing for views >= w makes it adopt and
/// relay WISH(w) (so lagging processes catch up within one delay); seeing
/// 2f+1 makes it enter view w. Timeouts grow exponentially with the view
/// number, so after GST they eventually exceed the time a correct leader
/// needs (4 message delays for view change + proposal), giving property 3.

namespace fastbft::viewsync {

struct WishMsg {
  View w = kNoView;

  Bytes serialize() const;
  static std::optional<WishMsg> decode(Decoder& dec);
};

/// Returns nullopt if the payload is not a WISH message.
std::optional<WishMsg> parse_wish(ByteView payload);

struct SynchronizerConfig {
  /// Baseline view duration; doubled each view up to `max_doublings`.
  /// Must comfortably exceed ~6 message delays for liveness after GST.
  Duration base_timeout = 1200;
  std::uint32_t max_doublings = 20;
  std::uint32_t f = 1;
};

class Synchronizer {
 public:
  using EnterViewFn = std::function<void(View)>;

  /// `timers` is any timer source: the scheduler itself for standalone
  /// nodes, or an engine-scoped multiplexer (engine::TimerWheel) when many
  /// synchronizers share one scheduler event (pipelined SMR slots).
  Synchronizer(SynchronizerConfig cfg, ProcessId id,
               net::Transport& transport, sim::TimerService& timers,
               EnterViewFn enter_view);

  /// Arms the view-1 timer.
  void start();

  /// Feeds a WISH payload (the node dispatches by tag; viewed, not copied).
  void on_message(ProcessId from, ByteView payload);

  /// Stops advancing views (called once the replica decided; for
  /// single-shot consensus there is nothing left to synchronize).
  void stop();

  View view() const { return view_; }
  std::uint64_t timeouts_fired() const { return timeouts_fired_; }

 private:
  void arm_timer();
  void on_timeout();
  void send_wish(View w);
  void process_wishes();
  Duration timeout_for(View v) const;

  /// k-th highest wish over all processes (1-based); kNoView if fewer than
  /// k processes have wished.
  View kth_highest_wish(std::uint32_t k) const;

  SynchronizerConfig cfg_;
  ProcessId id_;
  net::Transport& transport_;
  sim::TimerService& timers_;
  EnterViewFn enter_view_;

  View view_ = 1;
  std::map<ProcessId, View> wish_of_;  // highest wish seen per process
  View my_wish_ = kNoView;
  bool stopped_ = false;
  sim::TimerHandle timer_;
  std::uint64_t timeouts_fired_ = 0;
};

}  // namespace fastbft::viewsync
