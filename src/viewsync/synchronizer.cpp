#include "viewsync/synchronizer.hpp"

#include <algorithm>
#include <vector>

#include "common/logging.hpp"
#include "net/tags.hpp"

namespace fastbft::viewsync {

Bytes WishMsg::serialize() const {
  Encoder enc;
  enc.u8(net::tags::kWish);
  enc.u64(w);
  return std::move(enc).take();
}

std::optional<WishMsg> WishMsg::decode(Decoder& dec) {
  WishMsg m;
  m.w = dec.u64();
  if (!dec.ok()) return std::nullopt;
  return m;
}

std::optional<WishMsg> parse_wish(ByteView payload) {
  if (payload.empty() || payload[0] != net::tags::kWish) return std::nullopt;
  Decoder dec(payload);
  dec.u8();
  auto m = WishMsg::decode(dec);
  if (!m || !dec.at_end()) return std::nullopt;
  return m;
}

Synchronizer::Synchronizer(SynchronizerConfig cfg, ProcessId id,
                           net::Transport& transport,
                           sim::TimerService& timers, EnterViewFn enter_view)
    : cfg_(cfg),
      id_(id),
      transport_(transport),
      timers_(timers),
      enter_view_(std::move(enter_view)) {}

void Synchronizer::start() { arm_timer(); }

void Synchronizer::stop() {
  stopped_ = true;
  timer_.cancel();
}

Duration Synchronizer::timeout_for(View v) const {
  std::uint32_t shift = static_cast<std::uint32_t>(
      std::min<View>(v - 1, cfg_.max_doublings));
  return cfg_.base_timeout << shift;
}

void Synchronizer::arm_timer() {
  timer_.cancel();
  if (stopped_) return;
  timer_ = timers_.schedule_after(timeout_for(view_), [this] { on_timeout(); });
}

void Synchronizer::on_timeout() {
  if (stopped_) return;
  ++timeouts_fired_;
  View target = std::max(view_ + 1, my_wish_ + 1);
  send_wish(target);
  arm_timer();  // keep escalating if still stuck
}

void Synchronizer::send_wish(View w) {
  if (w <= my_wish_) return;
  my_wish_ = w;
  wish_of_[id_] = std::max(wish_of_[id_], w);
  transport_.broadcast_others(WishMsg{w}.serialize());
  process_wishes();
}

void Synchronizer::on_message(ProcessId from, ByteView payload) {
  if (stopped_) return;
  auto wish = parse_wish(payload);
  if (!wish || wish->w == kNoView) return;
  View& entry = wish_of_[from];
  if (wish->w <= entry) return;
  entry = wish->w;
  process_wishes();
}

View Synchronizer::kth_highest_wish(std::uint32_t k) const {
  if (wish_of_.size() < k) return kNoView;
  std::vector<View> wishes;
  wishes.reserve(wish_of_.size());
  for (const auto& [pid, w] : wish_of_) wishes.push_back(w);
  std::nth_element(wishes.begin(), wishes.begin() + (k - 1), wishes.end(),
                   std::greater<View>());
  return wishes[k - 1];
}

void Synchronizer::process_wishes() {
  // Amplification: f+1 distinct wishers for views >= w means at least one
  // correct process timed out up to w; adopt and relay so everyone
  // converges within one message delay.
  View relay = kth_highest_wish(cfg_.f + 1);
  if (relay != kNoView && relay > my_wish_) {
    send_wish(relay);
  }

  // Entering: 2f+1 distinct wishers for views >= w contain f+1 correct
  // ones, so every correct process will also see f+1 (via relays) and can
  // never be left behind.
  View enter = kth_highest_wish(2 * cfg_.f + 1);
  if (enter != kNoView && enter > view_) {
    view_ = enter;
    arm_timer();
    enter_view_(enter);
  }
}

}  // namespace fastbft::viewsync
