#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "consensus/types.hpp"
#include "net/transport.hpp"

/// \file separated.hpp
/// Section 4.4 of the paper: when the processes that propose values
/// (proposers) are disjoint from the processes that replicate them
/// (acceptors) — the original Paxos role split FaB Paxos inherits — the
/// optimal resilience for fast Byzantine consensus is 3f + 2t + 1
/// *acceptors*, not 3f + 2t - 1.
///
/// The reason is the paper's key trick in reverse: a merged-roles leader
/// that detects equivocation by a past leader q can *exclude q's vote*
/// (q is provably Byzantine and is an acceptor, so discounting its vote
/// tightens the quorum arithmetic by one). A Byzantine proposer that is
/// not an acceptor leaves nothing to exclude.
///
/// This module implements a minimal separated-roles fast protocol to make
/// that arithmetic executable:
///  * m acceptors, external proposers (one per view);
///  * fast path: proposer broadcasts a signed proposal, acceptors ack to
///    everyone, m - t acks decide;
///  * recovery: the view-v proposer collects m - f signed votes; a value
///    with >= m - 2f - t votes at the highest voted view is forced
///    (that is the exact safety threshold: a decided value always reaches
///    it — see the counting in separated.cpp); ties broken by smallest
///    value, none forced = proposer free.
///
/// At m = 3f + 2t the threshold is f + t and 2(f + t) <= m - f: the
/// adversary can engineer a *tie* between the decided value and a decoy,
/// steer the deterministic tie-break, and force disagreement
/// (`run_separated_attack`). At m = 3f + 2t + 1 (FaB's bound) the
/// threshold is f + t + 1 and ties are impossible; the same schedule
/// fails. The merged-roles protocol of the main library achieves safety
/// with one acceptor *fewer* than even the broken value here — the whole
/// point of the paper.

namespace fastbft::roles {

struct SeparatedConfig {
  /// Number of acceptors.
  std::uint32_t m = 0;
  std::uint32_t f = 0;
  std::uint32_t t = 0;

  /// Acceptor key-store ids are [0, m); proposer of view v gets key id
  /// m + (v - 1) % num_proposers.
  std::uint32_t num_proposers = 2;

  std::uint32_t fast_quorum() const { return m - t; }
  std::uint32_t vote_quorum() const { return m - f; }

  /// Votes at the highest view that force a value during recovery:
  /// a decided value is guaranteed (m - t) + (m - f) - m - f of them from
  /// correct acceptors.
  std::uint32_t forced_threshold() const { return m - 2 * f - t; }

  ProcessId proposer_id(View v) const {
    return m + static_cast<ProcessId>((v - 1) % num_proposers);
  }
  std::uint32_t total_keys() const { return m + num_proposers; }
};

/// One acceptor's signed recovery vote.
struct SeparatedVote {
  ProcessId voter = kNoProcess;
  bool is_nil = true;
  Value x;
  View u = kNoView;
  crypto::Signature tau;  // proposer(u)'s signature over (x, u)
  crypto::Signature phi;  // voter's signature binding the vote to view v

  friend bool operator==(const SeparatedVote&, const SeparatedVote&) = default;
};

Bytes separated_propose_preimage(const Value& x, View v);
Bytes separated_vote_preimage(const SeparatedVote& vote, View v);

bool validate_separated_vote(const crypto::Verifier& verifier,
                             const SeparatedConfig& cfg,
                             const SeparatedVote& vote, View v);

/// Recovery selection for the separated protocol. Returns the forced
/// value, or nullopt when the proposer is free. Deterministic: among
/// several values reaching the threshold at the highest view (possible
/// exactly when m <= 3f + 2t), the lexicographically smallest wins — the
/// ambiguity the Section 4.4 attack exploits.
std::optional<Value> separated_select(const SeparatedConfig& cfg,
                                      const std::vector<SeparatedVote>& votes);

/// Minimal acceptor state machine (hand-cranked by the attack driver and
/// the tests; no network integration needed for the Section 4.4 result).
class Acceptor {
 public:
  Acceptor(SeparatedConfig cfg, ProcessId id,
           std::shared_ptr<const crypto::KeyStore> keys);

  /// Handles a proposal; returns true (and records the vote) if this is
  /// the first valid proposal of the current view.
  bool on_propose(View v, const Value& x, const crypto::Signature& tau);

  /// Counts an ack from `from`; returns the decided value when the fast
  /// quorum is reached (first time only).
  std::optional<Value> on_ack(ProcessId from, View v, const Value& x);

  /// Monotone view switch; returns this acceptor's signed vote for the
  /// new proposer.
  SeparatedVote enter_view(View v);

  View view() const { return view_; }
  const std::optional<Value>& decision() const { return decision_; }

 private:
  SeparatedConfig cfg_;
  ProcessId id_;
  std::shared_ptr<const crypto::KeyStore> keys_;
  crypto::Verifier verifier_;

  View view_ = 1;
  std::set<View> accepted_in_;
  SeparatedVote vote_;  // is_nil until the first accepted proposal
  std::map<std::pair<View, Bytes>, std::set<ProcessId>> acks_;
  std::optional<Value> decision_;
};

/// Outcome of the scripted Section 4.4 attack.
struct SeparatedAttackOutcome {
  std::uint32_t m = 0;
  std::uint32_t f = 0;
  std::uint32_t t = 0;
  bool disagreement = false;
  Value early_value;      // decided through the fast path in view 1
  Value recovered_value;  // what the honest view-2 proposer selected
  std::vector<std::pair<ProcessId, Value>> decisions;
  std::string describe() const;
};

/// Runs the role-separation attack with f = t = 1 against m acceptors.
/// m = 5 (= 3f + 2t): disagreement. m = 6 (= 3f + 2t + 1, FaB's bound):
/// agreement — demonstrating that 3f + 2t + 1 is optimal for separated
/// roles, exactly as Section 4.4 argues.
SeparatedAttackOutcome run_separated_attack(std::uint32_t m);

}  // namespace fastbft::roles
