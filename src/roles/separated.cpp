#include "roles/separated.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"

namespace fastbft::roles {

namespace {
constexpr const char* kDomSepPropose = "sep-propose";
constexpr const char* kDomSepVote = "sep-vote";
}  // namespace

Bytes separated_propose_preimage(const Value& x, View v) {
  Encoder enc;
  x.encode(enc);
  enc.u64(v);
  return std::move(enc).take();
}

Bytes separated_vote_preimage(const SeparatedVote& vote, View v) {
  Encoder enc;
  enc.boolean(vote.is_nil);
  if (!vote.is_nil) {
    vote.x.encode(enc);
    enc.u64(vote.u);
    vote.tau.encode(enc);
  }
  enc.u64(v);
  return std::move(enc).take();
}

bool validate_separated_vote(const crypto::Verifier& verifier,
                             const SeparatedConfig& cfg,
                             const SeparatedVote& vote, View v) {
  if (vote.voter >= cfg.m) return false;
  if (!verifier.verify(vote.voter, kDomSepVote,
                       separated_vote_preimage(vote, v), vote.phi)) {
    return false;
  }
  if (!vote.is_nil) {
    if (vote.u < 1 || vote.u >= v || vote.x.empty()) return false;
    if (!verifier.verify(cfg.proposer_id(vote.u), kDomSepPropose,
                         separated_propose_preimage(vote.x, vote.u),
                         vote.tau)) {
      return false;
    }
  }
  return true;
}

std::optional<Value> separated_select(const SeparatedConfig& cfg,
                                      const std::vector<SeparatedVote>& votes) {
  FASTBFT_ASSERT(votes.size() >= cfg.vote_quorum(),
                 "selection requires m - f votes");
  View w = kNoView;
  for (const auto& vote : votes) {
    if (!vote.is_nil) w = std::max(w, vote.u);
  }
  if (w == kNoView) return std::nullopt;

  // NOTE the structural difference to consensus::run_selection: there is
  // no equivocator to exclude — the misbehaving proposer of view w is not
  // an acceptor, so every collected vote keeps counting. That costs the
  // protocol exactly the two processes Section 4.4 talks about.
  std::map<Value, std::uint32_t> counts;
  for (const auto& vote : votes) {
    if (!vote.is_nil && vote.u == w) counts[vote.x] += 1;
  }
  for (const auto& [value, count] : counts) {  // std::map: smallest first
    if (count >= cfg.forced_threshold()) return value;
  }
  return std::nullopt;
}

// --- Acceptor -----------------------------------------------------------------

Acceptor::Acceptor(SeparatedConfig cfg, ProcessId id,
                   std::shared_ptr<const crypto::KeyStore> keys)
    : cfg_(cfg), id_(id), keys_(std::move(keys)), verifier_(keys_) {
  FASTBFT_ASSERT(id_ < cfg_.m, "acceptor id out of range");
  vote_.voter = id_;
}

bool Acceptor::on_propose(View v, const Value& x,
                          const crypto::Signature& tau) {
  if (v != view_ || accepted_in_.contains(v) || x.empty()) return false;
  if (!verifier_.verify(cfg_.proposer_id(v), kDomSepPropose,
                        separated_propose_preimage(x, v), tau)) {
    return false;
  }
  accepted_in_.insert(v);
  vote_.is_nil = false;
  vote_.x = x;
  vote_.u = v;
  vote_.tau = tau;
  return true;
}

std::optional<Value> Acceptor::on_ack(ProcessId from, View v, const Value& x) {
  if (decision_) return std::nullopt;
  auto& ackers = acks_[{v, x.bytes()}];
  ackers.insert(from);
  if (ackers.size() >= cfg_.fast_quorum()) {
    decision_ = x;
    return decision_;
  }
  return std::nullopt;
}

SeparatedVote Acceptor::enter_view(View v) {
  FASTBFT_ASSERT(v > view_, "views are monotone");
  view_ = v;
  SeparatedVote vote = vote_;
  vote.voter = id_;
  vote.phi = crypto::Signer(keys_, id_)
                 .sign(kDomSepVote, separated_vote_preimage(vote, v));
  return vote;
}

// --- The Section 4.4 attack ------------------------------------------------------

SeparatedAttackOutcome run_separated_attack(std::uint32_t m) {
  constexpr std::uint32_t f = 1;
  constexpr std::uint32_t t = 1;
  FASTBFT_ASSERT(m >= 3 * f + 2 * t, "attack is scripted for m >= 5");

  SeparatedConfig cfg{m, f, t, /*num_proposers=*/2};
  auto keys = std::make_shared<const crypto::KeyStore>(/*seed=*/99,
                                                       cfg.total_keys());
  crypto::Verifier verifier(keys);

  SeparatedAttackOutcome outcome;
  outcome.m = m;
  outcome.f = f;
  outcome.t = t;

  // Value names are adversary-chosen so that the deterministic tie-break
  // (smallest value) favours the decoy.
  const Value x = Value::of_string("zz-decided-fast");
  const Value y = Value::of_string("aa-decoy");
  outcome.early_value = x;

  // Cast: proposer of view 1 (key id m) is Byzantine and equivocates;
  // acceptor a_{m-1} is Byzantine; proposer of view 2 (key id m+1) and
  // acceptors a0..a_{m-2} are honest.
  const ProcessId byz_acceptor = m - 1;
  crypto::Signer proposer1(keys, cfg.proposer_id(1));

  std::vector<std::unique_ptr<Acceptor>> acceptors;
  for (ProcessId id = 0; id < m; ++id) {
    acceptors.push_back(std::make_unique<Acceptor>(cfg, id, keys));
  }

  // --- View 1: equivocation. x goes to acceptors a0..a_{m-3}; y to
  // a_{m-2}. (m - 2 honest x-acceptors + the Byzantine acker = m - t
  // ackers of x.)
  crypto::Signature tau_x =
      proposer1.sign(kDomSepPropose, separated_propose_preimage(x, 1));
  crypto::Signature tau_y =
      proposer1.sign(kDomSepPropose, separated_propose_preimage(y, 1));
  for (ProcessId id = 0; id + 2 < m; ++id) {
    FASTBFT_ASSERT(acceptors[id]->on_propose(1, x, tau_x),
                   "honest acceptors must accept the first proposal");
  }
  FASTBFT_ASSERT(acceptors[m - 2]->on_propose(1, y, tau_y),
                 "the decoy proposal is equally valid");

  // --- Early decider: a0 receives acks for x from every x-adopter plus
  // the Byzantine acceptor — exactly the fast quorum.
  for (ProcessId id = 0; id + 2 < m; ++id) {
    acceptors[0]->on_ack(id, 1, x);
  }
  auto early = acceptors[0]->on_ack(byz_acceptor, 1, x);
  FASTBFT_ASSERT(early.has_value() && *early == x,
                 "the early decider must decide x through the fast path");

  // --- View change: the honest view-2 proposer collects m - f votes; the
  // adversary delays the early decider's vote and substitutes the
  // Byzantine acceptor's crafted y-vote (it holds proposer1's signature
  // on y, so the vote validates).
  std::vector<SeparatedVote> votes;
  for (ProcessId id = 1; id + 1 < m; ++id) {
    votes.push_back(acceptors[id]->enter_view(2));
  }
  {
    SeparatedVote lie;
    lie.voter = byz_acceptor;
    lie.is_nil = false;
    lie.x = y;
    lie.u = 1;
    lie.tau = tau_y;
    lie.phi = crypto::Signer(keys, byz_acceptor)
                  .sign(kDomSepVote, separated_vote_preimage(lie, 2));
    votes.push_back(lie);
    acceptors[byz_acceptor]->enter_view(2);  // keep its view consistent
  }
  acceptors[0]->enter_view(2);  // its vote stays in transit

  for (const auto& vote : votes) {
    FASTBFT_ASSERT(validate_separated_vote(verifier, cfg, vote, 2),
                   "every vote handed to the proposer is valid");
  }
  FASTBFT_ASSERT(votes.size() == cfg.vote_quorum(),
                 "proposer proceeds with exactly m - f votes");

  Value selected = separated_select(cfg, votes).value_or(y);
  outcome.recovered_value = selected;

  // --- View 2 fast path on the selected value: every live acceptor acks.
  crypto::Signer proposer2(keys, cfg.proposer_id(2));
  crypto::Signature tau2 =
      proposer2.sign(kDomSepPropose, separated_propose_preimage(selected, 2));
  std::vector<ProcessId> ackers;
  for (ProcessId id = 0; id + 1 < m; ++id) {
    if (acceptors[id]->on_propose(2, selected, tau2)) ackers.push_back(id);
  }
  ackers.push_back(byz_acceptor);
  for (ProcessId id = 0; id + 1 < m; ++id) {
    for (ProcessId from : ackers) {
      acceptors[id]->on_ack(from, 2, selected);
    }
  }

  for (ProcessId id = 0; id + 1 < m; ++id) {
    if (acceptors[id]->decision()) {
      outcome.decisions.emplace_back(id, *acceptors[id]->decision());
    }
  }
  for (std::size_t i = 1; i < outcome.decisions.size(); ++i) {
    if (!(outcome.decisions[i].second == outcome.decisions[0].second)) {
      outcome.disagreement = true;
    }
  }
  return outcome;
}

std::string SeparatedAttackOutcome::describe() const {
  std::ostringstream out;
  out << "separated roles: m=" << m << " acceptors, f=" << f << ", t=" << t
      << " (FaB bound 3f+2t+1 = " << (3 * f + 2 * t + 1) << ")\n";
  out << "  fast-path decision in view 1: " << early_value.to_string() << "\n";
  out << "  view-2 proposer selected:     " << recovered_value.to_string()
      << "\n";
  for (const auto& [id, value] : decisions) {
    out << "  a" << id << " decided " << value.to_string() << "\n";
  }
  out << (disagreement ? "  => DISAGREEMENT (safety violated)\n"
                       : "  => agreement preserved\n");
  return out.str();
}

}  // namespace fastbft::roles
