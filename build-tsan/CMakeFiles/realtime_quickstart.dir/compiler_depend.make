# Empty compiler generated dependencies file for realtime_quickstart.
# This may be replaced when dependencies are built.
