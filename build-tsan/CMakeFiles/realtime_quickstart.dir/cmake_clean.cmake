file(REMOVE_RECURSE
  "CMakeFiles/realtime_quickstart.dir/examples/realtime_quickstart.cpp.o"
  "CMakeFiles/realtime_quickstart.dir/examples/realtime_quickstart.cpp.o.d"
  "examples/realtime_quickstart"
  "examples/realtime_quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
