file(REMOVE_RECURSE
  "CMakeFiles/test_separated.dir/tests/test_separated.cpp.o"
  "CMakeFiles/test_separated.dir/tests/test_separated.cpp.o.d"
  "tests/test_separated"
  "tests/test_separated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_separated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
