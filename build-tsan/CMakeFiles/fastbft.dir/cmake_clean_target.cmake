file(REMOVE_RECURSE
  "libfastbft.a"
)
