# Empty dependencies file for fastbft.
# This may be replaced when dependencies are built.
