
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adversary/behaviors.cpp" "CMakeFiles/fastbft.dir/src/adversary/behaviors.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/adversary/behaviors.cpp.o.d"
  "/root/repo/src/adversary/lower_bound.cpp" "CMakeFiles/fastbft.dir/src/adversary/lower_bound.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/adversary/lower_bound.cpp.o.d"
  "/root/repo/src/common/bytes.cpp" "CMakeFiles/fastbft.dir/src/common/bytes.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/common/bytes.cpp.o.d"
  "/root/repo/src/common/codec.cpp" "CMakeFiles/fastbft.dir/src/common/codec.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/common/codec.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "CMakeFiles/fastbft.dir/src/common/logging.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/common/logging.cpp.o.d"
  "/root/repo/src/common/value.cpp" "CMakeFiles/fastbft.dir/src/common/value.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/common/value.cpp.o.d"
  "/root/repo/src/consensus/config.cpp" "CMakeFiles/fastbft.dir/src/consensus/config.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/consensus/config.cpp.o.d"
  "/root/repo/src/consensus/messages.cpp" "CMakeFiles/fastbft.dir/src/consensus/messages.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/consensus/messages.cpp.o.d"
  "/root/repo/src/consensus/replica.cpp" "CMakeFiles/fastbft.dir/src/consensus/replica.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/consensus/replica.cpp.o.d"
  "/root/repo/src/consensus/selection.cpp" "CMakeFiles/fastbft.dir/src/consensus/selection.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/consensus/selection.cpp.o.d"
  "/root/repo/src/consensus/types.cpp" "CMakeFiles/fastbft.dir/src/consensus/types.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/consensus/types.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "CMakeFiles/fastbft.dir/src/crypto/hmac.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "CMakeFiles/fastbft.dir/src/crypto/sha256.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/signer.cpp" "CMakeFiles/fastbft.dir/src/crypto/signer.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/crypto/signer.cpp.o.d"
  "/root/repo/src/engine/catchup.cpp" "CMakeFiles/fastbft.dir/src/engine/catchup.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/engine/catchup.cpp.o.d"
  "/root/repo/src/engine/pending_queue.cpp" "CMakeFiles/fastbft.dir/src/engine/pending_queue.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/engine/pending_queue.cpp.o.d"
  "/root/repo/src/engine/slot_mux.cpp" "CMakeFiles/fastbft.dir/src/engine/slot_mux.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/engine/slot_mux.cpp.o.d"
  "/root/repo/src/engine/timer_wheel.cpp" "CMakeFiles/fastbft.dir/src/engine/timer_wheel.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/engine/timer_wheel.cpp.o.d"
  "/root/repo/src/fab/fab.cpp" "CMakeFiles/fastbft.dir/src/fab/fab.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/fab/fab.cpp.o.d"
  "/root/repo/src/net/sim_network.cpp" "CMakeFiles/fastbft.dir/src/net/sim_network.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/net/sim_network.cpp.o.d"
  "/root/repo/src/net/stats.cpp" "CMakeFiles/fastbft.dir/src/net/stats.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/net/stats.cpp.o.d"
  "/root/repo/src/net/threaded_network.cpp" "CMakeFiles/fastbft.dir/src/net/threaded_network.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/net/threaded_network.cpp.o.d"
  "/root/repo/src/net/transport.cpp" "CMakeFiles/fastbft.dir/src/net/transport.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/net/transport.cpp.o.d"
  "/root/repo/src/pbft/pbft.cpp" "CMakeFiles/fastbft.dir/src/pbft/pbft.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/pbft/pbft.cpp.o.d"
  "/root/repo/src/roles/separated.cpp" "CMakeFiles/fastbft.dir/src/roles/separated.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/roles/separated.cpp.o.d"
  "/root/repo/src/runtime/cluster.cpp" "CMakeFiles/fastbft.dir/src/runtime/cluster.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/runtime/cluster.cpp.o.d"
  "/root/repo/src/runtime/node.cpp" "CMakeFiles/fastbft.dir/src/runtime/node.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/runtime/node.cpp.o.d"
  "/root/repo/src/runtime/threaded_cluster.cpp" "CMakeFiles/fastbft.dir/src/runtime/threaded_cluster.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/runtime/threaded_cluster.cpp.o.d"
  "/root/repo/src/runtime/threaded_smr_cluster.cpp" "CMakeFiles/fastbft.dir/src/runtime/threaded_smr_cluster.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/runtime/threaded_smr_cluster.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "CMakeFiles/fastbft.dir/src/sim/random.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/sim/random.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "CMakeFiles/fastbft.dir/src/sim/scheduler.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/sim/scheduler.cpp.o.d"
  "/root/repo/src/smr/batch.cpp" "CMakeFiles/fastbft.dir/src/smr/batch.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/smr/batch.cpp.o.d"
  "/root/repo/src/smr/client.cpp" "CMakeFiles/fastbft.dir/src/smr/client.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/smr/client.cpp.o.d"
  "/root/repo/src/smr/command.cpp" "CMakeFiles/fastbft.dir/src/smr/command.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/smr/command.cpp.o.d"
  "/root/repo/src/smr/kvstore.cpp" "CMakeFiles/fastbft.dir/src/smr/kvstore.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/smr/kvstore.cpp.o.d"
  "/root/repo/src/smr/smr_node.cpp" "CMakeFiles/fastbft.dir/src/smr/smr_node.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/smr/smr_node.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "CMakeFiles/fastbft.dir/src/trace/trace.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/trace/trace.cpp.o.d"
  "/root/repo/src/viewsync/synchronizer.cpp" "CMakeFiles/fastbft.dir/src/viewsync/synchronizer.cpp.o" "gcc" "CMakeFiles/fastbft.dir/src/viewsync/synchronizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
