file(REMOVE_RECURSE
  "CMakeFiles/test_threaded.dir/tests/test_threaded.cpp.o"
  "CMakeFiles/test_threaded.dir/tests/test_threaded.cpp.o.d"
  "tests/test_threaded"
  "tests/test_threaded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threaded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
