file(REMOVE_RECURSE
  "CMakeFiles/test_messages.dir/tests/test_messages.cpp.o"
  "CMakeFiles/test_messages.dir/tests/test_messages.cpp.o.d"
  "tests/test_messages"
  "tests/test_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
