# Empty compiler generated dependencies file for kv_replication.
# This may be replaced when dependencies are built.
