file(REMOVE_RECURSE
  "CMakeFiles/kv_replication.dir/examples/kv_replication.cpp.o"
  "CMakeFiles/kv_replication.dir/examples/kv_replication.cpp.o.d"
  "examples/kv_replication"
  "examples/kv_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
