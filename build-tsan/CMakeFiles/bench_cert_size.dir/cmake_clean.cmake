file(REMOVE_RECURSE
  "CMakeFiles/bench_cert_size.dir/bench/bench_cert_size.cpp.o"
  "CMakeFiles/bench_cert_size.dir/bench/bench_cert_size.cpp.o.d"
  "CMakeFiles/bench_cert_size.dir/bench/bench_util.cpp.o"
  "CMakeFiles/bench_cert_size.dir/bench/bench_util.cpp.o.d"
  "bench/bench_cert_size"
  "bench/bench_cert_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cert_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
