file(REMOVE_RECURSE
  "CMakeFiles/bench_resilience_table.dir/bench/bench_resilience_table.cpp.o"
  "CMakeFiles/bench_resilience_table.dir/bench/bench_resilience_table.cpp.o.d"
  "CMakeFiles/bench_resilience_table.dir/bench/bench_util.cpp.o"
  "CMakeFiles/bench_resilience_table.dir/bench/bench_util.cpp.o.d"
  "bench/bench_resilience_table"
  "bench/bench_resilience_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resilience_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
