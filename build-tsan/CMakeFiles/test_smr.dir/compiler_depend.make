# Empty compiler generated dependencies file for test_smr.
# This may be replaced when dependencies are built.
