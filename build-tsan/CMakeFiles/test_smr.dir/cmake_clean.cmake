file(REMOVE_RECURSE
  "CMakeFiles/test_smr.dir/tests/test_smr.cpp.o"
  "CMakeFiles/test_smr.dir/tests/test_smr.cpp.o.d"
  "tests/test_smr"
  "tests/test_smr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
