file(REMOVE_RECURSE
  "CMakeFiles/bench_smr_throughput.dir/bench/bench_smr_throughput.cpp.o"
  "CMakeFiles/bench_smr_throughput.dir/bench/bench_smr_throughput.cpp.o.d"
  "CMakeFiles/bench_smr_throughput.dir/bench/bench_util.cpp.o"
  "CMakeFiles/bench_smr_throughput.dir/bench/bench_util.cpp.o.d"
  "bench/bench_smr_throughput"
  "bench/bench_smr_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smr_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
