# Empty compiler generated dependencies file for bench_smr_throughput.
# This may be replaced when dependencies are built.
