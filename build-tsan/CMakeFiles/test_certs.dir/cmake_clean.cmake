file(REMOVE_RECURSE
  "CMakeFiles/test_certs.dir/tests/test_certs.cpp.o"
  "CMakeFiles/test_certs.dir/tests/test_certs.cpp.o.d"
  "tests/test_certs"
  "tests/test_certs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_certs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
