# Empty dependencies file for test_certs.
# This may be replaced when dependencies are built.
