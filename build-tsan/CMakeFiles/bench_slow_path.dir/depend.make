# Empty dependencies file for bench_slow_path.
# This may be replaced when dependencies are built.
