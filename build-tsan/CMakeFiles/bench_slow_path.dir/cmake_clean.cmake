file(REMOVE_RECURSE
  "CMakeFiles/bench_slow_path.dir/bench/bench_slow_path.cpp.o"
  "CMakeFiles/bench_slow_path.dir/bench/bench_slow_path.cpp.o.d"
  "CMakeFiles/bench_slow_path.dir/bench/bench_util.cpp.o"
  "CMakeFiles/bench_slow_path.dir/bench/bench_util.cpp.o.d"
  "bench/bench_slow_path"
  "bench/bench_slow_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slow_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
