file(REMOVE_RECURSE
  "CMakeFiles/bench_protocol_comparison.dir/bench/bench_protocol_comparison.cpp.o"
  "CMakeFiles/bench_protocol_comparison.dir/bench/bench_protocol_comparison.cpp.o.d"
  "CMakeFiles/bench_protocol_comparison.dir/bench/bench_util.cpp.o"
  "CMakeFiles/bench_protocol_comparison.dir/bench/bench_util.cpp.o.d"
  "bench/bench_protocol_comparison"
  "bench/bench_protocol_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocol_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
