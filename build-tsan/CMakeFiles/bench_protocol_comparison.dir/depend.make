# Empty dependencies file for bench_protocol_comparison.
# This may be replaced when dependencies are built.
