file(REMOVE_RECURSE
  "CMakeFiles/test_threaded_smr.dir/tests/test_threaded_smr.cpp.o"
  "CMakeFiles/test_threaded_smr.dir/tests/test_threaded_smr.cpp.o.d"
  "tests/test_threaded_smr"
  "tests/test_threaded_smr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threaded_smr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
