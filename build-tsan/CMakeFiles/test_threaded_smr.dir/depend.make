# Empty dependencies file for test_threaded_smr.
# This may be replaced when dependencies are built.
