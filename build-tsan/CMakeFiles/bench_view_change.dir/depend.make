# Empty dependencies file for bench_view_change.
# This may be replaced when dependencies are built.
