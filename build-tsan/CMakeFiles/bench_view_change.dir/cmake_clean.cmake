file(REMOVE_RECURSE
  "CMakeFiles/bench_view_change.dir/bench/bench_util.cpp.o"
  "CMakeFiles/bench_view_change.dir/bench/bench_util.cpp.o.d"
  "CMakeFiles/bench_view_change.dir/bench/bench_view_change.cpp.o"
  "CMakeFiles/bench_view_change.dir/bench/bench_view_change.cpp.o.d"
  "bench/bench_view_change"
  "bench/bench_view_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_view_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
