# Empty dependencies file for test_replica.
# This may be replaced when dependencies are built.
