file(REMOVE_RECURSE
  "CMakeFiles/test_replica.dir/tests/test_replica.cpp.o"
  "CMakeFiles/test_replica.dir/tests/test_replica.cpp.o.d"
  "tests/test_replica"
  "tests/test_replica.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
