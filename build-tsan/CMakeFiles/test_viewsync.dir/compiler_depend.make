# Empty compiler generated dependencies file for test_viewsync.
# This may be replaced when dependencies are built.
