file(REMOVE_RECURSE
  "CMakeFiles/test_viewsync.dir/tests/test_viewsync.cpp.o"
  "CMakeFiles/test_viewsync.dir/tests/test_viewsync.cpp.o.d"
  "tests/test_viewsync"
  "tests/test_viewsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_viewsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
