file(REMOVE_RECURSE
  "CMakeFiles/message_flow.dir/examples/message_flow.cpp.o"
  "CMakeFiles/message_flow.dir/examples/message_flow.cpp.o.d"
  "examples/message_flow"
  "examples/message_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
