# Empty dependencies file for message_flow.
# This may be replaced when dependencies are built.
