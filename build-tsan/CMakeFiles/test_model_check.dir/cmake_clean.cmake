file(REMOVE_RECURSE
  "CMakeFiles/test_model_check.dir/tests/test_model_check.cpp.o"
  "CMakeFiles/test_model_check.dir/tests/test_model_check.cpp.o.d"
  "tests/test_model_check"
  "tests/test_model_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
