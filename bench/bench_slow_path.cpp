#include "bench_util.hpp"

/// Experiment E5 (DESIGN.md §5): the slow path of Appendix A (paper
/// Fig. 5). With n = 3f + 2t - 1, the protocol decides in:
///   2 delays (fast path)  when actual faults <= t,
///   3 delays (slow path)  when t < actual faults <= f,
/// without any view change in either case.

namespace fastbft::bench {
namespace {

void fault_sweep() {
  header("E5: actual faults vs path taken (f = 3, t = 1, n = 3f+2t-1 = 10)");
  row("%-14s %-10s %-12s %-12s", "actual faults", "delays", "path", "view");
  const std::uint32_t f = 3, t = 1;
  const std::uint32_t n = consensus::QuorumConfig::min_processes(f, t);
  for (std::uint32_t faults = 0; faults <= f; ++faults) {
    Scenario s;
    s.n = n;
    s.f = f;
    s.t = t;
    for (std::uint32_t i = 0; i < faults; ++i) {
      s.crashes.push_back({n - 1 - i, 0});  // non-leaders, dead from start
    }
    RunMetrics m = run_scenario(s);
    row("%-14u %-10.1f %-12s %-12llu", faults, m.delays,
        m.any_slow_path ? "slow (3-step)" : "fast (2-step)",
        static_cast<unsigned long long>(m.max_view));
  }
}

void crossover_grid() {
  header("E5b: path crossover across (f, t) grids, faults = t and t + 1");
  row("%-4s %-4s %-4s %-18s %-18s", "f", "t", "n", "faults=t", "faults=t+1");
  for (std::uint32_t f = 2; f <= 4; ++f) {
    for (std::uint32_t t = 1; t < f; ++t) {
      std::uint32_t n = consensus::QuorumConfig::min_processes(f, t);
      auto run_with = [&](std::uint32_t faults) {
        Scenario s;
        s.n = n;
        s.f = f;
        s.t = t;
        for (std::uint32_t i = 0; i < faults; ++i) {
          s.crashes.push_back({n - 1 - i, 0});
        }
        RunMetrics m = run_scenario(s);
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.1f (%s)", m.delays,
                      m.any_slow_path ? "slow" : "fast");
        return std::string(buf);
      };
      row("%-4u %-4u %-4u %-18s %-18s", f, t, n, run_with(t).c_str(),
          run_with(t + 1).c_str());
    }
  }
}

void slow_path_traffic() {
  header("E5c: traffic overhead of the slow path (f = 2, t = 1, n = 7)");
  row("%-14s %-10s %-12s %-12s", "actual faults", "delays", "msgs", "bytes");
  for (std::uint32_t faults : {0u, 1u, 2u}) {
    Scenario s;
    s.n = 7;
    s.f = 2;
    s.t = 1;
    for (std::uint32_t i = 0; i < faults; ++i) {
      s.crashes.push_back({6 - i, 0});
    }
    RunMetrics m = run_scenario(s);
    row("%-14u %-10.1f %-12llu %-12llu", faults, m.delays,
        static_cast<unsigned long long>(m.messages),
        static_cast<unsigned long long>(m.bytes));
  }
}

}  // namespace
}  // namespace fastbft::bench

int main() {
  std::printf("bench_slow_path: experiment E5 — Appendix A slow path\n");
  fastbft::bench::fault_sweep();
  fastbft::bench::crossover_grid();
  fastbft::bench::slow_path_traffic();
  return 0;
}
