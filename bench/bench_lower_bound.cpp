#include <cstdio>

#include "adversary/lower_bound.hpp"
#include "roles/separated.hpp"

/// Experiment E7 (DESIGN.md §5): Theorem 4.5 made executable. The scripted
/// adversary (equivocating leader + colluding acker + delayed quorums +
/// crafted view change; see src/adversary/lower_bound.hpp) forces two
/// correct processes to decide different values at n = 3f + 2t - 2, and
/// provably cannot at n = 3f + 2t - 1.

int main() {
  using fastbft::adversary::run_lower_bound_attack;
  std::printf("bench_lower_bound: experiment E7 — tightness of the "
              "3f + 2t - 1 bound (f = t = 2)\n\n");
  std::printf("%-6s %-10s %-14s %-22s\n", "n", "vs bound", "view-2 value",
              "verdict");
  for (std::uint32_t n = 8; n <= 12; ++n) {
    auto outcome = run_lower_bound_attack(n);
    const char* vs = n < 9 ? "bound-1" : (n == 9 ? "= bound" : "> bound");
    std::printf("%-6u %-10s %-14s %-22s\n", n, vs,
                outcome.view2_value.to_string().c_str(),
                outcome.disagreement ? "DISAGREEMENT (broken)"
                                     : "agreement preserved");
  }

  std::printf("\nDetailed transcript at n = 8 (one below the bound):\n%s",
              run_lower_bound_attack(8).describe().c_str());
  std::printf("\nDetailed transcript at n = 9 (the paper's bound):\n%s",
              run_lower_bound_attack(9).describe().c_str());

  // --- Section 4.4: the separated proposer/acceptor model ------------------
  std::printf("\nE7b: separated proposers/acceptors (Section 4.4) — there "
              "FaB's 3f + 2t + 1 IS optimal (f = t = 1)\n\n");
  std::printf("%-6s %-12s %-22s\n", "m", "vs FaB bound", "verdict");
  for (std::uint32_t m = 5; m <= 8; ++m) {
    auto outcome = fastbft::roles::run_separated_attack(m);
    const char* vs = m < 6 ? "bound-1" : (m == 6 ? "= bound" : "> bound");
    std::printf("%-6u %-12s %-22s\n", m, vs,
                outcome.disagreement ? "DISAGREEMENT (broken)"
                                     : "agreement preserved");
  }
  std::printf("\nDetailed transcript at m = 5 acceptors:\n%s",
              fastbft::roles::run_separated_attack(5).describe().c_str());
  std::printf(
      "\nThe contrast in one line: merged roles (this paper) decide fast and\n"
      "safely with 3f+2t-1 = 4 processes; the separated model cannot do it\n"
      "with fewer than 3f+2t+1 = 6 acceptors, because a Byzantine proposer\n"
      "is not an acceptor whose vote the recovery could exclude.\n");
  return 0;
}
