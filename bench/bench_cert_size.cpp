#include "bench_util.hpp"

/// Experiment E4 (DESIGN.md §5): progress certificates stay O(f) bytes
/// regardless of how many views have passed — the point of the extra
/// CertReq/CertAck round-trip in Section 3.2. Three series:
///
///  1. measured: the largest certificate any replica accepted, after k
///     consecutive view changes (k dead leaders) — flat in k;
///  2. analytic naive variant (Section 3.2's rejected design: the
///     certificate is the raw n-f vote set, each vote nesting the previous
///     view's certificate; with the careful linear implementation) — grows
///     linearly with the view number;
///  3. FaB-style justification (the n-f signed reports shipped inside every
///     recovery proposal) — flat but O(n), vs our O(f).

namespace fastbft::bench {
namespace {

/// Serialized size of one vote record carrying a value but an *empty*
/// certificate — the per-view increment of the naive scheme.
std::size_t naive_vote_bytes(std::uint32_t) {
  consensus::VoteRecord record;
  record.voter = 0;
  record.vote = consensus::Vote::of(Value::of_string("value-x"), 2,
                                    consensus::ProgressCert{},
                                    crypto::Signature{Bytes(32, 0)});
  record.phi = crypto::Signature{Bytes(32, 0)};
  Encoder enc;
  record.encode(enc);
  return enc.size();
}

/// Linear-growth model of the naive certificate: cert(v) carries n-f votes
/// and one nested cert from the previous view (the careful implementation
/// the paper mentions; the uncareful one is exponential).
std::size_t naive_cert_bytes(std::uint32_t n, std::uint32_t f, View v) {
  std::size_t per_view = (n - f) * naive_vote_bytes(n) + 8;
  return static_cast<std::size_t>(v) * per_view;
}

/// FaB justification: n - f signed reports inside every recovery proposal.
std::size_t fab_justification_bytes(std::uint32_t n, std::uint32_t f) {
  fab::FabVoteRecord record;
  record.voter = 0;
  record.accepted = fab::AcceptedEntry{Value::of_string("value-x"), 2,
                                       crypto::Signature{Bytes(32, 0)}};
  record.phi = crypto::Signature{Bytes(32, 0)};
  Encoder enc;
  record.encode(enc);
  return (n - f) * enc.size();
}

void measured_vs_naive() {
  header("E4: certificate bytes after k view changes (f = 2, t = 2, n = 9)");
  const std::uint32_t n = 9, f = 2;
  row("%-6s %-22s %-22s %-20s", "view", "ours (measured bytes)",
      "naive model (bytes)", "FaB just. (bytes)");
  for (std::uint32_t k = 1; k <= 4; ++k) {
    Scenario s;
    s.n = n;
    s.f = s.t = f;
    // k dead leaders force the decision into view k+1, so the accepted
    // proposal carries a certificate created in view k+1.
    for (std::uint32_t i = 0; i < std::min(k, f); ++i) {
      s.crashes.push_back({i, 0});
    }
    // Beyond f crashes we cannot add more faults; emulate deeper views by
    // noting the measured size is already view-independent (constant rows).
    RunMetrics m = run_scenario(s);
    View v = m.max_view;
    row("%-6llu %-22zu %-22zu %-20zu", static_cast<unsigned long long>(v),
        m.max_cert_bytes, naive_cert_bytes(n, f, v),
        fab_justification_bytes(fab::FabConfig::min_processes(f, f), f));
  }
  row("%s", "");
  row("%s", "naive model extrapolated to deep views (the asymptotic gap):");
  row("%-8s %-22s %-22s", "view", "ours (f+1 sigs)", "naive model");
  Scenario base;
  base.n = n;
  base.f = base.t = f;
  base.crashes.push_back({0, 0});
  RunMetrics m = run_scenario(base);
  for (View v : {10u, 100u, 1000u, 10000u}) {
    row("%-8llu %-22zu %-22zu", static_cast<unsigned long long>(v),
        m.max_cert_bytes, naive_cert_bytes(n, f, v));
  }
}

void cert_bytes_by_f() {
  header("E4b: our certificate size scales with f, not n or views");
  row("%-4s %-4s %-4s %-24s", "f", "t", "n", "measured cert bytes");
  for (std::uint32_t f = 1; f <= 4; ++f) {
    Scenario s;
    s.f = f;
    s.t = 1;
    s.n = consensus::QuorumConfig::min_processes(f, 1);
    s.crashes.push_back({0, 0});
    RunMetrics m = run_scenario(s);
    row("%-4u %-4u %-4u %-24zu", f, 1u, s.n, m.max_cert_bytes);
  }
}

}  // namespace
}  // namespace fastbft::bench

int main() {
  std::printf("bench_cert_size: experiment E4 — bounded progress "
              "certificates\n");
  fastbft::bench::measured_vs_naive();
  fastbft::bench::cert_bytes_by_f();
  return 0;
}
