#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "fab/fab.hpp"
#include "pbft/pbft.hpp"
#include "runtime/cluster.hpp"

/// \file bench_util.hpp
/// Shared helpers for the experiment binaries in bench/. Each binary
/// regenerates one experiment from DESIGN.md §5 and prints a table;
/// EXPERIMENTS.md records the output next to the paper's claims.

namespace fastbft::bench {

/// Metrics of one single-shot consensus run.
struct RunMetrics {
  bool decided = false;
  double delays = 0;            // latest correct decision, in Delta units
  std::uint64_t messages = 0;   // total messages sent cluster-wide
  std::uint64_t bytes = 0;      // total bytes sent cluster-wide
  View max_view = 0;            // highest view in which someone decided
  bool any_slow_path = false;
  std::size_t max_cert_bytes = 0;  // largest accepted progress certificate
};

enum class Protocol { Ours, OursVanilla, Fab, Pbft };

inline const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::Ours: return "ours(3f+2t-1)";
    case Protocol::OursVanilla: return "ours-vanilla(5f-1)";
    case Protocol::Fab: return "FaB(3f+2t+1)";
    case Protocol::Pbft: return "PBFT(3f+1)";
  }
  return "?";
}

/// Minimum cluster size for a protocol at (f, t).
inline std::uint32_t min_n(Protocol p, std::uint32_t f, std::uint32_t t) {
  switch (p) {
    case Protocol::Ours: return consensus::QuorumConfig::min_processes(f, t);
    case Protocol::OursVanilla:
      return consensus::QuorumConfig::min_processes(f, f);
    case Protocol::Fab: return fab::FabConfig::min_processes(f, t);
    case Protocol::Pbft: return 3 * f + 1;
  }
  return 0;
}

struct Scenario {
  Protocol protocol = Protocol::Ours;
  std::uint32_t n = 4, f = 1, t = 1;
  std::uint64_t seed = 1;
  /// Processes crashed at the given times before/at start.
  std::vector<std::pair<ProcessId, TimePoint>> crashes;
  /// Custom Byzantine replacements.
  std::vector<std::pair<ProcessId, runtime::ProcessFactory>> byzantine;
  Duration delta = 100;
  TimePoint gst = 0;
  TimePoint limit = 50'000'000;
};

/// Runs one single-shot consensus scenario to completion (all correct
/// processes decided) and collects metrics.
RunMetrics run_scenario(const Scenario& scenario);

/// printf-style row helper so the tables line up.
template <typename... Args>
void row(const char* fmt, Args... args) {
  std::printf(fmt, args...);
  std::printf("\n");
}

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace fastbft::bench
