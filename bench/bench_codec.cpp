#include <benchmark/benchmark.h>

#include "consensus/messages.hpp"
#include "runtime/cluster.hpp"
#include "runtime/threaded_cluster.hpp"
#include "smr/batch.hpp"

/// Experiment E9b (DESIGN.md §5): wall-clock cost of message
/// serialization/parsing and of the full simulation substrate (events/sec),
/// grounding the simulated-time results in real machine cost.

namespace fastbft::consensus {
namespace {

std::shared_ptr<const crypto::KeyStore> bench_keys() {
  static auto keys = std::make_shared<const crypto::KeyStore>(3, 16);
  return keys;
}

ProposeMsg make_propose() {
  auto keys = bench_keys();
  Value x = Value::of_string("a-realistic-command-batch-payload");
  ProposeMsg m;
  m.v = 9;
  m.x = x;
  for (ProcessId p = 0; p < 3; ++p) {
    m.sigma.acks.push_back(SignatureEntry{
        p, crypto::Signer(keys, p).sign(kDomCertAck, certack_preimage(x, 9))});
  }
  m.tau = crypto::Signer(keys, 0).sign(kDomPropose, propose_preimage(x, 9));
  return m;
}

void BM_SerializePropose(benchmark::State& state) {
  ProposeMsg m = make_propose();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.serialize());
  }
}
BENCHMARK(BM_SerializePropose);

void BM_ParsePropose(benchmark::State& state) {
  Bytes wire = make_propose().serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_message(wire));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_ParsePropose);

void BM_ParseAck(benchmark::State& state) {
  Bytes wire = AckMsg{4, Value::of_string("v")}.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_message(wire));
  }
}
BENCHMARK(BM_ParseAck);

void BM_EncodeBatch(benchmark::State& state) {
  std::vector<smr::Command> batch;
  for (int i = 0; i < 16; ++i) {
    batch.push_back(smr::Command::put("key" + std::to_string(i),
                                      "value" + std::to_string(i), 1,
                                      static_cast<std::uint64_t>(i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(smr::encode_batch(batch));
  }
}
BENCHMARK(BM_EncodeBatch);

void BM_DecodeBatch(benchmark::State& state) {
  // Exercises the nested zero-copy decode: batch -> per-command views.
  std::vector<smr::Command> batch;
  for (int i = 0; i < 16; ++i) {
    batch.push_back(smr::Command::put("key" + std::to_string(i),
                                      "value" + std::to_string(i), 1,
                                      static_cast<std::uint64_t>(i)));
  }
  Value wire = smr::encode_batch(batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(smr::decode_batch(wire));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_DecodeBatch);

void BM_ValidateVoteRecord(benchmark::State& state) {
  auto keys = bench_keys();
  auto cfg = QuorumConfig::create(7, 2, 1);
  crypto::Verifier verifier(keys);
  LeaderFn leader = round_robin_leader(7);
  Value x = Value::of_string("X");
  VoteRecord r;
  r.voter = 1;
  ProgressCert cert;
  for (ProcessId p = 0; p < cfg.cert_quorum(); ++p) {
    cert.acks.push_back(SignatureEntry{
        p, crypto::Signer(keys, p).sign(kDomCertAck, certack_preimage(x, 3))});
  }
  r.vote = Vote::of(x, 3, cert,
                    crypto::Signer(keys, leader(3))
                        .sign(kDomPropose, propose_preimage(x, 3)));
  r.phi = crypto::Signer(keys, 1).sign(kDomVote, vote_preimage(r.vote, r.cc, 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_vote_record(verifier, cfg, leader, r, 5));
  }
}
BENCHMARK(BM_ValidateVoteRecord);

void BM_FullConsensusSimulation(benchmark::State& state) {
  // Wall-clock cost of one complete simulated consensus instance
  // (n processes, no faults) — the substrate's events/sec grounding.
  const auto f = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t n = 5 * f - 1;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    runtime::ClusterOptions options;
    options.cfg = QuorumConfig::vanilla(n, f);
    options.net.delta = 100;
    options.net.min_delay = 100;
    options.net.seed = seed++;
    std::vector<Value> inputs(n, Value::of_string("in"));
    runtime::Cluster cluster(options, std::move(inputs));
    cluster.start();
    bool ok = cluster.run_until_all_correct_decided(10'000);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_FullConsensusSimulation)->Arg(1)->Arg(2)->Arg(4);


void BM_ThreadedConsensus(benchmark::State& state) {
  // Wall-clock latency of one consensus instance over real OS threads
  // (net::ThreadedNetwork) — the non-simulated execution path.
  const auto f = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t n = 5 * f - 1;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto cfg = QuorumConfig::vanilla(n, f);
    std::vector<Value> inputs(n, Value::of_string("in"));
    runtime::ThreadedCluster cluster(cfg, std::move(inputs),
                                     ReplicaOptions{.slow_path = false},
                                     seed++);
    cluster.start();
    bool ok = cluster.wait_all_correct_decided(std::chrono::seconds(10));
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_ThreadedConsensus)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fastbft::consensus

BENCHMARK_MAIN();
