#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/histogram.hpp"
#include "net/stats.hpp"
#include "runtime/socket_smr.hpp"
#include "runtime/threaded_smr_cluster.hpp"
#include "smr/client.hpp"
#include "smr/service.hpp"
#include "smr/shard.hpp"
#include "smr/smr_node.hpp"

/// Experiment E8d (DESIGN.md §5): replicated state machine throughput on
/// top of the consensus core — decided commands per 1000 simulated Delta,
/// by batch size, cluster configuration and pipeline depth. A sequential
/// log (depth 1) pays ~2 message delays plus slot-turnaround per slot, so
/// batching is one throughput lever; the slot-multiplexed engine adds the
/// second: up to `pipeline_depth` slots run their fast paths concurrently
/// and a reorder buffer keeps the apply order sequential.
///
/// Experiment E9 repeats the pipeline-depth sweep on the threaded runtime
/// (runtime::ThreadedSmrCluster): real OS threads, steady-clock timers, a
/// fixed per-link delivery delay modelling a LAN — wall-clock seconds
/// instead of simulated Delta.
///
/// Experiment E11 is the client's-eye view: k concurrent ClientSessions
/// (smr::Service over the threaded runtime) run a closed loop with a
/// bounded in-flight window — a request completes only on f + 1 matching
/// signed replica replies, and its completion funds the next submission.
/// Unlike E9 (which counts replica-side applies), E11 pays the full
/// client path: gateway forwarding, execution, reply signing and quorum
/// verification per request.
///
/// Experiment E13 is the sharding sweep: one replica process hosts S
/// consensus groups over a hash-partitioned keyspace (SmrOptions::
/// num_groups), all sharing the node's verification cache and transport.
/// At a fixed per-group pipeline depth the in-flight slot budget scales
/// with S, so aggregate wall-clock throughput must too — the scale-out
/// lever once deepening a single log's pipeline saturates.
///
/// Experiment E14 is the open-loop latency harness: Poisson arrivals at a
/// TARGET rate through smr::ClientSession with an effectively unbounded
/// window — unlike E11's closed loop, a slow service does not slow the
/// arrival process down, so queueing shows up as completion latency
/// instead of silently lowering the offered load. Per-op latencies land in
/// a log-bucketed histogram (common/histogram.hpp) and each
/// (mode, rate) cell reports p50/p99/p999 — the latency-vs-offered-rate
/// curve, swept across static pipeline depths and the adaptive controller
/// (docs/ADAPTIVE.md, docs/PERFORMANCE.md).
///
/// Experiment E15 leaves shared memory entirely: the 4 replicas are
/// forked OS processes whose only channel is loopback TCP through
/// net::SocketNetwork (length-prefixed frames, epoll readiness loops,
/// writev coalescing), driven by in-process smr::ClientSessions. An
/// emulated one-way link delay (SocketNetworkConfig::tx_delay_us) stands
/// in for a real network RTT — the same technique as E9's link delay —
/// so the depth sweep exposes pipelining (depth d overlaps d slots' link
/// round-trips) instead of single-core scheduler noise.
///
/// Experiment E10 measures what KV snapshots buy under a crash/recover
/// schedule (docs/CATCHUP.md): without them, a crashed replica's frozen
/// watermark pins every survivor's decided-value retention from the crash
/// slot on (memory grows with traffic) and a state-free rejoiner can never
/// recover the pruned prefix; with them, retention stays bounded near one
/// snapshot interval and the rejoiner recovers by state transfer.

namespace fastbft::smr {
namespace {

/// Machine-readable record sink: every experiment row is also appended to
/// a JSON array (BENCH_smr.json) so the perf trajectory is tracked in the
/// repo and CI can diff runs against the committed baseline.
class BenchRecorder {
 public:
  /// `config` is a JSON object fragment like "\"n\":4,\"depth\":8".
  /// Rates that do not apply to an experiment are recorded as 0.
  void add(const char* experiment, const std::string& config,
           double cmds_per_sec, double cmds_per_kdelta, double wall_ms,
           std::uint64_t messages, std::uint64_t bytes, std::uint64_t allocs,
           std::uint64_t alloc_bytes) {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"experiment\": \"%s\", \"config\": {%s}, "
                  "\"cmds_per_sec\": %.1f, \"cmds_per_kdelta\": %.1f, "
                  "\"wall_ms\": %.2f, \"messages\": %llu, \"bytes\": %llu, "
                  "\"allocs\": %llu, \"alloc_bytes\": %llu}",
                  experiment, config.c_str(), cmds_per_sec, cmds_per_kdelta,
                  wall_ms, static_cast<unsigned long long>(messages),
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(allocs),
                  static_cast<unsigned long long>(alloc_bytes));
    records_.emplace_back(buf);
  }

  /// Latency-experiment row: completion-latency percentiles ride along as
  /// top-level fields so gating scripts can regress on p99 directly.
  void add_latency(const char* experiment, const std::string& config,
                   double cmds_per_sec, double wall_ms, double mean_us,
                   std::uint64_t p50_us, std::uint64_t p99_us,
                   std::uint64_t p999_us) {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"experiment\": \"%s\", \"config\": {%s}, "
                  "\"cmds_per_sec\": %.1f, \"wall_ms\": %.2f, "
                  "\"mean_us\": %.1f, \"p50_us\": %llu, \"p99_us\": %llu, "
                  "\"p999_us\": %llu}",
                  experiment, config.c_str(), cmds_per_sec, wall_ms, mean_us,
                  static_cast<unsigned long long>(p50_us),
                  static_cast<unsigned long long>(p99_us),
                  static_cast<unsigned long long>(p999_us));
    records_.emplace_back(buf);
  }

  bool write(const std::string& path, const std::string& label) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "{\n  \"schema\": \"fastbft-bench-smr-v1\",\n  \"run\": \""
        << label << "\",\n  \"records\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      out << records_[i] << (i + 1 < records_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
  }

 private:
  std::vector<std::string> records_;
};

BenchRecorder g_recorder;

struct ThroughputResult {
  double commands_per_kdelta = 0;
  Slot slots_used = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  double ticks_per_command = 0;
  std::uint32_t max_inflight_slots = 0;
  std::uint64_t payload_allocs = 0;
  std::uint64_t payload_alloc_bytes = 0;
};

ThroughputResult run_throughput(consensus::QuorumConfig cfg,
                                std::uint32_t batch, std::uint64_t commands,
                                std::uint64_t seed = 1,
                                std::uint32_t pipeline_depth = 1) {
  runtime::ClusterOptions options;
  options.cfg = cfg;
  options.net.delta = 100;
  options.net.min_delay = 100;
  options.net.seed = seed;

  std::vector<SmrNode*> nodes(cfg.n, nullptr);
  SmrOptions smr_options;
  smr_options.max_batch = batch;
  smr_options.target_commands = commands;
  smr_options.pipeline_depth = pipeline_depth;
  options.node_factory = [&nodes, smr_options](
                             const runtime::ProcessContext& ctx,
                             const runtime::NodeOptions&,
                             runtime::Node::DecideCallback) {
    auto node = std::make_unique<SmrNode>(ctx, smr_options, nullptr);
    nodes[ctx.id] = node.get();
    return node;
  };

  std::uint64_t allocs_before = net::PayloadStats::allocs();
  std::uint64_t alloc_bytes_before = net::PayloadStats::alloc_bytes();
  runtime::Cluster cluster(options,
                           std::vector<Value>(cfg.n, Value::of_string("x")));
  cluster.start();
  cluster.scheduler().schedule_at(0, [&] {
    for (std::uint64_t i = 1; i <= commands; ++i) {
      nodes[0]->submit(Command::put("key" + std::to_string(i % 64),
                                    "value-" + std::to_string(i), 1, i));
    }
  });

  // Run until every node applied everything (or a generous bound).
  TimePoint deadline = 50'000'000;
  while (cluster.scheduler().now() < deadline) {
    bool done = true;
    for (auto* node : nodes) {
      if (node->applied_commands() < commands) {
        done = false;
        break;
      }
    }
    if (done) break;
    if (!cluster.scheduler().step()) break;
  }

  ThroughputResult result;
  double time = static_cast<double>(cluster.scheduler().now());
  if (time > 0) {
    result.commands_per_kdelta =
        static_cast<double>(commands) / (time / (100.0 * 1000.0));
    result.ticks_per_command = time / static_cast<double>(commands);
  }
  result.slots_used = nodes[0]->current_slot();
  result.messages = cluster.network().stats().total_messages();
  result.bytes = cluster.network().stats().total_bytes();
  result.max_inflight_slots = cluster.network().stats().max_inflight_slots();
  result.payload_allocs = net::PayloadStats::allocs() - allocs_before;
  result.payload_alloc_bytes =
      net::PayloadStats::alloc_bytes() - alloc_bytes_before;
  return result;
}

std::string config_json(std::uint32_t n, std::uint32_t f, std::uint32_t t,
                        std::uint32_t batch, std::uint32_t depth,
                        std::uint64_t commands,
                        std::int64_t link_delay_us = -1) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "\"n\": %u, \"f\": %u, \"t\": %u, \"batch\": %u, "
                "\"depth\": %u, \"commands\": %llu, \"link_delay_us\": %lld",
                n, f, t, batch, depth,
                static_cast<unsigned long long>(commands),
                static_cast<long long>(link_delay_us));
  return buf;
}

void pipeline_sweep() {
  std::printf("\n=== E8g: SMR throughput by pipeline depth (n = 4, "
              "f = t = 1, batch = 8, 400 commands) ===\n");
  std::printf("%-8s %-18s %-10s %-12s %-16s %-10s\n", "depth",
              "cmds/1000delta", "slots", "msgs", "delta/command",
              "inflight");
  double baseline = 0;
  for (std::uint32_t depth : {1u, 2u, 4u, 8u}) {
    auto cfg = consensus::QuorumConfig::create(4, 1, 1);
    auto r = run_throughput(cfg, 8, 400, /*seed=*/1, depth);
    if (depth == 1) baseline = r.commands_per_kdelta;
    std::printf("%-8u %-18.1f %-10llu %-12llu %-16.2f %-10u\n", depth,
                r.commands_per_kdelta,
                static_cast<unsigned long long>(r.slots_used),
                static_cast<unsigned long long>(r.messages),
                r.ticks_per_command / 100.0, r.max_inflight_slots);
    g_recorder.add("E8g", config_json(4, 1, 1, 8, depth, 400), 0,
                   r.commands_per_kdelta, 0, r.messages, r.bytes,
                   r.payload_allocs, r.payload_alloc_bytes);
  }
  std::printf("(depth 1 is the pre-engine sequential control: %.1f "
              "cmds/1000delta; deeper windows overlap the 2-step fast "
              "paths of consecutive slots)\n", baseline);
}

void batch_sweep() {
  std::printf("\n=== E8d: SMR throughput by batch size (n = 4, f = t = 1, "
              "200 commands) ===\n");
  std::printf("%-8s %-18s %-10s %-12s %-16s\n", "batch", "cmds/1000delta",
              "slots", "msgs", "delta/command");
  for (std::uint32_t batch : {1u, 2u, 4u, 8u, 16u, 32u}) {
    auto cfg = consensus::QuorumConfig::create(4, 1, 1);
    auto r = run_throughput(cfg, batch, 200);
    std::printf("%-8u %-18.1f %-10llu %-12llu %-16.2f\n", batch,
                r.commands_per_kdelta,
                static_cast<unsigned long long>(r.slots_used),
                static_cast<unsigned long long>(r.messages),
                r.ticks_per_command / 100.0);
    g_recorder.add("E8d", config_json(4, 1, 1, batch, 1, 200), 0,
                   r.commands_per_kdelta, 0, r.messages, r.bytes,
                   r.payload_allocs, r.payload_alloc_bytes);
  }
}

void wall_clock_pipeline_sweep() {
  using namespace std::chrono;
  constexpr std::uint64_t kCommands = 400;
  constexpr auto kLinkDelay = microseconds(200);
  std::printf("\n=== E9: wall-clock SMR throughput by pipeline depth "
              "(threaded runtime, n = 4, f = t = 1, batch = 8, %llu "
              "commands, %lldus link delay) ===\n",
              static_cast<unsigned long long>(kCommands),
              static_cast<long long>(kLinkDelay.count()));
  std::printf("%-8s %-14s %-14s %-10s %-12s %-10s\n", "depth", "wall ms",
              "cmds/sec", "slots", "msgs", "speedup");
  double baseline_ms = 0;
  for (std::uint32_t depth : {1u, 2u, 4u, 8u}) {
    auto cfg = consensus::QuorumConfig::create(4, 1, 1);
    runtime::ThreadedSmrClusterOptions options;
    options.smr.max_batch = 8;
    options.smr.target_commands = kCommands;
    options.smr.pipeline_depth = depth;
    options.link_delay = kLinkDelay;
    runtime::ThreadedSmrCluster cluster(cfg, options);
    for (std::uint64_t i = 1; i <= kCommands; ++i) {
      cluster.submit(Command::put("key" + std::to_string(i % 64),
                                  "value-" + std::to_string(i), 1, i));
    }
    std::uint64_t allocs_before = net::PayloadStats::allocs();
    std::uint64_t alloc_bytes_before = net::PayloadStats::alloc_bytes();
    auto begin = steady_clock::now();
    cluster.start();
    bool done = cluster.wait_applied(kCommands, seconds(60));
    double ms = duration_cast<duration<double, std::milli>>(
                    steady_clock::now() - begin)
                    .count();
    cluster.stop();
    if (!done) {
      std::printf("%-8u (incomplete after 60s)\n", depth);
      continue;
    }
    if (depth == 1) baseline_ms = ms;
    std::printf("%-8u %-14.1f %-14.0f %-10llu %-12llu %-10.2f\n", depth, ms,
                static_cast<double>(kCommands) / (ms / 1000.0),
                static_cast<unsigned long long>(
                    cluster.node(0).current_slot()),
                static_cast<unsigned long long>(
                    cluster.delivered_messages()),
                baseline_ms > 0 ? baseline_ms / ms : 0.0);
    g_recorder.add(
        "E9",
        config_json(4, 1, 1, 8, depth, kCommands, kLinkDelay.count()),
        static_cast<double>(kCommands) / (ms / 1000.0), 0, ms,
        cluster.delivered_messages(), 0,
        net::PayloadStats::allocs() - allocs_before,
        net::PayloadStats::alloc_bytes() - alloc_bytes_before);
  }
  std::printf("(same engine code as E8g, hosted on OS threads via "
              "engine::ThreadedHost; depth > 1 overlaps real message "
              "round-trips instead of simulated ones)\n");
}

void snapshot_recovery_sweep() {
  using namespace std::chrono;
  constexpr std::uint64_t kTotal = 240;  // commands over the whole schedule
  std::printf("\n=== E10: snapshot state transfer under crash/recover "
              "(threaded runtime, n = 4, f = t = 1, batch = 1, depth = 4, "
              "%llu commands, crash p3 early, restart it late) ===\n",
              static_cast<unsigned long long>(kTotal));
  std::printf("%-10s %-12s %-11s %-11s %-10s %-14s %-12s\n", "interval",
              "crash slot", "recovered", "rejoin ms", "installs",
              "retained max", "floor p0");

  for (std::uint64_t interval : {0ull, 8ull, 32ull}) {
    auto cfg = consensus::QuorumConfig::create(4, 1, 1);
    runtime::ThreadedSmrClusterOptions options;
    options.smr.max_batch = 1;  // one slot per command: retention visible
    options.smr.pipeline_depth = 4;
    options.smr.target_commands = 0;  // keep gossip alive for the rejoiner
    options.smr.snapshot_interval = interval;
    options.link_delay = microseconds(100);
    runtime::ThreadedSmrCluster cluster(cfg, options);

    auto put = [](std::uint64_t i) {
      return Command::put("key" + std::to_string(i % 64),
                          "value-" + std::to_string(i), 1, i);
    };
    for (std::uint64_t i = 1; i <= kTotal / 2; ++i) cluster.submit(put(i));
    cluster.start();
    cluster.wait_applied(kTotal / 4, seconds(30));
    cluster.crash(3);
    Slot crash_slot = cluster.applied_slots(3).empty()
                          ? 1
                          : cluster.applied_slots(3).back();

    // Survivors keep deciding well past the crash point while p3 is down.
    for (std::uint64_t i = kTotal / 2 + 1; i <= kTotal; ++i) {
      cluster.submit(put(i), /*gateway=*/0);
    }
    bool survivors_done = cluster.wait_applied(kTotal, seconds(60));

    // Rejoin as a state-free fresh process. Without snapshots the pruned
    // prefix is unrecoverable, so bound the wait instead of hanging.
    auto begin = steady_clock::now();
    cluster.restart(3);
    bool recovered =
        survivors_done &&
        cluster.wait_applied(kTotal, interval == 0 ? seconds(3)
                                                   : seconds(60));
    double rejoin_ms = duration_cast<duration<double, std::milli>>(
                           steady_clock::now() - begin)
                           .count();
    std::uint64_t installs = cluster.snapshots_installed(3);
    cluster.stop();

    std::size_t retained_max = 0;
    for (ProcessId id = 0; id < 3; ++id) {
      retained_max = std::max(retained_max,
                              cluster.node(id).engine().catchup()
                                  .decided_count());
    }
    char rejoin[24];
    if (recovered) {
      std::snprintf(rejoin, sizeof(rejoin), "%.1f", rejoin_ms);
    } else {
      std::snprintf(rejoin, sizeof(rejoin), "(never)");
    }
    std::printf("%-10llu %-12llu %-11s %-11s %-10llu %-14zu %-12llu\n",
                static_cast<unsigned long long>(interval),
                static_cast<unsigned long long>(crash_slot),
                recovered ? "yes" : "no", rejoin,
                static_cast<unsigned long long>(installs), retained_max,
                static_cast<unsigned long long>(
                    cluster.node(0).engine().catchup().prune_floor()));
    char extra[160];
    std::snprintf(extra, sizeof(extra),
                  "\"interval\": %llu, \"recovered\": %s, "
                  "\"rejoin_ms\": %.1f, \"retained_max\": %zu",
                  static_cast<unsigned long long>(interval),
                  recovered ? "true" : "false", recovered ? rejoin_ms : -1.0,
                  retained_max);
    g_recorder.add("E10", extra, 0, 0, 0, 0, 0, 0, 0);
  }
  std::printf("(interval 0 = snapshots off: the crashed replica's frozen "
              "watermark pins retention at its crash slot and a fresh "
              "rejoiner can never recover the pruned prefix; with "
              "snapshots, retention stays near one interval and rejoin is "
              "a chunked state transfer)\n");
}

void closed_loop_client_sweep() {
  using namespace std::chrono;
  constexpr std::uint64_t kTotalOps = 400;
  constexpr auto kLinkDelay = microseconds(200);
  constexpr std::uint32_t kWindow = 8;
  std::printf("\n=== E11: closed-loop client sessions (threaded service, "
              "n = 4, f = t = 1, batch = 8, depth = 8, window = %u, %llu "
              "total ops, %lldus link delay) ===\n",
              kWindow, static_cast<unsigned long long>(kTotalOps),
              static_cast<long long>(kLinkDelay.count()));
  std::printf("%-10s %-14s %-14s %-12s %-12s\n", "sessions", "wall ms",
              "ops/sec", "completed", "failovers");
  for (std::uint32_t sessions : {1u, 2u, 4u}) {
    auto config = smr::ServiceConfig{}
                      .with_cluster(4, 1, 1)
                      .with_sessions(sessions)
                      .with_batch(8)
                      .with_pipeline_depth(8)
                      .with_window(kWindow)
                      .with_link_delay(kLinkDelay);
    auto service = make_threaded_service(config);
    service->start();
    const std::uint64_t per_session = kTotalOps / sessions;

    // Closed loop by construction: every session submits its full quota
    // up front, the session's bounded window keeps exactly kWindow
    // requests outstanding, and each completion dispatches the next from
    // the internal queue.
    auto begin = steady_clock::now();
    for (std::uint32_t s = 0; s < sessions; ++s) {
      for (std::uint64_t i = 1; i <= per_session; ++i) {
        service->session(s).put("key" + std::to_string(i % 64),
                                "value-" + std::to_string(i));
      }
    }
    auto all_completed = [&] {
      std::uint64_t done = 0;
      for (std::uint32_t s = 0; s < sessions; ++s) {
        done += service->session(s).completed();
      }
      return done >= per_session * sessions;
    };
    bool done = service->run_until(all_completed, 120'000ms);
    double ms = duration_cast<duration<double, std::milli>>(
                    steady_clock::now() - begin)
                    .count();
    std::uint64_t failovers = 0;
    for (std::uint32_t s = 0; s < sessions; ++s) {
      failovers += service->session(s).failovers();
    }
    service->stop();
    if (!done) {
      std::printf("%-10u (incomplete after 120s)\n", sessions);
      continue;
    }
    double ops_per_sec =
        static_cast<double>(per_session * sessions) / (ms / 1000.0);
    std::printf("%-10u %-14.1f %-14.0f %-12llu %-12llu\n", sessions, ms,
                ops_per_sec,
                static_cast<unsigned long long>(per_session * sessions),
                static_cast<unsigned long long>(failovers));
    char extra[224];
    std::snprintf(extra, sizeof(extra),
                  "\"n\": 4, \"f\": 1, \"t\": 1, \"batch\": 8, \"depth\": 8, "
                  "\"sessions\": %u, \"window\": %u, \"commands\": %llu, "
                  "\"link_delay_us\": %lld",
                  sessions, kWindow,
                  static_cast<unsigned long long>(per_session * sessions),
                  static_cast<long long>(kLinkDelay.count()));
    g_recorder.add("E11", extra, ops_per_sec, 0, ms, 0, 0, 0, 0);
  }
  std::printf("(every op pays the full client path: request -> gateway "
              "forward -> decide -> execute -> n signed replies -> f + 1 "
              "quorum check; compare E9, which meters replica-side "
              "applies only)\n");
}

// --- E14: open-loop latency harness ------------------------------------------

/// Pipelining modes the latency-vs-rate curve is swept across. The static
/// depths bracket the trade-off (shallow = low queueing, deep = high
/// saturation throughput); adaptive must find the best of both at run
/// time.
struct OpenLoopMode {
  const char* name;
  std::uint32_t depth;  // static depth, or max_depth when adaptive
  bool adaptive;
};

struct OpenLoopResult {
  bool drained = false;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t timeouts = 0;
  double achieved_per_sec = 0;
  double wall_ms = 0;
  double mean_us = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t p999_us = 0;
  std::uint32_t depth_end = 0;
  std::uint64_t backoffs = 0;
};

/// The adaptive controller's decision-latency budget (wall-clock µs).
/// Roughly 3x a healthy uncontended decision on this LAN model: deep
/// enough not to flap on noise, tight enough that a saturated delivery
/// thread (whose decision tail stretches far past it) forces a backoff.
constexpr Duration kAdaptiveTargetUs = 5'000;

OpenLoopResult run_open_loop(const OpenLoopMode& mode, double rate,
                             double duration_s) {
  using namespace std::chrono;
  constexpr std::uint32_t kSessions = 2;

  auto config = smr::ServiceConfig{}
                    .with_cluster(4, 1, 1)
                    .with_sessions(kSessions)
                    .with_batch(8)
                    // Open loop: the window must never backpressure the
                    // arrival process — queueing belongs in the latency
                    // numbers, not in a client-side throttle.
                    .with_window(1u << 20)
                    .with_link_delay(microseconds(200))
                    // Generous per-try timeout so overload shows up as
                    // latency, not as failover storms; the deadline still
                    // bounds every op so the drain terminates.
                    .with_request_timeout(500'000)
                    .with_deadline(5'000'000);
  if (mode.adaptive) {
    config.with_adaptive(kAdaptiveTargetUs, 1, mode.depth);
    // The tail-latency amplifier at deep windows is the reorder buffer: a
    // slot stalled in a view change parks every younger decision (and the
    // client replies behind them). Back off when more than half the
    // window is parked, well before the default of 2 x max_depth.
    config.smr.adaptive.backlog_target = mode.depth / 2;
    // A 100ms window holds ~250 decisions at these rates, so window p99
    // is a real quantile: the single outlier a lone view-change stall
    // leaves behind cannot move it, while a depth-8 convoy still
    // breaches immediately through the backlog high-water. (The default
    // 4x-target window holds so few samples that p99 == max, and the
    // controller would back off on every stall at every depth.)
    config.smr.adaptive.window = 100'000;
    // One convoy already costs ~50+ op tails, so react to every breached
    // window (the ssthresh cap keeps reactions from compounding), and
    // re-probe known-bad depths sparingly: a failed probe re-buys the
    // convoy the controller just paid to learn.
    config.smr.adaptive.breach_windows = 1;
    config.smr.adaptive.probe_windows = 30;  // ~3s between probes
  } else {
    config.with_pipeline_depth(mode.depth);
  }
  auto service = make_threaded_service(config);
  service->start();

  std::mutex mutex;
  Histogram latencies;  // µs, completed ops only
  std::uint64_t completed = 0, timeouts = 0;

  std::mt19937_64 rng(0xE14);
  std::exponential_distribution<double> interarrival(rate / 1e6);  // per µs

  auto begin = steady_clock::now();
  auto stop_at = begin + duration_cast<steady_clock::duration>(
                             duration<double>(duration_s));
  auto next = begin;
  std::uint64_t submitted = 0;
  while (steady_clock::now() < stop_at) {
    // Poisson arrivals with catch-up: a late wake-up submits the overdue
    // arrival immediately instead of rescheduling it, so the offered rate
    // holds even when sleep granularity is coarse.
    next += microseconds(static_cast<std::int64_t>(interarrival(rng)));
    std::this_thread::sleep_until(next);
    auto t0 = steady_clock::now();
    auto future = service->session(submitted % kSessions)
                      .put("key" + std::to_string(submitted % 64),
                           "value-" + std::to_string(submitted));
    future.on_ready([&mutex, &latencies, &completed, &timeouts,
                     t0](const Reply& reply) {
      auto us = duration_cast<microseconds>(steady_clock::now() - t0).count();
      std::lock_guard<std::mutex> lock(mutex);
      if (reply.timed_out()) {
        ++timeouts;
      } else {
        ++completed;
        latencies.record(static_cast<std::uint64_t>(us));
      }
    });
    ++submitted;
  }
  double offered_ms = duration_cast<duration<double, std::milli>>(
                          steady_clock::now() - begin)
                          .count();

  OpenLoopResult result;
  result.drained = service->run_until(
      [&] {
        std::lock_guard<std::mutex> lock(mutex);
        return completed + timeouts >= submitted;
      },
      60'000ms);
  auto stats = service->engine_stats(0);
  service->stop();

  std::lock_guard<std::mutex> lock(mutex);
  result.submitted = submitted;
  result.completed = completed;
  result.timeouts = timeouts;
  result.wall_ms = offered_ms;
  // Achieved throughput over the offered window (completions during the
  // drain tail belong to arrivals inside it).
  result.achieved_per_sec =
      offered_ms > 0 ? static_cast<double>(completed) / (offered_ms / 1000.0)
                     : 0;
  result.mean_us = latencies.mean();
  result.p50_us = latencies.quantile(0.50);
  result.p99_us = latencies.quantile(0.99);
  result.p999_us = latencies.quantile(0.999);
  result.depth_end = stats.effective_depth;
  result.backoffs = stats.adaptive_backoffs;
  return result;
}

void open_loop_latency_sweep(const std::vector<double>& rates,
                             double duration_s) {
  std::printf("\n=== E14: open-loop latency vs offered rate (threaded "
              "service, n = 4, f = t = 1, batch = 8, 2 sessions, 200us "
              "link delay, Poisson arrivals, %.1fs per cell, adaptive "
              "target %lldus) ===\n",
              duration_s, static_cast<long long>(kAdaptiveTargetUs));
  const OpenLoopMode modes[] = {
      {"static-d1", 1, false},
      {"static-d8", 8, false},
      {"adaptive", 8, true},
  };
  std::printf("%-11s %-9s %-10s %-9s %-9s %-9s %-9s %-6s %-9s\n", "mode",
              "rate/s", "ops/sec", "p50 us", "p99 us", "p999 us", "timeout",
              "depth", "backoffs");
  for (const auto& mode : modes) {
    for (double rate : rates) {
      auto r = run_open_loop(mode, rate, duration_s);
      if (!r.drained) {
        std::printf("%-11s %-9.0f (drain incomplete: %llu of %llu)\n",
                    mode.name, rate,
                    static_cast<unsigned long long>(r.completed + r.timeouts),
                    static_cast<unsigned long long>(r.submitted));
        continue;
      }
      std::printf("%-11s %-9.0f %-10.0f %-9llu %-9llu %-9llu %-6llu %-6u "
                  "%-9llu\n",
                  mode.name, rate, r.achieved_per_sec,
                  static_cast<unsigned long long>(r.p50_us),
                  static_cast<unsigned long long>(r.p99_us),
                  static_cast<unsigned long long>(r.p999_us),
                  static_cast<unsigned long long>(r.timeouts), r.depth_end,
                  static_cast<unsigned long long>(r.backoffs));
      char extra[320];
      std::snprintf(
          extra, sizeof(extra),
          "\"n\": 4, \"f\": 1, \"t\": 1, \"batch\": 8, \"sessions\": 2, "
          "\"link_delay_us\": 200, \"mode\": \"%s\", \"depth\": %u, "
          "\"rate\": %.0f, \"duration_ms\": %.0f, \"submitted\": %llu, "
          "\"completed\": %llu, \"timeouts\": %llu, \"depth_end\": %u, "
          "\"backoffs\": %llu",
          mode.name, mode.depth, rate, duration_s * 1000.0,
          static_cast<unsigned long long>(r.submitted),
          static_cast<unsigned long long>(r.completed),
          static_cast<unsigned long long>(r.timeouts), r.depth_end,
          static_cast<unsigned long long>(r.backoffs));
      g_recorder.add_latency("E14", extra, r.achieved_per_sec, r.wall_ms,
                             r.mean_us, r.p50_us, r.p99_us, r.p999_us);
    }
  }
  std::printf("(open loop: arrivals do NOT wait for completions, so "
              "overload surfaces as tail latency rather than a quietly "
              "lower offered rate; 'adaptive' sizes its pipeline depth at "
              "run time from decision latency — docs/ADAPTIVE.md)\n");
}

void sharded_group_sweep() {
  using namespace std::chrono;
  constexpr std::uint64_t kCommands = 400;
  constexpr auto kLinkDelay = microseconds(200);
  constexpr std::uint32_t kDepth = 2;
  std::printf("\n=== E13: sharded multi-group SMR throughput (threaded "
              "runtime, n = 4, f = t = 1, batch = 8, depth = %u, %llu "
              "commands, %lldus link delay) ===\n",
              kDepth, static_cast<unsigned long long>(kCommands),
              static_cast<long long>(kLinkDelay.count()));
  std::printf("%-8s %-14s %-14s %-14s %-12s %-10s\n", "shards", "wall ms",
              "cmds/sec", "group spread", "msgs", "speedup");
  auto key_of = [](std::uint64_t i) {
    return "key" + std::to_string(i % 64);
  };
  double baseline_ms = 0;
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    auto cfg = consensus::QuorumConfig::create(4, 1, 1);
    runtime::ThreadedSmrClusterOptions options;
    options.smr.max_batch = 8;
    options.smr.pipeline_depth = kDepth;
    options.smr.num_groups = shards;
    options.link_delay = kLinkDelay;
    // Keys hash unevenly across groups, so each group gets its own quota
    // (the shard map is the same pure function the replicas route by).
    std::vector<std::uint64_t> targets(shards, 0);
    for (std::uint64_t i = 1; i <= kCommands; ++i) {
      ++targets[shard_of(key_of(i), shards)];
    }
    options.smr.group_targets = targets;
    runtime::ThreadedSmrCluster cluster(cfg, options);
    for (std::uint64_t i = 1; i <= kCommands; ++i) {
      cluster.submit(Command::put(key_of(i), "value-" + std::to_string(i), 1,
                                  i));
    }
    auto begin = steady_clock::now();
    cluster.start();
    bool done = cluster.wait_applied(kCommands, seconds(60));
    double ms = duration_cast<duration<double, std::milli>>(
                    steady_clock::now() - begin)
                    .count();
    cluster.stop();
    if (!done) {
      std::printf("%-8u (incomplete after 60s)\n", shards);
      continue;
    }
    if (shards == 1) baseline_ms = ms;
    std::uint64_t min_share = kCommands, max_share = 0;
    for (std::uint64_t share : targets) {
      min_share = std::min(min_share, share);
      max_share = std::max(max_share, share);
    }
    char spread[24];
    std::snprintf(spread, sizeof(spread), "%llu..%llu",
                  static_cast<unsigned long long>(min_share),
                  static_cast<unsigned long long>(max_share));
    double cmds_per_sec = static_cast<double>(kCommands) / (ms / 1000.0);
    std::printf("%-8u %-14.1f %-14.0f %-14s %-12llu %-10.2f\n", shards, ms,
                cmds_per_sec, spread,
                static_cast<unsigned long long>(
                    cluster.delivered_messages()),
                baseline_ms > 0 ? baseline_ms / ms : 0.0);
    char extra[224];
    std::snprintf(extra, sizeof(extra),
                  "\"n\": 4, \"f\": 1, \"t\": 1, \"batch\": 8, \"depth\": %u, "
                  "\"shards\": %u, \"commands\": %llu, "
                  "\"link_delay_us\": %lld",
                  kDepth, shards, static_cast<unsigned long long>(kCommands),
                  static_cast<long long>(kLinkDelay.count()));
    g_recorder.add("E13", extra, cmds_per_sec, 0, ms,
                   cluster.delivered_messages(), 0, 0, 0);
  }
  std::printf("(one replica process hosts S independent consensus groups "
              "over a hash-partitioned keyspace; at fixed depth the "
              "in-flight slot budget scales with S, overlapping S times "
              "as many link round-trips — the aggregate-throughput lever "
              "when deepening one log's pipeline has run out)\n");
}

// --- E15: multi-process socket transport -------------------------------------

/// Seconds each E15 cell may take before the client gives up (the cell is
/// then reported incomplete instead of hanging the bench).
constexpr long kSocketCellTimeoutS = 60;

/// One E15 cell: a 4-replica cluster as 4 forked OS processes over
/// loopback TCP (net::SocketNetwork), driven by in-process client
/// sessions. Returns ops/sec, or 0 on an incomplete run.
struct SocketCell {
  std::uint32_t depth = 1;
  std::uint32_t batch = 1;
  std::uint32_t window = 1;     // per-session in-flight cap
  std::uint32_t sessions = 1;
  std::uint64_t ops = 400;
  Duration link_delay_us = 0;
  double wall_ms = 0;           // out
  std::uint64_t messages = 0;   // out: client-side frames in+out
};

volatile std::sig_atomic_t g_e15_child_stop = 0;

bool run_socket_cell(SocketCell& cell) {
  using namespace std::chrono;
  constexpr std::uint32_t kN = 4;
  const std::uint32_t clients = std::max(cell.sessions, 4u);

  // The parent pre-binds port-0 listeners and forks them to the replica
  // children (SocketPeer::adopted_listen_fd), so nobody races on ports
  // and the published peer table carries the real kernel-chosen ports.
  int listen_fds[kN];
  runtime::SocketClusterConfig config;
  config.cfg = consensus::QuorumConfig::create(kN, 1, 1);
  config.num_clients = clients;
  config.smr.pipeline_depth = cell.depth;
  config.smr.max_batch = cell.batch;
  config.tx_delay_us = cell.link_delay_us;
  config.peers.resize(kN + clients);
  for (std::uint32_t id = 0; id < kN; ++id) {
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) return false;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    socklen_t len = sizeof(addr);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), len) != 0 ||
        ::listen(fd, 128) != 0 ||
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      ::close(fd);
      return false;
    }
    listen_fds[id] = fd;
    config.peers[id].host = "127.0.0.1";
    config.peers[id].port = ntohs(addr.sin_port);
  }

  pid_t children[kN];
  for (std::uint32_t id = 0; id < kN; ++id) {
    pid_t pid = ::fork();
    if (pid == 0) {
      // Replica child: adopt our own listener, drop the siblings'.
      g_e15_child_stop = 0;
      std::signal(SIGTERM, [](int) { g_e15_child_stop = 1; });
      std::signal(SIGPIPE, SIG_IGN);
      runtime::SocketClusterConfig child_config = config;
      for (std::uint32_t other = 0; other < kN; ++other) {
        if (other != id) ::close(listen_fds[other]);
      }
      child_config.peers[id].adopted_listen_fd = listen_fds[id];
      {
        runtime::SocketSmrServer server(std::move(child_config), id);
        server.start();
        while (!g_e15_child_stop) {
          std::this_thread::sleep_for(milliseconds(10));
        }
        server.stop();
      }
      ::_exit(0);  // skip atexit/recorder in the child
    }
    children[id] = pid;
  }
  for (std::uint32_t id = 0; id < kN; ++id) ::close(listen_fds[id]);

  bool ok = false;
  {
    runtime::SocketClientOptions options;
    options.first_client_id = kN;
    options.sessions = cell.sessions;
    options.max_in_flight = cell.window;
    runtime::SocketSmrClient client(config, options);
    client.start();

    const auto t0 = steady_clock::now();
    for (std::uint64_t i = 0; i < cell.ops; ++i) {
      auto& session = client.session(static_cast<std::uint32_t>(
          i % cell.sessions));
      const std::string key = "key-" + std::to_string(i % 64);
      switch (i % 3) {
        case 0: session.put(key, "value-" + std::to_string(i)); break;
        case 1: session.get(key); break;
        default: session.put(key, "value-" + std::to_string(i)); break;
      }
    }
    const auto give_up = t0 + seconds(kSocketCellTimeoutS);
    while (client.completed() < cell.ops && steady_clock::now() < give_up) {
      std::this_thread::sleep_for(milliseconds(2));
    }
    cell.wall_ms = duration_cast<duration<double, std::milli>>(
                       steady_clock::now() - t0)
                       .count();
    ok = client.completed() == cell.ops;
    const auto stats = client.socket_stats();
    cell.messages = stats.frames_in + stats.frames_out;
    client.stop();
  }

  for (pid_t pid : children) ::kill(pid, SIGTERM);
  for (pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  return ok;
}

void socket_transport_sweep() {
  constexpr Duration kLinkDelayUs = 1000;
  std::printf("\n=== E15: multi-process SMR over loopback TCP "
              "(net::SocketNetwork, n = 4 replica processes, f = t = 1, "
              "%lldus emulated link delay) ===\n",
              static_cast<long long>(kLinkDelayUs));

  // Depth sweep (E9's shape, real sockets): batch 1 and window = depth so
  // the pipeline is the ONLY lever — depth d overlaps d slots' worth of
  // link round-trips, so throughput must scale near-linearly until the
  // single-core CPU ceiling. perf_check.py gates depth8/depth1 >= 2x.
  std::printf("%-8s %-10s %-14s %-14s %-10s\n", "depth", "window",
              "wall ms", "ops/sec", "speedup");
  double depth1_rate = 0;
  for (std::uint32_t depth : {1u, 2u, 4u, 8u}) {
    SocketCell cell;
    cell.depth = depth;
    cell.batch = 1;
    cell.window = depth;
    cell.sessions = 1;
    cell.ops = 400;
    cell.link_delay_us = kLinkDelayUs;
    if (!run_socket_cell(cell)) {
      std::printf("%-8u (incomplete after %lds)\n", depth,
                  kSocketCellTimeoutS);
      continue;
    }
    const double rate =
        static_cast<double>(cell.ops) / (cell.wall_ms / 1000.0);
    if (depth == 1) depth1_rate = rate;
    std::printf("%-8u %-10u %-14.1f %-14.0f %-10.2f\n", depth, cell.window,
                cell.wall_ms, rate, depth1_rate > 0 ? rate / depth1_rate : 0);
    char extra[224];
    std::snprintf(extra, sizeof(extra),
                  "\"n\": 4, \"f\": 1, \"t\": 1, \"batch\": 1, "
                  "\"depth\": %u, \"window\": %u, \"sessions\": 1, "
                  "\"commands\": %llu, \"link_delay_us\": %lld",
                  depth, cell.window,
                  static_cast<unsigned long long>(cell.ops),
                  static_cast<long long>(kLinkDelayUs));
    g_recorder.add("E15", extra, rate, 0, cell.wall_ms, cell.messages, 0, 0,
                   0);
  }

  // Session sweep (E11's shape): k closed-loop sessions, each with its
  // own endpoint id and in-flight window, against a depth-8 batch-8
  // cluster — client-side concurrency as the aggregate-throughput lever.
  std::printf("%-10s %-14s %-14s %-10s\n", "sessions", "wall ms", "ops/sec",
              "speedup");
  double s1_rate = 0;
  for (std::uint32_t sessions : {1u, 2u, 4u, 8u}) {
    SocketCell cell;
    cell.depth = 8;
    cell.batch = 8;
    cell.window = 8;
    cell.sessions = sessions;
    cell.ops = 800;
    cell.link_delay_us = kLinkDelayUs;
    if (!run_socket_cell(cell)) {
      std::printf("%-10u (incomplete after %lds)\n", sessions,
                  kSocketCellTimeoutS);
      continue;
    }
    const double rate =
        static_cast<double>(cell.ops) / (cell.wall_ms / 1000.0);
    if (sessions == 1) s1_rate = rate;
    std::printf("%-10u %-14.1f %-14.0f %-10.2f\n", sessions, cell.wall_ms,
                rate, s1_rate > 0 ? rate / s1_rate : 0);
    char extra[224];
    std::snprintf(extra, sizeof(extra),
                  "\"n\": 4, \"f\": 1, \"t\": 1, \"batch\": 8, "
                  "\"depth\": 8, \"window\": 8, \"sessions\": %u, "
                  "\"commands\": %llu, \"link_delay_us\": %lld",
                  sessions, static_cast<unsigned long long>(cell.ops),
                  static_cast<long long>(kLinkDelayUs));
    g_recorder.add("E15", extra, rate, 0, cell.wall_ms, cell.messages, 0, 0,
                   0);
  }
  std::printf("(every replica is a separate OS process; all consensus and "
              "client traffic crosses real TCP sockets with length-prefixed "
              "frames, writev coalescing and a %lldus emulated one-way link "
              "delay — loopback RTTs alone are too far below real network "
              "RTTs for pipelining effects to rise above scheduler noise)\n",
              static_cast<long long>(kLinkDelayUs));
}

void cluster_size_sweep() {
  std::printf("\n=== E8e: SMR throughput by cluster config (batch = 8, "
              "100 commands) ===\n");
  std::printf("%-14s %-6s %-18s %-12s\n", "(f, t)", "n", "cmds/1000delta",
              "msgs");
  struct P {
    std::uint32_t f, t;
  };
  for (P p : {P{1, 1}, P{2, 1}, P{2, 2}, P{3, 1}}) {
    std::uint32_t n = consensus::QuorumConfig::min_processes(p.f, p.t);
    auto cfg = consensus::QuorumConfig::create(n, p.f, p.t);
    auto r = run_throughput(cfg, 8, 100);
    char label[16];
    std::snprintf(label, sizeof(label), "(%u, %u)", p.f, p.t);
    std::printf("%-14s %-6u %-18.1f %-12llu\n", label, n,
                r.commands_per_kdelta,
                static_cast<unsigned long long>(r.messages));
  }
}


void client_latency() {
  std::printf("\n=== E8f: client-perceived latency (f+1 replica reports), "
              "n = 4, f = t = 1 ===\n");
  std::printf("%-8s %-16s %-16s %-16s\n", "batch", "min (delta)",
              "median (delta)", "max (delta)");
  for (std::uint32_t batch : {1u, 8u}) {
    auto cfg = consensus::QuorumConfig::create(4, 1, 1);
    runtime::ClusterOptions options;
    options.cfg = cfg;
    options.net.delta = 100;
    options.net.min_delay = 100;

    std::vector<SmrNode*> nodes(4, nullptr);
    SmrOptions smr_options;
    smr_options.max_batch = batch;
    smr_options.target_commands = 40;
    std::unique_ptr<Client> client;
    options.node_factory = [&](const runtime::ProcessContext& ctx,
                               const runtime::NodeOptions&,
                               runtime::Node::DecideCallback) {
      if (!client) client = std::make_unique<Client>(1, cfg.f, *ctx.scheduler);
      auto node = std::make_unique<SmrNode>(ctx, smr_options,
                                            client->subscription());
      nodes[ctx.id] = node.get();
      return node;
    };
    runtime::Cluster cluster(options,
                             std::vector<Value>(4, Value::of_string("-")));
    cluster.start();
    cluster.scheduler().schedule_at(0, [&] {
      for (int i = 0; i < 40; ++i) {
        client->submit(*nodes[0], Command::put("k" + std::to_string(i), "v"));
      }
    });
    cluster.run_until(1'000'000);

    auto stats = client->latency_stats();
    if (!stats || !client->all_complete()) {
      std::printf("%-8u (incomplete)\n", batch);
      continue;
    }
    std::printf("%-8u %-16.1f %-16.1f %-16.1f\n", batch,
                static_cast<double>(stats->min) / 100.0,
                static_cast<double>(stats->median) / 100.0,
                static_cast<double>(stats->max) / 100.0);
  }
  std::printf("(a command waits for its slot: small batches mean long "
              "queues — the latency/throughput trade-off)\n");
}

}  // namespace
}  // namespace fastbft::smr

int main(int argc, char** argv) {
  // --only E9[,E8g,...] runs a subset (CI's perf smoke runs just E9);
  // --json PATH writes the machine-readable records (the default is
  // deliberately NOT the committed BENCH_smr.json, so a routine local run
  // cannot clobber the tracked baseline); --label NAME tags the run.
  // E14 controls: --rate R1[,R2,...] overrides the offered-rate sweep
  // (ops/sec), --duration SECONDS the per-cell measurement window, and
  // --open-loop is shorthand for --only E14.
  std::string only;
  std::string json_path = "bench_smr_out.json";
  std::string label = "local";
  std::vector<double> rates = {1000, 2500, 6000};
  double duration_s = 4.0;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return std::string(argv[++i]);
    };
    if (std::strcmp(argv[i], "--only") == 0) {
      only = need_value("--only");
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = need_value("--json");
    } else if (std::strcmp(argv[i], "--label") == 0) {
      label = need_value("--label");
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      rates.clear();
      std::string list = need_value("--rate");
      for (std::size_t pos = 0; pos < list.size();) {
        std::size_t comma = list.find(',', pos);
        rates.push_back(std::stod(list.substr(pos, comma - pos)));
        pos = comma == std::string::npos ? list.size() : comma + 1;
      }
    } else if (std::strcmp(argv[i], "--duration") == 0) {
      duration_s = std::stod(need_value("--duration"));
    } else if (std::strcmp(argv[i], "--open-loop") == 0) {
      if (only.empty()) only = "E14";
    } else {
      std::fprintf(stderr,
                   "usage: %s [--only E8d,E8g,E9,E10,E11,E13,E14,E15,E8e,E8f] "
                   "[--json PATH] [--label NAME] [--rate R1,R2,...] "
                   "[--duration SECONDS] [--open-loop]\n",
                   argv[0]);
      return 2;
    }
  }
  auto selected = [&](const char* experiment) {
    return only.empty() || only.find(experiment) != std::string::npos;
  };

  std::printf("bench_smr_throughput: experiment E8d/E8e — replicated KV "
              "store throughput\n");
  if (selected("E8d")) fastbft::smr::batch_sweep();
  if (selected("E8g")) fastbft::smr::pipeline_sweep();
  if (selected("E9")) fastbft::smr::wall_clock_pipeline_sweep();
  if (selected("E10")) fastbft::smr::snapshot_recovery_sweep();
  if (selected("E11")) fastbft::smr::closed_loop_client_sweep();
  if (selected("E13")) fastbft::smr::sharded_group_sweep();
  if (selected("E15")) fastbft::smr::socket_transport_sweep();
  if (selected("E14")) {
    fastbft::smr::open_loop_latency_sweep(rates, duration_s);
  }
  if (selected("E8e")) fastbft::smr::cluster_size_sweep();
  if (selected("E8f")) fastbft::smr::client_latency();

  if (!fastbft::smr::g_recorder.write(json_path, label)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\n[bench json written to %s]\n", json_path.c_str());
  return 0;
}
