#include "bench_util.hpp"

/// Experiment E8a (DESIGN.md §5): cross-protocol comparison. Two framings:
///  * equal guarantees — each protocol at its minimal n for the same (f, t);
///  * equal budget — a fixed fleet of n machines: what does each protocol
///    deliver with it?

namespace fastbft::bench {
namespace {

void equal_guarantees() {
  header("E8a: equal guarantees (f = t), minimal n per protocol");
  row("%-20s %-4s %-4s %-8s %-10s %-12s", "protocol", "f", "n", "delays",
      "msgs", "bytes");
  for (std::uint32_t f = 1; f <= 3; ++f) {
    for (Protocol p : {Protocol::OursVanilla, Protocol::Fab, Protocol::Pbft}) {
      Scenario s;
      s.protocol = p;
      s.f = f;
      s.t = p == Protocol::Pbft ? 1 : f;
      s.n = min_n(p, f, f);
      if (p == Protocol::Pbft) s.n = 3 * f + 1;
      RunMetrics m = run_scenario(s);
      row("%-20s %-4u %-4u %-8.1f %-10llu %-12llu", protocol_name(p), f, s.n,
          m.delays, static_cast<unsigned long long>(m.messages),
          static_cast<unsigned long long>(m.bytes));
    }
  }
}

void equal_budget() {
  header("E8b: equal budget — what 10 machines buy you");
  row("%-20s %-28s %-8s %-14s", "protocol", "guarantee", "delays",
      "delays(f faults)");
  struct Config {
    Protocol p;
    std::uint32_t f, t;
    const char* guarantee;
  };
  // n = 10 everywhere.
  for (const Config& c : {
           Config{Protocol::Ours, 3, 1, "f=3, fast while <=1 fault"},
           Config{Protocol::Ours, 2, 2, "f=2, fast while <=2 faults"},
           Config{Protocol::Fab, 2, 1, "f=2, fast while <=1 fault"},
           Config{Protocol::Pbft, 3, 1, "f=3, never 2-step"},
       }) {
    Scenario clean;
    clean.protocol = c.p;
    clean.n = 10;
    clean.f = c.f;
    clean.t = c.t;
    RunMetrics no_fault = run_scenario(clean);

    Scenario faulty = clean;
    for (std::uint32_t i = 0; i < c.f; ++i) {
      faulty.crashes.push_back({9 - i, 0});
    }
    faulty.limit = 3'000'000;
    RunMetrics with_faults = run_scenario(faulty);

    char faulty_col[32];
    if (with_faults.decided) {
      std::snprintf(faulty_col, sizeof(faulty_col), "%.1f", with_faults.delays);
    } else {
      std::snprintf(faulty_col, sizeof(faulty_col), "stalls*");
    }
    row("%-20s %-28s %-8.1f %-14s", protocol_name(c.p), c.guarantee,
        no_fault.delays, faulty_col);
  }
  row("%s", "");
  row("%s", "(the f-fault column shows degradation: ours falls back to the");
  row("%s", " 3-step slow path without extra processes; PBFT is always");
  row("%s", " 3-step but tolerates f=3 with 10 machines. *Our FaB");
  row("%s", " reimplementation omits FaB's separate 3-phase fallback, so it");
  row("%s", " cannot decide once more than t processes fail — full FaB");
  row("%s", " would fall back at the cost of extra phases.)");
}

void message_complexity() {
  header("E8c: common-case message complexity by cluster size (no faults)");
  row("%-6s %-22s %-22s %-22s", "n", "ours msgs(bytes)", "FaB msgs(bytes)",
      "PBFT msgs(bytes)");
  for (std::uint32_t f = 1; f <= 4; ++f) {
    auto fmt = [&](Protocol p, std::uint32_t n, std::uint32_t t) {
      Scenario s;
      s.protocol = p;
      s.n = n;
      s.f = f;
      s.t = t;
      RunMetrics m = run_scenario(s);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%llu (%llu)",
                    static_cast<unsigned long long>(m.messages),
                    static_cast<unsigned long long>(m.bytes));
      return std::string(buf);
    };
    std::uint32_t n_ours = 5 * f - 1;
    std::uint32_t n_fab = 5 * f + 1;
    std::uint32_t n_pbft = 3 * f + 1;
    char n_label[32];
    std::snprintf(n_label, sizeof(n_label), "f=%u", f);
    row("%-6s %-22s %-22s %-22s", n_label,
        fmt(Protocol::OursVanilla, n_ours, f).c_str(),
        fmt(Protocol::Fab, n_fab, f).c_str(),
        fmt(Protocol::Pbft, n_pbft, 1).c_str());
  }
}

}  // namespace
}  // namespace fastbft::bench

int main() {
  std::printf("bench_protocol_comparison: experiment E8 — ours vs FaB vs "
              "PBFT\n");
  fastbft::bench::equal_guarantees();
  fastbft::bench::equal_budget();
  fastbft::bench::message_complexity();
  return 0;
}
