#include "bench_util.hpp"

/// Ablation benches for the design choices DESIGN.md calls out:
///  A1 — CertReq fan-out: the paper's minimal 2f + 1 targets vs
///       broadcasting to all n (same liveness, different traffic);
///  A2 — slow path enabled vs disabled in the fault-free common case
///       (what the signed-ack machinery costs when it is not needed);
///  A3 — view-synchronizer base timeout vs dead-leader recovery latency
///       (the detection/stability trade-off behind the paper's "no view
///       change for >= 5 Delta after GST" requirement).

namespace fastbft::bench {
namespace {

RunMetrics run_with_options(std::uint32_t n, std::uint32_t f, std::uint32_t t,
                            consensus::ReplicaOptions replica,
                            viewsync::SynchronizerConfig sync,
                            std::vector<std::pair<ProcessId, TimePoint>>
                                crashes = {}) {
  runtime::ClusterOptions options;
  options.cfg = consensus::QuorumConfig::create(n, f, t);
  options.net.delta = 100;
  options.net.min_delay = 100;
  options.node.replica = replica;
  options.node.sync = sync;
  std::vector<Value> inputs;
  for (std::uint32_t i = 0; i < n; ++i) {
    inputs.push_back(Value::of_string("a" + std::to_string(i)));
  }
  runtime::Cluster cluster(options, std::move(inputs));
  for (auto [id, at] : crashes) cluster.crash_at(id, at);
  cluster.start();
  RunMetrics m;
  m.decided = cluster.run_until_all_correct_decided(10'000'000);
  m.delays = cluster.max_decision_delays();
  m.messages = cluster.network().stats().total_messages();
  m.bytes = cluster.network().stats().total_bytes();
  return m;
}

void a1_cert_req_fanout() {
  header("A1: CertReq fan-out — 2f+1 targets (paper) vs broadcast (n)");
  row("%-4s %-4s %-14s %-16s %-16s %-10s", "f", "n", "fanout", "msgs",
      "bytes", "delays");
  for (std::uint32_t f = 1; f <= 3; ++f) {
    std::uint32_t n = 5 * f - 1;
    for (bool broadcast : {false, true}) {
      consensus::ReplicaOptions replica;
      replica.slow_path = false;
      replica.cert_req_broadcast = broadcast;
      // Dead leader forces a view change, so the CertReq round runs.
      RunMetrics m = run_with_options(n, f, f, replica, {}, {{0, 0}});
      row("%-4u %-4u %-14s %-16llu %-16llu %-10.1f", f, n,
          broadcast ? "broadcast(n)" : "2f+1",
          static_cast<unsigned long long>(m.messages),
          static_cast<unsigned long long>(m.bytes), m.delays);
    }
  }
  row("%s", "(same recovery latency; the 2f+1 fan-out saves CertReq/CertAck");
  row("%s", " traffic exactly as Section 3.2 intends)");
}

void a2_slow_path_cost() {
  header("A2: slow path machinery cost in the fault-free common case");
  row("%-4s %-4s %-4s %-12s %-14s %-14s", "f", "t", "n", "slow path",
      "msgs", "bytes");
  for (std::uint32_t f = 1; f <= 3; ++f) {
    std::uint32_t t = 1;
    std::uint32_t n = consensus::QuorumConfig::min_processes(f, t);
    for (bool slow : {false, true}) {
      consensus::ReplicaOptions replica;
      replica.slow_path = slow;
      RunMetrics m = run_with_options(n, f, t, replica, {});
      row("%-4u %-4u %-4u %-12s %-14llu %-14llu", f, t, n,
          slow ? "enabled" : "disabled",
          static_cast<unsigned long long>(m.messages),
          static_cast<unsigned long long>(m.bytes));
    }
  }
  row("%s", "(the signed-ack broadcast roughly doubles common-case traffic —");
  row("%s", " the price of 3-step termination beyond t faults; disable it to");
  row("%s", " get the pure Section-3 protocol)");
}

void a3_timeout_tradeoff() {
  header("A3: synchronizer base timeout vs dead-leader recovery (f=1, n=4)");
  row("%-18s %-18s %-14s", "base timeout (xD)", "recovery (delays)", "msgs");
  for (Duration base : {400, 800, 1200, 2400, 4800}) {
    viewsync::SynchronizerConfig sync;
    sync.base_timeout = base;
    RunMetrics m = run_with_options(4, 1, 1, {}, sync, {{0, 0}});
    row("%-18.1f %-18.1f %-14llu", static_cast<double>(base) / 100.0,
        m.delays, static_cast<unsigned long long>(m.messages));
  }
  row("%s", "(shorter timeouts recover faster but a timeout below the");
  row("%s", " view-change duration (~6 delays) would churn views before a");
  row("%s", " correct leader can finish — the 5-Delta stability requirement)");
}

}  // namespace
}  // namespace fastbft::bench

int main() {
  std::printf("bench_ablation: design-choice ablations (DESIGN.md)\n");
  fastbft::bench::a1_cert_req_fanout();
  fastbft::bench::a2_slow_path_cost();
  fastbft::bench::a3_timeout_tradeoff();
  return 0;
}
