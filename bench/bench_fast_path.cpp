#include "bench_util.hpp"

/// Experiments E1 and E6 (DESIGN.md §5): the fast path decides in exactly
/// two message delays.
///
/// E1 — vanilla protocol, n = 5f - 1 (paper Fig. 1a, Section 3.1): with a
/// correct leader the protocol terminates in 2 message delays, both with
/// zero faults and with t processes crashing at Delta (the paper's T-faulty
/// two-step executions).
///
/// E6 — generalized protocol with t = 1 at optimal resilience n = 3f + 1
/// (Section 3.4): the first protocol to stay 2-step in the presence of a
/// single fault at n = 3f + 1.

namespace fastbft::bench {
namespace {

void e1_vanilla() {
  header("E1: vanilla protocol, n = 5f - 1, latency in message delays");
  row("%-4s %-4s %-14s %-16s %-10s %-10s", "f", "n", "faults", "delays(no-fault)",
      "delays(t@D)", "msgs(no-fault)");
  for (std::uint32_t f = 1; f <= 4; ++f) {
    std::uint32_t n = 5 * f - 1;
    Scenario clean;
    clean.protocol = Protocol::OursVanilla;
    clean.n = n;
    clean.f = clean.t = f;
    RunMetrics no_fault = run_scenario(clean);

    Scenario faulty = clean;
    // t crash-at-Delta faults among non-leaders: the paper's T-faulty
    // two-step execution shape.
    for (std::uint32_t i = 0; i < f; ++i) {
      faulty.crashes.push_back({n - 1 - i, faulty.delta});
    }
    RunMetrics with_faults = run_scenario(faulty);

    row("%-4u %-4u %-14s %-16.1f %-10.1f %-10llu", f, n,
        ("0 vs " + std::to_string(f) + "@D").c_str(), no_fault.delays,
        with_faults.delays,
        static_cast<unsigned long long>(no_fault.messages));
  }
}

void e6_optimal_resilience() {
  header("E6: generalized t = 1, n = 3f + 1 (optimal resilience, still fast)");
  row("%-4s %-4s %-18s %-18s", "f", "n", "delays(no-fault)",
      "delays(1 crash@D)");
  for (std::uint32_t f = 1; f <= 4; ++f) {
    std::uint32_t n = 3 * f + 1;
    Scenario clean;
    clean.n = n;
    clean.f = f;
    clean.t = 1;
    RunMetrics no_fault = run_scenario(clean);

    Scenario faulty = clean;
    faulty.crashes.push_back({n - 1, faulty.delta});
    RunMetrics with_fault = run_scenario(faulty);

    row("%-4u %-4u %-18.1f %-18.1f", f, n, no_fault.delays, with_fault.delays);
  }
}

void e1_general_grid() {
  header("E1b: generalized protocol, full (f, t) grid at n = 3f + 2t - 1");
  row("%-4s %-4s %-4s %-10s %-12s %-12s", "f", "t", "n", "delays",
      "msgs", "bytes");
  for (std::uint32_t f = 1; f <= 4; ++f) {
    for (std::uint32_t t = 1; t <= f; ++t) {
      Scenario s;
      s.n = consensus::QuorumConfig::min_processes(f, t);
      s.f = f;
      s.t = t;
      RunMetrics m = run_scenario(s);
      row("%-4u %-4u %-4u %-10.1f %-12llu %-12llu", f, t, s.n, m.delays,
          static_cast<unsigned long long>(m.messages),
          static_cast<unsigned long long>(m.bytes));
    }
  }
}

}  // namespace
}  // namespace fastbft::bench

int main() {
  std::printf("bench_fast_path: experiments E1/E6 — two-step latency\n");
  std::printf("(delays are simulated message delays; 2.0 = the paper's "
              "optimal two steps)\n");
  fastbft::bench::e1_vanilla();
  fastbft::bench::e6_optimal_resilience();
  fastbft::bench::e1_general_grid();
  return 0;
}
