#include "bench_util.hpp"

/// Experiment E2 (DESIGN.md §5): the resilience table of the paper's
/// introduction — how many processes each protocol needs for f Byzantine
/// faults while staying fast with up to t actual faults, and the measured
/// common-case latency at that minimal size.
///
///   ours:   n = 3f + 2t - 1   (this paper; 4 processes at f = t = 1)
///   FaB:    n = 3f + 2t + 1   (Martin & Alvisi; 6 processes at f = t = 1)
///   PBFT:   n = 3f + 1        (not fast: 3 message delays)

namespace fastbft::bench {
namespace {

void minimal_sizes() {
  header("E2: minimum processes for f-resilient t-fast consensus");
  row("%-4s %-4s %-16s %-16s %-12s", "f", "t", "ours(3f+2t-1)",
      "FaB(3f+2t+1)", "PBFT(3f+1)");
  for (std::uint32_t f = 1; f <= 5; ++f) {
    for (std::uint32_t t = 1; t <= f; ++t) {
      row("%-4u %-4u %-16u %-16u %-12u", f, t, min_n(Protocol::Ours, f, t),
          min_n(Protocol::Fab, f, t), min_n(Protocol::Pbft, f, t));
    }
  }
}

void measured_at_minimum() {
  header("E2b: measured latency and traffic at each protocol's minimal n");
  row("%-20s %-4s %-4s %-4s %-8s %-10s %-12s", "protocol", "f", "t", "n",
      "delays", "msgs", "bytes");
  for (std::uint32_t f = 1; f <= 3; ++f) {
    for (std::uint32_t t = 1; t <= f; ++t) {
      for (Protocol p : {Protocol::Ours, Protocol::Fab, Protocol::Pbft}) {
        Scenario s;
        s.protocol = p;
        s.f = f;
        // PBFT has no fast-path parameter; its QuorumConfig only needs
        // n >= 3f + 1, which holds with t = 1.
        s.t = p == Protocol::Pbft ? 1 : t;
        s.n = min_n(p, f, t);
        RunMetrics m = run_scenario(s);
        row("%-20s %-4u %-4u %-4u %-8.1f %-10llu %-12llu", protocol_name(p),
            f, t, s.n, m.delays, static_cast<unsigned long long>(m.messages),
            static_cast<unsigned long long>(m.bytes));
      }
    }
  }
}

void headline_f1t1() {
  header("E2c: the paper's headline — f = t = 1");
  row("%-20s %-4s %-8s %-40s", "protocol", "n", "delays", "note");
  {
    Scenario s;
    s.n = 4;
    RunMetrics m = run_scenario(s);
    row("%-20s %-4u %-8.1f %-40s", protocol_name(Protocol::Ours), 4u, m.delays,
        "optimal for ANY psync Byzantine consensus");
  }
  {
    Scenario s;
    s.protocol = Protocol::Fab;
    s.n = 6;
    RunMetrics m = run_scenario(s);
    row("%-20s %-4u %-8.1f %-40s", protocol_name(Protocol::Fab), 6u, m.delays,
        "two more processes for the same guarantee");
  }
  {
    Scenario s;
    s.protocol = Protocol::Pbft;
    s.n = 4;
    RunMetrics m = run_scenario(s);
    row("%-20s %-4u %-8.1f %-40s", protocol_name(Protocol::Pbft), 4u, m.delays,
        "optimal resilience but one extra delay");
  }
}

}  // namespace
}  // namespace fastbft::bench

int main() {
  std::printf("bench_resilience_table: experiment E2 — resilience vs speed\n");
  fastbft::bench::minimal_sizes();
  fastbft::bench::measured_at_minimum();
  fastbft::bench::headline_f1t1();
  return 0;
}
