#include <benchmark/benchmark.h>

#include "consensus/types.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

/// Experiment E9 (DESIGN.md §5): wall-clock microbenchmarks of the crypto
/// substrate — the per-message costs a deployment would pay.

namespace fastbft::crypto {
namespace {

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key(32, 0x11);
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_Sign(benchmark::State& state) {
  auto keys = std::make_shared<const KeyStore>(1, 4);
  Signer signer(keys, 0);
  Bytes msg(128, 0x22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer.sign("propose", msg));
  }
}
BENCHMARK(BM_Sign);

void BM_Verify(benchmark::State& state) {
  auto keys = std::make_shared<const KeyStore>(1, 4);
  Signer signer(keys, 0);
  Verifier verifier(keys);
  Bytes msg(128, 0x22);
  Signature sig = signer.sign("propose", msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.verify(0, "propose", msg, sig));
  }
}
BENCHMARK(BM_Verify);

void BM_VerifyDigest(benchmark::State& state) {
  // The hot-path form: the message was hashed once and the digest is
  // shared across signers — each check is a short constant-size MAC.
  auto keys = std::make_shared<const KeyStore>(1, 4);
  Signer signer(keys, 0);
  Verifier verifier(keys);
  Bytes msg(1024, 0x22);
  Digest digest = message_digest(msg);
  Signature sig = signer.sign_digest("propose", digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verifier.verify_digest(0, "propose", digest, sig));
  }
}
BENCHMARK(BM_VerifyDigest);

void BM_VerifyDigestMemoHit(benchmark::State& state) {
  auto keys = std::make_shared<const KeyStore>(1, 4);
  Signer signer(keys, 0);
  Verifier verifier(keys, std::make_shared<VerificationCache>());
  Bytes msg(1024, 0x22);
  Digest digest = message_digest(msg);
  Signature sig = signer.sign_digest("propose", digest);
  verifier.verify_digest_memo(0, "propose", digest, sig);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verifier.verify_digest_memo(0, "propose", digest, sig));
  }
}
BENCHMARK(BM_VerifyDigestMemoHit);

void BM_VerifyProgressCert(benchmark::State& state) {
  // Certificate verification cost by f (f+1 signature checks).
  const auto f = static_cast<std::uint32_t>(state.range(0));
  auto cfg = consensus::QuorumConfig::create(
      consensus::QuorumConfig::min_processes(f, 1), f, 1);
  auto keys = std::make_shared<const KeyStore>(1, cfg.n);
  Verifier verifier(keys);
  Value x = Value::of_string("value");
  consensus::ProgressCert cert;
  for (ProcessId p = 0; p < cfg.cert_quorum(); ++p) {
    cert.acks.push_back(consensus::SignatureEntry{
        p, Signer(keys, p).sign(consensus::kDomCertAck,
                                consensus::certack_preimage(x, 5))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        consensus::verify_progress_cert(verifier, cfg, x, 5, cert));
  }
}
BENCHMARK(BM_VerifyProgressCert)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_VerifyCommitCert(benchmark::State& state) {
  const auto f = static_cast<std::uint32_t>(state.range(0));
  auto cfg = consensus::QuorumConfig::create(
      consensus::QuorumConfig::min_processes(f, f), f, f);
  auto keys = std::make_shared<const KeyStore>(1, cfg.n);
  Verifier verifier(keys);
  Value x = Value::of_string("value");
  consensus::CommitCert cc;
  cc.x = x;
  cc.v = 5;
  for (ProcessId p = 0; p < cfg.commit_quorum(); ++p) {
    cc.sigs.push_back(consensus::SignatureEntry{
        p, Signer(keys, p).sign(consensus::kDomAck,
                                consensus::ack_preimage(x, 5))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(consensus::verify_commit_cert(verifier, cfg, cc));
  }
}
BENCHMARK(BM_VerifyCommitCert)->Arg(1)->Arg(2)->Arg(4);

void BM_VerifyCommitCertMemoHit(benchmark::State& state) {
  // Steady-state cost of re-verifying a certificate whose signatures were
  // all seen before (the engine wiring: one cache per node).
  const auto f = static_cast<std::uint32_t>(state.range(0));
  auto cfg = consensus::QuorumConfig::create(
      consensus::QuorumConfig::min_processes(f, f), f, f);
  auto keys = std::make_shared<const KeyStore>(1, cfg.n);
  Verifier verifier(keys, std::make_shared<VerificationCache>());
  Value x = Value::of_string("value");
  consensus::CommitCert cc;
  cc.x = x;
  cc.v = 5;
  for (ProcessId p = 0; p < cfg.commit_quorum(); ++p) {
    cc.sigs.push_back(consensus::SignatureEntry{
        p, Signer(keys, p).sign(consensus::kDomAck,
                                consensus::ack_preimage(x, 5))});
  }
  consensus::verify_commit_cert(verifier, cfg, cc);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(consensus::verify_commit_cert(verifier, cfg, cc));
  }
}
BENCHMARK(BM_VerifyCommitCertMemoHit)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace fastbft::crypto

BENCHMARK_MAIN();
