#include "bench_util.hpp"

#include "common/assert.hpp"

namespace fastbft::bench {

RunMetrics run_scenario(const Scenario& scenario) {
  runtime::ClusterOptions options;
  options.cfg = consensus::QuorumConfig::create(scenario.n, scenario.f,
                                                scenario.t);
  options.net.delta = scenario.delta;
  options.net.min_delay = scenario.delta;  // lock-step latency measurement
  options.net.gst = scenario.gst;
  options.net.seed = scenario.seed;
  options.key_seed = scenario.seed * 7919 + 13;

  switch (scenario.protocol) {
    case Protocol::Ours:
      break;
    case Protocol::OursVanilla:
      options.node.replica.slow_path = false;
      break;
    case Protocol::Fab:
      options.node_factory = fab::node_factory();
      break;
    case Protocol::Pbft:
      options.node_factory = pbft::node_factory();
      break;
  }

  std::vector<Value> inputs;
  for (std::uint32_t i = 0; i < scenario.n; ++i) {
    inputs.push_back(Value::of_string("input-" + std::to_string(i)));
  }

  runtime::Cluster cluster(options, std::move(inputs));
  for (const auto& [id, at] : scenario.crashes) cluster.crash_at(id, at);
  for (const auto& [id, factory] : scenario.byzantine) {
    cluster.replace_process(id, factory);
  }
  cluster.start();

  RunMetrics metrics;
  metrics.decided = cluster.run_until_all_correct_decided(scenario.limit);
  FASTBFT_ASSERT(cluster.agreement(), "benchmark run violated agreement");
  metrics.delays = cluster.max_decision_delays();
  metrics.messages = cluster.network().stats().total_messages();
  metrics.bytes = cluster.network().stats().total_bytes();
  for (const auto& d : cluster.decisions()) {
    metrics.max_view = std::max(metrics.max_view, d.view);
    metrics.any_slow_path |= d.via_slow_path;
  }
  for (ProcessId id = 0; id < scenario.n; ++id) {
    if (runtime::Node* node = cluster.node(id)) {
      metrics.max_cert_bytes =
          std::max(metrics.max_cert_bytes, node->replica().max_cert_bytes_seen());
    }
  }
  return metrics;
}

}  // namespace fastbft::bench
