#include "bench_util.hpp"

/// Experiment E3 (DESIGN.md §5): the view-change protocol of Fig. 1b — two
/// phases (vote collection, then CertReq/CertAck certification) before the
/// new leader proposes. Measures time-to-decision and message complexity
/// when the initial leader is dead, across f, for ours vs the baselines.

namespace fastbft::bench {
namespace {

void crashed_leader_sweep() {
  header("E3: initial leader dead from the start; time until decision");
  row("%-20s %-4s %-4s %-4s %-10s %-12s %-10s", "protocol", "f", "t", "n",
      "delays", "msgs", "view");
  for (std::uint32_t f = 1; f <= 3; ++f) {
    for (Protocol p : {Protocol::Ours, Protocol::Fab, Protocol::Pbft}) {
      Scenario s;
      s.protocol = p;
      s.f = f;
      s.t = 1;
      s.n = min_n(p, f, 1);
      s.crashes.push_back({0, 0});  // leader of view 1 never speaks
      RunMetrics m = run_scenario(s);
      row("%-20s %-4u %-4u %-4u %-10.1f %-12llu %-10llu", protocol_name(p), f,
          1u, s.n, m.delays, static_cast<unsigned long long>(m.messages),
          static_cast<unsigned long long>(m.max_view));
    }
  }
}

void consecutive_leader_crashes() {
  header("E3b: k consecutive dead leaders (ours, f = 3, t = 1, n = 10)");
  row("%-4s %-10s %-12s %-10s", "k", "delays", "msgs", "view");
  for (std::uint32_t k = 1; k <= 3; ++k) {
    Scenario s;
    s.f = 3;
    s.t = 1;
    s.n = 10;
    for (std::uint32_t i = 0; i < k; ++i) s.crashes.push_back({i, 0});
    RunMetrics m = run_scenario(s);
    row("%-4u %-10.1f %-12llu %-10llu", k, m.delays,
        static_cast<unsigned long long>(m.messages),
        static_cast<unsigned long long>(m.max_view));
  }
}

void crash_timing_sensitivity() {
  header("E3c: leader crash timing vs recovery (ours, f=2, t=2, n=9)");
  row("%-14s %-10s %-10s %-14s", "crash at", "delays", "view",
      "value survived");
  for (TimePoint at : {0, 50, 100, 150, 200, 250}) {
    Scenario s;
    s.f = 2;
    s.t = 2;
    s.n = 9;
    s.crashes.push_back({0, at});
    RunMetrics m = run_scenario(s);
    // If the proposal got out (crash >= delta) the adopted value must
    // survive the view change; decided view > 1 indicates recovery ran.
    row("%-14lld %-10.1f %-10llu %-14s", static_cast<long long>(at), m.delays,
        static_cast<unsigned long long>(m.max_view),
        m.max_view > 1 ? "via view change" : "fast path");
  }
}

}  // namespace
}  // namespace fastbft::bench

int main() {
  std::printf("bench_view_change: experiment E3 — view-change cost\n");
  std::printf("(delays include the synchronizer timeout that detects the "
              "dead leader;\n timeout base = 12 delta, so ~14-16 delta total "
              "is the expected shape)\n");
  fastbft::bench::crashed_leader_sweep();
  fastbft::bench::consecutive_leader_crashes();
  fastbft::bench::crash_timing_sensitivity();
  return 0;
}
