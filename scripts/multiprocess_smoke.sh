#!/usr/bin/env bash
# Multi-process SMR smoke test: 4 smr_server replica processes + 1
# smr_client process over loopback TCP (net::SocketNetwork), mixed
# put/get/cas across 2 shards — and one replica is killed mid-run, so the
# client's completion also proves gateway failover and f=1 crash
# tolerance across real process boundaries. CI's multiprocess-smoke job
# runs this against a Release build; locally:
#
#   cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release
#   cmake --build build-rel -j --target smr_server smr_client
#   scripts/multiprocess_smoke.sh build-rel
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/tools/smr_server"
CLIENT="$BUILD_DIR/tools/smr_client"
for bin in "$SERVER" "$CLIENT"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (cmake --build $BUILD_DIR --target smr_server smr_client)" >&2
    exit 2
  fi
done

# Fixed loopback ports in the dynamic range; SO_REUSEADDR on the servers
# makes quick successive runs safe.
BASE_PORT="${SMOKE_BASE_PORT:-7350}"
PEERS="127.0.0.1:$BASE_PORT,127.0.0.1:$((BASE_PORT+1)),127.0.0.1:$((BASE_PORT+2)),127.0.0.1:$((BASE_PORT+3))"
OPS="${SMOKE_OPS:-6000}"
LOGDIR="$(mktemp -d)"
SERVER_PIDS=()

cleanup() {
  kill -TERM "${SERVER_PIDS[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

echo "== starting 4 smr_server replicas (2 shards) on $PEERS =="
for id in 0 1 2 3; do
  "$SERVER" --id "$id" --n 4 --f 1 --shards 2 --depth 4 --batch 8 \
      --clients 4 --peers "$PEERS" > "$LOGDIR/server$id.log" 2>&1 &
  SERVER_PIDS+=($!)
done
sleep 1

# Kill replica 3 a moment into the run (the healthy cluster clears a few
# thousand ops per second, so strike early): n=4, f=1 keeps deciding on
# the surviving 3, and any client session gatewaying through the corpse
# must time out, strike it and fail over.
(
  sleep 0.4
  echo "== killing replica 3 (pid ${SERVER_PIDS[3]}) mid-run =="
  kill -KILL "${SERVER_PIDS[3]}" 2>/dev/null || true
) &
KILLER_PID=$!

echo "== running smr_client: $OPS mixed put/get/cas ops, 2 sessions, 2 shards =="
status=0
"$CLIENT" --peers "$PEERS" --n 4 --f 1 --shards 2 --clients 4 \
    --sessions 2 --window 8 --ops "$OPS" --workload mixed \
    --max-seconds 120 | tee "$LOGDIR/client.log" || status=$?
wait "$KILLER_PID" 2>/dev/null || true

if [ "$status" -ne 0 ]; then
  echo "== FAIL: client did not complete all ops; server logs: =="
  tail -40 "$LOGDIR"/server*.log
  exit 1
fi

echo "== stopping surviving replicas (SIGTERM stats dump) =="
kill -TERM "${SERVER_PIDS[0]}" "${SERVER_PIDS[1]}" "${SERVER_PIDS[2]}" 2>/dev/null || true
wait "${SERVER_PIDS[0]}" "${SERVER_PIDS[1]}" "${SERVER_PIDS[2]}" 2>/dev/null || true
SERVER_PIDS=()

# The survivors must have dumped their per-link counters and applied the
# workload; surface the dumps so CI logs show the transport counters.
for id in 0 1 2; do
  if ! grep -q "applied" "$LOGDIR/server$id.log"; then
    echo "== FAIL: replica $id produced no stats dump =="
    cat "$LOGDIR/server$id.log"
    exit 1
  fi
done
echo "== replica 0 stats dump =="
sed -n '/--- smr_server/,$p' "$LOGDIR/server0.log"
echo "== multiprocess smoke: OK ($OPS ops, 1 replica killed mid-run) =="
