#!/usr/bin/env python3
"""Compare a fresh bench_smr_throughput JSON run against the committed
baseline (BENCH_smr.json) and fail on large regressions.

Usage: perf_check.py BASELINE.json CURRENT.json... [--max-regression 0.30]

Per-experiment gating: every experiment below that appears in BOTH the
baseline and the current run is checked at its canonical configuration,
and ANY of them regressing beyond the threshold fails the gate.

  * E9  — threaded wall-clock pipeline sweep, at the deepest pipeline
          depth common to both files (the headline single-log number);
  * E11 — closed-loop client sessions, at the highest common session
          count (the full-client-path number);
  * E13 — sharded multi-group sweep, at shards = 4 when both sides have
          it (else the highest common shard count) — the aggregate
          scale-out number.
  * E15 — multi-process socket transport, at the highest common session
          count, PLUS an absolute gate on the current run alone: the
          depth sweep (batch 1, one session) must show depth-8 >= 2x
          depth-1 throughput, or pipelining has stopped surviving real
          sockets.
  * E14 — open-loop latency sweep: gated on p99 completion latency
          (higher is WORSE, so the gate is now <= ref * (1 + threshold)),
          per mode, at the lowest offered rate common to both files —
          the rate where the tail is load-stable rather than
          saturation-noise. The BEST (lowest) p99 across the current
          runs counts, mirroring the throughput gates. Tails below
          --latency-floor-us (default 25000 — one view-change base
          timeout) always pass: on an oversubscribed host a single
          scheduler stall parks enough arrivals to set the whole p99,
          so sub-floor differences are scheduler luck, not code.

The committed file may hold several runs ({"runs": [...]}); the LAST run
is the reference. A single-run file ({"records": [...]}) is accepted for
any argument. Several CURRENT files may be passed (repeated
measurements); the BEST of them counts per metric, so one noisy-neighbor
run cannot fail the gate.
"""

import argparse
import json
import sys

# experiment -> (config key that parameterizes it, canonical pick)
EXPERIMENTS = {
    "E9": ("depth", "max"),
    "E11": ("sessions", "max"),
    "E13": ("shards", 4),
    # Multi-process socket transport; the session sweep's top cell is the
    # headline aggregate number (the depth sweep is gated separately by
    # the absolute scaling check below).
    "E15": ("sessions", "max"),
}

# E15 must also prove pipelining survives real sockets: in its depth
# sweep (batch 1, one session, emulated link delay) depth-8 throughput
# must beat depth-1 by at least this factor — an ABSOLUTE gate on the
# current run, independent of any baseline.
E15_MIN_DEPTH_SCALING = 2.0

# Latency experiments gate a per-op quantile instead of throughput:
# experiment -> record field holding the gated latency (µs).
LATENCY_EXPERIMENTS = {
    "E14": "p99_us",
}


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    if "records" in doc:
        return doc.get("run", path), doc["records"]
    if "runs" in doc and doc["runs"]:
        last = doc["runs"][-1]
        return last.get("run", path), last["records"]
    raise SystemExit(f"{path}: no records found")


def rates_by_param(records, experiment, param):
    out = {}
    for r in records:
        if r.get("experiment") != experiment:
            continue
        value = r.get("config", {}).get(param)
        cps = r.get("cmds_per_sec", 0)
        if value is not None and cps > 0:
            out[value] = cps
    return out


def pick_param(common, preferred):
    if preferred == "max":
        return max(common)
    return preferred if preferred in common else max(common)


def latency_by_mode_rate(records, experiment, field):
    """(mode, rate) -> gated latency in µs, for open-loop records."""
    out = {}
    for r in records:
        if r.get("experiment") != experiment:
            continue
        config = r.get("config", {})
        mode, rate = config.get("mode"), config.get("rate")
        value = r.get(field, 0)
        if mode is not None and rate is not None and value > 0:
            out[(mode, rate)] = value
    return out


def check_latency(experiment, field, base_records, currents, base_label,
                  n_current, max_regression, floor_us, failures):
    """Gate p99 per mode at the lowest common rate; returns checks done."""
    base = latency_by_mode_rate(base_records, experiment, field)

    best = {}  # (mode, rate) -> (latency_us, label); lower is better
    for cur_label, cur_records in currents:
        for key, us in latency_by_mode_rate(cur_records, experiment,
                                            field).items():
            if key not in best or us < best[key][0]:
                best[key] = (us, cur_label)

    common = set(base) & set(best)
    if not common:
        print(f"{experiment}: not present in both files, skipped")
        return 0

    checked = 0
    for mode in sorted({m for m, _ in common}):
        rate = min(r for m, r in common if m == mode)
        ref = base[(mode, rate)]
        now, cur_label = best[(mode, rate)]
        ratio = now / ref
        checked += 1
        verdict = "ok"
        if now <= floor_us:
            verdict = "ok (below noise floor)"
        elif ratio > 1.0 + max_regression:
            verdict = "REGRESSION"
            failures.append(f"{experiment}/{mode}")
        print(f"{experiment} {mode} rate {rate}: baseline({base_label}) "
              f"{field} = {ref:.0f} us, best current({cur_label}) of "
              f"{n_current} run(s) = {now:.0f} us, "
              f"ratio = {ratio:.2f} [{verdict}]")
    return checked


def e15_depth_rates(records):
    """depth -> cmds_per_sec for E15's depth-sweep cells only."""
    out = {}
    for r in records:
        if r.get("experiment") != "E15":
            continue
        config = r.get("config", {})
        if config.get("sessions") != 1 or config.get("batch") != 1:
            continue
        depth, cps = config.get("depth"), r.get("cmds_per_sec", 0)
        if depth is not None and cps > 0:
            out[depth] = cps
    return out


def check_e15_scaling(currents, failures):
    """Absolute depth-scaling gate on the current run(s); returns checks."""
    best = {}  # depth -> (cmds_per_sec, label)
    for cur_label, cur_records in currents:
        for depth, cps in e15_depth_rates(cur_records).items():
            if depth not in best or cps > best[depth][0]:
                best[depth] = (cps, cur_label)
    if len(best) < 2 or 1 not in best:
        if best:
            print("E15 scaling: depth sweep incomplete, skipped")
        return 0
    top = max(best)
    ratio = best[top][0] / best[1][0]
    verdict = "ok"
    if ratio < E15_MIN_DEPTH_SCALING:
        verdict = "FAIL"
        failures.append("E15-scaling")
    print(f"E15 scaling: depth {top} = {best[top][0]:.0f} cmds/s vs "
          f"depth 1 = {best[1][0]:.0f} cmds/s, ratio = {ratio:.2f} "
          f"(needs >= {E15_MIN_DEPTH_SCALING:.1f}) [{verdict}]")
    return 1


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current", nargs="+")
    ap.add_argument("--max-regression", type=float, default=0.30)
    ap.add_argument("--latency-floor-us", type=float, default=25000,
                    help="p99 at or below this always passes the latency "
                         "gate (default: one view-change base timeout)")
    args = ap.parse_args()

    base_label, base_records = load_records(args.baseline)
    currents = [load_records(path) for path in args.current]

    checked = 0
    failures = []
    for experiment, (param, preferred) in EXPERIMENTS.items():
        base = rates_by_param(base_records, experiment, param)

        best = {}  # param value -> (cmds_per_sec, label)
        for cur_label, cur_records in currents:
            for value, cps in rates_by_param(cur_records, experiment,
                                             param).items():
                if value not in best or cps > best[value][0]:
                    best[value] = (cps, cur_label)

        common = set(base) & set(best)
        if not common:
            print(f"{experiment}: not present in both files, skipped")
            continue

        value = pick_param(common, preferred)
        ref = base[value]
        now, cur_label = best[value]
        ratio = now / ref
        checked += 1
        verdict = "ok"
        if ratio < 1.0 - args.max_regression:
            verdict = "REGRESSION"
            failures.append(experiment)
        print(f"{experiment} {param} {value}: baseline({base_label}) = "
              f"{ref:.0f} cmds/s, best current({cur_label}) of "
              f"{len(args.current)} run(s) = {now:.0f} cmds/s, "
              f"ratio = {ratio:.2f} [{verdict}]")

    for experiment, field in LATENCY_EXPERIMENTS.items():
        checked += check_latency(experiment, field, base_records, currents,
                                 base_label, len(args.current),
                                 args.max_regression, args.latency_floor_us,
                                 failures)

    checked += check_e15_scaling(currents, failures)

    if checked == 0:
        raise SystemExit("no common experiments between baseline and current")
    if failures:
        print(f"FAIL: regression beyond {args.max_regression:.0%} in: "
              f"{', '.join(failures)}")
        return 1
    print(f"OK ({checked} experiment(s) gated)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
