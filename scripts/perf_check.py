#!/usr/bin/env python3
"""Compare a fresh bench_smr_throughput JSON run against the committed
baseline (BENCH_smr.json) and fail on large regressions.

Usage: perf_check.py BASELINE.json CURRENT.json... [--max-regression 0.30]

The reference metric is the E9 (threaded, wall-clock) cmds_per_sec at the
deepest pipeline depth present in both files. The committed file may hold
several runs ({"runs": [...]}); the LAST run is the reference. A single-run
file ({"records": [...]}) is accepted for any argument. Several CURRENT
files may be passed (repeated measurements); the BEST of them counts, so
one noisy-neighbor run cannot fail the gate.
"""

import argparse
import json
import sys


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    if "records" in doc:
        return doc.get("run", path), doc["records"]
    if "runs" in doc and doc["runs"]:
        last = doc["runs"][-1]
        return last.get("run", path), last["records"]
    raise SystemExit(f"{path}: no records found")


def e9_by_depth(records):
    out = {}
    for r in records:
        if r.get("experiment") != "E9":
            continue
        depth = r.get("config", {}).get("depth")
        cps = r.get("cmds_per_sec", 0)
        if depth is not None and cps > 0:
            out[depth] = cps
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current", nargs="+")
    ap.add_argument("--max-regression", type=float, default=0.30)
    args = ap.parse_args()

    base_label, base_records = load_records(args.baseline)
    base = e9_by_depth(base_records)

    best = {}  # depth -> (cmds_per_sec, label)
    for path in args.current:
        cur_label, cur_records = load_records(path)
        for depth, cps in e9_by_depth(cur_records).items():
            if depth not in best or cps > best[depth][0]:
                best[depth] = (cps, cur_label)

    common = sorted(set(base) & set(best))
    if not common:
        raise SystemExit("no common E9 depths between baseline and current")

    depth = common[-1]
    ref = base[depth]
    now, cur_label = best[depth]
    ratio = now / ref
    print(f"E9 depth {depth}: baseline({base_label}) = {ref:.0f} cmds/s, "
          f"best current({cur_label}) of {len(args.current)} run(s) = "
          f"{now:.0f} cmds/s, ratio = {ratio:.2f}")
    if ratio < 1.0 - args.max_regression:
        print(f"FAIL: regression beyond {args.max_regression:.0%}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
