#include <gtest/gtest.h>

#include "consensus/selection.hpp"
#include "sim/random.hpp"

/// Unit and property tests for the selection algorithm (Section 3.2 and
/// Appendix A.2) — every branch, plus the verifier-side admission check
/// that underpins progress-certificate soundness.

namespace fastbft::consensus {
namespace {

class SelectionTest : public ::testing::Test {
 protected:
  // Generalized config n = 3f + 2t - 1 with f = 2, t = 1 -> n = 7.
  // vote_quorum = 5, equivocation threshold f + t = 3.
  QuorumConfig cfg_ = QuorumConfig::create(7, 2, 1);
  std::shared_ptr<const crypto::KeyStore> keys_ =
      std::make_shared<const crypto::KeyStore>(11, 32);
  crypto::Verifier verifier_{keys_};
  LeaderFn leader_ = round_robin_leader(7);
  View target_view_ = 5;

  crypto::Signer signer(ProcessId id) { return crypto::Signer(keys_, id); }

  /// A progress certificate for (x, u) signed by f+1 arbitrary processes.
  ProgressCert cert_for(const Value& x, View u) {
    ProgressCert cert;
    if (u == 1) return cert;
    for (ProcessId p = 0; p < cfg_.cert_quorum(); ++p) {
      cert.acks.push_back(SignatureEntry{
          p, signer(p).sign(kDomCertAck, certack_preimage(x, u))});
    }
    return cert;
  }

  /// A commit certificate for (x, u).
  CommitCert cc_for(const Value& x, View u) {
    CommitCert cc;
    cc.x = x;
    cc.v = u;
    for (ProcessId p = 0; p < cfg_.commit_quorum(); ++p) {
      cc.sigs.push_back(
          SignatureEntry{p, signer(p).sign(kDomAck, ack_preimage(x, u))});
    }
    return cc;
  }

  /// A fully valid non-nil vote record by `voter` for (x, u).
  VoteRecord vote(ProcessId voter, const Value& x, View u,
                  std::optional<CommitCert> cc = std::nullopt) {
    VoteRecord r;
    r.voter = voter;
    r.vote = Vote::of(
        x, u, cert_for(x, u),
        signer(leader_(u)).sign(kDomPropose, propose_preimage(x, u)));
    r.cc = std::move(cc);
    r.phi = signer(voter).sign(kDomVote,
                               vote_preimage(r.vote, r.cc, target_view_));
    return r;
  }

  VoteRecord nil_vote(ProcessId voter,
                      std::optional<CommitCert> cc = std::nullopt) {
    VoteRecord r;
    r.voter = voter;
    r.vote = Vote::nil();
    r.cc = std::move(cc);
    r.phi = signer(voter).sign(kDomVote,
                               vote_preimage(r.vote, r.cc, target_view_));
    return r;
  }

  void expect_all_valid(const std::vector<VoteRecord>& votes) {
    for (const auto& r : votes) {
      EXPECT_TRUE(
          validate_vote_record(verifier_, cfg_, leader_, r, target_view_))
          << "voter " << r.voter;
    }
  }

  Value x_ = Value::of_string("X");
  Value y_ = Value::of_string("Y");
  Value z_ = Value::of_string("Z");
};

// --- Branch 1: not enough votes -----------------------------------------------

TEST_F(SelectionTest, NeedsVoteQuorum) {
  std::vector<VoteRecord> votes;
  for (ProcessId p = 0; p < cfg_.vote_quorum() - 1; ++p) {
    votes.push_back(nil_vote(p));
  }
  auto r = run_selection(cfg_, votes, leader_);
  EXPECT_EQ(r.kind, SelectionResult::Kind::NeedMoreVotes);
}

// --- Branch 2: all nil (Lemma 3.1) ----------------------------------------------

TEST_F(SelectionTest, AllNilMeansFree) {
  std::vector<VoteRecord> votes;
  for (ProcessId p = 0; p < cfg_.vote_quorum(); ++p) {
    votes.push_back(nil_vote(p));
  }
  expect_all_valid(votes);
  auto r = run_selection(cfg_, votes, leader_);
  EXPECT_EQ(r.kind, SelectionResult::Kind::Free);
  EXPECT_FALSE(r.equivocation_detected);
}

// --- Branch 3: unique value at the highest view (Lemma 3.3) ----------------------

TEST_F(SelectionTest, UniqueValueAtHighestViewForced) {
  std::vector<VoteRecord> votes;
  votes.push_back(vote(0, x_, 3));
  votes.push_back(vote(1, y_, 2));  // lower view, different value: ignored
  votes.push_back(nil_vote(2));
  votes.push_back(nil_vote(3));
  votes.push_back(vote(4, x_, 3));
  expect_all_valid(votes);
  auto r = run_selection(cfg_, votes, leader_);
  ASSERT_EQ(r.kind, SelectionResult::Kind::Forced);
  EXPECT_EQ(r.value, x_);
  EXPECT_EQ(r.w, 3u);
  EXPECT_FALSE(r.equivocation_detected);
}

TEST_F(SelectionTest, SingleNonNilVoteForcesItsValue) {
  std::vector<VoteRecord> votes;
  votes.push_back(vote(6, z_, 1));
  for (ProcessId p = 0; p < 4; ++p) votes.push_back(nil_vote(p));
  auto r = run_selection(cfg_, votes, leader_);
  ASSERT_EQ(r.kind, SelectionResult::Kind::Forced);
  EXPECT_EQ(r.value, z_);
}

// --- Branch 4a: equivocation, waiting for non-equivocator votes ------------------

TEST_F(SelectionTest, EquivocationNeedsQuorumExcludingEquivocator) {
  // Views at w = 3 have two values -> leader(3) = p2 equivocated. p2's own
  // vote is among the 5 collected, so only 4 non-p2 votes: need more.
  std::vector<VoteRecord> votes;
  votes.push_back(vote(0, x_, 3));
  votes.push_back(vote(1, y_, 3));
  votes.push_back(vote(2, x_, 3));  // the equivocator's own vote
  votes.push_back(nil_vote(3));
  votes.push_back(nil_vote(4));
  auto r = run_selection(cfg_, votes, leader_);
  EXPECT_EQ(r.kind, SelectionResult::Kind::NeedMoreVotes);
  EXPECT_TRUE(r.equivocation_detected);
  EXPECT_EQ(r.equivocator, 2u);
}

TEST_F(SelectionTest, ExtraVoteResolvesEquivocationWait) {
  std::vector<VoteRecord> votes;
  votes.push_back(vote(0, x_, 3));
  votes.push_back(vote(1, y_, 3));
  votes.push_back(vote(2, x_, 3));
  votes.push_back(nil_vote(3));
  votes.push_back(nil_vote(4));
  votes.push_back(nil_vote(5));  // the additional vote
  auto r = run_selection(cfg_, votes, leader_);
  // 5 non-equivocator votes: x has 1, y has 1 — below f + t = 3 -> Free.
  EXPECT_EQ(r.kind, SelectionResult::Kind::Free);
  EXPECT_TRUE(r.equivocation_detected);
}

// --- Branch "restart": a later vote raises w -------------------------------------

TEST_F(SelectionTest, HigherViewVoteSupersedesEquivocation) {
  // Equivocation at view 3, but an additional vote reveals view 4: the
  // unique value at the (new) highest view wins; p2's misbehaviour at view
  // 3 becomes irrelevant.
  std::vector<VoteRecord> votes;
  votes.push_back(vote(0, x_, 3));
  votes.push_back(vote(1, y_, 3));
  votes.push_back(vote(2, x_, 3));
  votes.push_back(nil_vote(3));
  votes.push_back(nil_vote(4));
  votes.push_back(vote(5, z_, 4));
  auto r = run_selection(cfg_, votes, leader_);
  ASSERT_EQ(r.kind, SelectionResult::Kind::Forced);
  EXPECT_EQ(r.value, z_);
  EXPECT_EQ(r.w, 4u);
  EXPECT_FALSE(r.equivocation_detected);
}

// --- Branch 4b: commit certificate (Appendix A.2 case 1) --------------------------

TEST_F(SelectionTest, CommitCertificateForcesValue) {
  std::vector<VoteRecord> votes;
  votes.push_back(vote(0, x_, 3));
  votes.push_back(vote(1, y_, 3));
  votes.push_back(nil_vote(3, cc_for(y_, 3)));  // someone saw y committed
  votes.push_back(nil_vote(4));
  votes.push_back(nil_vote(5));
  expect_all_valid(votes);
  auto r = run_selection(cfg_, votes, leader_);
  ASSERT_EQ(r.kind, SelectionResult::Kind::Forced);
  EXPECT_EQ(r.value, y_);
  EXPECT_TRUE(r.equivocation_detected);
}

TEST_F(SelectionTest, StaleCommitCertificateIgnored) {
  // A cc from view 2 does not force anything when w = 3.
  std::vector<VoteRecord> votes;
  votes.push_back(vote(0, x_, 3));
  votes.push_back(vote(1, y_, 3));
  votes.push_back(nil_vote(3, cc_for(z_, 2)));
  votes.push_back(nil_vote(4));
  votes.push_back(nil_vote(5));
  auto r = run_selection(cfg_, votes, leader_);
  EXPECT_EQ(r.kind, SelectionResult::Kind::Free);
}

// --- Branch 4c: f + t votes for one value (Lemma 3.4) ------------------------------

TEST_F(SelectionTest, ThresholdVotesForceValue) {
  // f + t = 3 votes for x at w = 3 from non-equivocator processes.
  std::vector<VoteRecord> votes;
  votes.push_back(vote(0, x_, 3));
  votes.push_back(vote(1, x_, 3));
  votes.push_back(vote(3, x_, 3));
  votes.push_back(vote(4, y_, 3));  // the conflicting vote
  votes.push_back(nil_vote(5));
  expect_all_valid(votes);
  auto r = run_selection(cfg_, votes, leader_);
  ASSERT_EQ(r.kind, SelectionResult::Kind::Forced);
  EXPECT_EQ(r.value, x_);
  EXPECT_TRUE(r.equivocation_detected);
  EXPECT_EQ(r.equivocator, 2u);
}

TEST_F(SelectionTest, EquivocatorVoteDoesNotCountTowardThreshold) {
  // x reaches 3 votes only if p2 (the equivocator) counts — it must not.
  std::vector<VoteRecord> votes;
  votes.push_back(vote(0, x_, 3));
  votes.push_back(vote(1, x_, 3));
  votes.push_back(vote(2, x_, 3));  // equivocator's vote
  votes.push_back(vote(4, y_, 3));
  votes.push_back(nil_vote(5));
  votes.push_back(nil_vote(6));
  auto r = run_selection(cfg_, votes, leader_);
  EXPECT_EQ(r.kind, SelectionResult::Kind::Free);
}

// --- Branch 4d: nothing forced (Lemma 3.5) -------------------------------------------

TEST_F(SelectionTest, SplitVotesBelowThresholdFree) {
  std::vector<VoteRecord> votes;
  votes.push_back(vote(0, x_, 3));
  votes.push_back(vote(1, x_, 3));
  votes.push_back(vote(3, y_, 3));
  votes.push_back(vote(4, y_, 3));
  votes.push_back(nil_vote(5));
  auto r = run_selection(cfg_, votes, leader_);
  EXPECT_EQ(r.kind, SelectionResult::Kind::Free);
  EXPECT_TRUE(r.equivocation_detected);
}

// --- Admission (CertAck verifier view) -------------------------------------------------

TEST_F(SelectionTest, AdmissionMatchesSelection) {
  std::vector<VoteRecord> votes;
  votes.push_back(vote(0, x_, 3));
  votes.push_back(nil_vote(1));
  votes.push_back(nil_vote(3));
  votes.push_back(nil_vote(4));
  votes.push_back(nil_vote(5));
  EXPECT_TRUE(selection_admits(cfg_, votes, leader_, x_));
  EXPECT_FALSE(selection_admits(cfg_, votes, leader_, y_));
}

TEST_F(SelectionTest, FreeAdmitsAnyNonEmptyValue) {
  std::vector<VoteRecord> votes;
  for (ProcessId p = 0; p < cfg_.vote_quorum(); ++p) {
    votes.push_back(nil_vote(p));
  }
  EXPECT_TRUE(selection_admits(cfg_, votes, leader_, x_));
  EXPECT_TRUE(selection_admits(cfg_, votes, leader_, y_));
  EXPECT_FALSE(selection_admits(cfg_, votes, leader_, Value()));
}

TEST_F(SelectionTest, NeedMoreVotesAdmitsNothing) {
  std::vector<VoteRecord> votes;
  votes.push_back(vote(0, x_, 3));
  EXPECT_FALSE(selection_admits(cfg_, votes, leader_, x_));
}

// --- Vote-record validation edge cases ---------------------------------------------------

TEST_F(SelectionTest, ValidationRejectsForgedProposerSignature) {
  VoteRecord r = vote(0, x_, 3);
  // Replace tau with a signature by the wrong process.
  r.vote.tau = signer(5).sign(kDomPropose, propose_preimage(x_, 3));
  r.phi = signer(0).sign(kDomVote, vote_preimage(r.vote, r.cc, target_view_));
  EXPECT_FALSE(validate_vote_record(verifier_, cfg_, leader_, r, target_view_));
}

TEST_F(SelectionTest, ValidationRejectsMissingProgressCert) {
  VoteRecord r = vote(0, x_, 3);
  r.vote.sigma.acks.clear();
  r.phi = signer(0).sign(kDomVote, vote_preimage(r.vote, r.cc, target_view_));
  EXPECT_FALSE(validate_vote_record(verifier_, cfg_, leader_, r, target_view_));
}

TEST_F(SelectionTest, ValidationRejectsVoteForCurrentOrFutureView) {
  VoteRecord r = vote(0, x_, 3);
  EXPECT_FALSE(validate_vote_record(verifier_, cfg_, leader_, r, 3));
  EXPECT_FALSE(validate_vote_record(verifier_, cfg_, leader_, r, 2));
}

TEST_F(SelectionTest, ValidationRejectsReplayedVoteFromOtherView) {
  VoteRecord r = vote(0, x_, 3);  // phi binds to view 5
  EXPECT_FALSE(validate_vote_record(verifier_, cfg_, leader_, r, 6));
}

TEST_F(SelectionTest, ValidationRejectsTamperedCommitCert) {
  CommitCert cc = cc_for(x_, 3);
  cc.sigs[0].sig.bytes[0] ^= 1;
  VoteRecord r = nil_vote(0, cc);
  EXPECT_FALSE(validate_vote_record(verifier_, cfg_, leader_, r, target_view_));
}

TEST_F(SelectionTest, ValidationRejectsDuplicateSignersInCert) {
  // f + 1 = 3 entries but only 2 distinct signers.
  ProgressCert cert;
  for (int i = 0; i < 3; ++i) {
    ProcessId p = i < 2 ? 0 : 1;
    cert.acks.push_back(SignatureEntry{
        p, signer(p).sign(kDomCertAck, certack_preimage(x_, 3))});
  }
  VoteRecord r;
  r.voter = 0;
  r.vote = Vote::of(x_, 3, cert,
                    signer(leader_(3)).sign(kDomPropose, propose_preimage(x_, 3)));
  r.phi = signer(0).sign(kDomVote, vote_preimage(r.vote, r.cc, target_view_));
  EXPECT_FALSE(validate_vote_record(verifier_, cfg_, leader_, r, target_view_));
}

TEST_F(SelectionTest, NilVoteWithCommitCertIsValid) {
  VoteRecord r = nil_vote(0, cc_for(x_, 2));
  EXPECT_TRUE(validate_vote_record(verifier_, cfg_, leader_, r, target_view_));
}

// --- Property sweeps -----------------------------------------------------------------------

struct VanillaParam {
  std::uint32_t f;
  std::uint64_t seed;
};

class SelectionProperty : public ::testing::TestWithParam<VanillaParam> {};

/// Properties checked on random vote sets:
///  * selection is deterministic;
///  * Forced implies at least one vote for that value (or a cc);
///  * adding votes to a resolved Free/Forced outcome at the same w never
///    flips Forced(x) to Forced(y != x) unless a strictly higher view
///    appears (monotonicity that underlies the "restart" step).
TEST_P(SelectionProperty, RandomVoteSets) {
  const auto [f, seed] = GetParam();
  const std::uint32_t n = 5 * f - 1;
  QuorumConfig cfg = QuorumConfig::vanilla(n, f);
  auto keys = std::make_shared<const crypto::KeyStore>(seed, n);
  crypto::Verifier verifier(keys);
  LeaderFn leader = round_robin_leader(n);
  sim::Rng rng(seed);
  const View target = 6;

  Value values[] = {Value::of_string("A"), Value::of_string("B"),
                    Value::of_string("C")};

  auto make_vote = [&](ProcessId voter) {
    VoteRecord r;
    r.voter = voter;
    if (rng.chance(1, 3)) {
      r.vote = Vote::nil();
    } else {
      const Value& x = values[rng.next_below(3)];
      View u = 1 + rng.next_below(target - 1);
      ProgressCert cert;
      if (u > 1) {
        for (ProcessId p = 0; p < cfg.cert_quorum(); ++p) {
          cert.acks.push_back(SignatureEntry{
              p, crypto::Signer(keys, p).sign(kDomCertAck,
                                              certack_preimage(x, u))});
        }
      }
      r.vote = Vote::of(x, u, cert,
                        crypto::Signer(keys, leader(u))
                            .sign(kDomPropose, propose_preimage(x, u)));
    }
    r.phi = crypto::Signer(keys, voter)
                .sign(kDomVote, vote_preimage(r.vote, r.cc, target));
    return r;
  };

  std::vector<VoteRecord> votes;
  const std::uint32_t num_votes =
      cfg.vote_quorum() + 1 + static_cast<std::uint32_t>(rng.next_below(f));
  for (ProcessId p = 0; p < num_votes; ++p) {
    votes.push_back(make_vote(p));
    ASSERT_TRUE(validate_vote_record(verifier, cfg, leader, votes.back(), target));
  }

  auto r1 = run_selection(cfg, votes, leader);
  auto r2 = run_selection(cfg, votes, leader);
  EXPECT_EQ(r1.kind, r2.kind);
  if (r1.kind == SelectionResult::Kind::Forced) {
    EXPECT_EQ(r1.value, r2.value);
    bool found = false;
    for (const auto& rec : votes) {
      if ((!rec.vote.is_nil && rec.vote.x == r1.value) ||
          (rec.cc && rec.cc->x == r1.value)) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "forced value must come from the votes";
    EXPECT_TRUE(selection_admits(cfg, votes, leader, r1.value));
  }
  if (r1.kind == SelectionResult::Kind::Free) {
    EXPECT_TRUE(selection_admits(cfg, votes, leader, values[0]));
  }
}

std::vector<VanillaParam> property_params() {
  std::vector<VanillaParam> params;
  for (std::uint32_t f = 1; f <= 3; ++f) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) params.push_back({f, seed});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Random, SelectionProperty,
                         ::testing::ValuesIn(property_params()),
                         [](const auto& info) {
                           return "f" + std::to_string(info.param.f) + "s" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace fastbft::consensus
