#include <gtest/gtest.h>

#include "engine/adaptive.hpp"
#include "engine/catchup.hpp"
#include "engine/host.hpp"
#include "engine/pending_queue.hpp"
#include "engine/timer_wheel.hpp"

/// Engine policy objects in isolation: the host-agnostic timer wheel
/// (eager cancellation) and the catch-up policy's watermark-based
/// retention trimming plus snapshot retention/state transfer.

namespace fastbft::engine {
namespace {

// --- TimerWheel over the Host seam ------------------------------------------------

TEST(TimerWheelTest, FiresInDeadlineOrderThroughSimHost) {
  sim::Scheduler sched;
  SimHost host(sched);
  TimerWheel wheel(host);
  std::vector<int> order;
  wheel.schedule_after(30, [&] { order.push_back(3); });
  wheel.schedule_after(10, [&] { order.push_back(1); });
  wheel.schedule_after(20, [&] { order.push_back(2); });
  EXPECT_EQ(wheel.pending(), 3u);
  sched.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, CancelDropsEntryEagerly) {
  sim::Scheduler sched;
  SimHost host(sched);
  TimerWheel wheel(host);
  int fired = 0;
  wheel.schedule_after(10, [&] { fired |= 1; });
  auto far = wheel.schedule_after(1'000'000, [&] { fired |= 2; });
  EXPECT_EQ(wheel.pending(), 2u);

  // Eager drop: the far-deadline entry leaves the wheel at cancel() time
  // instead of pinning a slot until its deadline.
  far.cancel();
  EXPECT_EQ(wheel.pending(), 1u);
  EXPECT_EQ(wheel.cancelled_dropped(), 1u);
  EXPECT_FALSE(far.active());

  sched.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.pending(), 0u);

  // Cancelling after the wheel already dropped the entry is a no-op.
  far.cancel();
  EXPECT_EQ(wheel.cancelled_dropped(), 1u);
}

TEST(TimerWheelTest, CancellingEarliestEntryDoesNotLoseLaterOnes) {
  sim::Scheduler sched;
  SimHost host(sched);
  TimerWheel wheel(host);
  bool late_fired = false;
  auto early = wheel.schedule_after(10, [] { FAIL() << "cancelled timer"; });
  wheel.schedule_after(40, [&] { late_fired = true; });
  early.cancel();
  EXPECT_EQ(wheel.pending(), 1u);
  // The wheel's host event was armed for t=10; it fires, finds nothing
  // due, and re-arms for the surviving deadline.
  sched.run_until(100);
  EXPECT_TRUE(late_fired);
}

TEST(TimerWheelTest, HandleOutlivingWheelIsSafeToCancel) {
  sim::Scheduler sched;
  sim::TimerHandle handle;
  {
    SimHost host(sched);
    TimerWheel wheel(host);
    handle = wheel.schedule_after(50, [] { FAIL() << "wheel destroyed"; });
  }
  handle.cancel();  // must not touch the destroyed wheel
  sched.run_to_completion();
}

TEST(TimerWheelTest, TimerArmedWhileFiringRuns) {
  sim::Scheduler sched;
  SimHost host(sched);
  TimerWheel wheel(host);
  bool rearmed_fired = false;
  wheel.schedule_after(10, [&] {
    wheel.schedule_after(10, [&] { rearmed_fired = true; });
  });
  sched.run_until(100);
  EXPECT_TRUE(rearmed_fired);
}

// --- CatchUpPolicy watermark trimming --------------------------------------------

Value val(const std::string& s) { return Value::of_string(s); }

TEST(CatchUpPolicyTest, WatermarkFloorPrunesDecidedValues) {
  CatchUpPolicy policy(/*threshold=*/2, /*cluster_size=*/4);
  for (Slot s = 1; s <= 6; ++s) {
    policy.record_decided(s, val("v" + std::to_string(s)));
  }
  EXPECT_EQ(policy.decided_count(), 6u);
  EXPECT_EQ(policy.prune_floor(), 1u);

  // Retention is pinned by the slowest process: three fast peers do not
  // move the floor while p3 still reports nothing applied.
  policy.note_watermark(0, 5);
  policy.note_watermark(1, 5);
  policy.note_watermark(2, 7);
  EXPECT_EQ(policy.decided_count(), 6u);

  policy.note_watermark(3, 4);
  EXPECT_EQ(policy.prune_floor(), 4u);
  EXPECT_EQ(policy.decided_count(), 3u);  // slots 4, 5, 6 retained
  EXPECT_EQ(policy.pruned_count(), 3u);
  EXPECT_EQ(policy.decided(3), nullptr);
  ASSERT_NE(policy.decided(4), nullptr);

  // Pruned slots can no longer be served; retained ones can.
  EXPECT_FALSE(policy.reply_for(2, 1).has_value());
  EXPECT_TRUE(policy.reply_for(4, 1).has_value());
}

TEST(CatchUpPolicyTest, StaleAndOutOfRangeGossipIsIgnored) {
  CatchUpPolicy policy(2, 3);
  policy.record_decided(1, val("a"));
  policy.record_decided(2, val("b"));
  for (ProcessId p = 0; p < 3; ++p) policy.note_watermark(p, 3);
  EXPECT_EQ(policy.prune_floor(), 3u);
  EXPECT_EQ(policy.decided_count(), 0u);

  // A reordered old message can never regress the floor.
  policy.note_watermark(1, 2);
  EXPECT_EQ(policy.prune_floor(), 3u);

  // Gossip from an id outside the cluster is dropped.
  policy.note_watermark(99, 100);
  EXPECT_EQ(policy.prune_floor(), 3u);
}

TEST(CatchUpPolicyTest, ClaimStateBelowFloorIsDroppedAndStaysOut) {
  CatchUpPolicy policy(/*threshold=*/2, /*cluster_size=*/4);
  // One claim parked for slot 1 (below threshold).
  EXPECT_FALSE(policy.add_claim(1, 2, val("x")).has_value());
  for (ProcessId p = 0; p < 4; ++p) policy.note_watermark(p, 2);
  // The parked claim set was trimmed with the floor, and new claims for
  // pruned slots are rejected outright — even a threshold's worth of
  // Byzantine claimants can neither adopt nor re-park state below it.
  EXPECT_FALSE(policy.add_claim(1, 0, val("x")).has_value());
  EXPECT_FALSE(policy.add_claim(1, 3, val("x")).has_value());
  EXPECT_FALSE(policy.ready_claim(1).has_value());
}

// --- PendingQueue dedup horizon ---------------------------------------------------

TEST(PendingQueueTest, AppliedHorizonPruneIsDeterministicBySlotTag) {
  PendingQueue queue;
  auto cmd = [](std::uint64_t seq) {
    return smr::Command::put("k", "v", /*client=*/1, seq);
  };
  EXPECT_TRUE(queue.applied(cmd(1), /*slot=*/5));
  EXPECT_TRUE(queue.applied(cmd(2), /*slot=*/9));
  EXPECT_FALSE(queue.applied(cmd(1), /*slot=*/10)) << "duplicate must skip";

  // Pruning keys on the slot that applied each id, so every replica
  // pruning at the same boundary drops the same records.
  queue.prune_applied_before(8);
  ASSERT_EQ(queue.applied_ids().size(), 1u);
  EXPECT_EQ(queue.applied_ids()[0],
            (PendingQueue::AppliedEntry{{1, 2}, 9}));

  // A pruned id re-applies — identically on every replica, which is what
  // keeps the horizon safe against replays of ancient commands.
  EXPECT_TRUE(queue.applied(cmd(1), /*slot=*/12));
}

// --- CatchUpPolicy snapshot retention & state transfer ---------------------------

smr::Snapshot test_snapshot(Slot applied_below) {
  smr::Snapshot snap;
  snap.applied_below = applied_below;
  snap.applied_commands = applied_below - 1;
  snap.kv_state = to_bytes("kv-state-" + std::to_string(applied_below));
  snap.applied_ids = {{{1, 1}, 1}, {{1, 2}, 2}};
  return snap;
}

TEST(CatchUpPolicySnapshot, SnapshotUnpinsRetentionFromFrozenWatermark) {
  CatchUpPolicy policy(/*threshold=*/2, /*cluster_size=*/4);
  for (Slot s = 1; s <= 12; ++s) {
    policy.record_decided(s, val("v" + std::to_string(s)));
  }
  // p3 crashed after applying 2 slots: its frozen watermark pins the
  // floor at 3 no matter how far the healthy peers advance.
  policy.note_watermark(3, 3);
  for (ProcessId p = 0; p < 3; ++p) policy.note_watermark(p, 13);
  EXPECT_EQ(policy.prune_floor(), 3u);
  EXPECT_EQ(policy.decided_count(), 10u);

  // A snapshot covering slots < 9 supersedes per-slot retention below it:
  // the floor jumps past the frozen watermark and the values are pruned.
  policy.note_snapshot(9, test_snapshot(9).encode());
  EXPECT_EQ(policy.prune_floor(), 9u);
  EXPECT_EQ(policy.snapshot_floor(), 9u);
  EXPECT_EQ(policy.decided_count(), 4u);  // slots 9..12 retained
  EXPECT_EQ(policy.decided(5), nullptr);

  // A stale (older) snapshot never regresses anything.
  policy.note_snapshot(4, test_snapshot(4).encode());
  EXPECT_EQ(policy.snapshot_floor(), 9u);
}

TEST(CatchUpPolicySnapshot, RequestDedupsButServingAnswersEveryRequest) {
  CatchUpPolicy policy(/*threshold=*/2, /*cluster_size=*/4);

  // Nothing to request while the peer's floor does not pass our cursor.
  EXPECT_FALSE(policy.should_request_snapshot(1, 5, 10));
  // First sight of a useful floor: ask. Same floor again: don't.
  EXPECT_TRUE(policy.should_request_snapshot(1, 9, 1));
  EXPECT_FALSE(policy.should_request_snapshot(1, 9, 1));
  // The peer snapshotting further re-opens the request.
  EXPECT_TRUE(policy.should_request_snapshot(1, 17, 1));

  // Serving: nothing before a snapshot exists.
  EXPECT_TRUE(policy.snapshot_chunks().empty());
  policy.note_snapshot(9, test_snapshot(9).encode());
  auto chunks = policy.snapshot_chunks();
  EXPECT_FALSE(chunks.empty());
  EXPECT_EQ(policy.snapshots_served(), 1u);
  // A repeated request is served again: the requester may have crashed
  // mid-transfer and lost its reassembly state — holder-side dedup would
  // strand it forever (requester-side dedup bounds the honest traffic).
  EXPECT_FALSE(policy.snapshot_chunks().empty());
  EXPECT_EQ(policy.snapshots_served(), 2u);
}

TEST(CatchUpPolicySnapshot, InstallNeedsThresholdVouchersAndValidBody) {
  CatchUpPolicy policy(/*threshold=*/2, /*cluster_size=*/4,
                       /*snapshot_chunk_bytes=*/8);
  smr::Snapshot snap = test_snapshot(9);
  Bytes body = snap.encode();
  crypto::Digest digest = crypto::sha256(body);
  auto chunks = split_chunks(body, 8);
  ASSERT_GT(chunks.size(), 1u) << "the fixture must actually chunk";
  auto count = static_cast<std::uint32_t>(chunks.size());

  // All chunks from one sender: full body, digest fine — but a single
  // voucher proves nothing (it could have fabricated the whole snapshot).
  for (std::uint32_t i = 0; i < count; ++i) {
    EXPECT_FALSE(policy
                     .add_snapshot_chunk(/*from=*/1, 9, digest, i, count,
                                         Bytes(chunks[i]), /*next_apply=*/1)
                     .has_value());
  }

  // A second sender vouching for a DIFFERENT digest does not help.
  crypto::Digest other{};
  EXPECT_FALSE(policy
                   .add_snapshot_chunk(2, 9, other, 0, 1, Bytes{0xde, 0xad},
                                       1)
                   .has_value());

  // The second voucher for the right (slot, digest) crosses f + 1: the
  // already-complete body from sender 1 installs, handing back the
  // verified body + digest alongside the decoded snapshot.
  auto installed = policy.add_snapshot_chunk(3, 9, digest, 0, count,
                                             Bytes(chunks[0]), 1);
  ASSERT_TRUE(installed.has_value());
  EXPECT_EQ(installed->snapshot, snap);
  EXPECT_EQ(installed->body, body);
  EXPECT_EQ(installed->digest, digest);
}

TEST(CatchUpPolicySnapshot, StaleAndMalformedChunksAreRejected) {
  CatchUpPolicy policy(/*threshold=*/1, /*cluster_size=*/4);
  smr::Snapshot snap = test_snapshot(5);
  Bytes body = snap.encode();
  crypto::Digest digest = crypto::sha256(body);

  // Covering nothing beyond our cursor: useless, dropped.
  EXPECT_FALSE(policy
                   .add_snapshot_chunk(1, 5, digest, 0, 1, Bytes(body),
                                       /*next_apply=*/5)
                   .has_value());
  // Bogus chunk geometry is rejected outright.
  EXPECT_FALSE(policy.add_snapshot_chunk(1, 5, digest, 1, 1, Bytes(body), 1)
                   .has_value());
  EXPECT_FALSE(policy.add_snapshot_chunk(1, 5, digest, 0, 0, Bytes(body), 1)
                   .has_value());
  // A body that does not hash to the announced digest never installs,
  // even at threshold 1 with a complete reassembly — and the sender is
  // flagged (honest senders cannot produce a failing body, so it is
  // Byzantine; flagging stops it forcing endless re-hashing) so even its
  // later genuine bytes are ignored.
  Bytes tampered(body);
  tampered[0] ^= 0xff;
  EXPECT_FALSE(policy
                   .add_snapshot_chunk(1, 5, digest, 0, 1,
                                       std::move(tampered), 1)
                   .has_value());
  EXPECT_FALSE(policy.add_snapshot_chunk(1, 5, digest, 0, 1, Bytes(body), 1)
                   .has_value());
  // A different, honest sender still installs the same snapshot.
  EXPECT_TRUE(policy.add_snapshot_chunk(2, 5, digest, 0, 1, Bytes(body), 1)
                  .has_value());

  // A chunk exceeding the configured chunk size is flooding (the count
  // cap alone would not bound memory): rejected outright.
  CatchUpPolicy tight(/*threshold=*/1, /*cluster_size=*/4,
                      /*snapshot_chunk_bytes=*/8);
  ASSERT_GT(body.size(), 8u);
  EXPECT_FALSE(tight.add_snapshot_chunk(1, 5, digest, 0, 1, Bytes(body), 1)
                   .has_value());
}

// --- AdaptiveController ------------------------------------------------------
//
// The controller is clockless — every observation carries the caller's
// `now` — so these tests drive it with hand-scripted schedules exactly as
// SimHost would: same observations in, same trajectory out, every run.

/// Feeds `count` decisions of fixed `latency`/`backlog`, one per tick
/// starting at `start`; returns the tick after the last one. With
/// window = 10, an initial feed of 11 (ticks 0..10) and subsequent feeds
/// of 10 each end exactly on an evaluation tick: one scored window per
/// feed, no observations left over to leak into the next window.
TimePoint feed(AdaptiveController& c, TimePoint start, int count,
               Duration latency, std::size_t backlog = 0) {
  TimePoint now = start;
  for (int i = 0; i < count; ++i) c.on_decision(latency, backlog, now++);
  return now;
}

TEST(AdaptiveControllerTest, ResolvesDefaultsFromTargetAndClamp) {
  AdaptiveOptions opts;
  opts.enabled = true;
  opts.latency_target = 100;
  opts.max_depth = 8;
  AdaptiveController free_backlog(opts, /*batch_ceiling=*/8,
                                  /*reorder_clamp=*/0);
  EXPECT_EQ(free_backlog.options().window, 400);       // 4 x target
  EXPECT_EQ(free_backlog.options().backlog_target, 16u);  // 2 x max_depth

  AdaptiveController clamped(opts, 8, /*reorder_clamp=*/5);
  EXPECT_EQ(clamped.options().backlog_target, 5u);

  // Starts cautious on depth, greedy on batch: depth is earned from
  // observations, batching costs nothing until proven otherwise.
  EXPECT_EQ(clamped.depth(), opts.min_depth);
  EXPECT_EQ(clamped.batch(), 8u);
}

TEST(AdaptiveControllerTest, GrowsToMaxUnderLightLoad) {
  AdaptiveOptions opts;
  opts.enabled = true;
  opts.latency_target = 100;
  opts.min_depth = 1;
  opts.max_depth = 6;
  opts.window = 10;
  opts.min_samples = 2;
  AdaptiveController c(opts, /*batch_ceiling=*/8, /*reorder_clamp=*/0);

  // Healthy windows (latency well under target): +1 depth per window,
  // exactly min -> max in (max - min) windows, then it stays pinned.
  TimePoint now = feed(c, 0, 11, /*latency=*/50);
  EXPECT_EQ(c.depth(), 2u);
  for (std::uint32_t expected = 3; expected <= 6; ++expected) {
    now = feed(c, now, 10, /*latency=*/50);
    EXPECT_EQ(c.depth(), expected);
  }
  now = feed(c, now, 10, 50);
  EXPECT_EQ(c.depth(), 6u);
  EXPECT_EQ(c.max_depth_reached(), 6u);
  EXPECT_EQ(c.backoff_events(), 0u);
  EXPECT_EQ(c.batch(), 8u);
  EXPECT_GE(c.windows_evaluated(), 6u);
}

TEST(AdaptiveControllerTest, BacksOffOnLatencySpike) {
  AdaptiveOptions opts;
  opts.enabled = true;
  opts.latency_target = 100;
  opts.max_depth = 8;
  opts.window = 10;
  opts.min_samples = 2;
  opts.breach_windows = 1;  // react on the very first breached window
  opts.probe_windows = 1;   // and regrow immediately once healthy
  AdaptiveController c(opts, /*batch_ceiling=*/8, /*reorder_clamp=*/0);

  TimePoint now = feed(c, 0, 11, /*latency=*/50);
  for (int w = 0; w < 6; ++w) now = feed(c, now, 10, 50);  // 7 grown windows
  ASSERT_EQ(c.depth(), 8u);
  ASSERT_EQ(c.batch(), 8u);

  // One window whose p99 blows the target: multiplicative backoff on the
  // depth at the next evaluation. Batch holds — the convoy behind a
  // stalled slot scales with younger slots, not ops per slot, and
  // shrinking the batch would cut capacity mid-transient.
  now = feed(c, now, 10, /*latency=*/500);
  EXPECT_EQ(c.depth(), 4u);
  EXPECT_EQ(c.batch(), 8u);
  EXPECT_EQ(c.backoff_events(), 1u);

  // Healthy again: additive recovery, one depth step per window.
  now = feed(c, now, 10, 50);
  EXPECT_EQ(c.depth(), 5u);
  EXPECT_EQ(c.batch(), 8u);
  EXPECT_EQ(c.backoff_events(), 1u);
  EXPECT_EQ(c.max_depth_reached(), 8u);  // remembers the deepest run
}

TEST(AdaptiveControllerTest, ShedsDepthBeforeBatch) {
  // The backoff hierarchy: depth all the way to min_depth first, and
  // only then the batch — a breach at the shallowest window means the
  // per-decision work itself is too big.
  AdaptiveOptions opts;
  opts.enabled = true;
  opts.latency_target = 100;
  opts.max_depth = 8;
  opts.window = 10;
  opts.min_samples = 2;
  opts.breach_windows = 1;
  opts.probe_windows = 1;
  AdaptiveController c(opts, /*batch_ceiling=*/8, /*reorder_clamp=*/0);

  TimePoint now = feed(c, 0, 11, /*latency=*/50);
  for (int w = 0; w < 6; ++w) now = feed(c, now, 10, 50);
  ASSERT_EQ(c.depth(), 8u);

  now = feed(c, now, 10, 500);  // 8 -> 4
  now = feed(c, now, 10, 500);  // 4 -> 2
  now = feed(c, now, 10, 500);  // 2 -> 1
  EXPECT_EQ(c.depth(), 1u);
  EXPECT_EQ(c.batch(), 8u) << "batch untouched while depth can shed";

  now = feed(c, now, 10, 500);  // at min depth: batch finally halves
  EXPECT_EQ(c.depth(), 1u);
  EXPECT_EQ(c.batch(), 4u);
  EXPECT_EQ(c.backoff_events(), 4u);

  // Healthy windows regrow the batch by ceiling/4 steps.
  now = feed(c, now, 10, 50);
  EXPECT_EQ(c.batch(), 6u);
}

TEST(AdaptiveControllerTest, BacklogBreachBacksOffBeforeClampStalls) {
  // The backlog target defaults to the engine's max_reorder_backlog
  // clamp: a backlog past it is a breach even with perfect latency, so
  // the controller sheds depth *before* fill_window hard-stalls.
  AdaptiveOptions opts;
  opts.enabled = true;
  opts.latency_target = 100;
  opts.max_depth = 8;
  opts.window = 10;
  opts.min_samples = 2;
  opts.breach_windows = 1;
  opts.probe_windows = 1;
  AdaptiveController c(opts, 8, /*reorder_clamp=*/4);

  TimePoint now = feed(c, 0, 11, /*latency=*/50);
  for (int w = 0; w < 3; ++w) now = feed(c, now, 10, 50);
  ASSERT_EQ(c.depth(), 5u);

  now = feed(c, now, 10, /*latency=*/50, /*backlog=*/5);  // > clamp of 4
  EXPECT_EQ(c.depth(), 2u);
  EXPECT_EQ(c.backoff_events(), 1u);
  EXPECT_EQ(c.backlog_high_water(), 5u);

  // Backlog at the clamp exactly is tolerated (the clamp itself only
  // trips strictly above).
  now = feed(c, now, 10, 50, 4);
  EXPECT_EQ(c.depth(), 3u);
  EXPECT_EQ(c.backoff_events(), 1u);
}

TEST(AdaptiveControllerTest, HoldsOnIsolatedBreachThenBacksOffWhenPersistent) {
  // Default breach_windows = 2: one bad window HOLDS the knobs — a lone
  // view-change stall parks all its outliers in a single window and must
  // not halve a healthy pipeline — while a breach that persists across
  // consecutive windows still earns the multiplicative backoff.
  AdaptiveOptions opts;
  opts.enabled = true;
  opts.latency_target = 100;
  opts.max_depth = 8;
  opts.window = 10;
  opts.min_samples = 2;
  AdaptiveController c(opts, /*batch_ceiling=*/8, /*reorder_clamp=*/0);
  ASSERT_EQ(c.options().breach_windows, 2u);

  TimePoint now = feed(c, 0, 11, /*latency=*/50);
  for (int w = 0; w < 6; ++w) now = feed(c, now, 10, 50);
  ASSERT_EQ(c.depth(), 8u);

  // One breached window: hold (no growth, no backoff).
  now = feed(c, now, 10, /*latency=*/500);
  EXPECT_EQ(c.depth(), 8u);
  EXPECT_EQ(c.batch(), 8u);
  EXPECT_EQ(c.backoff_events(), 0u);

  // A healthy window resets the breach streak...
  now = feed(c, now, 10, 50);
  EXPECT_EQ(c.depth(), 8u);
  EXPECT_EQ(c.backoff_events(), 0u);

  // ...so the next lone breach holds again,
  now = feed(c, now, 10, 500);
  EXPECT_EQ(c.depth(), 8u);
  EXPECT_EQ(c.backoff_events(), 0u);

  // but a second breached window in a row is persistent: back off.
  now = feed(c, now, 10, 500);
  EXPECT_EQ(c.depth(), 4u);
  EXPECT_EQ(c.backoff_events(), 1u);

  // The streak restarts after a backoff: the next breached window holds
  // rather than halving again immediately.
  now = feed(c, now, 10, 500);
  EXPECT_EQ(c.depth(), 4u);
  EXPECT_EQ(c.backoff_events(), 1u);
}

TEST(AdaptiveControllerTest, RemembersBreachDepthAndProbesItCautiously) {
  // A backoff halves the depth AND caps growth at the halved value (TCP
  // ssthresh). Plain AIMD would re-climb to the depth that breached
  // within depth/2 windows and re-enter the very convoy it just backed
  // away from; with the cap, deeper depths are reached only through
  // deliberate probes — one step per probe_windows consecutive healthy
  // windows.
  AdaptiveOptions opts;
  opts.enabled = true;
  opts.latency_target = 100;
  opts.max_depth = 8;
  opts.window = 10;
  opts.min_samples = 2;
  opts.breach_windows = 1;
  opts.probe_windows = 3;
  AdaptiveController c(opts, /*batch_ceiling=*/8, /*reorder_clamp=*/0);

  TimePoint now = feed(c, 0, 11, /*latency=*/50);
  for (int w = 0; w < 6; ++w) now = feed(c, now, 10, 50);
  ASSERT_EQ(c.depth(), 8u);

  // Breach at depth 8: halve to 4, and cap growth there.
  now = feed(c, now, 10, /*latency=*/500);
  EXPECT_EQ(c.depth(), 4u);
  EXPECT_EQ(c.backoff_events(), 1u);

  // Two healthy windows hold at the cap; the third probes one step.
  now = feed(c, now, 10, 50);
  EXPECT_EQ(c.depth(), 4u) << "healthy but capped: no instant re-climb";
  now = feed(c, now, 10, 50);
  EXPECT_EQ(c.depth(), 4u);
  now = feed(c, now, 10, 50);
  EXPECT_EQ(c.depth(), 5u) << "probe after probe_windows healthy windows";

  // The next probe needs another full countdown.
  now = feed(c, now, 10, 50);
  now = feed(c, now, 10, 50);
  EXPECT_EQ(c.depth(), 5u);
  now = feed(c, now, 10, 50);
  EXPECT_EQ(c.depth(), 6u);
  EXPECT_EQ(c.backoff_events(), 1u) << "probing is not backing off";

  // A breach mid-countdown halves from wherever it struck.
  now = feed(c, now, 10, 50);   // 1 healthy window into the countdown
  now = feed(c, now, 10, 500);  // breach at 6: depth and cap drop to 3
  EXPECT_EQ(c.depth(), 3u);
  EXPECT_EQ(c.backoff_events(), 2u);
  now = feed(c, now, 10, 50);
  now = feed(c, now, 10, 50);
  EXPECT_EQ(c.depth(), 3u) << "countdown restarted at the new cap";
  now = feed(c, now, 10, 50);
  EXPECT_EQ(c.depth(), 4u);
}

TEST(AdaptiveControllerTest, NeverLeavesConfiguredBounds) {
  AdaptiveOptions opts;
  opts.enabled = true;
  opts.latency_target = 100;
  opts.min_depth = 2;
  opts.max_depth = 5;
  opts.min_batch = 2;
  opts.window = 10;
  opts.min_samples = 1;
  opts.breach_windows = 1;  // isolated breach windows must still back off
  AdaptiveController c(opts, /*batch_ceiling=*/16, /*reorder_clamp=*/0);

  // Alternating feast and famine, including repeated breaches that would
  // drive depth below min without the floor.
  TimePoint now = feed(c, 0, 1, 10);  // open the first window
  for (int round = 0; round < 20; ++round) {
    Duration latency = (round % 3 == 0) ? 1000 : 10;
    now = feed(c, now, 10, latency);
    EXPECT_GE(c.depth(), 2u);
    EXPECT_LE(c.depth(), 5u);
    EXPECT_GE(c.batch(), 2u);
    EXPECT_LE(c.batch(), 16u);
  }
  EXPECT_GT(c.backoff_events(), 0u);
  EXPECT_LE(c.max_depth_reached(), 5u);
}

TEST(AdaptiveControllerTest, WindowWaitsForMinSamples) {
  AdaptiveOptions opts;
  opts.enabled = true;
  opts.latency_target = 100;
  opts.window = 10;
  opts.min_samples = 4;
  AdaptiveController c(opts, 8, 0);

  // Two lonely decisions spread far past the window length: never enough
  // samples, so no window is ever scored and the knobs do not move.
  c.on_decision(50, 0, 0);
  c.on_decision(50, 0, 1000);
  c.on_decision(50, 0, 2000);
  EXPECT_EQ(c.windows_evaluated(), 0u);
  EXPECT_EQ(c.depth(), opts.min_depth);

  // The fourth sample crosses the threshold; the long-running window is
  // finally scored (healthy: those latencies were all fine).
  c.on_decision(50, 0, 3000);
  EXPECT_EQ(c.windows_evaluated(), 1u);
  EXPECT_EQ(c.depth(), opts.min_depth + 1);
}

TEST(AdaptiveControllerTest, TrajectoryIsDeterministic) {
  // Two controllers fed the same schedule agree on every observable at
  // every step — the property SimHost runs lean on.
  AdaptiveOptions opts;
  opts.enabled = true;
  opts.latency_target = 100;
  opts.max_depth = 8;
  opts.window = 7;
  opts.min_samples = 2;
  AdaptiveController a(opts, 8, 3), b(opts, 8, 3);

  std::uint64_t state = 12345;
  TimePoint now = 0;
  for (int i = 0; i < 500; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    Duration latency = 20 + static_cast<Duration>(state % 300);
    std::size_t backlog = static_cast<std::size_t>((state >> 32) % 6);
    a.on_decision(latency, backlog, now);
    b.on_decision(latency, backlog, now);
    now += 1 + static_cast<TimePoint>(state % 5);
    ASSERT_EQ(a.depth(), b.depth()) << "step " << i;
    ASSERT_EQ(a.batch(), b.batch()) << "step " << i;
    ASSERT_EQ(a.windows_evaluated(), b.windows_evaluated()) << "step " << i;
    ASSERT_EQ(a.backoff_events(), b.backoff_events()) << "step " << i;
  }
  EXPECT_GT(a.windows_evaluated(), 0u);
}

}  // namespace
}  // namespace fastbft::engine
