#include <gtest/gtest.h>

#include "engine/catchup.hpp"
#include "engine/host.hpp"
#include "engine/pending_queue.hpp"
#include "engine/timer_wheel.hpp"

/// Engine policy objects in isolation: the host-agnostic timer wheel
/// (eager cancellation) and the catch-up policy's watermark-based
/// retention trimming plus snapshot retention/state transfer.

namespace fastbft::engine {
namespace {

// --- TimerWheel over the Host seam ------------------------------------------------

TEST(TimerWheelTest, FiresInDeadlineOrderThroughSimHost) {
  sim::Scheduler sched;
  SimHost host(sched);
  TimerWheel wheel(host);
  std::vector<int> order;
  wheel.schedule_after(30, [&] { order.push_back(3); });
  wheel.schedule_after(10, [&] { order.push_back(1); });
  wheel.schedule_after(20, [&] { order.push_back(2); });
  EXPECT_EQ(wheel.pending(), 3u);
  sched.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, CancelDropsEntryEagerly) {
  sim::Scheduler sched;
  SimHost host(sched);
  TimerWheel wheel(host);
  int fired = 0;
  wheel.schedule_after(10, [&] { fired |= 1; });
  auto far = wheel.schedule_after(1'000'000, [&] { fired |= 2; });
  EXPECT_EQ(wheel.pending(), 2u);

  // Eager drop: the far-deadline entry leaves the wheel at cancel() time
  // instead of pinning a slot until its deadline.
  far.cancel();
  EXPECT_EQ(wheel.pending(), 1u);
  EXPECT_EQ(wheel.cancelled_dropped(), 1u);
  EXPECT_FALSE(far.active());

  sched.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.pending(), 0u);

  // Cancelling after the wheel already dropped the entry is a no-op.
  far.cancel();
  EXPECT_EQ(wheel.cancelled_dropped(), 1u);
}

TEST(TimerWheelTest, CancellingEarliestEntryDoesNotLoseLaterOnes) {
  sim::Scheduler sched;
  SimHost host(sched);
  TimerWheel wheel(host);
  bool late_fired = false;
  auto early = wheel.schedule_after(10, [] { FAIL() << "cancelled timer"; });
  wheel.schedule_after(40, [&] { late_fired = true; });
  early.cancel();
  EXPECT_EQ(wheel.pending(), 1u);
  // The wheel's host event was armed for t=10; it fires, finds nothing
  // due, and re-arms for the surviving deadline.
  sched.run_until(100);
  EXPECT_TRUE(late_fired);
}

TEST(TimerWheelTest, HandleOutlivingWheelIsSafeToCancel) {
  sim::Scheduler sched;
  sim::TimerHandle handle;
  {
    SimHost host(sched);
    TimerWheel wheel(host);
    handle = wheel.schedule_after(50, [] { FAIL() << "wheel destroyed"; });
  }
  handle.cancel();  // must not touch the destroyed wheel
  sched.run_to_completion();
}

TEST(TimerWheelTest, TimerArmedWhileFiringRuns) {
  sim::Scheduler sched;
  SimHost host(sched);
  TimerWheel wheel(host);
  bool rearmed_fired = false;
  wheel.schedule_after(10, [&] {
    wheel.schedule_after(10, [&] { rearmed_fired = true; });
  });
  sched.run_until(100);
  EXPECT_TRUE(rearmed_fired);
}

// --- CatchUpPolicy watermark trimming --------------------------------------------

Value val(const std::string& s) { return Value::of_string(s); }

TEST(CatchUpPolicyTest, WatermarkFloorPrunesDecidedValues) {
  CatchUpPolicy policy(/*threshold=*/2, /*cluster_size=*/4);
  for (Slot s = 1; s <= 6; ++s) {
    policy.record_decided(s, val("v" + std::to_string(s)));
  }
  EXPECT_EQ(policy.decided_count(), 6u);
  EXPECT_EQ(policy.prune_floor(), 1u);

  // Retention is pinned by the slowest process: three fast peers do not
  // move the floor while p3 still reports nothing applied.
  policy.note_watermark(0, 5);
  policy.note_watermark(1, 5);
  policy.note_watermark(2, 7);
  EXPECT_EQ(policy.decided_count(), 6u);

  policy.note_watermark(3, 4);
  EXPECT_EQ(policy.prune_floor(), 4u);
  EXPECT_EQ(policy.decided_count(), 3u);  // slots 4, 5, 6 retained
  EXPECT_EQ(policy.pruned_count(), 3u);
  EXPECT_EQ(policy.decided(3), nullptr);
  ASSERT_NE(policy.decided(4), nullptr);

  // Pruned slots can no longer be served; retained ones can.
  EXPECT_FALSE(policy.reply_for(2, 1).has_value());
  EXPECT_TRUE(policy.reply_for(4, 1).has_value());
}

TEST(CatchUpPolicyTest, StaleAndOutOfRangeGossipIsIgnored) {
  CatchUpPolicy policy(2, 3);
  policy.record_decided(1, val("a"));
  policy.record_decided(2, val("b"));
  for (ProcessId p = 0; p < 3; ++p) policy.note_watermark(p, 3);
  EXPECT_EQ(policy.prune_floor(), 3u);
  EXPECT_EQ(policy.decided_count(), 0u);

  // A reordered old message can never regress the floor.
  policy.note_watermark(1, 2);
  EXPECT_EQ(policy.prune_floor(), 3u);

  // Gossip from an id outside the cluster is dropped.
  policy.note_watermark(99, 100);
  EXPECT_EQ(policy.prune_floor(), 3u);
}

TEST(CatchUpPolicyTest, ClaimStateBelowFloorIsDroppedAndStaysOut) {
  CatchUpPolicy policy(/*threshold=*/2, /*cluster_size=*/4);
  // One claim parked for slot 1 (below threshold).
  EXPECT_FALSE(policy.add_claim(1, 2, val("x")).has_value());
  for (ProcessId p = 0; p < 4; ++p) policy.note_watermark(p, 2);
  // The parked claim set was trimmed with the floor, and new claims for
  // pruned slots are rejected outright — even a threshold's worth of
  // Byzantine claimants can neither adopt nor re-park state below it.
  EXPECT_FALSE(policy.add_claim(1, 0, val("x")).has_value());
  EXPECT_FALSE(policy.add_claim(1, 3, val("x")).has_value());
  EXPECT_FALSE(policy.ready_claim(1).has_value());
}

// --- PendingQueue dedup horizon ---------------------------------------------------

TEST(PendingQueueTest, AppliedHorizonPruneIsDeterministicBySlotTag) {
  PendingQueue queue;
  auto cmd = [](std::uint64_t seq) {
    return smr::Command::put("k", "v", /*client=*/1, seq);
  };
  EXPECT_TRUE(queue.applied(cmd(1), /*slot=*/5));
  EXPECT_TRUE(queue.applied(cmd(2), /*slot=*/9));
  EXPECT_FALSE(queue.applied(cmd(1), /*slot=*/10)) << "duplicate must skip";

  // Pruning keys on the slot that applied each id, so every replica
  // pruning at the same boundary drops the same records.
  queue.prune_applied_before(8);
  ASSERT_EQ(queue.applied_ids().size(), 1u);
  EXPECT_EQ(queue.applied_ids()[0],
            (PendingQueue::AppliedEntry{{1, 2}, 9}));

  // A pruned id re-applies — identically on every replica, which is what
  // keeps the horizon safe against replays of ancient commands.
  EXPECT_TRUE(queue.applied(cmd(1), /*slot=*/12));
}

// --- CatchUpPolicy snapshot retention & state transfer ---------------------------

smr::Snapshot test_snapshot(Slot applied_below) {
  smr::Snapshot snap;
  snap.applied_below = applied_below;
  snap.applied_commands = applied_below - 1;
  snap.kv_state = to_bytes("kv-state-" + std::to_string(applied_below));
  snap.applied_ids = {{{1, 1}, 1}, {{1, 2}, 2}};
  return snap;
}

TEST(CatchUpPolicySnapshot, SnapshotUnpinsRetentionFromFrozenWatermark) {
  CatchUpPolicy policy(/*threshold=*/2, /*cluster_size=*/4);
  for (Slot s = 1; s <= 12; ++s) {
    policy.record_decided(s, val("v" + std::to_string(s)));
  }
  // p3 crashed after applying 2 slots: its frozen watermark pins the
  // floor at 3 no matter how far the healthy peers advance.
  policy.note_watermark(3, 3);
  for (ProcessId p = 0; p < 3; ++p) policy.note_watermark(p, 13);
  EXPECT_EQ(policy.prune_floor(), 3u);
  EXPECT_EQ(policy.decided_count(), 10u);

  // A snapshot covering slots < 9 supersedes per-slot retention below it:
  // the floor jumps past the frozen watermark and the values are pruned.
  policy.note_snapshot(9, test_snapshot(9).encode());
  EXPECT_EQ(policy.prune_floor(), 9u);
  EXPECT_EQ(policy.snapshot_floor(), 9u);
  EXPECT_EQ(policy.decided_count(), 4u);  // slots 9..12 retained
  EXPECT_EQ(policy.decided(5), nullptr);

  // A stale (older) snapshot never regresses anything.
  policy.note_snapshot(4, test_snapshot(4).encode());
  EXPECT_EQ(policy.snapshot_floor(), 9u);
}

TEST(CatchUpPolicySnapshot, RequestDedupsButServingAnswersEveryRequest) {
  CatchUpPolicy policy(/*threshold=*/2, /*cluster_size=*/4);

  // Nothing to request while the peer's floor does not pass our cursor.
  EXPECT_FALSE(policy.should_request_snapshot(1, 5, 10));
  // First sight of a useful floor: ask. Same floor again: don't.
  EXPECT_TRUE(policy.should_request_snapshot(1, 9, 1));
  EXPECT_FALSE(policy.should_request_snapshot(1, 9, 1));
  // The peer snapshotting further re-opens the request.
  EXPECT_TRUE(policy.should_request_snapshot(1, 17, 1));

  // Serving: nothing before a snapshot exists.
  EXPECT_TRUE(policy.snapshot_chunks().empty());
  policy.note_snapshot(9, test_snapshot(9).encode());
  auto chunks = policy.snapshot_chunks();
  EXPECT_FALSE(chunks.empty());
  EXPECT_EQ(policy.snapshots_served(), 1u);
  // A repeated request is served again: the requester may have crashed
  // mid-transfer and lost its reassembly state — holder-side dedup would
  // strand it forever (requester-side dedup bounds the honest traffic).
  EXPECT_FALSE(policy.snapshot_chunks().empty());
  EXPECT_EQ(policy.snapshots_served(), 2u);
}

TEST(CatchUpPolicySnapshot, InstallNeedsThresholdVouchersAndValidBody) {
  CatchUpPolicy policy(/*threshold=*/2, /*cluster_size=*/4,
                       /*snapshot_chunk_bytes=*/8);
  smr::Snapshot snap = test_snapshot(9);
  Bytes body = snap.encode();
  crypto::Digest digest = crypto::sha256(body);
  auto chunks = split_chunks(body, 8);
  ASSERT_GT(chunks.size(), 1u) << "the fixture must actually chunk";
  auto count = static_cast<std::uint32_t>(chunks.size());

  // All chunks from one sender: full body, digest fine — but a single
  // voucher proves nothing (it could have fabricated the whole snapshot).
  for (std::uint32_t i = 0; i < count; ++i) {
    EXPECT_FALSE(policy
                     .add_snapshot_chunk(/*from=*/1, 9, digest, i, count,
                                         Bytes(chunks[i]), /*next_apply=*/1)
                     .has_value());
  }

  // A second sender vouching for a DIFFERENT digest does not help.
  crypto::Digest other{};
  EXPECT_FALSE(policy
                   .add_snapshot_chunk(2, 9, other, 0, 1, Bytes{0xde, 0xad},
                                       1)
                   .has_value());

  // The second voucher for the right (slot, digest) crosses f + 1: the
  // already-complete body from sender 1 installs, handing back the
  // verified body + digest alongside the decoded snapshot.
  auto installed = policy.add_snapshot_chunk(3, 9, digest, 0, count,
                                             Bytes(chunks[0]), 1);
  ASSERT_TRUE(installed.has_value());
  EXPECT_EQ(installed->snapshot, snap);
  EXPECT_EQ(installed->body, body);
  EXPECT_EQ(installed->digest, digest);
}

TEST(CatchUpPolicySnapshot, StaleAndMalformedChunksAreRejected) {
  CatchUpPolicy policy(/*threshold=*/1, /*cluster_size=*/4);
  smr::Snapshot snap = test_snapshot(5);
  Bytes body = snap.encode();
  crypto::Digest digest = crypto::sha256(body);

  // Covering nothing beyond our cursor: useless, dropped.
  EXPECT_FALSE(policy
                   .add_snapshot_chunk(1, 5, digest, 0, 1, Bytes(body),
                                       /*next_apply=*/5)
                   .has_value());
  // Bogus chunk geometry is rejected outright.
  EXPECT_FALSE(policy.add_snapshot_chunk(1, 5, digest, 1, 1, Bytes(body), 1)
                   .has_value());
  EXPECT_FALSE(policy.add_snapshot_chunk(1, 5, digest, 0, 0, Bytes(body), 1)
                   .has_value());
  // A body that does not hash to the announced digest never installs,
  // even at threshold 1 with a complete reassembly — and the sender is
  // flagged (honest senders cannot produce a failing body, so it is
  // Byzantine; flagging stops it forcing endless re-hashing) so even its
  // later genuine bytes are ignored.
  Bytes tampered(body);
  tampered[0] ^= 0xff;
  EXPECT_FALSE(policy
                   .add_snapshot_chunk(1, 5, digest, 0, 1,
                                       std::move(tampered), 1)
                   .has_value());
  EXPECT_FALSE(policy.add_snapshot_chunk(1, 5, digest, 0, 1, Bytes(body), 1)
                   .has_value());
  // A different, honest sender still installs the same snapshot.
  EXPECT_TRUE(policy.add_snapshot_chunk(2, 5, digest, 0, 1, Bytes(body), 1)
                  .has_value());

  // A chunk exceeding the configured chunk size is flooding (the count
  // cap alone would not bound memory): rejected outright.
  CatchUpPolicy tight(/*threshold=*/1, /*cluster_size=*/4,
                      /*snapshot_chunk_bytes=*/8);
  ASSERT_GT(body.size(), 8u);
  EXPECT_FALSE(tight.add_snapshot_chunk(1, 5, digest, 0, 1, Bytes(body), 1)
                   .has_value());
}

}  // namespace
}  // namespace fastbft::engine
