#include <gtest/gtest.h>

#include "engine/catchup.hpp"
#include "engine/host.hpp"
#include "engine/timer_wheel.hpp"

/// Engine policy objects in isolation: the host-agnostic timer wheel
/// (eager cancellation) and the catch-up policy's watermark-based
/// retention trimming.

namespace fastbft::engine {
namespace {

// --- TimerWheel over the Host seam ------------------------------------------------

TEST(TimerWheelTest, FiresInDeadlineOrderThroughSimHost) {
  sim::Scheduler sched;
  SimHost host(sched);
  TimerWheel wheel(host);
  std::vector<int> order;
  wheel.schedule_after(30, [&] { order.push_back(3); });
  wheel.schedule_after(10, [&] { order.push_back(1); });
  wheel.schedule_after(20, [&] { order.push_back(2); });
  EXPECT_EQ(wheel.pending(), 3u);
  sched.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, CancelDropsEntryEagerly) {
  sim::Scheduler sched;
  SimHost host(sched);
  TimerWheel wheel(host);
  int fired = 0;
  wheel.schedule_after(10, [&] { fired |= 1; });
  auto far = wheel.schedule_after(1'000'000, [&] { fired |= 2; });
  EXPECT_EQ(wheel.pending(), 2u);

  // Eager drop: the far-deadline entry leaves the wheel at cancel() time
  // instead of pinning a slot until its deadline.
  far.cancel();
  EXPECT_EQ(wheel.pending(), 1u);
  EXPECT_EQ(wheel.cancelled_dropped(), 1u);
  EXPECT_FALSE(far.active());

  sched.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.pending(), 0u);

  // Cancelling after the wheel already dropped the entry is a no-op.
  far.cancel();
  EXPECT_EQ(wheel.cancelled_dropped(), 1u);
}

TEST(TimerWheelTest, CancellingEarliestEntryDoesNotLoseLaterOnes) {
  sim::Scheduler sched;
  SimHost host(sched);
  TimerWheel wheel(host);
  bool late_fired = false;
  auto early = wheel.schedule_after(10, [] { FAIL() << "cancelled timer"; });
  wheel.schedule_after(40, [&] { late_fired = true; });
  early.cancel();
  EXPECT_EQ(wheel.pending(), 1u);
  // The wheel's host event was armed for t=10; it fires, finds nothing
  // due, and re-arms for the surviving deadline.
  sched.run_until(100);
  EXPECT_TRUE(late_fired);
}

TEST(TimerWheelTest, HandleOutlivingWheelIsSafeToCancel) {
  sim::Scheduler sched;
  sim::TimerHandle handle;
  {
    SimHost host(sched);
    TimerWheel wheel(host);
    handle = wheel.schedule_after(50, [] { FAIL() << "wheel destroyed"; });
  }
  handle.cancel();  // must not touch the destroyed wheel
  sched.run_to_completion();
}

TEST(TimerWheelTest, TimerArmedWhileFiringRuns) {
  sim::Scheduler sched;
  SimHost host(sched);
  TimerWheel wheel(host);
  bool rearmed_fired = false;
  wheel.schedule_after(10, [&] {
    wheel.schedule_after(10, [&] { rearmed_fired = true; });
  });
  sched.run_until(100);
  EXPECT_TRUE(rearmed_fired);
}

// --- CatchUpPolicy watermark trimming --------------------------------------------

Value val(const std::string& s) { return Value::of_string(s); }

TEST(CatchUpPolicyTest, WatermarkFloorPrunesDecidedValues) {
  CatchUpPolicy policy(/*threshold=*/2, /*cluster_size=*/4);
  for (Slot s = 1; s <= 6; ++s) {
    policy.record_decided(s, val("v" + std::to_string(s)));
  }
  EXPECT_EQ(policy.decided_count(), 6u);
  EXPECT_EQ(policy.prune_floor(), 1u);

  // Retention is pinned by the slowest process: three fast peers do not
  // move the floor while p3 still reports nothing applied.
  policy.note_watermark(0, 5);
  policy.note_watermark(1, 5);
  policy.note_watermark(2, 7);
  EXPECT_EQ(policy.decided_count(), 6u);

  policy.note_watermark(3, 4);
  EXPECT_EQ(policy.prune_floor(), 4u);
  EXPECT_EQ(policy.decided_count(), 3u);  // slots 4, 5, 6 retained
  EXPECT_EQ(policy.pruned_count(), 3u);
  EXPECT_EQ(policy.decided(3), nullptr);
  ASSERT_NE(policy.decided(4), nullptr);

  // Pruned slots can no longer be served; retained ones can.
  EXPECT_FALSE(policy.reply_for(2, 1).has_value());
  EXPECT_TRUE(policy.reply_for(4, 1).has_value());
}

TEST(CatchUpPolicyTest, StaleAndOutOfRangeGossipIsIgnored) {
  CatchUpPolicy policy(2, 3);
  policy.record_decided(1, val("a"));
  policy.record_decided(2, val("b"));
  for (ProcessId p = 0; p < 3; ++p) policy.note_watermark(p, 3);
  EXPECT_EQ(policy.prune_floor(), 3u);
  EXPECT_EQ(policy.decided_count(), 0u);

  // A reordered old message can never regress the floor.
  policy.note_watermark(1, 2);
  EXPECT_EQ(policy.prune_floor(), 3u);

  // Gossip from an id outside the cluster is dropped.
  policy.note_watermark(99, 100);
  EXPECT_EQ(policy.prune_floor(), 3u);
}

TEST(CatchUpPolicyTest, ClaimStateBelowFloorIsDroppedAndStaysOut) {
  CatchUpPolicy policy(/*threshold=*/2, /*cluster_size=*/4);
  // One claim parked for slot 1 (below threshold).
  EXPECT_FALSE(policy.add_claim(1, 2, val("x")).has_value());
  for (ProcessId p = 0; p < 4; ++p) policy.note_watermark(p, 2);
  // The parked claim set was trimmed with the floor, and new claims for
  // pruned slots are rejected outright — even a threshold's worth of
  // Byzantine claimants can neither adopt nor re-park state below it.
  EXPECT_FALSE(policy.add_claim(1, 0, val("x")).has_value());
  EXPECT_FALSE(policy.add_claim(1, 3, val("x")).has_value());
  EXPECT_FALSE(policy.ready_claim(1).has_value());
}

}  // namespace
}  // namespace fastbft::engine
