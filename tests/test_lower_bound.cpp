#include <gtest/gtest.h>

#include "adversary/lower_bound.hpp"

/// Experiment E7: the Theorem 4.5 lower bound made executable. One process
/// below the bound the scripted adversary forces disagreement; at the bound
/// the identical schedule is harmless. See src/adversary/lower_bound.hpp
/// for the construction.

namespace fastbft::adversary {
namespace {

TEST(LowerBound, AttackBreaksSafetyBelowBound) {
  // n = 3f + 2t - 2 = 8 with f = t = 2.
  LowerBoundOutcome outcome = run_lower_bound_attack(8);
  EXPECT_TRUE(outcome.disagreement) << outcome.describe();

  // The early decider committed to the fast value; someone else decided
  // the view-2 leader's value.
  bool saw_early = false, saw_other = false;
  for (const auto& d : outcome.decisions) {
    if (d.value == outcome.early_value) saw_early = true;
    if (!(d.value == outcome.early_value)) saw_other = true;
  }
  EXPECT_TRUE(saw_early);
  EXPECT_TRUE(saw_other);
}

TEST(LowerBound, SameScheduleHarmlessAtBound) {
  // n = 3f + 2t - 1 = 9: the paper's resilience. The identical adversarial
  // schedule now leaves enough honest votes that the selection algorithm
  // is forced to re-propose the fast value.
  LowerBoundOutcome outcome = run_lower_bound_attack(9);
  EXPECT_FALSE(outcome.disagreement) << outcome.describe();
  EXPECT_EQ(outcome.view2_value, outcome.early_value)
      << "selection must be forced to the decided value";
  for (const auto& d : outcome.decisions) {
    EXPECT_EQ(d.value, outcome.early_value) << "p" << d.pid;
  }
}

TEST(LowerBound, MarginGrowsAboveBound) {
  // Extra processes only make the attack more hopeless.
  for (std::uint32_t n : {10u, 11u, 12u}) {
    LowerBoundOutcome outcome = run_lower_bound_attack(n);
    EXPECT_FALSE(outcome.disagreement) << outcome.describe();
    EXPECT_EQ(outcome.view2_value, outcome.early_value) << "n=" << n;
  }
}

TEST(LowerBound, EveryCorrectProcessDecidesInBothRuns) {
  for (std::uint32_t n : {8u, 9u}) {
    LowerBoundOutcome outcome = run_lower_bound_attack(n);
    // n - 2 correct processes, all of which decide by the end of the run.
    EXPECT_EQ(outcome.decisions.size(), n - 2) << outcome.describe();
  }
}

TEST(LowerBound, DescribeMentionsVerdict) {
  auto broken = run_lower_bound_attack(8);
  EXPECT_NE(broken.describe().find("DISAGREEMENT"), std::string::npos);
  auto safe = run_lower_bound_attack(9);
  EXPECT_NE(safe.describe().find("agreement preserved"), std::string::npos);
}

}  // namespace
}  // namespace fastbft::adversary
