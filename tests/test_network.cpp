#include <gtest/gtest.h>

#include "net/sim_network.hpp"
#include "net/tags.hpp"

namespace fastbft::net {
namespace {

struct Received {
  ProcessId at;
  ProcessId from;
  Bytes payload;
  TimePoint time;
};

class SimNetworkTest : public ::testing::Test {
 protected:
  SimNetworkTest() { configure({}); }

  void configure(SimNetworkConfig config) {
    config.delta = 100;
    if (config.min_delay == 0 || config.min_delay > config.delta) {
      config.min_delay = 100;
    }
    net_ = std::make_unique<SimNetwork>(sched_, 4, config);
    for (ProcessId id = 0; id < 4; ++id) {
      net_->attach(id, [this, id](ProcessId from, const Bytes& payload) {
        received_.push_back(Received{id, from, payload, sched_.now()});
      });
    }
  }

  sim::Scheduler sched_;
  std::unique_ptr<SimNetwork> net_;
  std::vector<Received> received_;
};

TEST_F(SimNetworkTest, DeliversWithinDeltaAfterGst) {
  net_->send(0, 1, {0x42});
  sched_.run_to_completion();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].at, 1u);
  EXPECT_EQ(received_[0].from, 0u);
  EXPECT_GT(received_[0].time, 0);
  EXPECT_LE(received_[0].time, 100);
}

TEST_F(SimNetworkTest, SelfSendIsImmediate) {
  net_->send(2, 2, {0x01});
  sched_.run_to_completion();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].time, 0);
}

TEST_F(SimNetworkTest, PreGstDelaysExceedDeltaButRespectGstBound) {
  SimNetworkConfig config;
  config.gst = 5'000;
  config.pre_gst_max_delay = 100'000;  // would exceed GST + delta
  config.seed = 3;
  configure(config);

  for (int i = 0; i < 20; ++i) net_->send(0, 1, {0x01});
  sched_.run_to_completion();
  ASSERT_EQ(received_.size(), 20u);
  for (const auto& r : received_) {
    EXPECT_GT(r.time, 100);          // slower than synchronous delivery
    EXPECT_LE(r.time, 5'000 + 100);  // but capped at GST + delta
  }
}

TEST_F(SimNetworkTest, DisconnectedSenderDropsMessages) {
  net_->disconnect(0);
  net_->send(0, 1, {0x01});
  sched_.run_to_completion();
  EXPECT_TRUE(received_.empty());
}

TEST_F(SimNetworkTest, DisconnectedReceiverDropsInFlight) {
  net_->send(0, 1, {0x01});
  net_->disconnect(1);  // before delivery fires
  sched_.run_to_completion();
  EXPECT_TRUE(received_.empty());
}

TEST_F(SimNetworkTest, ScriptOverridesDeliveryTime) {
  net_->set_script([](const Envelope&, TimePoint now) {
    return std::optional<TimePoint>(now + 777);
  });
  net_->send(0, 1, {0x01});
  sched_.run_to_completion();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].time, 777);
}

TEST_F(SimNetworkTest, ScriptCanParkAndFlush) {
  net_->set_script([](const Envelope& env, TimePoint) {
    if (env.to == 1) return std::optional<TimePoint>(kTimeInfinity);
    return std::optional<TimePoint>();
  });
  net_->send(0, 1, {0x01});
  net_->send(0, 2, {0x02});
  sched_.run_to_completion();
  ASSERT_EQ(received_.size(), 1u);  // only the p2 message arrived
  EXPECT_EQ(received_[0].at, 2u);

  net_->flush_parked();
  sched_.run_to_completion();
  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(received_[1].at, 1u);
}

TEST_F(SimNetworkTest, StatsCountPerTag) {
  net_->send(0, 1, {tags::kPropose, 0x00});
  net_->send(0, 2, {tags::kPropose, 0x00});
  net_->send(1, 2, {tags::kAck});
  EXPECT_EQ(net_->stats().total_messages(), 3u);
  EXPECT_EQ(net_->stats().messages_of(tags::kPropose), 2u);
  EXPECT_EQ(net_->stats().messages_of(tags::kAck), 1u);
  EXPECT_EQ(net_->stats().total_bytes(), 5u);
}

TEST_F(SimNetworkTest, BroadcastReachesEveryone) {
  auto ep = net_->endpoint(3);
  ep->broadcast({0x05});
  sched_.run_to_completion();
  EXPECT_EQ(received_.size(), 4u);

  received_.clear();
  ep->broadcast_others({0x06});
  sched_.run_to_completion();
  EXPECT_EQ(received_.size(), 3u);
  for (const auto& r : received_) EXPECT_NE(r.at, 3u);
}

TEST_F(SimNetworkTest, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    sim::Scheduler sched;
    SimNetworkConfig config;
    config.delta = 100;
    config.min_delay = 10;
    config.seed = seed;
    SimNetwork net(sched, 2, config);
    std::vector<TimePoint> times;
    net.attach(1, [&](ProcessId, const Bytes&) { times.push_back(sched.now()); });
    net.attach(0, [&](ProcessId, const Bytes&) {});
    for (int i = 0; i < 10; ++i) net.send(0, 1, {0x01});
    sched.run_to_completion();
    return times;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

TEST(TagName, KnownAndUnknown) {
  EXPECT_EQ(tag_name(tags::kPropose), "PROPOSE");
  EXPECT_EQ(tag_name(tags::kWish), "WISH");
  EXPECT_EQ(tag_name(0xee), "TAG_0xee");
}

}  // namespace
}  // namespace fastbft::net
