#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <string>
#include <vector>

#include "smr/service.hpp"
#include "smr/shard.hpp"

/// Sharded multi-group SMR (PR 6), exercised through the client facade
/// with the SAME test bodies on both runtimes. A replica hosts one
/// consensus engine per group; sessions route each request to its key's
/// hash-assigned shard. These tests pin down the contract:
///
///  * routing determinism — every session and every replica computes the
///    same shard for a key, so data written through one session is
///    readable through any other;
///  * per-shard linearizability — concurrent sessions racing on one key
///    serialize through that key's group log (exactly one CAS winner);
///  * availability — one replica crashing and rejoining never stops the
///    shards (all groups span all replicas; quorums survive f crashes);
///  * bounded failure — when a quorum is gone entirely, per-request
///    deadlines complete futures with Reply::Status::Timeout instead of
///    failing over forever.

namespace fastbft::smr {
namespace {

using namespace std::chrono_literals;

enum class Backend { kSim, kThreaded };

std::unique_ptr<Service> make_service(Backend backend,
                                      const ServiceConfig& config) {
  return backend == Backend::kSim ? make_sim_service(config)
                                  : make_threaded_service(config);
}

class ShardedApi : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(BothRuntimes, ShardedApi,
                         ::testing::Values(Backend::kSim, Backend::kThreaded),
                         [](const auto& info) {
                           return info.param == Backend::kSim ? "Sim"
                                                              : "Threaded";
                         });

Reply must_complete(Service& service, Future<Reply> future) {
  EXPECT_TRUE(service.await(future, 20'000ms)) << "request never completed";
  return future.value();
}

// --- Shard map ----------------------------------------------------------------

TEST(ShardMap, DeterministicAndIndependentOfProcessState) {
  // The map is pure code on the key bytes (FNV-1a), NOT std::hash: the
  // same key must land in the same group in every process — clients and
  // replicas each compute it locally and must agree.
  EXPECT_EQ(shard_of("account:42", 4), shard_of("account:42", 4));
  EXPECT_EQ(shard_hash("account:42"),
            shard_hash(std::string("account:") + "42"));
  // Golden values pin the wire-compatibility of the map itself: changing
  // the hash silently re-partitions every deployed keyspace.
  EXPECT_EQ(shard_hash(""), 14695981039346656037ull);
  EXPECT_EQ(shard_of("", 1), 0u);
  EXPECT_EQ(shard_of("anything", 0), 0u) << "degenerate S clamps to one";

  // All shards are reachable: a small key population covers every group.
  for (std::uint32_t shards : {2u, 4u, 8u}) {
    std::set<GroupId> seen;
    for (int i = 0; i < 256; ++i) {
      GroupId g = shard_of("key" + std::to_string(i), shards);
      ASSERT_LT(g, shards);
      seen.insert(g);
    }
    EXPECT_EQ(seen.size(), shards) << "S=" << shards;
  }
}

// --- Routing determinism across sessions --------------------------------------

TEST_P(ShardedApi, WritesThroughOneSessionAreReadableThroughAnother) {
  // If any two parties disagreed on a key's owning group, the write and
  // the read would hit different logs and the read would miss. Two
  // independent sessions with different preferred gateways must see each
  // other's writes for keys in every shard.
  constexpr std::uint32_t kShards = 4;
  auto config = ServiceConfig{}
                    .with_cluster(4, 1, 1)
                    .with_sessions(2)
                    .with_shards(kShards)
                    .with_batch(4)
                    .with_pipeline_depth(2)
                    .with_seed(23);
  auto service = make_service(GetParam(), config);
  service->start();

  // One key per shard, discovered through the shared map.
  std::vector<std::string> keys;
  for (int i = 0; keys.size() < kShards; ++i) {
    std::string key = "route" + std::to_string(i);
    if (shard_of(key, kShards) == keys.size()) keys.push_back(key);
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    Reply put = must_complete(
        *service, service->session(0).put(keys[i], "v" + std::to_string(i)));
    EXPECT_TRUE(put.result.ok);
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    Reply read = must_complete(*service, service->session(1).get(keys[i]));
    EXPECT_TRUE(read.result.found) << keys[i] << " routed to the wrong shard";
    EXPECT_EQ(read.result.value, "v" + std::to_string(i));
  }

  // Multi-key read fans out client-side and reassembles in keys order.
  auto batch = service->session(1).mget(keys);
  ASSERT_TRUE(service->run_until([&] { return batch.ready(); }, 20'000ms));
  const std::vector<Reply>& replies = batch.value();
  ASSERT_EQ(replies.size(), keys.size());
  for (std::size_t i = 0; i < replies.size(); ++i) {
    EXPECT_TRUE(replies[i].ok());
    EXPECT_EQ(replies[i].result.value, "v" + std::to_string(i));
  }

  // Reads are logged commands too: 4 puts + 4 gets + 4 mget reads.
  EXPECT_TRUE(service->await_applied(3 * kShards, 20'000ms));
  service->stop();
  EXPECT_TRUE(service->stores_agree());
}

// --- Per-shard linearizability under concurrent sessions ----------------------

TEST_P(ShardedApi, ConcurrentCasOnOneKeyHasExactlyOneWinner) {
  // Two sessions race a compare-and-swap on the SAME key: both carry the
  // same expectation, so the key's group log must serialize them —
  // exactly one wins, and a subsequent read returns the winner's value.
  // Meanwhile each session also writes its own keys in other shards; the
  // race must not disturb them.
  constexpr std::uint32_t kShards = 2;
  auto config = ServiceConfig{}
                    .with_cluster(4, 1, 1)
                    .with_sessions(2)
                    .with_shards(kShards)
                    .with_batch(4)
                    .with_pipeline_depth(2)
                    .with_seed(29);
  auto service = make_service(GetParam(), config);
  service->start();

  Reply seed = must_complete(*service, service->session(0).put("ctr", "0"));
  ASSERT_TRUE(seed.result.ok);

  auto cas_a = service->session(0).cas("ctr", "0", "A");
  auto cas_b = service->session(1).cas("ctr", "0", "B");
  auto side_a = service->session(0).put("side-a", "1");
  auto side_b = service->session(1).put("side-b", "2");
  ASSERT_TRUE(service->run_until(
      [&] {
        return cas_a.ready() && cas_b.ready() && side_a.ready() &&
               side_b.ready();
      },
      20'000ms));

  const bool a_won = cas_a.value().result.ok;
  const bool b_won = cas_b.value().result.ok;
  EXPECT_NE(a_won, b_won) << "a linearizable register has one CAS winner";
  Reply read = must_complete(*service, service->session(1).get("ctr"));
  EXPECT_EQ(read.result.value, a_won ? "A" : "B");
  EXPECT_TRUE(side_a.value().result.ok);
  EXPECT_TRUE(side_b.value().result.ok);

  // 1 seed + 2 CAS attempts + 2 side puts + 1 read = 6 distinct commands,
  // applied at-most-once on every replica regardless of shard count.
  EXPECT_TRUE(service->await_applied(6, 20'000ms));
  service->stop();
  for (ProcessId id = 0; id < service->quorum().n; ++id) {
    EXPECT_EQ(service->applied_commands(id), 6u) << "p" << id;
  }
  EXPECT_TRUE(service->stores_agree());
}

// --- Crash -> rejoin while shards keep serving --------------------------------

TEST_P(ShardedApi, ReplicaCrashAndRejoinWhileAllShardsServe) {
  // Every group spans all replicas, so one replica crashing leaves every
  // shard a live quorum: requests to all shards must keep completing
  // while it is down. After it rejoins, per-group catch-up (snapshots +
  // decided-claim replay) must converge its stores.
  constexpr std::uint32_t kShards = 4;
  auto config = ServiceConfig{}
                    .with_cluster(4, 1, 1)
                    .with_sessions(1)
                    .with_shards(kShards)
                    .with_batch(4)
                    .with_pipeline_depth(2)
                    .with_snapshots(4)
                    .with_seed(31);
  auto service = make_service(GetParam(), config);
  service->start();
  ClientSession& session = service->session(0);

  std::vector<std::string> keys;
  for (int i = 0; keys.size() < kShards; ++i) {
    std::string key = "cr" + std::to_string(i);
    if (shard_of(key, kShards) == keys.size()) keys.push_back(key);
  }

  for (const auto& key : keys) {
    EXPECT_TRUE(must_complete(*service, session.put(key, "before")).result.ok);
  }

  service->crash(2);
  for (const auto& key : keys) {
    Reply reply = must_complete(*service, session.put(key, "during"));
    EXPECT_TRUE(reply.result.ok)
        << key << " stalled while one replica was down";
  }

  service->restart(2);
  for (const auto& key : keys) {
    EXPECT_TRUE(must_complete(*service, session.put(key, "after")).result.ok);
  }
  Reply probe = must_complete(*service, session.get(keys[0]));
  EXPECT_EQ(probe.result.value, "after");

  // 3 writes per shard + 1 read; the rejoined replica must catch up on
  // every group before the digest audit.
  EXPECT_TRUE(service->await_applied(3 * kShards + 1, 30'000ms));
  service->stop();
  EXPECT_TRUE(service->stores_agree());
}

// --- Deadlines against a dead quorum ------------------------------------------

TEST(ShardedDeadline, CompletesWithTimeoutWhenQuorumIsGone) {
  // Regression for unbounded failover: with a whole quorum crashed no
  // gateway rotation can ever complete the request, and before deadlines
  // the future just hung. The per-request budget must fire, complete the
  // future with Status::Timeout, free the window slot, and leave healthy
  // traffic from before the crash untouched.
  //
  // Threaded runtime only: exceeding the fault bound (f + 1 crashes) is
  // exactly the regime the simulator's crash_now() asserts against, while
  // the threaded cluster allows it for precisely this kind of test.
  auto config = ServiceConfig{}
                    .with_cluster(4, 1, 1)
                    .with_sessions(1)
                    .with_shards(2)
                    .with_request_timeout(20'000)  // µs; several rotations...
                    .with_deadline(90'000)         // ...inside one budget
                    .with_seed(37);
  auto service = make_threaded_service(config);
  service->start();
  ClientSession& session = service->session(0);

  Reply healthy = must_complete(*service, session.put("warm", "up"));
  EXPECT_TRUE(healthy.ok());
  EXPECT_FALSE(healthy.timed_out());

  // f + 1 = 2 crashes out of n = 4: no group has a commit quorum left.
  service->crash(0);
  service->crash(1);

  auto doomed = session.put("doomed", "never");
  ASSERT_TRUE(service->await(doomed, 20'000ms))
      << "deadline never completed the future";
  const Reply& reply = doomed.value();
  EXPECT_TRUE(reply.timed_out());
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status, Reply::Status::Timeout);
  EXPECT_EQ(reply.op, OpKind::Put);
  EXPECT_GE(session.deadline_timeouts(), 1u);
  EXPECT_GE(session.failovers(), 1u)
      << "the budget must ride through at least one failover first";
  EXPECT_EQ(session.in_flight(), 0u) << "timed-out request leaked its slot";
  service->stop();
}

}  // namespace
}  // namespace fastbft::smr
