#include <gtest/gtest.h>

#include "consensus/config.hpp"

namespace fastbft::consensus {
namespace {

TEST(QuorumConfig, PaperHeadlineNumbers) {
  // f = t = 1: four processes suffice (vs six for FaB Paxos).
  EXPECT_EQ(QuorumConfig::min_processes(1, 1), 4u);
  // Vanilla 5f - 1.
  EXPECT_EQ(QuorumConfig::min_processes(2, 2), 9u);
  EXPECT_EQ(QuorumConfig::min_processes(3, 3), 14u);
  // t = 1 keeps optimal resilience 3f + 1.
  EXPECT_EQ(QuorumConfig::min_processes(2, 1), 7u);
  EXPECT_EQ(QuorumConfig::min_processes(3, 1), 10u);
}

TEST(QuorumConfig, QuorumsAtMinimumN) {
  auto cfg = QuorumConfig::create(4, 1, 1);
  EXPECT_EQ(cfg.vote_quorum(), 3u);
  EXPECT_EQ(cfg.fast_quorum(), 3u);
  EXPECT_EQ(cfg.cert_quorum(), 2u);
  EXPECT_EQ(cfg.cert_req_targets(), 3u);
  EXPECT_EQ(cfg.commit_quorum(), 3u);  // ceil((4+1+1)/2)
  EXPECT_EQ(cfg.equivocation_vote_threshold(), 2u);
}

TEST(QuorumConfig, GeneralizedQuorums) {
  auto cfg = QuorumConfig::create(7, 2, 1);
  EXPECT_EQ(cfg.vote_quorum(), 5u);
  EXPECT_EQ(cfg.fast_quorum(), 6u);
  EXPECT_EQ(cfg.cert_quorum(), 3u);
  EXPECT_EQ(cfg.commit_quorum(), 5u);  // ceil((7+2+1)/2)
  EXPECT_EQ(cfg.equivocation_vote_threshold(), 3u);
}

TEST(QuorumConfig, CommitQuorumIsCeil) {
  // n + f + 1 odd and even cases.
  EXPECT_EQ(QuorumConfig::create(9, 2, 2).commit_quorum(), 6u);   // ceil(12/2)
  EXPECT_EQ(QuorumConfig::create(10, 2, 2).commit_quorum(), 7u);  // ceil(13/2)
}

TEST(QuorumConfig, VanillaEqualsGeneralizedAtTEqualsF) {
  auto vanilla = QuorumConfig::vanilla(9, 2);
  auto general = QuorumConfig::create(9, 2, 2);
  EXPECT_EQ(vanilla, general);
  EXPECT_EQ(vanilla.fast_quorum(), vanilla.vote_quorum());
  EXPECT_EQ(vanilla.equivocation_vote_threshold(), 2 * vanilla.f);
}

TEST(QuorumConfig, LargerThanMinimumAccepted) {
  auto cfg = QuorumConfig::create(20, 2, 2);
  EXPECT_TRUE(cfg.satisfies_bound());
  EXPECT_EQ(cfg.fast_quorum(), 18u);
}

TEST(QuorumConfigDeath, RejectsBelowBound) {
  EXPECT_DEATH((void)QuorumConfig::create(8, 2, 2), "3f \\+ 2t - 1");
  EXPECT_DEATH((void)QuorumConfig::create(3, 1, 1), "3f \\+ 2t - 1");
}

TEST(QuorumConfigDeath, RejectsBadFT) {
  EXPECT_DEATH((void)QuorumConfig::create(10, 1, 2), "3f \\+ 2t - 1");  // t > f
  EXPECT_DEATH((void)QuorumConfig::create(10, 2, 0), "3f \\+ 2t - 1");  // t = 0
}

TEST(QuorumConfig, UnsafeConstructorAllowsSubBoundN) {
  auto cfg = QuorumConfig::unsafe_for_lower_bound_demo(8, 2, 2);
  EXPECT_FALSE(cfg.satisfies_bound());
  EXPECT_EQ(cfg.vote_quorum(), 6u);
  EXPECT_EQ(cfg.fast_quorum(), 6u);
}

TEST(QuorumConfig, QuorumIntersectionProperties) {
  // The three quorum intersection properties of Section 3.3, checked as
  // arithmetic over all legal configs up to f = 6.
  for (std::uint32_t f = 1; f <= 6; ++f) {
    for (std::uint32_t t = 1; t <= f; ++t) {
      std::uint32_t n = QuorumConfig::min_processes(f, t);
      auto cfg = QuorumConfig::create(n, f, t);
      // (QI1) two vote quorums intersect in a correct process.
      EXPECT_GE(2 * cfg.vote_quorum(), n + f + 1) << cfg.to_string();
      // Fast quorum and vote quorum intersect in >= (f-1) + (f+t) processes
      // (the generalized equivocation-counting argument, Appendix A.3).
      EXPECT_GE(cfg.fast_quorum() + cfg.vote_quorum() - n,
                (f - 1) + cfg.equivocation_vote_threshold())
          << cfg.to_string();
      // (QI3 analogue) fast quorum and the f+t vote set (excluding the
      // equivocator, <= f-1 Byzantine) share a correct process.
      EXPECT_GE(cfg.fast_quorum() + cfg.equivocation_vote_threshold() - n, f)
          << cfg.to_string();
      // Commit quorums: any two intersect in a correct process.
      EXPECT_GE(2 * cfg.commit_quorum(), n + f + 1) << cfg.to_string();
      // Commit quorum intersects fast quorum in a correct process.
      EXPECT_GE(cfg.commit_quorum() + cfg.fast_quorum(), n + f + 1)
          << cfg.to_string();
    }
  }
}

TEST(QuorumConfig, ToStringMentionsParameters) {
  auto cfg = QuorumConfig::create(7, 2, 1);
  std::string s = cfg.to_string();
  EXPECT_NE(s.find("n=7"), std::string::npos);
  EXPECT_NE(s.find("f=2"), std::string::npos);
  EXPECT_NE(s.find("t=1"), std::string::npos);
}

}  // namespace
}  // namespace fastbft::consensus
