#include <gtest/gtest.h>

#include "consensus/types.hpp"
#include "sim/random.hpp"

/// Progress- and commit-certificate verification, including adversarial
/// variants (wrong domain, cross-view replay, padding with garbage).

namespace fastbft::consensus {
namespace {

class CertTest : public ::testing::Test {
 protected:
  QuorumConfig cfg_ = QuorumConfig::create(7, 2, 1);  // cert_quorum=3, commit=5
  std::shared_ptr<const crypto::KeyStore> keys_ =
      std::make_shared<const crypto::KeyStore>(21, 7);
  crypto::Verifier verifier_{keys_};
  Value x_ = Value::of_string("X");
  Value y_ = Value::of_string("Y");

  crypto::Signature sign(ProcessId p, const char* dom, const Bytes& m) {
    return crypto::Signer(keys_, p).sign(dom, m);
  }

  ProgressCert pcert(const Value& x, View v, std::uint32_t count) {
    ProgressCert cert;
    for (ProcessId p = 0; p < count; ++p) {
      cert.acks.push_back(
          SignatureEntry{p, sign(p, kDomCertAck, certack_preimage(x, v))});
    }
    return cert;
  }

  CommitCert ccert(const Value& x, View v, std::uint32_t count) {
    CommitCert cc;
    cc.x = x;
    cc.v = v;
    for (ProcessId p = 0; p < count; ++p) {
      cc.sigs.push_back(SignatureEntry{p, sign(p, kDomAck, ack_preimage(x, v))});
    }
    return cc;
  }
};

// --- Progress certificates ------------------------------------------------------

TEST_F(CertTest, EmptyCertOnlyValidInViewOne) {
  EXPECT_TRUE(verify_progress_cert(verifier_, cfg_, x_, 1, ProgressCert{}));
  EXPECT_FALSE(verify_progress_cert(verifier_, cfg_, x_, 2, ProgressCert{}));
}

TEST_F(CertTest, NonEmptyCertInViewOneRejected) {
  // View 1 must use the empty certificate by convention.
  EXPECT_FALSE(verify_progress_cert(verifier_, cfg_, x_, 1, pcert(x_, 1, 3)));
}

TEST_F(CertTest, QuorumSizeBoundary) {
  EXPECT_FALSE(verify_progress_cert(verifier_, cfg_, x_, 5, pcert(x_, 5, 2)));
  EXPECT_TRUE(verify_progress_cert(verifier_, cfg_, x_, 5, pcert(x_, 5, 3)));
  EXPECT_TRUE(verify_progress_cert(verifier_, cfg_, x_, 5, pcert(x_, 5, 4)));
}

TEST_F(CertTest, WrongValueOrViewRejected) {
  ProgressCert cert = pcert(x_, 5, 3);
  EXPECT_FALSE(verify_progress_cert(verifier_, cfg_, y_, 5, cert));
  EXPECT_FALSE(verify_progress_cert(verifier_, cfg_, x_, 6, cert));
}

TEST_F(CertTest, DuplicateSignersDoNotCount) {
  ProgressCert cert;
  auto sig0 = sign(0, kDomCertAck, certack_preimage(x_, 5));
  for (int i = 0; i < 3; ++i) cert.acks.push_back(SignatureEntry{0, sig0});
  EXPECT_FALSE(verify_progress_cert(verifier_, cfg_, x_, 5, cert));
}

TEST_F(CertTest, GarbagePaddingDoesNotHelp) {
  // Two valid signatures plus arbitrarily many invalid ones stay invalid.
  ProgressCert cert = pcert(x_, 5, 2);
  for (ProcessId p = 2; p < 7; ++p) {
    cert.acks.push_back(SignatureEntry{p, crypto::Signature{Bytes(32, 0xaa)}});
  }
  EXPECT_FALSE(verify_progress_cert(verifier_, cfg_, x_, 5, cert));
}

TEST_F(CertTest, CrossDomainSignatureRejected) {
  // Signatures over the ack domain must not validate as CertAcks even
  // though the preimage bytes coincide.
  ProgressCert cert;
  for (ProcessId p = 0; p < 3; ++p) {
    cert.acks.push_back(
        SignatureEntry{p, sign(p, kDomAck, certack_preimage(x_, 5))});
  }
  EXPECT_FALSE(verify_progress_cert(verifier_, cfg_, x_, 5, cert));
}

TEST_F(CertTest, SizeIsBoundedByQuorumNotView) {
  // The paper's key point (Section 3.2): certificate size is O(f),
  // independent of the view number.
  std::size_t size_v2 = pcert(x_, 2, 3).size_bytes();
  std::size_t size_v1000000 = pcert(x_, 1'000'000, 3).size_bytes();
  EXPECT_EQ(size_v2, size_v1000000);
}

// --- Commit certificates ----------------------------------------------------------

TEST_F(CertTest, CommitCertQuorumBoundary) {
  EXPECT_FALSE(verify_commit_cert(verifier_, cfg_, ccert(x_, 3, 4)));
  EXPECT_TRUE(verify_commit_cert(verifier_, cfg_, ccert(x_, 3, 5)));
}

TEST_F(CertTest, CommitCertEmptyValueOrViewRejected) {
  CommitCert cc = ccert(x_, 3, 5);
  cc.v = kNoView;
  EXPECT_FALSE(verify_commit_cert(verifier_, cfg_, cc));
  CommitCert cc2 = ccert(Value(), 3, 5);
  EXPECT_FALSE(verify_commit_cert(verifier_, cfg_, cc2));
}

TEST_F(CertTest, CommitCertValueViewBindingTamperRejected) {
  CommitCert cc = ccert(x_, 3, 5);
  cc.x = y_;  // signatures cover (x, 3), not (y, 3)
  EXPECT_FALSE(verify_commit_cert(verifier_, cfg_, cc));
  CommitCert cc2 = ccert(x_, 3, 5);
  cc2.v = 4;
  EXPECT_FALSE(verify_commit_cert(verifier_, cfg_, cc2));
}

TEST_F(CertTest, CommitCertSurvivesCodecRoundtrip) {
  CommitCert cc = ccert(x_, 3, 5);
  Bytes wire = encode_to_bytes(cc);
  auto decoded = decode_from_bytes<CommitCert>(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(verify_commit_cert(verifier_, cfg_, *decoded));
}

// --- Parameterized: certificate validity across all configs ------------------------

struct CfgParam {
  std::uint32_t f;
  std::uint32_t t;
};

class CertAcrossConfigs : public ::testing::TestWithParam<CfgParam> {};

TEST_P(CertAcrossConfigs, ExactQuorumsVerify) {
  const auto [f, t] = GetParam();
  const std::uint32_t n = QuorumConfig::min_processes(f, t);
  auto cfg = QuorumConfig::create(n, f, t);
  auto keys = std::make_shared<const crypto::KeyStore>(5, n);
  crypto::Verifier verifier(keys);
  Value x = Value::of_string("V");

  ProgressCert pc;
  for (ProcessId p = 0; p < cfg.cert_quorum(); ++p) {
    pc.acks.push_back(SignatureEntry{
        p, crypto::Signer(keys, p).sign(kDomCertAck, certack_preimage(x, 7))});
  }
  EXPECT_TRUE(verify_progress_cert(verifier, cfg, x, 7, pc));
  pc.acks.pop_back();
  EXPECT_FALSE(verify_progress_cert(verifier, cfg, x, 7, pc));

  CommitCert cc;
  cc.x = x;
  cc.v = 7;
  for (ProcessId p = 0; p < cfg.commit_quorum(); ++p) {
    cc.sigs.push_back(SignatureEntry{
        p, crypto::Signer(keys, p).sign(kDomAck, ack_preimage(x, 7))});
  }
  EXPECT_TRUE(verify_commit_cert(verifier, cfg, cc));
  cc.sigs.pop_back();
  EXPECT_FALSE(verify_commit_cert(verifier, cfg, cc));
}

std::vector<CfgParam> all_configs() {
  std::vector<CfgParam> params;
  for (std::uint32_t f = 1; f <= 5; ++f) {
    for (std::uint32_t t = 1; t <= f; ++t) params.push_back({f, t});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, CertAcrossConfigs,
                         ::testing::ValuesIn(all_configs()),
                         [](const auto& info) {
                           return "f" + std::to_string(info.param.f) + "t" +
                                  std::to_string(info.param.t);
                         });

}  // namespace
}  // namespace fastbft::consensus
