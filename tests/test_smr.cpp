#include <gtest/gtest.h>

#include "net/tags.hpp"
#include "smr/client.hpp"
#include "smr/smr_node.hpp"

/// SMR layer: command/batch codecs, the KV state machine, and full
/// replicated-log executions (fault-free, with crashes, with laggard
/// catch-up).

namespace fastbft::smr {
namespace {

// --- Command / batch codecs -----------------------------------------------------

TEST(Command, RoundtripAllKinds) {
  for (const Command& cmd :
       {Command::put("k", "v", 7, 3), Command::del("k", 7, 4),
        Command::noop()}) {
    auto decoded = Command::from_value(cmd.to_value());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, cmd);
  }
}

TEST(Command, RejectsGarbage) {
  EXPECT_FALSE(Command::from_value(Value::of_string("junk")).has_value());
  EXPECT_FALSE(Command::from_value(Value()).has_value());
}

TEST(Command, ToStringReadable) {
  EXPECT_EQ(Command::put("a", "1").to_string(), "PUT a=1");
  EXPECT_EQ(Command::del("a").to_string(), "DEL a");
  EXPECT_EQ(Command::noop().to_string(), "NOOP");
}

TEST(Batch, Roundtrip) {
  std::vector<Command> batch = {Command::put("a", "1", 1, 1),
                                Command::del("b", 1, 2), Command::noop()};
  auto decoded = decode_batch(encode_batch(batch));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, batch);
}

TEST(Batch, RejectsMalformed) {
  EXPECT_FALSE(decode_batch(Value()).has_value());
  EXPECT_FALSE(decode_batch(Value::of_string("xx")).has_value());
  Encoder enc;
  enc.u32(0);  // empty batch claim
  EXPECT_FALSE(decode_batch(Value(std::move(enc).take())).has_value());
}

// --- KvStore ----------------------------------------------------------------------

TEST(KvStoreTest, PutGetDel) {
  KvStore store;
  store.apply(Command::put("k1", "v1"));
  store.apply(Command::put("k2", "v2"));
  EXPECT_EQ(store.get("k1"), "v1");
  store.apply(Command::put("k1", "v1b"));
  EXPECT_EQ(store.get("k1"), "v1b");
  store.apply(Command::del("k2"));
  EXPECT_FALSE(store.get("k2").has_value());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.applied_count(), 4u);
}

TEST(KvStoreTest, DigestReflectsStateAndHistoryLength) {
  KvStore a, b;
  a.apply(Command::put("k", "v"));
  b.apply(Command::put("k", "v"));
  EXPECT_EQ(a.state_digest(), b.state_digest());
  b.apply(Command::noop());
  EXPECT_NE(a.state_digest(), b.state_digest());
}

TEST(KvStoreTest, SerializeRestoreRoundtrip) {
  KvStore a;
  a.apply(Command::put("k1", "v1"));
  a.apply(Command::put("k2", "v2"));
  a.apply(Command::del("k1"));

  KvStore b;
  b.apply(Command::put("junk", "state"));  // must be fully replaced
  ASSERT_TRUE(b.restore(a.serialize()));
  EXPECT_EQ(b.state_digest(), a.state_digest());
  EXPECT_EQ(b.get("k2"), "v2");
  EXPECT_FALSE(b.get("junk").has_value());
  EXPECT_EQ(b.applied_count(), 3u);

  // Malformed images are rejected and leave the store untouched.
  Bytes truncated = a.serialize();
  truncated.pop_back();
  auto digest = b.state_digest();
  EXPECT_FALSE(b.restore(truncated));
  EXPECT_EQ(b.state_digest(), digest);
}

// --- Snapshot codec --------------------------------------------------------------

TEST(SnapshotTest, EncodeDecodeRoundtripAndDigest) {
  KvStore store;
  store.apply(Command::put("a", "1"));
  store.apply(Command::put("b", "2"));

  Snapshot snap;
  snap.applied_below = 17;
  snap.applied_commands = 2;
  snap.kv_state = store.serialize();
  snap.applied_ids = {{{1, 1}, 15}, {{1, 2}, 16}};

  auto decoded = Snapshot::decode(snap.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, snap);
  EXPECT_EQ(decoded->digest(), snap.digest());

  KvStore restored;
  ASSERT_TRUE(restored.restore(decoded->kv_state));
  EXPECT_EQ(restored.state_digest(), store.state_digest());
}

TEST(SnapshotTest, RejectsMalformed) {
  EXPECT_FALSE(Snapshot::decode(Bytes{}).has_value());
  EXPECT_FALSE(Snapshot::decode(to_bytes("garbage")).has_value());
  Snapshot snap;
  snap.applied_below = 3;
  Bytes trailing = snap.encode();
  trailing.push_back(0x00);
  EXPECT_FALSE(Snapshot::decode(trailing).has_value());
}

// --- Replicated executions ----------------------------------------------------------

/// Builds an SMR cluster without the faulty-marking problem: uses the
/// node_factory hook (honest default path) instead of replace_process.
struct SmrCluster {
  SmrCluster(consensus::QuorumConfig cfg, SmrOptions smr_options,
             std::uint64_t seed = 1,
             SmrNode::CommitCallback on_commit = nullptr)
      : nodes(cfg.n, nullptr), options(make_options(cfg, seed)) {
    options.node_factory = [this, smr_options, on_commit](
                               const runtime::ProcessContext& ctx,
                               const runtime::NodeOptions&,
                               runtime::Node::DecideCallback) {
      auto node = std::make_unique<SmrNode>(ctx, smr_options, on_commit);
      nodes[ctx.id] = node.get();
      return node;
    };
    cluster = std::make_unique<runtime::Cluster>(
        options, std::vector<Value>(cfg.n, Value::of_string("unused")));
  }

  static runtime::ClusterOptions make_options(consensus::QuorumConfig cfg,
                                              std::uint64_t seed) {
    runtime::ClusterOptions o;
    o.cfg = cfg;
    o.net.delta = 100;
    o.net.min_delay = 100;
    o.net.seed = seed;
    return o;
  }

  std::vector<SmrNode*> nodes;
  runtime::ClusterOptions options;
  std::unique_ptr<runtime::Cluster> cluster;
};

TEST(Smr, ReplicatesCommandsAcrossAllNodes) {
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  SmrOptions smr_options;
  smr_options.max_batch = 4;
  smr_options.target_commands = 10;
  SmrCluster h(cfg, smr_options);
  h.cluster->start();

  // Submit 10 commands through node 0 (requests broadcast to everyone).
  h.cluster->scheduler().schedule_at(0, [&] {
    for (int i = 1; i <= 10; ++i) {
      h.nodes[0]->submit(Command::put("key" + std::to_string(i),
                                      "val" + std::to_string(i), 1,
                                      static_cast<std::uint64_t>(i)));
    }
  });
  h.cluster->run_until(200'000);

  for (ProcessId id = 0; id < 4; ++id) {
    ASSERT_NE(h.nodes[id], nullptr);
    EXPECT_EQ(h.nodes[id]->applied_commands(), 10u) << "p" << id;
    EXPECT_EQ(h.nodes[id]->store().get("key7"), "val7") << "p" << id;
  }
  // Replica state machines must be byte-identical.
  auto digest0 = h.nodes[0]->store().state_digest();
  for (ProcessId id = 1; id < 4; ++id) {
    EXPECT_EQ(h.nodes[id]->store().state_digest(), digest0) << "p" << id;
  }
}

TEST(Smr, BatchingReducesSlotCount) {
  auto run_with_batch = [](std::uint32_t batch) {
    auto cfg = consensus::QuorumConfig::create(4, 1, 1);
    SmrOptions smr_options;
    smr_options.max_batch = batch;
    smr_options.target_commands = 12;
    SmrCluster h(cfg, smr_options);
    h.cluster->start();
    h.cluster->scheduler().schedule_at(0, [&] {
      for (int i = 1; i <= 12; ++i) {
        h.nodes[1]->submit(Command::put("k" + std::to_string(i), "v", 2,
                                        static_cast<std::uint64_t>(i)));
      }
    });
    h.cluster->run_until(500'000);
    EXPECT_EQ(h.nodes[0]->applied_commands(), 12u);
    return h.nodes[0]->current_slot();
  };
  Slot slots_b1 = run_with_batch(1);
  Slot slots_b6 = run_with_batch(6);
  EXPECT_GT(slots_b1, slots_b6);
}

TEST(Smr, DuplicateSubmissionsAppliedOnce) {
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  SmrOptions smr_options;
  smr_options.target_commands = 3;
  SmrCluster h(cfg, smr_options);
  h.cluster->start();
  h.cluster->scheduler().schedule_at(0, [&] {
    for (int rep = 0; rep < 3; ++rep) {
      for (int i = 1; i <= 3; ++i) {
        h.nodes[static_cast<ProcessId>(rep)]->submit(
            Command::put("k" + std::to_string(i), "v", 9,
                         static_cast<std::uint64_t>(i)));
      }
    }
  });
  h.cluster->run_until(200'000);
  for (ProcessId id = 0; id < 4; ++id) {
    EXPECT_EQ(h.nodes[id]->applied_commands(), 3u) << "p" << id;
  }
}

TEST(Smr, SurvivesNonLeaderCrash) {
  auto cfg = consensus::QuorumConfig::create(7, 2, 1);
  SmrOptions smr_options;
  smr_options.target_commands = 6;
  SmrCluster h(cfg, smr_options);
  h.cluster->crash_at(5, 450);
  h.cluster->crash_at(6, 450);
  h.cluster->start();
  h.cluster->scheduler().schedule_at(0, [&] {
    for (int i = 1; i <= 6; ++i) {
      h.nodes[0]->submit(Command::put("k" + std::to_string(i),
                                      "v" + std::to_string(i), 1,
                                      static_cast<std::uint64_t>(i)));
    }
  });
  h.cluster->run_until(2'000'000);
  for (ProcessId id = 0; id < 5; ++id) {
    EXPECT_EQ(h.nodes[id]->applied_commands(), 6u) << "p" << id;
    EXPECT_EQ(h.nodes[id]->store().get("k3"), "v3") << "p" << id;
  }
}

TEST(Smr, LeaderCrashMidStream) {
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  SmrOptions smr_options;
  smr_options.target_commands = 5;
  // Pin the fixed-leader regime: this test's crash schedule assumes p0
  // leads view 1 of every slot (multi-group runs rotate by default).
  smr_options.rotate_leaders = false;
  SmrCluster h(cfg, smr_options);
  h.cluster->crash_at(0, 350);  // p0 leads view 1 of every slot
  h.cluster->start();
  h.cluster->scheduler().schedule_at(0, [&] {
    for (int i = 1; i <= 5; ++i) {
      h.nodes[1]->submit(Command::put("k" + std::to_string(i), "v", 3,
                                      static_cast<std::uint64_t>(i)));
    }
  });
  h.cluster->run_until(5'000'000);
  for (ProcessId id = 1; id < 4; ++id) {
    EXPECT_EQ(h.nodes[id]->applied_commands(), 5u) << "p" << id;
  }
  auto digest1 = h.nodes[1]->store().state_digest();
  EXPECT_EQ(h.nodes[2]->store().state_digest(), digest1);
  EXPECT_EQ(h.nodes[3]->store().state_digest(), digest1);
}

TEST(Smr, NoopSlotsWhenIdle) {
  // Without a target, an idle cluster keeps replicating noop slots; state
  // digests still match (liveness of the machinery itself).
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  SmrOptions smr_options;
  smr_options.target_commands = 0;
  SmrCluster h(cfg, smr_options);
  h.cluster->start();
  h.cluster->run_until(5'000);
  EXPECT_GT(h.nodes[0]->noop_slots(), 0u);
  EXPECT_EQ(h.nodes[0]->applied_commands(), 0u);
  EXPECT_EQ(h.nodes[0]->store().state_digest(),
            h.nodes[3]->store().state_digest());
}


// --- Pipelined slot engine ----------------------------------------------------------

/// Runs `commands` PUTs through a cluster with the given pipeline depth and
/// returns the simulated completion time (all nodes applied everything).
TimePoint run_pipelined(std::uint32_t depth, std::uint64_t commands,
                        SmrNode::CommitCallback on_commit = nullptr,
                        Duration min_delay = 100) {
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  SmrOptions smr_options;
  smr_options.max_batch = 2;
  smr_options.target_commands = commands;
  smr_options.pipeline_depth = depth;
  SmrCluster h(cfg, smr_options, /*seed=*/7, std::move(on_commit));
  h.options.net.min_delay = min_delay;  // < delta adds delivery jitter
  h.cluster = std::make_unique<runtime::Cluster>(
      h.options, std::vector<Value>(4, Value::of_string("unused")));
  h.cluster->start();
  h.cluster->scheduler().schedule_at(0, [&] {
    for (std::uint64_t i = 1; i <= commands; ++i) {
      h.nodes[0]->submit(Command::put("key" + std::to_string(i),
                                      "val" + std::to_string(i), 1, i));
    }
  });

  while (h.cluster->scheduler().now() < 10'000'000) {
    bool done = true;
    for (auto* node : h.nodes) {
      if (node->applied_commands() < commands) done = false;
    }
    if (done) break;
    if (!h.cluster->scheduler().step()) break;
  }
  for (ProcessId id = 0; id < 4; ++id) {
    EXPECT_EQ(h.nodes[id]->applied_commands(), commands) << "p" << id;
    EXPECT_EQ(h.nodes[id]->store().state_digest(),
              h.nodes[0]->store().state_digest())
        << "p" << id;
  }
  return h.cluster->scheduler().now();
}

TEST(SmrPipelined, InOrderApplyUnderJitter) {
  // Depth 4 with jittery delivery: decisions can land out of slot order,
  // but every replica must apply slots 1, 2, 3, ... consecutively.
  std::map<ProcessId, std::vector<Slot>> applied_slots;
  run_pipelined(/*depth=*/4, /*commands=*/20,
                [&applied_slots](ProcessId pid, GroupId, Slot slot,
                                 const std::vector<Command>&) {
                  applied_slots[pid].push_back(slot);
                },
                /*min_delay=*/30);
  ASSERT_EQ(applied_slots.size(), 4u);
  for (const auto& [pid, slots] : applied_slots) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      ASSERT_EQ(slots[i], static_cast<Slot>(i + 1))
          << "p" << pid << " applied slots out of order";
    }
  }
}

TEST(SmrPipelined, DepthFourBeatsSequential) {
  // The KV-store audit inside run_pipelined doubles as the correctness
  // check; the point here is the wall-clock (simulated) win.
  TimePoint sequential = run_pipelined(1, 24);
  TimePoint pipelined = run_pipelined(4, 24);
  EXPECT_LT(pipelined, sequential)
      << "depth 4 must finish the same workload in less simulated time";
}

TEST(SmrPipelined, DivergentWindowsJoinPeerSlots) {
  // Adaptive control sizes the window per replica, so windows diverge:
  // here replicas 2/3 are pinned at depth 1 (unattainable 1-tick latency
  // target) while replicas 0/1 open eight slots ahead. Every quorum of
  // three includes a pinned replica, so if narrow replicas dropped
  // traffic for slots beyond their own frontier (as they did before the
  // on-demand join), each slot ahead would stall into view-change
  // recovery. With the join, the cluster must run at the WIDE replicas'
  // pace: strictly faster than an all-depth-1 cluster on the same
  // workload.
  TimePoint sequential = run_pipelined(1, 24);

  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  SmrOptions wide;
  wide.max_batch = 2;
  wide.target_commands = 24;
  wide.pipeline_depth = 8;
  SmrOptions narrow = wide;
  narrow.pipeline_depth = 1;
  narrow.adaptive.enabled = true;
  narrow.adaptive.latency_target = 1;  // unattainable: depth stays at min
  narrow.adaptive.min_depth = 1;
  narrow.adaptive.max_depth = 8;
  narrow.adaptive.min_batch = 2;  // isolate the depth divergence

  SmrCluster h(cfg, wide, /*seed=*/7);
  h.options.node_factory = [&h, narrow, wide](
                               const runtime::ProcessContext& ctx,
                               const runtime::NodeOptions&,
                               runtime::Node::DecideCallback) {
    auto node = std::make_unique<SmrNode>(ctx, ctx.id < 2 ? wide : narrow,
                                          nullptr);
    h.nodes[ctx.id] = node.get();
    return node;
  };
  h.cluster = std::make_unique<runtime::Cluster>(
      h.options, std::vector<Value>(4, Value::of_string("unused")));
  h.cluster->start();
  h.cluster->scheduler().schedule_at(0, [&] {
    for (std::uint64_t i = 1; i <= 24; ++i) {
      h.nodes[0]->submit(Command::put("key" + std::to_string(i),
                                      "val" + std::to_string(i), 1, i));
    }
  });
  while (h.cluster->scheduler().now() < 10'000'000) {
    bool done = true;
    for (auto* node : h.nodes) {
      if (node->applied_commands() < 24) done = false;
    }
    if (done) break;
    if (!h.cluster->scheduler().step()) break;
  }
  for (ProcessId id = 0; id < 4; ++id) {
    ASSERT_EQ(h.nodes[id]->applied_commands(), 24u) << "p" << id;
    EXPECT_EQ(h.nodes[id]->store().state_digest(),
              h.nodes[0]->store().state_digest())
        << "p" << id;
  }
  EXPECT_LT(h.cluster->scheduler().now(), sequential)
      << "divergent windows must pipeline at the wide replicas' pace, "
         "not stall behind the narrow ones";
}

TEST(SmrPipelined, NodesExposeEngineWindow) {
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  SmrOptions smr_options;
  smr_options.pipeline_depth = 4;
  SmrCluster h(cfg, smr_options);
  h.cluster->start();
  h.cluster->run_until(0);  // run the start events only
  EXPECT_EQ(h.nodes[0]->current_slot(), 4u) << "window opens depth slots";
  EXPECT_EQ(h.nodes[0]->engine().inflight_slots(), 4u);
  EXPECT_EQ(h.nodes[0]->engine().next_to_apply(), 1u);
  EXPECT_EQ(h.cluster->network().stats().inflight_slots(0), 4u)
      << "the per-node gauge tracks this node's window";
  h.cluster->run_until(50'000);
  EXPECT_GT(h.nodes[0]->noop_slots(), 0u);
  // The network-level gauge saw the full window too.
  EXPECT_GE(h.cluster->network().stats().max_inflight_slots(), 4u);
  EXPECT_GT(h.cluster->network().stats().messages_for_slot(1), 0u);
}

TEST(SmrPipelined, FaultyLeaderDoesNotStallLaterSlots) {
  // rotate_leaders gives slot s's view 1 to the round-robin successor of
  // slot s-1's; crashing p0 therefore stalls the slots p0 leads (1, 5, ...)
  // until their view change, while slots led by p1..p3 keep deciding. The
  // reorder high-water mark proves decisions landed out of order and were
  // held for in-order apply.
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  SmrOptions smr_options;
  smr_options.max_batch = 1;
  smr_options.target_commands = 8;
  smr_options.pipeline_depth = 4;
  smr_options.rotate_leaders = true;
  std::map<ProcessId, std::vector<Slot>> applied_slots;
  SmrCluster h(cfg, smr_options, /*seed=*/3,
               [&applied_slots](ProcessId pid, GroupId, Slot slot,
                                const std::vector<Command>&) {
                 applied_slots[pid].push_back(slot);
               });
  h.cluster->crash_at(0, 10);  // before any slot can decide
  h.cluster->start();
  h.cluster->scheduler().schedule_at(0, [&] {
    for (int i = 1; i <= 8; ++i) {
      h.nodes[1]->submit(Command::put("k" + std::to_string(i), "v", 4,
                                      static_cast<std::uint64_t>(i)));
    }
  });
  h.cluster->run_until(5'000'000);

  for (ProcessId id = 1; id < 4; ++id) {
    EXPECT_EQ(h.nodes[id]->applied_commands(), 8u) << "p" << id;
    EXPECT_EQ(h.nodes[id]->store().state_digest(),
              h.nodes[1]->store().state_digest())
        << "p" << id;
    EXPECT_GE(h.nodes[id]->engine().reorder_high_water(), 1u)
        << "slots after the stalled one should have decided first";
    const auto& slots = applied_slots[id];
    for (std::size_t i = 0; i < slots.size(); ++i) {
      ASSERT_EQ(slots[i], static_cast<Slot>(i + 1)) << "p" << id;
    }
  }
}

TEST(SmrPipelined, RetiredSlotStateIsFreed) {
  // GC audit: after a pipelined run finishes, every per-slot structure
  // must be empty — no live instances, no parked decisions, no claimed
  // commands, no timers — and the catch-up policy must have pruned
  // decided values below the gossiped watermark floor instead of
  // retaining all of them.
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  SmrOptions smr_options;
  smr_options.max_batch = 2;
  smr_options.target_commands = 40;
  smr_options.pipeline_depth = 4;
  SmrCluster h(cfg, smr_options);
  h.cluster->start();
  h.cluster->scheduler().schedule_at(0, [&] {
    for (std::uint64_t i = 1; i <= 40; ++i) {
      h.nodes[0]->submit(Command::put("k" + std::to_string(i), "v", 1, i));
    }
  });
  h.cluster->run_until(2'000'000);

  for (ProcessId id = 0; id < 4; ++id) {
    const auto& engine = h.nodes[id]->engine();
    ASSERT_EQ(h.nodes[id]->applied_commands(), 40u) << "p" << id;
    EXPECT_EQ(engine.inflight_slots(), 0u) << "p" << id;
    EXPECT_EQ(engine.reorder_pending(), 0u) << "p" << id;
    EXPECT_EQ(engine.pending().claimed_count(), 0u) << "p" << id;
    EXPECT_EQ(engine.timers().pending(), 0u)
        << "p" << id << ": stopped synchronizers must drop wheel entries";
    EXPECT_GT(engine.catchup().pruned_count(), 0u) << "p" << id;
    EXPECT_LT(engine.catchup().decided_count(),
              static_cast<std::size_t>(engine.highest_started()))
        << "p" << id << " retains every decided value";
  }
}

TEST(SmrPipelined, ReorderBacklogClampStopsOpeningSlots) {
  // Two stalls released at different times force the state the clamp
  // guards against: apply progress resumes (slot 1 releases) while a
  // later stall (slot 6) still holds decisions in the reorder buffer.
  // With max_reorder_backlog = 1 the engine must then refuse to open new
  // slots instead of deciding even further ahead.
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  SmrOptions smr_options;
  smr_options.max_batch = 1;
  smr_options.target_commands = 20;
  smr_options.pipeline_depth = 8;
  smr_options.max_reorder_backlog = 1;
  SmrCluster h(cfg, smr_options, /*seed=*/2);

  auto wrapped_slot = [](const net::Envelope& env) -> std::optional<Slot> {
    if (env.payload.empty() || env.payload[0] != net::tags::kSmrWrapped) {
      return std::nullopt;
    }
    Decoder dec(env.payload);
    dec.u8();
    dec.u32();  // group
    Slot slot = dec.u64();
    if (!dec.ok()) return std::nullopt;
    return slot;
  };
  h.cluster->set_network_script(
      [wrapped_slot](const net::Envelope& env,
                      TimePoint now) -> std::optional<TimePoint> {
        auto slot = wrapped_slot(env);
        if (slot == 1) return std::max<TimePoint>(now + 100, 20'000);
        if (slot == 6) return std::max<TimePoint>(now + 100, 60'000);
        return std::nullopt;
      });

  h.cluster->start();
  h.cluster->scheduler().schedule_at(0, [&] {
    for (std::uint64_t i = 1; i <= 20; ++i) {
      h.nodes[1]->submit(Command::put("k" + std::to_string(i), "v", 6, i));
    }
  });
  h.cluster->run_until(2'000'000);

  for (ProcessId id = 0; id < 4; ++id) {
    EXPECT_EQ(h.nodes[id]->applied_commands(), 20u) << "p" << id;
    EXPECT_GT(h.nodes[id]->engine().clamp_stalls(), 0u)
        << "p" << id << ": the backlog clamp never engaged";
    EXPECT_EQ(h.nodes[id]->store().state_digest(),
              h.nodes[0]->store().state_digest())
        << "p" << id;
  }
}

// --- Catch-up via SMR_DECIDED state transfer -------------------------------------

TEST(SmrCatchUp, LaggardAdoptsDecidedSlots) {
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  SmrOptions smr_options;
  smr_options.max_batch = 2;
  smr_options.target_commands = 4;
  SmrCluster h(cfg, smr_options);

  // Everything to or from p3 is held back until t = 10000: p3 misses the
  // live consensus entirely and must catch up through decided claims.
  h.cluster->set_network_script(
      [](const net::Envelope& env, TimePoint now) -> std::optional<TimePoint> {
        if ((env.to == 3 || env.from == 3) && env.from != env.to) {
          return std::max<TimePoint>(now + 100, 10'000);
        }
        return std::nullopt;
      });

  h.cluster->start();
  h.cluster->scheduler().schedule_at(0, [&] {
    for (int i = 1; i <= 4; ++i) {
      h.nodes[0]->submit(Command::put("k" + std::to_string(i), "v", 5,
                                      static_cast<std::uint64_t>(i)));
    }
  });
  h.cluster->run_until(300'000);

  for (ProcessId id = 0; id < 4; ++id) {
    EXPECT_EQ(h.nodes[id]->applied_commands(), 4u) << "p" << id;
  }
  EXPECT_EQ(h.nodes[3]->store().state_digest(),
            h.nodes[0]->store().state_digest())
      << "the laggard must converge to the same state";
}

TEST(SmrCatchUp, SubQuorumClaimsAreIgnored) {
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  SmrOptions smr_options;
  smr_options.target_commands = 2;  // keep advancing after the adopted slot
  SmrCluster h(cfg, smr_options);
  h.cluster->start();
  h.cluster->run_until(0);  // run the start events only
  ASSERT_EQ(h.nodes[3]->current_slot(), 1u);

  Value claimed = encode_batch({Command::put("evil", "1", 66, 1)});
  Encoder enc;
  enc.u8(net::tags::kSmrDecided);
  enc.u32(0);  // group
  enc.u64(1);
  claimed.encode(enc);
  Bytes claim = std::move(enc).take();

  // One claim (fewer than f + 1 = 2): nothing may be adopted.
  h.nodes[3]->on_message(1, claim);
  EXPECT_EQ(h.nodes[3]->applied_commands(), 0u);
  EXPECT_EQ(h.nodes[3]->current_slot(), 1u);

  // A second claim from a different process crosses f + 1: adopted.
  h.nodes[3]->on_message(2, claim);
  EXPECT_EQ(h.nodes[3]->applied_commands(), 1u);
  EXPECT_EQ(h.nodes[3]->store().get("evil"), "1");
  EXPECT_EQ(h.nodes[3]->current_slot(), 2u);

  // Duplicate senders never count twice (checked by construction above:
  // the same sender repeated would not have crossed the threshold).
  h.nodes[3]->on_message(2, claim);
  EXPECT_EQ(h.nodes[3]->applied_commands(), 1u);
}

// --- Snapshot state transfer: crash -> watermark pin -> rejoin -------------------

TEST(SmrSnapshot, CrashedReplicaRejoinsViaSnapshotAndRetentionUnpins) {
  // The acceptance scenario for the snapshot subsystem, deterministic on
  // the simulator: p3 crashes early, freezing its applied watermark. With
  // snapshot_interval set, the survivors keep pruning decided values past
  // p3's crash point anyway (the snapshot floor overrides the frozen
  // watermark), so when a factory-fresh p3 rejoins, the slots it needs
  // are long gone — it must recover through SNAPSHOT_REQUEST/RESPONSE
  // state transfer, then apply onward in order.
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  SmrOptions smr_options;
  smr_options.max_batch = 1;          // one slot per command: many slots
  smr_options.pipeline_depth = 2;
  smr_options.target_commands = 0;    // keep replicating (noop slots keep
                                      // gossip alive for the rejoiner)
  smr_options.snapshot_interval = 8;
  smr_options.snapshot_chunk_bytes = 64;  // force multi-chunk transfers
  std::map<ProcessId, std::vector<Slot>> applied_after_restart;
  bool restarted = false;
  SmrCluster h(cfg, smr_options, /*seed=*/5,
               [&](ProcessId pid, GroupId, Slot slot,
                   const std::vector<Command>&) {
                 if (restarted) applied_after_restart[pid].push_back(slot);
               });
  h.cluster->crash_at(3, 20'000);
  h.cluster->restart_at(3, 120'000);
  h.cluster->start();

  h.cluster->scheduler().schedule_at(0, [&] {
    for (std::uint64_t i = 1; i <= 30; ++i) {
      h.nodes[0]->submit(Command::put("key" + std::to_string(i),
                                      "val" + std::to_string(i), 1, i));
    }
  });

  // Probe p3's apply cursor the moment it crashes: retention must later
  // shrink BELOW this pin, which pure watermark gossip could never do.
  Slot crash_cursor = 0;
  h.cluster->scheduler().schedule_at(20'000, [&] {
    crash_cursor = h.nodes[3]->engine().next_to_apply();
  });
  h.cluster->scheduler().schedule_at(120'000, [&] { restarted = true; });

  h.cluster->run_until(400'000);

  ASSERT_GT(crash_cursor, 1u) << "p3 must have applied something pre-crash";

  // The rejoined replica recovered through a snapshot, not replay.
  EXPECT_GE(h.nodes[3]->engine().snapshots_installed(), 1u);
  EXPECT_EQ(h.nodes[3]->applied_commands(), 30u);
  EXPECT_EQ(h.nodes[3]->store().state_digest(),
            h.nodes[0]->store().state_digest())
      << "the rejoined replica must converge to the survivors' state";
  EXPECT_EQ(h.nodes[3]->store().get("key30"), "val30");

  // Post-restart applies happened strictly in slot order, starting past
  // the installed snapshot boundary (never from slot 1 again).
  const auto& slots = applied_after_restart[3];
  ASSERT_FALSE(slots.empty());
  EXPECT_GT(slots.front(), crash_cursor);
  for (std::size_t i = 1; i < slots.size(); ++i) {
    ASSERT_GT(slots[i], slots[i - 1]) << "p3 applied out of order";
  }

  // Retention unpinned: every survivor pruned decided values past p3's
  // frozen watermark while it was down, and keeps retention bounded.
  for (ProcessId id = 0; id < 3; ++id) {
    const auto& catchup = h.nodes[id]->engine().catchup();
    EXPECT_GT(catchup.prune_floor(), crash_cursor)
        << "p" << id << " stayed pinned at the crash point";
    EXPECT_GT(catchup.snapshot_floor(), 1u) << "p" << id;
    EXPECT_LT(catchup.decided_count(),
              static_cast<std::size_t>(smr_options.snapshot_interval) + 8)
        << "p" << id << " retention must stay within one interval + window";
  }
}

TEST(SmrSnapshot, WithoutSnapshotsCrashPinsRetention) {
  // Control for the test above: identical schedule, snapshots disabled.
  // The crashed replica's frozen watermark pins every survivor's retention
  // at the crash point — the exact unbounded-growth failure mode the
  // snapshot subsystem removes.
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  SmrOptions smr_options;
  smr_options.max_batch = 1;
  smr_options.pipeline_depth = 2;
  smr_options.target_commands = 0;
  SmrCluster h(cfg, smr_options, /*seed=*/5);
  h.cluster->crash_at(3, 20'000);
  h.cluster->start();
  h.cluster->scheduler().schedule_at(0, [&] {
    for (std::uint64_t i = 1; i <= 30; ++i) {
      h.nodes[0]->submit(Command::put("key" + std::to_string(i),
                                      "val" + std::to_string(i), 1, i));
    }
  });
  Slot crash_cursor = 0;
  h.cluster->scheduler().schedule_at(20'000, [&] {
    crash_cursor = h.nodes[3]->engine().next_to_apply();
  });
  h.cluster->run_until(200'000);

  ASSERT_GT(crash_cursor, 1u);
  for (ProcessId id = 0; id < 3; ++id) {
    const auto& catchup = h.nodes[id]->engine().catchup();
    EXPECT_LE(catchup.prune_floor(), crash_cursor) << "p" << id;
    // Retention grows with every slot decided past the pin.
    EXPECT_GT(catchup.decided_count(), 50u)
        << "p" << id << ": expected pinned retention to keep growing";
  }
}


// --- Client sessions ----------------------------------------------------------------

TEST(ClientTest, CompletesAfterFPlusOneReports) {
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  SmrOptions smr_options;
  smr_options.max_batch = 4;
  smr_options.target_commands = 3;

  std::vector<SmrNode*> nodes(4, nullptr);
  runtime::ClusterOptions options = SmrCluster::make_options(cfg, 1);
  sim::Scheduler* sched = nullptr;
  std::unique_ptr<Client> client;
  options.node_factory = [&](const runtime::ProcessContext& ctx,
                             const runtime::NodeOptions&,
                             runtime::Node::DecideCallback) {
    if (!client) {
      sched = ctx.scheduler;
      client = std::make_unique<Client>(7, cfg.f, *ctx.scheduler);
    }
    auto node = std::make_unique<SmrNode>(ctx, smr_options,
                                          client->subscription());
    nodes[ctx.id] = node.get();
    return node;
  };
  runtime::Cluster cluster(options,
                           std::vector<Value>(4, Value::of_string("-")));
  cluster.start();
  cluster.scheduler().schedule_at(0, [&] {
    client->submit(*nodes[0], Command::put("a", "1"));
    client->submit(*nodes[0], Command::put("b", "2"));
    client->submit(*nodes[0], Command::del("a"));
  });
  cluster.run_until(100'000);

  ASSERT_TRUE(client->all_complete());
  ASSERT_EQ(client->completions().size(), 3u);
  auto stats = client->latency_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->min, 0);
  EXPECT_GE(stats->max, stats->median);
  // Sequences were assigned 1..3 and completed in submission order here.
  EXPECT_EQ(client->completions()[0].command.key, "a");
  EXPECT_EQ(client->completions()[2].command.kind, OpKind::Del);
}

TEST(ClientTest, SingleReportIsNotCompletion) {
  sim::Scheduler sched;
  Client client(9, /*f=*/1, sched);
  Command cmd = Command::put("k", "v");
  cmd.client_id = 9;
  cmd.sequence = 1;

  // Inject reports directly: one replica reporting is not enough at f = 1.
  auto subscription = client.subscription();
  // Simulate a submit without a gateway (register in-flight by hand is not
  // exposed; go through a throwaway node-less path: the subscription
  // simply ignores unknown sequences).
  subscription(0, /*group=*/0, 1, {cmd});
  EXPECT_TRUE(client.completions().empty());
  EXPECT_EQ(client.pending(), 0u) << "unknown sequences are ignored";
}

TEST(ClientTest, CompletionSurvivesReplicaCrash) {
  auto cfg = consensus::QuorumConfig::create(7, 2, 1);
  SmrOptions smr_options;
  smr_options.max_batch = 4;
  smr_options.target_commands = 4;

  std::vector<SmrNode*> nodes(7, nullptr);
  runtime::ClusterOptions options = SmrCluster::make_options(cfg, 3);
  std::unique_ptr<Client> client;
  options.node_factory = [&](const runtime::ProcessContext& ctx,
                             const runtime::NodeOptions&,
                             runtime::Node::DecideCallback) {
    if (!client) client = std::make_unique<Client>(5, cfg.f, *ctx.scheduler);
    auto node = std::make_unique<SmrNode>(ctx, smr_options,
                                          client->subscription());
    nodes[ctx.id] = node.get();
    return node;
  };
  runtime::Cluster cluster(options,
                           std::vector<Value>(7, Value::of_string("-")));
  cluster.crash_at(6, 400);
  cluster.start();
  cluster.scheduler().schedule_at(0, [&] {
    for (int i = 0; i < 4; ++i) {
      client->submit(*nodes[1], Command::put("k" + std::to_string(i), "v"));
    }
  });
  cluster.run_until(2'000'000);
  EXPECT_TRUE(client->all_complete());
  EXPECT_EQ(client->completions().size(), 4u);
}

}  // namespace
}  // namespace fastbft::smr
