#include <gtest/gtest.h>

#include <algorithm>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "consensus/types.hpp"
#include "crypto/hmac.hpp"
#include "crypto/signer.hpp"
#include "crypto/verify_cache.hpp"
#include "net/sim_network.hpp"
#include "net/stats.hpp"
#include "sim/scheduler.hpp"
#include "smr/shard.hpp"
#include "smr/smr_node.hpp"

/// Unit tests for the zero-copy hot path (PR 4): ByteView decoding,
/// streaming hashing, the signature-verification cache and the
/// shared-payload broadcast accounting — and the sharded-SMR (PR 6)
/// invariants layered on them: per-group broadcasts still allocate once,
/// and a node's group engines share one verification cache.

namespace fastbft {
namespace {

// --- ByteView / codec --------------------------------------------------------

TEST(ByteView, SubClampsToBounds) {
  Bytes data{1, 2, 3, 4, 5};
  ByteView v(data);
  EXPECT_EQ(v.sub(1, 3).size(), 3u);
  EXPECT_EQ(v.sub(1, 3)[0], 2);
  EXPECT_EQ(v.sub(4, 100).size(), 1u);
  EXPECT_EQ(v.sub(100, 1).size(), 0u);
  EXPECT_TRUE(v.sub(5, 0).empty());
}

TEST(ByteView, DecoderBytesViewAliasesInput) {
  Encoder enc;
  enc.bytes(Bytes{10, 11, 12});
  enc.u32(7);
  Bytes wire = std::move(enc).take();

  Decoder dec(wire);
  ByteView field = dec.bytes_view();
  ASSERT_EQ(field.size(), 3u);
  // Zero-copy: the view points INTO the wire buffer.
  EXPECT_GE(field.data(), wire.data());
  EXPECT_LT(field.data(), wire.data() + wire.size());
  EXPECT_EQ(dec.u32(), 7u);
  EXPECT_TRUE(dec.ok());
  EXPECT_TRUE(dec.at_end());
}

TEST(ByteView, NestedDecodeRoundtripWithoutCopies) {
  // envelope(bytes(inner)) where inner = bytes(payload) — the shape of
  // SMR_WRAPPED -> consensus message -> batch nesting.
  Bytes payload{0xde, 0xad, 0xbe, 0xef};
  Encoder inner;
  inner.bytes(payload);
  Encoder outer;
  outer.bytes(inner.view());
  Bytes wire = std::move(outer).take();

  Decoder outer_dec(wire);
  ByteView inner_view = outer_dec.bytes_view();
  ASSERT_TRUE(outer_dec.ok());
  Decoder inner_dec(inner_view);
  ByteView payload_view = inner_dec.bytes_view();
  ASSERT_TRUE(inner_dec.ok());
  EXPECT_EQ(payload_view.to_bytes(), payload);
  // Both levels alias the single wire buffer.
  EXPECT_GE(payload_view.data(), wire.data());
  EXPECT_LT(payload_view.data(), wire.data() + wire.size());
}

TEST(ByteView, TruncatedLengthPrefixFailsDecode) {
  Encoder enc;
  enc.bytes(Bytes{1, 2, 3, 4, 5, 6, 7, 8});
  Bytes wire = std::move(enc).take();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(len));
    Decoder dec(truncated);
    ByteView v = dec.bytes_view();
    EXPECT_FALSE(dec.ok()) << "len=" << len;
    EXPECT_TRUE(v.empty()) << "len=" << len;
  }
}

TEST(ByteView, OversizedLengthPrefixIsBoundsChecked) {
  Encoder enc;
  enc.u32(0xffffffffu);  // claims 4 GiB of payload
  enc.u8(0x01);
  Bytes wire = std::move(enc).take();
  Decoder dec(wire);
  EXPECT_TRUE(dec.bytes_view().empty());
  EXPECT_FALSE(dec.ok());
}

TEST(ByteView, SplitChunkViewsAliasOneBuffer) {
  Bytes data(100, 0x5a);
  auto views = split_chunk_views(ByteView(data), 33);
  ASSERT_EQ(views.size(), 4u);
  std::size_t total = 0;
  for (const auto& v : views) {
    total += v.size();
    EXPECT_GE(v.data(), data.data());
    EXPECT_LE(v.data() + v.size(), data.data() + data.size());
  }
  EXPECT_EQ(total, data.size());
  // Equivalent to the copying form.
  auto copies = split_chunks(data, 33);
  ASSERT_EQ(copies.size(), views.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i].to_bytes(), copies[i]);
  }
}

TEST(Encoder, ScratchRecyclesCapacityAndClears) {
  const std::uint8_t* first_data = nullptr;
  {
    Encoder enc = Encoder::scratch();
    enc.raw(Bytes(512, 0xaa));
    first_data = enc.data().data();
    ASSERT_NE(first_data, nullptr);
  }  // returns the 512-capacity buffer to the thread-local pool
  {
    Encoder enc = Encoder::scratch();
    EXPECT_EQ(enc.size(), 0u);  // cleared...
    enc.u8(1);
    // ...but backed by the pooled allocation (same block, no realloc).
    EXPECT_EQ(enc.data().data(), first_data);
  }
}

TEST(Encoder, ScratchTakeDetachesFromPool) {
  Encoder enc = Encoder::scratch();
  enc.str("keep me");
  Bytes owned = std::move(enc).take();
  EXPECT_EQ(owned.size(), 4u + 7u);
  // The capacity left with `owned`; destroying `enc` must not recycle it.
  Encoder again = Encoder::scratch();
  again.u8(1);
  EXPECT_NE(again.data().data(), owned.data());
}

// --- Streaming hashing -------------------------------------------------------

TEST(StreamingSha, PiecewiseUpdateMatchesOneShot) {
  Bytes data(300, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  crypto::Digest one_shot = crypto::sha256(data);
  for (std::size_t split : {0ul, 1ul, 63ul, 64ul, 65ul, 299ul, 300ul}) {
    crypto::Sha256 h;
    h.update(ByteView(data.data(), split));
    h.update(ByteView(data.data() + split, data.size() - split));
    EXPECT_EQ(h.finalize(), one_shot) << "split=" << split;
  }
}

TEST(StreamingSha, UpdateU32MatchesEncoderFraming) {
  Encoder enc;
  enc.u32(0xdeadbeefu);
  enc.str("tail");
  crypto::Sha256 streamed;
  streamed.update_u32(0xdeadbeefu);
  streamed.update_u32(4);  // str() length prefix
  const char* tail = "tail";
  streamed.update(reinterpret_cast<const std::uint8_t*>(tail), 4);
  EXPECT_EQ(streamed.finalize(), crypto::sha256(enc.view()));
}

TEST(StreamingHmac, PiecewiseMatchesOneShot) {
  Bytes key(32, 0x42);
  Bytes msg(200, 0x17);
  crypto::Digest one_shot = crypto::hmac_sha256(key, msg);
  crypto::HmacSha256 mac(key);
  mac.update(ByteView(msg.data(), 77));
  mac.update(ByteView(msg.data() + 77, msg.size() - 77));
  EXPECT_EQ(mac.finalize(), one_shot);

  // Long keys are hashed down per RFC 2104.
  Bytes long_key(100, 0x0f);
  EXPECT_EQ(crypto::hmac_sha256(long_key, msg),
            [&] {
              crypto::HmacSha256 m(long_key);
              m.update(msg);
              return m.finalize();
            }());
}

TEST(StreamingHmac, SignEqualsSignDigest) {
  auto keys = std::make_shared<const crypto::KeyStore>(7, 4);
  crypto::Signer signer(keys, 2);
  Bytes msg = to_bytes("a message body");
  crypto::Signature a = signer.sign("dom", msg);
  crypto::Signature b =
      signer.sign_digest("dom", crypto::message_digest(msg));
  EXPECT_EQ(a, b);
  crypto::Verifier verifier(keys);
  EXPECT_TRUE(verifier.verify(2, "dom", msg, a));
  EXPECT_TRUE(
      verifier.verify_digest(2, "dom", crypto::message_digest(msg), a));
  EXPECT_FALSE(verifier.verify(2, "other", msg, a));  // domain separation
  EXPECT_FALSE(verifier.verify(1, "dom", msg, a));    // wrong signer
}

// --- Verification cache ------------------------------------------------------

TEST(VerifyCache, HitMissAndNegativeCaching) {
  auto keys = std::make_shared<const crypto::KeyStore>(1, 4);
  auto cache = std::make_shared<crypto::VerificationCache>();
  crypto::Signer signer(keys, 0);
  crypto::Verifier verifier(keys, cache);

  Bytes msg = to_bytes("statement");
  crypto::Digest d = crypto::message_digest(msg);
  crypto::Signature sig = signer.sign("dom", msg);

  EXPECT_TRUE(verifier.verify_digest_memo(0, "dom", d, sig));
  EXPECT_EQ(cache->misses(), 1u);
  EXPECT_EQ(cache->hits(), 0u);
  EXPECT_TRUE(verifier.verify_digest_memo(0, "dom", d, sig));
  EXPECT_EQ(cache->hits(), 1u);

  // Invalid verdicts are memoized too.
  crypto::Signature bad = sig;
  bad.bytes[0] ^= 0xff;
  EXPECT_FALSE(verifier.verify_digest_memo(0, "dom", d, bad));
  EXPECT_FALSE(verifier.verify_digest_memo(0, "dom", d, bad));
  EXPECT_EQ(cache->hits(), 2u);
  EXPECT_EQ(cache->misses(), 2u);
  EXPECT_EQ(cache->size(), 2u);
}

TEST(VerifyCache, LruEviction) {
  auto keys = std::make_shared<const crypto::KeyStore>(1, 4);
  auto cache = std::make_shared<crypto::VerificationCache>(2);
  crypto::Signer signer(keys, 0);
  crypto::Verifier verifier(keys, cache);

  auto entry = [&](std::uint8_t tag) {
    Bytes msg{tag};
    return std::make_pair(crypto::message_digest(msg),
                          signer.sign("dom", msg));
  };
  auto [d1, s1] = entry(1);
  auto [d2, s2] = entry(2);
  auto [d3, s3] = entry(3);

  verifier.verify_digest_memo(0, "dom", d1, s1);
  verifier.verify_digest_memo(0, "dom", d2, s2);
  verifier.verify_digest_memo(0, "dom", d1, s1);  // refresh 1 -> 2 is LRU
  verifier.verify_digest_memo(0, "dom", d3, s3);  // evicts 2
  EXPECT_EQ(cache->evictions(), 1u);
  EXPECT_EQ(cache->size(), 2u);

  std::uint64_t hits = cache->hits();
  verifier.verify_digest_memo(0, "dom", d1, s1);  // kept: hit
  EXPECT_EQ(cache->hits(), hits + 1);
  std::uint64_t misses = cache->misses();
  verifier.verify_digest_memo(0, "dom", d2, s2);  // gone: miss again
  EXPECT_EQ(cache->misses(), misses + 1);
}

TEST(VerifyCache, VerdictNeverOutlivesKeyChange) {
  // Two keystores (different master seeds) sharing one cache: a verdict
  // cached under the first key material must not be served under the
  // second — the keystore fingerprint is part of every cache key.
  auto keys_a = std::make_shared<const crypto::KeyStore>(11, 4);
  auto keys_b = std::make_shared<const crypto::KeyStore>(22, 4);
  ASSERT_NE(keys_a->fingerprint(), keys_b->fingerprint());
  auto cache = std::make_shared<crypto::VerificationCache>();

  Bytes msg = to_bytes("cross-keystore statement");
  crypto::Digest d = crypto::message_digest(msg);
  crypto::Signature sig = crypto::Signer(keys_a, 0).sign("dom", msg);

  crypto::Verifier va(keys_a, cache);
  EXPECT_TRUE(va.verify_digest_memo(0, "dom", d, sig));
  EXPECT_EQ(cache->size(), 1u);

  // Same signer id, digest and signature — different key material. The
  // cached TRUE verdict must not leak through; the signature is invalid
  // under keys_b and must verify as such.
  crypto::Verifier vb(keys_b, cache);
  std::uint64_t hits_before = cache->hits();
  EXPECT_FALSE(vb.verify_digest_memo(0, "dom", d, sig));
  EXPECT_EQ(cache->hits(), hits_before);  // no stale hit
}

TEST(VerifyCache, SharedAcrossCertificateVerifications) {
  // The engine wiring: one cache serves every cert check on a node, so a
  // commit certificate re-presenting already-verified signatures costs
  // table probes, not HMACs.
  using namespace consensus;
  auto cfg = QuorumConfig::create(4, 1, 1);
  auto keys = std::make_shared<const crypto::KeyStore>(3, 4);
  auto cache = std::make_shared<crypto::VerificationCache>();
  crypto::Verifier verifier(keys, cache);

  Value x = Value::of_string("decided-value");
  CommitCert cc;
  cc.x = x;
  cc.v = 2;
  for (ProcessId p = 0; p < cfg.commit_quorum(); ++p) {
    cc.sigs.push_back(SignatureEntry{
        p, crypto::Signer(keys, p).sign(kDomAck, ack_preimage(x, 2))});
  }
  ASSERT_TRUE(verify_commit_cert(verifier, cfg, cc));
  std::uint64_t misses = cache->misses();
  ASSERT_TRUE(verify_commit_cert(verifier, cfg, cc));  // all hits now
  EXPECT_EQ(cache->misses(), misses);
  EXPECT_GE(cache->hits(), cfg.commit_quorum());
}

// --- Shared-payload broadcast accounting -------------------------------------

TEST(PayloadStats, BroadcastAllocatesPayloadExactlyOnce) {
  sim::Scheduler sched;
  net::SimNetwork network(sched, 4, net::SimNetworkConfig{});
  std::vector<std::pair<ProcessId, Bytes>> delivered;
  for (ProcessId id = 0; id < 4; ++id) {
    network.attach(id, [&, id](ProcessId, const Bytes& payload) {
      delivered.emplace_back(id, payload);
    });
  }
  auto endpoint = network.endpoint(0);

  Bytes payload(1000, 0xcd);
  std::uint64_t allocs = net::PayloadStats::allocs();
  std::uint64_t alloc_bytes = net::PayloadStats::alloc_bytes();
  endpoint->broadcast(payload);

  // One m-byte materialization serves all n recipients.
  EXPECT_EQ(net::PayloadStats::allocs() - allocs, 1u);
  EXPECT_EQ(net::PayloadStats::alloc_bytes() - alloc_bytes, payload.size());
  // The logical traffic is still n messages of m bytes.
  EXPECT_EQ(network.stats().total_messages(), 4u);
  EXPECT_EQ(network.stats().total_bytes(), 4u * payload.size());

  sched.run_until(1'000);
  ASSERT_EQ(delivered.size(), 4u);
  for (const auto& [id, bytes] : delivered) EXPECT_EQ(bytes, payload);
}

TEST(PayloadStats, UnicastSendsAllocatePerSend) {
  sim::Scheduler sched;
  net::SimNetwork network(sched, 3, net::SimNetworkConfig{});
  for (ProcessId id = 0; id < 3; ++id) {
    network.attach(id, [](ProcessId, const Bytes&) {});
  }
  auto endpoint = network.endpoint(0);
  std::uint64_t allocs = net::PayloadStats::allocs();
  endpoint->send(1, Bytes(10, 0x01));
  endpoint->send(2, Bytes(10, 0x02));
  EXPECT_EQ(net::PayloadStats::allocs() - allocs, 2u);
}

// --- Sharded SMR hot-path invariants -----------------------------------------

TEST(PayloadStats, FourGroupNodeAllocatesOncePerBroadcastSharesOneCache) {
  // A replica hosting 4 consensus groups must keep both PR 4 invariants:
  // every SMR_WRAPPED broadcast materializes its payload exactly once no
  // matter which group framed it, and all 4 engines probe ONE
  // per-node signature-verification cache.
  constexpr std::uint32_t kGroups = 4;
  constexpr std::uint64_t kPerGroup = 3;
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);

  runtime::ClusterOptions options;
  options.cfg = cfg;
  options.net.delta = 100;
  options.net.min_delay = 100;

  // Keys chosen by their hash-assigned shard: kPerGroup commands land in
  // every group, so every group's engine broadcasts.
  std::vector<std::vector<std::string>> keys(kGroups);
  for (int i = 0; true; ++i) {
    std::string key = "key" + std::to_string(i);
    auto& bucket = keys[smr::shard_of(key, kGroups)];
    if (bucket.size() < kPerGroup) bucket.push_back(key);
    if (static_cast<std::uint64_t>(std::count_if(
            keys.begin(), keys.end(),
            [](const auto& b) { return b.size() == kPerGroup; })) == kGroups) {
      break;
    }
  }

  smr::SmrOptions smr_options;
  smr_options.max_batch = 2;
  smr_options.num_groups = kGroups;
  smr_options.group_targets.assign(kGroups, kPerGroup);
  std::vector<smr::SmrNode*> nodes(cfg.n, nullptr);
  options.node_factory = [&](const runtime::ProcessContext& ctx,
                             const runtime::NodeOptions&,
                             runtime::Node::DecideCallback) {
    auto node = std::make_unique<smr::SmrNode>(ctx, smr_options, nullptr);
    nodes[ctx.id] = node.get();
    return node;
  };
  runtime::Cluster cluster(options,
                           std::vector<Value>(cfg.n, Value::of_string("-")));
  net::PayloadStats::reset();
  cluster.start();
  cluster.scheduler().schedule_at(0, [&] {
    std::uint64_t seq = 0;
    for (const auto& bucket : keys) {
      for (const auto& key : bucket) {
        nodes[1]->submit(smr::Command::put(key, "v", 1, ++seq));
      }
    }
  });
  cluster.run_until(5'000'000);

  std::uint64_t submitted = kGroups * kPerGroup;
  for (ProcessId id = 0; id < cfg.n; ++id) {
    ASSERT_NE(nodes[id], nullptr);
    EXPECT_EQ(nodes[id]->applied_commands(), submitted) << "p" << id;
  }

  // One VerificationCache per node, shared by all of its group engines.
  for (ProcessId id = 0; id < cfg.n; ++id) {
    const auto& cache = nodes[id]->engine(0).verify_cache();
    ASSERT_NE(cache, nullptr);
    for (GroupId g = 1; g < kGroups; ++g) {
      EXPECT_EQ(nodes[id]->engine(g).verify_cache().get(), cache.get())
          << "p" << id << " group " << g << " has a private cache";
    }
  }

  // Every group broadcast, and each broadcast materialized its payload
  // exactly once. Unicasts are 1 alloc : 1 message; a broadcast is 1
  // alloc : fanout messages (fanout is n with self, n - 1 without), and
  // client submits broadcast the request the same way. So the alloc
  // savings `messages - allocs` must sit exactly in the band the B
  // one-alloc broadcasts predict — any per-recipient payload copy
  // anywhere drops it below the floor.
  std::uint64_t group_bcasts = 0;
  for (GroupId g = 0; g < kGroups; ++g) {
    std::uint64_t b = net::PayloadStats::group_broadcasts(g);
    EXPECT_GE(b, 1u) << "group " << g << " never broadcast";
    group_bcasts += b;
  }
  std::uint64_t broadcasts = group_bcasts + submitted;  // + request bcasts
  std::uint64_t messages = cluster.network().stats().total_messages();
  std::uint64_t allocs = net::PayloadStats::allocs();
  ASSERT_GE(messages, allocs);
  EXPECT_GE(messages - allocs, broadcasts * (cfg.n - 2))
      << "some broadcast copied its payload per recipient";
  EXPECT_LE(messages - allocs, broadcasts * (cfg.n - 1));
}

}  // namespace
}  // namespace fastbft
