#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <type_traits>

#include "common/thread_guard.hpp"

/// Tests for the thread-affinity contract facility (docs/ANALYSIS.md):
/// in invariant builds a ThreadGuard must catch cross-thread misuse by
/// aborting (death tests); in Release builds it must be provably free —
/// an empty type whose member calls compile to nothing.

namespace fastbft::common {
namespace {

#if FASTBFT_ENFORCE_INVARIANTS

TEST(ThreadGuard, UnboundPassesAnyThread) {
  ThreadGuard guard;
  EXPECT_FALSE(guard.bound());
  EXPECT_FALSE(guard.held());
  guard.check("setup-phase call on an unbound guard is legal");
  std::thread([&] {
    guard.check("unbound passes from any thread");
  }).join();
}

TEST(ThreadGuard, BindMakesOwnerHold) {
  ThreadGuard guard;
  guard.bind();
  EXPECT_TRUE(guard.bound());
  EXPECT_TRUE(guard.held());
  guard.check("owner passes its own guard");
  std::thread([&] { EXPECT_FALSE(guard.held()); }).join();
}

TEST(ThreadGuard, UnbindReopensTheGuard) {
  ThreadGuard guard;
  std::thread([&] { guard.bind(); }).join();
  EXPECT_TRUE(guard.bound());
  EXPECT_FALSE(guard.held());
  guard.unbind();
  guard.check("post-teardown calls pass again");
}

TEST(ThreadGuard, CheckOrBindClaimsOnFirstUse) {
  ThreadGuard guard;
  guard.check_or_bind("first use claims ownership");
  EXPECT_TRUE(guard.held());
  guard.check_or_bind("the claiming thread keeps passing");
}

TEST(ThreadGuardDeathTest, CrossThreadCheckAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ThreadGuard guard;
  guard.bind();
  EXPECT_DEATH(
      {
        std::thread([&] {
          guard.check("cross-thread access must abort");
        }).join();
      },
      "cross-thread access must abort");
}

TEST(ThreadGuardDeathTest, CrossThreadCheckOrBindAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ThreadGuard guard;
  guard.check_or_bind("main thread claims");
  EXPECT_DEATH(
      {
        std::thread([&] {
          guard.check_or_bind("second thread must abort");
        }).join();
      },
      "second thread must abort");
}

#else  // Release: the guard must be free.

TEST(ThreadGuard, ReleaseStubIsEmpty) {
  static_assert(std::is_empty_v<ThreadGuard>,
                "release ThreadGuard must carry no state");
  static_assert(std::is_trivially_copyable_v<ThreadGuard>);
  // [[no_unique_address]] must make an embedded guard free: a struct
  // gains no size from the member.
  struct WithGuard {
    std::uint64_t payload;
    FASTBFT_GUARD_MEMBER(guard);
  };
  static_assert(sizeof(WithGuard) == sizeof(std::uint64_t),
                "FASTBFT_GUARD_MEMBER must occupy no storage in Release");
  // And every operation is callable in a constant expression — i.e. the
  // compiler can prove it does nothing at all.
  constexpr bool noop = [] {
    ThreadGuard guard;
    guard.bind();
    guard.check("unused");
    guard.check_or_bind("unused");
    guard.unbind();
    return !guard.bound() && !guard.held();
  }();
  static_assert(noop, "release ThreadGuard operations must be constexpr no-ops");
}

TEST(ThreadGuard, DisabledDassertNeverEvaluates) {
  int evaluations = 0;
  FASTBFT_DASSERT((++evaluations, true), "must not evaluate");
  FASTBFT_DASSERT((++evaluations, false), "must not evaluate or abort");
  EXPECT_EQ(evaluations, 0);
}

#endif  // FASTBFT_ENFORCE_INVARIANTS

}  // namespace
}  // namespace fastbft::common
